// The module is deliberately dependency-free: the engine, the paper's
// simulator layer, and the static-analysis suite (cmd/lsmlint) all build
// on the standard library alone. lsmlint in particular reimplements the
// small slice of go/analysis it needs rather than pinning
// golang.org/x/tools, so `go build ./...` works with nothing but the
// toolchain.
module repro

go 1.22
