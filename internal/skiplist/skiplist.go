// Package skiplist provides an ordered in-memory map from byte-string keys
// to byte-string values, implemented as a probabilistic skip list. It backs
// the LSM engine's memtable: inserts and lookups are O(log n) expected, and
// an iterator yields entries in key order so a memtable can be flushed to a
// sorted sstable in a single pass.
package skiplist

import (
	"bytes"
	"math/rand"
)

const (
	maxHeight = 12
	// pInverse is the inverse of the promotion probability: each node is
	// promoted to the next level with probability 1/pInverse.
	pInverse = 4
)

type node struct {
	key   []byte
	value []byte
	next  [maxHeight]*node
}

// List is an ordered map with byte-slice keys. The zero value is not
// usable; construct with New. List is not safe for concurrent use; the
// memtable layers its own synchronization above it.
type List struct {
	head   *node
	height int
	length int
	bytes  int // sum of key+value lengths, for size accounting
	rng    *rand.Rand
}

// New creates an empty list. seed makes tower heights deterministic, which
// keeps tests and simulations reproducible.
func New(seed int64) *List {
	return &List{
		head:   &node{},
		height: 1,
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// Len returns the number of entries.
func (l *List) Len() int { return l.length }

// SizeBytes returns the total size of all keys and values, the measure the
// memtable uses against its flush threshold.
func (l *List) SizeBytes() int { return l.bytes }

func (l *List) randomHeight() int {
	h := 1
	for h < maxHeight && l.rng.Intn(pInverse) == 0 {
		h++
	}
	return h
}

// findGreaterOrEqual locates the first node with key >= target and fills
// prev with the rightmost node before it at every level.
func (l *List) findGreaterOrEqual(key []byte, prev *[maxHeight]*node) *node {
	x := l.head
	for level := l.height - 1; level >= 0; level-- {
		for x.next[level] != nil && bytes.Compare(x.next[level].key, key) < 0 {
			x = x.next[level]
		}
		if prev != nil {
			prev[level] = x
		}
	}
	return x.next[0]
}

// Set inserts key → value, replacing any existing value for key. The key
// and value slices are retained; callers must not modify them afterwards.
func (l *List) Set(key, value []byte) {
	var prev [maxHeight]*node
	if n := l.findGreaterOrEqual(key, &prev); n != nil && bytes.Equal(n.key, key) {
		l.bytes += len(value) - len(n.value)
		n.value = value
		return
	}
	h := l.randomHeight()
	if h > l.height {
		for level := l.height; level < h; level++ {
			prev[level] = l.head
		}
		l.height = h
	}
	n := &node{key: key, value: value}
	for level := 0; level < h; level++ {
		n.next[level] = prev[level].next[level]
		prev[level].next[level] = n
	}
	l.length++
	l.bytes += len(key) + len(value)
}

// Get returns the value stored for key and whether it exists.
func (l *List) Get(key []byte) ([]byte, bool) {
	n := l.findGreaterOrEqual(key, nil)
	if n != nil && bytes.Equal(n.key, key) {
		return n.value, true
	}
	return nil, false
}

// Iterator walks the list in ascending key order.
type Iterator struct {
	n *node
}

// Iter returns an iterator positioned at the first entry.
func (l *List) Iter() *Iterator {
	return &Iterator{n: l.head.next[0]}
}

// Seek returns an iterator positioned at the first entry with key >= key.
func (l *List) Seek(key []byte) *Iterator {
	return &Iterator{n: l.findGreaterOrEqual(key, nil)}
}

// Valid reports whether the iterator is positioned at an entry.
func (it *Iterator) Valid() bool { return it.n != nil }

// Key returns the current key. Only valid when Valid() is true.
func (it *Iterator) Key() []byte { return it.n.key }

// Value returns the current value. Only valid when Valid() is true.
func (it *Iterator) Value() []byte { return it.n.value }

// Next advances to the following entry.
func (it *Iterator) Next() { it.n = it.n.next[0] }
