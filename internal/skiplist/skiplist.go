// Package skiplist provides an ordered in-memory map from byte-string keys
// to byte-string values, implemented as a probabilistic skip list. It backs
// the LSM engine's memtable: inserts and lookups are O(log n) expected, and
// an iterator yields entries in key order so a memtable can be flushed to a
// sorted sstable in a single pass.
//
// The list is safe for any number of concurrent readers (Get, Iter, Seek
// and iterator traversal) alongside a single writer: nodes are fully
// initialized before they are published through atomic next pointers, a
// published node's key is never modified, value replacement swaps an
// atomic pointer, and nodes are never unlinked. Writers (Set) must still
// be serialized externally — the memtable's engine runs them under its
// commit pipeline's store lock.
package skiplist

import (
	"bytes"
	"math/rand"
	"sync/atomic"
)

const (
	maxHeight = 12
	// pInverse is the inverse of the promotion probability: each node is
	// promoted to the next level with probability 1/pInverse.
	pInverse = 4
)

type node struct {
	key []byte
	// value is replaced atomically when a key is overwritten, so a
	// lock-free reader sees either the old or the new value, never a torn
	// mix.
	value atomic.Pointer[[]byte]
	next  [maxHeight]atomic.Pointer[node]
}

func (n *node) loadNext(level int) *node { return n.next[level].Load() }

// List is an ordered map with byte-slice keys. The zero value is not
// usable; construct with New. Readers may run concurrently with one
// writer; see the package comment for the exact contract.
type List struct {
	head *node
	// height is loaded by lock-free readers while the writer grows it.
	height atomic.Int32
	length int
	bytes  int // sum of key+value lengths, for size accounting
	rng    *rand.Rand
}

// New creates an empty list. seed makes tower heights deterministic, which
// keeps tests and simulations reproducible.
func New(seed int64) *List {
	l := &List{
		head: &node{},
		rng:  rand.New(rand.NewSource(seed)),
	}
	l.height.Store(1)
	return l
}

// Len returns the number of entries. Writer-side accounting: callers must
// synchronize with Set externally.
func (l *List) Len() int { return l.length }

// SizeBytes returns the total size of all keys and values, the measure the
// memtable uses against its flush threshold. Writer-side accounting, like
// Len.
func (l *List) SizeBytes() int { return l.bytes }

func (l *List) randomHeight() int {
	h := 1
	for h < maxHeight && l.rng.Intn(pInverse) == 0 {
		h++
	}
	return h
}

// findGreaterOrEqual locates the first node with key >= target and fills
// prev with the rightmost node before it at every level.
func (l *List) findGreaterOrEqual(key []byte, prev *[maxHeight]*node) *node {
	x := l.head
	for level := int(l.height.Load()) - 1; level >= 0; level-- {
		for {
			nx := x.loadNext(level)
			if nx == nil || bytes.Compare(nx.key, key) >= 0 {
				break
			}
			x = nx
		}
		if prev != nil {
			prev[level] = x
		}
	}
	return x.loadNext(0)
}

// Set inserts key → value, replacing any existing value for key. The key
// and value slices are retained; callers must not modify them afterwards.
// Set calls must be serialized externally; readers may run concurrently.
func (l *List) Set(key, value []byte) {
	var prev [maxHeight]*node
	if n := l.findGreaterOrEqual(key, &prev); n != nil && bytes.Equal(n.key, key) {
		old := n.value.Load()
		l.bytes += len(value) - len(*old)
		n.value.Store(&value)
		return
	}
	h := l.randomHeight()
	if h > int(l.height.Load()) {
		for level := int(l.height.Load()); level < h; level++ {
			prev[level] = l.head
		}
		l.height.Store(int32(h))
	}
	n := &node{key: key}
	n.value.Store(&value)
	// Initialize every level's forward pointer before publishing the node
	// at any level: a reader that encounters n through one level's link can
	// safely continue through any lower level.
	for level := 0; level < h; level++ {
		n.next[level].Store(prev[level].loadNext(level))
	}
	for level := 0; level < h; level++ {
		prev[level].next[level].Store(n)
	}
	l.length++
	l.bytes += len(key) + len(value)
}

// Get returns the value stored for key and whether it exists. Safe to call
// concurrently with one writer.
func (l *List) Get(key []byte) ([]byte, bool) {
	n := l.findGreaterOrEqual(key, nil)
	if n != nil && bytes.Equal(n.key, key) {
		return *n.value.Load(), true
	}
	return nil, false
}

// Iterator walks the list in ascending key order. Entries inserted after
// the iterator passes their position are skipped; entries inserted ahead
// of it become visible — the usual weakly-consistent lock-free contract.
type Iterator struct {
	n *node
}

// Iter returns an iterator positioned at the first entry.
func (l *List) Iter() *Iterator {
	return &Iterator{n: l.head.loadNext(0)}
}

// Seek returns an iterator positioned at the first entry with key >= key.
func (l *List) Seek(key []byte) *Iterator {
	return &Iterator{n: l.findGreaterOrEqual(key, nil)}
}

// Valid reports whether the iterator is positioned at an entry.
func (it *Iterator) Valid() bool { return it.n != nil }

// Key returns the current key. Only valid when Valid() is true.
func (it *Iterator) Key() []byte { return it.n.key }

// Value returns the current value. Only valid when Valid() is true.
func (it *Iterator) Value() []byte { return *it.n.value.Load() }

// Next advances to the following entry.
func (it *Iterator) Next() { it.n = it.n.loadNext(0) }
