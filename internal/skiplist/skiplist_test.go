package skiplist

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSetGet(t *testing.T) {
	l := New(1)
	l.Set([]byte("b"), []byte("2"))
	l.Set([]byte("a"), []byte("1"))
	l.Set([]byte("c"), []byte("3"))
	for k, want := range map[string]string{"a": "1", "b": "2", "c": "3"} {
		v, ok := l.Get([]byte(k))
		if !ok || string(v) != want {
			t.Errorf("Get(%q) = %q,%v want %q", k, v, ok, want)
		}
	}
	if _, ok := l.Get([]byte("zz")); ok {
		t.Errorf("Get of missing key returned ok")
	}
	if l.Len() != 3 {
		t.Errorf("Len = %d, want 3", l.Len())
	}
}

func TestOverwriteKeepsLenAndAdjustsBytes(t *testing.T) {
	l := New(1)
	l.Set([]byte("k"), []byte("short"))
	before := l.SizeBytes()
	l.Set([]byte("k"), []byte("much longer value"))
	if l.Len() != 1 {
		t.Errorf("Len after overwrite = %d, want 1", l.Len())
	}
	wantDelta := len("much longer value") - len("short")
	if got := l.SizeBytes() - before; got != wantDelta {
		t.Errorf("SizeBytes delta = %d, want %d", got, wantDelta)
	}
	v, _ := l.Get([]byte("k"))
	if string(v) != "much longer value" {
		t.Errorf("overwritten value = %q", v)
	}
}

func TestIterationSorted(t *testing.T) {
	l := New(7)
	r := rand.New(rand.NewSource(2))
	want := map[string]bool{}
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("key-%06d", r.Intn(100000))
		want[k] = true
		l.Set([]byte(k), []byte("v"))
	}
	var keys []string
	for it := l.Iter(); it.Valid(); it.Next() {
		keys = append(keys, string(it.Key()))
	}
	if len(keys) != len(want) {
		t.Fatalf("iterated %d keys, want %d", len(keys), len(want))
	}
	if !sort.StringsAreSorted(keys) {
		t.Errorf("iteration out of order")
	}
	for _, k := range keys {
		if !want[k] {
			t.Errorf("unexpected key %q", k)
		}
	}
}

func TestSeek(t *testing.T) {
	l := New(3)
	for _, k := range []string{"apple", "banana", "cherry", "fig"} {
		l.Set([]byte(k), []byte(k))
	}
	cases := []struct {
		seek, want string
	}{
		{"a", "apple"},
		{"apple", "apple"},
		{"b", "banana"},
		{"cz", "fig"},
		{"fig", "fig"},
	}
	for _, c := range cases {
		it := l.Seek([]byte(c.seek))
		if !it.Valid() || string(it.Key()) != c.want {
			t.Errorf("Seek(%q) at %q, want %q", c.seek, it.Key(), c.want)
		}
	}
	if it := l.Seek([]byte("zzz")); it.Valid() {
		t.Errorf("Seek past end should be invalid")
	}
}

func TestEmptyListIterator(t *testing.T) {
	l := New(1)
	if it := l.Iter(); it.Valid() {
		t.Errorf("iterator over empty list should be invalid")
	}
}

func TestQuickMatchesReferenceMap(t *testing.T) {
	f := func(ops []struct {
		Key byte
		Val uint16
	}) bool {
		l := New(11)
		ref := map[string]string{}
		for _, op := range ops {
			k := []byte{op.Key}
			v := []byte(fmt.Sprint(op.Val))
			l.Set(k, v)
			ref[string(k)] = string(v)
		}
		if l.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			got, ok := l.Get([]byte(k))
			if !ok || string(got) != v {
				return false
			}
		}
		// Iteration must be sorted and complete.
		prev := []byte(nil)
		n := 0
		for it := l.Iter(); it.Valid(); it.Next() {
			if prev != nil && bytes.Compare(prev, it.Key()) >= 0 {
				return false
			}
			prev = append([]byte(nil), it.Key()...)
			n++
		}
		return n == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSet(b *testing.B) {
	l := New(1)
	keys := make([][]byte, b.N)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%010d", i*2654435761%1000000007))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Set(keys[i], keys[i])
	}
}

func BenchmarkGet(b *testing.B) {
	l := New(1)
	const n = 100000
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%010d", i))
		l.Set(k, k)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := []byte(fmt.Sprintf("key-%010d", i%n))
		if _, ok := l.Get(k); !ok {
			b.Fatal("missing key")
		}
	}
}
