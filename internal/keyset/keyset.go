// Package keyset implements the set algebra underlying the paper's model of
// an sstable: a set of fixed-size keys, where the size of an sstable is
// proportional to the number of distinct keys it contains (Section 2 of
// Ghosh et al., "Fast Compaction Algorithms for NoSQL Databases",
// ICDCS 2015).
//
// A Set is stored as a strictly increasing slice of uint64 keys. Union and
// intersection run in linear time in the sizes of the operands, which keeps
// simulated merges CPU-faithful to real merge-sort based compaction: merging
// two sstables of sizes n and m costs O(n+m) work here exactly as it does on
// disk.
package keyset

import (
	"fmt"
	"sort"
	"strings"
)

// Set is an immutable, sorted set of uint64 keys. The zero value is the
// empty set and is ready to use. Functions in this package never mutate
// their operands; they return freshly allocated results.
type Set struct {
	keys []uint64
}

// New builds a Set from keys, which may be unsorted and contain duplicates.
func New(keys ...uint64) Set {
	if len(keys) == 0 {
		return Set{}
	}
	sorted := make([]uint64, len(keys))
	copy(sorted, keys)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	out := sorted[:1]
	for _, k := range sorted[1:] {
		if k != out[len(out)-1] {
			out = append(out, k)
		}
	}
	return Set{keys: out}
}

// FromSorted wraps a strictly increasing slice as a Set without copying.
// It panics if keys are not strictly increasing; this is a programmer error.
func FromSorted(keys []uint64) Set {
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			panic(fmt.Sprintf("keyset: FromSorted input not strictly increasing at index %d", i))
		}
	}
	return Set{keys: keys}
}

// Range builds the set {lo, lo+1, ..., hi-1}. It returns the empty set when
// hi <= lo.
func Range(lo, hi uint64) Set {
	if hi <= lo {
		return Set{}
	}
	keys := make([]uint64, 0, hi-lo)
	for k := lo; k < hi; k++ {
		keys = append(keys, k)
	}
	return Set{keys: keys}
}

// Len reports the cardinality of the set. In the paper's model this is the
// size of the sstable.
func (s Set) Len() int { return len(s.keys) }

// Empty reports whether the set has no keys.
func (s Set) Empty() bool { return len(s.keys) == 0 }

// Keys returns the underlying sorted key slice. Callers must not modify it.
func (s Set) Keys() []uint64 { return s.keys }

// Contains reports whether key is a member of the set.
func (s Set) Contains(key uint64) bool {
	i := sort.Search(len(s.keys), func(i int) bool { return s.keys[i] >= key })
	return i < len(s.keys) && s.keys[i] == key
}

// Union returns the set union s ∪ t. This is the paper's merge operation on
// sstables: one entry per key present in either input.
func (s Set) Union(t Set) Set {
	if s.Empty() {
		return t
	}
	if t.Empty() {
		return s
	}
	out := make([]uint64, 0, len(s.keys)+len(t.keys))
	i, j := 0, 0
	for i < len(s.keys) && j < len(t.keys) {
		switch {
		case s.keys[i] < t.keys[j]:
			out = append(out, s.keys[i])
			i++
		case s.keys[i] > t.keys[j]:
			out = append(out, t.keys[j])
			j++
		default:
			out = append(out, s.keys[i])
			i++
			j++
		}
	}
	out = append(out, s.keys[i:]...)
	out = append(out, t.keys[j:]...)
	return Set{keys: out}
}

// UnionAll returns the union of all sets. It merges smallest-first to bound
// total work, mirroring a k-way merge.
func UnionAll(sets ...Set) Set {
	switch len(sets) {
	case 0:
		return Set{}
	case 1:
		return sets[0]
	}
	acc := sets[0]
	for _, s := range sets[1:] {
		acc = acc.Union(s)
	}
	return acc
}

// Intersect returns the set intersection s ∩ t.
func (s Set) Intersect(t Set) Set {
	out := make([]uint64, 0)
	i, j := 0, 0
	for i < len(s.keys) && j < len(t.keys) {
		switch {
		case s.keys[i] < t.keys[j]:
			i++
		case s.keys[i] > t.keys[j]:
			j++
		default:
			out = append(out, s.keys[i])
			i++
			j++
		}
	}
	return Set{keys: out}
}

// IntersectLen returns |s ∩ t| without allocating the intersection. The
// LARGESTMATCH heuristic calls this for every candidate pair, so avoiding
// the allocation matters.
func (s Set) IntersectLen(t Set) int {
	n := 0
	i, j := 0, 0
	for i < len(s.keys) && j < len(t.keys) {
		switch {
		case s.keys[i] < t.keys[j]:
			i++
		case s.keys[i] > t.keys[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// UnionLen returns |s ∪ t| without allocating the union. SMALLESTOUTPUT
// with exact cardinalities uses this to rank candidate pairs.
func (s Set) UnionLen(t Set) int {
	return len(s.keys) + len(t.keys) - s.IntersectLen(t)
}

// Equal reports whether s and t contain exactly the same keys.
func (s Set) Equal(t Set) bool {
	if len(s.keys) != len(t.keys) {
		return false
	}
	for i, k := range s.keys {
		if t.keys[i] != k {
			return false
		}
	}
	return true
}

// Subset reports whether every key of s is in t.
func (s Set) Subset(t Set) bool {
	if len(s.keys) > len(t.keys) {
		return false
	}
	i, j := 0, 0
	for i < len(s.keys) && j < len(t.keys) {
		switch {
		case s.keys[i] == t.keys[j]:
			i++
			j++
		case s.keys[i] > t.keys[j]:
			j++
		default:
			return false
		}
	}
	return i == len(s.keys)
}

// Disjoint reports whether s and t share no keys.
func (s Set) Disjoint(t Set) bool { return s.IntersectLen(t) == 0 }

// String formats the set like {1, 2, 3}; large sets are abbreviated.
func (s Set) String() string {
	const maxShown = 16
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range s.keys {
		if i == maxShown {
			fmt.Fprintf(&b, ", … %d more", len(s.keys)-maxShown)
			break
		}
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", k)
	}
	b.WriteByte('}')
	return b.String()
}
