package keyset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewDeduplicatesAndSorts(t *testing.T) {
	s := New(5, 3, 3, 1, 5, 2)
	want := []uint64{1, 2, 3, 5}
	if got := s.Keys(); len(got) != len(want) {
		t.Fatalf("Keys() = %v, want %v", got, want)
	}
	for i, k := range want {
		if s.Keys()[i] != k {
			t.Fatalf("Keys() = %v, want %v", s.Keys(), want)
		}
	}
	if s.Len() != 4 {
		t.Errorf("Len() = %d, want 4", s.Len())
	}
}

func TestEmptySet(t *testing.T) {
	var s Set
	if !s.Empty() || s.Len() != 0 {
		t.Errorf("zero Set should be empty")
	}
	if s.Contains(0) {
		t.Errorf("empty set should contain nothing")
	}
	u := s.Union(New(1, 2))
	if u.Len() != 2 {
		t.Errorf("empty ∪ {1,2} = %v", u)
	}
	if got := s.Union(s); !got.Empty() {
		t.Errorf("empty ∪ empty = %v, want empty", got)
	}
}

func TestFromSortedPanicsOnUnsorted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("FromSorted accepted unsorted input")
		}
	}()
	FromSorted([]uint64{2, 1})
}

func TestFromSortedPanicsOnDuplicate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("FromSorted accepted duplicate keys")
		}
	}()
	FromSorted([]uint64{1, 1})
}

func TestRange(t *testing.T) {
	s := Range(3, 7)
	if s.Len() != 4 || !s.Contains(3) || !s.Contains(6) || s.Contains(7) {
		t.Errorf("Range(3,7) = %v", s)
	}
	if !Range(5, 5).Empty() || !Range(6, 2).Empty() {
		t.Errorf("degenerate ranges should be empty")
	}
}

func TestUnionBasic(t *testing.T) {
	a := New(1, 2, 3, 5)
	b := New(1, 2, 3, 4)
	u := a.Union(b)
	if !u.Equal(New(1, 2, 3, 4, 5)) {
		t.Errorf("union = %v", u)
	}
	// Operands must be unchanged.
	if !a.Equal(New(1, 2, 3, 5)) || !b.Equal(New(1, 2, 3, 4)) {
		t.Errorf("union mutated an operand")
	}
}

func TestIntersect(t *testing.T) {
	a := New(1, 2, 3, 5)
	b := New(3, 4, 5)
	if got := a.Intersect(b); !got.Equal(New(3, 5)) {
		t.Errorf("intersect = %v, want {3,5}", got)
	}
	if got := a.IntersectLen(b); got != 2 {
		t.Errorf("IntersectLen = %d, want 2", got)
	}
	if got := a.UnionLen(b); got != 5 {
		t.Errorf("UnionLen = %d, want 5", got)
	}
}

func TestSubsetAndDisjoint(t *testing.T) {
	a := New(2, 4)
	b := New(1, 2, 3, 4)
	if !a.Subset(b) {
		t.Errorf("{2,4} should be subset of {1,2,3,4}")
	}
	if b.Subset(a) {
		t.Errorf("{1,2,3,4} is not a subset of {2,4}")
	}
	if !New(1, 2).Disjoint(New(3, 4)) {
		t.Errorf("disjoint sets reported as overlapping")
	}
	if New(1, 2).Disjoint(New(2, 3)) {
		t.Errorf("overlapping sets reported as disjoint")
	}
	var empty Set
	if !empty.Subset(a) {
		t.Errorf("empty set should be subset of everything")
	}
}

func TestUnionAll(t *testing.T) {
	u := UnionAll(New(1), New(2), New(1, 3))
	if !u.Equal(New(1, 2, 3)) {
		t.Errorf("UnionAll = %v", u)
	}
	if !UnionAll().Empty() {
		t.Errorf("UnionAll() should be empty")
	}
	one := New(7)
	if !UnionAll(one).Equal(one) {
		t.Errorf("UnionAll(one) should be identity")
	}
}

func TestStringAbbreviates(t *testing.T) {
	small := New(1, 2, 3)
	if got := small.String(); got != "{1, 2, 3}" {
		t.Errorf("String() = %q", got)
	}
	big := Range(0, 100)
	if got := big.String(); len(got) > 200 {
		t.Errorf("large set String() not abbreviated: %q", got)
	}
}

// randomSet draws a set of size up to n from a universe of size m.
func randomSet(r *rand.Rand, n, m int) Set {
	keys := make([]uint64, r.Intn(n+1))
	for i := range keys {
		keys[i] = uint64(r.Intn(m))
	}
	return New(keys...)
}

func TestUnionProperties(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		a, b, c := randomSet(rr, 50, 80), randomSet(rr, 50, 80), randomSet(rr, 50, 80)
		// Commutativity, associativity, idempotence, identity.
		if !a.Union(b).Equal(b.Union(a)) {
			return false
		}
		if !a.Union(b).Union(c).Equal(a.Union(b.Union(c))) {
			return false
		}
		if !a.Union(a).Equal(a) {
			return false
		}
		var empty Set
		return a.Union(empty).Equal(a)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: r}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestInclusionExclusionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		a, b := randomSet(rr, 60, 90), randomSet(rr, 60, 90)
		return a.UnionLen(b)+a.IntersectLen(b) == a.Len()+b.Len() &&
			a.Union(b).Len() == a.UnionLen(b) &&
			a.Intersect(b).Len() == a.IntersectLen(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCardinalityIsSubmodular(t *testing.T) {
	// |S∪T| + |S∩T| <= |S| + |T| (with equality, for cardinality).
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		s, tt := randomSet(rr, 40, 60), randomSet(rr, 40, 60)
		return s.UnionLen(tt)+s.IntersectLen(tt) == s.Len()+tt.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWeights(t *testing.T) {
	s := New(1, 2, 3)
	var nilW Weights
	if got := nilW.WeightOf(s); got != 3 {
		t.Errorf("nil weights WeightOf = %v, want 3", got)
	}
	w := Weights{1: 2.5, 3: 0.5}
	if got := w.WeightOf(s); got != 4 { // 2.5 + 1 (default) + 0.5
		t.Errorf("WeightOf = %v, want 4", got)
	}
}

func TestCostFns(t *testing.T) {
	s := New(1, 2, 3, 4)
	if got := CardinalityCost(s); got != 4 {
		t.Errorf("CardinalityCost = %v", got)
	}
	if got := InitPlusCardinalityCost(10)(s); got != 14 {
		t.Errorf("InitPlusCardinalityCost = %v", got)
	}
	if got := WeightedCost(Weights{1: 3})(s); got != 6 {
		t.Errorf("WeightedCost = %v", got)
	}
}

func TestWeightedCostIsMonotoneSubmodular(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		w := Weights{}
		for k := uint64(0); k < 60; k++ {
			w[k] = rr.Float64() * 5
		}
		cost := WeightedCost(w)
		s, tt := randomSet(rr, 40, 60), randomSet(rr, 40, 60)
		// Monotone: f(S) <= f(S∪T). Submodular (modular here):
		// f(S∪T) + f(S∩T) <= f(S) + f(T) within float tolerance.
		u, x := s.Union(tt), s.Intersect(tt)
		const eps = 1e-9
		return cost(s) <= cost(u)+eps && cost(u)+cost(x) <= cost(s)+cost(tt)+eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkUnion(b *testing.B) {
	r := rand.New(rand.NewSource(42))
	x := randomSet(r, 10000, 1<<20)
	y := randomSet(r, 10000, 1<<20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.Union(y)
	}
}

func BenchmarkIntersectLen(b *testing.B) {
	r := rand.New(rand.NewSource(42))
	x := randomSet(r, 10000, 1<<20)
	y := randomSet(r, 10000, 1<<20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.IntersectLen(y)
	}
}
