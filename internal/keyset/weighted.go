package keyset

// Weights assigns a non-negative weight to each key, modeling the paper's
// SUBMODULARMERGING extension where "keys can have a non-negative weight
// (e.g., size of an entry corresponding to that key), and the merge cost of
// two sstables can be defined as the sum of the weights of the keys in the
// resultant merged sstable" (Section 2).
type Weights map[uint64]float64

// WeightOf returns the weight of a set under w: Σ_{k∈s} w(k). Keys missing
// from w weigh 1, so a nil Weights reduces to plain cardinality.
func (w Weights) WeightOf(s Set) float64 {
	if w == nil {
		return float64(s.Len())
	}
	total := 0.0
	for _, k := range s.Keys() {
		if wt, ok := w[k]; ok {
			total += wt
		} else {
			total++
		}
	}
	return total
}

// CostFn maps a merged set to its merge cost. The paper requires cost
// functions to be monotone submodular; the constructors in this package all
// satisfy that.
type CostFn func(Set) float64

// CardinalityCost is the BINARYMERGING cost: f(X) = |X|.
func CardinalityCost(s Set) float64 { return float64(s.Len()) }

// WeightedCost returns the submodular cost f(X) = Σ_{k∈X} w(k).
func WeightedCost(w Weights) CostFn {
	return func(s Set) float64 { return w.WeightOf(s) }
}

// InitPlusCardinalityCost returns f(X) = init + |X|, the paper's example of
// "a constant cost ... involved with initializing a new sstable". Monotone
// and submodular for init >= 0.
func InitPlusCardinalityCost(init float64) CostFn {
	return func(s Set) float64 { return init + float64(s.Len()) }
}
