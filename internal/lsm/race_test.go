package lsm

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// This file is the race harness for non-blocking major compaction:
// readers, writers and iterators hammer the store while MajorCompact runs
// concurrently, under `go test -race`. The tests assert the two properties
// the snapshot/swap design must provide: no write is ever lost, and no
// reader ever touches a table that compaction has closed (the race
// detector and closed-file errors would catch the latter).

// TestConcurrentOpsDuringMajorCompact runs writers, point readers and
// scanners concurrently with repeated background major compactions, then
// verifies every writer's final value survived.
func TestConcurrentOpsDuringMajorCompact(t *testing.T) {
	db, err := Open(t.TempDir(), Options{
		MemtableBytes: 2 << 10, // tiny: force frequent flushes
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	// Seed enough tables that the first compaction has real work.
	for i := 0; i < 8; i++ {
		for j := 0; j < 50; j++ {
			key := fmt.Sprintf("seed-%02d-%03d", i, j)
			if err := db.Put([]byte(key), bytes.Repeat([]byte("s"), 64)); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
	}

	const (
		writers       = 4
		opsPerWriter  = 400
		keysPerWriter = 100
	)
	var (
		writerWG sync.WaitGroup // writers run to completion
		auxWG    sync.WaitGroup // readers/scanner/compactor run until stop
		stop     atomic.Bool
		testErr  atomic.Value // first error from any goroutine
	)
	fail := func(err error) {
		testErr.CompareAndSwap(nil, err)
	}

	// Writers: each owns a disjoint key range and records its final
	// values; every fifth op is a delete.
	finals := make([]map[string]string, writers)
	for w := 0; w < writers; w++ {
		finals[w] = make(map[string]string)
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			final := finals[w]
			for i := 0; i < opsPerWriter; i++ {
				key := fmt.Sprintf("w%d-key-%03d", w, i%keysPerWriter)
				if i%5 == 4 {
					if err := db.Delete([]byte(key)); err != nil {
						fail(fmt.Errorf("writer %d delete: %w", w, err))
						return
					}
					delete(final, key)
					continue
				}
				val := fmt.Sprintf("w%d-val-%d", w, i)
				if err := db.Put([]byte(key), []byte(val)); err != nil {
					fail(fmt.Errorf("writer %d put: %w", w, err))
					return
				}
				final[key] = val
			}
		}(w)
	}

	// Point readers: seeded keys must always resolve; writer keys are in
	// flux, so only errors other than ErrNotFound are failures.
	for r := 0; r < 2; r++ {
		auxWG.Add(1)
		go func(r int) {
			defer auxWG.Done()
			for i := 0; !stop.Load(); i++ {
				seeded := fmt.Sprintf("seed-%02d-%03d", i%8, i%50)
				if _, err := db.Get([]byte(seeded)); err != nil {
					fail(fmt.Errorf("reader %d: seeded key %s: %w", r, seeded, err))
					return
				}
				churning := fmt.Sprintf("w%d-key-%03d", i%writers, i%keysPerWriter)
				if _, err := db.Get([]byte(churning)); err != nil && !errors.Is(err, ErrNotFound) {
					fail(fmt.Errorf("reader %d: churning key %s: %w", r, churning, err))
					return
				}
			}
		}(r)
	}

	// Scanner: full iterations concurrent with compaction table swaps;
	// the snapshot must stay readable after its tables are superseded.
	auxWG.Add(1)
	go func() {
		defer auxWG.Done()
		for !stop.Load() {
			prev := ""
			err := db.Scan(func(k, v []byte) error {
				if string(k) <= prev {
					return fmt.Errorf("scan out of order: %q after %q", k, prev)
				}
				prev = string(k)
				return nil
			})
			if err != nil {
				fail(fmt.Errorf("scanner: %w", err))
				return
			}
		}
	}()

	// Compactor: repeated non-blocking major compactions while the
	// workload runs, cycling strategies and fan-ins.
	var compactions atomic.Int64
	auxWG.Add(1)
	go func() {
		defer auxWG.Done()
		for i := 0; !stop.Load(); i++ {
			strat := []string{"SI", "BT(I)", "RANDOM"}[i%3]
			if _, err := db.MajorCompact(strat, 2+i%3, int64(i)); err != nil {
				fail(fmt.Errorf("compactor: %w", err))
				return
			}
			compactions.Add(1)
		}
	}()

	writerWG.Wait()
	stop.Store(true)
	auxWG.Wait()

	if err, _ := testErr.Load().(error); err != nil {
		t.Fatal(err)
	}
	if compactions.Load() == 0 {
		t.Fatal("no compaction completed during the workload")
	}

	// One final compaction, then verify no write was lost and every
	// deleted key stays gone.
	if _, err := db.MajorCompact("BT(I)", 3, 1); err != nil {
		t.Fatal(err)
	}
	for w, final := range finals {
		for i := 0; i < keysPerWriter; i++ {
			key := fmt.Sprintf("w%d-key-%03d", w, i)
			want, live := final[key]
			got, err := db.Get([]byte(key))
			switch {
			case live && err != nil:
				t.Fatalf("lost write: Get(%s) = %v, want %q", key, err, want)
			case live && string(got) != want:
				t.Fatalf("wrong value: Get(%s) = %q, want %q", key, got, want)
			case !live && !errors.Is(err, ErrNotFound):
				t.Fatalf("deleted key resurfaced: Get(%s) = %q, %v", key, got, err)
			}
		}
	}
}

// TestBackgroundCompactionTriggerAndBackpressure drives a write burst with
// the background compactor enabled and verifies the trigger fires, the
// table count converges below the stall threshold, and stalled writes are
// not lost.
func TestBackgroundCompactionTriggerAndBackpressure(t *testing.T) {
	db, err := Open(t.TempDir(), Options{
		MemtableBytes: 1 << 10,
		Background:    &BackgroundConfig{Trigger: 4, Stall: 8, Strategy: "BT(I)", K: 3},
		Seed:          2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	want := make(map[string]string)
	val := bytes.Repeat([]byte("v"), 128)
	for i := 0; i < 3000; i++ {
		key := fmt.Sprintf("key-%04d", i%500)
		v := fmt.Sprintf("%s-%d", val, i)
		if err := db.Put([]byte(key), []byte(v)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		want[key] = v
	}
	if err := db.BackgroundErr(); err != nil {
		t.Fatalf("background compactor failed: %v", err)
	}
	st := db.Stats()
	if st.MajorCompactions == 0 {
		t.Fatalf("background compactor never ran: %+v", st)
	}
	if st.Tables >= 8 {
		t.Fatalf("backpressure failed to bound tables: %+v", st)
	}
	for key, v := range want {
		got, err := db.Get([]byte(key))
		if err != nil || string(got) != v {
			t.Fatalf("Get(%s) = %q, %v; want %q", key, got, err, v)
		}
	}
}

// TestCloseDuringBackgroundCompaction closes the store while a major
// compaction is merging; the compaction must abort cleanly and a reopen
// must see every acknowledged write.
func TestCloseDuringBackgroundCompaction(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{MemtableBytes: 1 << 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string]string)
	for i := 0; i < 1200; i++ {
		key := fmt.Sprintf("key-%04d", i%300)
		v := fmt.Sprintf("val-%d", i)
		if err := db.Put([]byte(key), []byte(v)); err != nil {
			t.Fatal(err)
		}
		want[key] = v
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}

	compactDone := make(chan error, 1)
	go func() {
		_, err := db.MajorCompact("BT(I)", 2, 1)
		compactDone <- err
	}()
	if err := db.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// The compaction either finished before Close took effect or aborted
	// with ErrClosed; both are valid.
	if err := <-compactDone; err != nil && !errors.Is(err, ErrClosed) {
		t.Fatalf("compaction during close: %v", err)
	}

	db, err = Open(dir, Options{Seed: 4})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db.Close()
	for key, v := range want {
		got, err := db.Get([]byte(key))
		if err != nil || string(got) != v {
			t.Fatalf("after reopen: Get(%s) = %q, %v; want %q", key, got, err, v)
		}
	}
}
