package lsm

import (
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/compaction"
	"repro/internal/keyset"
	"repro/internal/sstable"
)

// CompactionState is the phase of the major-compaction state machine. It
// moves idle → planning → merging → swapping → idle; only the planning and
// swapping phases hold the store lock, and both are short.
type CompactionState int32

const (
	// CompactionIdle: no major compaction in flight.
	CompactionIdle CompactionState = iota
	// CompactionPlanning: snapshotting the table set and computing the
	// merge schedule (brief critical section for the snapshot).
	CompactionPlanning
	// CompactionMerging: executing the schedule's merges off-lock on the
	// worker pool; reads and writes proceed concurrently.
	CompactionMerging
	// CompactionSwapping: committing the merged result to the manifest and
	// table set (brief critical section).
	CompactionSwapping
)

// String returns the lower-case phase name.
func (s CompactionState) String() string {
	switch s {
	case CompactionIdle:
		return "idle"
	case CompactionPlanning:
		return "planning"
	case CompactionMerging:
		return "merging"
	case CompactionSwapping:
		return "swapping"
	}
	return fmt.Sprintf("CompactionState(%d)", int32(s))
}

// CompactionState returns the current phase of the major-compaction state
// machine. It is safe to call from any goroutine without blocking.
func (db *DB) CompactionState() CompactionState {
	return CompactionState(db.state.Load())
}

func (db *DB) setState(s CompactionState) { db.state.Store(int32(s)) }

// CompactionResult reports what a major compaction did: the abstract
// schedule costs from the paper's model and the real bytes moved on disk.
type CompactionResult struct {
	// Strategy is the chooser that scheduled the merges.
	Strategy string
	// Mode is "background" for a non-blocking compaction or "blocking" for
	// one that held the store lock throughout.
	Mode string
	// TablesBefore is the number of sstables merged (the snapshot size).
	TablesBefore int
	// TablesAfter is the number of live sstables immediately after the
	// swap; above one for background compactions that overlapped flushes.
	TablesAfter int
	// StepStats holds per-merge disk I/O, indexed by schedule step.
	StepStats []sstable.MergeStats
	// BytesRead and BytesWritten total the disk I/O: the concrete
	// realization of costactual.
	BytesRead, BytesWritten uint64
	// CostSimple and CostActual are the abstract schedule costs in keys
	// (equation 2.1 and Section 2 of the paper).
	CostSimple, CostActual int
	// Duration is the wall-clock time of planning plus merging.
	Duration time.Duration
}

// TotalIO returns BytesRead + BytesWritten.
func (r *CompactionResult) TotalIO() uint64 { return r.BytesRead + r.BytesWritten }

// MajorCompact merges all live sstables (after flushing the memtable) into
// a single table, scheduling the pairwise/k-way merges with the named
// strategy from the compaction package ("SI", "SO", "BT(I)", ...).
//
// The compaction is non-blocking: the live table set is snapshotted and
// the memtable flushed in a short critical section, the merges execute
// off-lock on the compaction package's worker pool (so a BALANCETREE
// schedule's independent merges run in parallel, Section 5.1 of the
// paper), and the merged root is swapped into the manifest atomically in a
// second short critical section. Reads, writes, flushes and minor
// compactions proceed concurrently throughout; tables that flush during
// the merge survive the swap, so the store holds those tables plus the
// merged root afterwards. Concurrent MajorCompact calls serialize.
//
// Crash safety: the manifest is only rewritten at the swap. A crash before
// the swap leaves the old manifest pointing at the old tables; the merge
// outputs become orphans that Open deletes on recovery.
func (db *DB) MajorCompact(strategy string, k int, seed int64) (*CompactionResult, error) {
	chooser, err := compaction.NewChooserByName(strategy, seed)
	if err != nil {
		return nil, err
	}
	db.majorMu.Lock()
	defer db.majorMu.Unlock()
	start := time.Now()

	// Planning: flush and snapshot under the locks, then plan off-lock.
	// The flush swaps the WAL, so the short planning section also holds
	// the commit-pipeline lock (pipeMu before mu, the global order).
	db.pipeMu.Lock()
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		db.pipeMu.Unlock()
		return nil, ErrClosed
	}
	if err := db.readOnlyErrLocked(); err != nil {
		db.mu.Unlock()
		db.pipeMu.Unlock()
		return nil, err
	}
	db.setState(CompactionPlanning)
	if err := db.flushLocked(); err != nil {
		db.setState(CompactionIdle)
		db.mu.Unlock()
		db.pipeMu.Unlock()
		return nil, err
	}
	res := &CompactionResult{Strategy: strategy, Mode: "background", TablesBefore: len(db.tables)}
	if len(db.tables) <= 1 {
		db.setState(CompactionIdle)
		res.TablesAfter = len(db.tables)
		db.mu.Unlock()
		db.pipeMu.Unlock()
		res.Duration = time.Since(start)
		return res, nil
	}
	snap := make([]*tableHandle, len(db.tables))
	copy(snap, db.tables)
	for _, th := range snap {
		th.retain()
		th.compacting = true
	}
	db.mu.Unlock()
	db.pipeMu.Unlock()

	// abort releases the snapshot and resets the state machine without
	// touching the table set; used on every failure path past this point.
	abort := func(err error) (*CompactionResult, error) {
		db.mu.Lock()
		for _, th := range snap {
			th.compacting = false
		}
		db.setState(CompactionIdle)
		db.stallCond.Broadcast()
		db.mu.Unlock()
		releaseTables(snap)
		return nil, err
	}

	sets := make([]keyset.Set, len(snap))
	for i, th := range snap {
		ks, err := tableKeySet(th.rd)
		if err != nil {
			return abort(err)
		}
		sets[i] = ks
	}
	inst := compaction.NewInstance(sets...)
	sched, err := compaction.Run(inst, k, chooser)
	if err != nil {
		return abort(err)
	}
	res.CostSimple = sched.CostSimple()
	res.CostActual = sched.CostActual()

	// Merging: execute the schedule off-lock on the worker pool. Snapshot
	// readers serve concurrent Gets and scans while the merges read them.
	db.setState(CompactionMerging)
	nodes, stats, err := db.executeSchedule(sched, snap, db.allocTableName)
	created := nodes[len(snap):]
	removeCreated := func() {
		for _, th := range created {
			if th != nil {
				th.rd.Close()
				if err := db.fs.Remove(filepath.Join(db.dir, th.name)); err != nil {
					db.cleanupFails.Add(1)
				}
			}
		}
	}
	if err != nil {
		removeCreated()
		return abort(err)
	}
	for _, st := range stats {
		res.StepStats = append(res.StepStats, st)
		res.BytesRead += st.BytesRead
		res.BytesWritten += st.BytesWritten
	}

	if db.hookBeforeSwap != nil {
		if err := db.hookBeforeSwap(); err != nil {
			// Simulated crash between merge completion and manifest swap:
			// leave the merge outputs on disk (recovery must delete them as
			// orphans), close their readers, and keep the old table set.
			for _, th := range created {
				th.rd.Close()
			}
			return abort(err)
		}
	}

	// Swapping: commit the root to the manifest and the live table set in
	// a short critical section, then retire the snapshot.
	db.mu.Lock()
	db.setState(CompactionSwapping)
	if db.closed {
		db.mu.Unlock()
		removeCreated()
		return abort(ErrClosed)
	}
	root := nodes[sched.Root.ID]
	inSnap := make(map[*tableHandle]bool, len(snap))
	for _, th := range snap {
		inSnap[th] = true
	}
	// Tables flushed or minor-compacted during the merge stay, newest
	// first; the merged root holds the oldest data and goes last.
	newTables := make([]*tableHandle, 0, len(db.tables)-len(snap)+1)
	for _, th := range db.tables {
		if !inSnap[th] {
			newTables = append(newTables, th)
		}
	}
	newTables = append(newTables, root)
	oldManTables := db.man.tables
	db.man.tables = make([]string, len(newTables))
	for i, th := range newTables {
		db.man.tables[i] = th.name
	}
	db.man.recordBounds(newTables)
	if err := db.man.save(db.fs, db.dir); err != nil {
		// The swap's manifest rewrite failed: the old manifest may no
		// longer be trustworthy on disk. Keep the old in-memory table set
		// and degrade to read-only — acknowledging further writes against
		// an unverifiable manifest risks losing them.
		db.man.tables = oldManTables
		db.failDurabilityLocked(err)
		db.mu.Unlock()
		removeCreated()
		return abort(err)
	}
	db.tables = newTables
	db.installViewLocked()
	db.generation++
	root.gen = db.generation
	db.majorCompactions++
	db.bytesCompacted += res.BytesWritten
	db.recordPickLocked(strategy)
	res.TablesAfter = len(newTables)
	// The snapshot tables left the live set: drop their live reference and
	// mark them for deletion once the last concurrent reader drains.
	// Intermediate merge outputs are referenced by nobody else and die now.
	for _, th := range snap {
		th.compacting = false
		th.obsolete.Store(true)
		th.release()
	}
	for _, th := range created {
		if th != root {
			th.obsolete.Store(true)
			th.release()
		}
	}
	db.setState(CompactionIdle)
	db.stallCond.Broadcast()
	db.mu.Unlock()
	releaseTables(snap) // the compaction's own snapshot reference
	res.Duration = time.Since(start)
	return res, nil
}

// MajorCompactBlocking is MajorCompact holding the store lock for the
// entire run, stalling every write, flush and minor compaction until the
// merge completes. It exists as the measurement baseline for the
// non-blocking path (see BenchmarkGetDuringMajorCompaction) and for
// callers that want compaction to exclude all concurrent mutation. Point
// reads, scans and snapshots proceed even here: the lock-free read path
// pins the published view and never takes the store lock.
func (db *DB) MajorCompactBlocking(strategy string, k int, seed int64) (*CompactionResult, error) {
	chooser, err := compaction.NewChooserByName(strategy, seed)
	if err != nil {
		return nil, err
	}
	db.majorMu.Lock()
	defer db.majorMu.Unlock()
	// The blocking baseline excludes all concurrent activity: it holds the
	// commit pipeline and the store lock for the entire run.
	db.pipeMu.Lock()
	defer db.pipeMu.Unlock()
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil, ErrClosed
	}
	if err := db.readOnlyErrLocked(); err != nil {
		return nil, err
	}
	db.setState(CompactionPlanning)
	defer db.setState(CompactionIdle)
	start := time.Now()
	if err := db.flushLocked(); err != nil {
		return nil, err
	}
	res := &CompactionResult{Strategy: strategy, Mode: "blocking", TablesBefore: len(db.tables)}
	if len(db.tables) <= 1 {
		res.TablesAfter = len(db.tables)
		res.Duration = time.Since(start)
		return res, nil
	}

	sets := make([]keyset.Set, len(db.tables))
	for i, th := range db.tables {
		ks, err := tableKeySet(th.rd)
		if err != nil {
			return nil, err
		}
		sets[i] = ks
	}
	inst := compaction.NewInstance(sets...)
	sched, err := compaction.Run(inst, k, chooser)
	if err != nil {
		return nil, err
	}
	res.CostSimple = sched.CostSimple()
	res.CostActual = sched.CostActual()

	db.setState(CompactionMerging)
	// db.mu is already held for the whole run, but merge workers call
	// alloc concurrently, so the counter needs its own lock here.
	var allocMu sync.Mutex
	alloc := func() string {
		allocMu.Lock()
		name := fmt.Sprintf("%06d.sst", db.man.nextFileNum)
		db.man.nextFileNum++
		allocMu.Unlock()
		return name
	}
	snap := db.tables
	nodes, stats, err := db.executeSchedule(sched, snap, alloc)
	created := nodes[len(snap):]
	if err != nil {
		for _, th := range created {
			if th != nil {
				th.rd.Close()
				if rerr := db.fs.Remove(filepath.Join(db.dir, th.name)); rerr != nil {
					db.cleanupFails.Add(1)
				}
			}
		}
		return nil, err
	}
	for _, st := range stats {
		res.StepStats = append(res.StepStats, st)
		res.BytesRead += st.BytesRead
		res.BytesWritten += st.BytesWritten
	}

	db.setState(CompactionSwapping)
	root := nodes[sched.Root.ID]
	oldManTables := db.man.tables
	db.man.tables = []string{root.name}
	db.man.recordBounds([]*tableHandle{root})
	if err := db.man.save(db.fs, db.dir); err != nil {
		db.man.tables = oldManTables
		db.failDurabilityLocked(err)
		for _, th := range created {
			th.rd.Close()
			if rerr := db.fs.Remove(filepath.Join(db.dir, th.name)); rerr != nil {
				db.cleanupFails.Add(1)
			}
		}
		return nil, err
	}
	old := db.tables
	db.tables = []*tableHandle{root}
	db.installViewLocked()
	db.generation++
	root.gen = db.generation
	db.majorCompactions++
	db.bytesCompacted += res.BytesWritten
	db.recordPickLocked(strategy)
	res.TablesAfter = 1
	for _, th := range old {
		th.obsolete.Store(true)
		th.release()
	}
	for _, th := range created {
		if th != root {
			th.obsolete.Store(true)
			th.release()
		}
	}
	db.stallCond.Broadcast()
	res.Duration = time.Since(start)
	return res, nil
}

// allocTableName reserves the next sstable file number in a brief critical
// section, so merge workers running off-lock never collide with concurrent
// flushes.
func (db *DB) allocTableName() string {
	db.mu.Lock()
	name := fmt.Sprintf("%06d.sst", db.man.nextFileNum)
	db.man.nextFileNum++
	db.mu.Unlock()
	return name
}

// executeSchedule runs sched's merges on the compaction package's worker
// pool (compaction.ExecuteParallelFunc): leaf i of the schedule is snap[i],
// every step merges its inputs' files into a fresh sstable named by alloc,
// and independent steps run concurrently up to Options.CompactionWorkers.
// Tombstones survive intermediate merges — dropping one early would let an
// older version in a not-yet-merged table resurface — and are purged only
// at the root merge, which covers all snapshot data.
//
// The returned slice maps node ID → handle: the first len(snap) entries
// are the inputs, the rest the created merge outputs (nil where a step did
// not run). On error the caller owns closing and removing created tables.
func (db *DB) executeSchedule(sched *compaction.Schedule, snap []*tableHandle, alloc func() string) ([]*tableHandle, []sstable.MergeStats, error) {
	nodes := make([]*tableHandle, len(snap)+len(sched.Steps))
	for i, th := range snap {
		nodes[i] = th
	}
	stats := make([]sstable.MergeStats, len(sched.Steps))
	rootID := sched.Root.ID
	run := func(i int) error {
		step := sched.Steps[i]
		inputs := make([]*sstable.Reader, len(step.Inputs))
		for j, in := range step.Inputs {
			if in.ID >= len(nodes) || nodes[in.ID] == nil {
				return fmt.Errorf("lsm: compaction step references unknown node %d", in.ID)
			}
			inputs[j] = nodes[in.ID].rd
		}
		name := alloc()
		path := filepath.Join(db.dir, name)
		f, err := db.fs.Create(path)
		if err != nil {
			return fmt.Errorf("lsm: compaction output: %w", err)
		}
		// Failure cleanup mirrors flushLocked: close before remove, return
		// the first error, count (never propagate) removal failures.
		removeOutput := func() {
			if rerr := db.fs.Remove(path); rerr != nil {
				db.cleanupFails.Add(1)
			}
		}
		dropTombstones := step.Output.ID == rootID
		mstats, err := sstable.MergeOpts(f, dropTombstones, db.tableWriterOpts(), inputs...)
		if err != nil {
			f.Close()
			removeOutput()
			return err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			removeOutput()
			return err
		}
		if err := f.Close(); err != nil {
			removeOutput()
			return fmt.Errorf("lsm: close compaction output: %w", err)
		}
		rd, err := db.openTable(name)
		if err != nil {
			removeOutput()
			return err
		}
		nodes[step.Output.ID] = db.newTableHandle(name, rd, 0)
		stats[i] = mstats
		return nil
	}
	err := compaction.ExecuteParallelFunc(sched, db.opts.CompactionWorkers, run)
	return nodes, stats, err
}

// tableKeySet scans a table and returns its keys hashed into the uint64
// universe of the abstract model.
func tableKeySet(rd *sstable.Reader) (keyset.Set, error) {
	keys := make([]uint64, 0, rd.EntryCount())
	it := rd.Iter()
	for ; it.Valid(); it.Next() {
		keys = append(keys, hashBytes(it.Entry().Key))
	}
	if err := it.Err(); err != nil {
		return keyset.Set{}, err
	}
	return keyset.New(keys...), nil
}

// hashBytes is FNV-1a over the key bytes.
func hashBytes(b []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime
	}
	return h
}
