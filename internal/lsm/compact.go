package lsm

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/compaction"
	"repro/internal/keyset"
	"repro/internal/sstable"
)

// CompactionResult reports what a major compaction did: the abstract
// schedule costs from the paper's model and the real bytes moved on disk.
type CompactionResult struct {
	// Strategy is the chooser that scheduled the merges.
	Strategy string
	// TablesBefore is the number of sstables merged.
	TablesBefore int
	// StepStats holds per-merge disk I/O, in execution order.
	StepStats []sstable.MergeStats
	// BytesRead and BytesWritten total the disk I/O: the concrete
	// realization of costactual.
	BytesRead, BytesWritten uint64
	// CostSimple and CostActual are the abstract schedule costs in keys
	// (equation 2.1 and Section 2 of the paper).
	CostSimple, CostActual int
	// Duration is the wall-clock time of planning plus merging.
	Duration time.Duration
}

// TotalIO returns BytesRead + BytesWritten.
func (r *CompactionResult) TotalIO() uint64 { return r.BytesRead + r.BytesWritten }

// MajorCompact merges all live sstables (after flushing the memtable) into
// a single table, scheduling the pairwise/k-way merges with the named
// strategy from the compaction package ("SI", "SO", "BT(I)", ...). The
// whole store is locked for the duration; this reproduction favors
// measurement fidelity over concurrency.
func (db *DB) MajorCompact(strategy string, k int, seed int64) (*CompactionResult, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil, ErrClosed
	}
	chooser, err := compaction.NewChooserByName(strategy, seed)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	if err := db.flushLocked(); err != nil {
		return nil, err
	}
	res := &CompactionResult{Strategy: strategy, TablesBefore: len(db.tables)}
	if len(db.tables) <= 1 {
		res.Duration = time.Since(start)
		return res, nil
	}

	// Phase 1: abstract the sstables as key sets (keys hashed to uint64,
	// the paper's fixed-size-entry model) and plan the merge schedule.
	sets := make([]keyset.Set, len(db.tables))
	for i, th := range db.tables {
		ks, err := tableKeySet(th.rd)
		if err != nil {
			return nil, err
		}
		sets[i] = ks
	}
	inst := compaction.NewInstance(sets...)
	sched, err := compaction.Run(inst, k, chooser)
	if err != nil {
		return nil, err
	}
	res.CostSimple = sched.CostSimple()
	res.CostActual = sched.CostActual()

	// Phase 2: execute the schedule on the real files. Leaf i of the
	// schedule is db.tables[i]; every step merges its inputs' files into a
	// fresh sstable. Tombstones survive intermediate merges — dropping one
	// early would let an older version in a not-yet-merged table
	// resurface — and are purged only at the root merge, which covers all
	// data.
	handles := make(map[int]*tableHandle, len(db.tables)+len(sched.Steps))
	for i, th := range db.tables {
		handles[i] = th
	}
	var created []*tableHandle
	cleanup := func() {
		for _, th := range created {
			th.rd.Close()
			os.Remove(filepath.Join(db.dir, th.name))
		}
	}
	for _, step := range sched.Steps {
		inputs := make([]*sstable.Reader, len(step.Inputs))
		for j, in := range step.Inputs {
			h, ok := handles[in.ID]
			if !ok {
				cleanup()
				return nil, fmt.Errorf("lsm: compaction step references unknown node %d", in.ID)
			}
			inputs[j] = h.rd
		}
		name := fmt.Sprintf("%06d.sst", db.man.nextFileNum)
		db.man.nextFileNum++
		path := filepath.Join(db.dir, name)
		f, err := os.Create(path)
		if err != nil {
			cleanup()
			return nil, fmt.Errorf("lsm: compaction output: %w", err)
		}
		dropTombstones := step.Output.ID == sched.Root.ID
		stats, err := sstable.MergeCompressed(f, dropTombstones, db.opts.Compression, inputs...)
		if err != nil {
			f.Close()
			os.Remove(path)
			cleanup()
			return nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			cleanup()
			return nil, err
		}
		if err := f.Close(); err != nil {
			cleanup()
			return nil, err
		}
		rd, err := db.openTable(name)
		if err != nil {
			cleanup()
			return nil, err
		}
		th := &tableHandle{name: name, rd: rd}
		handles[step.Output.ID] = th
		created = append(created, th)
		res.StepStats = append(res.StepStats, stats)
		res.BytesRead += stats.BytesRead
		res.BytesWritten += stats.BytesWritten
	}

	// Install the root as the only live table.
	rootHandle := handles[sched.Root.ID]
	old := db.tables
	intermediates := created[:len(created)-1]
	db.tables = []*tableHandle{rootHandle}
	db.man.tables = []string{rootHandle.name}
	if err := db.man.save(db.dir); err != nil {
		cleanup()
		return nil, err
	}
	for _, th := range old {
		th.rd.Close()
		os.Remove(filepath.Join(db.dir, th.name))
	}
	for _, th := range intermediates {
		th.rd.Close()
		os.Remove(filepath.Join(db.dir, th.name))
	}
	res.Duration = time.Since(start)
	return res, nil
}

// tableKeySet scans a table and returns its keys hashed into the uint64
// universe of the abstract model.
func tableKeySet(rd *sstable.Reader) (keyset.Set, error) {
	keys := make([]uint64, 0, rd.EntryCount())
	it := rd.Iter()
	for ; it.Valid(); it.Next() {
		keys = append(keys, hashBytes(it.Entry().Key))
	}
	if err := it.Err(); err != nil {
		return keyset.Set{}, err
	}
	return keyset.New(keys...), nil
}

// hashBytes is FNV-1a over the key bytes.
func hashBytes(b []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime
	}
	return h
}
