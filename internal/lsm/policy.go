package lsm

import (
	"bytes"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/compaction"
	"repro/internal/hll"
	"repro/internal/sstable"
)

// This file implements *minor* compaction: background merges of a subset
// of sstables that keep the table count bounded between major compactions.
// The paper's related-work section sketches both classic policies
// implemented here — Bigtable's count-threshold trigger and Cassandra's
// Size-Tiered strategy, which "merges sstables of equal size" and which
// the paper notes "bears resemblance to our SMALLESTINPUT heuristic".
// Tombstones always survive minor compactions: only a major compaction
// covers all data and may purge them.

// TableInfo describes one live sstable to a compaction policy.
type TableInfo struct {
	// Name is the sstable file name.
	Name string
	// SizeBytes is the encoded file size.
	SizeBytes uint64
	// Entries is the number of stored entries.
	Entries uint64
	// Smallest and Largest bound the table's key range (both inclusive);
	// nil for an empty table.
	Smallest, Largest []byte
	// Sketch is the table's HyperLogLog key sketch, persisted at write
	// time, or nil for tables written before sketches existed. Policies
	// must treat it as read-only (Clone before merging).
	Sketch *hll.Sketch
	// Level is the table's position in a leveled layout; 0 for fresh
	// flushes and for flat (size-tiered/threshold) layouts.
	Level int
}

// CompactionPolicy decides which tables a minor compaction should merge.
type CompactionPolicy interface {
	// Name identifies the policy in results and logs.
	Name() string
	// Pick returns the indices (into tables) to merge, or nil if no
	// compaction is warranted. Returned groups must have length ≥ 2.
	Pick(tables []TableInfo) []int
}

// ThresholdPolicy is the Bigtable-style trigger: once the number of
// sstables reaches MaxTables, merge the Fanin smallest ones.
type ThresholdPolicy struct {
	// MaxTables triggers compaction when the live table count reaches it.
	// Zero selects 8.
	MaxTables int
	// Fanin is how many tables to merge per compaction. Zero selects 4.
	Fanin int
}

// Name implements CompactionPolicy.
func (p ThresholdPolicy) Name() string { return "threshold" }

// Pick implements CompactionPolicy.
func (p ThresholdPolicy) Pick(tables []TableInfo) []int {
	maxTables, fanin := p.MaxTables, p.Fanin
	if maxTables <= 0 {
		maxTables = 8
	}
	if fanin <= 1 {
		fanin = 4
	}
	if len(tables) < maxTables {
		return nil
	}
	idx := make([]int, len(tables))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return tables[idx[a]].SizeBytes < tables[idx[b]].SizeBytes })
	if fanin > len(idx) {
		fanin = len(idx)
	}
	return idx[:fanin]
}

// SizeTieredPolicy is Cassandra's STCS: tables are grouped into buckets of
// similar size (within [BucketLow·avg, BucketHigh·avg]); the fullest
// bucket with at least MinThreshold tables is compacted (up to
// MaxThreshold tables at once).
type SizeTieredPolicy struct {
	// MinThreshold is the minimum bucket size that triggers compaction.
	// Zero selects Cassandra's default of 4.
	MinThreshold int
	// MaxThreshold caps the tables merged at once. Zero selects 32.
	MaxThreshold int
	// BucketLow/BucketHigh bound a bucket relative to its average size.
	// Zeros select Cassandra's 0.5 and 1.5.
	BucketLow, BucketHigh float64
}

// Name implements CompactionPolicy.
func (p SizeTieredPolicy) Name() string { return "size-tiered" }

// Pick implements CompactionPolicy.
func (p SizeTieredPolicy) Pick(tables []TableInfo) []int {
	minT, maxT := p.MinThreshold, p.MaxThreshold
	if minT <= 1 {
		minT = 4
	}
	if maxT <= 0 {
		maxT = 32
	}
	low, high := p.BucketLow, p.BucketHigh
	if low <= 0 {
		low = 0.5
	}
	if high <= 0 {
		high = 1.5
	}

	idx := make([]int, len(tables))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return tables[idx[a]].SizeBytes < tables[idx[b]].SizeBytes })

	var (
		bestBucket []int
		bucket     []int
		bucketAvg  float64
	)
	flush := func() {
		if len(bucket) >= minT && len(bucket) > len(bestBucket) {
			bestBucket = append([]int(nil), bucket...)
		}
	}
	for _, i := range idx {
		size := float64(tables[i].SizeBytes)
		if len(bucket) == 0 || (size >= low*bucketAvg && size <= high*bucketAvg) {
			bucket = append(bucket, i)
			// Running average keeps the bucket's center tracking its
			// members.
			bucketAvg += (size - bucketAvg) / float64(len(bucket))
			continue
		}
		flush()
		bucket = []int{i}
		bucketAvg = size
	}
	flush()
	if len(bestBucket) > maxT {
		bestBucket = bestBucket[:maxT]
	}
	if len(bestBucket) < 2 {
		return nil
	}
	return bestBucket
}

// StrategyPolicy drives minor compaction with any live-capable strategy
// from the paper's registry (SI, SO, BT, BT(I), BT(O), CHAIN, RANDOM): the
// pick the strategy's first CHOOSETWOSETS call would make on the
// equivalent abstract instance, computed from live table statistics —
// entry counts for cardinalities and persisted HyperLogLog sketches for
// overlap (see compaction.PickLive).
type StrategyPolicy struct {
	// Strategy is the registry name, e.g. "SI" or "BT(I)".
	Strategy string
	// K is the merge fan-in. Values below 2 select 4.
	K int
	// MinTables is the live table count that triggers a pick; below it the
	// policy reports nothing to do. Values below 2 select 4.
	MinTables int
	// Seed feeds randomized strategies.
	Seed int64
}

// Name implements CompactionPolicy.
func (p StrategyPolicy) Name() string { return p.Strategy }

// Pick implements CompactionPolicy.
func (p StrategyPolicy) Pick(tables []TableInfo) []int {
	minT, k := p.MinTables, p.K
	if minT < 2 {
		minT = 4
	}
	if k < 2 {
		k = 4
	}
	if len(tables) < minT {
		return nil
	}
	live := make([]compaction.LiveTable, len(tables))
	for i, t := range tables {
		live[i] = compaction.LiveTable{
			SizeBytes: t.SizeBytes,
			Entries:   int(t.Entries),
			Smallest:  t.Smallest,
			Largest:   t.Largest,
			Sketch:    t.Sketch,
		}
	}
	picked, err := compaction.PickLive(live, p.Strategy, k, p.Seed)
	if err != nil || len(picked) < 2 {
		return nil
	}
	return picked
}

// OutputLeveler is an optional CompactionPolicy extension: a policy that
// maintains a leveled layout implements it to assign the level of the
// merged output. minorCompactLocked consults it after a successful Pick;
// outputs of policies without it stay at level 0 (the flat layout).
type OutputLeveler interface {
	OutputLevel(tables []TableInfo, picked []int) int
}

// LeveledPolicy arranges sstables into levels, the LevelDB-style
// alternative to the flat size-tiered layout. Level 0 holds fresh flushes
// and may overlap arbitrarily; every level >= 1 keeps its tables
// non-overlapping by key range. Once level 0 accumulates L0Trigger tables
// they merge (together with every overlapping level-1 table) down to
// level 1; once a level's total size exceeds its target — BaseTargetBytes
// at level 1, multiplied by Multiplier per level below — its largest
// table merges with the overlapping tables one level down. Merging into
// the overlap keeps each level sorted-run-disjoint, so point reads probe
// at most one table per level >= 1; the price is rewriting overlapping
// runs, which pays off under read-heavy or update-heavy (overlapping)
// workloads.
type LeveledPolicy struct {
	// L0Trigger is the level-0 table count that triggers an L0→L1 merge.
	// Zero selects 4.
	L0Trigger int
	// BaseTargetBytes is level 1's size target. Zero selects 8 MiB.
	BaseTargetBytes uint64
	// Multiplier grows the target per level. Zero selects 10.
	Multiplier int
}

// Name implements CompactionPolicy.
func (p LeveledPolicy) Name() string { return "leveled" }

func (p LeveledPolicy) withDefaults() LeveledPolicy {
	if p.L0Trigger <= 1 {
		p.L0Trigger = 4
	}
	if p.BaseTargetBytes == 0 {
		p.BaseTargetBytes = 8 << 20
	}
	if p.Multiplier <= 1 {
		p.Multiplier = 10
	}
	return p
}

// targetBytes is the size target of level (>= 1): BaseTargetBytes at
// level 1, multiplied by Multiplier per level below.
func (p LeveledPolicy) targetBytes(level int) uint64 {
	t := p.BaseTargetBytes
	for l := 1; l < level; l++ {
		t *= uint64(p.Multiplier)
	}
	return t
}

// rangesOverlap reports whether two inclusive key ranges intersect. A
// table without bounds (empty) overlaps nothing.
func rangesOverlap(aSmall, aLarge, bSmall, bLarge []byte) bool {
	if aSmall == nil || bSmall == nil {
		return false
	}
	return bytes.Compare(aSmall, bLarge) <= 0 && bytes.Compare(bSmall, aLarge) <= 0
}

// closeOverlap grows group (indices into tables) with every table in
// candidates whose key range overlaps the group's combined span, to a
// fixpoint: adding a table extends the span, which can pull in more. This
// is what keeps merge outputs disjoint from the tables left behind at the
// output level.
func closeOverlap(tables []TableInfo, group []int, candidates []int) []int {
	in := make(map[int]bool, len(group))
	var small, large []byte
	for _, i := range group {
		in[i] = true
		small, large = extendSpan(small, large, tables[i])
	}
	for grew := true; grew; {
		grew = false
		for _, c := range candidates {
			if in[c] {
				continue
			}
			if rangesOverlap(small, large, tables[c].Smallest, tables[c].Largest) {
				in[c] = true
				group = append(group, c)
				small, large = extendSpan(small, large, tables[c])
				grew = true
			}
		}
	}
	return group
}

func extendSpan(small, large []byte, t TableInfo) ([]byte, []byte) {
	if t.Smallest == nil {
		return small, large
	}
	if small == nil || bytes.Compare(t.Smallest, small) < 0 {
		small = t.Smallest
	}
	if large == nil || bytes.Compare(t.Largest, large) > 0 {
		large = t.Largest
	}
	return small, large
}

// Pick implements CompactionPolicy. It returns either an L0→L1 merge
// (all level-0 tables plus the level-1 tables their span covers) or an
// overflow merge (the largest table of a level over its size target plus
// the tables it covers one level down).
func (p LeveledPolicy) Pick(tables []TableInfo) []int {
	p = p.withDefaults()
	byLevel := make(map[int][]int)
	maxLevel := 0
	for i, t := range tables {
		byLevel[t.Level] = append(byLevel[t.Level], i)
		if t.Level > maxLevel {
			maxLevel = t.Level
		}
	}
	if len(byLevel[0]) >= p.L0Trigger {
		group := closeOverlap(tables, byLevel[0], byLevel[1])
		if len(group) >= 2 {
			return group
		}
	}
	for level := 1; level <= maxLevel; level++ {
		var total uint64
		for _, i := range byLevel[level] {
			total += tables[i].SizeBytes
		}
		if total <= p.targetBytes(level) {
			continue
		}
		// Push the level's largest table down, pulling in everything it
		// covers at level+1.
		seedIdx := byLevel[level][0]
		for _, i := range byLevel[level] {
			if tables[i].SizeBytes > tables[seedIdx].SizeBytes {
				seedIdx = i
			}
		}
		group := closeOverlap(tables, []int{seedIdx}, byLevel[level+1])
		if len(group) < 2 {
			// Nothing overlaps below: merge with a same-level sibling so
			// the pick stays a real merge. The pair's combined span may
			// cover further level+1 tables, so close over them too.
			best := -1
			for _, i := range byLevel[level] {
				if i == seedIdx {
					continue
				}
				if best < 0 || tables[i].SizeBytes < tables[best].SizeBytes {
					best = i
				}
			}
			if best < 0 {
				continue // a single oversized table alone at its level
			}
			group = closeOverlap(tables, []int{seedIdx, best}, byLevel[level+1])
		}
		return group
	}
	return nil
}

// OutputLevel implements OutputLeveler: a pick spanning two levels lands
// at the deeper one; a single-level pick moves down one level.
func (p LeveledPolicy) OutputLevel(tables []TableInfo, picked []int) int {
	if len(picked) == 0 {
		return 0
	}
	minL, maxL := tables[picked[0]].Level, tables[picked[0]].Level
	for _, i := range picked[1:] {
		if l := tables[i].Level; l < minL {
			minL = l
		} else if l > maxL {
			maxL = l
		}
	}
	if minL == maxL {
		return maxL + 1
	}
	return maxL
}

// PolicyByName resolves a compaction-policy name the way the engine's
// front ends (kv options, lsmserver/lsmdb flags) spell them: "none" (or
// empty) for no policy, the classic "size-tiered" and "threshold"
// policies, "leveled" for the leveled layout, or any live-capable
// strategy name from the paper registry (SI, SO, BT, BT(I), BT(O), CHAIN,
// RANDOM) for a StrategyPolicy with fan-in k and the given seed. Unknown
// names are an error listing the accepted set.
func PolicyByName(name string, k int, seed int64) (CompactionPolicy, error) {
	switch name {
	case "", "none":
		return nil, nil
	case "size-tiered":
		return SizeTieredPolicy{}, nil
	case "threshold":
		return ThresholdPolicy{}, nil
	case "leveled":
		// k doubles as the L0 trigger: an L0→L1 merge reads ~k tables,
		// so the fan-in knob means the same thing it does elsewhere.
		return LeveledPolicy{L0Trigger: k}, nil
	}
	if compaction.IsLiveStrategy(name) {
		// Trigger at 2k live tables and merge k of them: the gap between
		// trigger and fan-in is what gives the strategy a real choice —
		// at exactly k tables every strategy would pick the same set.
		minTables := 2 * k
		if k < 2 {
			minTables = 8
		}
		return StrategyPolicy{Strategy: name, K: k, MinTables: minTables, Seed: seed}, nil
	}
	return nil, fmt.Errorf("lsm: unknown compaction policy %q (have none, size-tiered, threshold, leveled, %s)",
		name, strings.Join(compaction.LiveStrategies(), ", "))
}

// BackgroundConfig configures the background major-compaction trigger and
// its write backpressure. The zero value of every field selects a default,
// so &BackgroundConfig{} enables background compaction with sane settings.
type BackgroundConfig struct {
	// Trigger is the live table count that starts a background major
	// compaction. Zero selects 8.
	Trigger int
	// Stall is the live table count at which writers block until the
	// compactor catches up — the backpressure valve that keeps a write
	// burst from outrunning compaction indefinitely. Zero selects
	// 4×Trigger; values at or below Trigger are raised to Trigger+1.
	Stall int
	// Strategy names the merge-scheduling strategy (see the compaction
	// package). Empty selects "BT(I)", the paper's parallel-friendly
	// BALANCETREE ordered by smallest input.
	Strategy string
	// K is the maximum merge fan-in. Zero selects 4.
	K int
	// Seed feeds randomized strategies.
	Seed int64
}

func (c BackgroundConfig) withDefaults() BackgroundConfig {
	if c.Trigger <= 1 {
		c.Trigger = 8
	}
	if c.Stall <= 0 {
		c.Stall = 4 * c.Trigger
	}
	if c.Stall <= c.Trigger {
		c.Stall = c.Trigger + 1
	}
	if c.Strategy == "" {
		c.Strategy = "BT(I)"
	}
	if c.K < 2 {
		c.K = 4
	}
	return c
}

// MinorCompactionResult reports one minor compaction.
type MinorCompactionResult struct {
	// Policy is the policy that picked the tables.
	Policy string
	// Merged is how many tables were merged.
	Merged int
	// Stats is the disk I/O of the merge.
	Stats sstable.MergeStats
	// Duration is the wall time of the merge.
	Duration time.Duration
}

// TableInfos returns descriptors of the live sstables, newest first.
func (db *DB) TableInfos() []TableInfo {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.tableInfosLocked()
}

func (db *DB) tableInfosLocked() []TableInfo {
	infos := make([]TableInfo, len(db.tables))
	for i, th := range db.tables {
		infos[i] = th.info()
	}
	return infos
}

// info builds the policy-facing descriptor of a live table.
func (th *tableHandle) info() TableInfo {
	return TableInfo{
		Name:      th.name,
		SizeBytes: th.rd.FileSize(),
		Entries:   th.rd.EntryCount(),
		Smallest:  th.smallest,
		Largest:   th.largest,
		Sketch:    th.sketch,
		Level:     th.level,
	}
}

// MinorCompact asks policy for a group of tables and, if it returns one,
// merges them into a single table (keeping tombstones). It reports whether
// a compaction ran.
func (db *DB) MinorCompact(policy CompactionPolicy) (*MinorCompactionResult, bool, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil, false, ErrClosed
	}
	return db.minorCompactLocked(policy)
}

func (db *DB) minorCompactLocked(policy CompactionPolicy) (*MinorCompactionResult, bool, error) {
	// Tables captured in a live major-compaction snapshot are off limits:
	// merging one away would invalidate the snapshot the major compactor
	// is about to swap out. The policy only sees the eligible tables;
	// its picks are mapped back to positions in db.tables.
	eligible := make([]int, 0, len(db.tables))
	infos := make([]TableInfo, 0, len(db.tables))
	for i, th := range db.tables {
		if th.compacting {
			continue
		}
		eligible = append(eligible, i)
		infos = append(infos, th.info())
	}
	picked := policy.Pick(infos)
	if len(picked) < 2 {
		return nil, false, nil
	}
	// Leveled policies assign the merged output's level; flat policies
	// leave outputs at level 0.
	outLevel := 0
	if lv, ok := policy.(OutputLeveler); ok {
		outLevel = lv.OutputLevel(infos, picked)
	}
	seen := make(map[int]bool, len(picked))
	inputs := make([]*sstable.Reader, 0, len(picked))
	for _, e := range picked {
		if e < 0 || e >= len(eligible) {
			return nil, false, fmt.Errorf("lsm: policy %s picked invalid index %d", policy.Name(), e)
		}
		i := eligible[e]
		if seen[i] {
			return nil, false, fmt.Errorf("lsm: policy %s picked index %d twice", policy.Name(), e)
		}
		seen[i] = true
		inputs = append(inputs, db.tables[i].rd)
	}

	start := time.Now()
	name := fmt.Sprintf("%06d.sst", db.man.nextFileNum)
	db.man.nextFileNum++
	path := filepath.Join(db.dir, name)
	f, err := db.fs.Create(path)
	if err != nil {
		return nil, false, fmt.Errorf("lsm: minor compaction output: %w", err)
	}
	removeOutput := func() {
		if rerr := db.fs.Remove(path); rerr != nil {
			db.cleanupFails.Add(1)
		}
	}
	stats, err := sstable.MergeOpts(f, false, db.tableWriterOpts(), inputs...)
	if err != nil {
		f.Close()
		removeOutput()
		return nil, false, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		removeOutput()
		return nil, false, err
	}
	if err := f.Close(); err != nil {
		removeOutput()
		return nil, false, fmt.Errorf("lsm: close minor compaction output: %w", err)
	}
	rd, err := db.openTable(name)
	if err != nil {
		return nil, false, err
	}

	// Replace the merged tables: the new table takes the position of the
	// newest input; the rest disappear.
	newest := len(db.tables)
	for i := range db.tables {
		if seen[i] {
			newest = i
			break
		}
	}
	var (
		kept    []*tableHandle
		removed []*tableHandle
	)
	for i, th := range db.tables {
		switch {
		case i == newest:
			out := db.newTableHandle(name, rd, db.generation+1)
			out.level = outLevel
			kept = append(kept, out)
			removed = append(removed, th)
		case seen[i]:
			removed = append(removed, th)
		default:
			kept = append(kept, th)
		}
	}
	oldManTables := db.man.tables
	db.man.tables = make([]string, len(kept))
	for i, th := range kept {
		db.man.tables[i] = th.name
	}
	db.man.recordBounds(kept)
	if err := db.man.save(db.fs, db.dir); err != nil {
		db.man.tables = oldManTables
		db.failDurabilityLocked(err)
		rd.Close()
		removeOutput()
		return nil, false, err
	}
	db.tables = kept
	db.installViewLocked()
	db.generation++
	db.bytesCompacted += stats.BytesWritten
	db.recordPickLocked(policy.Name())
	// The table count just dropped: writers stalled on backpressure may be
	// able to proceed without waiting for the major compactor.
	db.stallCond.Broadcast()
	// Retired inputs may still be referenced by concurrent scans; the last
	// reference closes the reader and deletes the file.
	for _, th := range removed {
		th.obsolete.Store(true)
		th.release()
	}
	return &MinorCompactionResult{
		Policy:   policy.Name(),
		Merged:   len(picked),
		Stats:    stats,
		Duration: time.Since(start),
	}, true, nil
}
