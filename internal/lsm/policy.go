package lsm

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/sstable"
)

// This file implements *minor* compaction: background merges of a subset
// of sstables that keep the table count bounded between major compactions.
// The paper's related-work section sketches both classic policies
// implemented here — Bigtable's count-threshold trigger and Cassandra's
// Size-Tiered strategy, which "merges sstables of equal size" and which
// the paper notes "bears resemblance to our SMALLESTINPUT heuristic".
// Tombstones always survive minor compactions: only a major compaction
// covers all data and may purge them.

// TableInfo describes one live sstable to a compaction policy.
type TableInfo struct {
	// Name is the sstable file name.
	Name string
	// SizeBytes is the encoded file size.
	SizeBytes uint64
	// Entries is the number of stored entries.
	Entries uint64
}

// CompactionPolicy decides which tables a minor compaction should merge.
type CompactionPolicy interface {
	// Name identifies the policy in results and logs.
	Name() string
	// Pick returns the indices (into tables) to merge, or nil if no
	// compaction is warranted. Returned groups must have length ≥ 2.
	Pick(tables []TableInfo) []int
}

// ThresholdPolicy is the Bigtable-style trigger: once the number of
// sstables reaches MaxTables, merge the Fanin smallest ones.
type ThresholdPolicy struct {
	// MaxTables triggers compaction when the live table count reaches it.
	// Zero selects 8.
	MaxTables int
	// Fanin is how many tables to merge per compaction. Zero selects 4.
	Fanin int
}

// Name implements CompactionPolicy.
func (p ThresholdPolicy) Name() string { return "threshold" }

// Pick implements CompactionPolicy.
func (p ThresholdPolicy) Pick(tables []TableInfo) []int {
	maxTables, fanin := p.MaxTables, p.Fanin
	if maxTables <= 0 {
		maxTables = 8
	}
	if fanin <= 1 {
		fanin = 4
	}
	if len(tables) < maxTables {
		return nil
	}
	idx := make([]int, len(tables))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return tables[idx[a]].SizeBytes < tables[idx[b]].SizeBytes })
	if fanin > len(idx) {
		fanin = len(idx)
	}
	return idx[:fanin]
}

// SizeTieredPolicy is Cassandra's STCS: tables are grouped into buckets of
// similar size (within [BucketLow·avg, BucketHigh·avg]); the fullest
// bucket with at least MinThreshold tables is compacted (up to
// MaxThreshold tables at once).
type SizeTieredPolicy struct {
	// MinThreshold is the minimum bucket size that triggers compaction.
	// Zero selects Cassandra's default of 4.
	MinThreshold int
	// MaxThreshold caps the tables merged at once. Zero selects 32.
	MaxThreshold int
	// BucketLow/BucketHigh bound a bucket relative to its average size.
	// Zeros select Cassandra's 0.5 and 1.5.
	BucketLow, BucketHigh float64
}

// Name implements CompactionPolicy.
func (p SizeTieredPolicy) Name() string { return "size-tiered" }

// Pick implements CompactionPolicy.
func (p SizeTieredPolicy) Pick(tables []TableInfo) []int {
	minT, maxT := p.MinThreshold, p.MaxThreshold
	if minT <= 1 {
		minT = 4
	}
	if maxT <= 0 {
		maxT = 32
	}
	low, high := p.BucketLow, p.BucketHigh
	if low <= 0 {
		low = 0.5
	}
	if high <= 0 {
		high = 1.5
	}

	idx := make([]int, len(tables))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return tables[idx[a]].SizeBytes < tables[idx[b]].SizeBytes })

	var (
		bestBucket []int
		bucket     []int
		bucketAvg  float64
	)
	flush := func() {
		if len(bucket) >= minT && len(bucket) > len(bestBucket) {
			bestBucket = append([]int(nil), bucket...)
		}
	}
	for _, i := range idx {
		size := float64(tables[i].SizeBytes)
		if len(bucket) == 0 || (size >= low*bucketAvg && size <= high*bucketAvg) {
			bucket = append(bucket, i)
			// Running average keeps the bucket's center tracking its
			// members.
			bucketAvg += (size - bucketAvg) / float64(len(bucket))
			continue
		}
		flush()
		bucket = []int{i}
		bucketAvg = size
	}
	flush()
	if len(bestBucket) > maxT {
		bestBucket = bestBucket[:maxT]
	}
	if len(bestBucket) < 2 {
		return nil
	}
	return bestBucket
}

// MinorCompactionResult reports one minor compaction.
type MinorCompactionResult struct {
	// Policy is the policy that picked the tables.
	Policy string
	// Merged is how many tables were merged.
	Merged int
	// Stats is the disk I/O of the merge.
	Stats sstable.MergeStats
	// Duration is the wall time of the merge.
	Duration time.Duration
}

// TableInfos returns descriptors of the live sstables, newest first.
func (db *DB) TableInfos() []TableInfo {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.tableInfosLocked()
}

func (db *DB) tableInfosLocked() []TableInfo {
	infos := make([]TableInfo, len(db.tables))
	for i, th := range db.tables {
		infos[i] = TableInfo{Name: th.name, SizeBytes: th.rd.FileSize(), Entries: th.rd.EntryCount()}
	}
	return infos
}

// MinorCompact asks policy for a group of tables and, if it returns one,
// merges them into a single table (keeping tombstones). It reports whether
// a compaction ran.
func (db *DB) MinorCompact(policy CompactionPolicy) (*MinorCompactionResult, bool, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil, false, ErrClosed
	}
	return db.minorCompactLocked(policy)
}

func (db *DB) minorCompactLocked(policy CompactionPolicy) (*MinorCompactionResult, bool, error) {
	picked := policy.Pick(db.tableInfosLocked())
	if len(picked) < 2 {
		return nil, false, nil
	}
	seen := make(map[int]bool, len(picked))
	inputs := make([]*sstable.Reader, 0, len(picked))
	for _, i := range picked {
		if i < 0 || i >= len(db.tables) || seen[i] {
			return nil, false, fmt.Errorf("lsm: policy %s picked invalid index %d", policy.Name(), i)
		}
		seen[i] = true
		inputs = append(inputs, db.tables[i].rd)
	}

	start := time.Now()
	name := fmt.Sprintf("%06d.sst", db.man.nextFileNum)
	db.man.nextFileNum++
	path := filepath.Join(db.dir, name)
	f, err := os.Create(path)
	if err != nil {
		return nil, false, fmt.Errorf("lsm: minor compaction output: %w", err)
	}
	stats, err := sstable.MergeCompressed(f, false, db.opts.Compression, inputs...)
	if err != nil {
		f.Close()
		os.Remove(path)
		return nil, false, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, false, err
	}
	if err := f.Close(); err != nil {
		return nil, false, err
	}
	rd, err := db.openTable(name)
	if err != nil {
		return nil, false, err
	}

	// Replace the merged tables: the new table takes the position of the
	// newest input; the rest disappear.
	newest := len(db.tables)
	for i := range db.tables {
		if seen[i] {
			newest = i
			break
		}
	}
	var (
		kept    []*tableHandle
		removed []*tableHandle
	)
	for i, th := range db.tables {
		switch {
		case i == newest:
			kept = append(kept, &tableHandle{name: name, rd: rd})
			removed = append(removed, th)
		case seen[i]:
			removed = append(removed, th)
		default:
			kept = append(kept, th)
		}
	}
	db.tables = kept
	db.man.tables = db.man.tables[:0]
	for _, th := range kept {
		db.man.tables = append(db.man.tables, th.name)
	}
	if err := db.man.save(db.dir); err != nil {
		rd.Close()
		os.Remove(path)
		return nil, false, err
	}
	for _, th := range removed {
		th.rd.Close()
		os.Remove(filepath.Join(db.dir, th.name))
	}
	return &MinorCompactionResult{
		Policy:   policy.Name(),
		Merged:   len(picked),
		Stats:    stats,
		Duration: time.Since(start),
	}, true, nil
}
