package lsm

import (
	"fmt"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/sstable"
)

// This file implements *minor* compaction: background merges of a subset
// of sstables that keep the table count bounded between major compactions.
// The paper's related-work section sketches both classic policies
// implemented here — Bigtable's count-threshold trigger and Cassandra's
// Size-Tiered strategy, which "merges sstables of equal size" and which
// the paper notes "bears resemblance to our SMALLESTINPUT heuristic".
// Tombstones always survive minor compactions: only a major compaction
// covers all data and may purge them.

// TableInfo describes one live sstable to a compaction policy.
type TableInfo struct {
	// Name is the sstable file name.
	Name string
	// SizeBytes is the encoded file size.
	SizeBytes uint64
	// Entries is the number of stored entries.
	Entries uint64
}

// CompactionPolicy decides which tables a minor compaction should merge.
type CompactionPolicy interface {
	// Name identifies the policy in results and logs.
	Name() string
	// Pick returns the indices (into tables) to merge, or nil if no
	// compaction is warranted. Returned groups must have length ≥ 2.
	Pick(tables []TableInfo) []int
}

// ThresholdPolicy is the Bigtable-style trigger: once the number of
// sstables reaches MaxTables, merge the Fanin smallest ones.
type ThresholdPolicy struct {
	// MaxTables triggers compaction when the live table count reaches it.
	// Zero selects 8.
	MaxTables int
	// Fanin is how many tables to merge per compaction. Zero selects 4.
	Fanin int
}

// Name implements CompactionPolicy.
func (p ThresholdPolicy) Name() string { return "threshold" }

// Pick implements CompactionPolicy.
func (p ThresholdPolicy) Pick(tables []TableInfo) []int {
	maxTables, fanin := p.MaxTables, p.Fanin
	if maxTables <= 0 {
		maxTables = 8
	}
	if fanin <= 1 {
		fanin = 4
	}
	if len(tables) < maxTables {
		return nil
	}
	idx := make([]int, len(tables))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return tables[idx[a]].SizeBytes < tables[idx[b]].SizeBytes })
	if fanin > len(idx) {
		fanin = len(idx)
	}
	return idx[:fanin]
}

// SizeTieredPolicy is Cassandra's STCS: tables are grouped into buckets of
// similar size (within [BucketLow·avg, BucketHigh·avg]); the fullest
// bucket with at least MinThreshold tables is compacted (up to
// MaxThreshold tables at once).
type SizeTieredPolicy struct {
	// MinThreshold is the minimum bucket size that triggers compaction.
	// Zero selects Cassandra's default of 4.
	MinThreshold int
	// MaxThreshold caps the tables merged at once. Zero selects 32.
	MaxThreshold int
	// BucketLow/BucketHigh bound a bucket relative to its average size.
	// Zeros select Cassandra's 0.5 and 1.5.
	BucketLow, BucketHigh float64
}

// Name implements CompactionPolicy.
func (p SizeTieredPolicy) Name() string { return "size-tiered" }

// Pick implements CompactionPolicy.
func (p SizeTieredPolicy) Pick(tables []TableInfo) []int {
	minT, maxT := p.MinThreshold, p.MaxThreshold
	if minT <= 1 {
		minT = 4
	}
	if maxT <= 0 {
		maxT = 32
	}
	low, high := p.BucketLow, p.BucketHigh
	if low <= 0 {
		low = 0.5
	}
	if high <= 0 {
		high = 1.5
	}

	idx := make([]int, len(tables))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return tables[idx[a]].SizeBytes < tables[idx[b]].SizeBytes })

	var (
		bestBucket []int
		bucket     []int
		bucketAvg  float64
	)
	flush := func() {
		if len(bucket) >= minT && len(bucket) > len(bestBucket) {
			bestBucket = append([]int(nil), bucket...)
		}
	}
	for _, i := range idx {
		size := float64(tables[i].SizeBytes)
		if len(bucket) == 0 || (size >= low*bucketAvg && size <= high*bucketAvg) {
			bucket = append(bucket, i)
			// Running average keeps the bucket's center tracking its
			// members.
			bucketAvg += (size - bucketAvg) / float64(len(bucket))
			continue
		}
		flush()
		bucket = []int{i}
		bucketAvg = size
	}
	flush()
	if len(bestBucket) > maxT {
		bestBucket = bestBucket[:maxT]
	}
	if len(bestBucket) < 2 {
		return nil
	}
	return bestBucket
}

// BackgroundConfig configures the background major-compaction trigger and
// its write backpressure. The zero value of every field selects a default,
// so &BackgroundConfig{} enables background compaction with sane settings.
type BackgroundConfig struct {
	// Trigger is the live table count that starts a background major
	// compaction. Zero selects 8.
	Trigger int
	// Stall is the live table count at which writers block until the
	// compactor catches up — the backpressure valve that keeps a write
	// burst from outrunning compaction indefinitely. Zero selects
	// 4×Trigger; values at or below Trigger are raised to Trigger+1.
	Stall int
	// Strategy names the merge-scheduling strategy (see the compaction
	// package). Empty selects "BT(I)", the paper's parallel-friendly
	// BALANCETREE ordered by smallest input.
	Strategy string
	// K is the maximum merge fan-in. Zero selects 4.
	K int
	// Seed feeds randomized strategies.
	Seed int64
}

func (c BackgroundConfig) withDefaults() BackgroundConfig {
	if c.Trigger <= 1 {
		c.Trigger = 8
	}
	if c.Stall <= 0 {
		c.Stall = 4 * c.Trigger
	}
	if c.Stall <= c.Trigger {
		c.Stall = c.Trigger + 1
	}
	if c.Strategy == "" {
		c.Strategy = "BT(I)"
	}
	if c.K < 2 {
		c.K = 4
	}
	return c
}

// MinorCompactionResult reports one minor compaction.
type MinorCompactionResult struct {
	// Policy is the policy that picked the tables.
	Policy string
	// Merged is how many tables were merged.
	Merged int
	// Stats is the disk I/O of the merge.
	Stats sstable.MergeStats
	// Duration is the wall time of the merge.
	Duration time.Duration
}

// TableInfos returns descriptors of the live sstables, newest first.
func (db *DB) TableInfos() []TableInfo {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.tableInfosLocked()
}

func (db *DB) tableInfosLocked() []TableInfo {
	infos := make([]TableInfo, len(db.tables))
	for i, th := range db.tables {
		infos[i] = TableInfo{Name: th.name, SizeBytes: th.rd.FileSize(), Entries: th.rd.EntryCount()}
	}
	return infos
}

// MinorCompact asks policy for a group of tables and, if it returns one,
// merges them into a single table (keeping tombstones). It reports whether
// a compaction ran.
func (db *DB) MinorCompact(policy CompactionPolicy) (*MinorCompactionResult, bool, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil, false, ErrClosed
	}
	return db.minorCompactLocked(policy)
}

func (db *DB) minorCompactLocked(policy CompactionPolicy) (*MinorCompactionResult, bool, error) {
	// Tables captured in a live major-compaction snapshot are off limits:
	// merging one away would invalidate the snapshot the major compactor
	// is about to swap out. The policy only sees the eligible tables;
	// its picks are mapped back to positions in db.tables.
	eligible := make([]int, 0, len(db.tables))
	infos := make([]TableInfo, 0, len(db.tables))
	for i, th := range db.tables {
		if th.compacting {
			continue
		}
		eligible = append(eligible, i)
		infos = append(infos, TableInfo{Name: th.name, SizeBytes: th.rd.FileSize(), Entries: th.rd.EntryCount()})
	}
	picked := policy.Pick(infos)
	if len(picked) < 2 {
		return nil, false, nil
	}
	seen := make(map[int]bool, len(picked))
	inputs := make([]*sstable.Reader, 0, len(picked))
	for _, e := range picked {
		if e < 0 || e >= len(eligible) {
			return nil, false, fmt.Errorf("lsm: policy %s picked invalid index %d", policy.Name(), e)
		}
		i := eligible[e]
		if seen[i] {
			return nil, false, fmt.Errorf("lsm: policy %s picked index %d twice", policy.Name(), e)
		}
		seen[i] = true
		inputs = append(inputs, db.tables[i].rd)
	}

	start := time.Now()
	name := fmt.Sprintf("%06d.sst", db.man.nextFileNum)
	db.man.nextFileNum++
	path := filepath.Join(db.dir, name)
	f, err := db.fs.Create(path)
	if err != nil {
		return nil, false, fmt.Errorf("lsm: minor compaction output: %w", err)
	}
	removeOutput := func() {
		if rerr := db.fs.Remove(path); rerr != nil {
			db.cleanupFails.Add(1)
		}
	}
	stats, err := sstable.MergeOpts(f, false, db.tableWriterOpts(), inputs...)
	if err != nil {
		f.Close()
		removeOutput()
		return nil, false, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		removeOutput()
		return nil, false, err
	}
	if err := f.Close(); err != nil {
		removeOutput()
		return nil, false, fmt.Errorf("lsm: close minor compaction output: %w", err)
	}
	rd, err := db.openTable(name)
	if err != nil {
		return nil, false, err
	}

	// Replace the merged tables: the new table takes the position of the
	// newest input; the rest disappear.
	newest := len(db.tables)
	for i := range db.tables {
		if seen[i] {
			newest = i
			break
		}
	}
	var (
		kept    []*tableHandle
		removed []*tableHandle
	)
	for i, th := range db.tables {
		switch {
		case i == newest:
			kept = append(kept, db.newTableHandle(name, rd, db.generation+1))
			removed = append(removed, th)
		case seen[i]:
			removed = append(removed, th)
		default:
			kept = append(kept, th)
		}
	}
	oldManTables := db.man.tables
	db.man.tables = make([]string, len(kept))
	for i, th := range kept {
		db.man.tables[i] = th.name
	}
	db.man.recordBounds(kept)
	if err := db.man.save(db.fs, db.dir); err != nil {
		db.man.tables = oldManTables
		db.failDurabilityLocked(err)
		rd.Close()
		removeOutput()
		return nil, false, err
	}
	db.tables = kept
	db.installViewLocked()
	db.generation++
	// The table count just dropped: writers stalled on backpressure may be
	// able to proceed without waiting for the major compactor.
	db.stallCond.Broadcast()
	// Retired inputs may still be referenced by concurrent scans; the last
	// reference closes the reader and deletes the file.
	for _, th := range removed {
		th.obsolete.Store(true)
		th.release()
	}
	return &MinorCompactionResult{
		Policy:   policy.Name(),
		Merged:   len(picked),
		Stats:    stats,
		Duration: time.Since(start),
	}, true, nil
}
