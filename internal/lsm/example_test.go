package lsm_test

import (
	"fmt"
	"log"
	"os"

	"repro/internal/lsm"
)

// Example shows the full engine lifecycle: writes, a flush, a delete, and
// a major compaction scheduled by the paper's recommended BT(I) strategy.
func Example() {
	dir, err := os.MkdirTemp("", "lsm-example-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := lsm.Open(dir, lsm.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	for i := 0; i < 3; i++ {
		for j := 0; j < 100; j++ {
			key := fmt.Sprintf("user%03d", j)
			if err := db.Put([]byte(key), []byte(fmt.Sprintf("gen-%d", i))); err != nil {
				log.Fatal(err)
			}
		}
		if err := db.Flush(); err != nil {
			log.Fatal(err)
		}
	}
	if err := db.Delete([]byte("user007")); err != nil {
		log.Fatal(err)
	}

	res, err := db.MajorCompact("BT(I)", 2, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("tables merged:", res.TablesBefore)
	fmt.Println("tables after:", db.Stats().Tables)

	v, err := db.Get([]byte("user042"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("user042 =", string(v))
	_, err = db.Get([]byte("user007"))
	fmt.Println("user007 deleted:", err == lsm.ErrNotFound)
	// Output:
	// tables merged: 4
	// tables after: 1
	// user042 = gen-2
	// user007 deleted: true
}
