package lsm

import (
	"fmt"
	"testing"
)

func infos(sizes ...uint64) []TableInfo {
	out := make([]TableInfo, len(sizes))
	for i, s := range sizes {
		out[i] = TableInfo{Name: fmt.Sprintf("%06d.sst", i), SizeBytes: s, Entries: s / 10}
	}
	return out
}

func TestThresholdPolicy(t *testing.T) {
	p := ThresholdPolicy{MaxTables: 4, Fanin: 3}
	if got := p.Pick(infos(10, 20, 30)); got != nil {
		t.Errorf("below threshold picked %v", got)
	}
	got := p.Pick(infos(40, 10, 30, 20))
	if len(got) != 3 {
		t.Fatalf("picked %v, want 3 smallest", got)
	}
	// Indices of the three smallest: 1 (10), 3 (20), 2 (30).
	want := map[int]bool{1: true, 3: true, 2: true}
	for _, i := range got {
		if !want[i] {
			t.Errorf("picked index %d, want smallest three", i)
		}
	}
	// Defaults clamp sensibly.
	d := ThresholdPolicy{}
	if d.Pick(infos(1, 2, 3)) != nil {
		t.Errorf("default policy fired below default threshold")
	}
	if got := d.Pick(infos(1, 2, 3, 4, 5, 6, 7, 8)); len(got) != 4 {
		t.Errorf("default fanin = %d", len(got))
	}
}

func TestSizeTieredPolicyBuckets(t *testing.T) {
	p := SizeTieredPolicy{MinThreshold: 3}
	// Four similar-sized tables and two much larger ones: the similar
	// bucket must be chosen.
	got := p.Pick(infos(100, 110, 5000, 95, 105, 9000))
	if len(got) != 4 {
		t.Fatalf("picked %v, want the 4 similar tables", got)
	}
	for _, i := range got {
		if s := []uint64{100, 110, 5000, 95, 105, 9000}[i]; s > 200 {
			t.Errorf("picked a large table (size %d)", s)
		}
	}
	// No bucket reaches the threshold: nothing to do.
	if got := p.Pick(infos(10, 1000, 100000)); got != nil {
		t.Errorf("picked %v from dissimilar tables", got)
	}
	// MaxThreshold caps the group.
	capped := SizeTieredPolicy{MinThreshold: 2, MaxThreshold: 3}
	if got := capped.Pick(infos(10, 10, 10, 10, 10, 10)); len(got) != 3 {
		t.Errorf("cap ignored: picked %d tables", len(got))
	}
}

func TestSizeTieredEmptyAndSingle(t *testing.T) {
	p := SizeTieredPolicy{}
	if p.Pick(nil) != nil || p.Pick(infos(5)) != nil {
		t.Errorf("degenerate inputs should pick nothing")
	}
}

func TestMinorCompactMergesAndKeepsData(t *testing.T) {
	db := openTestDB(t, Options{})
	want := fillTables(t, db, 6, 150)
	res, ran, err := db.MinorCompact(ThresholdPolicy{MaxTables: 2, Fanin: 4})
	if err != nil || !ran {
		t.Fatalf("MinorCompact: ran=%v err=%v", ran, err)
	}
	if res.Merged != 4 || res.Stats.BytesWritten == 0 {
		t.Errorf("result = %+v", res)
	}
	if got := db.Stats().Tables; got != 3 { // 6 - 4 + 1
		t.Errorf("tables after = %d, want 3", got)
	}
	for k, v := range want {
		got, err := db.Get([]byte(k))
		if err != nil || string(got) != v {
			t.Fatalf("Get(%s) = %q, %v; want %q", k, got, err, v)
		}
	}
}

func TestMinorCompactKeepsTombstones(t *testing.T) {
	db := openTestDB(t, Options{})
	if err := db.Put([]byte("k"), []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete([]byte("k")); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("other"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	// Merge only the newest two tables (tombstone + other): the tombstone
	// must survive to keep shadowing the oldest table's value.
	res, ran, err := db.MinorCompact(pickFirstN{2})
	if err != nil || !ran {
		t.Fatalf("ran=%v err=%v", ran, err)
	}
	if res.Merged != 2 {
		t.Fatalf("merged %d", res.Merged)
	}
	if _, err := db.Get([]byte("k")); err != ErrNotFound {
		t.Errorf("tombstone dropped by minor compaction: %v", err)
	}
}

// pickFirstN is a test policy merging the first (newest) n tables.
type pickFirstN struct{ n int }

func (p pickFirstN) Name() string { return "first-n" }
func (p pickFirstN) Pick(tables []TableInfo) []int {
	if len(tables) < p.n {
		return nil
	}
	out := make([]int, p.n)
	for i := range out {
		out[i] = i
	}
	return out
}

// badPolicy returns invalid indices to exercise validation.
type badPolicy struct{}

func (badPolicy) Name() string           { return "bad" }
func (badPolicy) Pick([]TableInfo) []int { return []int{0, 0} }

func TestMinorCompactRejectsBadPolicy(t *testing.T) {
	db := openTestDB(t, Options{})
	fillTables(t, db, 3, 50)
	if _, _, err := db.MinorCompact(badPolicy{}); err == nil {
		t.Errorf("duplicate indices accepted")
	}
}

func TestTableInfos(t *testing.T) {
	db := openTestDB(t, Options{})
	if got := db.TableInfos(); len(got) != 0 {
		t.Errorf("fresh store has %d tables", len(got))
	}
	fillTables(t, db, 3, 100)
	infos := db.TableInfos()
	if len(infos) != 3 {
		t.Fatalf("TableInfos = %d entries", len(infos))
	}
	for _, info := range infos {
		if info.Name == "" || info.SizeBytes == 0 || info.Entries == 0 {
			t.Errorf("incomplete info: %+v", info)
		}
	}
}

func TestMinorCompactNothingToDo(t *testing.T) {
	db := openTestDB(t, Options{})
	fillTables(t, db, 2, 50)
	_, ran, err := db.MinorCompact(SizeTieredPolicy{MinThreshold: 4})
	if err != nil || ran {
		t.Errorf("ran=%v err=%v, want no-op", ran, err)
	}
}

func TestAutoCompactBoundsTables(t *testing.T) {
	db := openTestDB(t, Options{
		MemtableBytes: 8 << 10,
		AutoCompact:   ThresholdPolicy{MaxTables: 4, Fanin: 4},
	})
	for i := 0; i < 5000; i++ {
		k := []byte(fmt.Sprintf("key-%06d", i))
		if err := db.Put(k, []byte("some-value-payload")); err != nil {
			t.Fatal(err)
		}
	}
	st := db.Stats()
	if st.Tables >= 8 {
		t.Errorf("auto-compaction did not bound tables: %d live", st.Tables)
	}
	if st.MinorCompactions == 0 {
		t.Errorf("no minor compactions recorded")
	}
	// All data still readable.
	for i := 0; i < 5000; i += 211 {
		k := []byte(fmt.Sprintf("key-%06d", i))
		if _, err := db.Get(k); err != nil {
			t.Fatalf("Get(%s) = %v", k, err)
		}
	}
}

func TestMinorThenMajorCompaction(t *testing.T) {
	db := openTestDB(t, Options{})
	want := fillTables(t, db, 8, 100)
	if _, ran, err := db.MinorCompact(SizeTieredPolicy{MinThreshold: 2}); err != nil || !ran {
		t.Fatalf("minor: ran=%v err=%v", ran, err)
	}
	if _, err := db.MajorCompact("SI", 2, 0); err != nil {
		t.Fatal(err)
	}
	if got := db.Stats().Tables; got != 1 {
		t.Errorf("tables after major = %d", got)
	}
	for k, v := range want {
		got, err := db.Get([]byte(k))
		if err != nil || string(got) != v {
			t.Fatalf("Get(%s) after minor+major = %q, %v", k, got, err)
		}
	}
}

func TestGetPicksNewestAcrossNonAdjacentTables(t *testing.T) {
	// After a minor compaction merges non-adjacent tables, Get must still
	// resolve by sequence number, not table position.
	db := openTestDB(t, Options{})
	if err := db.Put([]byte("k"), []byte("v1")); err != nil { // oldest table
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ { // big middle table, no k
		if err := db.Put([]byte(fmt.Sprintf("pad-%04d", i)), []byte("p")); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("k"), []byte("v2")); err != nil { // newest table
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	// Merge newest and oldest (indices 0 and 2), skipping the middle.
	_, ran, err := db.MinorCompact(pickIndices{[]int{0, 2}})
	if err != nil || !ran {
		t.Fatalf("ran=%v err=%v", ran, err)
	}
	got, err := db.Get([]byte("k"))
	if err != nil || string(got) != "v2" {
		t.Errorf("Get(k) = %q, %v; want v2", got, err)
	}
}

// pickIndices is a test policy returning fixed indices.
type pickIndices struct{ idx []int }

func (p pickIndices) Name() string           { return "fixed" }
func (p pickIndices) Pick([]TableInfo) []int { return p.idx }
