package lsm

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/iterator"
	"repro/internal/sstable"
)

// writeTableFile writes entries (sorted by key) into dir/name with the
// given format version.
func writeTableFile(t *testing.T, dir, name string, version int, entries []iterator.Entry) {
	t.Helper()
	var buf bytes.Buffer
	w := sstable.NewWriterOpts(&buf, len(entries), sstable.WriterOptions{FormatVersion: version})
	for _, e := range entries {
		if err := w.Add(e); err != nil {
			t.Fatalf("Add(%q): %v", e.Key, err)
		}
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, name), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

// writeV1TableFile writes a legacy version-1 table: it builds a version-2
// table, strips the bounds block and rewrites the footer in the 64-byte
// version-1 shape. The first seven fields of the v1 and v2 footers are
// identical (index/bloom extents and the three counters), so the prefix is
// copied verbatim.
func writeV1TableFile(t *testing.T, dir, name string, entries []iterator.Entry) {
	t.Helper()
	var buf bytes.Buffer
	w := sstable.NewWriterOpts(&buf, len(entries), sstable.WriterOptions{FormatVersion: sstable.FormatV2})
	for _, e := range entries {
		if err := w.Add(e); err != nil {
			t.Fatalf("Add(%q): %v", e.Key, err)
		}
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	const footerV2Size, footerV1Size = 80, 64
	ft := data[len(data)-footerV2Size:]
	if binary.LittleEndian.Uint64(ft[72:]) != sstable.MagicV2 {
		t.Fatal("expected a v2 footer to downgrade")
	}
	boundsOff := binary.LittleEndian.Uint64(ft[56:])
	legacy := append([]byte(nil), data[:boundsOff]...)
	v1 := make([]byte, footerV1Size)
	copy(v1, ft[:56])
	binary.LittleEndian.PutUint64(v1[56:], sstable.MagicV1)
	legacy = append(legacy, v1...)
	if err := os.WriteFile(filepath.Join(dir, name), legacy, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestMixedVersionStore opens a store whose tables span all three sstable
// format versions, with no bounds hints in the manifest. The v1 table
// backfills the pessimistic [0, MaxUint64] sequence range, which sorts it
// FIRST in the descending-maxSeq probe order even though its data is the
// oldest — the exact shape that makes early exit unsound if it triggers on
// "found anything" instead of "found something provably newest".
func TestMixedVersionStore(t *testing.T) {
	dir := t.TempDir()
	e := func(k, v string, seq uint64) iterator.Entry {
		return iterator.Entry{Key: []byte(k), Value: []byte(v), Seq: seq}
	}
	// Oldest data, version-1 file: probed first due to the inflated maxSeq.
	writeV1TableFile(t, dir, "000001.sst", []iterator.Entry{
		e("deleted", "v1-alive", 7),
		e("old-only", "from-v1", 5),
		e("shadowed", "v1-stale", 6),
	})
	// Middle generation, version-2 file: tombstones "deleted".
	writeTableFile(t, dir, "000002.sst", sstable.FormatV2, []iterator.Entry{
		{Key: []byte("deleted"), Seq: 100, Tombstone: true},
		e("mid-only", "from-v2", 101),
		e("shadowed", "v2-stale", 102),
	})
	// Newest generation, version-3 file: wins "shadowed".
	writeTableFile(t, dir, "000003.sst", sstable.FormatV3, []iterator.Entry{
		e("new-only", "from-v3", 202),
		e("shadowed", "v3-wins", 201),
	})
	manifest := "# lsm manifest\nnext-file 4\nnext-seq 300\n" +
		"table 000003.sst\ntable 000002.sst\ntable 000001.sst\n"
	if err := os.WriteFile(filepath.Join(dir, "MANIFEST"), []byte(manifest), 0o644); err != nil {
		t.Fatal(err)
	}

	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open mixed-version store: %v", err)
	}
	defer db.Close()

	// The v1 hit for "shadowed" (seq 6) arrives first; the probe loop must
	// keep going because the remaining tables advertise maxSeq > 6.
	for _, tc := range []struct{ key, want string }{
		{"shadowed", "v3-wins"},
		{"old-only", "from-v1"},
		{"mid-only", "from-v2"},
		{"new-only", "from-v3"},
	} {
		got, err := db.Get([]byte(tc.key))
		if err != nil || string(got) != tc.want {
			t.Errorf("Get(%q) = %q, %v; want %q", tc.key, got, err, tc.want)
		}
	}
	// The v2 tombstone (seq 100) must shadow the v1 value (seq 7) even
	// though the v1 table was probed first with its pessimistic bounds.
	if _, err := db.Get([]byte("deleted")); err != ErrNotFound {
		t.Errorf("Get(deleted) err = %v, want ErrNotFound", err)
	}
	if _, err := db.Get([]byte("absent")); err != ErrNotFound {
		t.Errorf("Get(absent) err = %v, want ErrNotFound", err)
	}

	// New writes sequence after next-seq and shadow everything.
	if err := db.Put([]byte("shadowed"), []byte("rewritten")); err != nil {
		t.Fatal(err)
	}
	if got, err := db.Get([]byte("shadowed")); err != nil || string(got) != "rewritten" {
		t.Errorf("post-write Get(shadowed) = %q, %v", got, err)
	}

	// A major compaction across all three versions must produce one table
	// with the same visible state.
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.MajorCompact("BT(I)", 4, 0); err != nil {
		t.Fatalf("cross-version compaction: %v", err)
	}
	for _, tc := range []struct{ key, want string }{
		{"shadowed", "rewritten"},
		{"old-only", "from-v1"},
		{"mid-only", "from-v2"},
		{"new-only", "from-v3"},
	} {
		got, err := db.Get([]byte(tc.key))
		if err != nil || string(got) != tc.want {
			t.Errorf("post-compaction Get(%q) = %q, %v; want %q", tc.key, got, err, tc.want)
		}
	}
	if _, err := db.Get([]byte("deleted")); err != ErrNotFound {
		t.Errorf("post-compaction Get(deleted) err = %v, want ErrNotFound", err)
	}
}

// TestTableFormatOption pins Options.TableFormat: flushes write version 3
// by default and version 2 when explicitly downgraded.
func TestTableFormatOption(t *testing.T) {
	for _, tc := range []struct {
		name        string
		opts        Options
		wantVersion int
	}{
		{"default-v3", Options{}, sstable.FormatV3},
		{"explicit-v2", Options{TableFormat: sstable.FormatV2}, sstable.FormatV2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			db, err := Open(dir, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			if err := db.Put([]byte("k"), []byte("v")); err != nil {
				t.Fatal(err)
			}
			if err := db.Flush(); err != nil {
				t.Fatal(err)
			}
			matches, err := filepath.Glob(filepath.Join(dir, "*.sst"))
			if err != nil || len(matches) != 1 {
				t.Fatalf("sst files = %v, %v", matches, err)
			}
			data, err := os.ReadFile(matches[0])
			if err != nil {
				t.Fatal(err)
			}
			rd, err := sstable.NewReader(bytes.NewReader(data), int64(len(data)))
			if err != nil {
				t.Fatal(err)
			}
			if got := rd.FooterVersion(); got != tc.wantVersion {
				t.Errorf("flushed table version = %d, want %d", got, tc.wantVersion)
			}
		})
	}
}
