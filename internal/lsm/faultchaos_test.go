// Chaos harness for the disk-fault resilience contract. Every test here
// drives an engine through a vfs.Fault filesystem and holds it to three
// promises, at each layer of the stack (lsm.DB, store.Store, kv.Engine):
//
//  1. No acknowledged write is ever lost: an operation that returned nil
//     under SyncWAL must read back after a crash and reopen.
//  2. Every error that escapes is typed: one of the canonical sentinels
//     (ErrNotFound, ErrClosed, ErrStalled, ErrReadOnly, ErrCorrupt,
//     ErrBatchTooLarge), a context error, or the injected fault itself
//     (vfs.ErrInjected, ENOSPC) — never an anonymous string.
//  3. A write that hit a durability failure is never silently retried
//     into an ack: after a failed WAL or manifest fsync the engine
//     degrades to read-only and says so.
//
// The external test package lets the same harness run through the public
// kv facade and the sharded store without an import cycle.
package lsm_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/lsm"
	"repro/internal/store"
	"repro/internal/vfs"
	"repro/kv"
)

// typedErr reports whether err belongs to the engine's public error
// taxonomy. The chaos workload fails the test on any error for which this
// is false: callers must be able to program against every failure.
func typedErr(err error) bool {
	for _, sentinel := range []error{
		lsm.ErrNotFound, lsm.ErrClosed, lsm.ErrStalled, lsm.ErrReadOnly,
		lsm.ErrCorrupt, lsm.ErrBatchTooLarge,
		context.Canceled, context.DeadlineExceeded,
		vfs.ErrInjected, syscall.ENOSPC,
	} {
		if errors.Is(err, sentinel) {
			return true
		}
	}
	return false
}

// chaosKV is the slice of the engine API the workload exercises; adapters
// below bind it to lsm.DB, store.Store and kv.Engine.
type chaosKV interface {
	Put(key, value []byte) error
	Delete(key []byte) error
	Get(key []byte) ([]byte, error)
	Close() error
}

// keyModel tracks what the harness may legally observe for one key after
// a crash. The final acknowledged operation must win unless a later
// errored write overtook it: an errored write is allowed to surface (its
// records can be durable in the WAL even though the writer got an error —
// e.g. the group's fsync failed after the kernel took the data, or the
// flush after a successful append failed) but is never required to.
type keyModel struct {
	ackedSet bool   // some operation on this key returned nil
	ackedDel bool   // ... and the last such operation was a delete
	acked    []byte // value of the last acknowledged put
	// maybe holds values of errored puts issued after the last acked
	// operation; maybeDel records an errored delete in that window.
	maybe    [][]byte
	maybeDel bool
}

func (m *keyModel) ackPut(v []byte) {
	m.ackedSet, m.ackedDel, m.acked = true, false, append([]byte(nil), v...)
	m.maybe, m.maybeDel = nil, false
}

func (m *keyModel) ackDelete() {
	m.ackedSet, m.ackedDel, m.acked = true, true, nil
	m.maybe, m.maybeDel = nil, false
}

func (m *keyModel) failPut(v []byte) { m.maybe = append(m.maybe, append([]byte(nil), v...)) }
func (m *keyModel) failDelete()      { m.maybeDel = true }

// check validates one observed (value, found) pair against the model.
func (m *keyModel) check(val []byte, found bool) error {
	if !found {
		if m.ackedSet && !m.ackedDel && !m.maybeDel {
			return fmt.Errorf("acknowledged value %q lost", m.acked)
		}
		return nil
	}
	if m.ackedSet && !m.ackedDel && bytes.Equal(val, m.acked) {
		return nil
	}
	for _, v := range m.maybe {
		if bytes.Equal(val, v) {
			return nil
		}
	}
	return fmt.Errorf("got %q, want acked %q (ackedSet=%v ackedDel=%v, %d maybe-values)",
		val, m.acked, m.ackedSet, m.ackedDel, len(m.maybe))
}

// runChaos drives one seeded chaos round: a mixed workload against kvOpen
// under randomized faults, then a simulated crash (faults off, close with
// its error ignored), a reopen, and a full verification sweep.
func runChaos(t *testing.T, seed int64, fault *vfs.Fault, kvOpen func() (chaosKV, error)) {
	t.Helper()
	const keySpace = 64
	rng := rand.New(rand.NewSource(seed))
	key := func(i int) []byte { return []byte(fmt.Sprintf("key-%03d", i)) }

	db, err := kvOpen()
	if err != nil {
		t.Fatalf("seed %d: open: %v", seed, err)
	}

	// Arm the faults only once the engine is up: the interesting failures
	// are the ones that race live traffic, and the recovery path gets its
	// own clean run at reopen below.
	fault.SetProb(vfs.OpWrite, 0.02)
	fault.SetProb(vfs.OpSync, 0.02)
	fault.SetProb(vfs.OpCreate, 0.02)
	fault.SetProb(vfs.OpRead, 0.01)
	fault.SetProb(vfs.OpRename, 0.01)
	fault.SetProb(vfs.OpRemove, 0.02)
	fault.SetProb(vfs.OpSyncDir, 0.01)

	model := make(map[string]*keyModel, keySpace)
	mod := func(i int) *keyModel {
		k := string(key(i))
		if model[k] == nil {
			model[k] = &keyModel{}
		}
		return model[k]
	}
	for op := 0; op < 300; op++ {
		i := rng.Intn(keySpace)
		switch r := rng.Float64(); {
		case r < 0.70:
			v := []byte(fmt.Sprintf("value-%03d-op%04d-%032d", i, op, op))
			err := db.Put(key(i), v)
			if err == nil {
				mod(i).ackPut(v)
			} else if !typedErr(err) {
				t.Fatalf("seed %d op %d: untyped put error: %v", seed, op, err)
			} else {
				mod(i).failPut(v)
			}
		case r < 0.85:
			err := db.Delete(key(i))
			if err == nil {
				mod(i).ackDelete()
			} else if !typedErr(err) {
				t.Fatalf("seed %d op %d: untyped delete error: %v", seed, op, err)
			} else {
				mod(i).failDelete()
			}
		default:
			val, err := db.Get(key(i))
			switch {
			case err == nil:
				if merr := mod(i).check(val, true); merr != nil {
					t.Fatalf("seed %d op %d: live read of %s: %v", seed, op, key(i), merr)
				}
			case errors.Is(err, lsm.ErrNotFound):
				if merr := mod(i).check(nil, false); merr != nil {
					t.Fatalf("seed %d op %d: live read of %s: %v", seed, op, key(i), merr)
				}
			case !typedErr(err):
				t.Fatalf("seed %d op %d: untyped get error: %v", seed, op, err)
			}
		}
	}

	// Crash: stop injecting, abandon whatever close can or cannot do, and
	// recover from what actually reached the disk.
	fault.Disable()
	db.Close()
	db, err = kvOpen()
	if err != nil {
		t.Fatalf("seed %d: reopen after chaos: %v", seed, err)
	}
	defer db.Close()

	for i := 0; i < keySpace; i++ {
		m := mod(i)
		val, err := db.Get(key(i))
		switch {
		case err == nil:
			if merr := m.check(val, true); merr != nil {
				t.Errorf("seed %d: after reopen, %s: %v", seed, key(i), merr)
			}
		case errors.Is(err, lsm.ErrNotFound):
			if merr := m.check(nil, false); merr != nil {
				t.Errorf("seed %d: after reopen, %s: %v", seed, key(i), merr)
			}
		default:
			t.Errorf("seed %d: after reopen, %s: unexpected error %v", seed, key(i), err)
		}
	}

	// The reopened engine must be fully writable again: degradation is a
	// property of an incarnation, not of the directory.
	if err := db.Put([]byte("post-recovery-probe"), []byte("ok")); err != nil {
		t.Fatalf("seed %d: write after recovery: %v", seed, err)
	}
	if got, err := db.Get([]byte("post-recovery-probe")); err != nil || string(got) != "ok" {
		t.Fatalf("seed %d: read back after recovery: %q, %v", seed, got, err)
	}
}

// chaosLSMOptions is the engine tuning every chaos round uses: synchronous
// WAL so nil means durable, a tiny memtable so flushes (and their manifest
// rewrites) happen constantly, and auto minor compaction so the compaction
// machinery runs under fault too.
func chaosLSMOptions(fault *vfs.Fault) lsm.Options {
	return lsm.Options{
		FS:            fault,
		SyncWAL:       true,
		MemtableBytes: 4 << 10,
		AutoCompact:   lsm.ThresholdPolicy{},
		Seed:          1,
	}
}

func TestFaultChaosDB(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			fault := vfs.NewFault(vfs.Default, seed)
			runChaos(t, seed, fault, func() (chaosKV, error) {
				return lsm.Open(dir, chaosLSMOptions(fault))
			})
		})
	}
}

// storeChaos adapts store.Store (whose Get/Put/Delete signatures already
// match) — only present so the compiler checks the adaptation explicitly.
type storeChaos struct{ *store.Store }

func TestFaultChaosStore(t *testing.T) {
	for seed := int64(11); seed <= 12; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			fault := vfs.NewFault(vfs.Default, seed)
			runChaos(t, seed, fault, func() (chaosKV, error) {
				st, err := store.Open(dir, store.Options{Shards: 2, Options: chaosLSMOptions(fault)})
				if err != nil {
					return nil, err
				}
				return storeChaos{st}, nil
			})
		})
	}
}

// engineChaos adapts the context-aware kv.Engine to the harness.
type engineChaos struct{ eng kv.Engine }

func (e engineChaos) Put(k, v []byte) error        { return e.eng.Put(context.Background(), k, v) }
func (e engineChaos) Delete(k []byte) error        { return e.eng.Delete(context.Background(), k) }
func (e engineChaos) Get(k []byte) ([]byte, error) { return e.eng.Get(context.Background(), k) }
func (e engineChaos) Close() error                 { return e.eng.Close() }

func TestFaultChaosEngine(t *testing.T) {
	seed := int64(21)
	dir := t.TempDir()
	fault := vfs.NewFault(vfs.Default, seed)
	runChaos(t, seed, fault, func() (chaosKV, error) {
		eng, err := kv.Open(dir,
			kv.WithFS(fault),
			kv.WithSyncWAL(),
			kv.WithMemtableBytes(4<<10),
			kv.WithAutoCompact("threshold"))
		if err != nil {
			return nil, err
		}
		return engineChaos{eng}, nil
	})
}

// TestFaultChaosKillsDurabilityOnNthSync is the scripted heart of the
// durability contract: exactly one WAL fsync fails, and the engine must
// (a) error that write, (b) refuse every later write with ErrReadOnly,
// (c) keep serving reads, and (d) hand back every previously acknowledged
// write after a reopen. It must never ack a write whose sync failed.
func TestFaultChaosKillsDurabilityOnNthSync(t *testing.T) {
	dir := t.TempDir()
	fault := vfs.NewFault(vfs.Default, 1)
	open := func() (*lsm.DB, error) {
		return lsm.Open(dir, lsm.Options{FS: fault, SyncWAL: true})
	}
	db, err := open()
	if err != nil {
		t.Fatal(err)
	}
	key := func(i int) []byte { return []byte(fmt.Sprintf("acked-%02d", i)) }
	for i := 0; i < 10; i++ {
		if err := db.Put(key(i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}

	// With a large memtable no flush intervenes, so the next fsync the
	// engine issues is the WAL sync of the next commit group.
	fault.FailNthSync(1)
	if err := db.Put([]byte("doomed"), []byte("never-acked")); err == nil {
		t.Fatal("put with failed WAL fsync returned nil: acked a non-durable write")
	} else if !typedErr(err) {
		t.Fatalf("failed-sync write error is untyped: %v", err)
	}

	if err := db.Put([]byte("after"), []byte("x")); !errors.Is(err, lsm.ErrReadOnly) {
		t.Fatalf("write after durability failure = %v, want ErrReadOnly", err)
	}
	if ro, cause := db.ReadOnly(); !ro || cause == nil {
		t.Fatalf("ReadOnly() = %v, %v after failed fsync", ro, cause)
	}
	if !db.Stats().ReadOnly {
		t.Fatal("Stats().ReadOnly = false after failed fsync")
	}
	// Reads ride through degradation.
	if got, err := db.Get(key(3)); err != nil || string(got) != "v3" {
		t.Fatalf("read while read-only: %q, %v", got, err)
	}

	fault.Disable()
	db.Close()
	db, err = open()
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db.Close()
	for i := 0; i < 10; i++ {
		got, err := db.Get(key(i))
		if err != nil || string(got) != fmt.Sprintf("v%d", i) {
			t.Fatalf("acked write %d after reopen: %q, %v", i, got, err)
		}
	}
	// The doomed write was never acknowledged; it may or may not have
	// reached the log before the failed sync. Both outcomes are legal —
	// what matters is it never displaced an acked value and reads stay
	// typed.
	if _, err := db.Get([]byte("doomed")); err != nil && !errors.Is(err, lsm.ErrNotFound) {
		t.Fatalf("doomed key after reopen: %v", err)
	}
	if err := db.Put([]byte("fresh"), []byte("writable-again")); err != nil {
		t.Fatalf("reopened engine not writable: %v", err)
	}
}

// TestFaultENOSPCIsRetryable: running out of disk space must surface as a
// typed, retryable error — the WAL rollback keeps the log valid, so the
// engine does NOT degrade to read-only, and writes resume once space
// frees up. Nothing acked before or after the outage may be lost.
func TestFaultENOSPCIsRetryable(t *testing.T) {
	dir := t.TempDir()
	fault := vfs.NewFault(vfs.Default, 7)
	db, err := lsm.Open(dir, lsm.Options{FS: fault, SyncWAL: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("before"), []byte("kept")); err != nil {
		t.Fatal(err)
	}

	fault.SetDiskFullAfter(0)
	for i := 0; i < 3; i++ {
		err := db.Put([]byte("full"), []byte("wedged"))
		if err == nil {
			t.Fatal("put on a full disk returned nil")
		}
		if !errors.Is(err, syscall.ENOSPC) {
			t.Fatalf("put on full disk = %v, want ENOSPC", err)
		}
	}
	if ro, _ := db.ReadOnly(); ro {
		t.Fatal("ENOSPC with a clean WAL rollback must not poison durability")
	}

	fault.SetDiskFullAfter(-1) // space freed
	if err := db.Put([]byte("after"), []byte("resumed")); err != nil {
		t.Fatalf("write after space freed: %v", err)
	}

	fault.Disable()
	db.Close()
	db, err = lsm.Open(dir, lsm.Options{FS: fault, SyncWAL: true})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db.Close()
	for k, want := range map[string]string{"before": "kept", "after": "resumed"} {
		if got, err := db.Get([]byte(k)); err != nil || string(got) != want {
			t.Fatalf("%s after reopen: %q, %v", k, got, err)
		}
	}
}

// TestCorruptSSTableQuarantined flips a byte in a data block and checks
// the read path's reaction: a typed ErrCorrupt, the table renamed aside
// as .sst.corrupt and dropped from the live set (counted in Stats), and
// an engine that keeps serving — degraded, not dead.
func TestCorruptSSTableQuarantined(t *testing.T) {
	dir := t.TempDir()
	// Negative cache so every probe reads the disk: a cached block would
	// mask the corruption.
	opts := lsm.Options{BlockCacheBytes: -1}
	db, err := lsm.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	key := func(i int) []byte { return []byte(fmt.Sprintf("corrupt-key-%04d", i)) }
	const n = 200
	for i := 0; i < n; i++ {
		if err := db.Put(key(i), bytes.Repeat([]byte{byte('a' + i%26)}, 100)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	ssts, err := filepath.Glob(filepath.Join(dir, "*.sst"))
	if err != nil || len(ssts) == 0 {
		t.Fatalf("expected an sstable on disk, got %v (%v)", ssts, err)
	}
	raw, err := os.ReadFile(ssts[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[16] ^= 0xff // inside the first data block; the footer stays intact
	if err := os.WriteFile(ssts[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	db, err = lsm.Open(dir, opts)
	if err != nil {
		t.Fatalf("open with a corrupt data block (intact footer): %v", err)
	}
	defer db.Close()

	sawCorrupt := false
	for i := 0; i < n; i++ {
		_, err := db.Get(key(i))
		switch {
		case err == nil || errors.Is(err, lsm.ErrNotFound):
		case errors.Is(err, lsm.ErrCorrupt):
			sawCorrupt = true
		default:
			t.Fatalf("get %d: untyped error under corruption: %v", i, err)
		}
	}
	if !sawCorrupt {
		t.Fatal("no read hit the flipped block; corruption never surfaced")
	}

	st := db.Stats()
	if st.QuarantinedTables != 1 {
		t.Fatalf("Stats().QuarantinedTables = %d, want 1", st.QuarantinedTables)
	}
	if corrupted, _ := filepath.Glob(filepath.Join(dir, "*.sst.corrupt")); len(corrupted) != 1 {
		t.Fatalf("want exactly one quarantined .sst.corrupt file, found %v", corrupted)
	}
	if remaining, _ := filepath.Glob(filepath.Join(dir, "*.sst")); len(remaining) != 0 {
		t.Fatalf("corrupt table still live under its manifest name: %v", remaining)
	}

	// Quarantine degrades, it does not kill: the engine still writes and
	// reads, and the next open does not trip over the quarantined file.
	if err := db.Put([]byte("alive"), []byte("yes")); err != nil {
		t.Fatalf("write after quarantine: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db, err = lsm.Open(dir, opts)
	if err != nil {
		t.Fatalf("reopen after quarantine: %v", err)
	}
	defer db.Close()
	if got, err := db.Get([]byte("alive")); err != nil || string(got) != "yes" {
		t.Fatalf("post-quarantine write after reopen: %q, %v", got, err)
	}
}

// TestOpenMissingTableTypedCorrupt: a manifest referencing an sstable
// that no longer exists must fail Open with the typed ErrCorrupt, not a
// bare fs.ErrNotExist the caller cannot classify.
func TestOpenMissingTableTypedCorrupt(t *testing.T) {
	dir := t.TempDir()
	db, err := lsm.Open(dir, lsm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	ssts, _ := filepath.Glob(filepath.Join(dir, "*.sst"))
	if len(ssts) == 0 {
		t.Fatal("no sstable to delete")
	}
	if err := os.Remove(ssts[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := lsm.Open(dir, lsm.Options{}); !errors.Is(err, lsm.ErrCorrupt) {
		t.Fatalf("open with missing table = %v, want ErrCorrupt", err)
	}
}

// TestDoubleClose: the second Close reports ErrClosed and nothing worse.
func TestDoubleClose(t *testing.T) {
	db, err := lsm.Open(t.TempDir(), lsm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	if err := db.Close(); !errors.Is(err, lsm.ErrClosed) {
		t.Fatalf("second close = %v, want ErrClosed", err)
	}
}

// TestCloseRacesBackgroundCompaction closes the DB while concurrent
// writers are feeding the background compactor. Whatever interleaving
// happens, writers must only ever see typed errors and Close must return.
// (The -race runs in CI are the other half of this test.)
func TestCloseRacesBackgroundCompaction(t *testing.T) {
	db, err := lsm.Open(t.TempDir(), lsm.Options{
		MemtableBytes: 2 << 10,
		Background:    &lsm.BackgroundConfig{Trigger: 2, Stall: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				k := []byte(fmt.Sprintf("w%d-key-%06d", w, i))
				if err := db.Put(k, bytes.Repeat([]byte{'x'}, 128)); err != nil {
					if !typedErr(err) {
						t.Errorf("writer %d: untyped error racing close: %v", w, err)
					}
					return
				}
			}
		}(w)
	}
	time.Sleep(50 * time.Millisecond)
	if err := db.Close(); err != nil {
		t.Fatalf("close racing background compaction: %v", err)
	}
	wg.Wait()
	if err := db.Put([]byte("late"), []byte("x")); !errors.Is(err, lsm.ErrClosed) {
		t.Fatalf("write after close = %v, want ErrClosed", err)
	}
}
