package lsm

import (
	"bufio"
	"bytes"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/hll"
	"repro/internal/sstable"
	"repro/internal/vfs"
)

// manifest records the durable state of the store: the next file number and
// the list of live sstables, newest first, each optionally annotated with
// its key and sequence bounds (`bounds` lines). It is rewritten atomically
// (write temp, fsync, rename) on every change, the classic small-manifest
// design.
type manifest struct {
	nextFileNum uint64
	nextSeq     uint64
	tables      []string // sstable file names, newest first
	// bounds carries each table's key range and sequence range through
	// restarts. Tables with a version-2 footer re-derive the same data
	// from their own bounds block at open; for legacy (version-1) tables
	// the manifest copy spares the backfill read of the table's last
	// block (sstable.OpenWithBounds).
	bounds map[string]sstable.Bounds
	// sketches carries the HyperLogLog key sketch of tables whose file
	// does not embed one (formats before v3's bounds-tail extension), so
	// overlap-driven compaction strategies keep their statistics across
	// restarts. Tables that embed a sketch are omitted — the file is
	// authoritative.
	sketches map[string]*hll.Sketch
	// levels records each table's position in a leveled layout; tables at
	// level 0 (fresh flushes, flat layouts) are omitted.
	levels map[string]int
}

const manifestName = "MANIFEST"

// recordBounds rebuilds the manifest's per-table annotations — bounds,
// sketches for tables whose file embeds none, and non-zero levels — from
// the prospective live handle set, called immediately before save.
func (m *manifest) recordBounds(handles []*tableHandle) {
	m.bounds = make(map[string]sstable.Bounds, len(handles))
	m.sketches = make(map[string]*hll.Sketch)
	m.levels = make(map[string]int)
	for _, th := range handles {
		if th.hasBounds {
			m.bounds[th.name] = sstable.Bounds{
				Smallest: th.smallest, Largest: th.largest,
				MinSeq: th.minSeq, MaxSeq: th.maxSeq,
			}
		}
		if th.sketch != nil && th.rd.Sketch() == nil {
			m.sketches[th.name] = th.sketch
		}
		if th.level != 0 {
			m.levels[th.name] = th.level
		}
	}
}

// loadManifest reads the manifest in dir, returning an empty manifest if
// none exists yet.
func loadManifest(fsys vfs.FS, dir string) (*manifest, error) {
	m := &manifest{nextFileNum: 1, nextSeq: 1}
	data, err := fsys.ReadFile(filepath.Join(dir, manifestName))
	if errors.Is(err, fs.ErrNotExist) {
		return m, nil
	}
	if err != nil {
		return nil, fmt.Errorf("lsm: open manifest: %w", err)
	}

	sc := bufio.NewScanner(bytes.NewReader(data))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || strings.HasPrefix(line, "#"):
		case strings.HasPrefix(line, "next-file "):
			v, err := strconv.ParseUint(strings.TrimPrefix(line, "next-file "), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("lsm: manifest next-file: %w", err)
			}
			m.nextFileNum = v
		case strings.HasPrefix(line, "next-seq "):
			v, err := strconv.ParseUint(strings.TrimPrefix(line, "next-seq "), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("lsm: manifest next-seq: %w", err)
			}
			m.nextSeq = v
		case strings.HasPrefix(line, "table "):
			m.tables = append(m.tables, strings.TrimPrefix(line, "table "))
		case strings.HasPrefix(line, "bounds "):
			name, b, err := parseBoundsLine(strings.TrimPrefix(line, "bounds "))
			if err != nil {
				return nil, err
			}
			if m.bounds == nil {
				m.bounds = make(map[string]sstable.Bounds)
			}
			m.bounds[name] = b
		case strings.HasPrefix(line, "sketch "):
			fields := strings.Fields(strings.TrimPrefix(line, "sketch "))
			if len(fields) != 2 {
				return nil, fmt.Errorf("lsm: manifest sketch: want 2 fields, got %q", line)
			}
			raw, err := hex.DecodeString(fields[1])
			if err != nil {
				return nil, fmt.Errorf("lsm: manifest sketch: %w", err)
			}
			s, err := hll.Unmarshal(raw)
			if err != nil {
				return nil, fmt.Errorf("lsm: manifest sketch: %w", err)
			}
			if m.sketches == nil {
				m.sketches = make(map[string]*hll.Sketch)
			}
			m.sketches[fields[0]] = s
		case strings.HasPrefix(line, "level "):
			fields := strings.Fields(strings.TrimPrefix(line, "level "))
			if len(fields) != 2 {
				return nil, fmt.Errorf("lsm: manifest level: want 2 fields, got %q", line)
			}
			lv, err := strconv.Atoi(fields[1])
			if err != nil || lv < 0 {
				return nil, fmt.Errorf("lsm: manifest level: bad value %q", fields[1])
			}
			if m.levels == nil {
				m.levels = make(map[string]int)
			}
			m.levels[fields[0]] = lv
		default:
			return nil, fmt.Errorf("lsm: manifest: unrecognized line %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("lsm: read manifest: %w", err)
	}
	return m, nil
}

// parseBoundsLine decodes "name minSeq maxSeq smallestHex largestHex".
func parseBoundsLine(rest string) (string, sstable.Bounds, error) {
	var b sstable.Bounds
	fields := strings.Fields(rest)
	if len(fields) != 5 {
		return "", b, fmt.Errorf("lsm: manifest bounds: want 5 fields, got %q", rest)
	}
	var err error
	if b.MinSeq, err = strconv.ParseUint(fields[1], 10, 64); err != nil {
		return "", b, fmt.Errorf("lsm: manifest bounds min-seq: %w", err)
	}
	if b.MaxSeq, err = strconv.ParseUint(fields[2], 10, 64); err != nil {
		return "", b, fmt.Errorf("lsm: manifest bounds max-seq: %w", err)
	}
	if b.Smallest, err = hex.DecodeString(fields[3]); err != nil {
		return "", b, fmt.Errorf("lsm: manifest bounds smallest: %w", err)
	}
	if b.Largest, err = hex.DecodeString(fields[4]); err != nil {
		return "", b, fmt.Errorf("lsm: manifest bounds largest: %w", err)
	}
	return fields[0], b, nil
}

// save atomically persists the manifest into dir through fsys: write a
// temp file, fsync it, rename over the live name, fsync the directory. A
// failure anywhere means the on-disk manifest cannot be trusted to match
// the in-memory table set; callers committing a table-set change must
// treat it as a durability failure.
func (m *manifest) save(fsys vfs.FS, dir string) error {
	var b strings.Builder
	fmt.Fprintf(&b, "# lsm manifest\nnext-file %d\nnext-seq %d\n", m.nextFileNum, m.nextSeq)
	for _, t := range m.tables {
		fmt.Fprintf(&b, "table %s\n", t)
		if tb, ok := m.bounds[t]; ok {
			fmt.Fprintf(&b, "bounds %s %d %d %s %s\n", t, tb.MinSeq, tb.MaxSeq,
				hex.EncodeToString(tb.Smallest), hex.EncodeToString(tb.Largest))
		}
		if s, ok := m.sketches[t]; ok {
			fmt.Fprintf(&b, "sketch %s %s\n", t, hex.EncodeToString(s.Marshal()))
		}
		if lv, ok := m.levels[t]; ok {
			fmt.Fprintf(&b, "level %s %d\n", t, lv)
		}
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	f, err := fsys.Create(tmp)
	if err != nil {
		return fmt.Errorf("lsm: write manifest: %w", err)
	}
	if _, err := f.Write([]byte(b.String())); err != nil {
		f.Close()
		return fmt.Errorf("lsm: write manifest: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("lsm: sync manifest: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("lsm: close manifest: %w", err)
	}
	if err := fsys.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return fmt.Errorf("lsm: rename manifest: %w", err)
	}
	// The rename is only durable once the directory entry is flushed; a
	// compaction swap that skipped this could survive a crash with the old
	// manifest naming deleted tables. (Platforms that refuse to fsync
	// directories degrade to no-op inside SyncDir rather than failing the
	// commit.)
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("lsm: sync dir: %w", err)
	}
	return nil
}
