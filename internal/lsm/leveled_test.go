package lsm

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// checkLevelInvariant fails the test if any two tables at the same level
// >= 1 overlap by key range — the structural invariant of the leveled
// layout.
func checkLevelInvariant(t *testing.T, infos []TableInfo) {
	t.Helper()
	byLevel := make(map[int][]TableInfo)
	for _, info := range infos {
		if info.Level >= 1 {
			byLevel[info.Level] = append(byLevel[info.Level], info)
		}
	}
	for level, tables := range byLevel {
		for i := 0; i < len(tables); i++ {
			for j := i + 1; j < len(tables); j++ {
				a, b := tables[i], tables[j]
				if a.Smallest == nil || b.Smallest == nil {
					continue
				}
				if bytes.Compare(a.Smallest, b.Largest) <= 0 && bytes.Compare(b.Smallest, a.Largest) <= 0 {
					t.Fatalf("level %d overlap: %s [%q,%q] vs %s [%q,%q]",
						level, a.Name, a.Smallest, a.Largest, b.Name, b.Smallest, b.Largest)
				}
			}
		}
	}
}

// TestLeveledNeverOverlapsWithinLevel is the leveled-layout invariant
// test: under a random update-heavy workload (overlapping flushes) with
// tiny level targets, auto-compaction with LeveledPolicy must never
// leave two overlapping tables at the same level >= 1 — checked after
// every flush-and-compact round and again after reopening.
func TestLeveledNeverOverlapsWithinLevel(t *testing.T) {
	dir := t.TempDir()
	opts := Options{
		MemtableBytes: 4 << 10,
		AutoCompact:   LeveledPolicy{L0Trigger: 2, BaseTargetBytes: 8 << 10},
	}
	db, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	want := make(map[string]string)
	for round := 0; round < 30; round++ {
		for i := 0; i < 120; i++ {
			// A skewed draw keeps key ranges overlapping across flushes.
			k := fmt.Sprintf("key-%05d", rng.Intn(2000))
			v := fmt.Sprintf("val-%d-%d", round, i)
			if err := db.Put([]byte(k), []byte(v)); err != nil {
				t.Fatal(err)
			}
			want[k] = v
		}
		checkLevelInvariant(t, db.TableInfos())
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	for {
		_, ran, err := db.MinorCompact(opts.AutoCompact)
		if err != nil {
			t.Fatal(err)
		}
		checkLevelInvariant(t, db.TableInfos())
		if !ran {
			break
		}
	}
	infos := db.TableInfos()
	deep := 0
	for _, info := range infos {
		if info.Level >= 1 {
			deep++
		}
	}
	if deep == 0 {
		t.Fatalf("workload never produced a level >= 1 table: %+v", infos)
	}
	st := db.Stats()
	if st.CompactionPicks["leveled"] == 0 {
		t.Errorf("no leveled picks recorded: %v", st.CompactionPicks)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Levels are manifest state: they must survive a reopen, and so must
	// the data.
	db, err = Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	reopened := db.TableInfos()
	checkLevelInvariant(t, reopened)
	deepAfter := 0
	for _, info := range reopened {
		if info.Level >= 1 {
			deepAfter++
		}
	}
	if deepAfter != deep {
		t.Errorf("levels lost across reopen: %d deep tables before, %d after", deep, deepAfter)
	}
	for k, v := range want {
		got, err := db.Get([]byte(k))
		if err != nil || string(got) != v {
			t.Fatalf("Get(%s) = %q, %v; want %q", k, got, err, v)
		}
	}
}

// TestLeveledOutputLevels pins the level-assignment rule: a single-level
// pick moves down one level, a two-level pick lands at the deeper level.
func TestLeveledOutputLevels(t *testing.T) {
	p := LeveledPolicy{}
	tables := []TableInfo{
		{Level: 0}, {Level: 0}, {Level: 1}, {Level: 1},
	}
	if got := p.OutputLevel(tables, []int{0, 1}); got != 1 {
		t.Errorf("L0+L0 output level = %d, want 1", got)
	}
	if got := p.OutputLevel(tables, []int{0, 1, 2}); got != 1 {
		t.Errorf("L0+L1 output level = %d, want 1", got)
	}
	if got := p.OutputLevel(tables, []int{2, 3}); got != 2 {
		t.Errorf("L1+L1 output level = %d, want 2", got)
	}
}

// TestLeveledPickClosesOverlap: an L0→L1 merge must absorb every L1 table
// the combined L0 span covers, including tables pulled in transitively as
// the span grows.
func TestLeveledPickClosesOverlap(t *testing.T) {
	p := LeveledPolicy{L0Trigger: 2}
	tables := []TableInfo{
		{Name: "a", Level: 0, Smallest: []byte("a"), Largest: []byte("c"), SizeBytes: 10},
		{Name: "b", Level: 0, Smallest: []byte("f"), Largest: []byte("h"), SizeBytes: 10},
		// Covered by the combined span [a,h] though it overlaps neither
		// L0 table individually.
		{Name: "mid", Level: 1, Smallest: []byte("d"), Largest: []byte("e"), SizeBytes: 10},
		// Outside the span: stays.
		{Name: "out", Level: 1, Smallest: []byte("x"), Largest: []byte("z"), SizeBytes: 10},
	}
	picked := p.Pick(tables)
	got := make(map[string]bool)
	for _, i := range picked {
		got[tables[i].Name] = true
	}
	if !got["a"] || !got["b"] || !got["mid"] || got["out"] {
		t.Fatalf("picked %v, want a+b+mid without out", picked)
	}
}
