package lsm

import (
	"strings"
	"testing"

	"repro/internal/compaction"
	"repro/internal/sstable"
)

// TestStrategyPolicyDrivesMinorCompaction: a registry strategy wired in
// as the minor-compaction policy actually compacts, keeps the data, and
// shows up in the write-amplification counters.
func TestStrategyPolicyDrivesMinorCompaction(t *testing.T) {
	for _, strategy := range compaction.LiveStrategies() {
		t.Run(strategy, func(t *testing.T) {
			db := openTestDB(t, Options{})
			want := fillTables(t, db, 5, 120)
			p := StrategyPolicy{Strategy: strategy, K: 3, MinTables: 2, Seed: 1}
			res, ran, err := db.MinorCompact(p)
			if err != nil || !ran {
				t.Fatalf("MinorCompact: ran=%v err=%v", ran, err)
			}
			if res.Policy != strategy || res.Merged < 2 {
				t.Errorf("result = %+v", res)
			}
			st := db.Stats()
			if st.BytesFlushed == 0 || st.BytesCompacted == 0 {
				t.Errorf("write-amp counters missing: flushed=%d compacted=%d",
					st.BytesFlushed, st.BytesCompacted)
			}
			if st.CompactionPicks[strategy] != 1 {
				t.Errorf("CompactionPicks = %v, want one %s pick", st.CompactionPicks, strategy)
			}
			for k, v := range want {
				got, err := db.Get([]byte(k))
				if err != nil || string(got) != v {
					t.Fatalf("Get(%s) = %q, %v; want %q", k, got, err, v)
				}
			}
		})
	}
}

// TestStrategyPolicyMatchesPickLive: the policy's pick on live tables is
// exactly compaction.PickLive on the same statistics — the glue between
// the engine's TableInfo view and the registry picker adds nothing.
func TestStrategyPolicyMatchesPickLive(t *testing.T) {
	db := openTestDB(t, Options{})
	fillTables(t, db, 6, 200)
	infos := db.TableInfos()
	live := make([]compaction.LiveTable, len(infos))
	for i, info := range infos {
		live[i] = compaction.LiveTable{
			SizeBytes: info.SizeBytes, Entries: int(info.Entries),
			Smallest: info.Smallest, Largest: info.Largest, Sketch: info.Sketch,
		}
	}
	for _, strategy := range compaction.LiveStrategies() {
		p := StrategyPolicy{Strategy: strategy, K: 3, MinTables: 2, Seed: 42}
		got := p.Pick(infos)
		want, err := compaction.PickLive(live, strategy, 3, 42)
		if err != nil {
			t.Fatalf("%s: %v", strategy, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: policy picked %v, PickLive picked %v", strategy, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: policy picked %v, PickLive picked %v", strategy, got, want)
			}
		}
	}
}

// TestTableInfosCarrySketches: flush outputs carry a persisted sketch the
// policies can rank with — for the default v3 format from the file's
// bounds tail, and for v2 tables through the manifest, surviving reopen
// either way.
func TestTableInfosCarrySketches(t *testing.T) {
	for _, tc := range []struct {
		name   string
		format int
	}{
		{"v3", 0}, // default
		{"v2", sstable.FormatV2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			opts := Options{TableFormat: tc.format}
			db, err := Open(dir, opts)
			if err != nil {
				t.Fatal(err)
			}
			fillTables(t, db, 3, 100)
			for _, info := range db.TableInfos() {
				if info.Sketch == nil {
					t.Fatalf("table %s has no sketch before reopen", info.Name)
				}
				if e := info.Sketch.Estimate(); e < 50 || e > 200 {
					t.Errorf("table %s sketch estimate %.0f, want ≈100", info.Name, e)
				}
			}
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}
			db, err = Open(dir, opts)
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			for _, info := range db.TableInfos() {
				if info.Sketch == nil {
					t.Fatalf("table %s lost its sketch across reopen", info.Name)
				}
			}
		})
	}
}

// TestPolicyByName resolves every front-end policy name and rejects the
// rest.
func TestPolicyByName(t *testing.T) {
	for name, want := range map[string]string{
		"size-tiered": "size-tiered",
		"threshold":   "threshold",
		"leveled":     "leveled",
		"SI":          "SI",
		"BT(O)":       "BT(O)",
	} {
		p, err := PolicyByName(name, 4, 1)
		if err != nil || p == nil || p.Name() != want {
			t.Errorf("PolicyByName(%q) = %v, %v", name, p, err)
		}
	}
	for _, name := range []string{"", "none"} {
		if p, err := PolicyByName(name, 4, 1); err != nil || p != nil {
			t.Errorf("PolicyByName(%q) = %v, %v; want nil, nil", name, p, err)
		}
	}
	// Exact-set strategies and typos are rejected with the accepted list.
	for _, name := range []string{"LM", "SO(exact)", "level", "bogus"} {
		_, err := PolicyByName(name, 4, 1)
		if err == nil || !strings.Contains(err.Error(), "size-tiered") {
			t.Errorf("PolicyByName(%q) err = %v, want listing error", name, err)
		}
	}
}
