package lsm

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/vfs"
	"repro/internal/wal"
)

// This file tests the group-commit write path: WriteBatch semantics, the
// durability and atomicity of acknowledged batches across simulated
// crashes (WAL truncated at arbitrary offsets), and a -race stress of
// parallel Put/Delete/Write against Get/Scan while flushes and background
// compactions churn the table set.

func TestWriteBatchBasics(t *testing.T) {
	db, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	if err := db.Put([]byte("doomed"), []byte("old")); err != nil {
		t.Fatal(err)
	}

	var b WriteBatch
	b.Put([]byte("a"), []byte("1"))
	b.Put([]byte("b"), []byte("2"))
	b.Delete([]byte("doomed"))
	b.Put([]byte("a"), []byte("1b")) // later op in the batch wins
	if b.Len() != 4 || b.Empty() {
		t.Fatalf("Len = %d, Empty = %v", b.Len(), b.Empty())
	}
	if err := db.Write(&b); err != nil {
		t.Fatal(err)
	}
	for key, want := range map[string]string{"a": "1b", "b": "2"} {
		got, err := db.Get([]byte(key))
		if err != nil || string(got) != want {
			t.Fatalf("Get(%s) = %q, %v; want %q", key, got, err, want)
		}
	}
	if _, err := db.Get([]byte("doomed")); !errors.Is(err, ErrNotFound) {
		t.Errorf("batched delete did not apply: %v", err)
	}

	// Reset and reuse the same batch.
	b.Reset()
	if b.Len() != 0 || !b.Empty() {
		t.Fatalf("after Reset: Len = %d", b.Len())
	}
	b.Put([]byte("c"), []byte("3"))
	if err := db.Write(&b); err != nil {
		t.Fatal(err)
	}
	if got, err := db.Get([]byte("c")); err != nil || string(got) != "3" {
		t.Fatalf("Get(c) = %q, %v", got, err)
	}

	// Empty batches and nil batches are no-ops; empty keys reject the
	// whole batch with nothing applied.
	if err := db.Write(nil); err != nil {
		t.Fatal(err)
	}
	var empty WriteBatch
	if err := db.Write(&empty); err != nil {
		t.Fatal(err)
	}
	var bad WriteBatch
	bad.Put([]byte("good"), []byte("v"))
	bad.Put(nil, []byte("v"))
	if err := db.Write(&bad); err == nil {
		t.Fatal("batch with empty key accepted")
	}
	if _, err := db.Get([]byte("good")); !errors.Is(err, ErrNotFound) {
		t.Errorf("rejected batch partially applied: %v", err)
	}
}

func TestGroupCommitStats(t *testing.T) {
	db, err := Open(t.TempDir(), Options{SyncWAL: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 5; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	var b WriteBatch
	for i := 0; i < 7; i++ {
		b.Put([]byte(fmt.Sprintf("b%d", i)), []byte("v"))
	}
	if err := db.Write(&b); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.GroupedWrites != 12 {
		t.Errorf("GroupedWrites = %d, want 12", st.GroupedWrites)
	}
	if st.GroupCommits != 6 {
		t.Errorf("GroupCommits = %d, want 6 (sequential writers form groups of one batch)", st.GroupCommits)
	}
	if st.WALSyncs != st.GroupCommits {
		t.Errorf("WALSyncs = %d, want one per group (%d)", st.WALSyncs, st.GroupCommits)
	}
}

// batchTag extracts the "g..b.." batch tag from a crash-test key.
func batchTag(key []byte) string {
	s := string(key)
	if i := strings.IndexByte(s, '-'); i >= 0 {
		return s[:i]
	}
	return s
}

// TestGroupCommitCrashRecovery is the durability property test for the
// pipeline: 8 concurrent sync writers commit tagged batches, then the WAL
// is truncated at arbitrary offsets to simulate crashes mid-write. Every
// recovery must see (a) no batch partially applied — each tag's keys are
// all present with correct values or all absent — and (b) a prefix-closed
// set of batches in WAL commit order. The untruncated log must recover
// every acknowledged batch, and Stats must report truncated recoveries.
func TestGroupCommitCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{SyncWAL: true, MemtableBytes: 256 << 20, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	const (
		writers = 8
		batches = 25
		keysPer = 3
	)
	var wg sync.WaitGroup
	var writeErr atomic.Value
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var b WriteBatch
			for bi := 0; bi < batches; bi++ {
				b.Reset()
				tag := fmt.Sprintf("g%02db%03d", g, bi)
				for j := 0; j < keysPer; j++ {
					b.Put([]byte(fmt.Sprintf("%s-k%d", tag, j)), []byte(tag))
				}
				if err := db.Write(&b); err != nil {
					writeErr.CompareAndSwap(nil, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err, _ := writeErr.Load().(error); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	walData, err := os.ReadFile(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}

	// Recover the batch commit order straight from the log.
	var order []string
	seen := make(map[string]bool)
	if _, err := wal.Replay(vfs.Default, filepath.Join(dir, "wal.log"), func(r wal.Record) error {
		if tag := batchTag(r.Key); !seen[tag] {
			seen[tag] = true
			order = append(order, tag)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(order) != writers*batches {
		t.Fatalf("full log holds %d batches, want %d", len(order), writers*batches)
	}

	// Crash-recover at the full length, at arbitrary offsets, and at zero.
	rng := rand.New(rand.NewSource(42))
	cuts := []int{len(walData), 0}
	for i := 0; i < 25; i++ {
		cuts = append(cuts, rng.Intn(len(walData)))
	}
	for _, cut := range cuts {
		cdir := t.TempDir()
		if err := os.WriteFile(filepath.Join(cdir, "wal.log"), walData[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		db2, err := Open(cdir, Options{})
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		recovered := make(map[string]int)
		err = db2.Scan(func(k, v []byte) error {
			tag := batchTag(k)
			if string(v) != tag {
				return fmt.Errorf("key %s has value %q, want %q", k, v, tag)
			}
			recovered[tag]++
			return nil
		})
		if err != nil {
			t.Fatalf("cut %d: scan: %v", cut, err)
		}
		// (a) Batch atomicity: all of a batch's keys or none.
		for tag, n := range recovered {
			if n != keysPer {
				t.Fatalf("cut %d: batch %s partially applied: %d/%d keys", cut, tag, n, keysPer)
			}
		}
		// (b) Prefix-closedness in commit order.
		for i, tag := range order {
			if _, ok := recovered[tag]; ok != (i < len(recovered)) {
				t.Fatalf("cut %d: recovered %d batches but batch %d (%s) present=%v: not a prefix",
					cut, len(recovered), i, tag, ok)
			}
		}
		// Acknowledged durability: the intact log recovers everything.
		if cut == len(walData) && len(recovered) != len(order) {
			t.Fatalf("full log recovered %d/%d acknowledged batches", len(recovered), len(order))
		}
		// Observability: a cut that doesn't land on a frame boundary must
		// be reported as a truncated recovery.
		st := db2.Stats()
		if st.WALRecoveredBytes != int64(cut) && !st.WALRecoveryTruncated {
			t.Fatalf("cut %d: recovered %d bytes mid-frame but truncation not reported: %+v",
				cut, st.WALRecoveredBytes, st)
		}
		if st.WALRecoveredRecords != keysPer*len(recovered) {
			t.Fatalf("cut %d: WALRecoveredRecords = %d, want %d", cut, st.WALRecoveredRecords, keysPer*len(recovered))
		}
		db2.Close()
	}
}

// TestRecoveryRelogsLargeMemtable reopens a store whose unflushed
// memtable exceeds the WAL's 64 MiB frame limit; Open's re-log must chunk
// by bytes (not just record count) or recovery would fail with
// ErrBatchTooLarge and the store would be unopenable after a crash.
func TestRecoveryRelogsLargeMemtable(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{MemtableBytes: 256 << 20, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	val := bytes.Repeat([]byte("v"), 2<<20)
	const n = 40 // 80 MiB unflushed: over MaxFrameBytes in aggregate
	for i := 0; i < n; i++ {
		if err := db.Put([]byte(fmt.Sprintf("big-%03d", i)), val); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db, err = Open(dir, Options{MemtableBytes: 256 << 20, Seed: 6})
	if err != nil {
		t.Fatalf("reopen with large unflushed memtable: %v", err)
	}
	defer db.Close()
	st := db.Stats()
	if st.WALRecoveredRecords != n || st.WALRecoveryTruncated {
		t.Fatalf("recovery stats = %+v, want %d records, not truncated", st, n)
	}
	for _, i := range []int{0, n / 2, n - 1} {
		got, err := db.Get([]byte(fmt.Sprintf("big-%03d", i)))
		if err != nil || !bytes.Equal(got, val) {
			t.Fatalf("big-%03d: len=%d, %v", i, len(got), err)
		}
	}
}

// TestBatchVisibilityAtomic scans concurrently with batch commits that
// always write the same value to two keys; a scan snapshot must never
// observe the keys out of step.
func TestBatchVisibilityAtomic(t *testing.T) {
	db, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	var b WriteBatch
	b.Put([]byte("x"), []byte("0"))
	b.Put([]byte("y"), []byte("0"))
	if err := db.Write(&b); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var writerErr error
	go func() {
		defer close(done)
		var wb WriteBatch
		for i := 1; i <= 2000; i++ {
			wb.Reset()
			v := []byte(fmt.Sprint(i))
			wb.Put([]byte("x"), v)
			wb.Put([]byte("y"), v)
			if err := db.Write(&wb); err != nil {
				writerErr = err
				return
			}
		}
	}()

	for alive := true; alive; {
		select {
		case <-done:
			alive = false
		default:
		}
		var x, y []byte
		err := db.Scan(func(k, v []byte) error {
			switch string(k) {
			case "x":
				x = append([]byte(nil), v...)
			case "y":
				y = append([]byte(nil), v...)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(x, y) {
			t.Fatalf("torn batch visible: x=%q y=%q", x, y)
		}
	}
	if writerErr != nil {
		t.Fatal(writerErr)
	}
}

// TestPipelineStressDuringFlushes hammers the commit pipeline with mixed
// Put/Delete/WriteBatch writers while readers and scanners run and a tiny
// memtable forces constant flushes with background compaction and
// backpressure — the -race harness for the lock-shedding commit path.
func TestPipelineStressDuringFlushes(t *testing.T) {
	db, err := Open(t.TempDir(), Options{
		MemtableBytes: 8 << 10,
		Background:    &BackgroundConfig{Trigger: 4, Stall: 10, Strategy: "BT(I)", K: 3},
		Seed:          11,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	const (
		writers      = 4
		opsPerWriter = 200
		keysPer      = 50
	)
	var (
		wg      sync.WaitGroup
		auxWG   sync.WaitGroup
		stop    atomic.Bool
		testErr atomic.Value
	)
	fail := func(err error) { testErr.CompareAndSwap(nil, err) }
	pad := strings.Repeat("x", 100) // value padding so the workload spans many flushes

	finals := make([]map[string]string, writers)
	for w := 0; w < writers; w++ {
		finals[w] = make(map[string]string)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			final := finals[w]
			var b WriteBatch
			for i := 0; i < opsPerWriter; i++ {
				key := fmt.Sprintf("w%d-key-%03d", w, i%keysPer)
				switch i % 7 {
				case 3: // single delete
					if err := db.Delete([]byte(key)); err != nil {
						fail(fmt.Errorf("writer %d delete: %w", w, err))
						return
					}
					delete(final, key)
				case 5: // multi-op batch: two puts and a delete
					b.Reset()
					k2 := fmt.Sprintf("w%d-key-%03d", w, (i+1)%keysPer)
					k3 := fmt.Sprintf("w%d-key-%03d", w, (i+2)%keysPer)
					v := fmt.Sprintf("w%d-batch-%d-%s", w, i, pad)
					b.Put([]byte(key), []byte(v))
					b.Put([]byte(k2), []byte(v))
					b.Delete([]byte(k3))
					if err := db.Write(&b); err != nil {
						fail(fmt.Errorf("writer %d batch: %w", w, err))
						return
					}
					final[key], final[k2] = v, v
					delete(final, k3)
				default:
					v := fmt.Sprintf("w%d-val-%d-%s", w, i, pad)
					if err := db.Put([]byte(key), []byte(v)); err != nil {
						fail(fmt.Errorf("writer %d put: %w", w, err))
						return
					}
					final[key] = v
				}
			}
		}(w)
	}

	for r := 0; r < 2; r++ {
		auxWG.Add(1)
		go func(r int) {
			defer auxWG.Done()
			for i := 0; !stop.Load(); i++ {
				key := fmt.Sprintf("w%d-key-%03d", i%writers, i%keysPer)
				if _, err := db.Get([]byte(key)); err != nil && !errors.Is(err, ErrNotFound) {
					fail(fmt.Errorf("reader %d: %w", r, err))
					return
				}
			}
		}(r)
	}
	auxWG.Add(1)
	go func() {
		defer auxWG.Done()
		for !stop.Load() {
			prev := ""
			err := db.Scan(func(k, v []byte) error {
				if string(k) <= prev {
					return fmt.Errorf("scan out of order: %q after %q", k, prev)
				}
				prev = string(k)
				return nil
			})
			if err != nil {
				fail(fmt.Errorf("scanner: %w", err))
				return
			}
		}
	}()

	wg.Wait()
	stop.Store(true)
	auxWG.Wait()
	if err, _ := testErr.Load().(error); err != nil {
		t.Fatal(err)
	}
	if err := db.BackgroundErr(); err != nil {
		t.Fatal(err)
	}

	st := db.Stats()
	if st.Flushes == 0 {
		t.Error("stress never flushed: memtable threshold not exercised")
	}
	for w, final := range finals {
		for i := 0; i < keysPer; i++ {
			key := fmt.Sprintf("w%d-key-%03d", w, i)
			want, live := final[key]
			got, err := db.Get([]byte(key))
			switch {
			case live && err != nil:
				t.Fatalf("lost write: Get(%s) = %v, want %q", key, err, want)
			case live && string(got) != want:
				t.Fatalf("wrong value: Get(%s) = %q, want %q", key, got, want)
			case !live && !errors.Is(err, ErrNotFound):
				t.Fatalf("deleted key resurfaced: Get(%s) = %q, %v", key, got, err)
			}
		}
	}
}
