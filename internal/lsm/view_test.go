package lsm

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/vfs"
)

// TestReadsProgressWhileMuHeldExclusively is the acceptance check for the
// lock-free read path: with db.mu held exclusively (the test standing in
// for a flush or compaction critical section), Get, NewIterator and
// Snapshot must all complete — none of them may acquire db.mu on the hot
// path.
func TestReadsProgressWhileMuHeldExclusively(t *testing.T) {
	db, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 500; i++ {
		if err := db.Put([]byte(fmt.Sprintf("key-%04d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 500; i < 600; i++ { // some keys stay in the memtable
		if err := db.Put([]byte(fmt.Sprintf("key-%04d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}

	db.mu.Lock() // the test hook: an exclusively held store lock
	done := make(chan error, 1)
	go func() {
		done <- func() error {
			if v, err := db.Get([]byte("key-0123")); err != nil || string(v) != "v123" {
				return fmt.Errorf("Get under held mu = %q, %v", v, err)
			}
			if v, err := db.Get([]byte("key-0550")); err != nil || string(v) != "v550" {
				return fmt.Errorf("memtable Get under held mu = %q, %v", v, err)
			}
			it, release, err := db.NewIterator([]byte("key-0100"), []byte("key-0110"))
			if err != nil {
				return fmt.Errorf("NewIterator under held mu: %v", err)
			}
			n := 0
			for ; it.Valid(); it.Next() {
				n++
			}
			release()
			if n != 10 {
				return fmt.Errorf("iterator under held mu yielded %d entries, want 10", n)
			}
			snap, err := db.Snapshot()
			if err != nil {
				return fmt.Errorf("Snapshot under held mu: %v", err)
			}
			defer snap.Release()
			if v, err := snap.Get([]byte("key-0001")); err != nil || string(v) != "v1" {
				return fmt.Errorf("snapshot Get under held mu = %q, %v", v, err)
			}
			return nil
		}()
	}()
	select {
	case err := <-done:
		db.mu.Unlock()
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		db.mu.Unlock()
		t.Fatal("reads did not progress while db.mu was held: the read path still takes the store lock")
	}
}

// TestViewStressDuringFlushesAndCompactions is the -race harness for the
// view lifecycle: concurrent point reads and scans run against views that
// flushes, minor compactions and background major-compaction swaps keep
// replacing underneath them. Every read must observe a value that was
// current at some point (values are version-stamped per key and only move
// forward).
func TestViewStressDuringFlushesAndCompactions(t *testing.T) {
	db, err := Open(t.TempDir(), Options{
		MemtableBytes: 8 << 10,
		Background:    &BackgroundConfig{Trigger: 4, Stall: 12, Strategy: "BT(I)", K: 3},
		AutoCompact:   SizeTieredPolicy{},
		Seed:          42,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	const keys = 64
	key := func(i int) []byte { return []byte(fmt.Sprintf("key-%03d", i)) }
	// Values carry an 8-digit version plus padding that keeps the tiny
	// memtable flushing continuously.
	val := func(ver int) []byte {
		return []byte(fmt.Sprintf("%08d", ver) + strings.Repeat("x", 120))
	}
	for i := 0; i < keys; i++ {
		if err := db.Put(key(i), val(0)); err != nil {
			t.Fatal(err)
		}
	}

	var (
		stop    atomic.Bool
		wg      sync.WaitGroup
		readErr atomic.Value
	)
	fail := func(format string, args ...any) {
		readErr.CompareAndSwap(nil, fmt.Sprintf(format, args...))
		stop.Store(true)
	}

	// Writer: bump per-key versions (8-digit, monotone per key).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for ver := 1; !stop.Load(); ver++ {
			for i := 0; i < keys; i++ {
				if err := db.Put(key(i), val(ver)); err != nil {
					fail("put: %v", err)
					return
				}
			}
		}
	}()

	// Point readers.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			last := make([]int, keys)
			for n := 0; !stop.Load(); n++ {
				i := (n*7 + r) % keys
				v, err := db.Get(key(i))
				if err != nil {
					fail("get %s: %v", key(i), err)
					return
				}
				var ver int
				if len(v) != 128 {
					fail("torn value %q for %s", v, key(i))
					return
				}
				if _, err := fmt.Sscanf(string(v[:8]), "%d", &ver); err != nil {
					fail("unparseable value %q for %s", v, key(i))
					return
				}
				if ver < last[i] {
					fail("version moved backwards for %s: %d after %d", key(i), ver, last[i])
					return
				}
				last[i] = ver
			}
		}(r)
	}

	// Scanner: every key present exactly once, every value well-formed.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			seen := 0
			err := db.Scan(func(k, v []byte) error {
				if len(v) != 128 {
					return fmt.Errorf("torn scan value %q at %q", v, k)
				}
				seen++
				return nil
			})
			if err != nil {
				fail("scan: %v", err)
				return
			}
			if seen != keys {
				fail("scan saw %d keys, want %d", seen, keys)
				return
			}
		}
	}()

	time.Sleep(2 * time.Second)
	stop.Store(true)
	wg.Wait()
	if msg := readErr.Load(); msg != nil {
		t.Fatal(msg)
	}
	st := db.Stats()
	if st.Flushes == 0 || st.MajorCompactions+st.MinorCompactions == 0 {
		t.Fatalf("stress ran without table churn (flushes=%d minor=%d major=%d): nothing was exercised",
			st.Flushes, st.MinorCompactions, st.MajorCompactions)
	}
}

// TestPinnedViewFrozenAndReleasedOnce is the view-lifecycle property test:
// a pinned view (here via its public faces, Snapshot and iterator)
// observes a frozen table set while compactions replace the live one, and
// dropping the last reference closes and deletes each obsolete table's
// reader exactly once.
func TestPinnedViewFrozenAndReleasedOnce(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	for tab := 0; tab < 3; tab++ {
		for i := 0; i < 50; i++ {
			k := []byte(fmt.Sprintf("key-%03d", i))
			if err := db.Put(k, []byte(fmt.Sprintf("t%d", tab))); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
	}

	snap, err := db.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	preFiles := make([]string, len(snap.tables))
	for i, th := range snap.tables {
		preFiles[i] = th.name
	}
	if len(preFiles) != 3 {
		t.Fatalf("snapshot captured %d tables, want 3", len(preFiles))
	}

	// Overwrite everything and compact: the snapshot's tables all become
	// obsolete.
	for i := 0; i < 50; i++ {
		if err := db.Put([]byte(fmt.Sprintf("key-%03d", i)), []byte("post")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.MajorCompact("BT(I)", 2, 1); err != nil {
		t.Fatal(err)
	}

	// Frozen view: the snapshot still reads the pre-compaction values and
	// its table set is untouched.
	if v, err := snap.Get([]byte("key-007")); err != nil || string(v) != "t2" {
		t.Fatalf("snapshot Get after compaction = %q, %v; want the frozen t2", v, err)
	}
	for i, th := range snap.tables {
		if th.name != preFiles[i] {
			t.Fatalf("snapshot table set changed: %s became %s", preFiles[i], th.name)
		}
	}
	// The obsolete files must survive on disk while the snapshot pins them.
	for _, name := range preFiles {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("obsolete table %s deleted while still pinned: %v", name, err)
		}
	}

	// An iterator takes its own references: it must outlive the snapshot's
	// release.
	it, release, err := snap.NewIterator(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	snap.Release()
	snap.Release() // idempotent; must not double-release the tables
	n := 0
	for ; it.Valid(); it.Next() {
		if string(it.Entry().Value) != "t2" {
			t.Fatalf("post-release iterator saw %q, want frozen t2", it.Entry().Value)
		}
		n++
	}
	if n != 50 {
		t.Fatalf("post-release iterator yielded %d entries, want 50", n)
	}
	release()

	// Last reference gone: every obsolete reader was closed and its file
	// deleted — exactly once each, or the refcount would have gone
	// negative and released twice (caught by the file simply being gone
	// plus the races above).
	for _, name := range preFiles {
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Fatalf("obsolete table %s not deleted after last release (err=%v)", name, err)
		}
	}
	for _, th := range snap.tables {
		if refs := th.refs.Load(); refs != 0 {
			t.Fatalf("table %s has %d refs after final release, want 0", th.name, refs)
		}
	}
	// Current data still reads fine through the live view.
	if v, err := db.Get([]byte("key-007")); err != nil || string(v) != "post" {
		t.Fatalf("live Get after release = %q, %v", v, err)
	}
}

// TestKeyRangePruning builds tables with disjoint, adjacent and
// overlapping key ranges and checks point reads at and around every
// boundary, plus that lookups outside all ranges are pruned without
// touching any Bloom filter.
func TestKeyRangePruning(t *testing.T) {
	db, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	flushKeys := func(keys ...string) {
		t.Helper()
		for _, k := range keys {
			if err := db.Put([]byte(k), []byte("val-"+k)); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	flushKeys("b", "c", "d") // table 1: [b, d]
	flushKeys("d", "e", "f") // table 2: [d, f] — adjacent/overlapping at d
	flushKeys("m", "n", "p") // table 3: [m, p] — disjoint
	flushKeys("c", "n")      // table 4: [c, n] — overlaps 1, 2, 3

	db.mu.RLock()
	tables := len(db.tables)
	db.mu.RUnlock()
	if tables != 4 {
		t.Fatalf("built %d tables, want 4", tables)
	}

	// Every live key resolves to its newest version, including boundary
	// keys equal to a table's smallest or largest bound.
	for key, want := range map[string]string{
		"b": "val-b", "c": "val-c", "d": "val-d", "e": "val-e",
		"f": "val-f", "m": "val-m", "n": "val-n", "p": "val-p",
	} {
		got, err := db.Get([]byte(key))
		if err != nil || string(got) != want {
			t.Errorf("Get(%q) = %q, %v; want %q", key, got, err, want)
		}
	}

	// Probes outside every table's range — before "b", after "p" — must
	// be answered by pruning alone: no Bloom filter consulted, no block
	// read.
	before := db.Stats()
	for _, key := range []string{"a", "q", "z"} {
		if _, err := db.Get([]byte(key)); err != ErrNotFound {
			t.Errorf("Get(%q) err = %v, want ErrNotFound", key, err)
		}
	}
	after := db.Stats()
	if after.FilterNegatives != before.FilterNegatives || after.FilterFalsePositives != before.FilterFalsePositives {
		t.Errorf("out-of-range probes touched Bloom filters: negatives %d→%d, fps %d→%d",
			before.FilterNegatives, after.FilterNegatives, before.FilterFalsePositives, after.FilterFalsePositives)
	}

	// "g" lies inside only table 4's [c, n] range: absent, but pruning
	// alone cannot answer it — exactly one table's filter must run. "ca"
	// similarly lies inside [b,d] and [c,n]: probed but absent.
	for _, key := range []string{"g", "ca"} {
		if _, err := db.Get([]byte(key)); err != ErrNotFound {
			t.Errorf("Get(%q) err = %v, want ErrNotFound", key, err)
		}
	}
	if got := db.Stats(); got.FilterNegatives == after.FilterNegatives && got.FilterFalsePositives == after.FilterFalsePositives {
		t.Error("in-range absent probes never consulted a Bloom filter: pruning is rejecting too much")
	}

	// Range scans prune too: a scan of [g, h) intersects no table.
	n := 0
	if err := db.Range([]byte("g"), []byte("h"), func(k, v []byte) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("empty-range scan yielded %d entries", n)
	}
	// And a scan crossing table boundaries sees everything in order.
	var got []string
	if err := db.Range([]byte("c"), []byte("n"), func(k, v []byte) error {
		got = append(got, string(k))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := []string{"c", "d", "e", "f", "m"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("Range[c,n) = %v, want %v", got, want)
	}
}

// TestProbeTablesContextCancelled exercises the per-table cancellation
// check: a probe with an expired context stops between tables instead of
// draining the whole set.
func TestProbeTablesContextCancelled(t *testing.T) {
	db, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for tab := 0; tab < 3; tab++ {
		if err := db.Put([]byte(fmt.Sprintf("key-%d", tab)), []byte("v")); err != nil {
			t.Fatal(err)
		}
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	v, err := db.pinView()
	if err != nil {
		t.Fatal(err)
	}
	defer v.unpin()
	if _, _, err := probeTables(ctx, v.byseq, []byte("key-1")); err != context.Canceled {
		t.Fatalf("probeTables with cancelled ctx err = %v, want context.Canceled", err)
	}
	// And through the public face.
	if _, err := db.GetContext(ctx, []byte("key-1")); err != context.Canceled {
		t.Fatalf("GetContext with cancelled ctx err = %v, want context.Canceled", err)
	}
}

// TestManifestBoundsRoundTrip: table bounds persist through the manifest
// and are restored on reopen; a manifest without bounds lines (pre-bounds
// format) still loads.
func TestManifestBoundsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"apple", "mango", "zebra"} {
		if err := db.Put([]byte(k), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	man, err := loadManifest(vfs.Default, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(man.tables) != 1 {
		t.Fatalf("manifest holds %d tables, want 1", len(man.tables))
	}
	b, ok := man.bounds[man.tables[0]]
	if !ok {
		t.Fatal("manifest carries no bounds for the flushed table")
	}
	if string(b.Smallest) != "apple" || string(b.Largest) != "zebra" {
		t.Errorf("manifest bounds = [%q, %q], want [apple, zebra]", b.Smallest, b.Largest)
	}
	if b.MinSeq == 0 || b.MaxSeq < b.MinSeq {
		t.Errorf("manifest seq bounds = [%d, %d]", b.MinSeq, b.MaxSeq)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: handle bounds restored (from the v2 footer; the manifest
	// entry agrees), reads prune correctly.
	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	db2.mu.RLock()
	th := db2.tables[0]
	db2.mu.RUnlock()
	if !th.hasBounds || string(th.smallest) != "apple" || string(th.largest) != "zebra" {
		t.Fatalf("reopened handle bounds = %v [%q, %q]", th.hasBounds, th.smallest, th.largest)
	}
	if th.maxSeq != b.MaxSeq || th.minSeq != b.MinSeq {
		t.Errorf("reopened seq bounds [%d, %d] != manifest [%d, %d]", th.minSeq, th.maxSeq, b.MinSeq, b.MaxSeq)
	}
	if v, err := db2.Get([]byte("mango")); err != nil || string(v) != "v" {
		t.Fatalf("Get after reopen = %q, %v", v, err)
	}

	// A manifest stripped of bounds lines (what a pre-bounds build wrote)
	// still opens; bounds come from the footer.
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		t.Fatal(err)
	}
	var kept bytes.Buffer
	for _, line := range bytes.Split(raw, []byte("\n")) {
		if !bytes.HasPrefix(line, []byte("bounds ")) {
			kept.Write(line)
			kept.WriteByte('\n')
		}
	}
	if err := os.WriteFile(filepath.Join(dir, manifestName), kept.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	db3, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open with bounds-free manifest: %v", err)
	}
	defer db3.Close()
	if v, err := db3.Get([]byte("apple")); err != nil || string(v) != "v" {
		t.Fatalf("Get with bounds-free manifest = %q, %v", v, err)
	}
}
