package lsm

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestChaosRandomOpsWithCrashes runs a long random workload against the
// store, interleaving crashes (close without flushing), recoveries, minor
// and major compactions, and checks the store against an in-memory
// reference map after every recovery and at the end. This is the
// failure-injection integration test for the whole write path:
// WAL → memtable → sstables → compactions.
func TestChaosRandomOpsWithCrashes(t *testing.T) {
	dir := t.TempDir()
	r := rand.New(rand.NewSource(97))
	ref := map[string]string{}

	open := func() *DB {
		db, err := Open(dir, Options{
			MemtableBytes: 4 << 10,
			AutoCompact:   SizeTieredPolicy{MinThreshold: 4},
			Seed:          int64(r.Int()),
		})
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		return db
	}
	verify := func(db *DB, when string) {
		t.Helper()
		// Spot-check a sample of the reference map plus some absent keys.
		checked := 0
		for k, v := range ref {
			got, err := db.Get([]byte(k))
			if err != nil || string(got) != v {
				t.Fatalf("%s: Get(%s) = %q, %v; want %q", when, k, got, err, v)
			}
			checked++
			if checked >= 80 {
				break
			}
		}
		if _, err := db.Get([]byte("never-written")); err != ErrNotFound {
			t.Fatalf("%s: phantom key: %v", when, err)
		}
		// Full scan must agree exactly with the reference.
		count := 0
		err := db.Scan(func(k, v []byte) error {
			want, ok := ref[string(k)]
			if !ok {
				return fmt.Errorf("scan surfaced deleted/unknown key %q", k)
			}
			if string(v) != want {
				return fmt.Errorf("scan %q = %q, want %q", k, v, want)
			}
			count++
			return nil
		})
		if err != nil {
			t.Fatalf("%s: %v", when, err)
		}
		if count != len(ref) {
			t.Fatalf("%s: scan found %d keys, reference has %d", when, count, len(ref))
		}
	}

	db := open()
	const rounds = 6
	for round := 0; round < rounds; round++ {
		for i := 0; i < 400; i++ {
			key := fmt.Sprintf("key-%03d", r.Intn(300))
			switch r.Intn(10) {
			case 0, 1: // delete
				if err := db.Delete([]byte(key)); err != nil {
					t.Fatal(err)
				}
				delete(ref, key)
			default: // put
				val := fmt.Sprintf("v-%d-%d", round, i)
				if err := db.Put([]byte(key), []byte(val)); err != nil {
					t.Fatal(err)
				}
				ref[key] = val
			}
		}
		switch round % 3 {
		case 0: // crash: close without flushing, reopen, recover from WAL
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}
			db = open()
			verify(db, fmt.Sprintf("round %d after crash-recovery", round))
		case 1: // major compaction mid-stream
			strat := []string{"SI", "BT(I)", "RANDOM"}[r.Intn(3)]
			if _, err := db.MajorCompact(strat, 2+r.Intn(3), int64(round)); err != nil {
				t.Fatal(err)
			}
			verify(db, fmt.Sprintf("round %d after major compaction", round))
		default: // just flush
			if err := db.Flush(); err != nil {
				t.Fatal(err)
			}
			verify(db, fmt.Sprintf("round %d after flush", round))
		}
	}
	verify(db, "final")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// One last recovery pass.
	db = open()
	defer db.Close()
	verify(db, "after final reopen")
}
