package lsm

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"testing"
)

// TestChaosRandomOpsWithCrashes runs a long random workload against the
// store, interleaving crashes (close without flushing), recoveries, minor
// and major compactions, and checks the store against an in-memory
// reference map after every recovery and at the end. This is the
// failure-injection integration test for the whole write path:
// WAL → memtable → sstables → compactions.
func TestChaosRandomOpsWithCrashes(t *testing.T) {
	dir := t.TempDir()
	r := rand.New(rand.NewSource(97))
	ref := map[string]string{}

	open := func() *DB {
		db, err := Open(dir, Options{
			MemtableBytes: 4 << 10,
			AutoCompact:   SizeTieredPolicy{MinThreshold: 4},
			Seed:          int64(r.Int()),
		})
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		return db
	}
	verify := func(db *DB, when string) {
		t.Helper()
		// Spot-check a sample of the reference map plus some absent keys.
		checked := 0
		for k, v := range ref {
			got, err := db.Get([]byte(k))
			if err != nil || string(got) != v {
				t.Fatalf("%s: Get(%s) = %q, %v; want %q", when, k, got, err, v)
			}
			checked++
			if checked >= 80 {
				break
			}
		}
		if _, err := db.Get([]byte("never-written")); err != ErrNotFound {
			t.Fatalf("%s: phantom key: %v", when, err)
		}
		// Full scan must agree exactly with the reference.
		count := 0
		err := db.Scan(func(k, v []byte) error {
			want, ok := ref[string(k)]
			if !ok {
				return fmt.Errorf("scan surfaced deleted/unknown key %q", k)
			}
			if string(v) != want {
				return fmt.Errorf("scan %q = %q, want %q", k, v, want)
			}
			count++
			return nil
		})
		if err != nil {
			t.Fatalf("%s: %v", when, err)
		}
		if count != len(ref) {
			t.Fatalf("%s: scan found %d keys, reference has %d", when, count, len(ref))
		}
	}

	db := open()
	const rounds = 6
	for round := 0; round < rounds; round++ {
		for i := 0; i < 400; i++ {
			key := fmt.Sprintf("key-%03d", r.Intn(300))
			switch r.Intn(10) {
			case 0, 1: // delete
				if err := db.Delete([]byte(key)); err != nil {
					t.Fatal(err)
				}
				delete(ref, key)
			default: // put
				val := fmt.Sprintf("v-%d-%d", round, i)
				if err := db.Put([]byte(key), []byte(val)); err != nil {
					t.Fatal(err)
				}
				ref[key] = val
			}
		}
		switch round % 3 {
		case 0: // crash: close without flushing, reopen, recover from WAL
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}
			db = open()
			verify(db, fmt.Sprintf("round %d after crash-recovery", round))
		case 1: // major compaction mid-stream
			strat := []string{"SI", "BT(I)", "RANDOM"}[r.Intn(3)]
			if _, err := db.MajorCompact(strat, 2+r.Intn(3), int64(round)); err != nil {
				t.Fatal(err)
			}
			verify(db, fmt.Sprintf("round %d after major compaction", round))
		default: // just flush
			if err := db.Flush(); err != nil {
				t.Fatal(err)
			}
			verify(db, fmt.Sprintf("round %d after flush", round))
		}
	}
	verify(db, "final")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// One last recovery pass.
	db = open()
	defer db.Close()
	verify(db, "after final reopen")
}

// errSimulatedCrash marks a fault injected by the compaction test hook.
var errSimulatedCrash = errors.New("simulated crash")

// checkNoOrphans asserts every sstable file in dir is referenced by the
// manifest the given open DB loaded — i.e. recovery deleted the merge
// outputs a crashed compaction left behind.
func checkNoOrphans(t *testing.T, dir string, db *DB) {
	t.Helper()
	live := make(map[string]bool)
	for _, info := range db.TableInfos() {
		live[info.Name] = true
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		if strings.HasSuffix(ent.Name(), ".sst") && !live[ent.Name()] {
			t.Fatalf("orphaned sstable %s survived recovery (live: %v)", ent.Name(), db.TableInfos())
		}
	}
}

// TestChaosCrashBetweenMergeAndSwap kills a major compaction after every
// merge has completed but before the manifest swap — the riskiest instant
// of the background design, when gigabytes of merged output exist on disk
// yet the manifest still points at the old tables. Recovery must see all
// pre-crash data and delete the orphaned merge outputs.
func TestChaosCrashBetweenMergeAndSwap(t *testing.T) {
	dir := t.TempDir()
	ref := map[string]string{}
	open := func() *DB {
		db, err := Open(dir, Options{MemtableBytes: 2 << 10, Seed: 11})
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		return db
	}
	db := open()

	for round := 0; round < 4; round++ {
		// Build up several overlapping tables.
		for i := 0; i < 600; i++ {
			key := fmt.Sprintf("key-%03d", (round*131+i)%250)
			val := fmt.Sprintf("v-%d-%d", round, i)
			if err := db.Put([]byte(key), []byte(val)); err != nil {
				t.Fatal(err)
			}
			ref[key] = val
		}
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
		sstBefore := countSSTFiles(t, dir)

		// Compact with a fault injected between merging and swapping.
		db.hookBeforeSwap = func() error { return errSimulatedCrash }
		strat := []string{"SI", "BT(I)", "SO", "RANDOM"}[round]
		if _, err := db.MajorCompact(strat, 2+round%2, int64(round)); !errors.Is(err, errSimulatedCrash) {
			t.Fatalf("round %d: MajorCompact = %v, want simulated crash", round, err)
		}
		db.hookBeforeSwap = nil
		if got := countSSTFiles(t, dir); got <= sstBefore {
			t.Fatalf("round %d: crash left no merge outputs on disk (%d -> %d .sst files); fault injected too early", round, sstBefore, got)
		}

		// "Kill" the process: close without any further compaction, reopen.
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
		db = open()

		// No data loss: the old manifest still governs.
		count := 0
		err := db.Scan(func(k, v []byte) error {
			want, ok := ref[string(k)]
			if !ok {
				return fmt.Errorf("unknown key %q", k)
			}
			if string(v) != want {
				return fmt.Errorf("key %q = %q, want %q", k, v, want)
			}
			count++
			return nil
		})
		if err != nil {
			t.Fatalf("round %d after crash: %v", round, err)
		}
		if count != len(ref) {
			t.Fatalf("round %d after crash: scan found %d keys, want %d", round, count, len(ref))
		}
		// No orphans: recovery removed the abandoned merge outputs.
		checkNoOrphans(t, dir, db)
	}

	// A compaction with no fault must now succeed and still lose nothing.
	res, err := db.MajorCompact("BT(I)", 3, 99)
	if err != nil {
		t.Fatal(err)
	}
	if res.TablesAfter != 1 {
		t.Fatalf("clean compaction left %d tables, want 1", res.TablesAfter)
	}
	for k, want := range ref {
		got, err := db.Get([]byte(k))
		if err != nil || string(got) != want {
			t.Fatalf("after clean compaction: Get(%s) = %q, %v; want %q", k, got, err, want)
		}
	}
	checkNoOrphans(t, dir, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

func countSSTFiles(t *testing.T, dir string) int {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, ent := range entries {
		if strings.HasSuffix(ent.Name(), ".sst") {
			n++
		}
	}
	return n
}
