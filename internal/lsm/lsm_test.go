package lsm

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func openTestDB(t *testing.T, opts Options) *DB {
	t.Helper()
	db, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestPutGetDelete(t *testing.T) {
	db := openTestDB(t, Options{})
	if err := db.Put([]byte("k"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	got, err := db.Get([]byte("k"))
	if err != nil || string(got) != "v1" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if err := db.Put([]byte("k"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, _ = db.Get([]byte("k"))
	if string(got) != "v2" {
		t.Errorf("overwrite lost: %q", got)
	}
	if err := db.Delete([]byte("k")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get([]byte("k")); err != ErrNotFound {
		t.Errorf("deleted key Get err = %v", err)
	}
	if _, err := db.Get([]byte("never")); err != ErrNotFound {
		t.Errorf("missing key Get err = %v", err)
	}
	if err := db.Put(nil, []byte("v")); err == nil {
		t.Errorf("empty key accepted")
	}
}

func TestGetAcrossFlush(t *testing.T) {
	db := openTestDB(t, Options{MemtableBytes: 1 << 16})
	const n = 2000
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%06d", i))
		if err := db.Put(k, bytes.Repeat([]byte("v"), 50)); err != nil {
			t.Fatal(err)
		}
	}
	st := db.Stats()
	if st.Tables == 0 {
		t.Fatalf("expected flushes, stats = %+v", st)
	}
	for i := 0; i < n; i += 97 {
		k := []byte(fmt.Sprintf("key-%06d", i))
		if _, err := db.Get(k); err != nil {
			t.Fatalf("Get(%s) after flush: %v", k, err)
		}
	}
}

func TestDeleteShadowsFlushedValue(t *testing.T) {
	db := openTestDB(t, Options{})
	if err := db.Put([]byte("k"), []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete([]byte("k")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get([]byte("k")); err != ErrNotFound {
		t.Errorf("tombstone in memtable should shadow sstable value: %v", err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get([]byte("k")); err != ErrNotFound {
		t.Errorf("tombstone in sstable should shadow older sstable: %v", err)
	}
}

func TestScan(t *testing.T) {
	db := openTestDB(t, Options{})
	for i := 0; i < 100; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprint(i))); err != nil {
			t.Fatal(err)
		}
		if i%30 == 29 {
			if err := db.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := db.Delete([]byte("k050")); err != nil {
		t.Fatal(err)
	}
	var keys []string
	err := db.Scan(func(k, v []byte) error {
		keys = append(keys, string(k))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 99 {
		t.Errorf("scanned %d keys, want 99", len(keys))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("scan out of order at %q", keys[i])
		}
	}
	for _, k := range keys {
		if k == "k050" {
			t.Errorf("deleted key appeared in scan")
		}
	}
}

func TestRange(t *testing.T) {
	db := openTestDB(t, Options{})
	for i := 0; i < 100; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprint(i))); err != nil {
			t.Fatal(err)
		}
		if i%25 == 24 {
			if err := db.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := db.Delete([]byte("k030")); err != nil {
		t.Fatal(err)
	}
	var keys []string
	err := db.Range([]byte("k020"), []byte("k040"), func(k, v []byte) error {
		keys = append(keys, string(k))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 19 { // k020..k039 minus deleted k030
		t.Fatalf("range returned %d keys: %v", len(keys), keys)
	}
	if keys[0] != "k020" || keys[len(keys)-1] != "k039" {
		t.Errorf("range bounds wrong: %v ... %v", keys[0], keys[len(keys)-1])
	}
	for _, k := range keys {
		if k == "k030" {
			t.Errorf("deleted key in range")
		}
	}
	// Unbounded variants.
	n := 0
	if err := db.Range(nil, nil, func(k, v []byte) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 99 {
		t.Errorf("full range = %d keys, want 99", n)
	}
	n = 0
	if err := db.Range([]byte("k090"), nil, func(k, v []byte) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Errorf("open-ended range = %d keys, want 10", n)
	}
}

func TestWALRecovery(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%02d", i)), []byte(fmt.Sprint(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Delete([]byte("k07")); err != nil {
		t.Fatal(err)
	}
	// Simulate crash: close file handles without flushing memtable.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	got, err := db2.Get([]byte("k42"))
	if err != nil || string(got) != "42" {
		t.Errorf("recovered Get(k42) = %q, %v", got, err)
	}
	if _, err := db2.Get([]byte("k07")); err != ErrNotFound {
		t.Errorf("recovered delete lost: %v", err)
	}
	// Sequence numbers must keep increasing after recovery: a new write
	// must shadow recovered ones.
	if err := db2.Put([]byte("k42"), []byte("new")); err != nil {
		t.Fatal(err)
	}
	got, _ = db2.Get([]byte("k42"))
	if string(got) != "new" {
		t.Errorf("post-recovery write lost: %q", got)
	}
}

func TestRecoveryAfterFlushAndRestart(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("flushed"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("unflushed"), []byte("2")); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for _, k := range []string{"flushed", "unflushed"} {
		if _, err := db2.Get([]byte(k)); err != nil {
			t.Errorf("Get(%s) after restart: %v", k, err)
		}
	}
}

func TestClosedDBErrors(t *testing.T) {
	db := openTestDB(t, Options{})
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("k"), []byte("v")); err != ErrClosed {
		t.Errorf("Put on closed = %v", err)
	}
	if _, err := db.Get([]byte("k")); err != ErrClosed {
		t.Errorf("Get on closed = %v", err)
	}
	if err := db.Scan(func(k, v []byte) error { return nil }); err != ErrClosed {
		t.Errorf("Scan on closed = %v", err)
	}
	if err := db.Close(); err != ErrClosed {
		t.Errorf("double Close = %v", err)
	}
	if _, err := db.MajorCompact("SI", 2, 0); err != ErrClosed {
		t.Errorf("MajorCompact on closed = %v", err)
	}
}

// fillTables loads the store so that several sstables exist, with
// overlapping keys across tables.
func fillTables(t *testing.T, db *DB, tables, keysPerTable int) map[string]string {
	t.Helper()
	want := map[string]string{}
	r := rand.New(rand.NewSource(1))
	for tab := 0; tab < tables; tab++ {
		for i := 0; i < keysPerTable; i++ {
			// Half fresh keys, half overwrites of a shared range.
			var k string
			if i%2 == 0 {
				k = fmt.Sprintf("shared-%04d", r.Intn(keysPerTable))
			} else {
				k = fmt.Sprintf("t%02d-%04d", tab, i)
			}
			v := fmt.Sprintf("v-%d-%d", tab, i)
			if err := db.Put([]byte(k), []byte(v)); err != nil {
				t.Fatal(err)
			}
			want[k] = v
		}
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	return want
}

func TestMajorCompactStrategies(t *testing.T) {
	for _, strat := range []string{"SI", "SO", "BT(I)", "BT(O)", "RANDOM"} {
		t.Run(strat, func(t *testing.T) {
			db := openTestDB(t, Options{})
			want := fillTables(t, db, 6, 200)
			before := db.Stats()
			if before.Tables != 6 {
				t.Fatalf("tables before = %d", before.Tables)
			}
			res, err := db.MajorCompact(strat, 2, 1)
			if err != nil {
				t.Fatalf("MajorCompact: %v", err)
			}
			if got := db.Stats().Tables; got != 1 {
				t.Errorf("tables after = %d, want 1", got)
			}
			if res.TablesBefore != 6 || len(res.StepStats) != 5 {
				t.Errorf("result = %+v", res)
			}
			if res.BytesRead == 0 || res.BytesWritten == 0 || res.CostSimple == 0 {
				t.Errorf("zero I/O recorded: %+v", res)
			}
			// Every key must still resolve to its newest value.
			for k, v := range want {
				got, err := db.Get([]byte(k))
				if err != nil || string(got) != v {
					t.Fatalf("Get(%s) after compaction = %q, %v; want %q", k, got, err, v)
				}
			}
		})
	}
}

func TestMajorCompactPurgesTombstones(t *testing.T) {
	db := openTestDB(t, Options{})
	for i := 0; i < 100; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := db.Delete([]byte(fmt.Sprintf("k%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.MajorCompact("SI", 2, 0); err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := db.Scan(func(k, v []byte) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 50 {
		t.Errorf("post-compaction live keys = %d, want 50", n)
	}
	// Deleted keys must stay deleted.
	if _, err := db.Get([]byte("k000")); err != ErrNotFound {
		t.Errorf("tombstoned key resurfaced: %v", err)
	}
	// On-disk garbage must be gone: only one sstable file remains.
	files, err := filepath.Glob(filepath.Join(db.dir, "*.sst"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 {
		t.Errorf("sst files on disk = %d, want 1 (%v)", len(files), files)
	}
}

func TestTombstoneSurvivesIntermediateMerges(t *testing.T) {
	// Regression test: a tombstone must not be dropped by an intermediate
	// merge that does not include the table holding the shadowed value.
	// Layout: a large old table holds key X; two small tables (one of them
	// carrying the tombstone for X) merge together first under SI; only
	// the final root merge sees X's old value.
	db := openTestDB(t, Options{})
	// Large oldest table with X.
	if err := db.Put([]byte("x-key"), []byte("old")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := db.Put([]byte(fmt.Sprintf("big-%04d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	// Small disjoint table.
	for i := 0; i < 10; i++ {
		if err := db.Put([]byte(fmt.Sprintf("small-%02d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	// Small newest table with the tombstone.
	if err := db.Delete([]byte("x-key")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := db.Put([]byte(fmt.Sprintf("tiny-%02d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.MajorCompact("SI", 2, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get([]byte("x-key")); err != ErrNotFound {
		t.Errorf("deleted key resurfaced after compaction: %v", err)
	}
	// Live keys intact.
	if _, err := db.Get([]byte("big-0001")); err != nil {
		t.Errorf("live key lost: %v", err)
	}
}

func TestMajorCompactKWay(t *testing.T) {
	db := openTestDB(t, Options{})
	fillTables(t, db, 9, 100)
	res, err := db.MajorCompact("SI", 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 9 tables with k=4: steps of fan-in ≤ 4, (9-1)/3 = 3 steps (4,4,2... )
	if len(res.StepStats) >= 8 {
		t.Errorf("k=4 used %d steps, expected fewer than binary's 8", len(res.StepStats))
	}
	if db.Stats().Tables != 1 {
		t.Errorf("tables after = %d", db.Stats().Tables)
	}
}

func TestMajorCompactTrivialCases(t *testing.T) {
	db := openTestDB(t, Options{})
	// Empty store.
	res, err := db.MajorCompact("SI", 2, 0)
	if err != nil || res.TablesBefore != 0 {
		t.Errorf("empty compact = %+v, %v", res, err)
	}
	// Single table.
	if err := db.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	res, err = db.MajorCompact("SI", 2, 0)
	if err != nil || res.TablesBefore > 1 || len(res.StepStats) != 0 {
		t.Errorf("single-table compact = %+v, %v", res, err)
	}
	// Unknown strategy.
	fillTables(t, db, 3, 50)
	if _, err := db.MajorCompact("nope", 2, 0); err == nil {
		t.Errorf("unknown strategy accepted")
	}
}

func TestCompactionCostActualMatchesBytesShape(t *testing.T) {
	// The abstract costactual (keys) and the measured disk I/O (bytes)
	// must be strongly correlated: that is the premise of the paper's cost
	// model (Section 5.4). With fixed-size values, bytes ≈ costactual ×
	// entry size + framing overhead, so the ratio across two runs of
	// different sizes should be within a loose band.
	db := openTestDB(t, Options{})
	fillTables(t, db, 4, 100)
	resSmall, err := db.MajorCompact("SI", 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	db2 := openTestDB(t, Options{})
	fillTables(t, db2, 8, 400)
	resBig, err := db2.MajorCompact("SI", 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	rSmall := float64(resSmall.TotalIO()) / float64(resSmall.CostActual)
	rBig := float64(resBig.TotalIO()) / float64(resBig.CostActual)
	if rSmall <= 0 || rBig <= 0 {
		t.Fatalf("degenerate ratios %v %v", rSmall, rBig)
	}
	if ratio := rSmall / rBig; ratio < 0.5 || ratio > 2 {
		t.Errorf("bytes-per-key ratio drifted: small=%.2f big=%.2f", rSmall, rBig)
	}
}

func TestReopenAfterCompaction(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := fillTables(t, db, 4, 100)
	if _, err := db.MajorCompact("BT(I)", 2, 0); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for k, v := range want {
		got, err := db2.Get([]byte(k))
		if err != nil || string(got) != v {
			t.Fatalf("Get(%s) after reopen = %q, %v", k, got, err)
		}
	}
}

func TestCorruptManifestRejected(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("garbage line\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Errorf("corrupt manifest accepted")
	}
}

func TestManifestBadFields(t *testing.T) {
	for _, content := range []string{
		"next-file notanumber\n",
		"next-seq -3\n",
	} {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, manifestName), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir, Options{}); err == nil {
			t.Errorf("manifest %q accepted", content)
		}
	}
}

func TestOpenMissingTableFile(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	infos := db.TableInfos()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Delete the sstable the manifest references: Open must fail loudly
	// rather than silently dropping data.
	if err := os.Remove(filepath.Join(dir, infos[0].Name)); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Errorf("Open succeeded with a missing sstable")
	}
}

func TestOpenCorruptTableFile(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	infos := db.TableInfos()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, infos[0].Name)
	if err := os.WriteFile(path, []byte("not an sstable"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Errorf("Open succeeded with a corrupt sstable")
	}
}

func TestBlockCacheServesRepeatedReads(t *testing.T) {
	db := openTestDB(t, Options{BlockCacheBytes: 1 << 20})
	for i := 0; i < 2000; i++ {
		if err := db.Put([]byte(fmt.Sprintf("key-%06d", i)), bytes.Repeat([]byte("v"), 40)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		for i := 0; i < 2000; i += 50 {
			if _, err := db.Get([]byte(fmt.Sprintf("key-%06d", i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := db.Stats()
	if st.BlockCacheHits == 0 {
		t.Errorf("no cache hits recorded: %+v", st)
	}
	if st.BlockCacheHits < st.BlockCacheMisses {
		t.Errorf("hit rate below 50%% on a repeating read pattern: %d hits / %d misses",
			st.BlockCacheHits, st.BlockCacheMisses)
	}
}

func TestBlockCacheDisabled(t *testing.T) {
	db := openTestDB(t, Options{BlockCacheBytes: -1})
	if err := db.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := db.Get([]byte("k")); err != nil {
			t.Fatal(err)
		}
	}
	st := db.Stats()
	if st.BlockCacheHits != 0 || st.BlockCacheMisses != 0 {
		t.Errorf("disabled cache recorded traffic: %+v", st)
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	db := openTestDB(t, Options{MemtableBytes: 1 << 14})
	done := make(chan error, 4)
	for w := 0; w < 2; w++ {
		go func(w int) {
			for i := 0; i < 500; i++ {
				if err := db.Put([]byte(fmt.Sprintf("w%d-%04d", w, i)), []byte("v")); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(w)
	}
	for r := 0; r < 2; r++ {
		go func() {
			for i := 0; i < 500; i++ {
				if _, err := db.Get([]byte(fmt.Sprintf("w0-%04d", i))); err != nil && err != ErrNotFound {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
