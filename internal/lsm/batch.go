// Group-commit write path. Writers — Put, Delete and explicit WriteBatch
// commits — do not take the store lock for their I/O. Each writer enqueues
// its batch on a commit queue and parks; the first waiter becomes the
// leader, drains a prefix of the queue into one group, assigns the group a
// contiguous sequence range, appends the whole group to the WAL as a single
// atomic frame with at most one fsync, applies it to the memtable under a
// short store-lock section, runs post-apply maintenance (flush, auto minor
// compaction, backpressure), and finally wakes its followers and hands
// leadership to the next waiter. The fsync cost therefore amortizes over
// the whole group, and the store lock is never held across a syscall.
package lsm

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/wal"
)

// WriteBatch accumulates Put and Delete operations for a single atomic
// commit via DB.Write: all of the batch's operations become visible
// together, occupy one contiguous sequence range, and are recovered
// all-or-nothing after a crash. A batch buffers its keys and values in one
// internal arena, so it can be reused via Reset without reallocating.
// A WriteBatch is not safe for concurrent use.
type WriteBatch struct {
	data []byte // arena: keys and values, back to back
	ops  []batchOp
}

type batchOp struct {
	del            bool
	keyOff, keyLen int
	valOff, valLen int
}

// Put records a write of key → value.
func (b *WriteBatch) Put(key, value []byte) {
	op := batchOp{keyOff: len(b.data), keyLen: len(key)}
	b.data = append(b.data, key...)
	op.valOff, op.valLen = len(b.data), len(value)
	b.data = append(b.data, value...)
	b.ops = append(b.ops, op)
}

// Delete records a tombstone for key.
func (b *WriteBatch) Delete(key []byte) {
	op := batchOp{del: true, keyOff: len(b.data), keyLen: len(key)}
	b.data = append(b.data, key...)
	b.ops = append(b.ops, op)
}

// Len returns the number of operations in the batch.
func (b *WriteBatch) Len() int { return len(b.ops) }

// Op returns operation i: its key, its value (nil for deletes) and whether
// it is a delete. The returned slices alias the batch arena and stay valid
// until Reset; callers that split batches (the sharded store routing each
// operation to its owning shard) copy through a fresh batch's Put/Delete.
func (b *WriteBatch) Op(i int) (key, value []byte, del bool) {
	op := b.ops[i]
	key = b.data[op.keyOff : op.keyOff+op.keyLen]
	if op.del {
		return key, nil, true
	}
	return key, b.data[op.valOff : op.valOff+op.valLen], false
}

// Empty reports whether the batch holds no operations.
func (b *WriteBatch) Empty() bool { return len(b.ops) == 0 }

// Reset clears the batch for reuse, retaining its arena capacity.
func (b *WriteBatch) Reset() {
	b.data = b.data[:0]
	b.ops = b.ops[:0]
}

// SizeBytes approximates the batch's WAL footprint (keys, values and
// per-operation overhead); group sizing and the MaxBatchBytes limit are
// both expressed in this measure.
func (b *WriteBatch) SizeBytes() int { return len(b.data) + 8*len(b.ops) }

// record materializes operation i as a WAL record at sequence seq. The
// returned slices alias the batch arena and stay valid until Reset.
func (b *WriteBatch) record(i int, seq uint64) wal.Record {
	op := b.ops[i]
	r := wal.Record{Op: wal.OpPut, Seq: seq, Key: b.data[op.keyOff : op.keyOff+op.keyLen]}
	if op.del {
		r.Op = wal.OpDelete
	} else {
		r.Value = b.data[op.valOff : op.valOff+op.valLen]
	}
	return r
}

// commitReq is one writer parked in the commit queue. wake receives true
// when the writer must take over as leader, false when its group committed
// (err then holds the outcome). ctx is the writer's context: a leader
// consults its own request's ctx at its cancellation points, and a parked
// writer whose ctx expires abandons the queue if its request is not yet
// claimed by a group.
type commitReq struct {
	batch *WriteBatch
	sync  bool
	ctx   context.Context
	err   error
	wake  chan bool
	// claimed marks a request collected into a leader's commit group; a
	// claimed request can no longer abandon the queue — its batch is about
	// to be (or being) written. Guarded by DB.commitMu.
	claimed bool
}

// maxGroupBytes caps how much batch data one commit group absorbs. It
// bounds group latency and keeps the group frame far below the WAL's frame
// limit; a single oversized batch still commits alone as its own group.
const maxGroupBytes = 1 << 20

// MaxBatchBytes bounds a single WriteBatch (keys + values + per-op
// overhead, as estimated by SizeBytes). The cap keeps any one batch's WAL
// frame far below wal.MaxFrameBytes — so a batch that commits alone as its
// own group always fits one atomic frame — and gives the network layer a
// boundary it can enforce before shipping a batch to a server. Write
// returns ErrBatchTooLarge beyond it.
const MaxBatchBytes = 16 << 20

// writeBatchPool recycles the single-op batches behind Put and Delete so
// the hot path allocates only the commit request.
var writeBatchPool = sync.Pool{New: func() any { return new(WriteBatch) }}

// Write commits the batch atomically: every operation, or none, survives
// a crash, and scans and snapshots observe the batch as a unit (their
// memtable materialization is ordered against the apply). Point reads are
// atomic per key — a Get concurrent with the apply may observe an earlier
// operation's effect before a later operation of the same batch has
// landed, though never a torn value and never effects out of the batch's
// internal order. Honors Options.SyncWAL. The batch may be reused (after
// Reset) once Write returns. Concurrent Write calls are group-committed:
// one WAL append and at most one fsync per group, not per batch.
func (db *DB) Write(b *WriteBatch) error {
	return db.WriteContext(context.Background(), b)
}

// WriteContext is Write honoring ctx. Cancellation is checked at every
// point where the pipeline can hold a writer: before enqueueing, while
// parked in the commit queue (an unclaimed request is removed and its slot
// released, so a cancelled writer never blocks the pipeline), when taking
// over group leadership before any WAL I/O has started, and while blocked
// in write-stall backpressure. Once a leader has claimed the batch into a
// group the commit is past the point of no return: the write goes through
// and any later expiry is ignored — except in the stall wait, where
// ErrStalled (wrapping the context error) reports that the already-durable
// write abandoned only its backpressure delay.
func (db *DB) WriteContext(ctx context.Context, b *WriteBatch) error {
	if b == nil || b.Len() == 0 {
		return nil
	}
	for _, op := range b.ops {
		if op.keyLen == 0 {
			return fmt.Errorf("lsm: empty key")
		}
	}
	if b.SizeBytes() > MaxBatchBytes {
		return fmt.Errorf("%w: %d bytes > %d", ErrBatchTooLarge, b.SizeBytes(), MaxBatchBytes)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	load := db.loadGauge()
	load.Add(1)
	defer load.Add(-1)
	req := &commitReq{batch: b, sync: db.opts.SyncWAL, ctx: ctx, wake: make(chan bool, 1)}
	db.commitMu.Lock()
	db.commitQueue = append(db.commitQueue, req)
	leader := len(db.commitQueue) == 1
	db.commitMu.Unlock()
	if !leader {
		// Park until the group containing this batch commits, or until
		// leadership arrives because the previous leader finished first.
		select {
		case lead := <-req.wake:
			if !lead {
				return req.err
			}
		case <-ctx.Done():
			if db.abandonReq(req) {
				return ctx.Err()
			}
			// Too late to abandon: a leader has already claimed this batch
			// into a group, or leadership is being handed to us. Fall back
			// to the normal wake; the commit proceeds regardless.
			if lead := <-req.wake; !lead {
				return req.err
			}
		}
	}
	db.leadGroup(req)
	return req.err
}

// abandonReq removes a parked, unclaimed request from the commit queue,
// reporting whether it succeeded. The queue head cannot abandon: it is the
// active leader or about to be woken as one, so leadGroup's own entry check
// handles its cancellation instead.
func (db *DB) abandonReq(req *commitReq) bool {
	db.commitMu.Lock()
	defer db.commitMu.Unlock()
	if req.claimed {
		return false
	}
	for i, r := range db.commitQueue {
		if r == req {
			if i == 0 {
				return false
			}
			db.commitQueue = append(db.commitQueue[:i], db.commitQueue[i+1:]...)
			return true
		}
	}
	return false
}

// loadGauge returns the writers-in-flight gauge the commit pipeline
// consults: the store-wide shared gauge when configured, this DB's own
// counter otherwise.
func (db *DB) loadGauge() *atomic.Int32 {
	if db.opts.WriteLoad != nil {
		return db.opts.WriteLoad
	}
	return &db.writersInFlight
}

// leadGroup runs one commit group with head (the current queue front) as
// leader, then hands leadership to the next queued writer, if any.
func (db *DB) leadGroup(head *commitReq) {
	// Last cancellation point before I/O: a leader whose context expired
	// drops its own batch and passes leadership straight on, so a cancelled
	// writer that inherited the lead releases the pipeline slot instead of
	// committing a write its caller no longer wants.
	if err := head.ctx.Err(); err != nil {
		db.commitMu.Lock()
		// Head is necessarily queue[0]: leadership only arrives that way.
		db.commitQueue = append(db.commitQueue[:0], db.commitQueue[1:]...)
		var next *commitReq
		if len(db.commitQueue) > 0 {
			next = db.commitQueue[0]
		}
		db.commitMu.Unlock()
		if next != nil {
			next.wake <- true
		}
		head.err = err
		return
	}

	// A leader with no followers — but with other writers in flight —
	// yields once before forming its group: writers that are runnable but
	// not yet enqueued get a scheduling slot to join, which matters most
	// when GOMAXPROCS is low — a leader blocked in fsync can otherwise
	// hold the only P, so no one joins groups and amortization never kicks
	// in. The in-flight check keeps a lone writer from donating its
	// timeslice to unrelated goroutines (a yield can cost a full scheduler
	// quantum when readers are CPU-bound). The gauge is shared across
	// shards when Options.WriteLoad is set, so a shard's solo leader still
	// yields while sibling shards' writers are in flight — those writers
	// finish their commits and come back around to this shard.
	if db.loadGauge().Load() > 1 {
		db.commitMu.Lock()
		solo := len(db.commitQueue) == 1
		db.commitMu.Unlock()
		if solo {
			runtime.Gosched()
		}
	}

	// Collect the group: a prefix of the queue. A sync leader absorbs
	// non-sync followers (they get durability for free); a non-sync leader
	// stops before the first sync request so a non-sync group never pays an
	// fsync it didn't ask for — the sync writer leads the next group.
	db.commitMu.Lock()
	group := db.commitQueue[:1:1]
	head.claimed = true
	size := head.batch.SizeBytes()
	for _, r := range db.commitQueue[1:] {
		if r.sync && !head.sync {
			break
		}
		if sz := r.batch.SizeBytes(); size+sz <= maxGroupBytes {
			r.claimed = true
			group = append(group, r)
			size += sz
		} else {
			break
		}
	}
	db.commitMu.Unlock()

	var stall bool
	err := db.commitGroup(group, head.sync, &stall)
	for _, r := range group {
		r.err = err
	}
	if stall {
		// Backpressure runs outside the pipeline lock so the background
		// compactor can flush and swap while this group's writers wait. The
		// leader stalls on behalf of the whole group under its own context;
		// if that context expires mid-stall only the leader learns of the
		// abandoned delay — its followers' writes committed normally.
		db.mu.Lock()
		stallErr := db.maybeStallLocked(head.ctx)
		db.mu.Unlock()
		if stallErr != nil && head.err == nil {
			head.err = stallErr
		}
	}

	// Pop the group and pass leadership on before releasing followers, so
	// the next group's I/O can start immediately.
	db.commitMu.Lock()
	db.commitQueue = append(db.commitQueue[:0], db.commitQueue[len(group):]...)
	var next *commitReq
	if len(db.commitQueue) > 0 {
		next = db.commitQueue[0]
	}
	db.commitMu.Unlock()
	if next != nil {
		next.wake <- true
	}
	for _, r := range group[1:] {
		r.wake <- false
	}
}

// commitGroup performs one group commit: sequence assignment under the
// store lock, WAL append + optional fsync under only the pipeline lock,
// memtable apply and maintenance back under the store lock. On return the
// group is durable (if sync) and visible. Sets *stall when the commit
// flushed the memtable and backpressure should be evaluated.
func (db *DB) commitGroup(group []*commitReq, doSync bool, stall *bool) error {
	db.pipeMu.Lock()
	defer db.pipeMu.Unlock()

	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return ErrClosed
	}
	if err := db.readOnlyErrLocked(); err != nil {
		db.mu.Unlock()
		return err
	}
	n := 0
	for _, r := range group {
		n += r.batch.Len()
	}
	seq := db.man.nextSeq
	db.man.nextSeq += uint64(n)
	log := db.log // stable while pipeMu is held: WAL swaps take pipeMu
	db.mu.Unlock()

	// Encode and write the whole group as one WAL frame — one buffer, one
	// write syscall, at most one fsync — while readers and new enqueuers
	// proceed. The scratch record slice is reused across groups.
	recs := db.walRecs[:0]
	s := seq
	for _, r := range group {
		for i := 0; i < r.batch.Len(); i++ {
			recs = append(recs, r.batch.record(i, s))
			s++
		}
	}
	db.walRecs = recs[:0]
	if err := log.AppendBatch(recs); err != nil {
		// AppendBatch rolls the log back to its pre-call offset on failure.
		// If that rollback itself failed the log is sticky-poisoned
		// (log.Err() != nil): records may linger durably past the logical
		// end, so the whole DB degrades to read-only. A clean rollback
		// leaves the log valid and the write retryable.
		if werr := log.Err(); werr != nil {
			db.mu.Lock()
			db.failDurabilityLocked(werr)
			db.mu.Unlock()
		}
		return err
	}
	if doSync {
		if err := log.Sync(); err != nil {
			// The records were acked by the kernel but may not have reached
			// stable media, and after a failed fsync the page cache state is
			// unknowable (dirty pages may have been dropped). No future sync
			// can retroactively make this group durable, so never ack it and
			// never ack anything after it: poison durability permanently.
			db.mu.Lock()
			db.failDurabilityLocked(err)
			db.mu.Unlock()
			return err
		}
	}

	// Apply under the store lock plus applyMu's write side: scans and
	// snapshots materialize the memtable under applyMu's read side, so
	// they observe the group atomically, while point reads run lock-free
	// against the skiplist (per-key atomicity is enough for a single-key
	// probe). The leader also runs the write path's maintenance — flush,
	// auto minor compaction, background trigger — on behalf of the whole
	// group.
	db.mu.Lock()
	defer db.mu.Unlock()
	db.applyMu.Lock()
	for _, rec := range recs {
		if rec.Op == wal.OpDelete {
			db.mem.Delete(rec.Key, rec.Seq)
		} else {
			db.mem.Put(rec.Key, rec.Value, rec.Seq)
		}
	}
	db.applyMu.Unlock()
	db.groupCommits++
	db.groupedWrites += uint64(n)
	if doSync {
		db.walSyncs++
	}
	if db.closed {
		// Close raced in after the sequence check. The group is durable in
		// the WAL and replays on reopen; skip maintenance on a closing DB.
		return nil
	}
	if db.mem.SizeBytes() >= db.opts.MemtableBytes {
		if err := db.flushLocked(); err != nil {
			return err
		}
		if db.opts.AutoCompact != nil {
			for {
				_, ran, err := db.minorCompactLocked(db.opts.AutoCompact)
				if err != nil {
					return err
				}
				if !ran {
					break
				}
				db.minorCompactions++
			}
		}
		*stall = db.opts.Background != nil
	}
	return nil
}
