package lsm

import (
	"context"
	"errors"
	"testing"
	"time"
)

// wedgeCompactor returns Options that wedge the background compactor
// between merge and swap (so write-stall backpressure, once entered, does
// not clear) plus the release function. MemtableBytes 1 makes every write
// flush a table, so the stall threshold is reached deterministically.
func wedgeCompactorOptions() (Options, func()) {
	block := make(chan struct{})
	var once bool
	release := func() {
		if !once {
			once = true
			close(block)
		}
	}
	opts := Options{
		MemtableBytes: 1,
		Background:    &BackgroundConfig{Trigger: 2, Stall: 3, Strategy: "BT(I)", K: 2},
		HookBeforeSwap: func() error {
			<-block
			return nil
		},
	}
	return opts, release
}

// waitForStall blocks until the DB reports at least one write stall, or
// fails the test after a timeout.
func waitForStall(t *testing.T, db *DB) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if db.Stats().WriteStalls >= 1 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("no write stall observed")
}

// TestWriteContextCancelDuringStall wedges the compactor, drives the table
// count to the stall threshold, and cancels the stalled writer's context:
// the write must return promptly with an error that is both ErrStalled and
// context.Canceled (the write itself is durable; only the backpressure
// delay was abandoned).
func TestWriteContextCancelDuringStall(t *testing.T) {
	opts, release := wedgeCompactorOptions()
	defer release()
	db, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}

	// Two writes cut two tables, reaching the compaction trigger; the
	// compactor wedges in the hook. The third write cuts the third table
	// and stalls.
	if err := db.Put([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("b"), []byte("2")); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- db.PutContext(ctx, []byte("c"), []byte("3")) }()
	waitForStall(t, db)
	cancel()

	select {
	case err := <-errc:
		if !errors.Is(err, ErrStalled) {
			t.Errorf("stalled write returned %v, want ErrStalled", err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("stalled write returned %v, want context.Canceled wrapped", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled stalled write did not return")
	}

	// The write is durable despite the error: release the compactor and
	// confirm the key is there.
	release()
	if v, err := db.Get([]byte("c")); err != nil || string(v) != "3" {
		t.Fatalf("Get(c) after abandoned stall = %q, %v", v, err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWriteContextCancelParkedInQueue blocks the pipeline (leader wedged
// in write-stall backpressure) and parks a second writer in the commit
// queue; cancelling the parked writer must release it promptly with
// context.Canceled, without committing its batch.
func TestWriteContextCancelParkedInQueue(t *testing.T) {
	opts, release := wedgeCompactorOptions()
	defer release()
	db, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}

	if err := db.Put([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("b"), []byte("2")); err != nil {
		t.Fatal(err)
	}
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderErr := make(chan error, 1)
	go func() { leaderErr <- db.PutContext(leaderCtx, []byte("c"), []byte("3")) }()
	waitForStall(t, db)

	// The leader is stalled and has not popped the queue; this writer
	// parks behind it.
	parkedCtx, cancelParked := context.WithCancel(context.Background())
	parkedErr := make(chan error, 1)
	go func() { parkedErr <- db.PutContext(parkedCtx, []byte("d"), []byte("4")) }()
	deadline := time.Now().Add(10 * time.Second)
	for {
		db.commitMu.Lock()
		parked := len(db.commitQueue) >= 2
		db.commitMu.Unlock()
		if parked {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("second writer never parked in the commit queue")
		}
		time.Sleep(time.Millisecond)
	}

	cancelParked()
	select {
	case err := <-parkedErr:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("parked write returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled parked write did not return while pipeline blocked")
	}
	// Its slot is released: the queue is back to the leader alone.
	db.commitMu.Lock()
	qlen := len(db.commitQueue)
	db.commitMu.Unlock()
	if qlen != 1 {
		t.Errorf("commit queue length = %d after abandonment, want 1", qlen)
	}

	cancelLeader()
	<-leaderErr
	release()
	// The abandoned write must not have been committed.
	if _, err := db.Get([]byte("d")); !errors.Is(err, ErrNotFound) {
		t.Errorf("abandoned write visible: Get(d) err = %v, want ErrNotFound", err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWriteContextPreCancelled: an already-expired context fails fast
// without touching the pipeline or the store.
func TestWriteContextPreCancelled(t *testing.T) {
	db, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := db.PutContext(ctx, []byte("k"), []byte("v")); !errors.Is(err, context.Canceled) {
		t.Errorf("PutContext(cancelled) = %v, want context.Canceled", err)
	}
	if _, err := db.GetContext(ctx, []byte("k")); !errors.Is(err, context.Canceled) {
		t.Errorf("GetContext(cancelled) = %v, want context.Canceled", err)
	}
	if err := db.FlushContext(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("FlushContext(cancelled) = %v, want context.Canceled", err)
	}
	if _, err := db.Get([]byte("k")); !errors.Is(err, ErrNotFound) {
		t.Errorf("cancelled write leaked into the store: %v", err)
	}
}

// TestRangeContextCancelled: a scan loop observes cancellation mid-drain.
func TestRangeContextCancelled(t *testing.T) {
	db, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 2000; i++ {
		if err := db.Put([]byte{byte(i >> 8), byte(i)}, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	seen := 0
	err = db.RangeContext(ctx, nil, nil, func(k, v []byte) error {
		seen++
		if seen == 100 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("RangeContext = %v after mid-scan cancel, want context.Canceled", err)
	}
	if seen >= 2000 {
		t.Errorf("scan drained all %d entries despite cancellation", seen)
	}
}

// TestWriteBatchTooLarge: an over-cap batch is rejected up front with the
// typed sentinel on both the DB and its batch path.
func TestWriteBatchTooLarge(t *testing.T) {
	db, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	var b WriteBatch
	b.Put([]byte("k"), make([]byte, MaxBatchBytes+1))
	if err := db.Write(&b); !errors.Is(err, ErrBatchTooLarge) {
		t.Errorf("oversized Write = %v, want ErrBatchTooLarge", err)
	}
	if _, err := db.Get([]byte("k")); !errors.Is(err, ErrNotFound) {
		t.Errorf("rejected batch leaked: %v", err)
	}
}

// TestSnapshotIsolation: a snapshot's view survives writes, deletes,
// flushes and a major compaction that happen after acquisition.
func TestSnapshotIsolation(t *testing.T) {
	db, err := Open(t.TempDir(), Options{MemtableBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 100; i++ {
		if err := db.Put([]byte{byte(i)}, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte{200}, []byte("memtable")); err != nil {
		t.Fatal(err)
	}

	snap, err := db.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Release()

	// Mutate heavily after the snapshot.
	if err := db.Delete([]byte{10}); err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte{200}, []byte("changed")); err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte{201}, []byte("new")); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.MajorCompact("BT(I)", 2, 1); err != nil {
		t.Fatal(err)
	}

	if v, err := snap.Get([]byte{10}); err != nil || string(v) != "\n" {
		t.Errorf("snapshot Get(10) = %q, %v; want the pre-delete value", v, err)
	}
	if v, err := snap.Get([]byte{200}); err != nil || string(v) != "memtable" {
		t.Errorf("snapshot Get(200) = %q, %v; want %q", v, err, "memtable")
	}
	if _, err := snap.Get([]byte{201}); !errors.Is(err, ErrNotFound) {
		t.Errorf("snapshot sees post-snapshot key: %v", err)
	}
	it, release, err := snap.NewIterator(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for ; it.Valid(); it.Next() {
		n++
	}
	release()
	if n != 101 {
		t.Errorf("snapshot iterator saw %d entries, want 101", n)
	}

	snap.Release()
	if _, err := snap.Get([]byte{10}); !errors.Is(err, ErrClosed) {
		t.Errorf("released snapshot Get = %v, want ErrClosed", err)
	}
}
