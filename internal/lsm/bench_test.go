package lsm

import (
	"bytes"
	"fmt"
	"testing"
)

func benchDB(b *testing.B, opts Options) *DB {
	b.Helper()
	db, err := Open(b.TempDir(), opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	return db
}

func BenchmarkPut(b *testing.B) {
	db := benchDB(b, Options{})
	val := bytes.Repeat([]byte("v"), 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Put([]byte(fmt.Sprintf("key-%012d", i)), val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGetMixed(b *testing.B) {
	db := benchDB(b, Options{MemtableBytes: 256 << 10})
	const n = 20000
	val := bytes.Repeat([]byte("v"), 100)
	for i := 0; i < n; i++ {
		if err := db.Put([]byte(fmt.Sprintf("key-%012d", i)), val); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Get([]byte(fmt.Sprintf("key-%012d", i%n))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMajorCompact compares real on-disk compaction across
// strategies: the LSM-engine analogue of Figure 7.
func BenchmarkMajorCompact(b *testing.B) {
	for _, strat := range []string{"SI", "SO", "BT(I)", "RANDOM"} {
		b.Run("strategy="+strat, func(b *testing.B) {
			val := bytes.Repeat([]byte("v"), 64)
			var lastIO uint64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				db := benchDB(b, Options{})
				for tab := 0; tab < 8; tab++ {
					for j := 0; j < 500; j++ {
						key := fmt.Sprintf("key-%05d", (tab*331+j)%2500)
						if err := db.Put([]byte(key), val); err != nil {
							b.Fatal(err)
						}
					}
					if err := db.Flush(); err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()
				res, err := db.MajorCompact(strat, 2, int64(i))
				if err != nil {
					b.Fatal(err)
				}
				lastIO = res.TotalIO()
			}
			b.ReportMetric(float64(lastIO), "io_bytes")
		})
	}
}
