package lsm

import (
	"bytes"
	"fmt"
	"sort"
	"sync/atomic"
	"testing"
	"time"
)

func benchDB(b *testing.B, opts Options) *DB {
	b.Helper()
	db, err := Open(b.TempDir(), opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	return db
}

func BenchmarkPut(b *testing.B) {
	db := benchDB(b, Options{})
	val := bytes.Repeat([]byte("v"), 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Put([]byte(fmt.Sprintf("key-%012d", i)), val); err != nil {
			b.Fatal(err)
		}
	}
}

// reportGroupStats attaches the commit-pipeline shape to a write benchmark:
// how many records each group carried on average and how many fsyncs were
// paid per write (1.0 on the old one-fsync-per-record path, ~1/groupsize
// with group commit).
func reportGroupStats(b *testing.B, db *DB) {
	b.Helper()
	st := db.Stats()
	if st.GroupCommits > 0 {
		b.ReportMetric(float64(st.GroupedWrites)/float64(st.GroupCommits), "group-size")
	}
	if st.GroupedWrites > 0 {
		b.ReportMetric(float64(st.WALSyncs)/float64(st.GroupedWrites), "syncs/write")
	}
}

// BenchmarkPutParallel is the headline group-commit benchmark: concurrent
// writers (8 goroutines per proc) with the WAL fsync on or off. On the seed
// single-writer path every sync write paid its own fsync under the global
// lock; with the commit pipeline one leader fsyncs for the whole group.
//
// Run with:
//
//	go test -bench BenchmarkPutParallel -benchtime 2s -run XXX ./internal/lsm
func BenchmarkPutParallel(b *testing.B) {
	for _, sync := range []bool{false, true} {
		b.Run(fmt.Sprintf("sync=%v", sync), func(b *testing.B) {
			db := benchDB(b, Options{SyncWAL: sync, MemtableBytes: 256 << 20})
			val := bytes.Repeat([]byte("v"), 100)
			var ctr atomic.Int64
			b.SetParallelism(8) // ≥ 8 concurrent writers per proc
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				var key [16]byte
				for pb.Next() {
					i := ctr.Add(1)
					n := copy(key[:], "key-")
					for d := 11; d >= 0; d-- {
						key[n+d] = byte('0' + i%10)
						i /= 10
					}
					if err := db.Put(key[:], val); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "writes/sec")
			reportGroupStats(b, db)
		})
	}
}

// BenchmarkWriteBatch commits multi-record batches through DB.Write: the
// explicit-batch face of the same pipeline.
func BenchmarkWriteBatch(b *testing.B) {
	for _, size := range []int{16, 128} {
		b.Run(fmt.Sprintf("batch=%d", size), func(b *testing.B) {
			db := benchDB(b, Options{MemtableBytes: 256 << 20})
			val := bytes.Repeat([]byte("v"), 100)
			var batch WriteBatch
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				batch.Reset()
				for j := 0; j < size; j++ {
					batch.Put([]byte(fmt.Sprintf("key-%07d-%03d", i, j)), val)
				}
				if err := db.Write(&batch); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N*size)/b.Elapsed().Seconds(), "writes/sec")
			reportGroupStats(b, db)
		})
	}
}

func BenchmarkGetMixed(b *testing.B) {
	db := benchDB(b, Options{MemtableBytes: 256 << 10})
	const n = 20000
	val := bytes.Repeat([]byte("v"), 100)
	for i := 0; i < n; i++ {
		if err := db.Put([]byte(fmt.Sprintf("key-%012d", i)), val); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Get([]byte(fmt.Sprintf("key-%012d", i%n))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGetDuringMajorCompaction measures read availability while a
// major compaction is running — the motivating number for the non-blocking
// design. For each iteration it builds a store with overlapping sstables,
// starts a major compaction in another goroutine, and samples Get latency
// until the compaction finishes. The blocking mode holds the store lock
// for the whole merge, so its p99 approaches the compaction duration; the
// background mode's p99 stays at ordinary read latency.
//
// Run with:
//
//	go test -bench BenchmarkGetDuringMajorCompaction -benchtime 3x ./internal/lsm
func BenchmarkGetDuringMajorCompaction(b *testing.B) {
	const (
		tables      = 10
		keysPer     = 4000
		keyspace    = 12000
		valueBytes  = 256
		sampleEvery = 50 * time.Microsecond
	)
	for _, mode := range []string{"blocking", "background"} {
		b.Run("mode="+mode, func(b *testing.B) {
			var all []time.Duration
			var compactTotal time.Duration
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				db := benchDB(b, Options{})
				val := bytes.Repeat([]byte("v"), valueBytes)
				for tab := 0; tab < tables; tab++ {
					for j := 0; j < keysPer; j++ {
						key := fmt.Sprintf("key-%06d", (tab*2711+j*7)%keyspace)
						if err := db.Put([]byte(key), val); err != nil {
							b.Fatal(err)
						}
					}
					if err := db.Flush(); err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()

				done := make(chan error, 1)
				go func() {
					var err error
					if mode == "blocking" {
						_, err = db.MajorCompactBlocking("BT(I)", 4, int64(i))
					} else {
						_, err = db.MajorCompact("BT(I)", 4, int64(i))
					}
					done <- err
				}()

				compactStart := time.Now()
				sampling := true
				for sampling {
					select {
					case err := <-done:
						if err != nil {
							b.Fatal(err)
						}
						sampling = false
					default:
						key := fmt.Sprintf("key-%06d", len(all)*131%keyspace)
						t0 := time.Now()
						if _, err := db.Get([]byte(key)); err != nil && err != ErrNotFound {
							b.Fatal(err)
						}
						all = append(all, time.Since(t0))
						time.Sleep(sampleEvery)
					}
				}
				compactTotal += time.Since(compactStart)
			}
			if len(all) == 0 {
				b.Fatal("no Get completed while compaction ran: reads were fully blocked")
			}
			sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
			p50 := all[len(all)*50/100]
			p99 := all[min(len(all)*99/100, len(all)-1)]
			b.ReportMetric(float64(p50.Nanoseconds()), "get-p50-ns")
			b.ReportMetric(float64(p99.Nanoseconds()), "get-p99-ns")
			b.ReportMetric(float64(len(all))/compactTotal.Seconds(), "gets/sec-during-compaction")
		})
	}
}

// BenchmarkGetDuringFlush measures point-read tail latency while memtable
// flushes churn — the read-availability number for the lock-free read
// path. Each iteration fills a multi-megabyte memtable, kicks an explicit
// Flush on another goroutine, and samples Get latency until the flush
// completes. A read path that serves Gets under the store lock stalls
// every sample behind the flush's sstable write, so its p99 approaches the
// flush duration; a read path that never touches the store lock keeps p99
// at ordinary read latency.
//
// Run with:
//
//	go test -bench BenchmarkGetDuringFlush -benchtime 5x ./internal/lsm
func BenchmarkGetDuringFlush(b *testing.B) {
	const (
		keyspace   = 30000
		valueBytes = 512
	)
	var all []time.Duration
	var flushTotal time.Duration
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		db := benchDB(b, Options{MemtableBytes: 256 << 20})
		val := bytes.Repeat([]byte("v"), valueBytes)
		for j := 0; j < keyspace; j++ {
			if err := db.Put([]byte(fmt.Sprintf("key-%06d", j)), val); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()

		done := make(chan error, 1)
		go func() { done <- db.Flush() }()
		flushStart := time.Now()
		for sampling := true; sampling; {
			select {
			case err := <-done:
				if err != nil {
					b.Fatal(err)
				}
				sampling = false
			default:
				key := fmt.Sprintf("key-%06d", len(all)*131%keyspace)
				t0 := time.Now()
				if _, err := db.Get([]byte(key)); err != nil {
					b.Fatal(err)
				}
				all = append(all, time.Since(t0))
			}
		}
		flushTotal += time.Since(flushStart)
	}
	if len(all) == 0 {
		b.Fatal("no Get completed while flushes ran: reads were fully blocked")
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	p50 := all[len(all)*50/100]
	p99 := all[min(len(all)*99/100, len(all)-1)]
	b.ReportMetric(float64(p50.Nanoseconds()), "get-p50-ns")
	b.ReportMetric(float64(p99.Nanoseconds()), "get-p99-ns")
	// The worst sample is the one that was in flight when the flush took
	// the store lock: with a lock-free read path it is an ordinary read,
	// with a locked one it absorbs the whole flush duration.
	b.ReportMetric(float64(all[len(all)-1].Nanoseconds()), "get-pmax-ns")
	b.ReportMetric(float64(len(all))/flushTotal.Seconds(), "gets/sec-during-flush")
}

// BenchmarkMajorCompact compares real on-disk compaction across
// strategies: the LSM-engine analogue of Figure 7.
func BenchmarkMajorCompact(b *testing.B) {
	for _, strat := range []string{"SI", "SO", "BT(I)", "RANDOM"} {
		b.Run("strategy="+strat, func(b *testing.B) {
			val := bytes.Repeat([]byte("v"), 64)
			var lastIO uint64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				db := benchDB(b, Options{})
				for tab := 0; tab < 8; tab++ {
					for j := 0; j < 500; j++ {
						key := fmt.Sprintf("key-%05d", (tab*331+j)%2500)
						if err := db.Put([]byte(key), val); err != nil {
							b.Fatal(err)
						}
					}
					if err := db.Flush(); err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()
				res, err := db.MajorCompact(strat, 2, int64(i))
				if err != nil {
					b.Fatal(err)
				}
				lastIO = res.TotalIO()
			}
			b.ReportMetric(float64(lastIO), "io_bytes")
		})
	}
}

// BenchmarkGetCold compares table-format versions on the cacheless read
// path: the block cache is disabled, so every Get pays a block read,
// decode and in-block search against a flushed sstable. Version 3's
// restart-point binary search replaces version 2's full linear block walk.
//
// Run with:
//
//	go test -bench BenchmarkGetCold -run XXX ./internal/lsm
func BenchmarkGetCold(b *testing.B) {
	const n = 20000
	for _, tc := range []struct {
		name   string
		format int
	}{{"v2", 2}, {"v3", 3}} {
		b.Run(tc.name, func(b *testing.B) {
			db := benchDB(b, Options{BlockCacheBytes: -1, TableFormat: tc.format})
			keys := make([][]byte, n)
			val := bytes.Repeat([]byte("v"), 16)
			for i := 0; i < n; i++ {
				keys[i] = []byte(fmt.Sprintf("key-%012d", i))
				if err := db.Put(keys[i], val); err != nil {
					b.Fatal(err)
				}
			}
			if err := db.Flush(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Get(keys[(i*7919)%n]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
