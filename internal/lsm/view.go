// Lock-free read path. The DB publishes its (memtable, sstables) pair as
// an immutable, reference-counted readView through an atomic pointer:
// every table-set change — flush, minor compaction, major-compaction swap,
// close — builds a fresh view and installs it copy-on-write, so readers
// pin the current view with one CAS and never touch db.mu. A flush holding
// the store lock across its sstable write therefore no longer stalls a
// Get; the worst a reader pays is retrying the pin when a swap drains the
// view it loaded.
//
// On top of the view, point lookups prune with per-table key bounds (only
// tables whose [smallest, largest] range covers the key are probed) and
// terminate early by sequence order: tables are probed in descending
// max-sequence order, and once a version with sequence s is found, no
// table whose maxSeq <= s can hold a newer one, so the probe stops. The
// ordering makes the early exit sound even for tables produced by minor
// compactions of non-adjacent inputs, whose position in the table set
// carries no recency information.
package lsm

import (
	"bytes"
	"context"
	"sort"
	"sync/atomic"

	"repro/internal/memtable"
	"repro/internal/sstable"
)

// readView is one immutable read snapshot: the memtable writers are
// currently applying into (safe for lock-free point reads concurrently
// with the single applier; see internal/skiplist) and the then-live
// sstables, each retained once by the view. The publisher holds one
// reference; readers pin and unpin around their probes. Dropping the last
// reference releases the tables, which closes — and for superseded tables
// deletes — any whose live reference is already gone.
type readView struct {
	mem *memtable.Table
	// tables is the live set in table-set order (newest first), the order
	// scans and snapshots capture.
	tables []*tableHandle
	// byseq is the same set sorted by descending maxSeq: the probe order
	// that makes first-newest early exit sound.
	byseq []*tableHandle
	refs  atomic.Int64
}

// pin takes a reference, failing when the view is already drained (its
// publisher reference was dropped and every reader left) — the caller must
// reload the current view and retry.
func (v *readView) pin() bool {
	for {
		r := v.refs.Load()
		if r <= 0 {
			return false
		}
		if v.refs.CompareAndSwap(r, r+1) {
			return true
		}
	}
}

// unpin drops a reference; the last one out releases the view's tables.
func (v *readView) unpin() {
	if v.refs.Add(-1) == 0 {
		releaseTables(v.tables)
	}
}

// sortByMaxSeq returns tables ordered by descending maxSeq (stable, so
// equal-seq tables keep their set order). The probe loop relies on this
// order for its early exit.
func sortByMaxSeq(tables []*tableHandle) []*tableHandle {
	byseq := make([]*tableHandle, len(tables))
	copy(byseq, tables)
	sort.SliceStable(byseq, func(i, j int) bool { return byseq[i].maxSeq > byseq[j].maxSeq })
	return byseq
}

// installViewLocked publishes the DB's current (mem, tables) as the read
// view, retaining every table on the new view's behalf and dropping the
// previous view's publisher reference. Callers hold db.mu; the swap itself
// is what readers observe, atomically.
func (db *DB) installViewLocked() {
	tables := make([]*tableHandle, len(db.tables))
	copy(tables, db.tables)
	for _, th := range tables {
		th.retain()
	}
	v := &readView{mem: db.mem, tables: tables, byseq: sortByMaxSeq(tables)}
	v.refs.Store(1)
	if old := db.view.Swap(v); old != nil {
		old.unpin()
	}
}

// dropViewLocked retires the published view at Close: readers already
// pinned drain normally; new pins observe nil and fail with ErrClosed.
func (db *DB) dropViewLocked() {
	if old := db.view.Swap(nil); old != nil {
		old.unpin()
	}
}

// pinView pins the current read view. It returns ErrClosed once Close has
// retired the view. The retry loop covers the benign race where a
// table-set swap drops the loaded view's last reference between the load
// and the pin.
func (db *DB) pinView() (*readView, error) {
	for {
		v := db.view.Load()
		if v == nil {
			return nil, ErrClosed
		}
		if v.pin() {
			return v, nil
		}
	}
}

// get serves a point read against the pinned view: memtable first (the
// newest version of a key lives there if anywhere), then the sstables in
// descending max-sequence order with key-range pruning and early exit.
func (v *readView) get(ctx context.Context, key []byte) ([]byte, *tableHandle, error) {
	if e, ok := v.mem.Get(key); ok {
		if e.Tombstone {
			return nil, nil, ErrNotFound
		}
		// The memtable buffer is shared with future flushes: copy.
		return append([]byte(nil), e.Value...), nil, nil
	}
	return probeTables(ctx, v.byseq, key)
}

// probeTables resolves the newest version of key across tables, which
// must be sorted by descending maxSeq. Tables whose key bounds exclude
// key are pruned without touching the Bloom filter; once a version with
// sequence s is found, the probe stops at the first table whose maxSeq is
// at or below s (no later table can hold anything newer). ctx is
// re-checked between per-table probes, so a cancelled caller stops after
// at most one table's disk read. On a probe failure the offending table
// is returned alongside the error, so the DB-level caller can quarantine
// a table whose blocks fail their checksums.
func probeTables(ctx context.Context, tables []*tableHandle, key []byte) ([]byte, *tableHandle, error) {
	var (
		bestSeq   uint64
		bestVal   []byte
		bestTomb  bool
		bestOwned bool
		foundAny  bool
	)
	checkCtx := ctx.Done() != nil
	for _, th := range tables {
		if foundAny && th.maxSeq <= bestSeq {
			break
		}
		if !th.contains(key) {
			continue
		}
		if checkCtx {
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
		}
		e, owned, err := th.rd.GetEntry(key)
		if err == sstable.ErrNotFound {
			continue
		}
		if err != nil {
			return nil, th, err
		}
		if !foundAny || e.Seq > bestSeq {
			foundAny, bestSeq, bestVal, bestTomb, bestOwned = true, e.Seq, e.Value, e.Tombstone, owned
		}
	}
	if !foundAny || bestTomb {
		return nil, nil, ErrNotFound
	}
	if bestOwned {
		// The winning entry aliases a block buffer owned exclusively by
		// this probe (read outside the block cache): hand it to the caller
		// without the defensive copy.
		return bestVal, nil, nil
	}
	return append([]byte(nil), bestVal...), nil, nil
}

// contains reports whether key falls inside the table's [smallest,
// largest] bounds; empty tables contain nothing.
func (th *tableHandle) contains(key []byte) bool {
	return th.hasBounds &&
		bytes.Compare(key, th.smallest) >= 0 &&
		bytes.Compare(key, th.largest) <= 0
}

// overlaps reports whether the table's key range intersects [start, end);
// nil bounds are open. Scans prune non-overlapping tables from their merge
// set.
func (th *tableHandle) overlaps(start, end []byte) bool {
	if !th.hasBounds {
		return false
	}
	if start != nil && bytes.Compare(th.largest, start) < 0 {
		return false
	}
	if end != nil && bytes.Compare(th.smallest, end) >= 0 {
		return false
	}
	return true
}
