package lsm

import (
	"bytes"
	"context"
	"sort"
	"sync"

	"repro/internal/iterator"
)

// Snapshot is a consistent point-in-time read view of one DB: the memtable
// entries materialized at acquisition plus the then-live sstables, held
// alive by reference counts. Writes, flushes and compactions after the
// acquisition are invisible through it; superseded sstable files are not
// deleted until every snapshot reading them has been released. A Snapshot
// is safe for concurrent use and must be Released exactly once.
type Snapshot struct {
	// mem holds the memtable's entries at acquisition, sorted by
	// (key asc, seq desc) — the memtable iterator's order.
	mem []iterator.Entry
	// tables is the snapshot's table set in table-set order (newest
	// first); byseq is the same set sorted by descending maxSeq, the
	// probe order point lookups use for pruning and early exit.
	tables []*tableHandle
	byseq  []*tableHandle
	// mu makes reads atomic with Release: a reader in Get (or retaining
	// tables for a new iterator) holds the read lock, so Release cannot
	// drop the table references out from under it.
	mu       sync.RWMutex
	released bool
}

// Snapshot captures a point-in-time view of the whole key space without
// touching the store lock: the memtable is materialized against the
// pinned read view (cost proportional to its entry count); the sstables
// are retained by reference, not copied.
func (db *DB) Snapshot() (*Snapshot, error) {
	mem, tables, err := db.acquireSnapshot(nil, nil)
	if err != nil {
		return nil, err
	}
	return &Snapshot{mem: mem, tables: tables, byseq: sortByMaxSeq(tables)}, nil
}

// Release drops the snapshot's table references; the last release of a
// superseded table closes and deletes it. Further reads through the
// snapshot return ErrClosed. Release is idempotent, and a release
// concurrent with a read waits for the read to finish.
func (s *Snapshot) Release() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.released {
		s.released = true
		releaseTables(s.tables)
	}
}

// Get returns the value stored for key as of the snapshot, or ErrNotFound.
func (s *Snapshot) Get(key []byte) ([]byte, error) {
	return s.GetContext(context.Background(), key)
}

// GetContext is Get honoring ctx. The lookup mirrors DB.Get: the
// materialized memtable wins if it holds any version of the key;
// otherwise the snapshot's sstables are probed in descending max-sequence
// order with key-range pruning, early exit, and a context re-check
// between per-table probes.
func (s *Snapshot) GetContext(ctx context.Context, key []byte) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.released {
		return nil, ErrClosed
	}
	// First memtable entry with this key is the newest version (seq desc
	// within a key run).
	i := sort.Search(len(s.mem), func(i int) bool {
		return bytes.Compare(s.mem[i].Key, key) >= 0
	})
	if i < len(s.mem) && bytes.Equal(s.mem[i].Key, key) {
		e := s.mem[i]
		if e.Tombstone {
			return nil, ErrNotFound
		}
		return append([]byte(nil), e.Value...), nil
	}
	// The offending table of a failed probe is dropped here: a snapshot
	// has no DB to quarantine through, and its caller still gets the
	// typed corruption error.
	val, _, err := probeTables(ctx, s.byseq, key)
	return val, err
}

// NewIterator returns an iterator over the snapshot's live entries with
// start <= key < end (nil bounds are open), with deleted keys hidden, plus
// a release function the caller must invoke when done. The iterator takes
// its own table references, so it remains valid even if the snapshot is
// released while it is still draining. Tables whose key range falls
// outside the bounds are pruned from the merge set.
func (s *Snapshot) NewIterator(start, end []byte) (iterator.Iterator, func(), error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.released {
		return nil, nil, ErrClosed
	}
	mem := s.mem
	if start != nil {
		i := sort.Search(len(mem), func(i int) bool {
			return bytes.Compare(mem[i].Key, start) >= 0
		})
		mem = mem[i:]
	}
	tables := make([]*tableHandle, 0, len(s.tables))
	for _, th := range s.tables {
		if start == nil && end == nil || th.overlaps(start, end) {
			tables = append(tables, th)
		}
	}
	for _, th := range tables {
		th.retain()
	}
	children := make([]iterator.Iterator, 0, len(tables)+1)
	children = append(children, iterator.NewSlice(mem))
	for _, th := range tables {
		if start == nil {
			children = append(children, th.rd.Iter())
		} else {
			children = append(children, th.rd.IterFrom(start))
		}
	}
	var it iterator.Iterator = iterator.NewDedup(iterator.NewMerging(children...), true)
	if end != nil {
		it = &boundedIter{Iterator: it, end: end}
	}
	return withErrSources(it, children), func() { releaseTables(tables) }, nil
}
