// Package lsm is a single-node, embedded log-structured merge store: the
// NoSQL write path of the paper's Figure 1 made concrete. Writes land in a
// WAL and a skiplist memtable; full memtables flush to immutable sstables;
// reads consult the memtable and then sstables newest-first through Bloom
// filters; and a major compaction merges all sstables into one, scheduled
// by any strategy from the compaction package — which is exactly the
// operation whose disk I/O the paper optimizes.
package lsm

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/cache"
	"repro/internal/iterator"
	"repro/internal/memtable"
	"repro/internal/sstable"
	"repro/internal/wal"
)

// ErrNotFound reports a missing (or deleted) key.
var ErrNotFound = errors.New("lsm: key not found")

// ErrClosed reports use of a closed DB.
var ErrClosed = errors.New("lsm: database closed")

// Options tunes a DB. The zero value is usable.
type Options struct {
	// MemtableBytes is the flush threshold for the memtable (keys +
	// values). Zero selects 4 MiB.
	MemtableBytes int
	// SyncWAL forces an fsync after every write; slow but durable.
	SyncWAL bool
	// Seed makes skiplist behaviour deterministic.
	Seed int64
	// AutoCompact, when non-nil, runs minor compactions with this policy
	// after every memtable flush triggered by a write, keeping the table
	// count bounded between major compactions.
	AutoCompact CompactionPolicy
	// BlockCacheBytes bounds the shared sstable block cache. Zero selects
	// 8 MiB; negative disables caching.
	BlockCacheBytes int
	// Compression selects the sstable data-block codec for flushes and
	// compactions. The zero value stores blocks raw.
	Compression sstable.Compression
}

func (o Options) withDefaults() Options {
	if o.MemtableBytes <= 0 {
		o.MemtableBytes = 4 << 20
	}
	if o.BlockCacheBytes == 0 {
		o.BlockCacheBytes = 8 << 20
	}
	return o
}

// tableHandle pairs an open sstable reader with its file name.
type tableHandle struct {
	name string
	rd   *sstable.Reader
}

// DB is the store. All methods are safe for concurrent use.
type DB struct {
	dir  string
	opts Options

	blockCache *cache.LRU // nil when disabled

	mu     sync.RWMutex
	mem    *memtable.Table
	log    *wal.Writer
	man    *manifest
	tables []*tableHandle // newest first
	closed bool
	// flushCount and minorCompactions count maintenance work, exposed
	// through Stats.
	flushCount       int
	minorCompactions int
}

// Open opens (creating if necessary) a store in dir, replaying any WAL left
// by a previous crash into the memtable.
func Open(dir string, opts Options) (*DB, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("lsm: mkdir: %w", err)
	}
	man, err := loadManifest(dir)
	if err != nil {
		return nil, err
	}
	db := &DB{dir: dir, opts: opts, man: man, mem: memtable.New(opts.Seed)}
	if opts.BlockCacheBytes > 0 {
		db.blockCache = cache.New(opts.BlockCacheBytes)
	}
	for _, name := range man.tables {
		rd, err := db.openTable(name)
		if err != nil {
			db.closeTables()
			return nil, fmt.Errorf("lsm: open table %s: %w", name, err)
		}
		db.tables = append(db.tables, &tableHandle{name: name, rd: rd})
	}
	// Recover the WAL, if present, into the fresh memtable.
	walPath := filepath.Join(dir, "wal.log")
	if _, err := os.Stat(walPath); err == nil {
		maxSeq := man.nextSeq
		err := wal.Replay(walPath, func(r wal.Record) error {
			switch r.Op {
			case wal.OpPut:
				db.mem.Put(r.Key, r.Value, r.Seq)
			case wal.OpDelete:
				db.mem.Delete(r.Key, r.Seq)
			}
			if r.Seq >= maxSeq {
				maxSeq = r.Seq + 1
			}
			return nil
		})
		if err != nil {
			db.closeTables()
			return nil, err
		}
		man.nextSeq = maxSeq
	}
	log, err := wal.Create(walPath + ".new")
	if err != nil {
		db.closeTables()
		return nil, err
	}
	// Preserve recovered-but-unflushed data: the fresh log only matters
	// once the memtable flushes or new writes arrive; we re-log recovered
	// entries so the old log can be replaced atomically.
	for it := db.mem.Iter(); it.Valid(); it.Next() {
		e := it.Entry()
		rec := wal.Record{Op: wal.OpPut, Seq: e.Seq, Key: e.Key, Value: e.Value}
		if e.Tombstone {
			rec = wal.Record{Op: wal.OpDelete, Seq: e.Seq, Key: e.Key}
		}
		if err := log.Append(rec); err != nil {
			log.Close()
			db.closeTables()
			return nil, err
		}
	}
	if err := log.Sync(); err != nil {
		log.Close()
		db.closeTables()
		return nil, err
	}
	if err := os.Rename(walPath+".new", walPath); err != nil {
		log.Close()
		db.closeTables()
		return nil, fmt.Errorf("lsm: swap wal: %w", err)
	}
	db.log = log
	return db, nil
}

// openTable opens an sstable file and attaches the shared block cache.
func (db *DB) openTable(name string) (*sstable.Reader, error) {
	rd, err := sstable.Open(filepath.Join(db.dir, name))
	if err != nil {
		return nil, err
	}
	if db.blockCache != nil {
		rd.SetBlockCache(db.blockCache)
	}
	return rd, nil
}

func (db *DB) closeTables() {
	for _, th := range db.tables {
		th.rd.Close()
	}
}

// Close flushes nothing (the WAL preserves the memtable) and releases all
// file handles. The DB is unusable afterwards.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	db.closed = true
	err := db.log.Close()
	db.closeTables()
	return err
}

// Put stores key → value.
func (db *DB) Put(key, value []byte) error {
	return db.write(wal.OpPut, key, value)
}

// Delete removes key by writing a tombstone; the key physically disappears
// at the next major compaction.
func (db *DB) Delete(key []byte) error {
	return db.write(wal.OpDelete, key, nil)
}

func (db *DB) write(op wal.Op, key, value []byte) error {
	if len(key) == 0 {
		return fmt.Errorf("lsm: empty key")
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	seq := db.man.nextSeq
	db.man.nextSeq++
	if err := db.log.Append(wal.Record{Op: op, Seq: seq, Key: key, Value: value}); err != nil {
		return err
	}
	if db.opts.SyncWAL {
		if err := db.log.Sync(); err != nil {
			return err
		}
	}
	if op == wal.OpDelete {
		db.mem.Delete(key, seq)
	} else {
		db.mem.Put(key, value, seq)
	}
	if db.mem.SizeBytes() >= db.opts.MemtableBytes {
		if err := db.flushLocked(); err != nil {
			return err
		}
		if db.opts.AutoCompact != nil {
			for {
				_, ran, err := db.minorCompactLocked(db.opts.AutoCompact)
				if err != nil {
					return err
				}
				if !ran {
					break
				}
				db.minorCompactions++
			}
		}
	}
	return nil
}

// Get returns the value stored for key, or ErrNotFound. The memtable
// always holds the newest version of a key if it holds one at all; among
// sstables the highest sequence number wins, so correctness does not
// depend on table ordering (minor compactions may merge non-adjacent
// tables). Bloom filters keep the per-table probes cheap.
func (db *DB) Get(key []byte) ([]byte, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return nil, ErrClosed
	}
	if e, ok := db.mem.Get(key); ok {
		if e.Tombstone {
			return nil, ErrNotFound
		}
		return append([]byte(nil), e.Value...), nil
	}
	var (
		bestSeq  uint64
		bestVal  []byte
		bestTomb bool
		foundAny bool
	)
	for _, th := range db.tables {
		e, err := th.rd.Get(key)
		if err == sstable.ErrNotFound {
			continue
		}
		if err != nil {
			return nil, err
		}
		if !foundAny || e.Seq > bestSeq {
			foundAny, bestSeq, bestVal, bestTomb = true, e.Seq, e.Value, e.Tombstone
		}
	}
	if !foundAny || bestTomb {
		return nil, ErrNotFound
	}
	return append([]byte(nil), bestVal...), nil
}

// Flush forces the memtable to an sstable even if it is below threshold.
func (db *DB) Flush() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	return db.flushLocked()
}

func (db *DB) flushLocked() error {
	if db.mem.Len() == 0 {
		return nil
	}
	name := fmt.Sprintf("%06d.sst", db.man.nextFileNum)
	db.man.nextFileNum++
	path := filepath.Join(db.dir, name)
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("lsm: create sstable: %w", err)
	}
	w := sstable.NewWriterCompressed(f, db.mem.Len(), db.opts.Compression)
	if err := sstable.WriteAll(w, db.mem.Iter()); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	rd, err := db.openTable(name)
	if err != nil {
		return err
	}
	// Newest first.
	db.tables = append([]*tableHandle{{name: name, rd: rd}}, db.tables...)
	db.man.tables = append([]string{name}, db.man.tables...)
	if err := db.man.save(db.dir); err != nil {
		return err
	}
	// The memtable is durable in the sstable now; start a fresh WAL.
	if err := db.resetWALLocked(); err != nil {
		return err
	}
	db.mem = memtable.New(db.opts.Seed + int64(db.man.nextFileNum))
	db.flushCount++
	return nil
}

func (db *DB) resetWALLocked() error {
	if err := db.log.Close(); err != nil {
		return err
	}
	log, err := wal.Create(filepath.Join(db.dir, "wal.log"))
	if err != nil {
		return err
	}
	db.log = log
	return nil
}

// Scan invokes fn for every live key-value pair in ascending key order,
// merging the memtable and all sstables and hiding deleted keys. fn must
// not retain its arguments. Scanning takes a snapshot under the read lock.
func (db *DB) Scan(fn func(key, value []byte) error) error {
	db.mu.RLock()
	if db.closed {
		db.mu.RUnlock()
		return ErrClosed
	}
	children := make([]iterator.Iterator, 0, len(db.tables)+1)
	children = append(children, db.mem.Iter())
	for _, th := range db.tables {
		children = append(children, th.rd.Iter())
	}
	db.mu.RUnlock()

	it := iterator.NewDedup(iterator.NewMerging(children...), true)
	for ; it.Valid(); it.Next() {
		e := it.Entry()
		if err := fn(e.Key, e.Value); err != nil {
			return err
		}
	}
	return nil
}

// Range invokes fn for every live key-value pair with start <= key < end,
// in ascending key order. A nil start begins at the first key; a nil end
// scans to the last. Like Scan, it merges the memtable and all sstables
// and hides deleted keys.
func (db *DB) Range(start, end []byte, fn func(key, value []byte) error) error {
	db.mu.RLock()
	if db.closed {
		db.mu.RUnlock()
		return ErrClosed
	}
	children := make([]iterator.Iterator, 0, len(db.tables)+1)
	if start == nil {
		children = append(children, db.mem.Iter())
	} else {
		children = append(children, db.mem.IterFrom(start))
	}
	for _, th := range db.tables {
		if start == nil {
			children = append(children, th.rd.Iter())
		} else {
			children = append(children, th.rd.IterFrom(start))
		}
	}
	db.mu.RUnlock()

	it := iterator.NewDedup(iterator.NewMerging(children...), true)
	for ; it.Valid(); it.Next() {
		e := it.Entry()
		if end != nil && bytes.Compare(e.Key, end) >= 0 {
			return nil
		}
		if err := fn(e.Key, e.Value); err != nil {
			return err
		}
	}
	return nil
}

// Stats reports store state.
type Stats struct {
	// Tables is the number of live sstables.
	Tables int
	// TableBytes is the total size of live sstables on disk.
	TableBytes uint64
	// MemtableKeys is the number of keys buffered in the memtable.
	MemtableKeys int
	// Flushes counts memtable flushes since Open.
	Flushes int
	// MinorCompactions counts auto-triggered minor compactions since Open.
	MinorCompactions int
	// BlockCacheHits and BlockCacheMisses count block-cache outcomes; both
	// are zero when the cache is disabled.
	BlockCacheHits, BlockCacheMisses uint64
}

// Stats returns a snapshot of store statistics.
func (db *DB) Stats() Stats {
	db.mu.RLock()
	defer db.mu.RUnlock()
	st := Stats{
		Tables:           len(db.tables),
		MemtableKeys:     db.mem.Len(),
		Flushes:          db.flushCount,
		MinorCompactions: db.minorCompactions,
	}
	if db.blockCache != nil {
		st.BlockCacheHits, st.BlockCacheMisses, _ = db.blockCache.Stats()
	}
	for _, th := range db.tables {
		st.TableBytes += th.rd.FileSize()
	}
	return st
}
