// Package lsm is a single-node, embedded log-structured merge store: the
// NoSQL write path of the paper's Figure 1 made concrete. Writes land in a
// WAL and a skiplist memtable; full memtables flush to immutable sstables;
// reads consult the memtable and then sstables newest-first through Bloom
// filters; and a major compaction merges all sstables into one, scheduled
// by any strategy from the compaction package — which is exactly the
// operation whose disk I/O the paper optimizes.
//
// Major compaction is non-blocking: the live sstable set is snapshotted in
// a short critical section, the merge schedule executes off-lock on a
// worker pool, and the result is swapped into the manifest atomically while
// reads and writes proceed against the snapshot (see MajorCompact). Table
// lifetime is reference-counted so snapshots keep obsolete sstables alive
// until the last reader drains.
package lsm

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/hll"
	"repro/internal/iterator"
	"repro/internal/kverr"
	"repro/internal/memtable"
	"repro/internal/retry"
	"repro/internal/sstable"
	"repro/internal/vfs"
	"repro/internal/wal"
)

// The error sentinels alias the canonical taxonomy in internal/kverr, so a
// caller holding the public kv package's sentinels can errors.Is against
// errors produced here without translation.
var (
	// ErrNotFound reports a missing (or deleted) key.
	ErrNotFound = kverr.ErrNotFound

	// ErrClosed reports use of a closed DB.
	ErrClosed = kverr.ErrClosed

	// ErrStalled marks a write that was aborted by its context while blocked
	// in write-stall backpressure. The group is already durable and visible
	// when this is returned — only the backpressure delay was abandoned —
	// and the context's own error is wrapped alongside it.
	ErrStalled = kverr.ErrStalled

	// ErrBatchTooLarge reports a WriteBatch larger than MaxBatchBytes.
	ErrBatchTooLarge = kverr.ErrBatchTooLarge

	// ErrCorrupt reports on-disk damage: a checksum-failing sstable block,
	// or a manifest referencing files that no longer exist. A corrupt
	// sstable detected at read time is quarantined (renamed aside and
	// dropped from the live set) so the store keeps serving its healthy
	// tables.
	ErrCorrupt = kverr.ErrCorrupt

	// ErrReadOnly reports a write rejected because the DB permanently
	// degraded to read-only after a durability failure — a failed WAL or
	// manifest fsync. The original cause is wrapped alongside it. Reads,
	// scans and snapshots continue to work.
	ErrReadOnly = kverr.ErrReadOnly
)

// Options tunes a DB. The zero value is usable.
type Options struct {
	// MemtableBytes is the flush threshold for the memtable (keys +
	// values). Zero selects 4 MiB.
	MemtableBytes int
	// SyncWAL forces an fsync after every write; slow but durable.
	SyncWAL bool
	// Seed makes skiplist behaviour deterministic.
	Seed int64
	// AutoCompact, when non-nil, runs minor compactions with this policy
	// after every memtable flush triggered by a write, keeping the table
	// count bounded between major compactions.
	AutoCompact CompactionPolicy
	// Background, when non-nil, starts a maintenance goroutine that runs
	// non-blocking major compactions whenever the live table count reaches
	// the configured trigger, stalling writers once the count reaches the
	// configured stall threshold (backpressure).
	Background *BackgroundConfig
	// CompactionWorkers bounds the merge worker pool used by major
	// compactions. Zero selects GOMAXPROCS.
	CompactionWorkers int
	// BlockCacheBytes bounds the shared sstable block cache. Zero selects
	// 8 MiB; negative disables caching.
	BlockCacheBytes int
	// Compression selects the sstable data-block codec for flushes and
	// compactions. The zero value stores blocks raw.
	Compression sstable.Compression
	// TableFormat selects the sstable format version written by flushes
	// and compactions: sstable.FormatV3 (the default when zero) or
	// sstable.FormatV2 for compatibility tooling and format benchmarks.
	// Tables of any readable version already on disk stay readable
	// regardless of this setting.
	TableFormat int
	// HookBeforeSwap, when non-nil, runs between a major compaction's merge
	// phase and its manifest swap, off-lock; returning an error aborts the
	// compaction as if it crashed there. Intended for tests that need to
	// wedge or fail the compactor at a deterministic point.
	HookBeforeSwap func() error
	// FS is the filesystem every durability-critical operation goes
	// through: WAL and sstable creation, manifest rewrites, table reads,
	// orphan cleanup. Nil selects the real OS filesystem (vfs.Default);
	// tests substitute a vfs.Fault to inject disk failures.
	FS vfs.FS
	// WriteLoad, when non-nil, is a shared gauge of writers in flight
	// across a family of related DBs — the shards of a store.Store. A
	// group-commit leader consults the gauge (in place of this DB's own
	// in-flight count) when deciding whether yielding could grow its
	// group: with many shards a single shard's own count is usually 1
	// even while sibling shards' writers stream in, so without the shared
	// gauge per-shard groups never form and the fsync amortization of
	// group commit is lost to the partitioning.
	WriteLoad *atomic.Int32
}

// DefaultBlockCacheBytes is the block-cache budget selected when
// Options.BlockCacheBytes is zero. The sharded store splits the same
// default across its shards, so the two layers stay in step.
const DefaultBlockCacheBytes = 8 << 20

func (o Options) withDefaults() Options {
	if o.MemtableBytes <= 0 {
		o.MemtableBytes = 4 << 20
	}
	if o.BlockCacheBytes == 0 {
		o.BlockCacheBytes = DefaultBlockCacheBytes
	}
	if o.FS == nil {
		o.FS = vfs.Default
	}
	return o
}

// tableHandle pairs an open sstable reader with its file name and a
// reference count governing its lifetime. The live table set holds one
// reference; read views, snapshots (scans, ranges, compactions) take
// another for their duration. When a compaction supersedes a table it is
// marked obsolete and the live reference dropped: the reader is closed and
// the file deleted only once the last view or snapshot drains.
type tableHandle struct {
	name string
	rd   *sstable.Reader
	dir  string
	// fs removes the table's file on last release; cleanupFails points at
	// the owning DB's counter of removals that failed (the release can
	// outlive the DB's locks, so the counter is shared by pointer).
	fs           vfs.FS
	cleanupFails *atomic.Uint64
	// gen is the table-set generation that created this table.
	gen  uint64
	refs atomic.Int32
	// smallest/largest bound the table's key range and maxSeq its
	// sequence range (all immutable after open): the read path prunes
	// point probes to tables whose range covers the key and stops probing
	// once no remaining table's maxSeq can beat the version already found.
	// hasBounds is false only for empty tables, which contain nothing.
	smallest, largest []byte
	minSeq, maxSeq    uint64
	hasBounds         bool
	// sketch is the table's HyperLogLog key sketch: read from the bounds
	// tail of a format-v3 table at open, or restored from the manifest for
	// tables whose file predates the extension. Nil when never persisted.
	// Immutable after open — consumers Clone before merging.
	sketch *hll.Sketch
	// level is the table's position in a leveled layout (0 for fresh
	// flushes and flat layouts), persisted through the manifest. Guarded
	// by DB.mu.
	level int
	// obsolete marks a table that has been replaced by a compaction; its
	// file is deleted when the reference count reaches zero.
	obsolete atomic.Bool
	// quarantined marks a table whose file was renamed aside after a
	// corruption was detected reading it: the last release closes the
	// reader but must not try to remove the (already renamed) file.
	quarantined atomic.Bool
	// compacting marks a table captured in a live major-compaction
	// snapshot; minor compactions must not touch it. Guarded by DB.mu.
	compacting bool
}

func (db *DB) newTableHandle(name string, rd *sstable.Reader, gen uint64) *tableHandle {
	th := &tableHandle{
		name: name, rd: rd, dir: db.dir, gen: gen,
		fs: db.fs, cleanupFails: &db.cleanupFails,
	}
	if b, ok := rd.Bounds(); ok {
		th.smallest, th.largest = b.Smallest, b.Largest
		th.minSeq, th.maxSeq = b.MinSeq, b.MaxSeq
		th.hasBounds = true
	}
	th.sketch = rd.Sketch()
	th.refs.Store(1)
	return th
}

func (th *tableHandle) retain() { th.refs.Add(1) }

// release drops one reference; the last release closes the reader and, if
// the table was superseded, removes its file. A removal failure is counted
// (Stats.CleanupFailures) rather than dropped: the file is an orphan the
// next Open will retry, but operators watching the counter can see disk
// space leaking.
func (th *tableHandle) release() {
	if th.refs.Add(-1) != 0 {
		return
	}
	th.rd.Close()
	if th.obsolete.Load() && !th.quarantined.Load() {
		if err := th.fs.Remove(filepath.Join(th.dir, th.name)); err != nil {
			th.cleanupFails.Add(1)
		}
	}
}

func releaseTables(tables []*tableHandle) {
	for _, th := range tables {
		th.release()
	}
}

// DB is the store. All methods are safe for concurrent use.
type DB struct {
	dir  string
	opts Options
	// fs is opts.FS after defaulting: the filesystem all durability paths
	// go through.
	fs vfs.FS

	// cleanupFails counts file removals that failed — orphan cleanup at
	// Open, obsolete tables at last release, aborted flush/compaction
	// outputs. Failures leave recoverable garbage (the next Open retries),
	// so they are counted, not fatal.
	cleanupFails atomic.Uint64
	// ro is set once the DB degrades to read-only (see failDurabilityLocked);
	// it mirrors roCause for lock-free checks.
	ro atomic.Bool

	blockCache *cache.Sharded // nil when disabled
	// filterMetrics accumulates Bloom-filter outcomes across all table
	// readers, surviving table turnover under compaction.
	filterMetrics sstable.FilterMetrics

	// majorMu serializes major compactions (blocking or background); the
	// store lock mu is only held for their short snapshot/swap sections.
	majorMu sync.Mutex
	// state is the major-compaction state machine, readable without mu.
	state atomic.Int32

	// pipeMu is the commit-pipeline lock: it serializes WAL I/O (group
	// appends, fsyncs, log swaps) with memtable replacement, so a group
	// commit's WAL-append → memtable-apply window can run without holding
	// mu while flushes still observe a quiesced pipeline. Lock order:
	// pipeMu before mu; never acquire pipeMu while holding mu.
	pipeMu sync.Mutex
	// commitMu guards the commit queue of parked writers; the queue head is
	// the current group leader (see batch.go).
	commitMu    sync.Mutex
	commitQueue []*commitReq
	// walRecs is the leader's scratch slice for group encoding, guarded by
	// pipeMu.
	walRecs []wal.Record
	// writersInFlight counts Write calls currently between entry and
	// return; a solo leader yields for group formation only when other
	// writers are actually in flight (see leadGroup).
	writersInFlight atomic.Int32

	// view is the atomically published read view (see view.go): point
	// reads, scans and snapshots pin it instead of taking mu, so a flush
	// or compaction holding mu never stalls them. Every table-set change
	// installs a fresh view under mu; Close retires it to nil.
	view atomic.Pointer[readView]
	// applyMu orders memtable mutation against memtable materialization:
	// the commit pipeline applies a group's records under the write lock,
	// scans and snapshots materialize the memtable under the read lock.
	// Both sections are pure in-memory work — never held across a syscall
	// — so this lock cannot reintroduce the I/O stalls mu used to cause.
	// Lock order: pipeMu before mu before applyMu; applyMu's read side is
	// taken with no other lock held.
	applyMu sync.RWMutex

	mu        sync.RWMutex
	stallCond *sync.Cond // signalled when the table count drops or DB closes
	mem       *memtable.Table
	log       *wal.Writer
	man       *manifest
	tables    []*tableHandle // newest first
	closed    bool
	// generation counts table-set changes (flush, minor, major); each
	// tableHandle records the generation that created it.
	generation uint64
	// flushCount, minorCompactions, majorCompactions and writeStalls count
	// maintenance work, exposed through Stats.
	flushCount       int
	minorCompactions int
	majorCompactions int
	writeStalls      int
	// bytesFlushed and bytesCompacted total the sstable bytes written by
	// memtable flushes and by compactions (minor and major) respectively;
	// their ratio is the store's write amplification. stallTime is the
	// cumulative wall time writers spent blocked in backpressure stalls.
	// compactionPicks counts completed compactions by the policy or
	// strategy that picked them. All guarded by mu.
	bytesFlushed    uint64
	bytesCompacted  uint64
	stallTime       time.Duration
	compactionPicks map[string]uint64
	bgLastErr       error
	// roCause is the durability failure that degraded the DB to read-only
	// (nil while writable); quarantined counts corrupt tables renamed
	// aside since Open. Both guarded by mu.
	roCause     error
	quarantined int
	// bgRetries counts background-compaction attempts retried after a
	// transient failure; bgFailures counts runs that exhausted their
	// retry budget. Guarded by mu.
	bgRetries  int
	bgFailures int
	// groupCommits, groupedWrites and walSyncs count commit-pipeline work:
	// groups committed, records committed through groups, and WAL fsyncs
	// issued, exposed through Stats (avg group size, syncs per write).
	groupCommits  uint64
	groupedWrites uint64
	walSyncs      uint64
	// walRecovery records what WAL replay recovered at Open, including
	// whether the log was truncated by a crash (see Stats).
	walRecovery wal.ReplayStats

	bgCfg  BackgroundConfig
	bgKick chan struct{}
	bgQuit chan struct{}
	bgWG   sync.WaitGroup

	// hookBeforeSwap, when set (tests only), runs after every merge of a
	// background major compaction completes but before the manifest swap.
	// Returning an error aborts the compaction as a simulated crash:
	// merge outputs are left on disk and the manifest is not touched.
	hookBeforeSwap func() error
}

// Open opens (creating if necessary) a store in dir, replaying any WAL left
// by a previous crash into the memtable and deleting any sstable files a
// crashed compaction left outside the manifest.
func Open(dir string, opts Options) (*DB, error) {
	opts = opts.withDefaults()
	fsys := opts.FS
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("lsm: mkdir: %w", err)
	}
	man, err := loadManifest(fsys, dir)
	if err != nil {
		return nil, err
	}
	orphanFails, err := removeOrphans(fsys, dir, man)
	if err != nil {
		return nil, err
	}
	db := &DB{dir: dir, opts: opts, fs: fsys, man: man, mem: memtable.New(opts.Seed)}
	db.cleanupFails.Add(orphanFails)
	db.stallCond = sync.NewCond(&db.mu)
	db.hookBeforeSwap = opts.HookBeforeSwap
	if opts.BlockCacheBytes > 0 {
		db.blockCache = cache.NewSharded(opts.BlockCacheBytes, 0)
	}
	for _, name := range man.tables {
		// The manifest's persisted bounds let a legacy (version-1 footer)
		// table skip its open-time backfill read; version-2 tables ignore
		// the hint in favor of their own bounds block.
		var hint *sstable.Bounds
		if mb, ok := man.bounds[name]; ok {
			hint = &mb
		}
		rd, err := db.openTableWithBounds(name, hint)
		if err != nil {
			releaseTables(db.tables)
			if errors.Is(err, fs.ErrNotExist) {
				// The manifest promises a table the directory does not
				// hold: the store is damaged, and the caller must learn it
				// through the canonical taxonomy, not a bare *PathError.
				return nil, fmt.Errorf("lsm: open table %s: %w (%w)", name, ErrCorrupt, err)
			}
			return nil, fmt.Errorf("lsm: open table %s: %w", name, err)
		}
		th := db.newTableHandle(name, rd, 0)
		// A table whose file embeds no sketch (format v2, or v3 written
		// before the extension) may still have one persisted in the
		// manifest; levels live only in the manifest.
		if th.sketch == nil {
			th.sketch = man.sketches[name]
		}
		th.level = man.levels[name]
		db.tables = append(db.tables, th)
	}
	// Recover the WAL, if present, into the fresh memtable.
	walPath := filepath.Join(dir, "wal.log")
	if _, err := fsys.Stat(walPath); err == nil {
		maxSeq := man.nextSeq
		stats, err := wal.Replay(fsys, walPath, func(r wal.Record) error {
			switch r.Op {
			case wal.OpPut:
				db.mem.Put(r.Key, r.Value, r.Seq)
			case wal.OpDelete:
				db.mem.Delete(r.Key, r.Seq)
			}
			if r.Seq >= maxSeq {
				maxSeq = r.Seq + 1
			}
			return nil
		})
		if err != nil {
			releaseTables(db.tables)
			return nil, err
		}
		// Record what recovery found — including a truncated log, which is
		// a legitimate crash artifact but one operators should be able to
		// see (Stats.WALRecoveryTruncated).
		db.walRecovery = stats
		man.nextSeq = maxSeq
	}
	log, err := wal.Create(fsys, walPath+".new")
	if err != nil {
		releaseTables(db.tables)
		return nil, err
	}
	// Preserve recovered-but-unflushed data: the fresh log only matters
	// once the memtable flushes or new writes arrive; we re-log recovered
	// entries (in chunked batch frames, not one write per record) so the
	// old log can be replaced atomically.
	var recs []wal.Record
	chunkBytes := 0
	appendChunk := func() error {
		if len(recs) == 0 {
			return nil
		}
		err := log.AppendBatch(recs)
		recs, chunkBytes = recs[:0], 0
		return err
	}
	for it := db.mem.Iter(); it.Valid(); it.Next() {
		e := it.Entry()
		rec := wal.Record{Op: wal.OpPut, Seq: e.Seq, Key: e.Key, Value: e.Value}
		if e.Tombstone {
			rec = wal.Record{Op: wal.OpDelete, Seq: e.Seq, Key: e.Key}
		}
		recs = append(recs, rec)
		chunkBytes += len(rec.Key) + len(rec.Value) + 32
		// Chunks are bounded by record count and by encoded size: a
		// recovered memtable full of large values must never build a frame
		// the replayer (MaxFrameBytes) would refuse.
		if len(recs) >= 1024 || chunkBytes >= 4<<20 {
			if err := appendChunk(); err != nil {
				log.Close()
				releaseTables(db.tables)
				return nil, err
			}
		}
	}
	if err := appendChunk(); err != nil {
		log.Close()
		releaseTables(db.tables)
		return nil, err
	}
	if err := log.Sync(); err != nil {
		log.Close()
		releaseTables(db.tables)
		return nil, err
	}
	if err := fsys.Rename(walPath+".new", walPath); err != nil {
		log.Close()
		releaseTables(db.tables)
		return nil, fmt.Errorf("lsm: swap wal: %w", err)
	}
	db.log = log
	// Publish the initial read view. No readers exist yet, so holding mu
	// is not required; installViewLocked's contract is satisfied trivially.
	db.installViewLocked()
	if opts.Background != nil {
		db.bgCfg = opts.Background.withDefaults()
		db.bgKick = make(chan struct{}, 1)
		db.bgQuit = make(chan struct{})
		db.bgWG.Add(1)
		go db.backgroundCompactor()
	}
	return db, nil
}

// removeOrphans deletes sstable files in dir that the manifest does not
// reference — the merge outputs of a compaction that crashed between
// writing its files and committing the swap — plus any stale manifest temp
// file. Recovery is thereby idempotent: reopening after a crash converges
// to exactly the manifest's view of the store. A removal that fails is
// counted and skipped rather than failing Open: an undeletable orphan is
// only leaked space, and the next Open retries it; quarantined files
// (.sst.corrupt) are never touched.
func removeOrphans(fsys vfs.FS, dir string, man *manifest) (failed uint64, err error) {
	live := make(map[string]bool, len(man.tables))
	for _, name := range man.tables {
		live[name] = true
	}
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return 0, fmt.Errorf("lsm: scan for orphans: %w", err)
	}
	for _, ent := range entries {
		name := ent.Name()
		orphanSST := strings.HasSuffix(name, ".sst") && !live[name]
		if orphanSST || name == manifestName+".tmp" {
			if err := fsys.Remove(filepath.Join(dir, name)); err != nil {
				failed++
			}
		}
	}
	return failed, nil
}

// openTable opens an sstable file and attaches the shared block cache.
func (db *DB) openTable(name string) (*sstable.Reader, error) {
	return db.openTableWithBounds(name, nil)
}

// openTableWithBounds is openTable passing a persisted bounds hint from
// the manifest; see sstable.OpenWithBounds.
func (db *DB) openTableWithBounds(name string, hint *sstable.Bounds) (*sstable.Reader, error) {
	rd, err := sstable.OpenFS(db.fs, filepath.Join(db.dir, name), hint)
	if err != nil {
		return nil, err
	}
	if db.blockCache != nil {
		rd.SetBlockCache(db.blockCache)
	}
	rd.SetFilterMetrics(&db.filterMetrics)
	return rd, nil
}

// Close stops background maintenance, flushes nothing (the WAL preserves
// the memtable) and releases all file handles. An in-flight background
// compaction aborts at its next phase boundary; snapshots still reading
// keep their tables open until they drain. The DB is unusable afterwards.
func (db *DB) Close() error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return ErrClosed
	}
	db.closed = true
	if db.bgQuit != nil {
		close(db.bgQuit)
	}
	db.stallCond.Broadcast()
	db.mu.Unlock()
	db.bgWG.Wait()

	// Quiesce the commit pipeline before closing the log: an in-flight
	// group leader holds pipeMu across its WAL I/O, and its records must
	// reach the (still open) log even though closed is already set.
	db.pipeMu.Lock()
	defer db.pipeMu.Unlock()
	db.mu.Lock()
	defer db.mu.Unlock()
	err := db.log.Close()
	// Retire the read view first: new pins fail with ErrClosed, readers
	// already pinned keep their tables alive until they drain.
	db.dropViewLocked()
	releaseTables(db.tables)
	db.tables = nil
	return err
}

// Put stores key → value. Concurrent Puts are group-committed: writers
// enqueue on the commit pipeline and a single leader performs one WAL
// append (and at most one fsync) for the whole group — see batch.go.
func (db *DB) Put(key, value []byte) error {
	return db.PutContext(context.Background(), key, value)
}

// PutContext is Put honoring ctx: see WriteContext for the cancellation
// points on the commit pipeline.
func (db *DB) PutContext(ctx context.Context, key, value []byte) error {
	b := writeBatchPool.Get().(*WriteBatch)
	b.Reset()
	b.Put(key, value)
	err := db.WriteContext(ctx, b)
	writeBatchPool.Put(b)
	return err
}

// Delete removes key by writing a tombstone; the key physically disappears
// at the next major compaction. Like Put, deletes ride the group-commit
// pipeline.
func (db *DB) Delete(key []byte) error {
	return db.DeleteContext(context.Background(), key)
}

// DeleteContext is Delete honoring ctx: see WriteContext for the
// cancellation points on the commit pipeline.
func (db *DB) DeleteContext(ctx context.Context, key []byte) error {
	b := writeBatchPool.Get().(*WriteBatch)
	b.Reset()
	b.Delete(key)
	err := db.WriteContext(ctx, b)
	writeBatchPool.Put(b)
	return err
}

// maybeStallLocked implements write backpressure for the background
// compactor: kick a compaction at the trigger threshold, and above the
// stall threshold block the writer (releasing the lock while waiting)
// until compaction brings the table count back down. The write itself has
// already been applied; stalling only delays the return to the caller, so
// when ctx expires mid-stall the returned error (ErrStalled wrapping the
// context error) reports an abandoned delay, not a lost write.
func (db *DB) maybeStallLocked(ctx context.Context) error {
	if db.opts.Background == nil {
		return nil
	}
	if len(db.tables) >= db.bgCfg.Trigger {
		db.kickBackground()
	}
	if len(db.tables) < db.bgCfg.Stall {
		return nil
	}
	db.writeStalls++
	stallStart := time.Now()
	defer func() { db.stallTime += time.Since(stallStart) }()
	// stallCond has no select form, so context expiry is delivered by a
	// watcher that wakes every waiter; each one rechecks its own ctx.
	if ctx.Done() != nil {
		stop := context.AfterFunc(ctx, func() {
			db.mu.Lock()
			db.stallCond.Broadcast()
			db.mu.Unlock()
		})
		defer stop()
	}
	for len(db.tables) >= db.bgCfg.Stall && !db.closed && db.bgLastErr == nil && db.roCause == nil {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("%w: %w", ErrStalled, err)
		}
		db.kickBackground()
		db.stallCond.Wait()
	}
	return nil
}

// recordPickLocked counts a completed compaction against the policy or
// strategy that picked it. Callers hold mu.
func (db *DB) recordPickLocked(name string) {
	if db.compactionPicks == nil {
		db.compactionPicks = make(map[string]uint64)
	}
	db.compactionPicks[name]++
}

// kickBackground nudges the maintenance goroutine without blocking.
func (db *DB) kickBackground() {
	if db.bgKick == nil {
		return
	}
	select {
	case db.bgKick <- struct{}{}:
	default:
	}
}

// failDurabilityLocked permanently degrades the DB to read-only, recording
// cause. Called (under mu) when a WAL or manifest fsync fails — after a
// failed fsync the kernel may have dropped the dirty pages, so nothing
// later written could be trusted as durable, and acknowledging writes
// would risk silently losing them. Reads keep working; every subsequent
// write fails with ErrReadOnly wrapping the cause. Stalled writers are
// released so they fail fast instead of hanging.
func (db *DB) failDurabilityLocked(cause error) {
	if db.roCause != nil {
		return
	}
	db.roCause = cause
	db.ro.Store(true)
	db.stallCond.Broadcast()
}

// readOnlyErrLocked returns the composed read-only error, or nil while the
// DB is writable. Callers hold mu.
func (db *DB) readOnlyErrLocked() error {
	if db.roCause == nil {
		return nil
	}
	return fmt.Errorf("%w (cause: %w)", ErrReadOnly, db.roCause)
}

// ReadOnly reports whether the DB has degraded to read-only after a
// durability failure, and the cause if so.
func (db *DB) ReadOnly() (bool, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.roCause != nil, db.roCause
}

// quarantineTable handles a corruption detected while reading th: the
// table leaves the live set and the manifest, and its file is renamed
// aside (name.corrupt) for forensics — never silently deleted, never
// probed again. The read that found the damage still fails with
// ErrCorrupt; quarantining just stops the damage from wedging every later
// read that lands on the same table. Tables captured in a live compaction
// snapshot are skipped (the compaction owns their lifecycle and will fail
// on its own read of the damage).
func (db *DB) quarantineTable(th *tableHandle, cause error) {
	db.mu.Lock()
	if db.closed || th.compacting || th.quarantined.Load() {
		db.mu.Unlock()
		return
	}
	idx := -1
	for i, t := range db.tables {
		if t == th {
			idx = i
			break
		}
	}
	if idx < 0 {
		// Already superseded by a compaction; the obsolete path owns it.
		db.mu.Unlock()
		return
	}
	th.quarantined.Store(true)
	db.tables = append(db.tables[:idx:idx], db.tables[idx+1:]...)
	manTables := make([]string, 0, len(db.man.tables))
	for _, name := range db.man.tables {
		if name != th.name {
			manTables = append(manTables, name)
		}
	}
	db.man.tables = manTables
	db.man.recordBounds(db.tables)
	saveErr := db.man.save(db.fs, db.dir)
	db.generation++
	db.quarantined++
	db.installViewLocked()
	if saveErr != nil {
		// The on-disk manifest still references the quarantined file, so
		// the table-set change cannot be promised durable: degrade to
		// read-only and leave the file under its manifest name for the
		// next Open to sort out.
		db.failDurabilityLocked(saveErr)
	}
	db.mu.Unlock()

	if saveErr == nil {
		path := filepath.Join(db.dir, th.name)
		if err := db.fs.Rename(path, path+".corrupt"); err != nil {
			db.cleanupFails.Add(1)
		}
	}
	th.release() // the live set's reference
}

// backgroundCompactor is the maintenance goroutine: it waits for kicks from
// the write path and runs non-blocking major compactions until the live
// table count is back under the trigger threshold.
// bgMaxRetries bounds how many times the background compactor retries a
// failing compaction before giving up and surfacing the error; retries
// back off on bgBackoff's jittered exponential schedule.
const bgMaxRetries = 3

var bgBackoff = retry.Backoff{Base: 10 * time.Millisecond, Max: 2 * time.Second}

func (db *DB) backgroundCompactor() {
	defer db.bgWG.Done()
	retries := 0
	for {
		select {
		case <-db.bgQuit:
			return
		case <-db.bgKick:
		}
		for {
			db.mu.RLock()
			n := len(db.tables)
			closed := db.closed
			readOnly := db.roCause != nil
			db.mu.RUnlock()
			if closed || readOnly || n < db.bgCfg.Trigger {
				break
			}
			_, err := db.MajorCompact(db.bgCfg.Strategy, db.bgCfg.K, db.bgCfg.Seed)
			if errors.Is(err, ErrClosed) {
				return
			}
			if err != nil && !errors.Is(err, ErrReadOnly) && retries < bgMaxRetries {
				// Transient failures (an injected I/O error, a momentary
				// ENOSPC) get a bounded, backed-off retry before the error
				// sticks and disables backpressure. Read-only degradation
				// is permanent, so retrying it would just spin.
				retries++
				db.mu.Lock()
				db.bgRetries++
				db.mu.Unlock()
				select {
				case <-db.bgQuit:
					return
				case <-time.After(bgBackoff.Delay(retries - 1)):
				}
				continue
			}
			db.mu.Lock()
			// A success clears any earlier transient failure so
			// backpressure stalls re-arm; a failure that exhausted its
			// retries records the error and releases stalled writers
			// rather than hanging them.
			db.bgLastErr = err
			if err != nil {
				db.bgFailures++
				db.stallCond.Broadcast()
			}
			db.mu.Unlock()
			if err != nil {
				break
			}
			retries = 0
		}
	}
}

// BackgroundErr returns the first error the background compactor hit, if
// any. A non-nil result means backpressure stalls are disabled and the
// table count may grow unbounded; callers should surface it.
func (db *DB) BackgroundErr() error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.bgLastErr
}

// Get returns the value stored for key, or ErrNotFound. The read is
// coordination-free: it pins the atomically published read view (see
// view.go) and never touches db.mu, so flushes and compactions holding
// the store lock cannot stall it. The memtable always holds the newest
// version of a key if it holds one at all; among sstables the probe runs
// in descending max-sequence order with key-range pruning and stops as
// soon as no remaining table can hold a newer version. Bloom filters keep
// the per-table probes cheap.
func (db *DB) Get(key []byte) ([]byte, error) {
	return db.GetContext(context.Background(), key)
}

// GetContext is Get honoring ctx: expiry is re-checked between per-table
// probes, so a cold multi-table lookup observes cancellation after at
// most one table's disk read rather than only at entry.
func (db *DB) GetContext(ctx context.Context, key []byte) ([]byte, error) {
	if ctx.Done() != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	v, err := db.pinView()
	if err != nil {
		return nil, err
	}
	defer v.unpin()
	val, bad, err := v.get(ctx, key)
	if err != nil && bad != nil && errors.Is(err, ErrCorrupt) {
		// A checksum mismatch in one table must not wedge the engine:
		// quarantine the damaged file (rename aside, drop from the view)
		// so later reads serve from the healthy tables. This read still
		// reports the corruption.
		db.quarantineTable(bad, err)
	}
	return val, err
}

// Flush forces the memtable to an sstable even if it is below threshold.
func (db *DB) Flush() error {
	return db.FlushContext(context.Background())
}

// FlushContext is Flush honoring ctx. The flush itself is not interruptible
// once started — it is one sstable write plus a WAL swap — so the context
// is only consulted before the work begins.
func (db *DB) FlushContext(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	db.pipeMu.Lock()
	defer db.pipeMu.Unlock()
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	return db.flushLocked()
}

// tableWriterOpts builds the sstable writer options flushes and
// compactions share: the configured codec and table format version.
func (db *DB) tableWriterOpts() sstable.WriterOptions {
	return sstable.WriterOptions{
		Compression:   db.opts.Compression,
		FormatVersion: db.opts.TableFormat,
	}
}

// flushLocked writes the memtable to a fresh sstable and starts a new WAL.
// Callers must hold both pipeMu and mu: the pipeline lock keeps the
// WAL swap from racing a group commit's append-then-apply window.
func (db *DB) flushLocked() error {
	if db.mem.Len() == 0 {
		return nil
	}
	if err := db.readOnlyErrLocked(); err != nil {
		return err
	}
	name := fmt.Sprintf("%06d.sst", db.man.nextFileNum)
	db.man.nextFileNum++
	path := filepath.Join(db.dir, name)
	f, err := db.fs.Create(path)
	if err != nil {
		return fmt.Errorf("lsm: create sstable: %w", err)
	}
	// Every failure before the manifest records the table aborts the
	// flush cleanly: the partial file is closed before removal (removing
	// an open file works on POSIX but masks close diagnostics), the first
	// error is the one returned, and a failed removal is counted rather
	// than allowed to shadow it. The memtable and WAL are untouched, so
	// the flush simply retries later — nothing acknowledged is at risk.
	abort := func(first error) error {
		f.Close()
		if rerr := db.fs.Remove(path); rerr != nil {
			db.cleanupFails.Add(1)
		}
		return first
	}
	w := sstable.NewWriterOpts(f, db.mem.Len(), db.tableWriterOpts())
	if err := sstable.WriteAll(w, db.mem.Iter()); err != nil {
		return abort(err)
	}
	if err := f.Sync(); err != nil {
		return abort(err)
	}
	if err := f.Close(); err != nil {
		if rerr := db.fs.Remove(path); rerr != nil {
			db.cleanupFails.Add(1)
		}
		return fmt.Errorf("lsm: close sstable: %w", err)
	}
	rd, err := db.openTable(name)
	if err != nil {
		if rerr := db.fs.Remove(path); rerr != nil {
			db.cleanupFails.Add(1)
		}
		return err
	}
	// Newest first.
	db.generation++
	th := db.newTableHandle(name, rd, db.generation)
	if th.sketch == nil {
		// Table formats that do not embed the sketch (v2) still get one:
		// the writer maintained it in memory, and the manifest carries it
		// across restarts.
		th.sketch = w.Sketch()
	}
	db.tables = append([]*tableHandle{th}, db.tables...)
	db.man.tables = append([]string{name}, db.man.tables...)
	db.man.recordBounds(db.tables)
	if err := db.man.save(db.fs, db.dir); err != nil {
		// The manifest rewrite (or its fsync) failed: the on-disk manifest
		// may or may not reference the new table, so the table-set change
		// cannot be promised durable. Roll the in-memory set back — the
		// data is still safe in the memtable and WAL — and degrade to
		// read-only rather than risk acknowledging writes against an
		// untrustworthy manifest.
		db.generation++
		db.tables = db.tables[1:]
		db.man.tables = db.man.tables[1:]
		db.man.recordBounds(db.tables)
		rd.Close()
		if rerr := db.fs.Remove(path); rerr != nil {
			db.cleanupFails.Add(1)
		}
		db.failDurabilityLocked(err)
		return err
	}
	// The memtable is durable in the sstable now; start a fresh WAL.
	if err := db.resetWALLocked(); err != nil {
		return err
	}
	db.mem = memtable.New(db.opts.Seed + int64(db.man.nextFileNum))
	db.flushCount++
	db.bytesFlushed += rd.FileSize()
	// Publish the new (empty memtable, grown table set) pair. Readers
	// pinned to the old view keep reading the old memtable — whose
	// contents the new table duplicates — so no version is ever invisible.
	db.installViewLocked()
	return nil
}

// resetWALLocked starts a fresh WAL after a flush made the memtable
// durable in an sstable. The new log is created before the old one is
// closed: if creation fails, the old (still valid) writer stays in place
// and the flush reports a retryable error instead of leaving the DB with
// a closed log. The old log's close error is counted, not returned — its
// contents are already durable in the just-flushed table.
func (db *DB) resetWALLocked() error {
	log, err := wal.Create(db.fs, filepath.Join(db.dir, "wal.log"))
	if err != nil {
		return fmt.Errorf("lsm: reset wal: %w", err)
	}
	if db.log != nil {
		if cerr := db.log.Close(); cerr != nil {
			db.cleanupFails.Add(1)
		}
	}
	db.log = log
	return nil
}

// acquireSnapshot captures a consistent read view without touching db.mu:
// it pins the published view, materializes the view memtable's entries in
// [start, end) — nil bounds are open — into a slice under applyMu's read
// side (so a concurrent group commit's records land all-or-nothing in the
// materialization), and retains every view table whose key range overlaps
// the requested bounds. Tables are returned in table-set order (newest
// first). The caller must releaseTables the handles.
func (db *DB) acquireSnapshot(start, end []byte) ([]iterator.Entry, []*tableHandle, error) {
	v, err := db.pinView()
	if err != nil {
		return nil, nil, err
	}
	defer v.unpin()
	db.applyMu.RLock()
	var it iterator.Iterator
	if start == nil {
		it = v.mem.Iter()
	} else {
		it = v.mem.IterFrom(start)
	}
	var entries []iterator.Entry
	for ; it.Valid(); it.Next() {
		e := it.Entry()
		if end != nil && bytes.Compare(e.Key, end) >= 0 {
			break
		}
		entries = append(entries, e)
	}
	db.applyMu.RUnlock()
	tables := make([]*tableHandle, 0, len(v.tables))
	for _, th := range v.tables {
		if start == nil && end == nil {
			// Whole-keyspace snapshots keep every table: a point-in-time
			// Snapshot probes by key and needs the full set.
			tables = append(tables, th)
			continue
		}
		if th.overlaps(start, end) {
			tables = append(tables, th)
		}
	}
	for _, th := range tables {
		th.retain()
	}
	return entries, tables, nil
}

// Scan invokes fn for every live key-value pair in ascending key order,
// merging the memtable and all sstables and hiding deleted keys. fn must
// not retain its arguments. The snapshot is taken in a short critical
// section; iteration proceeds off-lock, concurrently with writes and
// compactions, against reference-counted tables.
func (db *DB) Scan(fn func(key, value []byte) error) error {
	return db.Range(nil, nil, fn)
}

// Range invokes fn for every live key-value pair with start <= key < end,
// in ascending key order. A nil start begins at the first key; a nil end
// scans to the last. Like Scan, it merges the memtable and all sstables
// and hides deleted keys.
func (db *DB) Range(start, end []byte, fn func(key, value []byte) error) error {
	return db.RangeContext(context.Background(), start, end, fn)
}

// rangeCtxCheckEvery is how many merged entries a context-aware scan loop
// emits between context-expiry checks: often enough that cancellation lands
// within microseconds, rarely enough that the check costs nothing.
const rangeCtxCheckEvery = 256

// RangeContext is Range honoring ctx: the merge loop checks for expiry
// every rangeCtxCheckEvery entries, so a cancelled scan stops promptly and
// releases its table references instead of draining the whole key space.
func (db *DB) RangeContext(ctx context.Context, start, end []byte, fn func(key, value []byte) error) error {
	it, release, err := db.NewIterator(start, end)
	if err != nil {
		return err
	}
	defer release()
	return RangeLoop(ctx, it, fn)
}

// RangeLoop drives a merged iterator through fn with periodic context
// checks; shared by the single-shard and sharded scan paths. When the
// iterator ends it is checked for a deferred error (IterErr): a corrupt
// block mid-scan surfaces as ErrCorrupt instead of masquerading as a
// clean, short result.
func RangeLoop(ctx context.Context, it iterator.Iterator, fn func(key, value []byte) error) error {
	for n := 0; it.Valid(); it.Next() {
		if n%rangeCtxCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		n++
		e := it.Entry()
		if err := fn(e.Key, e.Value); err != nil {
			return err
		}
	}
	return IterErr(it)
}

// IterErr returns the deferred error of an iterator that carries one (the
// iterator.Iterator interface has no Err method; sources that can fail
// mid-stream — sstable block reads — record the error and end early).
func IterErr(it iterator.Iterator) error {
	if ec, ok := it.(interface{ Err() error }); ok {
		return ec.Err()
	}
	return nil
}

// errSourcedIter decorates a merged iterator with the Err() of its
// children: the merging heap treats an erroring child as exhausted, which
// silently truncates the stream; the decoration lets RangeLoop (and any
// caller using IterErr) distinguish a clean end from a failed source.
type errSourcedIter struct {
	iterator.Iterator
	sources []iterator.Iterator
}

func (it *errSourcedIter) Err() error {
	for _, s := range it.sources {
		if ec, ok := s.(interface{ Err() error }); ok {
			if err := ec.Err(); err != nil {
				return err
			}
		}
	}
	return nil
}

// withErrSources wraps it so IterErr reports the first deferred error of
// any source.
func withErrSources(it iterator.Iterator, sources []iterator.Iterator) iterator.Iterator {
	return &errSourcedIter{Iterator: it, sources: sources}
}

// boundedIter truncates a sorted stream at an exclusive end key.
type boundedIter struct {
	iterator.Iterator
	end []byte
}

func (it *boundedIter) Valid() bool {
	return it.Iterator.Valid() && bytes.Compare(it.Iterator.Entry().Key, it.end) < 0
}

// NewIterator returns an iterator over the live entries with
// start <= key < end (nil bounds are open), merged across the memtable and
// all sstables with deleted keys hidden, plus a release function the caller
// must invoke when done iterating. The snapshot is taken in a short
// critical section; iteration proceeds off-lock against reference-counted
// tables, concurrently with writes and compactions. The sharded store
// k-way-merges one such iterator per shard into a single ordered stream.
func (db *DB) NewIterator(start, end []byte) (iterator.Iterator, func(), error) {
	memEntries, tables, err := db.acquireSnapshot(start, end)
	if err != nil {
		return nil, nil, err
	}
	children := make([]iterator.Iterator, 0, len(tables)+1)
	children = append(children, iterator.NewSlice(memEntries))
	for _, th := range tables {
		if start == nil {
			children = append(children, th.rd.Iter())
		} else {
			children = append(children, th.rd.IterFrom(start))
		}
	}
	var it iterator.Iterator = iterator.NewDedup(iterator.NewMerging(children...), true)
	if end != nil {
		it = &boundedIter{Iterator: it, end: end}
	}
	return withErrSources(it, children), func() { releaseTables(tables) }, nil
}

// Stats reports store state.
type Stats struct {
	// Tables is the number of live sstables.
	Tables int
	// TableBytes is the total size of live sstables on disk.
	TableBytes uint64
	// MemtableKeys is the number of keys buffered in the memtable.
	MemtableKeys int
	// Flushes counts memtable flushes since Open.
	Flushes int
	// MinorCompactions counts auto-triggered minor compactions since Open.
	MinorCompactions int
	// MajorCompactions counts completed major compactions since Open,
	// blocking and background alike.
	MajorCompactions int
	// WriteStalls counts writes delayed by compaction backpressure, and
	// WriteStallTime the cumulative wall time those writers spent blocked.
	WriteStalls    int
	WriteStallTime time.Duration
	// BytesFlushed totals sstable bytes written by memtable flushes and
	// BytesCompacted sstable bytes written by compactions, minor and major
	// alike. (BytesFlushed + BytesCompacted) / BytesFlushed is the store's
	// write amplification — the quantity the paper's compaction strategies
	// minimize.
	BytesFlushed, BytesCompacted uint64
	// CompactionPicks counts completed compactions by the policy or
	// strategy name that picked them ("size-tiered", "SI", "BT(I)", ...).
	// Nil when no compaction has run.
	CompactionPicks map[string]uint64
	// Generation counts table-set changes (flushes and compactions).
	Generation uint64
	// CompactionState is the major-compaction state machine's current
	// phase: "idle", "planning", "merging" or "swapping".
	CompactionState string
	// BlockCacheHits and BlockCacheMisses count block-cache outcomes; both
	// are zero when the cache is disabled.
	BlockCacheHits, BlockCacheMisses uint64
	// BlockCacheShardBalance is the ratio of the fullest block-cache
	// stripe's occupancy to the mean stripe occupancy (1.0 = perfectly
	// even, stripe count = fully skewed, 0 = empty cache): the observable
	// for hash-striping skew. On a sharded store the aggregate reports
	// the worst shard's ratio.
	BlockCacheShardBalance float64
	// FilterNegatives counts point lookups a Bloom filter rejected without
	// reading a data block (the I/O the filters saved); FilterFalsePositives
	// counts lookups a filter let through that found no key (the wasted
	// block probes). Their ratio is the realized filter effectiveness.
	FilterNegatives, FilterFalsePositives uint64
	// GroupCommits counts commit groups written through the pipeline, and
	// GroupedWrites the records they carried; GroupedWrites/GroupCommits is
	// the average group size.
	GroupCommits, GroupedWrites uint64
	// WALSyncs counts WAL fsyncs issued by group leaders; with SyncWAL,
	// WALSyncs/GroupedWrites is the (amortized) syncs-per-write ratio.
	WALSyncs uint64
	// WALRecoveredRecords and WALRecoveredBatches count what WAL replay
	// recovered at Open; WALRecoveredBytes is the length of the log prefix
	// that replayed cleanly.
	WALRecoveredRecords, WALRecoveredBatches int
	WALRecoveredBytes                        int64
	// WALRecoveryTruncated reports that replay stopped at a torn or
	// corrupt frame instead of a clean end-of-file: the store recovered a
	// crash-truncated prefix rather than the full log.
	WALRecoveryTruncated bool
	// ReadOnly reports the DB has permanently degraded to read-only after
	// a durability failure (a failed WAL or manifest fsync); writes fail
	// with ErrReadOnly while reads continue.
	ReadOnly bool
	// QuarantinedTables counts corrupt sstables renamed aside (.corrupt)
	// and dropped from the live set since Open.
	QuarantinedTables int
	// CleanupFailures counts file removals that failed — orphan cleanup,
	// obsolete-table deletion, aborted flush or compaction outputs. Each
	// is leaked-but-recoverable space the next Open retries.
	CleanupFailures uint64
	// BackgroundRetries counts background-compaction attempts retried
	// after transient failures; BackgroundFailures counts runs that
	// exhausted the retry budget and surfaced through BackgroundErr.
	BackgroundRetries, BackgroundFailures int
}

// Stats returns a snapshot of store statistics.
func (db *DB) Stats() Stats {
	db.mu.RLock()
	defer db.mu.RUnlock()
	st := Stats{
		Tables:           len(db.tables),
		MemtableKeys:     db.mem.Len(),
		Flushes:          db.flushCount,
		MinorCompactions: db.minorCompactions,
		MajorCompactions: db.majorCompactions,
		WriteStalls:      db.writeStalls,
		WriteStallTime:   db.stallTime,
		BytesFlushed:     db.bytesFlushed,
		BytesCompacted:   db.bytesCompacted,
		Generation:       db.generation,
		CompactionState:  db.CompactionState().String(),

		FilterNegatives:      db.filterMetrics.Negatives.Load(),
		FilterFalsePositives: db.filterMetrics.FalsePositives.Load(),

		GroupCommits:         db.groupCommits,
		GroupedWrites:        db.groupedWrites,
		WALSyncs:             db.walSyncs,
		WALRecoveredRecords:  db.walRecovery.Records,
		WALRecoveredBatches:  db.walRecovery.Batches,
		WALRecoveredBytes:    db.walRecovery.GoodBytes,
		WALRecoveryTruncated: db.walRecovery.Truncated,

		ReadOnly:           db.roCause != nil,
		QuarantinedTables:  db.quarantined,
		CleanupFailures:    db.cleanupFails.Load(),
		BackgroundRetries:  db.bgRetries,
		BackgroundFailures: db.bgFailures,
	}
	if len(db.compactionPicks) > 0 {
		st.CompactionPicks = make(map[string]uint64, len(db.compactionPicks))
		for k, v := range db.compactionPicks {
			st.CompactionPicks[k] = v
		}
	}
	if db.blockCache != nil {
		st.BlockCacheHits, st.BlockCacheMisses, _ = db.blockCache.Stats()
		st.BlockCacheShardBalance = db.blockCache.Balance()
	}
	for _, th := range db.tables {
		st.TableBytes += th.rd.FileSize()
	}
	return st
}
