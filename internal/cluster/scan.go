package cluster

import (
	"bytes"
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/kverr"
	"repro/internal/kvnet"
)

// Merged quorum scans. A range scan must see every key the cluster has
// acknowledged, so it queries all live nodes, merges the pages by key
// keeping the newest version of each, filters tombstones and the
// reserved hint namespace, and — the subtle part — only emits keys up to
// the *horizon*: the smallest last-key among nodes whose page came back
// full. Beyond the horizon some node may hold entries its next page
// would reveal, so emitting past it could miss keys or resurrect stale
// versions. The scan tolerates as many unresponsive nodes as quorum
// arithmetic allows (N−R): past that, some key could have all its
// newest-version holders unreachable, and the scan fails rather than
// silently serving stale data.

// keySuccessor returns the smallest key strictly greater than k.
func keySuccessor(k []byte) []byte {
	out := make([]byte, len(k)+1)
	copy(out, k)
	return out
}

// prefixSuccessor returns the smallest key greater than every key with
// the given prefix, or nil (no upper bound) for an all-0xff prefix.
func prefixSuccessor(prefix []byte) []byte {
	for i := len(prefix) - 1; i >= 0; i-- {
		if prefix[i] != 0xff {
			succ := append([]byte(nil), prefix[:i+1]...)
			succ[i]++
			return succ
		}
	}
	return nil
}

// RangePage returns one page of the merged, version-resolved view of
// [start, end): up to limit live entries in key order, plus the start
// key for the next page (nil when the range is exhausted). A page can be
// shorter than limit — or even empty — while next is non-nil: tombstones
// and bookkeeping keys consume page budget without producing entries, so
// callers must loop on next, not on page size.
func (rt *Router) RangePage(ctx context.Context, start, end []byte, limit int) ([]kvnet.ScanEntry, []byte, error) {
	if limit <= 0 || limit > 10000 {
		limit = 10000
	}
	nodes := rt.nodeNames()
	if len(nodes) == 0 {
		return nil, nil, fmt.Errorf("cluster: empty ring: %w", kverr.ErrConfig)
	}
	nEff := rt.opts.ReplicationFactor
	if nEff > len(nodes) {
		nEff = len(nodes)
	}
	rEff := rt.opts.ReadQuorum
	if rEff > nEff {
		rEff = nEff
	}
	allowedDown := nEff - rEff

	type nodePage struct {
		entries []kvnet.ScanEntry
		full    bool
		err     error
	}
	down := make(map[string]bool)
	for _, n := range rt.health.downNodes() {
		down[n] = true
	}
	var (
		mu     sync.Mutex
		pages  []nodePage
		failed int
		first  error
		wg     sync.WaitGroup
	)
	for _, node := range nodes {
		if down[node] {
			failed++
			continue
		}
		wg.Add(1)
		go func(node string) {
			defer wg.Done()
			var entries []kvnet.ScanEntry
			err := rt.do(ctx, node, func(actx context.Context, c *kvnet.Client) error {
				var err error
				entries, err = c.Range(actx, start, end, limit)
				return err
			})
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				failed++
				if first == nil {
					first = err
				}
				return
			}
			pages = append(pages, nodePage{entries: entries, full: len(entries) >= limit})
		}(node)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, nil, fmt.Errorf("cluster: scan abandoned: %w", err)
	}
	if failed > allowedDown {
		if first == nil {
			first = fmt.Errorf("cluster: nodes marked down: %w", kverr.ErrUnavailable)
		}
		return nil, nil, fmt.Errorf("cluster: scan needs all but %d nodes, %d unreachable: %w (first error: %w)", allowedDown, failed, kverr.ErrUnavailable, first)
	}

	// The horizon bounds what this page may emit: the smallest last-key
	// among full pages. Nodes with short pages are exhausted for the
	// whole range, so they never constrain it.
	var horizon []byte
	haveHorizon := false
	for _, p := range pages {
		if !p.full || len(p.entries) == 0 {
			continue
		}
		last := p.entries[len(p.entries)-1].Key
		if !haveHorizon || bytes.Compare(last, horizon) < 0 {
			horizon, haveHorizon = last, true
		}
	}

	best := make(map[string]Record)
	for _, p := range pages {
		for _, e := range p.entries {
			if haveHorizon && bytes.Compare(e.Key, horizon) > 0 {
				continue
			}
			if bytes.HasPrefix(e.Key, []byte(hintPrefix)) {
				continue
			}
			rec, err := decodeRecord(e.Value)
			if err != nil {
				return nil, nil, err
			}
			k := string(e.Key)
			if cur, ok := best[k]; !ok || rec.Version > cur.Version {
				best[k] = rec
			}
		}
	}
	keys := make([]string, 0, len(best))
	for k, rec := range best {
		if !rec.Tombstone {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)

	var next []byte
	if haveHorizon {
		next = keySuccessor(horizon)
	}
	if len(keys) > limit {
		keys = keys[:limit]
		next = keySuccessor([]byte(keys[limit-1]))
	}
	out := make([]kvnet.ScanEntry, len(keys))
	for i, k := range keys {
		out[i] = kvnet.ScanEntry{Key: []byte(k), Value: best[k].Value}
	}
	return out, next, nil
}

// Scan gathers up to limit prefix-matching entries from the cluster and
// returns them merged in global key order, newest version of each key,
// tombstones elided.
func (rt *Router) Scan(ctx context.Context, prefix []byte, limit int) ([]kvnet.ScanEntry, error) {
	if limit <= 0 {
		limit = 10000
	}
	var (
		out   []kvnet.ScanEntry
		start []byte
	)
	if len(prefix) > 0 {
		start = prefix
	}
	end := prefixSuccessor(prefix)
	for len(out) < limit {
		page, next, err := rt.RangePage(ctx, start, end, limit-len(out))
		if err != nil {
			return nil, err
		}
		out = append(out, page...)
		if next == nil {
			break
		}
		start = next
	}
	if len(out) > limit {
		out = out[:limit]
	}
	return out, nil
}
