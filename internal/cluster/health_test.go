package cluster

import (
	"errors"
	"testing"

	"repro/internal/retry"
)

// TestHealthEpochGuardDiscardsStaleVerdicts pins the failure detector's
// race defense: a demotion verdict carries the up-epoch it observed, and
// a promotion in between invalidates it. Without this, a slow goroutine
// delivering a failure from before a node's restart re-demotes the
// recovered node and fails quorums that were healthy.
func TestHealthEpochGuardDiscardsStaleVerdicts(t *testing.T) {
	h := newHealth(retry.Backoff{})
	errBoom := errors.New("boom")

	// A request snapshots the epoch, the node crashes and recovers (one
	// successful ping) before the failure verdict lands: stale, discarded.
	gen := h.generation("n1")
	h.markUp("n1")
	if h.markDown("n1", gen, errBoom) {
		t.Fatal("stale verdict transitioned the node down")
	}
	if h.isDown("n1") {
		t.Fatal("stale verdict demoted a recovered node")
	}

	// A fresh verdict against the current epoch demotes as usual.
	gen = h.generation("n1")
	if !h.markDown("n1", gen, errBoom) {
		t.Fatal("fresh verdict did not transition the node down")
	}
	if !h.isDown("n1") {
		t.Fatal("fresh verdict did not demote the node")
	}
	if got := h.downReasons()["n1"]; !errors.Is(got, errBoom) {
		t.Fatalf("downReasons = %v, want %v", got, errBoom)
	}

	// Every promotion advances the epoch, so each successful ping
	// invalidates all verdicts observed before it — even consecutive ones.
	gen = h.generation("n1")
	h.markUp("n1")
	h.markUp("n1")
	if h.markDown("n1", gen, errBoom) || h.isDown("n1") {
		t.Fatal("verdict from before two promotions demoted the node")
	}
}
