package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/kvnet"
	"repro/internal/lsm"
	"repro/internal/retry"
)

// testNode is a restartable in-process cluster node: an lsm engine
// served over kvnet on a fixed address. Kill tears down the server and
// engine (connections die mid-request, exactly like a crashed process);
// Restart reopens the same directory and rebinds the same address.
type testNode struct {
	t    *testing.T
	dir  string
	addr string

	mu      sync.Mutex
	db      *lsm.DB
	srv     *kvnet.Server
	running bool
}

func startTestNode(t *testing.T) *testNode {
	t.Helper()
	n := &testNode{t: t, dir: t.TempDir()}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	n.addr = ln.Addr().String()
	n.serve(ln)
	t.Cleanup(n.Kill)
	return n
}

// serve opens the engine and serves it on ln; callers hold no lock.
func (n *testNode) serve(ln net.Listener) {
	n.t.Helper()
	db, err := lsm.Open(n.dir, lsm.Options{})
	if err != nil {
		ln.Close()
		n.t.Fatal(err)
	}
	srv := kvnet.NewServer(db)
	go srv.Serve(ln)
	n.mu.Lock()
	n.db, n.srv, n.running = db, srv, true
	n.mu.Unlock()
}

// Kill crashes the node: in-flight requests fail, the address stops
// answering. Idempotent.
func (n *testNode) Kill() {
	n.mu.Lock()
	if !n.running {
		n.mu.Unlock()
		return
	}
	srv, db := n.srv, n.db
	n.running = false
	n.mu.Unlock()
	srv.Close()
	db.Close()
}

// Restart brings a killed node back on its original address with its
// original data directory.
func (n *testNode) Restart() {
	n.t.Helper()
	n.mu.Lock()
	if n.running {
		n.mu.Unlock()
		return
	}
	n.mu.Unlock()
	var ln net.Listener
	var err error
	for attempt := 0; attempt < 50; attempt++ {
		ln, err = net.Listen("tcp", n.addr)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		n.t.Fatalf("rebind %s: %v", n.addr, err)
	}
	n.serve(ln)
}

// chaosOptions are Router options tuned for fast failure detection in
// tests.
func chaosOptions() Options {
	return Options{
		// Generous per-attempt timeout: requests queue on a node's shared
		// connection behind hint and scan traffic, and under the race
		// detector that wait is real; dead nodes are still detected fast
		// (connection refused, 40ms pings), not by timeout.
		RequestTimeout:  1500 * time.Millisecond,
		PingInterval:    40 * time.Millisecond,
		HandoffInterval: 150 * time.Millisecond,
		ProbeBackoff:    retry.Backoff{Base: 20 * time.Millisecond, Max: 150 * time.Millisecond},
	}
}

func startChaosCluster(t *testing.T, n int, opts Options) ([]*testNode, *Router) {
	t.Helper()
	nodes := make([]*testNode, n)
	addrs := make([]string, n)
	for i := range nodes {
		nodes[i] = startTestNode(t)
		addrs[i] = nodes[i].addr
	}
	rt, err := DialCluster(addrs, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rt.Close() })
	return nodes, rt
}

// replicaState is one node's full user-visible keyspace: key → (version,
// tombstone, value), hints excluded.
type replicaState map[string]Record

func nodeState(t *testing.T, addr string) (replicaState, error) {
	c, err := kvnet.Dial(addr)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	ctx := context.Background()
	state := replicaState{}
	var start []byte
	for {
		entries, err := c.Range(ctx, start, nil, 1000)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			if bytes.HasPrefix(e.Key, []byte(hintPrefix)) {
				continue
			}
			rec, err := decodeRecord(e.Value)
			if err != nil {
				return nil, err
			}
			rec.Value = append([]byte(nil), rec.Value...)
			state[string(e.Key)] = rec
		}
		if len(entries) < 1000 {
			return state, nil
		}
		start = append(append([]byte(nil), entries[len(entries)-1].Key...), 0)
	}
}

// replicasConverged reports whether every node holds the identical
// keyspace: same keys, same versions, same tombstone flags, same values.
func replicasConverged(t *testing.T, nodes []*testNode) (bool, string) {
	t.Helper()
	states := make([]replicaState, len(nodes))
	for i, n := range nodes {
		st, err := nodeState(t, n.addr)
		if err != nil {
			return false, fmt.Sprintf("state of %s: %v", n.addr, err)
		}
		states[i] = st
	}
	base := states[0]
	for i, st := range states[1:] {
		if len(st) != len(base) {
			return false, fmt.Sprintf("node %d holds %d keys, node 0 holds %d", i+1, len(st), len(base))
		}
		for k, rec := range base {
			other, ok := st[k]
			if !ok {
				return false, fmt.Sprintf("node %d missing key %q", i+1, k)
			}
			if other.Version != rec.Version || other.Tombstone != rec.Tombstone || !bytes.Equal(other.Value, rec.Value) {
				return false, fmt.Sprintf("node %d diverges on key %q: v%d/%v vs v%d/%v", i+1, k, other.Version, other.Tombstone, rec.Version, rec.Tombstone)
			}
		}
	}
	return true, ""
}

type ackedWrite struct {
	value   string
	deleted bool
}

// TestClusterChaos is the acceptance test for the replicated cluster:
// with N=3, W=2, R=2, killing any single node mid-workload loses no
// acknowledged write, Get and Put keep succeeding throughout, and after
// the node restarts, hinted handoff plus read repair reconverge all
// replicas — verified by a full-keyspace replica diff.
func TestClusterChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test needs real time to kill and recover nodes")
	}
	nodes, rt := startChaosCluster(t, 3, chaosOptions())
	ctx := context.Background()

	const writers = 4
	const keysPerWriter = 25
	var (
		ackMu sync.Mutex
		acked = map[string]ackedWrite{}
	)
	var opErrs []error
	recordErr := func(err error) {
		// Snapshot the failure detector's view at failure time: by the
		// time errors are reported the nodes have recovered.
		err = fmt.Errorf("%w (down at failure: %v)", err, rt.DownReasons())
		ackMu.Lock()
		opErrs = append(opErrs, err)
		ackMu.Unlock()
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			seq := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("chaos-%d-%02d", w, seq%keysPerWriter)
				if seq%10 == 9 {
					if err := rt.Delete(ctx, []byte(key)); err != nil {
						recordErr(fmt.Errorf("delete %s: %w", key, err))
					} else {
						ackMu.Lock()
						acked[key] = ackedWrite{deleted: true}
						ackMu.Unlock()
					}
				} else {
					val := fmt.Sprintf("w%d-seq%d", w, seq)
					if err := rt.Put(ctx, []byte(key), []byte(val)); err != nil {
						recordErr(fmt.Errorf("put %s: %w", key, err))
					} else {
						ackMu.Lock()
						acked[key] = ackedWrite{value: val}
						ackMu.Unlock()
					}
				}
				seq++
				time.Sleep(time.Millisecond)
			}
		}(w)
	}
	// Readers: every key must stay readable (value or clean not-found) at
	// quorum while nodes die.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("chaos-%d-%02d", i%writers, i%keysPerWriter)
				if _, err := rt.Get(ctx, []byte(key)); err != nil && !errors.Is(err, kvnet.ErrNotFound) {
					recordErr(fmt.Errorf("get %s: %w", key, err))
				}
				i++
				time.Sleep(time.Millisecond)
			}
		}(r)
	}

	// The chaos schedule: kill each node in turn while the workload runs,
	// keep it dead long enough for writes to miss it, then bring it back
	// and wait for the failure detector to re-admit it.
	for round := 0; round < 3; round++ {
		victim := nodes[round%len(nodes)]
		victim.Kill()
		time.Sleep(250 * time.Millisecond)
		victim.Restart()
		deadline := time.Now().Add(10 * time.Second)
		for len(rt.DownNodes()) > 0 {
			if time.Now().After(deadline) {
				t.Fatalf("round %d: node %s never re-admitted", round, victim.addr)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	close(stop)
	wg.Wait()

	ackMu.Lock()
	errs := append([]error(nil), opErrs...)
	total := len(acked)
	ackMu.Unlock()
	for _, err := range errs {
		t.Errorf("operation failed during chaos: %v", err)
	}
	if total < writers*keysPerWriter/2 {
		t.Fatalf("workload too small to be meaningful: %d acked keys", total)
	}

	// Convergence: hinted handoff drains, then every replica holds the
	// identical keyspace.
	deadline := time.Now().Add(20 * time.Second)
	for {
		if err := rt.Handoff(ctx); err != nil {
			t.Logf("handoff sweep: %v", err)
		}
		// Reconvergence is hinted handoff plus read repair: a quorum read
		// of every key heals any replica a late repair or missed hint left
		// stale (the cluster is quiescent now, so repairs cannot race new
		// writes).
		for key := range acked {
			if _, err := rt.Get(ctx, []byte(key)); err != nil && !errors.Is(err, kvnet.ErrNotFound) {
				t.Logf("convergence read %s: %v", key, err)
			}
		}
		pending, err := rt.PendingHints(ctx)
		if err == nil && pending == 0 {
			if ok, _ := replicasConverged(t, nodes); ok {
				break
			}
		}
		if time.Now().After(deadline) {
			pending, _ := rt.PendingHints(ctx)
			_, diff := replicasConverged(t, nodes)
			t.Fatalf("replicas never converged: %d hints pending, diff: %s", pending, diff)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// No acknowledged write lost: the router serves exactly what was
	// acked for every key.
	for key, want := range acked {
		got, err := rt.Get(ctx, []byte(key))
		if want.deleted {
			if !errors.Is(err, kvnet.ErrNotFound) {
				t.Errorf("key %s: acked delete, but Get = %q, %v", key, got, err)
			}
			continue
		}
		if err != nil || string(got) != want.value {
			t.Errorf("key %s: acked %q, Get = %q, %v", key, want.value, got, err)
		}
	}

	m := rt.Metrics()
	if m.NodeDownEvents == 0 || m.NodeUpEvents == 0 {
		t.Errorf("failure detector saw no transitions: %+v", m)
	}
	if m.HintsParked == 0 {
		t.Errorf("no hints parked across three node kills: %+v", m)
	}
	t.Logf("chaos metrics: %+v, acked keys: %d", m, total)
}
