package cluster

import (
	"sync"
	"time"

	"repro/internal/retry"
)

// health is the router's failure detector state: one record per node,
// flipped down by failed probes or failed user requests and back up by a
// successful probe. Down nodes are probed on a jittered exponential
// backoff — a crashed peer is retried gently, not hammered — while up
// nodes are probed every ping interval. The state machine is
// deliberately pessimistic-fast, optimistic-slow: one transport failure
// demotes a node immediately (so user requests stop paying its timeout),
// and only a successful ping promotes it back.
type health struct {
	backoff retry.Backoff

	mu    sync.Mutex
	nodes map[string]*nodeHealth
}

type nodeHealth struct {
	down bool
	// failures counts consecutive failed probes while down; it indexes
	// the backoff schedule for nextProbe.
	failures  int
	nextProbe time.Time
	// gen is the node's up-epoch: it advances every time the node is
	// promoted. A demotion verdict carries the epoch it observed and is
	// discarded if the node has been promoted since — otherwise a slow
	// goroutine delivering a failure from before a restart would re-demote
	// a recovered node (and with it, fail quorums that were healthy).
	gen uint64
	// lastErr is the failure that caused the most recent demotion, kept
	// for diagnostics (operators asking "why is this node down?").
	lastErr error
}

func newHealth(probeBackoff retry.Backoff) *health {
	return &health{backoff: probeBackoff, nodes: make(map[string]*nodeHealth)}
}

func (h *health) state(node string) *nodeHealth {
	s, ok := h.nodes[node]
	if !ok {
		s = &nodeHealth{}
		h.nodes[node] = s
	}
	return s
}

// generation returns node's current up-epoch. Callers snapshot it
// before attempting a request and hand it back to markDown with the
// verdict, so that a failure observed before a promotion cannot demote
// the node after it.
func (h *health) generation(node string) uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.state(node).gen
}

// markDown records a failed probe or request against node, remembering
// the error for diagnostics. gen must be the node's generation from
// when the failing attempt began; a stale verdict (the node was
// promoted since) is discarded. It reports whether this call
// transitioned the node up → down.
func (h *health) markDown(node string, gen uint64, err error) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := h.state(node)
	if s.gen != gen {
		return false
	}
	transition := !s.down
	s.down = true
	s.failures++
	s.nextProbe = time.Now().Add(h.backoff.Delay(s.failures - 1))
	s.lastErr = err
	return transition
}

// downReasons returns, for each currently-down node, the error that
// demoted it.
func (h *health) downReasons() map[string]error {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string]error)
	for n, s := range h.nodes {
		if s.down {
			out[n] = s.lastErr
		}
	}
	return out
}

// markUp records a successful probe against node. It reports whether
// this call transitioned the node down → up.
func (h *health) markUp(node string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := h.state(node)
	transition := s.down
	s.down = false
	s.failures = 0
	s.nextProbe = time.Time{}
	s.gen++
	return transition
}

// isDown reports node's current state.
func (h *health) isDown(node string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	s, ok := h.nodes[node]
	return ok && s.down
}

// downNodes returns the currently-down node names, sorted order not
// guaranteed.
func (h *health) downNodes() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []string
	for n, s := range h.nodes {
		if s.down {
			out = append(out, n)
		}
	}
	return out
}

// dueProbes partitions nodes into the ones worth pinging right now: every
// up node (the steady-state liveness check) plus the down nodes whose
// backoff window has elapsed.
func (h *health) dueProbes(nodes []string, now time.Time) []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, 0, len(nodes))
	for _, n := range nodes {
		s, ok := h.nodes[n]
		if !ok || !s.down || !now.Before(s.nextProbe) {
			out = append(out, n)
		}
	}
	return out
}
