package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/kverr"
	"repro/internal/kvnet"
)

func TestRecordRoundTrip(t *testing.T) {
	cases := []Record{
		{Version: 1, Value: []byte("v")},
		{Version: 1<<63 | 42, Value: nil},
		{Version: 7, Tombstone: true},
		{Version: 9, Value: bytes.Repeat([]byte{0xff}, 1000)},
	}
	for _, rec := range cases {
		got, err := decodeRecord(rec.Encode())
		if err != nil {
			t.Fatalf("decode(%+v): %v", rec, err)
		}
		if got.Version != rec.Version || got.Tombstone != rec.Tombstone || !bytes.Equal(got.Value, rec.Value) {
			t.Errorf("round trip %+v -> %+v", rec, got)
		}
	}
	for _, bad := range [][]byte{nil, {0x01}, {0x02, 0, 0, 0, 0, 0, 0, 0, 0, 1}, bytes.Repeat([]byte{0}, 9)} {
		if _, err := decodeRecord(bad); !errors.Is(err, kverr.ErrCorrupt) {
			t.Errorf("decode(%x) = %v, want ErrCorrupt", bad, err)
		}
	}
}

func TestHintBatchRoundTrip(t *testing.T) {
	ops := []kvnet.BatchOp{
		{Key: []byte("a"), Value: Record{Version: 1, Value: []byte("x")}.Encode()},
		{Key: []byte("b/long/key"), Value: Record{Version: 2, Tombstone: true}.Encode()},
	}
	got, err := decodeHintBatch(encodeHintBatch(ops))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ops) {
		t.Fatalf("round trip lost ops: %d != %d", len(got), len(ops))
	}
	for i := range ops {
		if !bytes.Equal(got[i].Key, ops[i].Key) || !bytes.Equal(got[i].Value, ops[i].Value) {
			t.Errorf("op %d mangled", i)
		}
	}
	if _, err := decodeHintBatch([]byte{0x05, 0x01}); !errors.Is(err, kverr.ErrCorrupt) {
		t.Errorf("truncated hint batch decoded: %v", err)
	}
}

func TestHintKeyTarget(t *testing.T) {
	key := hintKey("10.0.0.1:4242", 99, 7, 3)
	if !bytes.HasPrefix(key, []byte(hintPrefix)) {
		t.Fatal("hint key outside reserved prefix")
	}
	if got := hintTarget(key); got != "10.0.0.1:4242" {
		t.Errorf("hintTarget = %q", got)
	}
	if got := hintTarget([]byte("user-key")); got != "" {
		t.Errorf("hintTarget on user key = %q", got)
	}
}

func TestHLCMonotonic(t *testing.T) {
	var c hlc
	prev := c.Next()
	for i := 0; i < 10000; i++ {
		next := c.Next()
		if next <= prev {
			t.Fatalf("stamp regressed: %d after %d", next, prev)
		}
		prev = next
	}
	c.Observe(prev + 1000)
	if got := c.Next(); got <= prev+1000 {
		t.Errorf("Next after Observe = %d, want > %d", got, prev+1000)
	}
}

func TestOptionsValidation(t *testing.T) {
	addrs := []string{"127.0.0.1:1"}
	bad := []Options{
		{ReplicationFactor: 3, WriteQuorum: 1, ReadQuorum: 1},  // no overlap
		{ReplicationFactor: 2, WriteQuorum: 3, ReadQuorum: 2},  // W > N
		{ReplicationFactor: -1, WriteQuorum: 1, ReadQuorum: 1}, // nonsense
	}
	for _, opts := range bad {
		if _, err := DialCluster(addrs, opts); !errors.Is(err, kverr.ErrConfig) {
			t.Errorf("DialCluster(%+v) = %v, want ErrConfig", opts, err)
		}
	}
}

func TestRouterRejectsReservedKeys(t *testing.T) {
	rt := startCluster(t, 1)
	ctx := context.Background()
	key := append([]byte(hintPrefix), "oops"...)
	if err := rt.Put(ctx, key, []byte("v")); !errors.Is(err, kverr.ErrConfig) {
		t.Errorf("Put on reserved key = %v, want ErrConfig", err)
	}
	if _, err := rt.Get(ctx, key); !errors.Is(err, kverr.ErrConfig) {
		t.Errorf("Get on reserved key = %v, want ErrConfig", err)
	}
	if err := rt.Delete(ctx, key); !errors.Is(err, kverr.ErrConfig) {
		t.Errorf("Delete on reserved key = %v, want ErrConfig", err)
	}
	if err := rt.Write(ctx, []kvnet.BatchOp{{Key: key, Value: []byte("v")}}); !errors.Is(err, kverr.ErrConfig) {
		t.Errorf("Write on reserved key = %v, want ErrConfig", err)
	}
}

// TestQuorumSurvivesNodeDown: with N=3, W=R=2 a single dead node must
// not fail writes or reads, and its missed writes park as hints.
func TestQuorumSurvivesNodeDown(t *testing.T) {
	nodes, rt := startChaosCluster(t, 3, chaosOptions())
	ctx := context.Background()

	nodes[1].Kill()
	for i := 0; i < 50; i++ {
		key := []byte(fmt.Sprintf("down-%03d", i))
		if err := rt.Put(ctx, key, []byte(fmt.Sprint(i))); err != nil {
			t.Fatalf("Put with node down: %v", err)
		}
		v, err := rt.Get(ctx, key)
		if err != nil || string(v) != fmt.Sprint(i) {
			t.Fatalf("Get with node down = %q, %v", v, err)
		}
	}
	if err := rt.Delete(ctx, []byte("down-000")); err != nil {
		t.Fatalf("Delete with node down: %v", err)
	}
	if _, err := rt.Get(ctx, []byte("down-000")); !errors.Is(err, kverr.ErrNotFound) {
		t.Fatalf("deleted key with node down: %v", err)
	}

	// Wait for hints to park (they are written in the background).
	deadline := time.Now().Add(5 * time.Second)
	for rt.Metrics().HintsParked == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no hints parked for the dead replica")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Recovery: the node comes back, handoff replays its hints, and its
	// local state converges with the rest of the cluster.
	nodes[1].Restart()
	deadline = time.Now().Add(15 * time.Second)
	for {
		if len(rt.DownNodes()) == 0 {
			if err := rt.Handoff(ctx); err == nil {
				if pending, err := rt.PendingHints(ctx); err == nil && pending == 0 {
					if ok, _ := replicasConverged(t, nodes); ok {
						break
					}
				}
			}
		}
		if time.Now().After(deadline) {
			pending, _ := rt.PendingHints(ctx)
			_, diff := replicasConverged(t, nodes)
			t.Fatalf("recovery never converged: %d hints pending, %s", pending, diff)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if m := rt.Metrics(); m.HintsReplayed == 0 {
		t.Errorf("recovery converged without replaying hints: %+v", m)
	}
}

// TestReadRepair: a replica holding a stale version is rewritten with
// the quorum winner after a read observes the divergence.
func TestReadRepair(t *testing.T) {
	nodes, rt := startChaosCluster(t, 3, chaosOptions())
	ctx := context.Background()
	key := []byte("repair-me")

	if err := rt.Put(ctx, key, []byte("new")); err != nil {
		t.Fatal(err)
	}
	// Corrupt one replica with an older version, bypassing the router.
	stale := rt.ReplicaNodes(key)[0]
	c, err := kvnet.Dial(stale)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Put(ctx, key, Record{Version: 1, Value: []byte("old")}.Encode()); err != nil {
		t.Fatal(err)
	}

	// A quorum read resolves to the newest version...
	v, err := rt.Get(ctx, key)
	if err != nil || string(v) != "new" {
		t.Fatalf("Get over divergent replicas = %q, %v", v, err)
	}
	// ...and repairs the stale replica in the background.
	deadline := time.Now().Add(5 * time.Second)
	for {
		raw, err := c.Get(ctx, key)
		if err == nil {
			rec, err := decodeRecord(raw)
			if err != nil {
				t.Fatal(err)
			}
			if string(rec.Value) == "new" {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("stale replica never repaired")
		}
		// Reads trigger repair; keep reading.
		if _, err := rt.Get(ctx, key); err != nil {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The counter increments just after the repair write lands; give it a
	// beat.
	for rt.Metrics().ReadRepairs == 0 {
		if time.Now().After(deadline) {
			t.Errorf("repair happened but was not counted: %+v", rt.Metrics())
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	_ = nodes
}

// TestSingleNodeClusterDegenerates: a one-node "cluster" clamps its
// quorums and behaves like a plain client.
func TestSingleNodeClusterQuorumClamp(t *testing.T) {
	rt := startCluster(t, 1)
	ctx := context.Background()
	if err := rt.Put(ctx, []byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, err := rt.Get(ctx, []byte("k"))
	if err != nil || string(v) != "v" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if err := rt.Delete(ctx, []byte("k")); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Get(ctx, []byte("k")); !errors.Is(err, kverr.ErrNotFound) {
		t.Fatalf("deleted key = %v", err)
	}
}

// TestWriteBatchReplicates: a router batch lands on every replica and
// later ops win over earlier ones for duplicate keys.
func TestWriteBatchReplicates(t *testing.T) {
	nodes, rt := startChaosCluster(t, 3, chaosOptions())
	ctx := context.Background()
	batch := []kvnet.BatchOp{
		{Key: []byte("b1"), Value: []byte("v1")},
		{Key: []byte("b2"), Value: []byte("v2")},
		{Key: []byte("b1"), Value: []byte("v1-final")},
		{Key: []byte("b3"), Delete: true},
	}
	if err := rt.Write(ctx, batch); err != nil {
		t.Fatal(err)
	}
	if v, err := rt.Get(ctx, []byte("b1")); err != nil || string(v) != "v1-final" {
		t.Fatalf("b1 = %q, %v", v, err)
	}
	if v, err := rt.Get(ctx, []byte("b2")); err != nil || string(v) != "v2" {
		t.Fatalf("b2 = %q, %v", v, err)
	}
	if _, err := rt.Get(ctx, []byte("b3")); !errors.Is(err, kverr.ErrNotFound) {
		t.Fatalf("b3 = %v", err)
	}
	// Every node holds the batch (RF=3 on a 3-node ring), and they agree.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if ok, _ := replicasConverged(t, nodes); ok {
			break
		}
		if time.Now().After(deadline) {
			_, diff := replicasConverged(t, nodes)
			t.Fatalf("batch replicas never converged: %s", diff)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestScanSurvivesNodeDown: merged scans tolerate N−R unreachable nodes
// and still return the complete, newest-version view.
func TestScanSurvivesNodeDown(t *testing.T) {
	nodes, rt := startChaosCluster(t, 3, chaosOptions())
	ctx := context.Background()
	for i := 0; i < 120; i++ {
		if err := rt.Put(ctx, []byte(fmt.Sprintf("s:%04d", i)), []byte(fmt.Sprint(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.Delete(ctx, []byte("s:0007")); err != nil {
		t.Fatal(err)
	}
	nodes[2].Kill()
	// Wait for the detector so the scan doesn't pay the dead node's
	// timeout, then scan.
	deadline := time.Now().Add(5 * time.Second)
	for len(rt.DownNodes()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("detector never noticed the kill")
		}
		time.Sleep(10 * time.Millisecond)
	}
	entries, err := rt.Scan(ctx, []byte("s:"), 0)
	if err != nil {
		t.Fatalf("scan with node down: %v", err)
	}
	if len(entries) != 119 {
		t.Fatalf("scan with node down returned %d entries, want 119", len(entries))
	}
	for i := 1; i < len(entries); i++ {
		if bytes.Compare(entries[i-1].Key, entries[i].Key) >= 0 {
			t.Fatal("merged scan out of order")
		}
	}
	for _, e := range entries {
		if string(e.Key) == "s:0007" {
			t.Fatal("deleted key resurfaced in scan")
		}
	}
}
