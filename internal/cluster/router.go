package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/kverr"
	"repro/internal/kvnet"
	"repro/internal/retry"
)

// Options configures a Router's replication and failure-handling
// behavior. The zero value is usable: DialCluster fills in the defaults
// below.
type Options struct {
	// VNodes is the number of virtual nodes per physical node on the
	// ring (default 64).
	VNodes int

	// ReplicationFactor (N) is how many distinct nodes store each key.
	// WriteQuorum (W) and ReadQuorum (R) are how many replicas must
	// acknowledge a write and answer a read; R+W > N is required so any
	// read quorum overlaps any write quorum and observes the newest
	// acknowledged version. Defaults: N=3, W=2, R=2. Rings smaller than
	// N degrade gracefully: quorums clamp to the actual replica-set
	// size, so a single-node "cluster" behaves like a plain client.
	ReplicationFactor int
	WriteQuorum       int
	ReadQuorum        int

	// RequestTimeout bounds each per-replica request attempt (default
	// 2s); a dead-but-routable node costs at most this before failover.
	// DialTimeout bounds connection establishment (default 5s).
	RequestTimeout time.Duration
	DialTimeout    time.Duration

	// PingInterval is how often live nodes are health-probed (default
	// 500ms). Down nodes are probed on ProbeBackoff's jittered
	// exponential schedule instead, so a crashed peer is not hammered.
	// HandoffInterval is how often parked hints are swept for replay
	// (default 2s); a node coming back is also swept immediately.
	PingInterval    time.Duration
	HandoffInterval time.Duration
	ProbeBackoff    retry.Backoff

	// RetryBackoff paces the single in-flight re-attempt a replica read
	// or write gets before it counts against the quorum (default
	// 25ms–250ms, jittered). Replica operations are idempotent — records
	// carry version stamps and the newest wins — so retrying is always
	// safe; without it one transient hiccup on a live replica while
	// another node is down would fail an otherwise healthy quorum.
	RetryBackoff retry.Backoff
}

func (o Options) withDefaults() Options {
	if o.VNodes <= 0 {
		o.VNodes = 64
	}
	if o.ReplicationFactor == 0 {
		o.ReplicationFactor = 3
	}
	if o.WriteQuorum == 0 {
		o.WriteQuorum = o.ReplicationFactor/2 + 1
	}
	if o.ReadQuorum == 0 {
		o.ReadQuorum = o.ReplicationFactor/2 + 1
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 2 * time.Second
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.PingInterval <= 0 {
		o.PingInterval = 500 * time.Millisecond
	}
	if o.HandoffInterval <= 0 {
		o.HandoffInterval = 2 * time.Second
	}
	if o.ProbeBackoff == (retry.Backoff{}) {
		o.ProbeBackoff = retry.Backoff{Base: 250 * time.Millisecond, Max: 5 * time.Second}
	}
	if o.RetryBackoff == (retry.Backoff{}) {
		o.RetryBackoff = retry.Backoff{Base: 25 * time.Millisecond, Max: 250 * time.Millisecond}
	}
	return o
}

func (o Options) validate() error {
	n, w, r := o.ReplicationFactor, o.WriteQuorum, o.ReadQuorum
	if n < 1 || w < 1 || r < 1 {
		return fmt.Errorf("cluster: replication factor %d, write quorum %d, read quorum %d must all be positive: %w", n, w, r, kverr.ErrConfig)
	}
	if w > n || r > n {
		return fmt.Errorf("cluster: quorums W=%d R=%d cannot exceed replication factor N=%d: %w", w, r, n, kverr.ErrConfig)
	}
	if r+w <= n {
		return fmt.Errorf("cluster: R+W must exceed N for read-write quorum overlap (got R=%d W=%d N=%d): %w", r, w, n, kverr.ErrConfig)
	}
	return nil
}

// Metrics is a point-in-time snapshot of a Router's replication
// counters.
type Metrics struct {
	Nodes             int
	DownNodes         int
	ReplicationFactor int
	WriteQuorum       int
	ReadQuorum        int

	// HintsParked counts writes parked for an unreachable replica;
	// HintsReplayed counts hints successfully delivered to a recovered
	// replica; HintsDropped counts hints lost because no live node could
	// hold them. ReadRepairs counts stale replicas rewritten after a
	// divergent quorum read. NodeDownEvents / NodeUpEvents count
	// failure-detector transitions.
	HintsParked    uint64
	HintsReplayed  uint64
	HintsDropped   uint64
	ReadRepairs    uint64
	NodeDownEvents uint64
	NodeUpEvents   uint64
}

// Router is a quorum cluster client. Every key is replicated on N
// distinct ring nodes; writes fan out to all N and acknowledge at W,
// reads at R, with R+W > N so the quorums overlap and the newest
// acknowledged version always wins. Each stored value carries a hybrid
// logical-clock stamp (see Record); divergent replicas are detected on
// read and repaired in the background, writes that miss a down replica
// park a hint on a live node and a handoff loop replays it when the peer
// returns, and a ping-based failure detector demotes dead nodes before
// user requests pay their timeouts. Safe for concurrent use.
type Router struct {
	opts   Options
	clock  hlc
	health *health

	// token distinguishes this router's hint keys from other routers'
	// concurrently parked hints; hintSeq orders them.
	token   uint32
	hintSeq atomic.Uint64

	// baseCtx is cancelled by Close; background work (probes, handoff,
	// read repair, straggler replica writes) runs under it.
	baseCtx     context.Context
	cancelBase  context.CancelFunc
	handoffKick chan struct{}
	loops       sync.WaitGroup // health + handoff loops
	bg          sync.WaitGroup // per-operation background work

	// deferredHints holds hints no live holder would accept (e.g. every
	// peer was unreachable for a beat); the handoff loop re-parks them.
	hintMu        sync.Mutex
	deferredHints []deferredHint

	hintsParked   atomic.Uint64
	hintsReplayed atomic.Uint64
	hintsDropped  atomic.Uint64
	readRepairs   atomic.Uint64
	nodeDown      atomic.Uint64
	nodeUp        atomic.Uint64

	mu      sync.RWMutex
	ring    *Ring
	conns   map[string]*kvnet.Client
	closing bool // Close has begun draining; makes Close idempotent
	closed  bool
}

// DialCluster connects to every address and builds a quorum router over
// them. Node names are the addresses themselves. Unreachable nodes join
// the ring demoted and are re-admitted by the failure detector when they
// answer pings; only a cluster with no reachable node at all is rejected
// as a configuration error.
func DialCluster(addrs []string, opts Options) (*Router, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("cluster: no addresses: %w", kverr.ErrConfig)
	}
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	rt := &Router{
		opts:        opts,
		health:      newHealth(opts.ProbeBackoff),
		token:       uint32(time.Now().UnixNano()),
		baseCtx:     ctx,
		cancelBase:  cancel,
		handoffKick: make(chan struct{}, 1),
		ring:        NewRing(opts.VNodes),
		conns:       make(map[string]*kvnet.Client),
	}
	// A quorum client must come up even when some replicas are down —
	// that is the whole point. An unreachable node joins the ring marked
	// down (the health loop probes and re-admits it; requests redial
	// lazily); only a cluster with no reachable node at all fails the
	// dial, since that is indistinguishable from a bad address list.
	reachable := 0
	var firstErr error
	for _, addr := range addrs {
		rt.ring.AddNode(addr)
		c, err := rt.dial(addr)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("cluster: dial %s: %w", addr, err)
			}
			rt.noteFailure(addr, rt.health.generation(addr), err)
			continue
		}
		rt.conns[addr] = c
		reachable++
	}
	if reachable == 0 {
		rt.Close()
		return nil, fmt.Errorf("%w: no reachable node: %w", kverr.ErrUnavailable, firstErr)
	}
	rt.loops.Add(2)
	go rt.healthLoop()
	go rt.handoffLoop()
	return rt, nil
}

// Close drains in-flight background work, then stops the loops and
// closes every node connection. The drain matters for hint durability:
// a write that acked at W may still have a straggler replica attempt in
// flight whose failure parks a hint — a short-lived client (the CLI, a
// batch job) that tore connections down first would silently abandon
// those hints and leave the down replica to converge by read repair
// alone. So Close first waits for per-operation background goroutines
// with the connections still usable, then makes one bounded attempt to
// park anything still deferred in memory, and only then tears down.
func (rt *Router) Close() error {
	rt.mu.Lock()
	if rt.closing {
		rt.mu.Unlock()
		return nil
	}
	rt.closing = true
	rt.mu.Unlock()

	rt.bg.Wait()
	drainCtx, cancelDrain := context.WithTimeout(rt.baseCtx, rt.opts.RequestTimeout)
	rt.reparkDeferred(drainCtx)
	cancelDrain()

	rt.mu.Lock()
	rt.closed = true
	conns := rt.conns
	rt.conns = map[string]*kvnet.Client{}
	rt.mu.Unlock()

	rt.cancelBase()
	var first error
	for _, c := range conns {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	rt.loops.Wait()
	rt.bg.Wait()
	return first
}

// Metrics returns a snapshot of the router's replication counters.
func (rt *Router) Metrics() Metrics {
	rt.mu.RLock()
	nodes := len(rt.ring.nodes)
	rt.mu.RUnlock()
	return Metrics{
		Nodes:             nodes,
		DownNodes:         len(rt.health.downNodes()),
		ReplicationFactor: rt.opts.ReplicationFactor,
		WriteQuorum:       rt.opts.WriteQuorum,
		ReadQuorum:        rt.opts.ReadQuorum,
		HintsParked:       rt.hintsParked.Load(),
		HintsReplayed:     rt.hintsReplayed.Load(),
		HintsDropped:      rt.hintsDropped.Load(),
		ReadRepairs:       rt.readRepairs.Load(),
		NodeDownEvents:    rt.nodeDown.Load(),
		NodeUpEvents:      rt.nodeUp.Load(),
	}
}

// DownNodes returns the nodes the failure detector currently considers
// unreachable.
func (rt *Router) DownNodes() []string {
	return rt.health.downNodes()
}

// Owner returns the primary owner of key — the first member of its
// replica set.
func (rt *Router) Owner(key []byte) string {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.ring.Lookup(key)
}

// ReplicaNodes returns the full replica set for key.
func (rt *Router) ReplicaNodes(key []byte) []string {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.ring.ReplicaSet(key, rt.opts.ReplicationFactor)
}

func (rt *Router) nodeNames() []string {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.ring.Nodes()
}

func (rt *Router) dial(addr string) (*kvnet.Client, error) {
	conn, err := net.DialTimeout("tcp", addr, rt.opts.DialTimeout)
	if err != nil {
		return nil, err
	}
	return kvnet.NewClient(conn), nil
}

// client returns node's connection, re-dialing if the cached one was
// closed or poisoned.
func (rt *Router) client(node string) (*kvnet.Client, error) {
	rt.mu.RLock()
	c, ok := rt.conns[node]
	closed := rt.closed
	rt.mu.RUnlock()
	if closed {
		return nil, fmt.Errorf("cluster: router closed: %w", kverr.ErrClosed)
	}
	if ok && c.Healthy() {
		return c, nil
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.closed {
		return nil, fmt.Errorf("cluster: router closed: %w", kverr.ErrClosed)
	}
	// Recheck under the write lock: another goroutine may have re-dialed.
	if c, ok := rt.conns[node]; ok && c.Healthy() {
		return c, nil
	}
	c, err := rt.dial(node)
	if err != nil {
		return nil, fmt.Errorf("cluster: redial %s: %w", node, err)
	}
	rt.conns[node] = c
	return c, nil
}

// noteFailure reports a node-level failure to the failure detector. gen
// is the node's up-epoch from when the failing attempt began; a stale
// verdict (the node was promoted since) is discarded rather than
// re-demoting a recovered node.
func (rt *Router) noteFailure(node string, gen uint64, err error) {
	if rt.health.markDown(node, gen, err) {
		rt.nodeDown.Add(1)
	}
}

// DownReasons reports, for each node the failure detector currently
// considers down, the error that demoted it.
func (rt *Router) DownReasons() map[string]error {
	return rt.health.downReasons()
}

// kickHandoff nudges the handoff loop to sweep now (non-blocking).
func (rt *Router) kickHandoff() {
	select {
	case rt.handoffKick <- struct{}{}:
	default:
	}
}

// do runs fn against node's connection with the per-request timeout
// applied. A cached connection can turn out stale only once it is used —
// the server's idle timeout reaps quiet connections silently — so a
// transport-level failure (the connection is poisoned afterwards) gets
// one retry on a fresh connection; every protocol operation is
// idempotent, so the retry is safe even if the failed attempt reached
// the server. Failures that are the node's fault (not the caller's
// cancelled context) are reported to the failure detector.
func (rt *Router) do(ctx context.Context, node string, fn func(ctx context.Context, c *kvnet.Client) error) error {
	for attempt := 0; ; attempt++ {
		gen := rt.health.generation(node)
		c, err := rt.client(node)
		if err != nil {
			if ctx.Err() == nil && rt.baseCtx.Err() == nil {
				rt.noteFailure(node, gen, err)
			}
			return err
		}
		actx, cancel := context.WithTimeout(ctx, rt.opts.RequestTimeout)
		err = fn(actx, c)
		cancel()
		if err == nil {
			return nil
		}
		if c.Healthy() || ctx.Err() != nil {
			// A typed server-side error (the connection survived), or the
			// caller's own context expired — nothing to retry and no
			// verdict on the node.
			return err
		}
		if attempt >= 1 {
			rt.noteFailure(node, gen, err)
			return err
		}
	}
}

// terminalReplicaErr reports whether a replica error is a typed engine
// answer a retry cannot change: the server processed the request and
// said no. Transport failures, timeouts and ErrStalled (compaction
// backpressure — exactly the transient condition backoff exists for)
// are worth re-attempting.
func terminalReplicaErr(err error) bool {
	return errors.Is(err, kverr.ErrReadOnly) ||
		errors.Is(err, kverr.ErrCorrupt) ||
		errors.Is(err, kverr.ErrBatchTooLarge) ||
		errors.Is(err, kverr.ErrConfig) ||
		errors.Is(err, kverr.ErrClosed)
}

// doRetry runs a replica operation through do, giving transport-level
// failures one paced re-attempt (Options.RetryBackoff) before the
// error counts against the quorum. Replica reads and writes are
// idempotent — records carry version stamps — so the retry is always
// safe; without it a single hiccup on a live replica while another
// node is down fails an otherwise healthy quorum.
func (rt *Router) doRetry(ctx context.Context, node string, fn func(ctx context.Context, c *kvnet.Client) error) error {
	var last error
	err := retry.Do(ctx, 2, rt.opts.RetryBackoff, func(int) error {
		last = rt.do(ctx, node, fn)
		if last == nil || terminalReplicaErr(last) {
			return nil // done: success, or an answer no retry can change
		}
		return last
	})
	if last != nil {
		return last
	}
	return err // ctx expired before the first attempt ran
}

// checkUserKey rejects keys in the cluster's reserved namespace.
func checkUserKey(key []byte) error {
	if bytes.HasPrefix(key, []byte(hintPrefix)) {
		return fmt.Errorf("cluster: key %q uses the reserved hint prefix: %w", key, kverr.ErrConfig)
	}
	return nil
}

// repOp is one logical write in flight: a key, its encoded record, and
// the replica set it targets.
type repOp struct {
	key      []byte
	rec      []byte
	replicas []string
}

// nodeResult is one replica's verdict on its share of a quorum write.
type nodeResult struct {
	node string
	err  error
}

// quorumWrite replicates a set of logical writes: each op fans out to
// its full replica set and the call succeeds once every op has W acks.
// Replicas the failure detector considers down are not attempted (unless
// an op cannot reach quorum without them, covering detector false
// positives); their share is parked as a hint immediately. Replicas that
// fail or straggle after quorum get their share parked too, so a
// successful return still converges to N live copies.
func (rt *Router) quorumWrite(ctx context.Context, ops []repOp) error {
	if len(ops) == 0 {
		return nil
	}
	need := make([]int, len(ops)) // effective W per op
	capacity := make([]int, len(ops))
	attempt := make(map[string][]int) // node -> op indexes to attempt
	skip := make(map[string][]int)    // down node -> op indexes parked immediately

	down := make(map[string]bool)
	for _, n := range rt.health.downNodes() {
		down[n] = true
	}
	for i, op := range ops {
		if len(op.replicas) == 0 {
			return fmt.Errorf("cluster: empty ring: %w", kverr.ErrConfig)
		}
		w := rt.opts.WriteQuorum
		if w > len(op.replicas) {
			w = len(op.replicas)
		}
		need[i] = w
		capacity[i] = len(op.replicas)
		live := 0
		for _, n := range op.replicas {
			if !down[n] {
				live++
			}
		}
		for _, n := range op.replicas {
			// A down replica is attempted anyway while the live replicas
			// have no failure slack (live <= w): the detector may be wrong
			// — or a beat behind a node that just recovered — and in the
			// slackless regime a single live-replica hiccup would fail an
			// otherwise reachable quorum. Only with spare live replicas is
			// the down node skipped outright, so a blackholed peer costs
			// nothing. Quorum still comes first: the write acknowledges on
			// the first w acks, never waiting on the presumed-dead node.
			if !down[n] || live <= w {
				attempt[n] = append(attempt[n], i)
			} else {
				skip[n] = append(skip[n], i)
			}
		}
	}

	results := make(chan nodeResult, len(attempt))
	for node, idxs := range attempt {
		batch := make([]kvnet.BatchOp, len(idxs))
		for j, i := range idxs {
			batch[j] = kvnet.BatchOp{Key: ops[i].key, Value: ops[i].rec}
		}
		node := node
		rt.bg.Add(1)
		go func() {
			defer rt.bg.Done()
			err := rt.doRetry(ctx, node, func(actx context.Context, c *kvnet.Client) error {
				return c.Write(actx, batch)
			})
			if err != nil && ctx.Err() == nil {
				// Park a hint only when the replica, not the caller's
				// context, is at fault: a cancelled caller got an error
				// back and expects the write not to converge.
				rt.parkHintFor(node, batch)
			}
			results <- nodeResult{node: node, err: err}
		}()
	}
	for node, idxs := range skip {
		batch := make([]kvnet.BatchOp, len(idxs))
		for j, i := range idxs {
			batch[j] = kvnet.BatchOp{Key: ops[i].key, Value: ops[i].rec}
		}
		rt.parkHintFor(node, batch)
	}

	acks := make([]int, len(ops))
	fails := make([]int, len(ops))
	for i := range ops {
		// Skipped replicas count as failed up front.
		fails[i] = capacity[i] - replicaAttempts(ops[i].replicas, attempt)
	}
	var replicaErrs []error
	if impossible(need, fails, capacity) {
		return fmt.Errorf("cluster: write quorum unreachable (replicas down): %w", kverr.ErrUnavailable)
	}
	quorumFailed := func() error {
		cause := errors.Join(replicaErrs...)
		if cause == nil {
			cause = fmt.Errorf("cluster: insufficient replicas")
		}
		skipped := make([]string, 0, len(skip))
		for n := range skip {
			skipped = append(skipped, n)
		}
		sort.Strings(skipped)
		return fmt.Errorf("cluster: write quorum failed (skipped down: %v): %w (replica errors: %w)", skipped, kverr.ErrUnavailable, cause)
	}
	pending := len(attempt)
	for pending > 0 {
		select {
		case res := <-results:
			pending--
			for _, i := range attempt[res.node] {
				if res.err == nil {
					acks[i]++
				} else {
					fails[i]++
				}
			}
			if res.err != nil {
				replicaErrs = append(replicaErrs, fmt.Errorf("%s: %w", res.node, res.err))
			}
			if satisfied(acks, need) {
				return nil
			}
			if impossible(need, fails, capacity) {
				return quorumFailed()
			}
		case <-ctx.Done():
			return fmt.Errorf("cluster: write abandoned: %w", ctx.Err())
		}
	}
	if satisfied(acks, need) {
		return nil
	}
	return quorumFailed()
}

func replicaAttempts(replicas []string, attempt map[string][]int) int {
	n := 0
	for _, r := range replicas {
		if _, ok := attempt[r]; ok {
			n++
		}
	}
	return n
}

func satisfied(acks, need []int) bool {
	for i := range acks {
		if acks[i] < need[i] {
			return false
		}
	}
	return true
}

func impossible(need, fails, capacity []int) bool {
	for i := range need {
		if capacity[i]-fails[i] < need[i] {
			return true
		}
	}
	return false
}

// Put replicates key → value at write quorum.
func (rt *Router) Put(ctx context.Context, key, value []byte) error {
	if err := checkUserKey(key); err != nil {
		return err
	}
	rec := Record{Version: rt.clock.Next(), Value: value}
	return rt.quorumWrite(ctx, []repOp{{key: key, rec: rec.Encode(), replicas: rt.ReplicaNodes(key)}})
}

// Delete replicates a tombstone for key at write quorum. A delete is a
// versioned write like any other: replicas that missed it converge via
// hints and read repair instead of resurrecting the key.
func (rt *Router) Delete(ctx context.Context, key []byte) error {
	if err := checkUserKey(key); err != nil {
		return err
	}
	rec := Record{Version: rt.clock.Next(), Tombstone: true}
	return rt.quorumWrite(ctx, []repOp{{key: key, rec: rec.Encode(), replicas: rt.ReplicaNodes(key)}})
}

// Write replicates a batch of operations at write quorum. Each replica
// applies its share atomically through the engine's group commit;
// cross-replica atomicity is the quorum's (a torn batch converges via
// hints and read repair, and versions assigned in op order keep
// last-op-wins semantics for duplicate keys).
func (rt *Router) Write(ctx context.Context, batch []kvnet.BatchOp) error {
	if len(batch) == 0 {
		return nil
	}
	ops := make([]repOp, len(batch))
	for i, op := range batch {
		if err := checkUserKey(op.Key); err != nil {
			return err
		}
		rec := Record{Version: rt.clock.Next(), Tombstone: op.Delete}
		if !op.Delete {
			rec.Value = op.Value
		}
		ops[i] = repOp{key: op.Key, rec: rec.Encode(), replicas: rt.ReplicaNodes(op.Key)}
	}
	return rt.quorumWrite(ctx, ops)
}

// readResult is one replica's answer to a quorum read.
type readResult struct {
	node string
	rec  Record
	err  error
}

// quorumGet reads key from its replica set and resolves the newest
// version. All live replicas are queried (down ones only when needed to
// reach quorum); the call needs R answers to succeed. Replicas observed
// stale — an older version, or missing the key entirely — are repaired
// in the background with the winning record.
func (rt *Router) quorumGet(ctx context.Context, key []byte) (Record, error) {
	replicas := rt.ReplicaNodes(key)
	if len(replicas) == 0 {
		return Record{}, fmt.Errorf("cluster: empty ring: %w", kverr.ErrConfig)
	}
	r := rt.opts.ReadQuorum
	if r > len(replicas) {
		r = len(replicas)
	}
	down := make(map[string]bool)
	for _, n := range rt.health.downNodes() {
		down[n] = true
	}
	queried := make([]string, 0, len(replicas))
	live := 0
	for _, n := range replicas {
		if !down[n] {
			queried = append(queried, n)
			live++
		}
	}
	// Query presumed-down replicas too while the live set has no slack
	// (live <= r): the detector may be wrong or a beat behind a restart,
	// and slackless reads would otherwise fail on one live hiccup.
	if live <= r {
		queried = append(queried[:0], replicas...)
	}

	results := make(chan readResult, len(queried))
	for _, node := range queried {
		node := node
		rt.bg.Add(1)
		go func() {
			defer rt.bg.Done()
			var rec Record
			err := rt.doRetry(ctx, node, func(actx context.Context, c *kvnet.Client) error {
				raw, err := c.Get(actx, key)
				if err != nil {
					if errors.Is(err, kverr.ErrNotFound) {
						rec = Record{} // version 0: replica has never seen the key
						return nil
					}
					return err
				}
				rec, err = decodeRecord(raw)
				return err
			})
			results <- readResult{node: node, rec: rec, err: err}
		}()
	}

	// Collect answers from every live replica (their divergence is what
	// read repair fixes), but never wait on a presumed-down one: once r
	// answers are in and only down replicas are outstanding, resolve. A
	// blackholed peer costs the read nothing.
	outstanding := make(map[string]bool, len(queried))
	for _, n := range queried {
		outstanding[n] = true
	}
	onlyDownOutstanding := func() bool {
		for n := range outstanding {
			if !down[n] {
				return false
			}
		}
		return true
	}
	var (
		answers  []readResult
		firstErr error
	)
	var replicaErrs []error
	for len(outstanding) > 0 {
		if len(answers) >= r && onlyDownOutstanding() {
			break
		}
		select {
		case res := <-results:
			delete(outstanding, res.node)
			if res.err != nil {
				replicaErrs = append(replicaErrs, fmt.Errorf("%s: %w", res.node, res.err))
				continue
			}
			answers = append(answers, res)
		case <-ctx.Done():
			return Record{}, fmt.Errorf("cluster: read abandoned: %w", ctx.Err())
		}
	}
	if len(answers) < r {
		if firstErr = errors.Join(replicaErrs...); firstErr == nil {
			firstErr = fmt.Errorf("cluster: insufficient replicas")
		}
		return Record{}, fmt.Errorf("cluster: read quorum failed (%d/%d answers from %v): %w (replica errors: %w)", len(answers), r, queried, kverr.ErrUnavailable, firstErr)
	}

	winner := answers[0]
	for _, a := range answers[1:] {
		if a.rec.Version > winner.rec.Version {
			winner = a
		}
	}
	rt.clock.Observe(winner.rec.Version)
	if winner.rec.Version != 0 {
		rt.repairStale(key, winner.rec, answers)
	}
	return winner.rec, nil
}

// repairStale rewrites the winning record onto replicas that answered
// with an older version (or none at all), in the background.
func (rt *Router) repairStale(key []byte, winner Record, answers []readResult) {
	enc := winner.Encode()
	for _, a := range answers {
		if a.rec.Version >= winner.Version {
			continue
		}
		node := a.node
		rt.bg.Add(1)
		go func() {
			defer rt.bg.Done()
			// Re-check the replica's version immediately before writing: a
			// newer quorum write may have landed since this read answered,
			// and a blind put of the old winner would regress the replica.
			// The check narrows that race from the whole read-to-repair
			// latency to one round trip; a repair that still loses the
			// sliver is healed by the next read of the key.
			cur, err := rt.recordVersionOn(rt.baseCtx, node, key)
			if err != nil || cur >= winner.Version {
				return
			}
			err = rt.do(rt.baseCtx, node, func(actx context.Context, c *kvnet.Client) error {
				return c.Put(actx, key, enc)
			})
			if err == nil {
				rt.readRepairs.Add(1)
			}
		}()
	}
}

// Get reads key at read quorum, resolving replica divergence to the
// newest version. Deleted and never-written keys both return
// kverr.ErrNotFound.
func (rt *Router) Get(ctx context.Context, key []byte) ([]byte, error) {
	if err := checkUserKey(key); err != nil {
		return nil, err
	}
	rec, err := rt.quorumGet(ctx, key)
	if err != nil {
		return nil, err
	}
	if rec.Version == 0 || rec.Tombstone {
		return nil, kverr.ErrNotFound
	}
	return rec.Value, nil
}

// forAll runs fn against every live node concurrently and collects
// per-node errors. Nodes the failure detector considers down are skipped
// — maintenance fan-outs (flush, compaction, stats) are best-effort over
// the reachable cluster, and a down node catches up through hints, not
// through a flush it cannot receive.
func (rt *Router) forAll(ctx context.Context, fn func(ctx context.Context, node string, c *kvnet.Client) error) map[string]error {
	down := make(map[string]bool)
	for _, n := range rt.health.downNodes() {
		down[n] = true
	}
	var (
		wg   sync.WaitGroup
		emu  sync.Mutex
		errs = make(map[string]error)
	)
	for _, node := range rt.nodeNames() {
		if down[node] {
			continue
		}
		wg.Add(1)
		go func(node string) {
			defer wg.Done()
			err := rt.do(ctx, node, func(actx context.Context, c *kvnet.Client) error { return fn(actx, node, c) })
			emu.Lock()
			errs[node] = err
			emu.Unlock()
		}(node)
	}
	wg.Wait()
	return errs
}

// FlushAll flushes every live node's memtable; the first error is
// returned.
func (rt *Router) FlushAll(ctx context.Context) error {
	for node, err := range rt.forAll(ctx, func(actx context.Context, _ string, c *kvnet.Client) error { return c.Flush(actx) }) {
		if err != nil {
			return fmt.Errorf("cluster: flush %s: %w", node, err)
		}
	}
	return nil
}

// CompactAll triggers a major compaction on every live node with the
// given strategy, returning per-node results.
func (rt *Router) CompactAll(ctx context.Context, strategy string, k int) (map[string]*kvnet.CompactInfo, error) {
	var (
		mu  sync.Mutex
		out = make(map[string]*kvnet.CompactInfo)
	)
	errs := rt.forAll(ctx, func(actx context.Context, node string, c *kvnet.Client) error {
		info, err := c.Compact(actx, strategy, k)
		if err != nil {
			return err
		}
		mu.Lock()
		out[node] = info
		mu.Unlock()
		return nil
	})
	for node, err := range errs {
		if err != nil {
			return out, fmt.Errorf("cluster: compact %s: %w", node, err)
		}
	}
	return out, nil
}

// StatsAll fetches statistics from every live node.
func (rt *Router) StatsAll(ctx context.Context) (map[string]*kvnet.StatsInfo, error) {
	var (
		mu  sync.Mutex
		out = make(map[string]*kvnet.StatsInfo)
	)
	errs := rt.forAll(ctx, func(actx context.Context, node string, c *kvnet.Client) error {
		st, err := c.Stats(actx)
		if err != nil {
			return err
		}
		mu.Lock()
		out[node] = st
		mu.Unlock()
		return nil
	})
	for node, err := range errs {
		if err != nil {
			return out, fmt.Errorf("cluster: stats %s: %w", node, err)
		}
	}
	return out, nil
}

// healthLoop probes nodes on PingInterval: up nodes every tick, down
// nodes on their backoff schedule. A down node answering a ping is
// promoted and the handoff loop kicked so its parked hints replay
// immediately.
func (rt *Router) healthLoop() {
	defer rt.loops.Done()
	t := time.NewTicker(rt.opts.PingInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.baseCtx.Done():
			return
		case <-t.C:
		}
		var wg sync.WaitGroup
		for _, node := range rt.health.dueProbes(rt.nodeNames(), time.Now()) {
			wg.Add(1)
			go func(node string) {
				defer wg.Done()
				rt.probe(node)
			}(node)
		}
		wg.Wait()
	}
}

// probe pings one node and records the verdict.
func (rt *Router) probe(node string) {
	gen := rt.health.generation(node)
	ctx, cancel := context.WithTimeout(rt.baseCtx, rt.opts.RequestTimeout)
	defer cancel()
	err := rt.do(ctx, node, func(actx context.Context, c *kvnet.Client) error { return c.Ping(actx) })
	if err != nil {
		if rt.baseCtx.Err() == nil {
			rt.noteFailure(node, gen, err)
		}
		return
	}
	if rt.health.markUp(node) {
		rt.nodeUp.Add(1)
		rt.kickHandoff()
	}
}
