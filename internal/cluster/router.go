package cluster

import (
	"bytes"
	"fmt"
	"sort"
	"sync"

	"repro/internal/kvnet"
)

// Router is a cluster client: it owns one kvnet.Client per node and routes
// each key to its owner via the ring. Safe for concurrent use.
type Router struct {
	mu    sync.RWMutex
	ring  *Ring
	conns map[string]*kvnet.Client
}

// DialCluster connects to every address and builds a router. Node names
// are the addresses themselves.
func DialCluster(addrs []string, vnodesPerNode int) (*Router, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("cluster: no addresses")
	}
	rt := &Router{ring: NewRing(vnodesPerNode), conns: make(map[string]*kvnet.Client)}
	for _, addr := range addrs {
		c, err := kvnet.Dial(addr)
		if err != nil {
			rt.Close()
			return nil, fmt.Errorf("cluster: dial %s: %w", addr, err)
		}
		rt.conns[addr] = c
		rt.ring.AddNode(addr)
	}
	return rt, nil
}

// Close closes every node connection.
func (rt *Router) Close() error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var first error
	for _, c := range rt.conns {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	rt.conns = map[string]*kvnet.Client{}
	return first
}

// Owner returns the node name that owns key.
func (rt *Router) Owner(key []byte) string {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.ring.Lookup(key)
}

func (rt *Router) clientFor(key []byte) (*kvnet.Client, string, error) {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	node := rt.ring.Lookup(key)
	c, ok := rt.conns[node]
	if !ok {
		return nil, "", fmt.Errorf("cluster: no connection for node %q", node)
	}
	return c, node, nil
}

// Put routes a write to the owning node.
func (rt *Router) Put(key, value []byte) error {
	c, _, err := rt.clientFor(key)
	if err != nil {
		return err
	}
	return c.Put(key, value)
}

// Get routes a read to the owning node.
func (rt *Router) Get(key []byte) ([]byte, error) {
	c, _, err := rt.clientFor(key)
	if err != nil {
		return nil, err
	}
	return c.Get(key)
}

// Delete routes a delete to the owning node.
func (rt *Router) Delete(key []byte) error {
	c, _, err := rt.clientFor(key)
	if err != nil {
		return err
	}
	return c.Delete(key)
}

// forAll runs fn against every node concurrently and collects per-node
// errors.
func (rt *Router) forAll(fn func(node string, c *kvnet.Client) error) map[string]error {
	rt.mu.RLock()
	conns := make(map[string]*kvnet.Client, len(rt.conns))
	for n, c := range rt.conns {
		conns[n] = c
	}
	rt.mu.RUnlock()

	var (
		wg   sync.WaitGroup
		emu  sync.Mutex
		errs = make(map[string]error, len(conns))
	)
	for node, c := range conns {
		wg.Add(1)
		go func(node string, c *kvnet.Client) {
			defer wg.Done()
			err := fn(node, c)
			emu.Lock()
			errs[node] = err
			emu.Unlock()
		}(node, c)
	}
	wg.Wait()
	return errs
}

// FlushAll flushes every node's memtable; the first error is returned.
func (rt *Router) FlushAll() error {
	for node, err := range rt.forAll(func(_ string, c *kvnet.Client) error { return c.Flush() }) {
		if err != nil {
			return fmt.Errorf("cluster: flush %s: %w", node, err)
		}
	}
	return nil
}

// CompactAll triggers a major compaction on every node with the given
// strategy, returning per-node results.
func (rt *Router) CompactAll(strategy string, k int) (map[string]*kvnet.CompactInfo, error) {
	var (
		mu  sync.Mutex
		out = make(map[string]*kvnet.CompactInfo)
	)
	errs := rt.forAll(func(node string, c *kvnet.Client) error {
		info, err := c.Compact(strategy, k)
		if err != nil {
			return err
		}
		mu.Lock()
		out[node] = info
		mu.Unlock()
		return nil
	})
	for node, err := range errs {
		if err != nil {
			return out, fmt.Errorf("cluster: compact %s: %w", node, err)
		}
	}
	return out, nil
}

// StatsAll fetches statistics from every node.
func (rt *Router) StatsAll() (map[string]*kvnet.StatsInfo, error) {
	var (
		mu  sync.Mutex
		out = make(map[string]*kvnet.StatsInfo)
	)
	errs := rt.forAll(func(node string, c *kvnet.Client) error {
		st, err := c.Stats()
		if err != nil {
			return err
		}
		mu.Lock()
		out[node] = st
		mu.Unlock()
		return nil
	})
	for node, err := range errs {
		if err != nil {
			return out, fmt.Errorf("cluster: stats %s: %w", node, err)
		}
	}
	return out, nil
}

// Scan gathers up to limit prefix-matching entries from every node and
// returns them merged in global key order.
func (rt *Router) Scan(prefix []byte, limit int) ([]kvnet.ScanEntry, error) {
	var (
		mu  sync.Mutex
		all []kvnet.ScanEntry
	)
	errs := rt.forAll(func(node string, c *kvnet.Client) error {
		entries, err := c.Scan(prefix, limit)
		if err != nil {
			return err
		}
		mu.Lock()
		all = append(all, entries...)
		mu.Unlock()
		return nil
	})
	for node, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("cluster: scan %s: %w", node, err)
		}
	}
	sort.Slice(all, func(i, j int) bool { return bytes.Compare(all[i].Key, all[j].Key) < 0 })
	if limit > 0 && len(all) > limit {
		all = all[:limit]
	}
	return all, nil
}
