package cluster

import (
	"bytes"
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/kvnet"
)

// Router is a cluster client: it owns one kvnet.Client per node and routes
// each key to its owner via the ring. Safe for concurrent use. A node's
// connection is re-dialed transparently when the previous one was poisoned
// by a cancelled request or reaped by the server's idle timeout — a kvnet
// connection never recovers in place (the frame stream loses sync), so
// recovery lives here.
type Router struct {
	mu     sync.RWMutex
	ring   *Ring
	conns  map[string]*kvnet.Client
	closed bool
}

// DialCluster connects to every address and builds a router. Node names
// are the addresses themselves.
func DialCluster(addrs []string, vnodesPerNode int) (*Router, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("cluster: no addresses")
	}
	rt := &Router{ring: NewRing(vnodesPerNode), conns: make(map[string]*kvnet.Client)}
	for _, addr := range addrs {
		c, err := kvnet.Dial(addr)
		if err != nil {
			rt.Close()
			return nil, fmt.Errorf("cluster: dial %s: %w", addr, err)
		}
		rt.conns[addr] = c
		rt.ring.AddNode(addr)
	}
	return rt, nil
}

// Close closes every node connection.
func (rt *Router) Close() error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.closed = true
	var first error
	for _, c := range rt.conns {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	rt.conns = map[string]*kvnet.Client{}
	return first
}

// Owner returns the node name that owns key.
func (rt *Router) Owner(key []byte) string {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.ring.Lookup(key)
}

// client returns node's connection, re-dialing if the cached one was
// closed or poisoned.
func (rt *Router) client(node string) (*kvnet.Client, error) {
	rt.mu.RLock()
	c, ok := rt.conns[node]
	closed := rt.closed
	rt.mu.RUnlock()
	if closed {
		return nil, fmt.Errorf("cluster: router closed")
	}
	if ok && c.Healthy() {
		return c, nil
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.closed {
		return nil, fmt.Errorf("cluster: router closed")
	}
	// Recheck under the write lock: another goroutine may have re-dialed.
	if c, ok := rt.conns[node]; ok && c.Healthy() {
		return c, nil
	}
	c, err := kvnet.Dial(node)
	if err != nil {
		return nil, fmt.Errorf("cluster: redial %s: %w", node, err)
	}
	rt.conns[node] = c
	return c, nil
}

// ownerNode resolves the ring owner of key.
func (rt *Router) ownerNode(key []byte) (string, error) {
	rt.mu.RLock()
	node := rt.ring.Lookup(key)
	rt.mu.RUnlock()
	if node == "" {
		return "", fmt.Errorf("cluster: empty ring")
	}
	return node, nil
}

// do runs fn against node's connection. A cached connection can turn out
// stale only once it is used — the server's idle timeout reaps quiet
// connections silently, and the client cannot tell until the next I/O
// fails — so a transport-level failure (the connection is poisoned
// afterwards) gets one retry on a fresh connection. Every protocol
// operation is idempotent, so the single retry is safe even if the failed
// attempt reached the server.
func (rt *Router) do(ctx context.Context, node string, fn func(c *kvnet.Client) error) error {
	c, err := rt.client(node)
	if err != nil {
		return err
	}
	err = fn(c)
	if err == nil || c.Healthy() || ctx.Err() != nil {
		// Success, a typed server-side error (the connection survived), or
		// the caller's own context expired — nothing to retry.
		return err
	}
	c, rerr := rt.client(node)
	if rerr != nil {
		return err
	}
	return fn(c)
}

// Put routes a write to the owning node.
func (rt *Router) Put(ctx context.Context, key, value []byte) error {
	node, err := rt.ownerNode(key)
	if err != nil {
		return err
	}
	return rt.do(ctx, node, func(c *kvnet.Client) error { return c.Put(ctx, key, value) })
}

// Get routes a read to the owning node.
func (rt *Router) Get(ctx context.Context, key []byte) ([]byte, error) {
	node, err := rt.ownerNode(key)
	if err != nil {
		return nil, err
	}
	var v []byte
	err = rt.do(ctx, node, func(c *kvnet.Client) error {
		var err error
		v, err = c.Get(ctx, key)
		return err
	})
	return v, err
}

// Delete routes a delete to the owning node.
func (rt *Router) Delete(ctx context.Context, key []byte) error {
	node, err := rt.ownerNode(key)
	if err != nil {
		return err
	}
	return rt.do(ctx, node, func(c *kvnet.Client) error { return c.Delete(ctx, key) })
}

// forAll runs fn against every node concurrently and collects per-node
// errors. Each node's call goes through do, so poisoned or idle-reaped
// connections are re-dialed (and the operation retried once) before the
// error surfaces.
func (rt *Router) forAll(ctx context.Context, fn func(node string, c *kvnet.Client) error) map[string]error {
	rt.mu.RLock()
	nodes := make([]string, 0, len(rt.conns))
	for n := range rt.conns {
		nodes = append(nodes, n)
	}
	rt.mu.RUnlock()

	var (
		wg   sync.WaitGroup
		emu  sync.Mutex
		errs = make(map[string]error, len(nodes))
	)
	for _, node := range nodes {
		wg.Add(1)
		go func(node string) {
			defer wg.Done()
			err := rt.do(ctx, node, func(c *kvnet.Client) error { return fn(node, c) })
			emu.Lock()
			errs[node] = err
			emu.Unlock()
		}(node)
	}
	wg.Wait()
	return errs
}

// FlushAll flushes every node's memtable; the first error is returned.
func (rt *Router) FlushAll(ctx context.Context) error {
	for node, err := range rt.forAll(ctx, func(_ string, c *kvnet.Client) error { return c.Flush(ctx) }) {
		if err != nil {
			return fmt.Errorf("cluster: flush %s: %w", node, err)
		}
	}
	return nil
}

// CompactAll triggers a major compaction on every node with the given
// strategy, returning per-node results.
func (rt *Router) CompactAll(ctx context.Context, strategy string, k int) (map[string]*kvnet.CompactInfo, error) {
	var (
		mu  sync.Mutex
		out = make(map[string]*kvnet.CompactInfo)
	)
	errs := rt.forAll(ctx, func(node string, c *kvnet.Client) error {
		info, err := c.Compact(ctx, strategy, k)
		if err != nil {
			return err
		}
		mu.Lock()
		out[node] = info
		mu.Unlock()
		return nil
	})
	for node, err := range errs {
		if err != nil {
			return out, fmt.Errorf("cluster: compact %s: %w", node, err)
		}
	}
	return out, nil
}

// StatsAll fetches statistics from every node.
func (rt *Router) StatsAll(ctx context.Context) (map[string]*kvnet.StatsInfo, error) {
	var (
		mu  sync.Mutex
		out = make(map[string]*kvnet.StatsInfo)
	)
	errs := rt.forAll(ctx, func(node string, c *kvnet.Client) error {
		st, err := c.Stats(ctx)
		if err != nil {
			return err
		}
		mu.Lock()
		out[node] = st
		mu.Unlock()
		return nil
	})
	for node, err := range errs {
		if err != nil {
			return out, fmt.Errorf("cluster: stats %s: %w", node, err)
		}
	}
	return out, nil
}

// Scan gathers up to limit prefix-matching entries from every node and
// returns them merged in global key order.
func (rt *Router) Scan(ctx context.Context, prefix []byte, limit int) ([]kvnet.ScanEntry, error) {
	var (
		mu  sync.Mutex
		all []kvnet.ScanEntry
	)
	errs := rt.forAll(ctx, func(node string, c *kvnet.Client) error {
		entries, err := c.Scan(ctx, prefix, limit)
		if err != nil {
			return err
		}
		mu.Lock()
		all = append(all, entries...)
		mu.Unlock()
		return nil
	})
	for node, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("cluster: scan %s: %w", node, err)
		}
	}
	sort.Slice(all, func(i, j int) bool { return bytes.Compare(all[i].Key, all[j].Key) < 0 })
	if limit > 0 && len(all) > limit {
		all = all[:limit]
	}
	return all, nil
}
