package cluster

import (
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/kvnet"
	"repro/internal/lsm"
)

func TestKeyHashShared(t *testing.T) {
	// KeyHash is the placement hash shared with the in-process shard
	// router (internal/store): deterministic, and sensitive to every byte.
	if KeyHash([]byte("key-1")) != KeyHash([]byte("key-1")) {
		t.Fatal("KeyHash not deterministic")
	}
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		seen[KeyHash([]byte(fmt.Sprintf("key-%d", i)))] = true
	}
	if len(seen) != 1000 {
		t.Errorf("KeyHash collided on %d/1000 similar keys", 1000-len(seen))
	}
}

func TestRingLookupStable(t *testing.T) {
	r := NewRing(64)
	r.AddNode("a")
	r.AddNode("b")
	r.AddNode("c")
	for i := 0; i < 100; i++ {
		key := []byte(fmt.Sprintf("key-%d", i))
		if r.Lookup(key) != r.Lookup(key) {
			t.Fatalf("lookup not deterministic")
		}
	}
	if got := len(r.Nodes()); got != 3 {
		t.Errorf("Nodes = %d", got)
	}
	r.AddNode("a") // idempotent
	if got := len(r.Nodes()); got != 3 {
		t.Errorf("Nodes after duplicate add = %d", got)
	}
}

func TestRingBalance(t *testing.T) {
	r := NewRing(128)
	for _, n := range []string{"a", "b", "c", "d"} {
		r.AddNode(n)
	}
	counts := map[string]int{}
	const keys = 20000
	for i := 0; i < keys; i++ {
		counts[r.Lookup([]byte(fmt.Sprintf("user%08d", i)))]++
	}
	for node, c := range counts {
		share := float64(c) / keys
		if share < 0.10 || share > 0.45 {
			t.Errorf("node %s owns %.1f%% of keys; want roughly balanced", node, share*100)
		}
	}
}

func TestRingRemoveNodeRedistributesMinimally(t *testing.T) {
	r := NewRing(128)
	for _, n := range []string{"a", "b", "c", "d"} {
		r.AddNode(n)
	}
	before := map[string]string{}
	const keys = 5000
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("key-%06d", i)
		before[k] = r.Lookup([]byte(k))
	}
	r.RemoveNode("d")
	moved, fromD := 0, 0
	for k, owner := range before {
		now := r.Lookup([]byte(k))
		if owner == "d" {
			fromD++
			if now == "d" {
				t.Fatalf("removed node still owns %s", k)
			}
			continue
		}
		if now != owner {
			moved++
		}
	}
	if moved != 0 {
		t.Errorf("%d keys not owned by the removed node moved; consistent hashing should move none", moved)
	}
	if fromD == 0 {
		t.Errorf("removed node owned no keys before removal")
	}
	r.RemoveNode("d") // idempotent
}

func TestEmptyRing(t *testing.T) {
	r := NewRing(8)
	if got := r.Lookup([]byte("k")); got != "" {
		t.Errorf("Lookup on empty ring = %q", got)
	}
}

// startCluster brings up n servers and a router over them.
func startCluster(t *testing.T, n int) *Router {
	t.Helper()
	addrs := make([]string, 0, n)
	for i := 0; i < n; i++ {
		db, err := lsm.Open(t.TempDir(), lsm.Options{})
		if err != nil {
			t.Fatal(err)
		}
		srv := kvnet.NewServer(db)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(ln)
		t.Cleanup(func() {
			srv.Close()
			db.Close()
		})
		addrs = append(addrs, ln.Addr().String())
	}
	rt, err := DialCluster(addrs, Options{VNodes: 64})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rt.Close() })
	return rt
}

func TestRouterCRUD(t *testing.T) {
	rt := startCluster(t, 3)
	const n = 600
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%05d", i))
		if err := rt.Put(context.Background(), k, []byte(fmt.Sprint(i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%05d", i))
		v, err := rt.Get(context.Background(), k)
		if err != nil || string(v) != fmt.Sprint(i) {
			t.Fatalf("Get(%s) = %q, %v", k, v, err)
		}
	}
	if err := rt.Delete(context.Background(), []byte("key-00042")); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Get(context.Background(), []byte("key-00042")); err != kvnet.ErrNotFound {
		t.Errorf("deleted key Get = %v", err)
	}
	// Keys actually spread across nodes.
	stats, err := rt.StatsAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 3 {
		t.Fatalf("stats from %d nodes", len(stats))
	}
	if err := rt.FlushAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	stats, err = rt.StatsAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	nodesWithData := 0
	for _, st := range stats {
		if st.Tables > 0 {
			nodesWithData++
		}
	}
	if nodesWithData != 3 {
		t.Errorf("only %d/3 nodes hold data", nodesWithData)
	}
}

func TestRouterCompactAll(t *testing.T) {
	rt := startCluster(t, 3)
	for gen := 0; gen < 3; gen++ {
		for i := 0; i < 300; i++ {
			k := []byte(fmt.Sprintf("key-%05d", i))
			if err := rt.Put(context.Background(), k, []byte(fmt.Sprintf("v%d", gen))); err != nil {
				t.Fatal(err)
			}
		}
		if err := rt.FlushAll(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	infos, err := rt.CompactAll(context.Background(), "BT(I)", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 3 {
		t.Fatalf("compacted %d nodes", len(infos))
	}
	compactions := 0
	for _, info := range infos {
		if info.TablesBefore >= 2 {
			compactions++
			if info.Merges == 0 || info.BytesWritten == 0 {
				t.Errorf("empty compaction result: %+v", info)
			}
		}
	}
	if compactions == 0 {
		t.Errorf("no node had enough tables to compact")
	}
	stats, err := rt.StatsAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for node, st := range stats {
		if st.Tables > 1 {
			t.Errorf("node %s still has %d tables", node, st.Tables)
		}
	}
	// Reads still correct after cluster-wide compaction.
	v, err := rt.Get(context.Background(), []byte("key-00123"))
	if err != nil || string(v) != "v2" {
		t.Errorf("Get after compact = %q, %v", v, err)
	}
}

func TestRouterScanMergesSorted(t *testing.T) {
	rt := startCluster(t, 3)
	for i := 0; i < 200; i++ {
		if err := rt.Put(context.Background(), []byte(fmt.Sprintf("p:%04d", i)), []byte("x")); err != nil {
			t.Fatal(err)
		}
		if err := rt.Put(context.Background(), []byte(fmt.Sprintf("q:%04d", i)), []byte("y")); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := rt.Scan(context.Background(), []byte("p:"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 200 {
		t.Fatalf("scan returned %d entries", len(entries))
	}
	for i := 1; i < len(entries); i++ {
		if string(entries[i-1].Key) >= string(entries[i].Key) {
			t.Fatalf("merged scan out of order")
		}
	}
	limited, err := rt.Scan(context.Background(), nil, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(limited) != 50 {
		t.Errorf("limited cluster scan = %d", len(limited))
	}
}

func TestDialClusterErrors(t *testing.T) {
	if _, err := DialCluster(nil, Options{}); err == nil {
		t.Errorf("empty cluster accepted")
	}
	if _, err := DialCluster([]string{"127.0.0.1:1"}, Options{}); err == nil {
		t.Errorf("cluster with no reachable node accepted")
	}
}

// TestDialClusterToleratesDownNode: dialing a cluster while one replica
// is down must succeed — availability under node failure is the point of
// the quorum client — with the dead node demoted so the health loop
// re-admits it when it returns.
func TestDialClusterToleratesDownNode(t *testing.T) {
	addrs := []string{"127.0.0.1:1"} // the permanently-down replica
	for i := 0; i < 2; i++ {
		db, err := lsm.Open(t.TempDir(), lsm.Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		srv := kvnet.NewServer(db)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(ln)
		defer srv.Close()
		addrs = append(addrs, ln.Addr().String())
	}

	rt, err := DialCluster(addrs, Options{
		ReplicationFactor: 3, WriteQuorum: 2, ReadQuorum: 2,
	})
	if err != nil {
		t.Fatalf("dial with one node down: %v", err)
	}
	defer rt.Close()
	if down := rt.DownNodes(); len(down) != 1 || down[0] != "127.0.0.1:1" {
		t.Fatalf("down nodes = %v, want the unreachable one", down)
	}
	ctx := context.Background()
	if err := rt.Put(ctx, []byte("k"), []byte("v")); err != nil {
		t.Fatalf("put through degraded cluster: %v", err)
	}
	got, err := rt.Get(ctx, []byte("k"))
	if err != nil || string(got) != "v" {
		t.Fatalf("get through degraded cluster = %q, %v", got, err)
	}
}

// TestRouterRedialsReapedConnection: a router whose node connection was
// reaped by the server's idle timeout must re-dial transparently instead
// of failing every subsequent operation.
func TestRouterRedialsReapedConnection(t *testing.T) {
	db, err := lsm.Open(t.TempDir(), lsm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	srv := kvnet.NewServer(db)
	srv.IdleTimeout = 50 * time.Millisecond
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	rt, err := DialCluster([]string{ln.Addr().String()}, Options{VNodes: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	ctx := context.Background()
	if err := rt.Put(ctx, []byte("k"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	// Let the server reap the idle connection, then keep using the router.
	time.Sleep(300 * time.Millisecond)
	if err := rt.Put(ctx, []byte("k"), []byte("v2")); err != nil {
		t.Fatalf("Put after idle reap = %v, want transparent redial", err)
	}
	if v, err := rt.Get(ctx, []byte("k")); err != nil || string(v) != "v2" {
		t.Fatalf("Get after redial = %q, %v", v, err)
	}
}
