package cluster

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/kverr"
)

// Replica versioning. Every user value a Router stores on a node is
// wrapped in a small envelope — the Record — carrying a hybrid
// logical-clock stamp and a tombstone flag. The stamp makes replica
// divergence detectable (a quorum read compares versions and repairs the
// stale copies) and conflict resolution deterministic (last writer wins,
// highest stamp is the winner). Tombstones make deletes replicable: a
// delete is a versioned write like any other, so a replica that missed it
// cannot resurrect the key through read repair.

// hlc is a hybrid logical clock: stamps are wall-clock milliseconds in
// the high 48 bits and a logical counter in the low 16, advanced by CAS
// so stamps from one clock are strictly monotonic even when the wall
// clock stalls or steps backwards. Observing stamps from other routers
// keeps clocks loosely coupled without coordination.
type hlc struct {
	last atomic.Uint64
}

const hlcLogicalBits = 16

// Next returns a stamp strictly greater than every stamp this clock has
// issued or observed.
func (c *hlc) Next() uint64 {
	for {
		last := c.last.Load()
		now := uint64(time.Now().UnixMilli()) << hlcLogicalBits
		next := now
		if next <= last {
			next = last + 1
		}
		if c.last.CompareAndSwap(last, next) {
			return next
		}
	}
}

// Observe advances the clock past a stamp seen on a replica, so this
// router's next write outranks it.
func (c *hlc) Observe(v uint64) {
	for {
		last := c.last.Load()
		if v <= last || c.last.CompareAndSwap(last, v) {
			return
		}
	}
}

// Record is the versioned envelope around a user value as stored on a
// replica node.
type Record struct {
	Version   uint64
	Tombstone bool
	Value     []byte
}

// Record wire layout: format byte, flags byte (bit 0 = tombstone),
// big-endian version, then the raw user value.
const (
	recordFormat    = 0x01
	recordHdrLen    = 1 + 1 + 8
	recordTombstone = 0x01
)

// Encode serializes the record.
func (r Record) Encode() []byte {
	out := make([]byte, recordHdrLen+len(r.Value))
	out[0] = recordFormat
	if r.Tombstone {
		out[1] |= recordTombstone
	}
	binary.BigEndian.PutUint64(out[2:recordHdrLen], r.Version)
	copy(out[recordHdrLen:], r.Value)
	return out
}

// decodeRecord parses a stored record. A malformed envelope means the
// value was written around the Router (or damaged), which the cluster
// treats as corruption: the versioning invariant it relies on is gone.
func decodeRecord(b []byte) (Record, error) {
	if len(b) < recordHdrLen || b[0] != recordFormat {
		return Record{}, fmt.Errorf("cluster: undecodable replica record (%d bytes): %w", len(b), kverr.ErrCorrupt)
	}
	return Record{
		Version:   binary.BigEndian.Uint64(b[2:recordHdrLen]),
		Tombstone: b[1]&recordTombstone != 0,
		Value:     b[recordHdrLen:],
	}, nil
}
