// Package cluster replicates a key space over multiple kvnet servers —
// the deployment shape the paper assumes: "A given server stores multiple
// keys" and runs compaction locally over its own sstables (Section 1).
// Consistent hashing places every key on a replica set of N distinct
// nodes, and the Router is a quorum client over those sets: writes fan
// out to all N replicas and acknowledge at W, reads resolve the newest
// version from R answers (R+W > N so read and write quorums always
// overlap). A ping-based failure detector routes requests away from dead
// peers, writes a down replica misses park as hints on live nodes and
// replay when it returns (hinted handoff), and divergent replicas are
// repaired on read. Maintenance operations (flush, major compaction) fan
// out cluster-wide, so the compaction strategies can be exercised per
// node — compaction stays a purely local decision on every replica.
package cluster

import (
	"fmt"
	"sort"
)

// Ring is a consistent-hash ring with virtual nodes. It is not safe for
// concurrent mutation; Router guards it.
type Ring struct {
	replicas int
	vnodes   []vnode
	nodes    map[string]bool
}

type vnode struct {
	hash uint64
	node string
}

// NewRing creates a ring with the given number of virtual nodes per
// physical node; more virtual nodes smooth the key distribution. replicas
// must be positive (64 is a reasonable default).
func NewRing(replicas int) *Ring {
	if replicas <= 0 {
		replicas = 64
	}
	return &Ring{replicas: replicas, nodes: make(map[string]bool)}
}

// KeyHash maps a key to the ring's hash space: FNV-1a with a 64-bit
// finalizer for avalanche on similar keys. It is the single hash shared by
// every layer that partitions the key space — the network ring below and
// the in-process shard router in internal/store — so a key's placement is
// computed the same way whether shards live in one process or many.
func KeyHash(key []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime
	}
	// Finalize for better avalanche on similar keys.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

func ringHash(s string) uint64 { return KeyHash([]byte(s)) }

// AddNode inserts a node (idempotent).
func (r *Ring) AddNode(name string) {
	if r.nodes[name] {
		return
	}
	r.nodes[name] = true
	for i := 0; i < r.replicas; i++ {
		r.vnodes = append(r.vnodes, vnode{hash: ringHash(fmt.Sprintf("%s#%d", name, i)), node: name})
	}
	sort.Slice(r.vnodes, func(a, b int) bool { return r.vnodes[a].hash < r.vnodes[b].hash })
}

// RemoveNode deletes a node and its virtual nodes (idempotent).
func (r *Ring) RemoveNode(name string) {
	if !r.nodes[name] {
		return
	}
	delete(r.nodes, name)
	kept := r.vnodes[:0]
	for _, v := range r.vnodes {
		if v.node != name {
			kept = append(kept, v)
		}
	}
	r.vnodes = kept
}

// Nodes returns the node names, sorted.
func (r *Ring) Nodes() []string {
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the node owning key — the first member of its replica
// set — or "" on an empty ring.
func (r *Ring) Lookup(key []byte) string {
	rs := r.ReplicaSet(key, 1)
	if len(rs) == 0 {
		return ""
	}
	return rs[0]
}

// ReplicaSet returns the n distinct nodes replicating key: the ring walk
// clockwise from the key's position, skipping virtual nodes of already
// chosen physical nodes. The first member is the key's primary owner.
// Fewer than n nodes in the ring yields all of them (a degenerate set the
// caller's quorums clamp to); an empty ring yields nil.
//
// The walk order gives replication the same minimal-movement property as
// single-owner consistent hashing: adding or removing a node changes a
// key's replica set only where that node enters or leaves the walk — the
// surviving members keep their positions.
func (r *Ring) ReplicaSet(key []byte, n int) []string {
	if len(r.vnodes) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := KeyHash(key)
	i := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for j := 0; j < len(r.vnodes) && len(out) < n; j++ {
		v := r.vnodes[(i+j)%len(r.vnodes)]
		if !seen[v.node] {
			seen[v.node] = true
			out = append(out, v.node)
		}
	}
	return out
}
