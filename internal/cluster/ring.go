// Package cluster shards a key space over multiple kvnet servers with
// consistent hashing — the deployment shape the paper assumes: "A given
// server stores multiple keys" and runs compaction locally over its own
// sstables (Section 1). The Router forwards CRUD operations to the owning
// node and can fan out maintenance operations (flush, major compaction)
// cluster-wide, so the compaction strategies can be exercised per node.
package cluster

import (
	"fmt"
	"sort"
)

// Ring is a consistent-hash ring with virtual nodes. It is not safe for
// concurrent mutation; Router guards it.
type Ring struct {
	replicas int
	vnodes   []vnode
	nodes    map[string]bool
}

type vnode struct {
	hash uint64
	node string
}

// NewRing creates a ring with the given number of virtual nodes per
// physical node; more virtual nodes smooth the key distribution. replicas
// must be positive (64 is a reasonable default).
func NewRing(replicas int) *Ring {
	if replicas <= 0 {
		replicas = 64
	}
	return &Ring{replicas: replicas, nodes: make(map[string]bool)}
}

// KeyHash maps a key to the ring's hash space: FNV-1a with a 64-bit
// finalizer for avalanche on similar keys. It is the single hash shared by
// every layer that partitions the key space — the network ring below and
// the in-process shard router in internal/store — so a key's placement is
// computed the same way whether shards live in one process or many.
func KeyHash(key []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime
	}
	// Finalize for better avalanche on similar keys.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

func ringHash(s string) uint64 { return KeyHash([]byte(s)) }

// AddNode inserts a node (idempotent).
func (r *Ring) AddNode(name string) {
	if r.nodes[name] {
		return
	}
	r.nodes[name] = true
	for i := 0; i < r.replicas; i++ {
		r.vnodes = append(r.vnodes, vnode{hash: ringHash(fmt.Sprintf("%s#%d", name, i)), node: name})
	}
	sort.Slice(r.vnodes, func(a, b int) bool { return r.vnodes[a].hash < r.vnodes[b].hash })
}

// RemoveNode deletes a node and its virtual nodes (idempotent).
func (r *Ring) RemoveNode(name string) {
	if !r.nodes[name] {
		return
	}
	delete(r.nodes, name)
	kept := r.vnodes[:0]
	for _, v := range r.vnodes {
		if v.node != name {
			kept = append(kept, v)
		}
	}
	r.vnodes = kept
}

// Nodes returns the node names, sorted.
func (r *Ring) Nodes() []string {
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the node owning key, or "" on an empty ring.
func (r *Ring) Lookup(key []byte) string {
	if len(r.vnodes) == 0 {
		return ""
	}
	h := KeyHash(key)
	i := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].hash >= h })
	if i == len(r.vnodes) {
		i = 0
	}
	return r.vnodes[i].node
}
