package cluster

import (
	"fmt"
	"testing"
)

func ringWith(nodes ...string) *Ring {
	r := NewRing(64)
	for _, n := range nodes {
		r.AddNode(n)
	}
	return r
}

func TestReplicaSetDistinctAndStable(t *testing.T) {
	r := ringWith("a", "b", "c", "d", "e")
	for i := 0; i < 2000; i++ {
		key := []byte(fmt.Sprintf("key-%05d", i))
		set := r.ReplicaSet(key, 3)
		if len(set) != 3 {
			t.Fatalf("ReplicaSet(%s) = %v, want 3 members", key, set)
		}
		seen := map[string]bool{}
		for _, n := range set {
			if seen[n] {
				t.Fatalf("ReplicaSet(%s) repeats node %s: %v", key, n, set)
			}
			seen[n] = true
		}
		if set[0] != r.Lookup(key) {
			t.Fatalf("primary %s != Lookup %s", set[0], r.Lookup(key))
		}
		again := r.ReplicaSet(key, 3)
		for j := range set {
			if set[j] != again[j] {
				t.Fatalf("ReplicaSet(%s) not deterministic: %v vs %v", key, set, again)
			}
		}
	}
}

func TestReplicaSetDegenerateRings(t *testing.T) {
	empty := NewRing(8)
	if got := empty.ReplicaSet([]byte("k"), 3); got != nil {
		t.Errorf("empty ring ReplicaSet = %v", got)
	}
	single := ringWith("only")
	if got := single.ReplicaSet([]byte("k"), 3); len(got) != 1 || got[0] != "only" {
		t.Errorf("single-node ReplicaSet = %v", got)
	}
	two := ringWith("a", "b")
	got := two.ReplicaSet([]byte("k"), 3)
	if len(got) != 2 || got[0] == got[1] {
		t.Errorf("N>nodes ReplicaSet = %v, want both nodes once", got)
	}
	if got := two.ReplicaSet([]byte("k"), 0); got != nil {
		t.Errorf("n=0 ReplicaSet = %v", got)
	}
}

// TestReplicaSetMinimalMovementOnRemove: removing a node only touches
// replica sets that contained it, and surviving members keep their
// positions — the replication analogue of consistent hashing's minimal
// movement.
func TestReplicaSetMinimalMovementOnRemove(t *testing.T) {
	r := ringWith("a", "b", "c", "d", "e")
	const keys = 3000
	before := map[string][]string{}
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("key-%05d", i)
		before[k] = r.ReplicaSet([]byte(k), 3)
	}
	r.RemoveNode("e")
	hadE := 0
	for k, old := range before {
		now := r.ReplicaSet([]byte(k), 3)
		if len(now) != 3 {
			t.Fatalf("replica set shrank to %v", now)
		}
		contained := false
		for _, n := range old {
			if n == "e" {
				contained = true
			}
		}
		if !contained {
			for j := range old {
				if now[j] != old[j] {
					t.Fatalf("key %s never replicated on e but moved: %v -> %v", k, old, now)
				}
			}
			continue
		}
		hadE++
		// Survivors keep their relative order; exactly one new member
		// joins.
		var oldSurvivors, nowKept []string
		for _, n := range old {
			if n != "e" {
				oldSurvivors = append(oldSurvivors, n)
			}
		}
		inOld := map[string]bool{}
		for _, n := range old {
			inOld[n] = true
		}
		newcomers := 0
		for _, n := range now {
			if n == "e" {
				t.Fatalf("key %s still replicated on removed node: %v", k, now)
			}
			if inOld[n] {
				nowKept = append(nowKept, n)
			} else {
				newcomers++
			}
		}
		if newcomers != 1 {
			t.Fatalf("key %s gained %d new replicas, want exactly 1: %v -> %v", k, newcomers, old, now)
		}
		if len(nowKept) != len(oldSurvivors) {
			t.Fatalf("key %s lost survivors: %v -> %v", k, old, now)
		}
		for j := range oldSurvivors {
			if nowKept[j] != oldSurvivors[j] {
				t.Fatalf("key %s survivors reordered: %v -> %v", k, old, now)
			}
		}
	}
	if hadE == 0 {
		t.Fatal("no key was replicated on the removed node; test proves nothing")
	}
}

// TestReplicaSetMinimalMovementOnAdd: adding a node either leaves a
// key's replica set untouched or inserts the new node, displacing
// exactly the set's last walk member.
func TestReplicaSetMinimalMovementOnAdd(t *testing.T) {
	r := ringWith("a", "b", "c", "d")
	const keys = 3000
	before := map[string][]string{}
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("key-%05d", i)
		before[k] = r.ReplicaSet([]byte(k), 3)
	}
	r.AddNode("f")
	gained := 0
	for k, old := range before {
		now := r.ReplicaSet([]byte(k), 3)
		hasF := false
		for _, n := range now {
			if n == "f" {
				hasF = true
			}
		}
		if !hasF {
			for j := range old {
				if now[j] != old[j] {
					t.Fatalf("key %s moved without involving the new node: %v -> %v", k, old, now)
				}
			}
			continue
		}
		gained++
		// Removing f from the new set must reproduce a prefix of the old
		// set: the new node displaced exactly the last member.
		var rest []string
		for _, n := range now {
			if n != "f" {
				rest = append(rest, n)
			}
		}
		if len(rest) != len(old)-1 {
			t.Fatalf("key %s: new node displaced %d members: %v -> %v", k, len(old)-len(rest), old, now)
		}
		for j := range rest {
			if rest[j] != old[j] {
				t.Fatalf("key %s: surviving members reordered: %v -> %v", k, old, now)
			}
		}
	}
	if gained == 0 {
		t.Fatal("new node joined no replica set; test proves nothing")
	}
}
