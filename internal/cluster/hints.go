package cluster

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/kverr"
	"repro/internal/kvnet"
)

// Hinted handoff. A write that cannot reach one of its replicas is not
// lost and not blocked: the missed share is parked as a *hint* — a
// regular key-value pair under a reserved key prefix — on a live node,
// and the handoff loop replays it to the target once the target answers
// pings again. Replay is version-checked against the target's current
// record, so a hint that was overtaken by newer writes (or already
// delivered by read repair) is discarded rather than regressing the key.
//
// Hints live in the holders' ordinary keyspace, which buys durability
// for free: they ride the holder's WAL and survive the holder itself
// restarting. User operations are fenced out of the prefix (see
// checkUserKey) and cluster scans filter it.

// hintPrefix is the reserved namespace. Hint key layout:
//
//	hintPrefix | target | 0x00 | stamp(8 BE) | token(4 BE) | seq(8 BE)
//
// target is the node address the hinted write is owed to (addresses
// never contain NUL); stamp/token/seq make keys unique across routers
// parking hints concurrently. The value is an encoded batch of (key,
// record) pairs — see encodeHintBatch.
const hintPrefix = "\x00\xffcluster.hint\x00"

func hintKey(target string, stamp uint64, token uint32, seq uint64) []byte {
	out := make([]byte, 0, len(hintPrefix)+len(target)+1+8+4+8)
	out = append(out, hintPrefix...)
	out = append(out, target...)
	out = append(out, 0)
	out = binary.BigEndian.AppendUint64(out, stamp)
	out = binary.BigEndian.AppendUint32(out, token)
	out = binary.BigEndian.AppendUint64(out, seq)
	return out
}

// hintTarget parses the target node out of a hint key, or "" if the key
// is not a well-formed hint.
func hintTarget(key []byte) string {
	if !bytes.HasPrefix(key, []byte(hintPrefix)) {
		return ""
	}
	rest := key[len(hintPrefix):]
	i := bytes.IndexByte(rest, 0)
	if i <= 0 {
		return ""
	}
	return string(rest[:i])
}

// encodeHintBatch serializes the (key, record) pairs owed to a target:
// uvarint count, then per pair uvarint-length-prefixed key and record.
func encodeHintBatch(ops []kvnet.BatchOp) []byte {
	var out []byte
	out = binary.AppendUvarint(out, uint64(len(ops)))
	for _, op := range ops {
		out = binary.AppendUvarint(out, uint64(len(op.Key)))
		out = append(out, op.Key...)
		out = binary.AppendUvarint(out, uint64(len(op.Value)))
		out = append(out, op.Value...)
	}
	return out
}

func decodeHintBatch(b []byte) ([]kvnet.BatchOp, error) {
	bad := func() ([]kvnet.BatchOp, error) {
		return nil, fmt.Errorf("cluster: undecodable hint batch: %w", kverr.ErrCorrupt)
	}
	n, sz := binary.Uvarint(b)
	if sz <= 0 {
		return bad()
	}
	b = b[sz:]
	ops := make([]kvnet.BatchOp, 0, n)
	for i := uint64(0); i < n; i++ {
		klen, sz := binary.Uvarint(b)
		if sz <= 0 || uint64(len(b)-sz) < klen {
			return bad()
		}
		key := b[sz : sz+int(klen)]
		b = b[sz+int(klen):]
		vlen, sz := binary.Uvarint(b)
		if sz <= 0 || uint64(len(b)-sz) < vlen {
			return bad()
		}
		val := b[sz : sz+int(vlen)]
		b = b[sz+int(vlen):]
		ops = append(ops, kvnet.BatchOp{Key: key, Value: val})
	}
	return ops, nil
}

// parkHintFor parks target's missed share of a write on a live node, in
// the background — the caller is on a write's latency path (or holds a
// replica goroutine) and parking must not extend it. Holder candidates
// are the other ring nodes starting just past the target (so hints for
// one node spread over its neighbors); the first one that accepts the
// write holds the hint.
func (rt *Router) parkHintFor(target string, ops []kvnet.BatchOp) {
	if len(ops) == 0 {
		return
	}
	key := hintKey(target, rt.clock.Next(), rt.token, rt.hintSeq.Add(1))
	value := encodeHintBatch(ops)
	rt.bg.Add(1)
	go func() {
		defer rt.bg.Done()
		if rt.parkEncoded(target, key, value) {
			rt.hintsParked.Add(1)
			return
		}
		// No live holder would take it right now (a kill can make every
		// peer unreachable for a beat). Defer rather than drop: the
		// handoff loop re-parks the queue each sweep.
		rt.deferHint(target, key, value)
	}()
}

// parkEncoded writes an already-encoded hint to the first live holder
// that accepts it. Holder candidates are the other ring nodes starting
// just past the target, so hints for one node spread over its
// neighbors.
func (rt *Router) parkEncoded(target string, key, value []byte) bool {
	nodes := rt.nodeNames()
	if len(nodes) < 2 {
		return false
	}
	start := sort.SearchStrings(nodes, target)
	for i := 1; i <= len(nodes); i++ {
		holder := nodes[(start+i)%len(nodes)]
		if holder == target || rt.health.isDown(holder) {
			continue
		}
		err := rt.do(rt.baseCtx, holder, func(actx context.Context, c *kvnet.Client) error {
			return c.Put(actx, key, value)
		})
		if err == nil {
			return true
		}
	}
	return false
}

// deferredHint is a hint no live holder accepted yet, queued in router
// memory until a sweep can park it durably.
type deferredHint struct {
	target     string
	key, value []byte
}

// maxDeferredHints bounds the in-memory queue; past it the oldest hints
// are dropped and counted, so a long total outage degrades to the old
// behavior instead of growing client memory without limit.
const maxDeferredHints = 4096

func (rt *Router) deferHint(target string, key, value []byte) {
	rt.hintMu.Lock()
	defer rt.hintMu.Unlock()
	rt.deferredHints = append(rt.deferredHints, deferredHint{target: target, key: key, value: value})
	if n := len(rt.deferredHints) - maxDeferredHints; n > 0 {
		rt.deferredHints = append(rt.deferredHints[:0], rt.deferredHints[n:]...)
		rt.hintsDropped.Add(uint64(n))
	}
}

// reparkDeferred retries every queued hint; those still refused go back
// on the queue for the next sweep.
func (rt *Router) reparkDeferred(ctx context.Context) {
	rt.hintMu.Lock()
	pending := rt.deferredHints
	rt.deferredHints = nil
	rt.hintMu.Unlock()
	for i, h := range pending {
		if ctx.Err() != nil {
			for _, rest := range pending[i:] {
				rt.deferHint(rest.target, rest.key, rest.value)
			}
			return
		}
		if rt.parkEncoded(h.target, h.key, h.value) {
			rt.hintsParked.Add(1)
		} else {
			rt.deferHint(h.target, h.key, h.value)
		}
	}
}

// handoffLoop sweeps parked hints every HandoffInterval, and immediately
// when the failure detector promotes a node back up.
func (rt *Router) handoffLoop() {
	defer rt.loops.Done()
	t := time.NewTicker(rt.opts.HandoffInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.baseCtx.Done():
			return
		case <-t.C:
		case <-rt.handoffKick:
		}
		rt.handoffSweep(rt.baseCtx)
	}
}

// Handoff runs one synchronous handoff sweep: every live node is scanned
// for parked hints and each hint whose target is live is replayed and
// deleted. It returns the first error encountered; hints it could not
// deliver stay parked for the next sweep. Tests and operators use it to
// force convergence without waiting for the interval.
func (rt *Router) Handoff(ctx context.Context) error {
	return rt.handoffSweep(ctx)
}

// handoffSweep drains hints from every live holder. Sweeping all nodes —
// not just the ones this router parked on — means a fresh router (or a
// restarted one) delivers hints parked by routers that no longer exist.
func (rt *Router) handoffSweep(ctx context.Context) error {
	rt.reparkDeferred(ctx)
	var first error
	for _, holder := range rt.nodeNames() {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if rt.health.isDown(holder) {
			continue
		}
		if err := rt.drainHolder(ctx, holder); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// drainHolder replays and deletes holder's parked hints, page by page,
// until no page makes progress (every remaining hint's target is still
// down) or the holder is empty.
func (rt *Router) drainHolder(ctx context.Context, holder string) error {
	const page = 128
	for {
		var entries []kvnet.ScanEntry
		err := rt.do(ctx, holder, func(actx context.Context, c *kvnet.Client) error {
			var err error
			entries, err = c.Scan(actx, []byte(hintPrefix), page)
			return err
		})
		if err != nil {
			return fmt.Errorf("cluster: hint scan on %s: %w", holder, err)
		}
		if len(entries) == 0 {
			return nil
		}
		progress := 0
		for _, e := range entries {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			target := hintTarget(e.Key)
			if target == "" {
				// Not a hint we understand; delete it rather than rescanning
				// it forever.
				if rt.deleteHint(ctx, holder, e.Key) == nil {
					progress++
				}
				continue
			}
			if rt.health.isDown(target) {
				continue
			}
			if err := rt.replayHint(ctx, holder, target, e); err != nil {
				// Target refused or vanished mid-replay; leave the hint for
				// the next sweep.
				continue
			}
			progress++
		}
		if progress == 0 || len(entries) < page {
			return nil
		}
	}
}

// replayHint delivers one hint to its target and deletes it from the
// holder. Each hinted record is version-checked against the target's
// current state first: only records still newer than what the target
// holds are written, so replaying an old hint can never regress a key.
func (rt *Router) replayHint(ctx context.Context, holder, target string, hint kvnet.ScanEntry) error {
	ops, err := decodeHintBatch(hint.Value)
	if err != nil {
		// The hint itself is damaged; drop it, the data it carried is
		// also on the W-quorum replicas and read repair covers the rest.
		rt.deleteHint(ctx, holder, hint.Key)
		return nil
	}
	fresh := make([]kvnet.BatchOp, 0, len(ops))
	for _, op := range ops {
		rec, err := decodeRecord(op.Value)
		if err != nil {
			continue
		}
		cur, err := rt.recordVersionOn(ctx, target, op.Key)
		if err != nil {
			return err
		}
		if rec.Version > cur {
			fresh = append(fresh, op)
		}
	}
	if len(fresh) > 0 {
		err := rt.do(ctx, target, func(actx context.Context, c *kvnet.Client) error {
			return c.Write(actx, fresh)
		})
		if err != nil {
			return err
		}
	}
	if err := rt.deleteHint(ctx, holder, hint.Key); err != nil {
		return err
	}
	rt.hintsReplayed.Add(1)
	return nil
}

// recordVersionOn returns the version of key's record on one node, or 0
// if the node has never seen the key.
func (rt *Router) recordVersionOn(ctx context.Context, node string, key []byte) (uint64, error) {
	var version uint64
	err := rt.do(ctx, node, func(actx context.Context, c *kvnet.Client) error {
		raw, err := c.Get(actx, key)
		if err != nil {
			if errors.Is(err, kverr.ErrNotFound) {
				version = 0
				return nil
			}
			return err
		}
		rec, err := decodeRecord(raw)
		if err != nil {
			return err
		}
		version = rec.Version
		return nil
	})
	return version, err
}

// deleteHint removes a delivered (or undecodable) hint from its holder.
// This is a node-level delete — hints are router bookkeeping, not
// replicated user data.
func (rt *Router) deleteHint(ctx context.Context, holder string, key []byte) error {
	return rt.do(ctx, holder, func(actx context.Context, c *kvnet.Client) error {
		return c.Delete(actx, key)
	})
}

// PendingHints counts the hints currently parked across all live nodes,
// plus any still deferred in router memory awaiting a holder.
func (rt *Router) PendingHints(ctx context.Context) (int, error) {
	rt.hintMu.Lock()
	total := len(rt.deferredHints)
	rt.hintMu.Unlock()
	for _, holder := range rt.nodeNames() {
		if rt.health.isDown(holder) {
			continue
		}
		err := rt.do(ctx, holder, func(actx context.Context, c *kvnet.Client) error {
			entries, err := c.Scan(actx, []byte(hintPrefix), 100000)
			if err != nil {
				return err
			}
			total += len(entries)
			return nil
		})
		if err != nil {
			return total, fmt.Errorf("cluster: hint count on %s: %w", holder, err)
		}
	}
	return total, nil
}
