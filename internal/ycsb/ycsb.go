// Package ycsb reimplements the parts of the Yahoo! Cloud Serving Benchmark
// (Cooper et al., SoCC 2010) that the paper's evaluation depends on
// (Section 5.1): a load phase that inserts recordcount keys into an empty
// database, and a run phase that issues operationcount CRUD operations with
// configurable proportions, drawing keys from one of three distributions:
//
//   - Uniform: all inserted keys accessed uniformly;
//   - Zipfian: a few keys are popular (power law), scrambled across the key
//     space;
//   - Latest: recently inserted keys are popular (power law over recency).
//
// The original YCSB is a Java framework driving a live store over a client
// API; here the generator emits the operation stream directly, which is all
// the compaction simulator consumes. Reads do not modify sstables and
// deletes are handled as updates carrying a tombstone, exactly as the paper
// treats them.
package ycsb

import (
	"fmt"
	"math/rand"
)

// Distribution selects how the run phase picks keys for non-insert
// operations.
type Distribution int

// Supported key-access distributions.
const (
	Uniform Distribution = iota
	Zipfian
	Latest
)

// String implements fmt.Stringer.
func (d Distribution) String() string {
	switch d {
	case Uniform:
		return "uniform"
	case Zipfian:
		return "zipfian"
	case Latest:
		return "latest"
	default:
		return fmt.Sprintf("Distribution(%d)", int(d))
	}
}

// ParseDistribution converts a name ("uniform", "zipfian", "latest") into a
// Distribution.
func ParseDistribution(s string) (Distribution, error) {
	switch s {
	case "uniform":
		return Uniform, nil
	case "zipfian":
		return Zipfian, nil
	case "latest":
		return Latest, nil
	default:
		return 0, fmt.Errorf("ycsb: unknown distribution %q", s)
	}
}

// OpKind is the type of a generated operation.
type OpKind int

// Operation kinds. Scan is included for API completeness; the compaction
// simulator ignores reads and scans since they do not modify sstables.
const (
	OpInsert OpKind = iota
	OpUpdate
	OpRead
	OpDelete
	OpScan
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpInsert:
		return "insert"
	case OpUpdate:
		return "update"
	case OpRead:
		return "read"
	case OpDelete:
		return "delete"
	case OpScan:
		return "scan"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Op is one generated operation. Key identifies the record; for the
// compaction model, key identity is all that matters since entries are
// fixed-size.
type Op struct {
	Kind OpKind
	Key  uint64
}

// Mutates reports whether the operation writes to the memtable (inserts,
// updates and deletes do; reads and scans do not).
func (o Op) Mutates() bool {
	return o.Kind == OpInsert || o.Kind == OpUpdate || o.Kind == OpDelete
}

// Config parameterizes a workload, mirroring YCSB's property names.
type Config struct {
	// RecordCount is the number of keys inserted by the load phase.
	RecordCount int
	// OperationCount is the number of operations in the run phase.
	OperationCount int
	// Proportions of each operation kind in the run phase; they must be
	// non-negative and sum to a positive value (they are normalized).
	InsertProportion float64
	UpdateProportion float64
	ReadProportion   float64
	DeleteProportion float64
	ScanProportion   float64
	// Distribution picks keys for updates/reads/deletes/scans.
	Distribution Distribution
	// ZipfianConstant is θ for Zipfian and Latest; 0 selects YCSB's 0.99.
	ZipfianConstant float64
	// Seed makes the workload deterministic.
	Seed int64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.RecordCount < 0 || c.OperationCount < 0 {
		return fmt.Errorf("ycsb: negative counts (recordcount=%d, operationcount=%d)", c.RecordCount, c.OperationCount)
	}
	for _, p := range []float64{c.InsertProportion, c.UpdateProportion, c.ReadProportion, c.DeleteProportion, c.ScanProportion} {
		if p < 0 {
			return fmt.Errorf("ycsb: negative proportion")
		}
	}
	total := c.InsertProportion + c.UpdateProportion + c.ReadProportion + c.DeleteProportion + c.ScanProportion
	if c.OperationCount > 0 && total <= 0 {
		return fmt.Errorf("ycsb: operation proportions sum to zero")
	}
	if c.ZipfianConstant < 0 || c.ZipfianConstant >= 1 {
		if c.ZipfianConstant != 0 {
			return fmt.Errorf("ycsb: zipfian constant %v out of (0,1)", c.ZipfianConstant)
		}
	}
	return nil
}

// Generator produces the operation stream for one workload. It is not safe
// for concurrent use.
type Generator struct {
	cfg         Config
	rng         *rand.Rand
	insertCount uint64 // keys inserted so far (load + run inserts)
	emittedLoad int
	emittedRun  int
	zipf        *zipfian // population = RecordCount key space (scrambled)
	latest      *zipfian // population = keys inserted so far
	cum         [5]float64
}

// NewGenerator validates cfg and prepares a generator.
func NewGenerator(cfg Config) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.ZipfianConstant == 0 {
		cfg.ZipfianConstant = DefaultZipfianConstant
	}
	g := &Generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	total := cfg.InsertProportion + cfg.UpdateProportion + cfg.ReadProportion + cfg.DeleteProportion + cfg.ScanProportion
	if total > 0 {
		g.cum[0] = cfg.InsertProportion / total
		g.cum[1] = g.cum[0] + cfg.UpdateProportion/total
		g.cum[2] = g.cum[1] + cfg.ReadProportion/total
		g.cum[3] = g.cum[2] + cfg.DeleteProportion/total
		g.cum[4] = 1
	}
	return g, nil
}

// keyOf maps an insertion index to its key identity. YCSB hashes the index
// so that key popularity is spread over the key space; identity here is a
// stable FNV mix of the index.
func keyOf(index uint64) uint64 { return fnvMix(index) }

// NextLoad returns the next load-phase insert, or ok=false once RecordCount
// inserts have been emitted.
func (g *Generator) NextLoad() (Op, bool) {
	if g.emittedLoad >= g.cfg.RecordCount {
		return Op{}, false
	}
	op := Op{Kind: OpInsert, Key: keyOf(g.insertCount)}
	g.insertCount++
	g.emittedLoad++
	return op, true
}

// chooseExisting picks a key among those inserted so far according to the
// configured distribution.
func (g *Generator) chooseExisting() uint64 {
	n := g.insertCount
	if n == 0 {
		// Nothing inserted yet: fall back to the key that insert 0 will use.
		return keyOf(0)
	}
	switch g.cfg.Distribution {
	case Zipfian:
		if g.zipf == nil {
			g.zipf = newZipfian(n, g.cfg.ZipfianConstant)
		} else {
			g.zipf.grow(n)
		}
		rank := g.zipf.sample(g.rng)
		// Scramble the rank across the inserted keys (ScrambledZipfian).
		return keyOf(fnvMix(rank) % n)
	case Latest:
		if g.latest == nil {
			g.latest = newZipfian(n, g.cfg.ZipfianConstant)
		} else {
			g.latest.grow(n)
		}
		rank := g.latest.sample(g.rng) // 0 = most recent
		return keyOf(n - 1 - rank)
	default:
		return keyOf(uint64(g.rng.Int63n(int64(n))))
	}
}

// NextRun returns the next run-phase operation, or ok=false once
// OperationCount operations have been emitted.
func (g *Generator) NextRun() (Op, bool) {
	if g.emittedRun >= g.cfg.OperationCount {
		return Op{}, false
	}
	g.emittedRun++
	u := g.rng.Float64()
	switch {
	case u < g.cum[0]:
		op := Op{Kind: OpInsert, Key: keyOf(g.insertCount)}
		g.insertCount++
		return op, true
	case u < g.cum[1]:
		return Op{Kind: OpUpdate, Key: g.chooseExisting()}, true
	case u < g.cum[2]:
		return Op{Kind: OpRead, Key: g.chooseExisting()}, true
	case u < g.cum[3]:
		return Op{Kind: OpDelete, Key: g.chooseExisting()}, true
	default:
		return Op{Kind: OpScan, Key: g.chooseExisting()}, true
	}
}

// All generates the full workload (load phase then run phase) and returns
// it as a slice; convenient for simulations that want the whole stream.
func (g *Generator) All() []Op {
	ops := make([]Op, 0, g.cfg.RecordCount+g.cfg.OperationCount)
	for {
		op, ok := g.NextLoad()
		if !ok {
			break
		}
		ops = append(ops, op)
	}
	for {
		op, ok := g.NextRun()
		if !ok {
			break
		}
		ops = append(ops, op)
	}
	return ops
}

// InsertedKeys returns how many distinct keys have been inserted so far.
func (g *Generator) InsertedKeys() uint64 { return g.insertCount }
