package ycsb

import "math"

// DefaultZipfianConstant is YCSB's default skew parameter θ.
const DefaultZipfianConstant = 0.99

// zipfian samples ranks in [0, items) with a Zipf distribution using the
// rejection-free method of Gray et al. ("Quickly generating billion-record
// synthetic databases", SIGMOD 1994), the same algorithm YCSB uses. Rank 0
// is the most popular item.
//
// The generator supports growing the item count incrementally (needed by
// the Latest distribution, where the population is "keys inserted so far"):
// ζ(n) is extended term by term instead of being recomputed.
type zipfian struct {
	items uint64
	theta float64
	zetaN float64 // ζ(items, θ)
	zeta2 float64 // ζ(2, θ)
	alpha float64
	eta   float64
}

func zetaStatic(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

func newZipfian(items uint64, theta float64) *zipfian {
	if items == 0 {
		items = 1
	}
	z := &zipfian{
		items: items,
		theta: theta,
		zetaN: zetaStatic(items, theta),
		zeta2: zetaStatic(2, theta),
		alpha: 1 / (1 - theta),
	}
	z.computeEta()
	return z
}

func (z *zipfian) computeEta() {
	n := float64(z.items)
	z.eta = (1 - math.Pow(2/n, 1-z.theta)) / (1 - z.zeta2/z.zetaN)
}

// grow extends the population to items, updating ζ incrementally in
// O(items - z.items) total across all calls.
func (z *zipfian) grow(items uint64) {
	if items <= z.items {
		return
	}
	for i := z.items + 1; i <= items; i++ {
		z.zetaN += 1 / math.Pow(float64(i), z.theta)
	}
	z.items = items
	z.computeEta()
}

// randSource is the minimal randomness interface zipfian needs; *rand.Rand
// satisfies it.
type randSource interface {
	Float64() float64
}

// sample draws a rank in [0, z.items), rank 0 most popular.
func (z *zipfian) sample(r randSource) uint64 {
	u := r.Float64()
	uz := u * z.zetaN
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	rank := uint64(float64(z.items) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if rank >= z.items {
		rank = z.items - 1
	}
	return rank
}

// fnvMix hashes a 64-bit value with FNV-1a; used to scramble zipfian ranks
// across the key space (YCSB's ScrambledZipfianGenerator) so popular keys
// are not clustered at the low end.
func fnvMix(x uint64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= prime
		x >>= 8
	}
	return h
}
