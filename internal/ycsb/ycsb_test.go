package ycsb

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func mustGen(t *testing.T, cfg Config) *Generator {
	t.Helper()
	g, err := NewGenerator(cfg)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	return g
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{RecordCount: -1},
		{OperationCount: -1},
		{OperationCount: 10},                         // zero proportions
		{OperationCount: 10, UpdateProportion: -0.5}, // negative
		{ZipfianConstant: 1.5, OperationCount: 10, UpdateProportion: 1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, cfg)
		}
	}
	good := Config{RecordCount: 10, OperationCount: 10, UpdateProportion: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("Validate rejected good config: %v", err)
	}
}

func TestLoadPhase(t *testing.T) {
	g := mustGen(t, Config{RecordCount: 100})
	seen := map[uint64]bool{}
	n := 0
	for {
		op, ok := g.NextLoad()
		if !ok {
			break
		}
		if op.Kind != OpInsert {
			t.Fatalf("load op kind = %v", op.Kind)
		}
		if seen[op.Key] {
			t.Fatalf("load emitted duplicate key %d", op.Key)
		}
		seen[op.Key] = true
		n++
	}
	if n != 100 {
		t.Errorf("load emitted %d ops, want 100", n)
	}
	if g.InsertedKeys() != 100 {
		t.Errorf("InsertedKeys = %d", g.InsertedKeys())
	}
}

func TestRunPhaseCountsAndMix(t *testing.T) {
	cfg := Config{
		RecordCount:      1000,
		OperationCount:   100000,
		InsertProportion: 0.25,
		UpdateProportion: 0.50,
		ReadProportion:   0.25,
		Seed:             42,
	}
	g := mustGen(t, cfg)
	for {
		if _, ok := g.NextLoad(); !ok {
			break
		}
	}
	counts := map[OpKind]int{}
	total := 0
	for {
		op, ok := g.NextRun()
		if !ok {
			break
		}
		counts[op.Kind]++
		total++
	}
	if total != cfg.OperationCount {
		t.Fatalf("run emitted %d ops, want %d", total, cfg.OperationCount)
	}
	check := func(kind OpKind, want float64) {
		got := float64(counts[kind]) / float64(total)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("%v proportion = %.3f, want %.2f", kind, got, want)
		}
	}
	check(OpInsert, 0.25)
	check(OpUpdate, 0.50)
	check(OpRead, 0.25)
	if counts[OpDelete] != 0 || counts[OpScan] != 0 {
		t.Errorf("unexpected delete/scan ops: %v", counts)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{RecordCount: 100, OperationCount: 1000, UpdateProportion: 0.6, InsertProportion: 0.4, Distribution: Latest, Seed: 7}
	a := mustGen(t, cfg).All()
	b := mustGen(t, cfg).All()
	if len(a) != len(b) {
		t.Fatalf("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	cfg := Config{RecordCount: 100, OperationCount: 1000, UpdateProportion: 1, Distribution: Uniform}
	cfg2 := cfg
	cfg2.Seed = 99
	a := mustGen(t, cfg).All()
	b := mustGen(t, cfg2).All()
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Errorf("different seeds produced identical streams")
	}
}

func TestUpdatesTargetExistingKeys(t *testing.T) {
	for _, dist := range []Distribution{Uniform, Zipfian, Latest} {
		cfg := Config{RecordCount: 500, OperationCount: 5000, UpdateProportion: 1, Distribution: dist, Seed: 3}
		g := mustGen(t, cfg)
		inserted := map[uint64]bool{}
		for {
			op, ok := g.NextLoad()
			if !ok {
				break
			}
			inserted[op.Key] = true
		}
		for {
			op, ok := g.NextRun()
			if !ok {
				break
			}
			if !inserted[op.Key] {
				t.Errorf("%v: update targeted uninserted key %d", dist, op.Key)
				break
			}
		}
	}
}

// keyFrequencies runs an update-only workload and returns sorted descending
// access counts.
func keyFrequencies(t *testing.T, dist Distribution, records, ops int) []int {
	t.Helper()
	g := mustGen(t, Config{RecordCount: records, OperationCount: ops, UpdateProportion: 1, Distribution: dist, Seed: 11})
	for {
		if _, ok := g.NextLoad(); !ok {
			break
		}
	}
	freq := map[uint64]int{}
	for {
		op, ok := g.NextRun()
		if !ok {
			break
		}
		freq[op.Key]++
	}
	counts := make([]int, 0, len(freq))
	for _, c := range freq {
		counts = append(counts, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	return counts
}

func TestZipfianIsSkewed(t *testing.T) {
	const records, ops = 1000, 100000
	zipf := keyFrequencies(t, Zipfian, records, ops)
	unif := keyFrequencies(t, Uniform, records, ops)

	topShare := func(counts []int, k int) float64 {
		sum, top := 0, 0
		for i, c := range counts {
			sum += c
			if i < k {
				top += c
			}
		}
		return float64(top) / float64(sum)
	}
	zs, us := topShare(zipf, 10), topShare(unif, 10)
	if zs < 3*us {
		t.Errorf("zipfian top-10 share %.3f not clearly above uniform %.3f", zs, us)
	}
	// Under θ=0.99 the hottest key should take a few percent of accesses.
	if float64(zipf[0])/float64(ops) < 0.02 {
		t.Errorf("hottest zipfian key share %.4f too small", float64(zipf[0])/float64(ops))
	}
}

func TestLatestPrefersRecentInserts(t *testing.T) {
	// Insert-then-update mix: updates should hit recently inserted keys.
	cfg := Config{RecordCount: 1000, OperationCount: 50000, InsertProportion: 0.5, UpdateProportion: 0.5, Distribution: Latest, Seed: 13}
	g := mustGen(t, cfg)
	indexOf := map[uint64]uint64{}
	var idx uint64
	for {
		op, ok := g.NextLoad()
		if !ok {
			break
		}
		indexOf[op.Key] = idx
		idx++
	}
	recent, old := 0, 0
	for {
		op, ok := g.NextRun()
		if !ok {
			break
		}
		if op.Kind == OpInsert {
			indexOf[op.Key] = idx
			idx++
			continue
		}
		i, seen := indexOf[op.Key]
		if !seen {
			t.Fatalf("latest update hit unknown key")
		}
		if i >= idx/2 {
			recent++
		} else {
			old++
		}
	}
	if recent <= 4*old {
		t.Errorf("latest distribution: recent=%d old=%d, want strong recency bias", recent, old)
	}
}

func TestUniformCoversKeySpace(t *testing.T) {
	counts := keyFrequencies(t, Uniform, 200, 40000)
	if len(counts) < 195 {
		t.Errorf("uniform touched only %d/200 keys", len(counts))
	}
	// max/min ratio should be modest for uniform.
	if float64(counts[0])/float64(counts[len(counts)-1]) > 3 {
		t.Errorf("uniform skew too high: max %d min %d", counts[0], counts[len(counts)-1])
	}
}

func TestZipfianGeneratorRankZeroMostPopular(t *testing.T) {
	z := newZipfian(1000, 0.99)
	r := rand.New(rand.NewSource(1))
	freq := make([]int, 1000)
	for i := 0; i < 200000; i++ {
		freq[z.sample(r)]++
	}
	if freq[0] <= freq[1] || freq[1] <= freq[10] || freq[10] <= freq[500] {
		t.Errorf("zipf ranks not decreasing: f0=%d f1=%d f10=%d f500=%d", freq[0], freq[1], freq[10], freq[500])
	}
}

func TestZipfianGrowMatchesStatic(t *testing.T) {
	grown := newZipfian(10, 0.99)
	grown.grow(1000)
	fresh := newZipfian(1000, 0.99)
	if math.Abs(grown.zetaN-fresh.zetaN) > 1e-9 {
		t.Errorf("incremental zeta %.12f != static %.12f", grown.zetaN, fresh.zetaN)
	}
	if math.Abs(grown.eta-fresh.eta) > 1e-9 {
		t.Errorf("eta mismatch after grow")
	}
	grown.grow(5) // shrink is a no-op
	if grown.items != 1000 {
		t.Errorf("grow shrank the population")
	}
}

func TestParseDistribution(t *testing.T) {
	for _, name := range []string{"uniform", "zipfian", "latest"} {
		d, err := ParseDistribution(name)
		if err != nil || d.String() != name {
			t.Errorf("ParseDistribution(%q) = %v, %v", name, d, err)
		}
	}
	if _, err := ParseDistribution("nope"); err == nil {
		t.Errorf("unknown distribution accepted")
	}
}

func TestOpMutates(t *testing.T) {
	cases := map[OpKind]bool{OpInsert: true, OpUpdate: true, OpDelete: true, OpRead: false, OpScan: false}
	for kind, want := range cases {
		if got := (Op{Kind: kind}).Mutates(); got != want {
			t.Errorf("%v.Mutates() = %v", kind, got)
		}
	}
}

func TestRunBeforeLoadFallsBack(t *testing.T) {
	// Update-only workload with no load phase: must not panic.
	g := mustGen(t, Config{OperationCount: 10, UpdateProportion: 1})
	for {
		if _, ok := g.NextRun(); !ok {
			break
		}
	}
}

func BenchmarkGeneratorZipfian(b *testing.B) {
	g, err := NewGenerator(Config{RecordCount: 1000, OperationCount: 1 << 31, UpdateProportion: 1, Distribution: Zipfian})
	if err != nil {
		b.Fatal(err)
	}
	for {
		if _, ok := g.NextLoad(); !ok {
			break
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := g.NextRun(); !ok {
			b.Fatal("exhausted")
		}
	}
}

func BenchmarkGeneratorLatest(b *testing.B) {
	g, err := NewGenerator(Config{RecordCount: 1000, OperationCount: 1 << 31, InsertProportion: 0.5, UpdateProportion: 0.5, Distribution: Latest})
	if err != nil {
		b.Fatal(err)
	}
	for {
		if _, ok := g.NextLoad(); !ok {
			break
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := g.NextRun(); !ok {
			b.Fatal("exhausted")
		}
	}
}
