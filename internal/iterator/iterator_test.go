package iterator

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func e(key string, seq uint64) Entry {
	return Entry{Key: []byte(key), Value: []byte("v:" + key), Seq: seq}
}

func tomb(key string, seq uint64) Entry {
	return Entry{Key: []byte(key), Seq: seq, Tombstone: true}
}

func keysOf(entries []Entry) []string {
	out := make([]string, len(entries))
	for i, en := range entries {
		out[i] = string(en.Key)
	}
	return out
}

func TestSliceIterator(t *testing.T) {
	it := NewSlice([]Entry{e("a", 1), e("b", 2)})
	if !it.Valid() || string(it.Entry().Key) != "a" {
		t.Fatalf("first entry wrong")
	}
	it.Next()
	if !it.Valid() || string(it.Entry().Key) != "b" {
		t.Fatalf("second entry wrong")
	}
	it.Next()
	if it.Valid() {
		t.Fatalf("exhausted iterator still valid")
	}
	if empty := NewSlice(nil); empty.Valid() {
		t.Fatalf("empty iterator should be invalid")
	}
}

func TestMergingInterleaves(t *testing.T) {
	a := NewSlice([]Entry{e("a", 1), e("d", 1), e("f", 1)})
	b := NewSlice([]Entry{e("b", 2), e("e", 2)})
	c := NewSlice([]Entry{e("c", 3)})
	got := keysOf(Drain(NewMerging(a, b, c)))
	want := []string{"a", "b", "c", "d", "e", "f"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("merged keys = %v, want %v", got, want)
	}
}

func TestMergingTieBreakPrefersEarlierChild(t *testing.T) {
	newer := NewSlice([]Entry{e("k", 9)})
	older := NewSlice([]Entry{e("k", 1)})
	got := Drain(NewMerging(newer, older))
	if len(got) != 2 {
		t.Fatalf("expected both versions, got %d", len(got))
	}
	if got[0].Seq != 9 || got[1].Seq != 1 {
		t.Errorf("tie-break order wrong: seqs %d,%d", got[0].Seq, got[1].Seq)
	}
}

func TestMergingEmptyChildren(t *testing.T) {
	if m := NewMerging(); m.Valid() {
		t.Errorf("merging over no children should be invalid")
	}
	m := NewMerging(NewSlice(nil), NewSlice([]Entry{e("x", 1)}), NewSlice(nil))
	got := keysOf(Drain(m))
	if len(got) != 1 || got[0] != "x" {
		t.Errorf("got %v", got)
	}
}

func TestDedupKeepsNewest(t *testing.T) {
	newer := NewSlice([]Entry{e("a", 5), e("b", 5)})
	older := NewSlice([]Entry{e("a", 1), e("c", 1)})
	d := NewDedup(NewMerging(newer, older), false)
	got := Drain(d)
	if len(got) != 3 {
		t.Fatalf("got %d entries, want 3", len(got))
	}
	if got[0].Seq != 5 {
		t.Errorf("kept old version of a (seq %d)", got[0].Seq)
	}
}

func TestDedupTombstones(t *testing.T) {
	newer := NewSlice([]Entry{tomb("a", 5)})
	older := NewSlice([]Entry{e("a", 1), e("b", 1)})
	// Major compaction: tombstone and all shadowed versions vanish.
	drop := Drain(NewDedup(NewMerging(newer, older), true))
	if got := keysOf(drop); fmt.Sprint(got) != "[b]" {
		t.Errorf("drop-tombstones keys = %v, want [b]", got)
	}
	// Minor compaction: tombstone survives to shadow older tables.
	keep := Drain(NewDedup(NewMerging(NewSlice([]Entry{tomb("a", 5)}), NewSlice([]Entry{e("a", 1), e("b", 1)})), false))
	if len(keep) != 2 || !keep[0].Tombstone {
		t.Errorf("keep-tombstones = %+v", keep)
	}
}

func TestDedupTombstoneShadowsAcrossAdvance(t *testing.T) {
	// Tombstone for "a" then live "a" then live "b": dropping tombstones
	// must also drop the shadowed live "a".
	src := NewSlice([]Entry{tomb("a", 9), e("a", 3), e("b", 1)})
	got := keysOf(Drain(NewDedup(src, true)))
	if fmt.Sprint(got) != "[b]" {
		t.Errorf("got %v, want [b]", got)
	}
}

func TestQuickMergingMatchesSort(t *testing.T) {
	f := func(seed int64, nSrc uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nSrc%5) + 1
		var its []Iterator
		var all []string
		for s := 0; s < n; s++ {
			var entries []Entry
			k := 0
			for i := 0; i < r.Intn(20); i++ {
				k += 1 + r.Intn(5)
				key := fmt.Sprintf("%04d", k)
				entries = append(entries, e(key, uint64(s)))
				all = append(all, key)
			}
			its = append(its, NewSlice(entries))
		}
		got := keysOf(Drain(NewMerging(its...)))
		sort.Strings(all)
		return fmt.Sprint(got) == fmt.Sprint(all)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickDedupYieldsDistinctSortedKeys(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var its []Iterator
		for s := 0; s < 4; s++ {
			var entries []Entry
			k := 0
			for i := 0; i < r.Intn(15); i++ {
				k += 1 + r.Intn(3) // overlapping ranges across sources
				entries = append(entries, e(fmt.Sprintf("%04d", k), uint64(10-s)))
			}
			its = append(its, NewSlice(entries))
		}
		got := Drain(NewDedup(NewMerging(its...), false))
		for i := 1; i < len(got); i++ {
			if bytes.Compare(got[i-1].Key, got[i].Key) >= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMerging8Way(b *testing.B) {
	const perSrc = 1000
	mk := func(off int) []Entry {
		entries := make([]Entry, perSrc)
		for i := range entries {
			entries[i] = e(fmt.Sprintf("%08d", i*8+off), uint64(off))
		}
		return entries
	}
	sources := make([][]Entry, 8)
	for s := range sources {
		sources[s] = mk(s)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		its := make([]Iterator, 8)
		for s := range its {
			its[s] = NewSlice(sources[s])
		}
		m := NewMerging(its...)
		n := 0
		for ; m.Valid(); m.Next() {
			n++
		}
		if n != perSrc*8 {
			b.Fatalf("merged %d", n)
		}
	}
}
