// Package iterator defines the entry and iterator abstractions shared by
// memtables, sstables and the LSM engine, plus combinators: a k-way heap
// merging iterator (the core of compaction's merge-sort) and a dedup filter
// that keeps only the newest version of each key and optionally drops
// tombstones (the behaviour of a major compaction, where deleted keys are
// purged).
package iterator

import "bytes"

// Entry is a single versioned key-value record. Tombstone entries mark
// deletions; they carry no value.
type Entry struct {
	Key       []byte
	Value     []byte
	Seq       uint64 // monotonically increasing write sequence number
	Tombstone bool
}

// Iterator yields entries in non-decreasing key order. Multiple entries may
// share a key (different versions); sources must yield them in descending
// Seq order if they contain several, though typically each source holds at
// most one version per key.
type Iterator interface {
	// Valid reports whether the iterator is positioned at an entry.
	Valid() bool
	// Entry returns the current entry. Only valid when Valid() is true.
	Entry() Entry
	// Next advances to the following entry.
	Next()
}

// SliceIterator iterates over an in-memory, pre-sorted slice of entries.
type SliceIterator struct {
	entries []Entry
	pos     int
}

// NewSlice wraps entries, which must already be sorted by (Key asc, Seq desc).
func NewSlice(entries []Entry) *SliceIterator {
	return &SliceIterator{entries: entries}
}

// Valid implements Iterator.
func (it *SliceIterator) Valid() bool { return it.pos < len(it.entries) }

// Entry implements Iterator.
func (it *SliceIterator) Entry() Entry { return it.entries[it.pos] }

// Next implements Iterator.
func (it *SliceIterator) Next() { it.pos++ }

// Merging merges any number of sorted child iterators into one sorted
// stream. When two children are positioned at equal keys, the child with
// the lower index wins ties first (callers order children newest-first so
// the freshest version surfaces before older ones).
type Merging struct {
	children []Iterator
	heap     []int // indices into children, ordered as a binary min-heap
}

// NewMerging builds a merging iterator over children. Children that are
// initially invalid are skipped.
func NewMerging(children ...Iterator) *Merging {
	m := &Merging{children: children}
	for i, c := range children {
		if c.Valid() {
			m.heap = append(m.heap, i)
		}
	}
	for i := len(m.heap)/2 - 1; i >= 0; i-- {
		m.siftDown(i)
	}
	return m
}

// less orders child i before child j by (key, child index).
func (m *Merging) less(i, j int) bool {
	a, b := m.heap[i], m.heap[j]
	cmp := bytes.Compare(m.children[a].Entry().Key, m.children[b].Entry().Key)
	if cmp != 0 {
		return cmp < 0
	}
	return a < b
}

func (m *Merging) siftDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(m.heap) && m.less(l, smallest) {
			smallest = l
		}
		if r < len(m.heap) && m.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		m.heap[i], m.heap[smallest] = m.heap[smallest], m.heap[i]
		i = smallest
	}
}

// Valid implements Iterator.
func (m *Merging) Valid() bool { return len(m.heap) > 0 }

// Entry implements Iterator.
func (m *Merging) Entry() Entry { return m.children[m.heap[0]].Entry() }

// Next implements Iterator.
func (m *Merging) Next() {
	top := m.heap[0]
	m.children[top].Next()
	if !m.children[top].Valid() {
		m.heap[0] = m.heap[len(m.heap)-1]
		m.heap = m.heap[:len(m.heap)-1]
	}
	if len(m.heap) > 0 {
		m.siftDown(0)
	}
}

// Dedup filters a sorted stream so each key appears once, keeping the
// highest-Seq (newest) version within each run of equal keys. If
// dropTombstones is set, keys whose newest version is a deletion are
// omitted entirely — the semantics of a major compaction producing the
// single final sstable.
type Dedup struct {
	src            Iterator
	dropTombstones bool
	cur            Entry
	valid          bool
}

// NewDedup wraps src. dropTombstones selects major-compaction semantics.
func NewDedup(src Iterator, dropTombstones bool) *Dedup {
	d := &Dedup{src: src, dropTombstones: dropTombstones}
	d.advance()
	return d
}

// advance consumes the next run of equal keys from src and positions d at
// the winning version, skipping dropped tombstones.
func (d *Dedup) advance() {
	for d.src.Valid() {
		best := d.src.Entry()
		d.src.Next()
		for d.src.Valid() && bytes.Equal(d.src.Entry().Key, best.Key) {
			if e := d.src.Entry(); e.Seq > best.Seq {
				best = e
			}
			d.src.Next()
		}
		if best.Tombstone && d.dropTombstones {
			continue
		}
		d.cur = best
		d.valid = true
		return
	}
	d.valid = false
}

// Valid implements Iterator.
func (d *Dedup) Valid() bool { return d.valid }

// Entry implements Iterator.
func (d *Dedup) Entry() Entry { return d.cur }

// Next implements Iterator.
func (d *Dedup) Next() { d.advance() }

// Drain reads all remaining entries from it into a slice; convenience for
// tests and small merges.
func Drain(it Iterator) []Entry {
	var out []Entry
	for ; it.Valid(); it.Next() {
		out = append(out, it.Entry())
	}
	return out
}
