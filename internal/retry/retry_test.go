package retry

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestDelayGrowsAndCaps(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Jitter: -1}
	want := []time.Duration{10, 20, 40, 80, 80, 80}
	for i, w := range want {
		if got := b.Delay(i); got != w*time.Millisecond {
			t.Errorf("Delay(%d) = %v, want %v", i, got, w*time.Millisecond)
		}
	}
	if got := b.Delay(-3); got != 10*time.Millisecond {
		t.Errorf("Delay(negative) = %v", got)
	}
}

func TestDelayJitterBounds(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: time.Second, Jitter: 0.5}
	for i := 0; i < 200; i++ {
		d := b.Delay(1) // nominal 200ms
		if d < 100*time.Millisecond || d > 200*time.Millisecond {
			t.Fatalf("jittered delay %v outside [100ms, 200ms]", d)
		}
	}
	// Jitter actually varies.
	first := b.Delay(1)
	varied := false
	for i := 0; i < 50 && !varied; i++ {
		varied = b.Delay(1) != first
	}
	if !varied {
		t.Error("jittered delays never varied")
	}
}

func TestDefaultsApplied(t *testing.T) {
	var b Backoff // all zero: Base 10ms, Max 2s, Jitter 0.5
	if d := b.Delay(0); d <= 0 || d > defaultBase {
		t.Errorf("zero-value Delay(0) = %v", d)
	}
	if d := b.Delay(40); d > defaultMax {
		t.Errorf("zero-value Delay(40) = %v exceeds default max", d)
	}
}

func TestSleepHonorsContext(t *testing.T) {
	b := Backoff{Base: time.Hour, Jitter: -1}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- b.Sleep(ctx, 0) }()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Sleep = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Sleep did not return after cancellation")
	}
}

func TestDoRetriesUntilSuccess(t *testing.T) {
	b := Backoff{Base: time.Millisecond, Jitter: -1}
	calls := 0
	err := Do(context.Background(), 5, b, func(attempt int) error {
		if attempt != calls {
			t.Errorf("attempt = %d on call %d", attempt, calls)
		}
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("Do = %v after %d calls", err, calls)
	}
}

func TestDoReturnsLastError(t *testing.T) {
	b := Backoff{Base: time.Millisecond, Jitter: -1}
	boom := errors.New("boom")
	calls := 0
	err := Do(context.Background(), 3, b, func(int) error { calls++; return boom })
	if !errors.Is(err, boom) || calls != 3 {
		t.Fatalf("Do = %v after %d calls, want boom after 3", err, calls)
	}
}

func TestDoStopsOnContextExpiry(t *testing.T) {
	b := Backoff{Base: time.Hour, Jitter: -1}
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int32
	done := make(chan error, 1)
	go func() {
		done <- Do(ctx, 10, b, func(int) error { calls.Add(1); return errors.New("x") })
	}()
	for calls.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Do = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Do did not return after cancellation")
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("fn ran %d times after cancellation mid-backoff", n)
	}
}

func TestDoPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Do(ctx, 3, Backoff{}, func(int) error { t.Fatal("fn ran"); return nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("Do on cancelled ctx = %v", err)
	}
}
