// Package retry is the engine's one implementation of jittered
// exponential backoff. It exists because backoff keeps being needed at
// every layer that talks to something that can transiently fail — the
// background compactor retrying after an injected I/O error, the cluster
// router retrying a replica write, the failure detector probing a down
// node — and each ad-hoc copy picks different constants and a different
// jitter story. The package is a leaf (it imports only the standard
// library) so any layer can depend on it without cycles.
package retry

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// Backoff computes per-attempt delays: Base doubling each attempt, capped
// at Max, with a uniformly random jitter fraction subtracted so that many
// independent retriers (replica writes fanned out together, N routers
// probing the same dead node) do not synchronize into retry storms. The
// zero value is usable and selects the defaults below.
type Backoff struct {
	// Base is the delay before the first retry. Zero selects 10ms.
	Base time.Duration
	// Max caps the exponential growth. Zero selects 2s.
	Max time.Duration
	// Jitter is the fraction of the computed delay randomly shaved off:
	// the actual delay is uniform in [d*(1-Jitter), d]. Zero selects 0.5;
	// negative disables jitter (deterministic delays, for tests).
	Jitter float64
}

const (
	defaultBase   = 10 * time.Millisecond
	defaultMax    = 2 * time.Second
	defaultJitter = 0.5
)

// jitterRand is the shared jitter source. math/rand's global functions
// would do, but a dedicated locked source keeps this package independent
// of global seeding and makes the lock scope explicit.
var (
	jitterMu   sync.Mutex
	jitterRand = rand.New(rand.NewSource(time.Now().UnixNano()))
)

// Delay returns the backoff delay for the given retry attempt, counted
// from 0 (the delay before the first retry). Delays grow Base·2^attempt up
// to Max, then jitter shaves off a random fraction.
func (b Backoff) Delay(attempt int) time.Duration {
	base, max, jitter := b.Base, b.Max, b.Jitter
	if base <= 0 {
		base = defaultBase
	}
	if max <= 0 {
		max = defaultMax
	}
	switch {
	case jitter == 0:
		jitter = defaultJitter
	case jitter < 0:
		jitter = 0
	case jitter > 1:
		jitter = 1
	}
	if attempt < 0 {
		attempt = 0
	}
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	if jitter > 0 {
		jitterMu.Lock()
		f := jitterRand.Float64()
		jitterMu.Unlock()
		d = d - time.Duration(f*jitter*float64(d))
	}
	if d < 0 {
		d = 0
	}
	return d
}

// Sleep blocks for the attempt's delay or until ctx expires, returning
// ctx's error in the latter case. The timer is torn down on early exit.
func (b Backoff) Sleep(ctx context.Context, attempt int) error {
	d := b.Delay(attempt)
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Do runs fn up to attempts times, sleeping the backoff delay between
// tries. It returns nil on the first success; the last failure when every
// attempt errored; and ctx's error immediately if the context expires
// while waiting (the in-flight fn is never interrupted — bound it with its
// own deadline if it can block). fn receives the attempt number, counted
// from 0.
func Do(ctx context.Context, attempts int, b Backoff, fn func(attempt int) error) error {
	if attempts < 1 {
		attempts = 1
	}
	var last error
	for i := 0; i < attempts; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if last = fn(i); last == nil {
			return nil
		}
		if i == attempts-1 {
			break
		}
		if err := b.Sleep(ctx, i); err != nil {
			return err
		}
	}
	return last
}
