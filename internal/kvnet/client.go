package kvnet

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/kverr"
)

// ErrNotFound reports a missing key. It aliases the canonical sentinel in
// internal/kverr — the same value the embedded engine returns — so a Get
// against a remote server and one against a local store fail identically.
var ErrNotFound = kverr.ErrNotFound

// ErrClientClosed reports use of a Client whose connection has been closed
// or poisoned by a cancelled request.
var ErrClientClosed = errors.New("kvnet: client closed")

// Client is a connection to one server. It is safe for concurrent use;
// requests are serialized over the single connection.
//
// Requests are not multiplexed: a context that expires mid-request leaves
// the connection with an unread (or half-written) frame, so the client
// closes the connection and every later call returns ErrClientClosed.
// Callers that need to survive cancelled requests re-dial — the public kv
// façade does this transparently.
type Client struct {
	mu   sync.Mutex // serializes requests; never held by Close
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
	// closed marks a connection torn down by Close or poisoned by a
	// transport failure; the client is unusable afterwards. It is atomic —
	// not guarded by mu — so Close can tear down a connection wedged in a
	// blocking read (conn.Close fails the in-flight I/O) without waiting
	// for the request holding mu to finish.
	closed atomic.Bool

	// dlMu guards deadline generation bookkeeping between a request and
	// the context watcher that force-expires its connection deadline.
	dlMu  sync.Mutex
	dlGen uint64
}

// Dial connects to a server at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, fmt.Errorf("kvnet: dial: %w", err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (useful with net.Pipe in
// tests).
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}
}

// Close closes the connection. It deliberately does not take the request
// lock: a request blocked mid-read against a dead peer holds that lock,
// and closing the connection out from under it is exactly what unblocks
// it.
func (c *Client) Close() error {
	if !c.closed.CompareAndSwap(false, true) {
		return nil
	}
	return c.conn.Close()
}

// Healthy reports whether the client's connection is still usable: not
// closed and not poisoned by a cancelled or failed request.
func (c *Client) Healthy() bool {
	return !c.closed.Load()
}

// armDeadline points the connection deadline at ctx: the context's
// deadline if it has one, cleared otherwise, and — for cancellable
// contexts — a watcher that yanks the deadline to the past the moment ctx
// is cancelled, failing the in-flight read or write promptly. The returned
// stop func must be called when the request finishes; the generation
// counter keeps a late-firing watcher from clobbering a later request's
// deadline.
func (c *Client) armDeadline(ctx context.Context) (stop func()) {
	c.dlMu.Lock()
	c.dlGen++
	gen := c.dlGen
	if dl, ok := ctx.Deadline(); ok {
		c.conn.SetDeadline(dl)
	} else {
		c.conn.SetDeadline(time.Time{})
	}
	c.dlMu.Unlock()
	if ctx.Done() == nil {
		return func() {}
	}
	cancel := context.AfterFunc(ctx, func() {
		c.dlMu.Lock()
		defer c.dlMu.Unlock()
		if c.dlGen == gen {
			c.conn.SetDeadline(time.Now())
		}
	})
	return func() { cancel() }
}

// roundTrip sends one request and reads one response, with the connection
// deadline derived from ctx so a dead peer (or a cancelled caller) cannot
// wedge the call forever.
func (c *Client) roundTrip(ctx context.Context, req Request) (Response, error) {
	if err := ctx.Err(); err != nil {
		return Response{}, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed.Load() {
		return Response{}, ErrClientClosed
	}
	if err := ctx.Err(); err != nil {
		// The context expired while this request was queued behind others
		// on the shared connection. Nothing has touched the wire, so the
		// frame stream is still synchronized: fail the request but leave
		// the connection healthy for the requests behind it. Poisoning
		// here would cascade one slow burst into a redial storm and
		// false-positive down verdicts for a perfectly live node.
		return Response{}, fmt.Errorf("kvnet: request aborted: %w", err)
	}
	stop := c.armDeadline(ctx)
	defer stop()
	payload, err := c.exchange(req)
	if err != nil {
		if c.closed.Load() {
			// Close raced in and failed the I/O on purpose.
			return Response{}, ErrClientClosed
		}
		// The frame stream is now unsynchronized: poison the connection.
		c.closed.Store(true)
		c.conn.Close()
		if ctxErr := ctx.Err(); ctxErr != nil {
			return Response{}, fmt.Errorf("kvnet: request aborted: %w", ctxErr)
		}
		// A connection timeout can race the context's own timer: the only
		// deadlines armed on this connection come from ctx, so a timeout
		// here with a ctx deadline in the past is that deadline firing.
		var netErr net.Error
		if errors.As(err, &netErr) && netErr.Timeout() {
			if dl, ok := ctx.Deadline(); ok && !time.Now().Before(dl) {
				return Response{}, fmt.Errorf("kvnet: request aborted: %w", context.DeadlineExceeded)
			}
		}
		return Response{}, err
	}
	resp, err := DecodeResponse(payload)
	if err != nil {
		return Response{}, err
	}
	if resp.Status == StatusError {
		return resp, decodeServerError(resp.Code, resp.Err)
	}
	return resp, nil
}

// exchange writes one frame and reads one back; the caller holds c.mu.
func (c *Client) exchange(req Request) ([]byte, error) {
	if err := writeFrame(c.w, EncodeRequest(req)); err != nil {
		return nil, err
	}
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	return readFrame(c.r)
}

// decodeServerError maps a wire error code back to the canonical sentinel
// it was encoded from, so remote engine errors compare with errors.Is
// exactly like local ones.
func decodeServerError(code ErrCode, msg string) error {
	switch code {
	case CodeClosed:
		return fmt.Errorf("kvnet: server: %w", kverr.ErrClosed)
	case CodeStalled:
		return fmt.Errorf("kvnet: server: %w", kverr.ErrStalled)
	case CodeBatchTooLarge:
		return fmt.Errorf("kvnet: server: %w", kverr.ErrBatchTooLarge)
	case CodeCorrupt:
		return fmt.Errorf("kvnet: server: %w", kverr.ErrCorrupt)
	case CodeReadOnly:
		return fmt.Errorf("kvnet: server: %w", kverr.ErrReadOnly)
	case CodeCanceled:
		return fmt.Errorf("kvnet: server: %w", context.Canceled)
	case CodeDeadlineExceeded:
		return fmt.Errorf("kvnet: server: %w", context.DeadlineExceeded)
	default:
		return fmt.Errorf("kvnet: server: %s", msg)
	}
}

// Put stores key → value.
func (c *Client) Put(ctx context.Context, key, value []byte) error {
	_, err := c.roundTrip(ctx, Request{Op: OpPut, Key: key, Value: value})
	return err
}

// Get returns the value for key, or ErrNotFound. A stored empty value and
// a missing key are distinct: the former returns an empty slice and nil
// error, the latter ErrNotFound (the wire protocol carries not-found as an
// explicit status, not as an empty value).
func (c *Client) Get(ctx context.Context, key []byte) ([]byte, error) {
	resp, err := c.roundTrip(ctx, Request{Op: OpGet, Key: key})
	if err != nil {
		return nil, err
	}
	if resp.Status == StatusNotFound {
		return nil, ErrNotFound
	}
	return resp.Value, nil
}

// Delete removes key.
func (c *Client) Delete(ctx context.Context, key []byte) error {
	_, err := c.roundTrip(ctx, Request{Op: OpDelete, Key: key})
	return err
}

// Write commits a batch of operations atomically in one round trip: the
// server applies the whole batch through the engine's group-commit
// pipeline, so it becomes durable and visible as a unit. An empty batch is
// a no-op.
func (c *Client) Write(ctx context.Context, batch []BatchOp) error {
	if len(batch) == 0 {
		return nil
	}
	_, err := c.roundTrip(ctx, Request{Op: OpWrite, Batch: batch})
	return err
}

// Scan returns up to limit entries whose keys start with prefix (all keys
// when prefix is empty), in key order.
func (c *Client) Scan(ctx context.Context, prefix []byte, limit int) ([]ScanEntry, error) {
	if limit < 0 {
		limit = 0
	}
	resp, err := c.roundTrip(ctx, Request{Op: OpScan, Prefix: prefix, Limit: uint64(limit)})
	if err != nil {
		return nil, err
	}
	return resp.Entries, nil
}

// Range returns up to limit entries with start <= key < end in key order —
// one page of a range scan. A nil end means no upper bound. Iterating a
// large range means calling Range repeatedly with start advanced past the
// last key of the previous page.
func (c *Client) Range(ctx context.Context, start, end []byte, limit int) ([]ScanEntry, error) {
	if limit < 0 {
		limit = 0
	}
	resp, err := c.roundTrip(ctx, Request{Op: OpRange, Start: start, End: end, Limit: uint64(limit)})
	if err != nil {
		return nil, err
	}
	return resp.Entries, nil
}

// Ping probes the server for liveness without touching the engine. A nil
// return means the peer decoded a frame and answered: the connection is
// live end to end. Health checkers call it on an interval so dead peers
// are demoted before user requests hit them.
func (c *Client) Ping(ctx context.Context) error {
	_, err := c.roundTrip(ctx, Request{Op: OpPing})
	return err
}

// Flush forces a memtable flush on the server.
func (c *Client) Flush(ctx context.Context) error {
	_, err := c.roundTrip(ctx, Request{Op: OpFlush})
	return err
}

// Compact triggers a major compaction scheduled by the named strategy.
func (c *Client) Compact(ctx context.Context, strategy string, k int) (*CompactInfo, error) {
	resp, err := c.roundTrip(ctx, Request{Op: OpCompact, Strategy: strategy, K: uint64(k)})
	if err != nil {
		return nil, err
	}
	if resp.Compact == nil {
		return nil, fmt.Errorf("kvnet: malformed compact response: %w", ErrProtocol)
	}
	return resp.Compact, nil
}

// Stats fetches server statistics.
func (c *Client) Stats(ctx context.Context) (*StatsInfo, error) {
	resp, err := c.roundTrip(ctx, Request{Op: OpStats})
	if err != nil {
		return nil, err
	}
	if resp.Stats == nil {
		return nil, fmt.Errorf("kvnet: malformed stats response: %w", ErrProtocol)
	}
	return resp.Stats, nil
}
