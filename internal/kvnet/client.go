package kvnet

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// ErrNotFound reports a missing key, mirroring lsm.ErrNotFound across the
// wire.
var ErrNotFound = errors.New("kvnet: key not found")

// Client is a connection to one server. It is safe for concurrent use;
// requests are serialized over the single connection.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// Dial connects to a server at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, fmt.Errorf("kvnet: dial: %w", err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (useful with net.Pipe in
// tests).
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends one request and reads one response.
func (c *Client) roundTrip(req Request) (Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := writeFrame(c.w, EncodeRequest(req)); err != nil {
		return Response{}, err
	}
	if err := c.w.Flush(); err != nil {
		return Response{}, err
	}
	payload, err := readFrame(c.r)
	if err != nil {
		return Response{}, err
	}
	resp, err := DecodeResponse(payload)
	if err != nil {
		return Response{}, err
	}
	if resp.Status == StatusError {
		return resp, fmt.Errorf("kvnet: server: %s", resp.Err)
	}
	return resp, nil
}

// Put stores key → value.
func (c *Client) Put(key, value []byte) error {
	_, err := c.roundTrip(Request{Op: OpPut, Key: key, Value: value})
	return err
}

// Get returns the value for key, or ErrNotFound.
func (c *Client) Get(key []byte) ([]byte, error) {
	resp, err := c.roundTrip(Request{Op: OpGet, Key: key})
	if err != nil {
		return nil, err
	}
	if resp.Status == StatusNotFound {
		return nil, ErrNotFound
	}
	return resp.Value, nil
}

// Delete removes key.
func (c *Client) Delete(key []byte) error {
	_, err := c.roundTrip(Request{Op: OpDelete, Key: key})
	return err
}

// Write commits a batch of operations atomically in one round trip: the
// server applies the whole batch through the engine's group-commit
// pipeline, so it becomes durable and visible as a unit. An empty batch is
// a no-op.
func (c *Client) Write(batch []BatchOp) error {
	if len(batch) == 0 {
		return nil
	}
	_, err := c.roundTrip(Request{Op: OpWrite, Batch: batch})
	return err
}

// Scan returns up to limit entries whose keys start with prefix (all keys
// when prefix is empty), in key order.
func (c *Client) Scan(prefix []byte, limit int) ([]ScanEntry, error) {
	if limit < 0 {
		limit = 0
	}
	resp, err := c.roundTrip(Request{Op: OpScan, Prefix: prefix, Limit: uint64(limit)})
	if err != nil {
		return nil, err
	}
	return resp.Entries, nil
}

// Flush forces a memtable flush on the server.
func (c *Client) Flush() error {
	_, err := c.roundTrip(Request{Op: OpFlush})
	return err
}

// Compact triggers a major compaction scheduled by the named strategy.
func (c *Client) Compact(strategy string, k int) (*CompactInfo, error) {
	resp, err := c.roundTrip(Request{Op: OpCompact, Strategy: strategy, K: uint64(k)})
	if err != nil {
		return nil, err
	}
	if resp.Compact == nil {
		return nil, fmt.Errorf("kvnet: malformed compact response")
	}
	return resp.Compact, nil
}

// Stats fetches server statistics.
func (c *Client) Stats() (*StatsInfo, error) {
	resp, err := c.roundTrip(Request{Op: OpStats})
	if err != nil {
		return nil, err
	}
	if resp.Stats == nil {
		return nil, fmt.Errorf("kvnet: malformed stats response")
	}
	return resp.Stats, nil
}
