package kvnet

import "testing"

// FuzzDecodeRequest ensures arbitrary client bytes cannot panic the
// server-side decoder.
func FuzzDecodeRequest(f *testing.F) {
	f.Add(EncodeRequest(Request{Op: OpPut, Key: []byte("k"), Value: []byte("v")}))
	f.Add(EncodeRequest(Request{Op: OpScan, Prefix: []byte("p"), Limit: 9}))
	f.Add(EncodeRequest(Request{Op: OpCompact, Strategy: "SI", K: 2}))
	f.Add(EncodeRequest(Request{Op: OpWrite, Batch: []BatchOp{
		{Key: []byte("a"), Value: []byte("1")},
		{Delete: true, Key: []byte("b")},
	}}))
	f.Add([]byte{})
	f.Add([]byte{0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeRequest(data)
		if err != nil {
			return
		}
		// Valid decodes must re-encode/decode stably.
		again, err := DecodeRequest(EncodeRequest(req))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again.Op != req.Op || again.Strategy != req.Strategy || again.Limit != req.Limit || again.K != req.K ||
			len(again.Batch) != len(req.Batch) {
			t.Fatalf("request changed across round trip")
		}
	})
}

// FuzzDecodeResponse ensures arbitrary server bytes cannot panic the
// client-side decoder.
func FuzzDecodeResponse(f *testing.F) {
	f.Add(EncodeResponse(Response{Status: StatusOK, Value: []byte("v")}))
	f.Add(EncodeResponse(Response{Status: StatusOK, Entries: []ScanEntry{{Key: []byte("k"), Value: []byte("v")}}}))
	f.Add(EncodeResponse(Response{Status: StatusError, Err: "x"}))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = DecodeResponse(data)
	})
}
