package kvnet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/kverr"
	"repro/internal/lsm"
)

// TestEmptyValueVsNotFound: a stored empty value and a missing key must be
// distinguishable over the wire — not-found travels as an explicit status,
// never as an empty value.
func TestEmptyValueVsNotFound(t *testing.T) {
	c, _, _ := startServer(t)
	ctx := context.Background()
	if err := c.Put(ctx, []byte("empty"), nil); err != nil {
		t.Fatal(err)
	}
	v, err := c.Get(ctx, []byte("empty"))
	if err != nil {
		t.Fatalf("Get(empty-value key) = %v, want nil error", err)
	}
	if len(v) != 0 {
		t.Fatalf("Get(empty-value key) = %q, want empty", v)
	}
	if _, err := c.Get(ctx, []byte("missing")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(missing) = %v, want ErrNotFound", err)
	}
	// The same distinction must survive a flush to sstables.
	if err := c.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if v, err := c.Get(ctx, []byte("empty")); err != nil || len(v) != 0 {
		t.Fatalf("Get(empty-value key) after flush = %q, %v", v, err)
	}
}

// TestTypedErrorsOverWire: canonical engine errors decode back to the same
// sentinels on the client side, so errors.Is works across the network.
func TestTypedErrorsOverWire(t *testing.T) {
	ctx := context.Background()
	t.Run("batch too large", func(t *testing.T) {
		c, _, _ := startServer(t)
		big := []BatchOp{{Key: []byte("k"), Value: make([]byte, lsm.MaxBatchBytes+1)}}
		err := c.Write(ctx, big)
		if !errors.Is(err, kverr.ErrBatchTooLarge) {
			t.Fatalf("oversized remote Write = %v, want ErrBatchTooLarge", err)
		}
	})
	t.Run("engine closed", func(t *testing.T) {
		db, err := lsm.Open(t.TempDir(), lsm.Options{})
		if err != nil {
			t.Fatal(err)
		}
		srv := NewServer(db)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(ln)
		defer srv.Close()
		c, err := Dial(ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		db.Close() // close the engine under the running server
		if err := c.Put(ctx, []byte("k"), []byte("v")); !errors.Is(err, kverr.ErrClosed) {
			t.Fatalf("Put against closed engine = %v, want ErrClosed", err)
		}
	})
}

// TestRangePaging: OpRange serves bounded pages a client can stitch into a
// full ordered scan.
func TestRangePaging(t *testing.T) {
	c, _, _ := startServer(t)
	ctx := context.Background()
	const n = 57
	for i := 0; i < n; i++ {
		if err := c.Put(ctx, []byte(fmt.Sprintf("k%03d", i)), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	var got []ScanEntry
	start := []byte("k010")
	end := []byte("k045")
	for {
		page, err := c.Range(ctx, start, end, 10)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, page...)
		if len(page) < 10 {
			break
		}
		last := page[len(page)-1].Key
		start = append(append([]byte(nil), last...), 0)
	}
	if len(got) != 35 {
		t.Fatalf("paged range returned %d entries, want 35", len(got))
	}
	for i, e := range got {
		want := fmt.Sprintf("k%03d", i+10)
		if string(e.Key) != want {
			t.Fatalf("entry %d = %q, want %q", i, e.Key, want)
		}
	}
	// Open end bound: nil end scans to the last key.
	all, err := c.Range(ctx, nil, nil, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != n {
		t.Fatalf("open range returned %d entries, want %d", len(all), n)
	}
	// Degenerate page: start past the last key.
	none, err := c.Range(ctx, []byte("z"), nil, 10)
	if err != nil || len(none) != 0 {
		t.Fatalf("range past the end = %d entries, %v", len(none), err)
	}
}

// TestClientContextCancellation: a context cancelled mid-request releases
// the caller promptly and poisons the connection (the frame stream lost
// sync); later calls fail with ErrClientClosed rather than misparsing.
func TestClientContextCancellation(t *testing.T) {
	// A listener that accepts and never replies simulates a dead peer.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
			_ = conn // read nothing, reply with nothing
		}
	}()
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	begin := time.Now()
	_, err = c.Get(ctx, []byte("k"))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Get against mute peer = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(begin); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	if c.Healthy() {
		t.Fatal("connection still marked healthy after mid-request cancel")
	}
	if _, err := c.Get(context.Background(), []byte("k")); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("Get on poisoned client = %v, want ErrClientClosed", err)
	}
}

// TestClientContextDeadline: a context deadline bounds the round trip
// against a peer that never replies.
func TestClientContextDeadline(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
		}
	}()
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	begin := time.Now()
	_, err = c.Get(ctx, []byte("k"))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Get with deadline against mute peer = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(begin); elapsed > 5*time.Second {
		t.Fatalf("deadline enforcement took %v", elapsed)
	}
}

// TestServerIdleTimeout: the server reaps connections that go quiet, so a
// dead peer cannot pin a handler goroutine forever.
func TestServerIdleTimeout(t *testing.T) {
	db, err := lsm.Open(t.TempDir(), lsm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	srv := NewServer(db)
	srv.IdleTimeout = 100 * time.Millisecond
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Say nothing. The server must hang up on its own.
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("expected the idle connection to be closed by the server")
	}
}

// TestErrorCodeRoundTrip exercises the encode/decode of StatusError codes
// directly.
func TestErrorCodeRoundTrip(t *testing.T) {
	for _, code := range []ErrCode{CodeGeneric, CodeClosed, CodeStalled, CodeBatchTooLarge, CodeCanceled, CodeDeadlineExceeded} {
		in := Response{Status: StatusError, Code: code, Err: "boom"}
		out, err := DecodeResponse(EncodeResponse(in))
		if err != nil {
			t.Fatalf("code %d: %v", code, err)
		}
		if out.Code != code || out.Err != "boom" {
			t.Fatalf("code %d round-tripped to %d/%q", code, out.Code, out.Err)
		}
	}
}

// TestRangeRequestRoundTrip: the End presence flag survives encoding, so a
// nil (open) end is not confused with an empty one.
func TestRangeRequestRoundTrip(t *testing.T) {
	for _, req := range []Request{
		{Op: OpRange, Start: []byte("a"), End: []byte("b"), Limit: 7},
		{Op: OpRange, Start: nil, End: nil, Limit: 0},
		{Op: OpRange, Start: []byte("x"), End: nil, Limit: 3},
	} {
		got, err := DecodeRequest(EncodeRequest(req))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Start, req.Start) && !(len(got.Start) == 0 && len(req.Start) == 0) {
			t.Fatalf("start %q -> %q", req.Start, got.Start)
		}
		if (req.End == nil) != (got.End == nil) {
			t.Fatalf("end nil-ness lost: %v -> %v", req.End, got.End)
		}
		if !bytes.Equal(got.End, req.End) {
			t.Fatalf("end %q -> %q", req.End, got.End)
		}
		if got.Limit != req.Limit {
			t.Fatalf("limit %d -> %d", req.Limit, got.Limit)
		}
	}
}

// TestCloseUnblocksWedgedRequest: Close must tear down a connection even
// while a request is blocked mid-read against a dead peer — it must not
// wait for the request to finish (it never would).
func TestCloseUnblocksWedgedRequest(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
		}
	}()
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := c.Get(context.Background(), []byte("k")) // no deadline: blocks forever
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the Get wedge in its read
	closed := make(chan error, 1)
	go func() { closed <- c.Close() }()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close blocked behind a wedged request")
	}
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("wedged Get succeeded after Close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("wedged Get did not return after Close")
	}
}
