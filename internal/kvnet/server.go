package kvnet

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/kverr"
	"repro/internal/lsm"
)

// Engine is the storage surface the server exposes over the wire. Both
// the single-partition engine (*lsm.DB) and the sharded store
// (*store.Store) satisfy it, so a node can serve one shard or many behind
// the same protocol. Context-taking methods let the server abort in-flight
// work — a scan mid-drain, a write parked in the commit queue — when it
// shuts down.
type Engine interface {
	PutContext(ctx context.Context, key, value []byte) error
	GetContext(ctx context.Context, key []byte) ([]byte, error)
	DeleteContext(ctx context.Context, key []byte) error
	WriteContext(ctx context.Context, b *lsm.WriteBatch) error
	RangeContext(ctx context.Context, start, end []byte, fn func(key, value []byte) error) error
	Flush() error
	MajorCompact(strategy string, k int, seed int64) (*lsm.CompactionResult, error)
	Stats() lsm.Stats
}

// Default connection deadlines; see the Server fields of the same names.
const (
	DefaultIdleTimeout  = 5 * time.Minute
	DefaultWriteTimeout = time.Minute
)

// Server serves one storage engine to many concurrent connections.
// Connection handling is one goroutine per connection; the engine provides
// its own synchronization.
type Server struct {
	db Engine

	// IdleTimeout bounds how long a connection may sit between requests
	// (the read deadline while waiting for the next frame); a peer that
	// died without closing its socket is reaped instead of pinning a
	// handler goroutine forever. Zero disables. Set before Serve.
	IdleTimeout time.Duration
	// WriteTimeout bounds writing one response; a peer that stopped
	// reading cannot wedge a handler in a blocked send. Zero disables.
	// Set before Serve.
	WriteTimeout time.Duration

	// baseCtx is cancelled by Close; every request executes under it, so
	// in-flight scans and parked writes abort at server shutdown.
	baseCtx context.Context
	cancel  context.CancelFunc

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer wraps db. The caller retains ownership of db and closes it
// after the server shuts down.
func NewServer(db Engine) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		db:           db,
		IdleTimeout:  DefaultIdleTimeout,
		WriteTimeout: DefaultWriteTimeout,
		baseCtx:      ctx,
		cancel:       cancel,
		conns:        make(map[net.Conn]struct{}),
	}
}

// Serve accepts connections on ln until Close is called. It always returns
// a non-nil error; after Close the error is net.ErrClosed.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return net.ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return net.ErrClosed
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.handle(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// Close stops accepting, closes all connections, aborts in-flight requests
// and waits for handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.cancel()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		if s.IdleTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.IdleTimeout))
		}
		payload, err := readFrame(r)
		if err != nil {
			return // EOF, idle timeout or broken connection: nothing to reply to
		}
		req, err := DecodeRequest(payload)
		var resp Response
		if err != nil {
			resp = Response{Status: StatusError, Err: err.Error()}
		} else {
			resp = s.execute(s.baseCtx, req)
		}
		if s.WriteTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(s.WriteTimeout))
		}
		if err := writeFrame(w, EncodeResponse(resp)); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// errResponse maps an engine error onto the wire: not-found becomes its
// own status, the canonical taxonomy travels as an error code (so the
// client can rehydrate the exact sentinel), and anything else is a generic
// error string.
func errResponse(err error) Response {
	if errors.Is(err, kverr.ErrNotFound) {
		return Response{Status: StatusNotFound}
	}
	code := CodeGeneric
	switch {
	case errors.Is(err, kverr.ErrClosed):
		code = CodeClosed
	case errors.Is(err, kverr.ErrStalled):
		code = CodeStalled
	case errors.Is(err, kverr.ErrBatchTooLarge):
		code = CodeBatchTooLarge
	case errors.Is(err, kverr.ErrCorrupt):
		code = CodeCorrupt
	case errors.Is(err, kverr.ErrReadOnly):
		code = CodeReadOnly
	case errors.Is(err, context.Canceled):
		code = CodeCanceled
	case errors.Is(err, context.DeadlineExceeded):
		code = CodeDeadlineExceeded
	}
	return Response{Status: StatusError, Code: code, Err: err.Error()}
}

// prefixSuccessor returns the smallest key greater than every key with the
// given prefix, or nil if no such key exists (an all-0xff prefix). It
// turns a prefix filter into a range bound so a prefix scan touches only
// the matching key range.
func prefixSuccessor(prefix []byte) []byte {
	for i := len(prefix) - 1; i >= 0; i-- {
		if prefix[i] != 0xff {
			succ := append([]byte(nil), prefix[:i+1]...)
			succ[i]++
			return succ
		}
	}
	return nil
}

func (s *Server) execute(ctx context.Context, req Request) Response {
	switch req.Op {
	case OpPut:
		if err := s.db.PutContext(ctx, req.Key, req.Value); err != nil {
			return errResponse(err)
		}
		return Response{Status: StatusOK}
	case OpGet:
		v, err := s.db.GetContext(ctx, req.Key)
		if err != nil {
			return errResponse(err)
		}
		return Response{Status: StatusOK, Value: v}
	case OpDelete:
		if err := s.db.DeleteContext(ctx, req.Key); err != nil {
			return errResponse(err)
		}
		return Response{Status: StatusOK}
	case OpWrite:
		var batch lsm.WriteBatch
		for _, op := range req.Batch {
			if op.Delete {
				batch.Delete(op.Key)
			} else {
				batch.Put(op.Key, op.Value)
			}
		}
		if err := s.db.WriteContext(ctx, &batch); err != nil {
			return errResponse(err)
		}
		return Response{Status: StatusOK}
	case OpScan:
		var start, end []byte
		if len(req.Prefix) > 0 {
			start = req.Prefix
			end = prefixSuccessor(req.Prefix)
		}
		return s.scanRange(ctx, start, end, req.Limit)
	case OpRange:
		var start []byte
		if len(req.Start) > 0 {
			start = req.Start
		}
		return s.scanRange(ctx, start, req.End, req.Limit)
	case OpPing:
		// Liveness only: answer without touching the engine, so a ping
		// stays cheap and meaningful even while the engine is degraded
		// (read-only, compacting, stalled).
		return Response{Status: StatusOK}
	case OpFlush:
		if err := s.db.Flush(); err != nil {
			return errResponse(err)
		}
		return Response{Status: StatusOK}
	case OpCompact:
		k := int(req.K)
		if k < 2 {
			k = 2
		}
		res, err := s.db.MajorCompact(req.Strategy, k, 1)
		if err != nil {
			return errResponse(err)
		}
		return Response{Status: StatusOK, Compact: &CompactInfo{
			TablesBefore:  uint64(res.TablesBefore),
			Merges:        uint64(len(res.StepStats)),
			BytesRead:     res.BytesRead,
			BytesWritten:  res.BytesWritten,
			CostActual:    uint64(res.CostActual),
			DurationMicro: uint64(res.Duration.Microseconds()),
		}}
	case OpStats:
		st := s.db.Stats()
		return Response{Status: StatusOK, Stats: &StatsInfo{
			Tables:            uint64(st.Tables),
			TableBytes:        st.TableBytes,
			MemtableKeys:      uint64(st.MemtableKeys),
			Flushes:           uint64(st.Flushes),
			MinorCompactions:  uint64(st.MinorCompactions),
			MajorCompactions:  uint64(st.MajorCompactions),
			GroupCommits:      st.GroupCommits,
			GroupedWrites:     st.GroupedWrites,
			WALSyncs:          st.WALSyncs,
			WriteStalls:       uint64(st.WriteStalls),
			ReadOnly:          boolWord(st.ReadOnly),
			QuarantinedTables: uint64(st.QuarantinedTables),
			CleanupFailures:   st.CleanupFailures,
		}}
	default:
		return Response{Status: StatusError, Err: fmt.Sprintf("unknown op %d", req.Op)}
	}
}

// boolWord encodes a flag as the wire's 0/1 word.
func boolWord(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// scanRange serves one bounded, limited page of entries in key order; the
// shared body of OpScan (prefix converted to a range) and OpRange.
func (s *Server) scanRange(ctx context.Context, start, end []byte, limit uint64) Response {
	if limit == 0 || limit > 100000 {
		limit = 100000
	}
	entries := []ScanEntry{}
	stop := errors.New("scan limit")
	err := s.db.RangeContext(ctx, start, end, func(k, v []byte) error {
		entries = append(entries, ScanEntry{
			Key:   append([]byte(nil), k...),
			Value: append([]byte(nil), v...),
		})
		if uint64(len(entries)) >= limit {
			return stop
		}
		return nil
	})
	if err != nil && !errors.Is(err, stop) {
		return errResponse(err)
	}
	return Response{Status: StatusOK, Entries: entries}
}

var _ io.Closer = (*Server)(nil)
