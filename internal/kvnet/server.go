package kvnet

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/lsm"
)

// Engine is the storage surface the server exposes over the wire. Both
// the single-partition engine (*lsm.DB) and the sharded store
// (*store.Store) satisfy it, so a node can serve one shard or many behind
// the same protocol.
type Engine interface {
	Put(key, value []byte) error
	Get(key []byte) ([]byte, error)
	Delete(key []byte) error
	Write(b *lsm.WriteBatch) error
	Scan(fn func(key, value []byte) error) error
	Flush() error
	MajorCompact(strategy string, k int, seed int64) (*lsm.CompactionResult, error)
	Stats() lsm.Stats
}

// Server serves one storage engine to many concurrent connections.
// Connection handling is one goroutine per connection; the engine provides
// its own synchronization.
type Server struct {
	db Engine

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer wraps db. The caller retains ownership of db and closes it
// after the server shuts down.
func NewServer(db Engine) *Server {
	return &Server{db: db, conns: make(map[net.Conn]struct{})}
}

// Serve accepts connections on ln until Close is called. It always returns
// a non-nil error; after Close the error is net.ErrClosed.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return net.ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return net.ErrClosed
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.handle(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// Close stops accepting, closes all connections and waits for handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		payload, err := readFrame(r)
		if err != nil {
			return // EOF or broken connection: nothing to reply to
		}
		req, err := DecodeRequest(payload)
		var resp Response
		if err != nil {
			resp = Response{Status: StatusError, Err: err.Error()}
		} else {
			resp = s.execute(req)
		}
		if err := writeFrame(w, EncodeResponse(resp)); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

func errResponse(err error) Response {
	if errors.Is(err, lsm.ErrNotFound) {
		return Response{Status: StatusNotFound}
	}
	return Response{Status: StatusError, Err: err.Error()}
}

func (s *Server) execute(req Request) Response {
	switch req.Op {
	case OpPut:
		if err := s.db.Put(req.Key, req.Value); err != nil {
			return errResponse(err)
		}
		return Response{Status: StatusOK}
	case OpGet:
		v, err := s.db.Get(req.Key)
		if err != nil {
			return errResponse(err)
		}
		return Response{Status: StatusOK, Value: v}
	case OpDelete:
		if err := s.db.Delete(req.Key); err != nil {
			return errResponse(err)
		}
		return Response{Status: StatusOK}
	case OpWrite:
		var batch lsm.WriteBatch
		for _, op := range req.Batch {
			if op.Delete {
				batch.Delete(op.Key)
			} else {
				batch.Put(op.Key, op.Value)
			}
		}
		if err := s.db.Write(&batch); err != nil {
			return errResponse(err)
		}
		return Response{Status: StatusOK}
	case OpScan:
		limit := req.Limit
		if limit == 0 || limit > 100000 {
			limit = 100000
		}
		entries := []ScanEntry{}
		stop := errors.New("scan limit")
		err := s.db.Scan(func(k, v []byte) error {
			if len(req.Prefix) > 0 && !bytes.HasPrefix(k, req.Prefix) {
				if bytes.Compare(k, req.Prefix) > 0 {
					return stop // sorted scan: past the prefix range
				}
				return nil
			}
			entries = append(entries, ScanEntry{
				Key:   append([]byte(nil), k...),
				Value: append([]byte(nil), v...),
			})
			if uint64(len(entries)) >= limit {
				return stop
			}
			return nil
		})
		if err != nil && !errors.Is(err, stop) {
			return errResponse(err)
		}
		return Response{Status: StatusOK, Entries: entries}
	case OpFlush:
		if err := s.db.Flush(); err != nil {
			return errResponse(err)
		}
		return Response{Status: StatusOK}
	case OpCompact:
		k := int(req.K)
		if k < 2 {
			k = 2
		}
		res, err := s.db.MajorCompact(req.Strategy, k, 1)
		if err != nil {
			return errResponse(err)
		}
		return Response{Status: StatusOK, Compact: &CompactInfo{
			TablesBefore:  uint64(res.TablesBefore),
			Merges:        uint64(len(res.StepStats)),
			BytesRead:     res.BytesRead,
			BytesWritten:  res.BytesWritten,
			CostActual:    uint64(res.CostActual),
			DurationMicro: uint64(res.Duration.Microseconds()),
		}}
	case OpStats:
		st := s.db.Stats()
		return Response{Status: StatusOK, Stats: &StatsInfo{
			Tables:           uint64(st.Tables),
			TableBytes:       st.TableBytes,
			MemtableKeys:     uint64(st.MemtableKeys),
			Flushes:          uint64(st.Flushes),
			MinorCompactions: uint64(st.MinorCompactions),
			GroupCommits:     st.GroupCommits,
			GroupedWrites:    st.GroupedWrites,
			WALSyncs:         st.WALSyncs,
			WriteStalls:      uint64(st.WriteStalls),
		}}
	default:
		return Response{Status: StatusError, Err: fmt.Sprintf("unknown op %d", req.Op)}
	}
}

var _ io.Closer = (*Server)(nil)
