// Package kvnet provides the client/server network layer over the LSM
// engine: a compact length-prefixed binary protocol, a Server that serves
// one engine to many concurrent connections, and a Client. This is the
// "NoSQL database server" shape the paper assumes — each server owns its
// keys and runs compaction locally in the background — made concrete
// enough to exercise compaction over the wire.
//
// Wire format: every message (either direction) is a u32 little-endian
// payload length followed by the payload. Requests start with an op byte,
// responses with a status byte; strings and byte fields are uvarint
// length-prefixed.
package kvnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// ErrProtocol reports a malformed or truncated frame — wire bytes that do
// not decode as the protocol this package speaks. Every decode failure
// wraps it, so transports can distinguish "the peer speaks garbage" (drop
// the connection) from typed engine errors with errors.Is.
var ErrProtocol = errors.New("kvnet: protocol error")

// Op identifies a request type.
type Op byte

// Request operations.
const (
	OpPut Op = iota + 1
	OpGet
	OpDelete
	OpScan
	OpFlush
	OpCompact
	OpStats
	// OpWrite commits a batch of puts and deletes atomically: the server
	// applies it through the engine's group-commit pipeline, so the whole
	// batch becomes durable and visible as a unit.
	OpWrite
	// OpRange returns up to Limit entries with Start <= key < End in key
	// order — one page of a range scan. A client iterator pages through a
	// range by re-issuing OpRange with Start just past the last key of the
	// previous page.
	OpRange
	// OpPing is a no-op liveness probe: the server answers StatusOK
	// without touching the engine. Failure detectors use it to notice a
	// reaped or dead peer before a user request has to — a poisoned
	// connection is otherwise only discovered by the next real request
	// failing on it.
	OpPing
)

// Status is the first byte of every response.
type Status byte

// Response statuses.
const (
	StatusOK Status = iota
	StatusNotFound
	StatusError
)

// ErrCode classifies a StatusError response so clients can decode typed
// engine errors back to the canonical sentinels (internal/kverr) and
// errors.Is against them across the wire. CodeGeneric carries only the
// message string.
type ErrCode byte

// Error codes carried by StatusError responses.
const (
	CodeGeneric ErrCode = iota
	CodeClosed
	CodeStalled
	CodeBatchTooLarge
	CodeCanceled
	CodeDeadlineExceeded
	// CodeCorrupt and CodeReadOnly travel the durability taxonomy: data
	// failing integrity checks, and an engine that refuses writes after a
	// durability failure. Appended past the original codes so the byte
	// values of the existing ones are unchanged on the wire.
	CodeCorrupt
	CodeReadOnly
)

// MaxMessageSize bounds a single message; larger frames are rejected as
// corrupt rather than allocated.
const MaxMessageSize = 32 << 20

// ErrTooLarge reports a frame exceeding MaxMessageSize.
var ErrTooLarge = errors.New("kvnet: message too large")

// BatchOp is one operation inside an OpWrite batch.
type BatchOp struct {
	Delete bool
	Key    []byte
	Value  []byte // ignored for deletes
}

// Request is a decoded client request.
type Request struct {
	Op       Op
	Key      []byte
	Value    []byte
	Prefix   []byte
	Limit    uint64
	Strategy string
	K        uint64
	Batch    []BatchOp // OpWrite only
	// Start and End bound an OpRange page: Start <= key < End. A nil End
	// means no upper bound (End is encoded with a presence flag, so the
	// open bound survives the round trip).
	Start, End []byte
}

// ScanEntry is one key-value pair in a scan response.
type ScanEntry struct {
	Key, Value []byte
}

// CompactInfo summarizes a major compaction over the wire.
type CompactInfo struct {
	TablesBefore  uint64
	Merges        uint64
	BytesRead     uint64
	BytesWritten  uint64
	CostActual    uint64
	DurationMicro uint64
}

// StatsInfo mirrors lsm.Stats over the wire.
type StatsInfo struct {
	Tables           uint64
	TableBytes       uint64
	MemtableKeys     uint64
	Flushes          uint64
	MinorCompactions uint64
	MajorCompactions uint64
	// GroupCommits, GroupedWrites and WALSyncs describe the commit
	// pipeline: GroupedWrites/GroupCommits is the average group size,
	// WALSyncs/GroupedWrites the fsyncs paid per write.
	GroupCommits  uint64
	GroupedWrites uint64
	WALSyncs      uint64
	WriteStalls   uint64
	// ReadOnly is 1 when the engine has degraded to read-only after a
	// durability failure. QuarantinedTables counts corrupt sstables
	// renamed aside; CleanupFailures counts file removals that failed and
	// left recoverable garbage behind.
	ReadOnly          uint64
	QuarantinedTables uint64
	CleanupFailures   uint64
}

// Response is a decoded server response.
type Response struct {
	Status  Status
	Code    ErrCode // StatusError only
	Value   []byte
	Err     string
	Entries []ScanEntry
	Compact *CompactInfo
	Stats   *StatsInfo
}

// writeFrame writes one length-prefixed payload.
func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxMessageSize {
		return ErrTooLarge
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one length-prefixed payload.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxMessageSize {
		return nil, ErrTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

func appendBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

func readBytes(buf []byte) ([]byte, []byte, error) {
	n, sz := binary.Uvarint(buf)
	if sz <= 0 || uint64(len(buf[sz:])) < n {
		return nil, nil, fmt.Errorf("kvnet: truncated field: %w", ErrProtocol)
	}
	buf = buf[sz:]
	return buf[:n:n], buf[n:], nil
}

func readUvarint(buf []byte) (uint64, []byte, error) {
	v, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return 0, nil, fmt.Errorf("kvnet: truncated uvarint: %w", ErrProtocol)
	}
	return v, buf[sz:], nil
}

// EncodeRequest serializes req into a frame payload.
func EncodeRequest(req Request) []byte {
	out := []byte{byte(req.Op)}
	switch req.Op {
	case OpPut:
		out = appendBytes(out, req.Key)
		out = appendBytes(out, req.Value)
	case OpGet, OpDelete:
		out = appendBytes(out, req.Key)
	case OpScan:
		out = appendBytes(out, req.Prefix)
		out = binary.AppendUvarint(out, req.Limit)
	case OpRange:
		out = appendBytes(out, req.Start)
		if req.End == nil {
			out = append(out, 0)
		} else {
			out = append(out, 1)
			out = appendBytes(out, req.End)
		}
		out = binary.AppendUvarint(out, req.Limit)
	case OpCompact:
		out = appendBytes(out, []byte(req.Strategy))
		out = binary.AppendUvarint(out, req.K)
	case OpWrite:
		out = binary.AppendUvarint(out, uint64(len(req.Batch)))
		for _, op := range req.Batch {
			kind := byte(0)
			if op.Delete {
				kind = 1
			}
			out = append(out, kind)
			out = appendBytes(out, op.Key)
			if !op.Delete {
				out = appendBytes(out, op.Value)
			}
		}
	}
	return out
}

// DecodeRequest parses a frame payload into a Request.
func DecodeRequest(buf []byte) (Request, error) {
	var req Request
	if len(buf) < 1 {
		return req, fmt.Errorf("kvnet: empty request: %w", ErrProtocol)
	}
	req.Op = Op(buf[0])
	buf = buf[1:]
	var err error
	switch req.Op {
	case OpPut:
		if req.Key, buf, err = readBytes(buf); err != nil {
			return req, err
		}
		if req.Value, _, err = readBytes(buf); err != nil {
			return req, err
		}
	case OpGet, OpDelete:
		if req.Key, _, err = readBytes(buf); err != nil {
			return req, err
		}
	case OpScan:
		if req.Prefix, buf, err = readBytes(buf); err != nil {
			return req, err
		}
		if req.Limit, _, err = readUvarint(buf); err != nil {
			return req, err
		}
	case OpRange:
		if req.Start, buf, err = readBytes(buf); err != nil {
			return req, err
		}
		if len(buf) < 1 {
			return req, fmt.Errorf("kvnet: truncated range bound: %w", ErrProtocol)
		}
		bounded := buf[0]
		buf = buf[1:]
		if bounded > 1 {
			return req, fmt.Errorf("kvnet: bad range bound flag %d: %w", bounded, ErrProtocol)
		}
		if bounded == 1 {
			if req.End, buf, err = readBytes(buf); err != nil {
				return req, err
			}
		}
		if req.Limit, _, err = readUvarint(buf); err != nil {
			return req, err
		}
	case OpCompact:
		var s []byte
		if s, buf, err = readBytes(buf); err != nil {
			return req, err
		}
		req.Strategy = string(s)
		if req.K, _, err = readUvarint(buf); err != nil {
			return req, err
		}
	case OpWrite:
		var n uint64
		if n, buf, err = readUvarint(buf); err != nil {
			return req, err
		}
		// Every op consumes at least two payload bytes (kind + key length),
		// so a count above len(buf)/2 is structurally bogus; and the
		// pre-allocation is capped regardless, so a hostile count can never
		// force a large allocation — the slice grows only as ops decode.
		if n > uint64(len(buf))/2 {
			return req, fmt.Errorf("kvnet: batch count %d exceeds payload: %w", n, ErrProtocol)
		}
		req.Batch = make([]BatchOp, 0, min(n, 1024))
		for i := uint64(0); i < n; i++ {
			if len(buf) < 1 {
				return req, fmt.Errorf("kvnet: truncated batch op: %w", ErrProtocol)
			}
			kind := buf[0]
			buf = buf[1:]
			if kind > 1 {
				return req, fmt.Errorf("kvnet: unknown batch op kind %d: %w", kind, ErrProtocol)
			}
			op := BatchOp{Delete: kind == 1}
			if op.Key, buf, err = readBytes(buf); err != nil {
				return req, err
			}
			if !op.Delete {
				if op.Value, buf, err = readBytes(buf); err != nil {
					return req, err
				}
			}
			req.Batch = append(req.Batch, op)
		}
	case OpFlush, OpStats, OpPing:
	default:
		return req, fmt.Errorf("kvnet: unknown op %d: %w", req.Op, ErrProtocol)
	}
	return req, nil
}

// EncodeResponse serializes resp into a frame payload.
func EncodeResponse(resp Response) []byte {
	out := []byte{byte(resp.Status)}
	switch resp.Status {
	case StatusError:
		out = append(out, byte(resp.Code))
		out = appendBytes(out, []byte(resp.Err))
		return out
	case StatusNotFound:
		return out
	}
	switch {
	case resp.Compact != nil:
		out = append(out, 'C')
		c := resp.Compact
		for _, v := range []uint64{c.TablesBefore, c.Merges, c.BytesRead, c.BytesWritten, c.CostActual, c.DurationMicro} {
			out = binary.AppendUvarint(out, v)
		}
	case resp.Stats != nil:
		out = append(out, 'S')
		s := resp.Stats
		for _, v := range []uint64{s.Tables, s.TableBytes, s.MemtableKeys, s.Flushes, s.MinorCompactions,
			s.MajorCompactions, s.GroupCommits, s.GroupedWrites, s.WALSyncs, s.WriteStalls,
			s.ReadOnly, s.QuarantinedTables, s.CleanupFailures} {
			out = binary.AppendUvarint(out, v)
		}
	case resp.Entries != nil:
		out = append(out, 'E')
		out = binary.AppendUvarint(out, uint64(len(resp.Entries)))
		for _, e := range resp.Entries {
			out = appendBytes(out, e.Key)
			out = appendBytes(out, e.Value)
		}
	default:
		out = append(out, 'V')
		out = appendBytes(out, resp.Value)
	}
	return out
}

// DecodeResponse parses a frame payload into a Response.
func DecodeResponse(buf []byte) (Response, error) {
	var resp Response
	if len(buf) < 1 {
		return resp, fmt.Errorf("kvnet: empty response: %w", ErrProtocol)
	}
	resp.Status = Status(buf[0])
	buf = buf[1:]
	var err error
	switch resp.Status {
	case StatusNotFound:
		return resp, nil
	case StatusError:
		if len(buf) < 1 {
			return resp, fmt.Errorf("kvnet: truncated error response: %w", ErrProtocol)
		}
		resp.Code = ErrCode(buf[0])
		buf = buf[1:]
		var msg []byte
		if msg, _, err = readBytes(buf); err != nil {
			return resp, err
		}
		resp.Err = string(msg)
		return resp, nil
	case StatusOK:
	default:
		return resp, fmt.Errorf("kvnet: unknown status %d: %w", resp.Status, ErrProtocol)
	}
	if len(buf) < 1 {
		return resp, fmt.Errorf("kvnet: truncated OK response: %w", ErrProtocol)
	}
	kind := buf[0]
	buf = buf[1:]
	switch kind {
	case 'V':
		if resp.Value, _, err = readBytes(buf); err != nil {
			return resp, err
		}
	case 'E':
		var n uint64
		if n, buf, err = readUvarint(buf); err != nil {
			return resp, err
		}
		resp.Entries = make([]ScanEntry, 0, n)
		for i := uint64(0); i < n; i++ {
			var k, v []byte
			if k, buf, err = readBytes(buf); err != nil {
				return resp, err
			}
			if v, buf, err = readBytes(buf); err != nil {
				return resp, err
			}
			resp.Entries = append(resp.Entries, ScanEntry{Key: k, Value: v})
		}
	case 'C':
		c := &CompactInfo{}
		for _, dst := range []*uint64{&c.TablesBefore, &c.Merges, &c.BytesRead, &c.BytesWritten, &c.CostActual, &c.DurationMicro} {
			if *dst, buf, err = readUvarint(buf); err != nil {
				return resp, err
			}
		}
		resp.Compact = c
	case 'S':
		s := &StatsInfo{}
		for _, dst := range []*uint64{&s.Tables, &s.TableBytes, &s.MemtableKeys, &s.Flushes, &s.MinorCompactions,
			&s.MajorCompactions, &s.GroupCommits, &s.GroupedWrites, &s.WALSyncs, &s.WriteStalls,
			&s.ReadOnly, &s.QuarantinedTables, &s.CleanupFailures} {
			if *dst, buf, err = readUvarint(buf); err != nil {
				return resp, err
			}
		}
		resp.Stats = s
	default:
		return resp, fmt.Errorf("kvnet: unknown response kind %q: %w", kind, ErrProtocol)
	}
	return resp, nil
}
