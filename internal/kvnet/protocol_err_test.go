package kvnet

import (
	"errors"
	"testing"
)

// TestDecodeErrorsWrapProtocolSentinel pins every decode failure to the
// ErrProtocol sentinel: a server (or client) that receives garbage must be
// able to classify it with errors.Is rather than string matching.
func TestDecodeErrorsWrapProtocolSentinel(t *testing.T) {
	badRequests := map[string][]byte{
		"empty request":   nil,
		"unknown op":      {99},
		"truncated field": {byte(OpPut), 200},
		"truncated batch": {byte(OpWrite), 5, 0},
	}
	for name, buf := range badRequests {
		if _, err := DecodeRequest(buf); !errors.Is(err, ErrProtocol) {
			t.Errorf("DecodeRequest(%s): err = %v, want errors.Is(err, ErrProtocol)", name, err)
		}
	}

	badResponses := map[string][]byte{
		"empty response": nil,
		"unknown kind":   {byte(StatusOK), 'Z'},
		"unknown status": {77},
	}
	for name, buf := range badResponses {
		if _, err := DecodeResponse(buf); !errors.Is(err, ErrProtocol) {
			t.Errorf("DecodeResponse(%s): err = %v, want errors.Is(err, ErrProtocol)", name, err)
		}
	}
}
