package kvnet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/kverr"
	"repro/internal/lsm"
)

// startServer spins up a server over a fresh DB on a loopback listener and
// returns a connected client, the server, and the listen address.
func startServer(t *testing.T) (*Client, *Server, string) {
	t.Helper()
	db, err := lsm.Open(t.TempDir(), lsm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(db)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	go srv.Serve(ln)
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		client.Close()
		srv.Close()
		db.Close()
	})
	return client, srv, addr
}

func TestPutGetDeleteOverWire(t *testing.T) {
	c, _, _ := startServer(t)
	if err := c.Put(context.Background(), []byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, err := c.Get(context.Background(), []byte("k"))
	if err != nil || string(v) != "v" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if err := c.Delete(context.Background(), []byte("k")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(context.Background(), []byte("k")); err != ErrNotFound {
		t.Errorf("Get after delete = %v", err)
	}
	if _, err := c.Get(context.Background(), []byte("missing")); err != ErrNotFound {
		t.Errorf("Get missing = %v", err)
	}
}

func TestBinarySafeKeysAndValues(t *testing.T) {
	c, _, _ := startServer(t)
	key := []byte{0, 1, 2, 0xff, '\n', 0}
	val := make([]byte, 100000)
	for i := range val {
		val[i] = byte(i * 31)
	}
	if err := c.Put(context.Background(), key, val); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get(context.Background(), key)
	if err != nil || !bytes.Equal(got, val) {
		t.Fatalf("binary round trip failed: %v", err)
	}
}

func TestScanPrefixAndLimit(t *testing.T) {
	c, _, _ := startServer(t)
	for i := 0; i < 50; i++ {
		if err := c.Put(context.Background(), []byte(fmt.Sprintf("a:%03d", i)), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		if err := c.Put(context.Background(), []byte(fmt.Sprintf("b:%03d", i)), []byte("y")); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := c.Scan(context.Background(), []byte("a:"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 50 {
		t.Errorf("prefix scan returned %d entries, want 50", len(entries))
	}
	for i := 1; i < len(entries); i++ {
		if bytes.Compare(entries[i-1].Key, entries[i].Key) >= 0 {
			t.Fatalf("scan out of order")
		}
	}
	limited, err := c.Scan(context.Background(), nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(limited) != 10 {
		t.Errorf("limited scan returned %d", len(limited))
	}
}

func TestCompactOverWire(t *testing.T) {
	c, _, _ := startServer(t)
	for gen := 0; gen < 4; gen++ {
		for i := 0; i < 300; i++ {
			if err := c.Put(context.Background(), []byte(fmt.Sprintf("key-%04d", i+gen*150)), []byte("value")); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.Flush(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Tables != 4 {
		t.Fatalf("tables = %d", st.Tables)
	}
	info, err := c.Compact(context.Background(), "BT(I)", 2)
	if err != nil {
		t.Fatal(err)
	}
	if info.TablesBefore != 4 || info.Merges != 3 || info.BytesWritten == 0 || info.CostActual == 0 {
		t.Errorf("compact info = %+v", info)
	}
	st, err = c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Tables != 1 {
		t.Errorf("tables after = %d", st.Tables)
	}
	// Unknown strategy surfaces as a server error.
	if _, err := c.Compact(context.Background(), "nope", 2); err == nil {
		t.Errorf("unknown strategy accepted over wire")
	}
}

func TestConcurrentClients(t *testing.T) {
	_, _, addr := startServer(t)
	const clients = 4
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < 200; i++ {
				k := []byte(fmt.Sprintf("c%d-%04d", w, i))
				if err := c.Put(context.Background(), k, k); err != nil {
					errs <- err
					return
				}
				got, err := c.Get(context.Background(), k)
				if err != nil || !bytes.Equal(got, k) {
					errs <- fmt.Errorf("get %s: %q, %v", k, got, err)
					return
				}
			}
			errs <- nil
		}(w)
	}
	wg.Wait()
	for w := 0; w < clients; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestServerCloseUnblocksClients(t *testing.T) {
	c, srv, _ := startServer(t)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(context.Background(), []byte("k"), []byte("v")); err == nil {
		t.Errorf("Put succeeded after server close")
	}
	if err := srv.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestWriteRequestRoundTrip(t *testing.T) {
	req := Request{Op: OpWrite, Batch: []BatchOp{
		{Key: []byte("a"), Value: []byte("1")},
		{Delete: true, Key: []byte{0, 0xff}},
		{Key: []byte("c"), Value: nil},
	}}
	got, err := DecodeRequest(EncodeRequest(req))
	if err != nil {
		t.Fatal(err)
	}
	if got.Op != OpWrite || len(got.Batch) != len(req.Batch) {
		t.Fatalf("round trip = %+v", got)
	}
	for i, op := range req.Batch {
		g := got.Batch[i]
		if g.Delete != op.Delete || !bytes.Equal(g.Key, op.Key) || !bytes.Equal(g.Value, op.Value) {
			t.Errorf("batch op %d changed: %+v -> %+v", i, op, g)
		}
	}
	// Truncated and hostile encodings must error, not panic or misparse.
	enc := EncodeRequest(req)
	for cut := 1; cut < len(enc); cut++ {
		if _, err := DecodeRequest(enc[:cut]); err == nil && cut < len(enc)-1 {
			t.Fatalf("truncated batch request at %d decoded without error", cut)
		}
	}
}

// TestWriteBatchOverWire commits a mixed put/delete batch in one round trip
// and verifies its effects and the commit-pipeline stats it moves.
func TestWriteBatchOverWire(t *testing.T) {
	c, _, _ := startServer(t)
	if err := c.Put(context.Background(), []byte("doomed"), []byte("old")); err != nil {
		t.Fatal(err)
	}
	batch := []BatchOp{
		{Key: []byte("b1"), Value: []byte("v1")},
		{Key: []byte("b2"), Value: []byte("v2")},
		{Delete: true, Key: []byte("doomed")},
		{Key: []byte("b3"), Value: bytes.Repeat([]byte("z"), 4096)},
	}
	if err := c.Write(context.Background(), batch); err != nil {
		t.Fatal(err)
	}
	for _, op := range batch[:2] {
		got, err := c.Get(context.Background(), op.Key)
		if err != nil || !bytes.Equal(got, op.Value) {
			t.Fatalf("Get(%s) = %q, %v", op.Key, got, err)
		}
	}
	if _, err := c.Get(context.Background(), []byte("doomed")); err != ErrNotFound {
		t.Errorf("batched delete did not apply: %v", err)
	}
	if err := c.Write(context.Background(), nil); err != nil { // empty batch is a no-op
		t.Fatal(err)
	}
	// An empty key anywhere in the batch rejects the whole batch.
	if err := c.Write(context.Background(), []BatchOp{{Key: []byte("ok"), Value: []byte("v")}, {Key: nil}}); err == nil {
		t.Errorf("batch with empty key accepted")
	}
	if _, err := c.Get(context.Background(), []byte("ok")); err != ErrNotFound {
		t.Errorf("rejected batch partially applied: %v", err)
	}
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// 1 put + 1 batch of 4 committed = at least 5 records over ≥ 2 groups.
	if st.GroupCommits < 2 || st.GroupedWrites < 5 {
		t.Errorf("pipeline stats not reported: %+v", st)
	}
}

func TestProtocolRoundTrip(t *testing.T) {
	reqs := []Request{
		{Op: OpPut, Key: []byte("k"), Value: []byte("v")},
		{Op: OpGet, Key: []byte{0, 1, 2}},
		{Op: OpDelete, Key: []byte("x")},
		{Op: OpScan, Prefix: []byte("p"), Limit: 42},
		{Op: OpFlush},
		{Op: OpCompact, Strategy: "BT(I)", K: 3},
		{Op: OpStats},
	}
	for _, req := range reqs {
		got, err := DecodeRequest(EncodeRequest(req))
		if err != nil {
			t.Fatalf("%+v: %v", req, err)
		}
		if got.Op != req.Op || !bytes.Equal(got.Key, req.Key) || !bytes.Equal(got.Value, req.Value) ||
			!bytes.Equal(got.Prefix, req.Prefix) || got.Limit != req.Limit ||
			got.Strategy != req.Strategy || got.K != req.K {
			t.Errorf("round trip changed request: %+v -> %+v", req, got)
		}
	}
	resps := []Response{
		{Status: StatusOK, Value: []byte("v")},
		{Status: StatusNotFound},
		{Status: StatusError, Err: "boom"},
		{Status: StatusOK, Entries: []ScanEntry{{Key: []byte("a"), Value: []byte("1")}}},
		{Status: StatusOK, Compact: &CompactInfo{TablesBefore: 3, Merges: 2, BytesRead: 10, BytesWritten: 5, CostActual: 7, DurationMicro: 99}},
		{Status: StatusOK, Stats: &StatsInfo{Tables: 1, TableBytes: 2, MemtableKeys: 3, Flushes: 4, MinorCompactions: 5,
			GroupCommits: 6, GroupedWrites: 7, WALSyncs: 8, WriteStalls: 9,
			ReadOnly: 1, QuarantinedTables: 2, CleanupFailures: 3}},
	}
	for _, resp := range resps {
		got, err := DecodeResponse(EncodeResponse(resp))
		if err != nil {
			t.Fatalf("%+v: %v", resp, err)
		}
		if got.Status != resp.Status || got.Err != resp.Err || !bytes.Equal(got.Value, resp.Value) {
			t.Errorf("round trip changed response: %+v -> %+v", resp, got)
		}
		if resp.Compact != nil && *got.Compact != *resp.Compact {
			t.Errorf("compact info changed: %+v -> %+v", resp.Compact, got.Compact)
		}
		if resp.Stats != nil && *got.Stats != *resp.Stats {
			t.Errorf("stats changed: %+v -> %+v", resp.Stats, got.Stats)
		}
		if len(resp.Entries) > 0 && !bytes.Equal(got.Entries[0].Key, resp.Entries[0].Key) {
			t.Errorf("entries changed")
		}
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := DecodeRequest(nil); err == nil {
		t.Errorf("empty request accepted")
	}
	if _, err := DecodeRequest([]byte{99}); err == nil {
		t.Errorf("unknown op accepted")
	}
	if _, err := DecodeRequest([]byte{byte(OpPut), 200}); err == nil {
		t.Errorf("truncated put accepted")
	}
	if _, err := DecodeResponse(nil); err == nil {
		t.Errorf("empty response accepted")
	}
	if _, err := DecodeResponse([]byte{byte(StatusOK), 'Z'}); err == nil {
		t.Errorf("unknown kind accepted")
	}
	if _, err := DecodeResponse([]byte{77}); err == nil {
		t.Errorf("unknown status accepted")
	}
}

func BenchmarkRoundTrip(b *testing.B) {
	db, err := lsm.Open(b.TempDir(), lsm.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	srv := NewServer(db)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()
	c, err := Dial(ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	val := bytes.Repeat([]byte("v"), 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := []byte(fmt.Sprintf("key-%09d", i))
		if err := c.Put(context.Background(), key, val); err != nil {
			b.Fatal(err)
		}
		if _, err := c.Get(context.Background(), key); err != nil {
			b.Fatal(err)
		}
	}
}

func TestQuickProtocolRequests(t *testing.T) {
	f := func(key, value []byte) bool {
		req := Request{Op: OpPut, Key: key, Value: value}
		got, err := DecodeRequest(EncodeRequest(req))
		return err == nil && bytes.Equal(got.Key, key) && bytes.Equal(got.Value, value)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestDurabilityErrorCodesOverWire checks the two durability-taxonomy
// errors survive the encode/decode round trip as errors.Is-able
// sentinels: a corrupt read and a read-only engine must be programmable
// against on the client exactly as they are in-process.
func TestDurabilityErrorCodesOverWire(t *testing.T) {
	cases := []struct {
		in   error
		code ErrCode
		want error
	}{
		{fmt.Errorf("lsm: table x: %w", kverr.ErrCorrupt), CodeCorrupt, kverr.ErrCorrupt},
		{fmt.Errorf("lsm: %w (cause: sync failed)", kverr.ErrReadOnly), CodeReadOnly, kverr.ErrReadOnly},
	}
	for _, tc := range cases {
		resp := errResponse(tc.in)
		if resp.Status != StatusError || resp.Code != tc.code {
			t.Fatalf("errResponse(%v) = %+v, want code %d", tc.in, resp, tc.code)
		}
		got, err := DecodeResponse(EncodeResponse(resp))
		if err != nil {
			t.Fatal(err)
		}
		if rehydrated := decodeServerError(got.Code, got.Err); !errors.Is(rehydrated, tc.want) {
			t.Fatalf("decoded error %v does not match sentinel %v", rehydrated, tc.want)
		}
	}
}
