// Package hll implements the HyperLogLog cardinality estimator of
// Flajolet, Fusy, Gandouet and Meunier (AofA 2007).
//
// The paper's practical SMALLESTOUTPUT compaction strategy keeps one sketch
// per sstable and estimates the cardinality of a candidate merge output by
// merging sketches — "Calculating the cardinality of an output sstable
// without actually merging the input sstables is non-trivial. We estimate
// cardinality of the output sstable using Hyperloglog" (Section 5.1).
// Sketch union is exact for HLL (a pointwise register max), so estimating
// |A ∪ B| costs O(m) register operations instead of a full merge.
package hll

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/bits"
)

// MinPrecision and MaxPrecision bound the sketch precision parameter p;
// the sketch uses m = 2^p registers.
const (
	MinPrecision = 4
	MaxPrecision = 18
)

// Sketch is a HyperLogLog cardinality estimator. It is not safe for
// concurrent mutation.
type Sketch struct {
	p         uint8
	registers []uint8
}

// New creates a sketch with precision p (m = 2^p registers). The standard
// relative error is about 1.04/√m; p = 14 gives ≈0.8%.
func New(p uint8) (*Sketch, error) {
	if p < MinPrecision || p > MaxPrecision {
		return nil, fmt.Errorf("hll: precision %d out of range [%d,%d]", p, MinPrecision, MaxPrecision)
	}
	return &Sketch{p: p, registers: make([]uint8, 1<<p)}, nil
}

// MustNew is New but panics on an invalid precision. Intended for package
// initialization with constant arguments.
func MustNew(p uint8) *Sketch {
	s, err := New(p)
	if err != nil {
		panic(err)
	}
	return s
}

// Precision returns the sketch's precision parameter p.
func (s *Sketch) Precision() uint8 { return s.p }

// hash64 mixes a 64-bit key (splitmix64 finalizer); HLL needs well-mixed
// bits since it reads both the top p bits and the trailing-pattern rank.
func hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// AddUint64 observes a 64-bit key.
func (s *Sketch) AddUint64(key uint64) {
	s.addHash(hash64(key))
}

// Add observes an arbitrary byte key.
func (s *Sketch) Add(key []byte) {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime
	}
	s.addHash(hash64(h))
}

func (s *Sketch) addHash(h uint64) {
	idx := h >> (64 - s.p)
	rest := h << s.p
	// Rank: position of the leftmost 1-bit in the remaining 64-p bits.
	rank := uint8(bits.LeadingZeros64(rest|1)) + 1
	if max := uint8(64 - s.p + 1); rank > max {
		rank = max
	}
	if rank > s.registers[idx] {
		s.registers[idx] = rank
	}
}

func alpha(m int) float64 {
	switch m {
	case 16:
		return 0.673
	case 32:
		return 0.697
	case 64:
		return 0.709
	default:
		return 0.7213 / (1 + 1.079/float64(m))
	}
}

// Estimate returns the estimated number of distinct keys observed, with the
// standard small-range (linear counting) and large-range corrections.
func (s *Sketch) Estimate() float64 {
	m := float64(len(s.registers))
	sum := 0.0
	zeros := 0
	for _, r := range s.registers {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	raw := alpha(len(s.registers)) * m * m / sum
	if raw <= 2.5*m && zeros > 0 {
		return m * math.Log(m/float64(zeros))
	}
	const two32 = 1 << 32
	if raw > two32/30 {
		return -two32 * math.Log(1-raw/two32)
	}
	return raw
}

// EstimateInt returns Estimate rounded to the nearest integer, never
// negative.
func (s *Sketch) EstimateInt() int {
	e := s.Estimate()
	if e < 0 {
		return 0
	}
	return int(e + 0.5)
}

// ErrPrecisionMismatch reports an attempt to merge sketches of different
// precision.
var ErrPrecisionMismatch = errors.New("hll: precision mismatch")

// Merge folds other into s so that s estimates the cardinality of the union
// of both observed multisets. Merging is exact: the result equals the
// sketch that would have observed both streams.
func (s *Sketch) Merge(other *Sketch) error {
	if s.p != other.p {
		return ErrPrecisionMismatch
	}
	for i, r := range other.registers {
		if r > s.registers[i] {
			s.registers[i] = r
		}
	}
	return nil
}

// Clone returns a deep copy of the sketch.
func (s *Sketch) Clone() *Sketch {
	c := &Sketch{p: s.p, registers: make([]uint8, len(s.registers))}
	copy(c.registers, s.registers)
	return c
}

// UnionEstimate estimates |A ∪ B| from the sketches of A and B without
// mutating either. This is the primitive the SMALLESTOUTPUT strategy calls
// per candidate pair.
func UnionEstimate(a, b *Sketch) (float64, error) {
	if a.p != b.p {
		return 0, ErrPrecisionMismatch
	}
	c := a.Clone()
	if err := c.Merge(b); err != nil {
		return 0, err
	}
	return c.Estimate(), nil
}

// StdError returns the theoretical relative standard error 1.04/√m of the
// sketch.
func (s *Sketch) StdError() float64 {
	return 1.04 / math.Sqrt(float64(len(s.registers)))
}

// sparseFlag marks a sparse encoding in the header byte's high bit;
// precisions never exceed MaxPrecision (18), so the bit is free.
const sparseFlag = 0x80

// Marshal serializes the sketch, choosing the smaller of two encodings:
// dense (one byte of precision, then all 2^p registers) or sparse (the
// precision with the high bit set, a count, then gap-delta/value pairs
// for the non-zero registers). Sketches over few keys — small sstables —
// are mostly zero registers, and the sparse form keeps their on-disk
// footprint proportional to the data instead of to 2^p.
func (s *Sketch) Marshal() []byte {
	nonZero := 0
	for _, r := range s.registers {
		if r != 0 {
			nonZero++
		}
	}
	// Each sparse pair costs at most 3+1 bytes (uvarint gap up to 2^18,
	// one value byte); only bother when clearly smaller than dense.
	if nonZero*4 < len(s.registers) {
		out := make([]byte, 0, 1+binary.MaxVarintLen32+nonZero*4)
		out = append(out, s.p|sparseFlag)
		out = binary.AppendUvarint(out, uint64(nonZero))
		prev := 0
		for i, r := range s.registers {
			if r == 0 {
				continue
			}
			out = binary.AppendUvarint(out, uint64(i-prev))
			out = append(out, r)
			prev = i
		}
		return out
	}
	out := make([]byte, 1+len(s.registers))
	out[0] = s.p
	copy(out[1:], s.registers)
	return out
}

// Unmarshal reconstructs a sketch serialized by Marshal, accepting both
// the dense and the sparse encoding.
func Unmarshal(data []byte) (*Sketch, error) {
	if len(data) < 1 {
		return nil, errors.New("hll: empty encoding")
	}
	p := data[0] &^ sparseFlag
	if p < MinPrecision || p > MaxPrecision {
		return nil, fmt.Errorf("hll: invalid precision %d", p)
	}
	s := &Sketch{p: p, registers: make([]uint8, 1<<p)}
	if data[0]&sparseFlag == 0 {
		if len(data) != 1+(1<<p) {
			return nil, fmt.Errorf("hll: encoding length %d does not match precision %d", len(data), p)
		}
		copy(s.registers, data[1:])
		return s, nil
	}
	rest := data[1:]
	count, w := binary.Uvarint(rest)
	if w <= 0 {
		return nil, errors.New("hll: truncated sparse count")
	}
	rest = rest[w:]
	idx := -1
	for i := uint64(0); i < count; i++ {
		gap, w := binary.Uvarint(rest)
		if w <= 0 || len(rest) < w+1 {
			return nil, errors.New("hll: truncated sparse entry")
		}
		val := rest[w]
		rest = rest[w+1:]
		next := idx
		if idx < 0 {
			next = int(gap)
		} else {
			next = idx + int(gap)
		}
		if gap == 0 && idx >= 0 || next >= len(s.registers) || val == 0 {
			return nil, errors.New("hll: invalid sparse entry")
		}
		s.registers[next] = val
		idx = next
	}
	if len(rest) != 0 {
		return nil, errors.New("hll: trailing bytes after sparse entries")
	}
	return s, nil
}

// SketchOfUint64s builds a sketch of precision p over the given keys;
// convenience for tests and for sketching whole sstables.
func SketchOfUint64s(p uint8, keys []uint64) (*Sketch, error) {
	s, err := New(p)
	if err != nil {
		return nil, err
	}
	for _, k := range keys {
		s.AddUint64(k)
	}
	return s, nil
}
