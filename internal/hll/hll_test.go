package hll

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewPrecisionBounds(t *testing.T) {
	if _, err := New(3); err == nil {
		t.Errorf("New(3) should fail")
	}
	if _, err := New(19); err == nil {
		t.Errorf("New(19) should fail")
	}
	s, err := New(12)
	if err != nil {
		t.Fatalf("New(12): %v", err)
	}
	if s.Precision() != 12 {
		t.Errorf("Precision = %d", s.Precision())
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("MustNew(1) should panic")
		}
	}()
	MustNew(1)
}

func TestEmptyEstimate(t *testing.T) {
	s := MustNew(12)
	if got := s.EstimateInt(); got != 0 {
		t.Errorf("empty sketch EstimateInt = %d, want 0", got)
	}
}

func TestEstimateWithinErrorBounds(t *testing.T) {
	cases := []struct {
		p    uint8
		n    int
		tolX float64 // tolerance in multiples of the standard error
	}{
		{10, 100, 6},
		{12, 1000, 6},
		{14, 10000, 6},
		{14, 200000, 6},
	}
	for _, c := range cases {
		s := MustNew(c.p)
		r := rand.New(rand.NewSource(int64(c.n)))
		seen := make(map[uint64]bool, c.n)
		for len(seen) < c.n {
			k := r.Uint64()
			seen[k] = true
			s.AddUint64(k)
			// Duplicates must not change the estimate's target.
			s.AddUint64(k)
		}
		est := s.Estimate()
		relErr := math.Abs(est-float64(c.n)) / float64(c.n)
		if maxErr := c.tolX * s.StdError(); relErr > maxErr {
			t.Errorf("p=%d n=%d: estimate %.1f rel err %.4f > %.4f", c.p, c.n, est, relErr, maxErr)
		}
	}
}

func TestSmallRangeLinearCounting(t *testing.T) {
	s := MustNew(14)
	for i := uint64(0); i < 10; i++ {
		s.AddUint64(i)
	}
	if got := s.EstimateInt(); got < 8 || got > 12 {
		t.Errorf("small-range estimate = %d, want ≈10", got)
	}
}

func TestMergeEqualsUnionStream(t *testing.T) {
	a, b, both := MustNew(12), MustNew(12), MustNew(12)
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 5000; i++ {
		k := r.Uint64()
		if i%2 == 0 {
			a.AddUint64(k)
		} else {
			b.AddUint64(k)
		}
		both.AddUint64(k)
	}
	if err := a.Merge(b); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if a.Estimate() != both.Estimate() {
		t.Errorf("merged estimate %.2f != union-stream estimate %.2f", a.Estimate(), both.Estimate())
	}
}

func TestMergePrecisionMismatch(t *testing.T) {
	a, b := MustNew(10), MustNew(12)
	if err := a.Merge(b); err != ErrPrecisionMismatch {
		t.Errorf("Merge err = %v, want ErrPrecisionMismatch", err)
	}
	if _, err := UnionEstimate(a, b); err != ErrPrecisionMismatch {
		t.Errorf("UnionEstimate err = %v, want ErrPrecisionMismatch", err)
	}
}

func TestUnionEstimateDoesNotMutate(t *testing.T) {
	a := MustNew(12)
	b := MustNew(12)
	for i := uint64(0); i < 1000; i++ {
		a.AddUint64(i)
		b.AddUint64(i + 500)
	}
	beforeA, beforeB := a.Estimate(), b.Estimate()
	u, err := UnionEstimate(a, b)
	if err != nil {
		t.Fatalf("UnionEstimate: %v", err)
	}
	if a.Estimate() != beforeA || b.Estimate() != beforeB {
		t.Errorf("UnionEstimate mutated an input sketch")
	}
	// |A∪B| = 1500; allow generous tolerance.
	if u < 1200 || u > 1800 {
		t.Errorf("union estimate %.1f, want ≈1500", u)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := MustNew(10)
	a.AddUint64(1)
	c := a.Clone()
	c.AddUint64(999999)
	if a.Estimate() == c.Estimate() {
		t.Errorf("mutating clone changed original (estimates equal at %.2f)", a.Estimate())
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	s := MustNew(11)
	for i := uint64(0); i < 3000; i++ {
		s.AddUint64(i * 7)
	}
	got, err := Unmarshal(s.Marshal())
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if got.Estimate() != s.Estimate() || got.Precision() != s.Precision() {
		t.Errorf("round trip changed sketch")
	}
}

func TestUnmarshalCorrupt(t *testing.T) {
	if _, err := Unmarshal(nil); err == nil {
		t.Errorf("nil input accepted")
	}
	if _, err := Unmarshal([]byte{2, 0, 0}); err == nil {
		t.Errorf("bad precision accepted")
	}
	if _, err := Unmarshal([]byte{10, 0, 0}); err == nil {
		t.Errorf("truncated registers accepted")
	}
}

func TestByteKeysMatchCardinality(t *testing.T) {
	s := MustNew(12)
	for i := 0; i < 2000; i++ {
		s.Add([]byte{byte(i), byte(i >> 8), 'k'})
	}
	est := s.Estimate()
	if est < 1800 || est > 2200 {
		t.Errorf("byte-key estimate %.1f, want ≈2000", est)
	}
}

func TestQuickMergeCommutative(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		mk := func(seed int64) *Sketch {
			s := MustNew(8)
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				s.AddUint64(r.Uint64() % 500)
			}
			return s
		}
		ab := mk(seedA)
		if err := ab.Merge(mk(seedB)); err != nil {
			return false
		}
		ba := mk(seedB)
		if err := ba.Merge(mk(seedA)); err != nil {
			return false
		}
		return ab.Estimate() == ba.Estimate()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSketchOfUint64s(t *testing.T) {
	keys := make([]uint64, 1000)
	for i := range keys {
		keys[i] = uint64(i)
	}
	s, err := SketchOfUint64s(12, keys)
	if err != nil {
		t.Fatalf("SketchOfUint64s: %v", err)
	}
	if est := s.EstimateInt(); est < 900 || est > 1100 {
		t.Errorf("estimate %d, want ≈1000", est)
	}
	if _, err := SketchOfUint64s(1, keys); err == nil {
		t.Errorf("invalid precision accepted")
	}
}

func BenchmarkAddUint64(b *testing.B) {
	s := MustNew(14)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.AddUint64(uint64(i))
	}
}

func BenchmarkUnionEstimate(b *testing.B) {
	x := MustNew(12)
	y := MustNew(12)
	for i := uint64(0); i < 10000; i++ {
		x.AddUint64(i)
		y.AddUint64(i + 5000)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := UnionEstimate(x, y); err != nil {
			b.Fatal(err)
		}
	}
}
