// Package kverr defines the canonical error taxonomy shared by every layer
// of the engine: the embedded LSM store, the sharded store, the network
// layer and the public kv façade all return (or alias) these exact values,
// so errors.Is works identically whether an operation failed locally or was
// decoded off the wire. The package is a leaf — it imports nothing from the
// engine — so any layer may depend on it without cycles.
package kverr

import "errors"

var (
	// ErrNotFound reports a missing (or deleted) key.
	ErrNotFound = errors.New("kv: key not found")

	// ErrClosed reports use of a closed engine, iterator or snapshot.
	ErrClosed = errors.New("kv: engine closed")

	// ErrStalled marks a write aborted (or abandoned by its caller) while
	// blocked in compaction write-stall backpressure. It is always wrapped
	// together with the cause — typically a context error — so both
	// errors.Is(err, ErrStalled) and errors.Is(err, context.Canceled) hold.
	ErrStalled = errors.New("kv: write stalled by compaction backpressure")

	// ErrBatchTooLarge reports a write batch exceeding the engine's batch
	// size limit; such a batch cannot commit as one atomic unit.
	ErrBatchTooLarge = errors.New("kv: batch exceeds maximum batch size")

	// ErrCorrupt reports on-disk damage detected by a checksum or
	// structural validation failure — in an sstable block, a table footer,
	// or a manifest referencing files that no longer exist. The engine
	// quarantines the damaged file where it can; data covered only by the
	// damaged region is gone, and callers must treat it as such rather
	// than retry.
	ErrCorrupt = errors.New("kv: corrupt data")

	// ErrConfig reports an invalid configuration rejected before the engine
	// touched any state: a bad option value, an option applied to the wrong
	// entry point, a missing address. Nothing was opened and nothing needs
	// cleanup; the call can simply be retried with a fixed configuration.
	ErrConfig = errors.New("kv: invalid configuration")

	// ErrUnavailable reports a cluster operation that could not reach its
	// quorum: fewer than W replicas acknowledged a write, or fewer than R
	// replicas answered a read, after failover and retries. The operation
	// may have partially applied on the replicas that did respond — a
	// retried write converges via last-writer-wins versioning — and it is
	// always wrapped together with a per-replica cause.
	ErrUnavailable = errors.New("kv: quorum unavailable")

	// ErrReadOnly reports that the engine has permanently degraded to
	// read-only after a durability failure (a failed WAL or manifest
	// fsync). Once an fsync fails the page cache can no longer be trusted,
	// so instead of acknowledging writes it might lose, the engine rejects
	// them. It is always wrapped together with the original cause. Reads
	// and snapshots continue to work; recovery requires reopening the
	// engine on a healthy disk.
	ErrReadOnly = errors.New("kv: engine is read-only after durability failure")
)
