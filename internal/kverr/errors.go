// Package kverr defines the canonical error taxonomy shared by every layer
// of the engine: the embedded LSM store, the sharded store, the network
// layer and the public kv façade all return (or alias) these exact values,
// so errors.Is works identically whether an operation failed locally or was
// decoded off the wire. The package is a leaf — it imports nothing from the
// engine — so any layer may depend on it without cycles.
package kverr

import "errors"

var (
	// ErrNotFound reports a missing (or deleted) key.
	ErrNotFound = errors.New("kv: key not found")

	// ErrClosed reports use of a closed engine, iterator or snapshot.
	ErrClosed = errors.New("kv: engine closed")

	// ErrStalled marks a write aborted (or abandoned by its caller) while
	// blocked in compaction write-stall backpressure. It is always wrapped
	// together with the cause — typically a context error — so both
	// errors.Is(err, ErrStalled) and errors.Is(err, context.Canceled) hold.
	ErrStalled = errors.New("kv: write stalled by compaction backpressure")

	// ErrBatchTooLarge reports a write batch exceeding the engine's batch
	// size limit; such a batch cannot commit as one atomic unit.
	ErrBatchTooLarge = errors.New("kv: batch exceeds maximum batch size")
)
