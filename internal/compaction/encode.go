package compaction

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/keyset"
)

// This file implements a small text format for problem instances so
// real-world sstable inventories can be scored offline:
//
//	# one table per line; tokens are keys ("17") or inclusive
//	# ranges ("100-199"); blank lines and #-comments are ignored
//	1 2 3 5
//	1-4
//	3-5
//
// WriteInstance emits the same format with runs compressed into ranges, so
// parse(write(x)) == x.

// ParseInstance reads an instance in the text format above.
func ParseInstance(r io.Reader) (*Instance, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var sets []keyset.Set
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var keys []uint64
		for _, tok := range strings.Fields(line) {
			lo, hi, err := parseToken(tok)
			if err != nil {
				return nil, fmt.Errorf("compaction: line %d: %w", lineNo, err)
			}
			if hi-lo > 100_000_000 {
				return nil, fmt.Errorf("compaction: line %d: range %s too large", lineNo, tok)
			}
			for k := lo; ; k++ {
				keys = append(keys, k)
				if k == hi {
					break
				}
			}
		}
		if len(keys) == 0 {
			return nil, fmt.Errorf("compaction: line %d: empty table", lineNo)
		}
		sets = append(sets, keyset.New(keys...))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("compaction: parse instance: %w", err)
	}
	if len(sets) == 0 {
		return nil, fmt.Errorf("compaction: instance has no tables")
	}
	return NewInstance(sets...), nil
}

func parseToken(tok string) (lo, hi uint64, err error) {
	if i := strings.IndexByte(tok, '-'); i > 0 {
		lo, err = strconv.ParseUint(tok[:i], 10, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("bad range %q: %w", tok, err)
		}
		hi, err = strconv.ParseUint(tok[i+1:], 10, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("bad range %q: %w", tok, err)
		}
		if hi < lo {
			return 0, 0, fmt.Errorf("descending range %q", tok)
		}
		return lo, hi, nil
	}
	lo, err = strconv.ParseUint(tok, 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad key %q: %w", tok, err)
	}
	return lo, lo, nil
}

// WriteInstance emits inst in the text format, one table per line with
// consecutive keys compressed into ranges.
func WriteInstance(w io.Writer, inst *Instance) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# compaction instance: %d tables, %d distinct keys\n", inst.N(), inst.Universe().Len())
	for _, t := range inst.Tables() {
		keys := t.Set.Keys()
		for i := 0; i < len(keys); {
			j := i
			for j+1 < len(keys) && keys[j+1] == keys[j]+1 {
				j++
			}
			if i > 0 {
				bw.WriteByte(' ')
			}
			if j == i {
				fmt.Fprintf(bw, "%d", keys[i])
			} else {
				fmt.Fprintf(bw, "%d-%d", keys[i], keys[j])
			}
			i = j + 1
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// ScoreInstance runs every registered strategy (plus FREQ, plus the exact
// optimum when the instance is small enough) on inst and returns the
// simple and actual costs by strategy name, with "OPT" holding the DP
// optimum when available.
func ScoreInstance(inst *Instance, k int, seed int64) (map[string][2]int, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	out := make(map[string][2]int)
	for _, name := range StrategyNames() {
		ch, err := NewChooserByName(name, seed)
		if err != nil {
			return nil, err
		}
		sc, err := Run(inst, k, ch)
		if err != nil {
			return nil, err
		}
		out[name] = [2]int{sc.CostSimple(), sc.CostActual()}
	}
	if fm, err := FreqMerge(inst, k); err == nil {
		out["FREQ"] = [2]int{fm.CostSimple(), fm.CostActual()}
	}
	if inst.N() <= MaxOptimalN && k == 2 {
		opt, err := OptimalBinary(inst)
		if err == nil {
			out["OPT"] = [2]int{opt.CostSimple(), opt.CostActual()}
		}
	}
	return out, nil
}
