package compaction_test

import (
	"fmt"
	"log"

	"repro/internal/compaction"
	"repro/internal/keyset"
)

// ExampleRun schedules the paper's working example with SMALLESTOUTPUT and
// prints the costs the paper reports for Figure 6.
func ExampleRun() {
	inst := compaction.WorkingExample()
	sched, err := compaction.Run(inst, 2, compaction.NewSmallestOutput(compaction.ExactEstimator{}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("cost:", sched.CostSimple())
	fmt.Println("costactual:", sched.CostActual())
	fmt.Println("merges:", len(sched.Steps))
	// Output:
	// cost: 40
	// costactual: 54
	// merges: 4
}

// ExampleOptimalBinary verifies that SMALLESTOUTPUT found the true optimum
// on the working example using the exact subset DP.
func ExampleOptimalBinary() {
	opt, err := compaction.OptimalBinary(compaction.WorkingExample())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("optimal cost:", opt.CostSimple())
	// Output:
	// optimal cost: 40
}

// ExampleRun_kWay merges with fan-in 4: five tables collapse in two steps
// instead of four.
func ExampleRun_kWay() {
	inst := compaction.WorkingExample()
	sched, err := compaction.Run(inst, 4, compaction.NewSmallestInput())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("merges:", len(sched.Steps))
	fmt.Println("root size:", sched.Root.Set.Len())
	// Output:
	// merges: 2
	// root size: 9
}

// ExampleFreqMerge shows the f-approximation on disjoint sets, where f = 1
// makes it exactly optimal (Huffman).
func ExampleFreqMerge() {
	inst := compaction.NewInstance(
		keyset.Range(0, 5),
		keyset.Range(5, 14),
		keyset.Range(14, 16),
		keyset.Range(16, 23),
	)
	sched, err := compaction.FreqMerge(inst, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("f:", inst.MaxFrequency())
	fmt.Println("cost:", sched.CostSimple())
	// Output:
	// f: 1
	// cost: 67
}

// ExampleSchedule_CostSubmodular prices one schedule under the paper's
// SUBMODULARMERGING extension: a fixed cost per created sstable on top of
// cardinality.
func ExampleSchedule_CostSubmodular() {
	inst := compaction.WorkingExample()
	sched, err := compaction.Run(inst, 2, compaction.NewSmallestInput())
	if err != nil {
		log.Fatal(err)
	}
	plain := sched.CostSubmodular(keyset.CardinalityCost)
	withInit := sched.CostSubmodular(keyset.InitPlusCardinalityCost(100))
	fmt.Println("cardinality:", plain)
	fmt.Println("with init cost:", withInit)
	// Output:
	// cardinality: 30
	// with init cost: 430
}
