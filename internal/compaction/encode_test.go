package compaction

import (
	"math/rand"
	"strings"
	"testing"
)

func TestParseInstanceBasic(t *testing.T) {
	in := `
# the working example
1 2 3 5
1-4
3-5
6-8
7 8 9
`
	inst, err := ParseInstance(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ParseInstance: %v", err)
	}
	want := WorkingExample()
	if inst.N() != want.N() {
		t.Fatalf("N = %d", inst.N())
	}
	for i := 0; i < inst.N(); i++ {
		if !inst.Table(i).Set.Equal(want.Table(i).Set) {
			t.Errorf("table %d = %v, want %v", i, inst.Table(i).Set, want.Table(i).Set)
		}
	}
}

func TestParseInstanceErrors(t *testing.T) {
	cases := []string{
		"",               // no tables
		"abc",            // bad key
		"5-2",            // descending range
		"1 2\n\n   \n#x", // ok tables then noise — actually valid; see below
		"0-200000000",    // oversized range
		"3-x",            // bad range end
	}
	for i, c := range cases {
		_, err := ParseInstance(strings.NewReader(c))
		if i == 3 {
			if err != nil {
				t.Errorf("case %d: valid instance rejected: %v", i, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("case %d (%q): accepted", i, c)
		}
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	for trial := 0; trial < 10; trial++ {
		inst := randomInstance(r, 2+r.Intn(8), 200, 40)
		var b strings.Builder
		if err := WriteInstance(&b, inst); err != nil {
			t.Fatal(err)
		}
		got, err := ParseInstance(strings.NewReader(b.String()))
		if err != nil {
			t.Fatalf("parse of written instance: %v\n%s", err, b.String())
		}
		if got.N() != inst.N() {
			t.Fatalf("N changed: %d -> %d", inst.N(), got.N())
		}
		for i := 0; i < inst.N(); i++ {
			if !got.Table(i).Set.Equal(inst.Table(i).Set) {
				t.Fatalf("table %d changed across round trip", i)
			}
		}
	}
}

func TestWriteInstanceCompressesRanges(t *testing.T) {
	inst := NewInstance(
		// 1..5 plus 9: should render as "1-5 9".
		WorkingExample().Universe().Union(WorkingExample().Table(0).Set),
	)
	var b strings.Builder
	if err := WriteInstance(&b, inst); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "1-9") {
		t.Errorf("expected compressed range in %q", b.String())
	}
}

func TestScoreInstance(t *testing.T) {
	scores, err := ScoreInstance(WorkingExample(), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := scores["SO(exact)"]; got[0] != 40 {
		t.Errorf("SO(exact) = %v", got)
	}
	opt, ok := scores["OPT"]
	if !ok || opt[0] != 40 {
		t.Errorf("OPT = %v, %v", opt, ok)
	}
	if _, ok := scores["FREQ"]; !ok {
		t.Errorf("FREQ missing")
	}
	for name, pair := range scores {
		if pair[0] < opt[0] {
			t.Errorf("%s cost %d beats OPT %d", name, pair[0], opt[0])
		}
	}
	// k=3: no OPT entry (DP only wired for binary in ScoreInstance).
	scores3, err := ScoreInstance(WorkingExample(), 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := scores3["OPT"]; ok {
		t.Errorf("OPT present for k=3")
	}
}
