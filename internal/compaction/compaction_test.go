package compaction

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/keyset"
)

// randomInstance builds an instance of n sets drawn from a universe of
// size m, each of size up to maxSize (at least 1).
func randomInstance(r *rand.Rand, n, m, maxSize int) *Instance {
	sets := make([]keyset.Set, n)
	for i := range sets {
		sz := 1 + r.Intn(maxSize)
		keys := make([]uint64, sz)
		for j := range keys {
			keys[j] = uint64(r.Intn(m))
		}
		sets[i] = keyset.New(keys...)
	}
	return NewInstance(sets...)
}

func runStrategy(t *testing.T, inst *Instance, k int, name string) *Schedule {
	t.Helper()
	ch, err := NewChooserByName(name, 1)
	if err != nil {
		t.Fatalf("NewChooserByName(%q): %v", name, err)
	}
	sc, err := Run(inst, k, ch)
	if err != nil {
		t.Fatalf("Run(%s): %v", name, err)
	}
	if err := sc.Validate(); err != nil {
		t.Fatalf("Validate(%s): %v", name, err)
	}
	return sc
}

func TestInstanceBasics(t *testing.T) {
	inst := WorkingExample()
	if inst.N() != 5 {
		t.Errorf("N = %d", inst.N())
	}
	if got := inst.LowerBound(); got != 17 { // 4+4+3+3+3
		t.Errorf("LowerBound = %d, want 17", got)
	}
	if u := inst.Universe(); u.Len() != 9 {
		t.Errorf("Universe size = %d, want 9", u.Len())
	}
	if f := inst.MaxFrequency(); f != 3 { // element 3 in A1, A2, A3
		t.Errorf("MaxFrequency = %d, want 3", f)
	}
	if err := inst.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if err := NewInstance().Validate(); err == nil {
		t.Errorf("empty instance accepted")
	}
	if err := NewInstance(keyset.Set{}).Validate(); err == nil {
		t.Errorf("instance with empty set accepted")
	}
}

// TestWorkingExampleCosts reproduces the merge costs the paper reports for
// the Section 4.3 working example (Figures 4-6): BALANCETREE 45,
// SMALLESTINPUT 47, SMALLESTOUTPUT 40. The figures quote the simplified
// cost of equation 2.1 (Σ|A_ν| over all tree nodes: e.g. Figure 4 is
// 17 leaves + 5 + 6 + 8 + 9 = 45). Figure 4 pairs tables in input order
// (A1,A2), (A3,A4), i.e. the arbitrary-order BT; the evaluated BT(I) pairs
// smallest-first and lands on 47 for this instance.
func TestWorkingExampleCosts(t *testing.T) {
	cases := []struct {
		name string
		want int
	}{
		{"BT", 45},
		{"BT(I)", 47},
		{"SI", 47},
		{"SO(exact)", 40},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sc := runStrategy(t, WorkingExample(), 2, c.name)
			if got := sc.CostSimple(); got != c.want {
				t.Errorf("%s cost = %d, want %d", c.name, got, c.want)
			}
		})
	}
}

// TestWorkingExampleTreeShapes checks the specific merge trees of Figures
// 4-6 beyond their total cost.
func TestWorkingExampleTreeShapes(t *testing.T) {
	// Figure 4: BT merges (A1,A2) then (A3,A4), then those two, then A5.
	bt := runStrategy(t, WorkingExample(), 2, "BT(I)")
	if h := bt.Height(); h != 3 {
		t.Errorf("BT height = %d, want 3", h)
	}
	first := bt.Steps[0]
	if got := first.Output.Set.Len(); got != 5 {
		// First BT merge is two of the three size-3/4 sets; with SI inner
		// order the two smallest (A3, A4) merge first: {3,4,5}∪{6,7,8}.
		if got != 6 {
			t.Errorf("BT first merge size = %d", got)
		}
	}
	// Figure 5: SI's first merge is two of the size-3 sets.
	si := runStrategy(t, WorkingExample(), 2, "SI")
	if got := si.Steps[0].InputSize(); got != 6 {
		t.Errorf("SI first merge inputs = %d keys, want 3+3", got)
	}
	// Figure 6: SO's first merge is A4∪A5 = {6,7,8,9} (smallest union).
	so := runStrategy(t, WorkingExample(), 2, "SO(exact)")
	if got := so.Steps[0].Output.Set; !got.Equal(keyset.New(6, 7, 8, 9)) {
		t.Errorf("SO first output = %v, want {6,7,8,9}", got)
	}
}

func TestCostIdentities(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		inst := randomInstance(r, 2+r.Intn(10), 100, 20)
		for _, name := range []string{"SI", "SO(exact)", "BT(I)", "LM", "RANDOM"} {
			sc := runStrategy(t, inst, 2, name)
			// costactual = Σ_steps(inputs+output); simple counts each node
			// once. For full binary trees: actual = 2·simple − leaves − root.
			wantActual := 2*sc.CostSimple() - inst.LowerBound() - sc.Root.Set.Len()
			if got := sc.CostActual(); got != wantActual {
				t.Fatalf("%s: costactual %d != identity %d", name, got, wantActual)
			}
			// Submodular cost with cardinality = simple − leaves.
			wantSub := float64(sc.CostSimple() - inst.LowerBound())
			if got := sc.CostSubmodular(keyset.CardinalityCost); got != wantSub {
				t.Fatalf("%s: submodular %v != %v", name, got, wantSub)
			}
			if sc.CostSimple() < inst.LowerBound() {
				t.Fatalf("%s: cost below LOPT", name)
			}
		}
	}
}

func TestAllStrategiesProduceValidSchedules(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, k := range []int{2, 3, 4} {
		for trial := 0; trial < 10; trial++ {
			inst := randomInstance(r, 2+r.Intn(12), 80, 15)
			for _, name := range StrategyNames() {
				sc := runStrategy(t, inst, k, name)
				if !sc.Root.Set.Equal(inst.Universe()) {
					t.Fatalf("%s k=%d: root != universe", name, k)
				}
			}
		}
	}
}

func TestSingleTableInstance(t *testing.T) {
	inst := NewInstance(keyset.New(1, 2, 3))
	for _, name := range StrategyNames() {
		sc := runStrategy(t, inst, 2, name)
		if len(sc.Steps) != 0 || sc.Root == nil || !sc.Root.IsLeaf() {
			t.Errorf("%s: single-table schedule should have no steps", name)
		}
		if sc.CostActual() != 0 {
			t.Errorf("%s: single-table costactual = %d", name, sc.CostActual())
		}
	}
}

func TestTwoTables(t *testing.T) {
	inst := NewInstance(keyset.New(1, 2), keyset.New(2, 3))
	sc := runStrategy(t, inst, 2, "SI")
	if len(sc.Steps) != 1 {
		t.Fatalf("steps = %d", len(sc.Steps))
	}
	if got := sc.CostActual(); got != 7 { // 2+2 read + 3 written
		t.Errorf("costactual = %d, want 7", got)
	}
}

func TestRunRejectsBadK(t *testing.T) {
	if _, err := Run(WorkingExample(), 1, NewSmallestInput()); err == nil {
		t.Errorf("k=1 accepted")
	}
}

// TestBalanceTreeHeight verifies the ⌈log₂ n⌉ height guarantee of Section
// 4.3.1 for non-powers of two as well.
func TestBalanceTreeHeight(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, n := range []int{2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 33, 100} {
		inst := randomInstance(r, n, 1000, 10)
		sc := runStrategy(t, inst, 2, "BT(I)")
		want := int(math.Ceil(math.Log2(float64(n))))
		if got := sc.Height(); got != want {
			t.Errorf("n=%d: BT height = %d, want ⌈log n⌉ = %d", n, got, want)
		}
	}
}

// TestBalanceTreeApproximation asserts Lemma 4.1: BT cost ≤ (⌈log n⌉+1)·LOPT.
func TestBalanceTreeApproximation(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		n := 2 + r.Intn(40)
		inst := randomInstance(r, n, 500, 30)
		sc := runStrategy(t, inst, 2, "BT(I)")
		bound := (int(math.Ceil(math.Log2(float64(n)))) + 1) * inst.LowerBound()
		if got := sc.CostSimple(); got > bound {
			t.Errorf("n=%d: BT cost %d exceeds (⌈log n⌉+1)·LOPT = %d", n, got, bound)
		}
	}
}

// TestSmallestInputHarmonicBound asserts Lemma 4.4: SI and SO cost ≤
// (2Hₙ+1)·LOPT (the proof bounds against OPT ≥ LOPT).
func TestSmallestInputHarmonicBound(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		n := 2 + r.Intn(40)
		inst := randomInstance(r, n, 500, 30)
		h := 0.0
		for i := 1; i <= n; i++ {
			h += 1 / float64(i)
		}
		bound := (2*h + 1) * float64(inst.LowerBound())
		for _, name := range []string{"SI", "SO(exact)"} {
			sc := runStrategy(t, inst, 2, name)
			if got := float64(sc.CostSimple()); got > bound {
				t.Errorf("%s n=%d: cost %v exceeds (2Hn+1)·LOPT = %v", name, n, got, bound)
			}
		}
	}
}

// TestHuffmanOptimality asserts Lemma 4.3: on disjoint sets SI and SO
// produce the optimal (Huffman) cost.
func TestHuffmanOptimality(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	for trial := 0; trial < 25; trial++ {
		n := 2 + r.Intn(12)
		sizes := make([]int, n)
		for i := range sizes {
			sizes[i] = 1 + r.Intn(50)
		}
		inst := HuffmanInstance(sizes)
		want := HuffmanCost(sizes)
		for _, name := range []string{"SI", "SO(exact)"} {
			sc := runStrategy(t, inst, 2, name)
			if got := sc.CostSimple(); got != want {
				t.Errorf("%s sizes=%v: cost %d, want Huffman %d", name, sizes, got, want)
			}
		}
	}
}

// TestOptimalMatchesHuffmanOnDisjoint cross-checks the DP solver against
// the independent Huffman oracle.
func TestOptimalMatchesHuffmanOnDisjoint(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 15; trial++ {
		n := 2 + r.Intn(8)
		sizes := make([]int, n)
		for i := range sizes {
			sizes[i] = 1 + r.Intn(30)
		}
		sc, err := OptimalBinary(HuffmanInstance(sizes))
		if err != nil {
			t.Fatalf("OptimalBinary: %v", err)
		}
		if err := sc.Validate(); err != nil {
			t.Fatalf("optimal schedule invalid: %v", err)
		}
		if got, want := sc.CostSimple(), HuffmanCost(sizes); got != want {
			t.Errorf("optimal %d != Huffman %d for sizes %v", got, want, sizes)
		}
	}
}

// TestGreedyNeverBeatsOptimal asserts the DP result lower-bounds every
// heuristic on random overlapping instances.
func TestGreedyNeverBeatsOptimal(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	for trial := 0; trial < 15; trial++ {
		inst := randomInstance(r, 2+r.Intn(7), 40, 12)
		opt, err := OptimalBinary(inst)
		if err != nil {
			t.Fatalf("OptimalBinary: %v", err)
		}
		for _, name := range []string{"SI", "SO(exact)", "BT(I)", "LM", "RANDOM"} {
			sc := runStrategy(t, inst, 2, name)
			if sc.CostSimple() < opt.CostSimple() {
				t.Errorf("%s cost %d beat optimal %d", name, sc.CostSimple(), opt.CostSimple())
			}
		}
	}
}

func TestOptimalKWayNeverWorseThanBinary(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		inst := randomInstance(r, 2+r.Intn(6), 40, 10)
		opt2, err := OptimalBinary(inst)
		if err != nil {
			t.Fatal(err)
		}
		opt3, err := OptimalKWay(inst, 3)
		if err != nil {
			t.Fatal(err)
		}
		if err := opt3.Validate(); err != nil {
			t.Fatalf("k=3 optimal invalid: %v", err)
		}
		if opt3.CostSimple() > opt2.CostSimple() {
			t.Errorf("k=3 optimal %d worse than k=2 optimal %d", opt3.CostSimple(), opt2.CostSimple())
		}
	}
}

func TestOptimalSizeLimit(t *testing.T) {
	inst := DisjointSingletons(MaxOptimalN + 1)
	if _, err := OptimalBinary(inst); err == nil {
		t.Errorf("oversized instance accepted")
	}
	if _, err := OptimalKWay(DisjointSingletons(maxOptimalKWayN+1), 3); err == nil {
		t.Errorf("oversized k-way instance accepted")
	}
	if _, err := OptimalKWay(WorkingExample(), 1); err == nil {
		t.Errorf("k=1 accepted")
	}
	// Single table trivially optimal.
	sc, err := OptimalBinary(NewInstance(keyset.New(1)))
	if err != nil || sc.CostSimple() != 1 {
		t.Errorf("single-table optimal: %v, %v", sc, err)
	}
}

// TestLemma42BalanceTreeGap reproduces the Ω(log n) separation of Lemma
// 4.2: on n−1 singletons plus {1..n}, the chain merge costs Θ(n) while BT
// pays ≥ n·(log n + 1) in simple cost.
func TestLemma42BalanceTreeGap(t *testing.T) {
	const n = 64
	inst := AdversarialBalanceTree(n)
	bt := runStrategy(t, inst, 2, "BT(I)")
	logn := int(math.Log2(n))
	if got := bt.CostSimple(); got < n*(logn+1) {
		t.Errorf("BT cost %d below n(log n+1) = %d", got, n*(logn+1))
	}
	// SI merges the singletons first, achieving the optimal left-to-right
	// cost of 4n−3 (the singleton unions never grow past {1}).
	si := runStrategy(t, inst, 2, "SI")
	if got := si.CostSimple(); got != 4*n-3 {
		t.Errorf("SI cost %d, want optimal 4n-3 = %d", got, 4*n-3)
	}
	if bt.CostSimple() <= si.CostSimple() {
		t.Errorf("expected clear BT/SI separation, got %d vs %d", bt.CostSimple(), si.CostSimple())
	}
}

// TestLemma45TightLOPT reproduces Lemma 4.5: on n disjoint singletons both
// SI and SO cost exactly n·log n + n in simple cost = (log n + 1)·LOPT.
func TestLemma45TightLOPT(t *testing.T) {
	const n = 32
	inst := DisjointSingletons(n)
	logn := int(math.Log2(n))
	for _, name := range []string{"SI", "SO(exact)"} {
		sc := runStrategy(t, inst, 2, name)
		want := n*logn + n
		if got := sc.CostSimple(); got != want {
			t.Errorf("%s cost = %d, want n·log n + n = %d", name, got, want)
		}
	}
}

// TestLargestMatchLinearGap reproduces the Section 4.3.4 family where LM is
// Ω(n) from optimal: nested sets A_i = {1..2^(i-1)}.
func TestLargestMatchLinearGap(t *testing.T) {
	const n = 10
	inst := AdversarialLargestMatch(n)
	lm := runStrategy(t, inst, 2, "LM")
	// The optimal left-to-right chain costs 1 + 2(2+4+...+2^(n-1)) =
	// 2^(n+1)−3 in simple cost, and SI finds exactly that chain.
	chainCost := 1<<(n+1) - 3
	si := runStrategy(t, inst, 2, "SI")
	if got := si.CostSimple(); got != chainCost {
		t.Errorf("SI cost %d, want chain 2^(n+1)-3 = %d", got, chainCost)
	}
	// LM keeps re-merging the giant set: cost ≥ 2^(n-1)·(n-1).
	lmWant := (1 << (n - 1)) * (n - 1)
	if got := lm.CostSimple(); got < lmWant {
		t.Errorf("LM cost = %d, want ≥ 2^(n-1)(n-1) = %d", got, lmWant)
	}
	if lm.CostSimple() < 2*si.CostSimple() {
		t.Errorf("expected LM ≫ SI, got %d vs %d", lm.CostSimple(), si.CostSimple())
	}
}

// TestFreqMergeBound asserts Lemma 4.6 empirically: FreqMerge ≤ f·OPT.
func TestFreqMergeBound(t *testing.T) {
	r := rand.New(rand.NewSource(37))
	for trial := 0; trial < 15; trial++ {
		inst := randomInstance(r, 2+r.Intn(7), 30, 10)
		fm, err := FreqMerge(inst, 2)
		if err != nil {
			t.Fatalf("FreqMerge: %v", err)
		}
		if err := fm.Validate(); err != nil {
			t.Fatalf("FreqMerge schedule invalid: %v", err)
		}
		opt, err := OptimalBinary(inst)
		if err != nil {
			t.Fatal(err)
		}
		f := inst.MaxFrequency()
		if got, bound := fm.CostSimple(), f*opt.CostSimple(); got > bound {
			t.Errorf("FreqMerge cost %d exceeds f·OPT = %d·%d", got, f, opt.CostSimple())
		}
	}
}

func TestFreqMergeOptimalOnDisjoint(t *testing.T) {
	sizes := []int{5, 9, 2, 7, 3, 3}
	inst := HuffmanInstance(sizes)
	fm, err := FreqMerge(inst, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fm.CostSimple(), HuffmanCost(sizes); got != want {
		t.Errorf("FreqMerge on disjoint = %d, want Huffman %d (f=1 ⇒ optimal)", got, want)
	}
}

func TestSOHLLTracksExact(t *testing.T) {
	// With large-ish sets the HLL-guided SO should land within a few
	// percent of the exact-cardinality SO cost (Section 5.2 observes SO's
	// cost is "sensitive to the error in cardinality estimation" but close).
	r := rand.New(rand.NewSource(41))
	inst := randomInstance(r, 20, 20000, 3000)
	exact := runStrategy(t, inst, 2, "SO(exact)")
	hllSc := runStrategy(t, inst, 2, "SO")
	e, h := float64(exact.CostSimple()), float64(hllSc.CostSimple())
	if h < e*0.98 {
		t.Errorf("HLL SO cost %v materially beats exact %v: estimator broken?", h, e)
	}
	if h > e*1.15 {
		t.Errorf("HLL SO cost %v more than 15%% above exact %v", h, e)
	}
}

// naiveSmallestOutput is a reference SO implementation: re-scan all live
// pairs every iteration with exact union sizes. Used to differential-test
// the lazily-invalidated pair heap in SmallestOutput.
type naiveSmallestOutput struct {
	k     int
	alive []*Node
}

func (n *naiveSmallestOutput) Name() string { return "SO(naive)" }
func (n *naiveSmallestOutput) Init(leaves []*Node, k int) error {
	n.k = k
	n.alive = append([]*Node(nil), leaves...)
	return nil
}
func (n *naiveSmallestOutput) Choose() ([]*Node, error) {
	bestI, bestJ, bestScore := -1, -1, 0
	for i := range n.alive {
		for j := i + 1; j < len(n.alive); j++ {
			score := n.alive[i].Set.UnionLen(n.alive[j].Set)
			better := bestI < 0 || score < bestScore
			if score == bestScore && bestI >= 0 {
				// Tie-break identically to pairHeap: by (minID, maxID).
				ci, cj := n.alive[i].ID, n.alive[j].ID
				bi, bj := n.alive[bestI].ID, n.alive[bestJ].ID
				if ci > cj {
					ci, cj = cj, ci
				}
				if bi > bj {
					bi, bj = bj, bi
				}
				better = ci < bi || (ci == bi && cj < bj)
			}
			if better {
				bestI, bestJ, bestScore = i, j, score
			}
		}
	}
	group := []*Node{n.alive[bestI], n.alive[bestJ]}
	kept := n.alive[:0]
	for _, nd := range n.alive {
		if nd != group[0] && nd != group[1] {
			kept = append(kept, nd)
		}
	}
	n.alive = kept
	return group, nil
}
func (n *naiveSmallestOutput) Observe(merged *Node) { n.alive = append(n.alive, merged) }

func TestSOHeapMatchesNaiveReference(t *testing.T) {
	r := rand.New(rand.NewSource(103))
	for trial := 0; trial < 20; trial++ {
		inst := randomInstance(r, 2+r.Intn(12), 60, 15)
		heapSO, err := Run(inst, 2, NewSmallestOutput(ExactEstimator{}))
		if err != nil {
			t.Fatal(err)
		}
		naive, err := Run(inst, 2, &naiveSmallestOutput{})
		if err != nil {
			t.Fatal(err)
		}
		if heapSO.CostSimple() != naive.CostSimple() {
			t.Errorf("trial %d: heap SO cost %d != naive %d", trial, heapSO.CostSimple(), naive.CostSimple())
		}
	}
}

func TestKWayReducesSteps(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	inst := randomInstance(r, 16, 100, 10)
	sc2 := runStrategy(t, inst, 2, "SI")
	sc4 := runStrategy(t, inst, 4, "SI")
	if len(sc2.Steps) != 15 {
		t.Errorf("k=2 steps = %d, want n-1 = 15", len(sc2.Steps))
	}
	if len(sc4.Steps) != 5 { // each step removes k-1 = 3, (16-1)/3 = 5
		t.Errorf("k=4 steps = %d, want 5", len(sc4.Steps))
	}
}

// TestFootnote2IdenticalTables verifies footnote 2 of Section 5.2: with n
// sstables holding the same s keys and k=2, costactual = 3·(n−1)·s for
// every merge schedule — the regime where strategy choice stops mattering.
func TestFootnote2IdenticalTables(t *testing.T) {
	const n, s = 9, 50
	sets := make([]keyset.Set, n)
	for i := range sets {
		sets[i] = keyset.Range(0, s)
	}
	inst := NewInstance(sets...)
	for _, name := range []string{"SI", "SO(exact)", "BT(I)", "LM", "CHAIN", "RANDOM"} {
		sc := runStrategy(t, inst, 2, name)
		if got := sc.CostActual(); got != 3*(n-1)*s {
			t.Errorf("%s: costactual = %d, want 3(n-1)s = %d", name, got, 3*(n-1)*s)
		}
	}
}

func TestRandomSeedDeterminism(t *testing.T) {
	r := rand.New(rand.NewSource(47))
	inst := randomInstance(r, 12, 100, 10)
	a, err := Run(inst, 2, NewRandom(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(inst, 2, NewRandom(5))
	if err != nil {
		t.Fatal(err)
	}
	if a.CostSimple() != b.CostSimple() {
		t.Errorf("same seed produced different schedules")
	}
}

func TestExecuteParallelMatchesSchedule(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	for _, name := range []string{"SI", "BT(I)", "RANDOM"} {
		inst := randomInstance(r, 33, 1000, 50)
		sc := runStrategy(t, inst, 2, name)
		for _, workers := range []int{0, 1, 4} {
			if err := ExecuteParallel(sc, workers); err != nil {
				t.Errorf("%s workers=%d: %v", name, workers, err)
			}
		}
	}
}

func TestExecuteParallelEmptySchedule(t *testing.T) {
	sc := &Schedule{K: 2}
	if err := ExecuteParallel(sc, 2); err != nil {
		t.Errorf("empty schedule: %v", err)
	}
}

func TestMaxParallelism(t *testing.T) {
	r := rand.New(rand.NewSource(59))
	inst := randomInstance(r, 64, 10000, 40)
	bt := runStrategy(t, inst, 2, "BT(I)")
	si := runStrategy(t, inst, 2, "SI")
	btP, siP := MaxParallelism(bt), MaxParallelism(si)
	if btP < 16 {
		t.Errorf("BT parallelism = %d, want ≥ 16 for n=64", btP)
	}
	// SI on similar-size sets behaves like BT (Section 5.2 discussion), so
	// compare against a chain-shaped schedule instead: the LM adversarial
	// family forces a chain.
	chain := runStrategy(t, AdversarialLargestMatch(12), 2, "LM")
	if got := MaxParallelism(chain); got != 1 {
		t.Errorf("chain parallelism = %d, want 1", got)
	}
	_ = siP
}

func TestScheduleValidateCatchesCorruption(t *testing.T) {
	sc := runStrategy(t, WorkingExample(), 2, "SI")
	// Corrupt the root set.
	sc.Root.Set = keyset.New(1)
	if err := sc.Validate(); err == nil {
		t.Errorf("corrupted schedule validated")
	}
}

func TestNewChooserByNameUnknown(t *testing.T) {
	if _, err := NewChooserByName("nope", 0); err == nil {
		t.Errorf("unknown strategy accepted")
	}
	if len(StrategyNames()) != 9 {
		t.Errorf("StrategyNames = %v", StrategyNames())
	}
	if got := EvaluatedStrategies(); len(got) != 5 {
		t.Errorf("EvaluatedStrategies = %v", got)
	}
}
