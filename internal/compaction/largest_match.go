package compaction

import "sort"

// LargestMatch implements the LARGESTMATCH (LM) heuristic of Section
// 4.3.4: each iteration merges the sets with the largest pairwise
// intersection, hoping overlap makes the output small. The paper shows its
// worst case is Ω(n) — see AdversarialLargestMatch for the nested-set
// family realizing the gap — so LM is included for completeness and as a
// cautionary baseline, not as a recommended strategy.
type LargestMatch struct {
	k     int
	alive []*Node
}

// NewLargestMatch returns a fresh LM chooser.
func NewLargestMatch() *LargestMatch { return &LargestMatch{} }

// Name implements Chooser.
func (l *LargestMatch) Name() string { return "LM" }

// Init implements Chooser.
func (l *LargestMatch) Init(leaves []*Node, k int) error {
	l.k = k
	l.alive = append([]*Node(nil), leaves...)
	return nil
}

// Choose implements Chooser: the pair with the largest intersection,
// greedily grown to k sets by largest intersection with the group's union.
// Ties break toward smaller node IDs for determinism.
func (l *LargestMatch) Choose() ([]*Node, error) {
	g := groupSize(l.k, len(l.alive))
	sort.Slice(l.alive, func(i, j int) bool { return l.alive[i].ID < l.alive[j].ID })
	var bestI, bestJ int
	bestScore := -1
	for i := range l.alive {
		for j := i + 1; j < len(l.alive); j++ {
			if score := l.alive[i].Set.IntersectLen(l.alive[j].Set); score > bestScore {
				bestI, bestJ, bestScore = i, j, score
			}
		}
	}
	group := []*Node{l.alive[bestI], l.alive[bestJ]}
	union := group[0].Set.Union(group[1].Set)
	for len(group) < g {
		var best *Node
		bestScore = -1
		for _, nd := range l.alive {
			if containsNode(group, nd) {
				continue
			}
			if score := union.IntersectLen(nd.Set); score > bestScore {
				best, bestScore = nd, score
			}
		}
		if best == nil {
			break
		}
		group = append(group, best)
		union = union.Union(best.Set)
	}
	l.remove(group)
	return group, nil
}

func (l *LargestMatch) remove(group []*Node) {
	kept := l.alive[:0]
	for _, nd := range l.alive {
		if !containsNode(group, nd) {
			kept = append(kept, nd)
		}
	}
	l.alive = kept
}

// Observe implements Chooser.
func (l *LargestMatch) Observe(merged *Node) {
	l.alive = append(l.alive, merged)
}
