package compaction

import "repro/internal/keyset"

// This file constructs the worst-case instance families the paper uses to
// prove tightness of its bounds. They double as test fixtures and as the
// inputs of the "adversarial" experiment and example.

// WorkingExample returns the 5-set instance that Section 4.3 traces through
// every heuristic: A1={1,2,3,5}, A2={1,2,3,4}, A3={3,4,5}, A4={6,7,8},
// A5={7,8,9}. The paper reports merge costs (costactual) of 45 for
// BALANCETREE, 47 for SMALLESTINPUT and 40 for SMALLESTOUTPUT.
func WorkingExample() *Instance {
	return NewInstance(
		keyset.New(1, 2, 3, 5),
		keyset.New(1, 2, 3, 4),
		keyset.New(3, 4, 5),
		keyset.New(6, 7, 8),
		keyset.New(7, 8, 9),
	)
}

// AdversarialBalanceTree returns the Lemma 4.2 family: n−1 copies of {1}
// plus one set {1,...,n}. The left-to-right chain merge costs 4n−3
// (costactual ≈), while BALANCETREE pays at least n·(log n + 1) because the
// big set appears at every level — realizing the Ω(log n) gap. n should be
// a power of two for the cleanest effect.
func AdversarialBalanceTree(n int) *Instance {
	sets := make([]keyset.Set, n)
	for i := 0; i < n-1; i++ {
		sets[i] = keyset.New(1)
	}
	sets[n-1] = keyset.Range(1, uint64(n)+1)
	return NewInstance(sets...)
}

// DisjointSingletons returns the Lemma 4.5 family: n disjoint singletons
// {1},...,{n}. Any balanced merge (which SI and SO produce here) costs
// n·log n + n in simple cost, against the lower bound LOPT = n — showing
// the greedy analysis is tight with respect to LOPT, not that the
// heuristics are bad: the true optimum is also n·log n + n (Huffman on
// equal frequencies).
func DisjointSingletons(n int) *Instance {
	sets := make([]keyset.Set, n)
	for i := 0; i < n; i++ {
		sets[i] = keyset.New(uint64(i + 1))
	}
	return NewInstance(sets...)
}

// AdversarialLargestMatch returns the Section 4.3.4 family: nested sets
// A_i = {1, ..., 2^(i-1)} for i = 1..n. The optimal left-to-right merge
// costs 2^(n+1)−3 while LARGESTMATCH always grabs the huge set A_n first
// (it has the largest intersection with everything), paying 2^(n−1)·(n−1):
// an Ω(n) approximation gap. n is capped at 20 to keep sets in memory.
func AdversarialLargestMatch(n int) *Instance {
	if n > 20 {
		n = 20
	}
	sets := make([]keyset.Set, n)
	for i := 0; i < n; i++ {
		sets[i] = keyset.Range(1, 1+(uint64(1)<<uint(i)))
	}
	return NewInstance(sets...)
}

// HuffmanInstance returns n disjoint sets with the given sizes, on which
// BINARYMERGING coincides with Huffman coding (Section 2): SI and SO are
// provably optimal there, making it a strong oracle for tests.
func HuffmanInstance(sizes []int) *Instance {
	sets := make([]keyset.Set, len(sizes))
	var offset uint64
	for i, sz := range sizes {
		if sz < 1 {
			sz = 1
		}
		sets[i] = keyset.Range(offset, offset+uint64(sz))
		offset += uint64(sz)
	}
	return NewInstance(sets...)
}

// HuffmanCost returns the optimal simple cost for disjoint sets of the
// given sizes: total leaf mass plus the weighted internal path length of
// the optimal prefix-free code tree, computed with the classic two-smallest
// greedy.
func HuffmanCost(sizes []int) int {
	if len(sizes) == 0 {
		return 0
	}
	heap := make([]int, len(sizes))
	copy(heap, sizes)
	// Simple O(n²) selection keeps this oracle obviously correct.
	total := 0
	for _, s := range heap {
		total += s
	}
	for len(heap) > 1 {
		i1 := smallestIndex(heap, -1)
		i2 := smallestIndex(heap, i1)
		merged := heap[i1] + heap[i2]
		total += merged
		// Remove the larger index first to keep positions valid.
		if i1 < i2 {
			i1, i2 = i2, i1
		}
		heap = append(heap[:i1], heap[i1+1:]...)
		heap = append(heap[:i2], heap[i2+1:]...)
		heap = append(heap, merged)
	}
	return total
}

func smallestIndex(xs []int, skip int) int {
	best := -1
	for i, x := range xs {
		if i == skip {
			continue
		}
		if best < 0 || x < xs[best] {
			best = i
		}
	}
	return best
}
