// Package compaction implements the paper's primary contribution: major
// compaction as an optimization problem, and the greedy merge-scheduling
// algorithms that approximate it (Ghosh, Gupta, Gupta, Kumar — "Fast
// Compaction Algorithms for NoSQL Databases", ICDCS 2015).
//
// An Instance holds the n input sstables, modeled as sets of keys
// (BINARYMERGING, Section 2). A Chooser implements the CHOOSETWOSETS
// subroutine of the generic greedy algorithm (Algorithm 1), generalized to
// k-way merging; Run drives it to produce a Schedule — the full merge tree.
// Cost functions on schedules implement both the simplified cost of
// equation 2.1 (every node counted once) and costactual (internal nodes
// counted twice, as they are both written and re-read), as well as the
// SUBMODULARMERGING generalization.
//
// Provided choosers: SMALLESTINPUT, SMALLESTOUTPUT (exact and
// HyperLogLog-estimated), BALANCETREE with either inner order,
// LARGESTMATCH, and RANDOM. FreqMerge implements the f-approximation of
// Algorithm 2, and OptimalBinary/OptimalKWay compute exact optima for small
// instances by dynamic programming over subsets — something the paper could
// not compare against (it used the Σ|Ai| lower bound instead).
package compaction

import (
	"fmt"

	"repro/internal/keyset"
)

// Table is one input sstable in the abstract model: an identifier plus the
// set of keys it contains.
type Table struct {
	// ID is the table's index within its Instance.
	ID int
	// Set holds the table's keys; its cardinality is the table's size.
	Set keyset.Set
}

// Instance is a BINARYMERGING / K-WAYMERGING problem instance: the
// collection A_1, ..., A_n of input sets.
type Instance struct {
	tables []Table
}

// NewInstance builds an instance from the given sets, in order.
func NewInstance(sets ...keyset.Set) *Instance {
	in := &Instance{tables: make([]Table, len(sets))}
	for i, s := range sets {
		in.tables[i] = Table{ID: i, Set: s}
	}
	return in
}

// N returns the number of input tables.
func (in *Instance) N() int { return len(in.tables) }

// Tables returns the input tables. Callers must not modify the slice.
func (in *Instance) Tables() []Table { return in.tables }

// Table returns the i-th input table.
func (in *Instance) Table(i int) Table { return in.tables[i] }

// LowerBound returns LOPT = Σ|A_i|, the lower bound on the optimal
// simplified cost used throughout Section 4: every leaf appears in the
// merge tree, so OPT ≥ Σ|A_i|.
func (in *Instance) LowerBound() int {
	total := 0
	for _, t := range in.tables {
		total += t.Set.Len()
	}
	return total
}

// Universe returns the union of all input sets — the ground set U, which
// is also the set at the root of every valid merge tree.
func (in *Instance) Universe() keyset.Set {
	sets := make([]keyset.Set, len(in.tables))
	for i, t := range in.tables {
		sets[i] = t.Set
	}
	return keyset.UnionAll(sets...)
}

// MaxFrequency returns f = max_x |{i : x ∈ A_i}|, the maximum number of
// input sets any element appears in. FreqMerge is an f-approximation
// (Section 4.4).
func (in *Instance) MaxFrequency() int {
	freq := make(map[uint64]int)
	for _, t := range in.tables {
		for _, k := range t.Set.Keys() {
			freq[k]++
		}
	}
	max := 0
	for _, c := range freq {
		if c > max {
			max = c
		}
	}
	return max
}

// Validate checks that the instance is a well-formed input for Run: at
// least one table, none empty. Empty sets are rejected because the paper's
// model has sstables flushed from non-empty memtables, and zero-size sets
// break strategies that rank by cardinality.
func (in *Instance) Validate() error {
	if len(in.tables) == 0 {
		return fmt.Errorf("compaction: instance has no tables")
	}
	for i, t := range in.tables {
		if t.Set.Empty() {
			return fmt.Errorf("compaction: table %d is empty", i)
		}
	}
	return nil
}
