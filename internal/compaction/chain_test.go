package compaction

import (
	"math/rand"
	"testing"
)

func TestChainProducesCaterpillar(t *testing.T) {
	r := rand.New(rand.NewSource(79))
	inst := randomInstance(r, 10, 50, 10)
	sc, err := Run(inst, 2, NewChain())
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := sc.Height(); got != 9 {
		t.Errorf("chain height = %d, want n-1 = 9", got)
	}
	if got := MaxParallelism(sc); got != 1 {
		t.Errorf("chain parallelism = %d, want 1", got)
	}
}

func TestChainOptimalOnAdversarialFamilies(t *testing.T) {
	// Lemma 4.2: chain cost = 4n−3.
	const n = 64
	sc, err := Run(AdversarialBalanceTree(n), 2, NewChain())
	if err != nil {
		t.Fatal(err)
	}
	if got := sc.CostSimple(); got != 4*n-3 {
		t.Errorf("chain on Lemma 4.2 instance = %d, want 4n-3 = %d", got, 4*n-3)
	}
	// §4.3.4: chain cost = 2^(m+1)−3.
	const m = 10
	sc, err = Run(AdversarialLargestMatch(m), 2, NewChain())
	if err != nil {
		t.Fatal(err)
	}
	if got := sc.CostSimple(); got != 1<<(m+1)-3 {
		t.Errorf("chain on LM instance = %d, want 2^(m+1)-3 = %d", got, 1<<(m+1)-3)
	}
}

func TestChainMatchesCaterpillarAssignment(t *testing.T) {
	// CHAIN must equal AssignTree on the caterpillar with the identity
	// permutation.
	r := rand.New(rand.NewSource(83))
	for trial := 0; trial < 10; trial++ {
		n := 3 + r.Intn(8)
		inst := randomInstance(r, n, 40, 10)
		chain, err := Run(inst, 2, NewChain())
		if err != nil {
			t.Fatal(err)
		}
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		fixed, err := AssignTree(inst, CaterpillarTree(n), perm)
		if err != nil {
			t.Fatal(err)
		}
		if chain.CostSimple() != fixed.CostSimple() {
			t.Errorf("n=%d: chain %d != caterpillar assignment %d", n, chain.CostSimple(), fixed.CostSimple())
		}
	}
}

func TestChainKWay(t *testing.T) {
	r := rand.New(rand.NewSource(89))
	inst := randomInstance(r, 10, 50, 10)
	sc, err := Run(inst, 4, NewChain())
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(sc.Steps); got != 3 {
		t.Errorf("k=4 chain steps = %d, want 3", got)
	}
}
