package compaction

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/hll"
	"repro/internal/keyset"
)

// liveTablesOf builds the live-statistics view of an instance the way the
// engine would see its sstables: entry counts for cardinalities and
// HyperLogLog sketches for the key sets, at the registry precision.
func liveTablesOf(t *testing.T, inst *Instance) []LiveTable {
	t.Helper()
	tables := make([]LiveTable, inst.N())
	for i, tab := range inst.Tables() {
		s, err := hll.SketchOfUint64s(DefaultHLLPrecision, tab.Set.Keys())
		if err != nil {
			t.Fatalf("sketch: %v", err)
		}
		tables[i] = LiveTable{
			SizeBytes: uint64(tab.Set.Len()) * 100,
			Entries:   tab.Set.Len(),
			Sketch:    s,
		}
	}
	return tables
}

func sortedInts(xs []int) []int {
	out := append([]int(nil), xs...)
	sort.Ints(out)
	return out
}

// TestPickLiveMatchesModelFirstPick is the picker≡model property: for
// random instances, every live-capable strategy picking from table
// statistics selects exactly the tables the paper-model chooser's first
// CHOOSETWOSETS call selects on the equivalent Instance.
func TestPickLiveMatchesModelFirstPick(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(9)
		k := 2 + rng.Intn(3)
		universe := uint64(20 + rng.Intn(200))
		sets := make([]keyset.Set, n)
		for i := range sets {
			size := 1 + rng.Intn(30)
			keys := make([]uint64, size)
			for j := range keys {
				keys[j] = rng.Uint64() % universe
			}
			sets[i] = keyset.New(keys...)
		}
		inst := NewInstance(sets...)
		if inst.Validate() != nil {
			continue // a duplicate-heavy draw can produce an empty set
		}
		seed := rng.Int63()
		live := liveTablesOf(t, inst)
		for _, strategy := range LiveStrategies() {
			chooser, err := NewChooserByName(strategy, seed)
			if err != nil {
				t.Fatalf("%s: %v", strategy, err)
			}
			sc, err := Run(inst, k, chooser)
			if err != nil {
				t.Fatalf("%s: Run: %v", strategy, err)
			}
			want := make([]int, 0, k)
			for _, nd := range sc.Steps[0].Inputs {
				want = append(want, nd.TableID)
			}
			got, err := PickLive(live, strategy, k, seed)
			if err != nil {
				t.Fatalf("%s: PickLive: %v", strategy, err)
			}
			wantS, gotS := sortedInts(want), sortedInts(got)
			if len(wantS) != len(gotS) {
				t.Fatalf("trial %d %s: model picked %v, live picked %v", trial, strategy, wantS, gotS)
			}
			for i := range wantS {
				if wantS[i] != gotS[i] {
					t.Fatalf("trial %d %s: model picked %v, live picked %v", trial, strategy, wantS, gotS)
				}
			}
		}
	}
}

// TestPickLiveDegradesWithoutSketches: strategies that rank by union size
// still produce a valid pick when sketches are missing (tables written
// before the sketch extension), falling back to the disjoint-sum estimate.
func TestPickLiveDegradesWithoutSketches(t *testing.T) {
	tables := []LiveTable{
		{Entries: 10}, {Entries: 3}, {Entries: 7}, {Entries: 5},
	}
	for _, strategy := range []string{"SO", "BT(O)"} {
		got, err := PickLive(tables, strategy, 2, 1)
		if err != nil {
			t.Fatalf("%s: %v", strategy, err)
		}
		// Disjoint sums make the two smallest tables the best pair.
		want := []int{1, 3}
		gotS := sortedInts(got)
		if len(gotS) != 2 || gotS[0] != want[0] || gotS[1] != want[1] {
			t.Fatalf("%s: got %v, want %v", strategy, gotS, want)
		}
	}
}

// TestPickLiveEdgeCases covers the trivial and error paths.
func TestPickLiveEdgeCases(t *testing.T) {
	if got, err := PickLive([]LiveTable{{Entries: 1}}, "SI", 4, 1); err != nil || got != nil {
		t.Fatalf("single table: got %v, %v; want nil pick", got, err)
	}
	if _, err := PickLive(make([]LiveTable, 3), "SI", 1, 1); err == nil {
		t.Fatal("k=1 accepted")
	}
	if _, err := PickLive(make([]LiveTable, 3), "LM", 2, 1); err == nil {
		t.Fatal("LM accepted for live picking")
	}
	if _, err := PickLive(make([]LiveTable, 3), "bogus", 2, 1); err == nil {
		t.Fatal("unknown strategy accepted")
	}
	for _, name := range LiveStrategies() {
		if !IsLiveStrategy(name) {
			t.Fatalf("LiveStrategies returned non-live %q", name)
		}
	}
}
