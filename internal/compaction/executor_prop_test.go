package compaction

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/keyset"
)

// Property-based invariant tests for the schedule executor and the cost
// accounting, over random instances and every registered strategy:
//
//  1. ExecuteParallelFunc with many workers produces byte-identical
//     per-step outputs to a sequential (one-worker) execution.
//  2. Every strategy's reported CostActual and CostSimple match the costs
//     recomputed independently from the schedule it returned.

// executeCollect runs sc's merges through ExecuteParallelFunc with the
// given worker count, recomputing each step's union from its inputs, and
// returns the encoded keys of every step output.
func executeCollect(t *testing.T, sc *Schedule, workers int) [][]uint64 {
	t.Helper()
	outs := make([][]uint64, len(sc.Steps))
	var mu sync.Mutex
	err := ExecuteParallelFunc(sc, workers, func(i int) error {
		st := sc.Steps[i]
		sets := make([]keyset.Set, len(st.Inputs))
		for j, in := range st.Inputs {
			sets[j] = in.Set
		}
		got := keyset.UnionAll(sets...)
		mu.Lock()
		outs[i] = append([]uint64(nil), got.Keys()...)
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatalf("ExecuteParallelFunc(workers=%d): %v", workers, err)
	}
	return outs
}

func TestPropExecuteParallelMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		inst := randomInstance(r, 2+r.Intn(14), 120, 25)
		k := 2 + r.Intn(4)
		for _, name := range StrategyNames() {
			ch, err := NewChooserByName(name, int64(trial))
			if err != nil {
				t.Fatal(err)
			}
			sc, err := Run(inst, k, ch)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, name, err)
			}
			sequential := executeCollect(t, sc, 1)
			for _, workers := range []int{2, 8} {
				parallel := executeCollect(t, sc, workers)
				if !reflect.DeepEqual(sequential, parallel) {
					t.Fatalf("trial %d %s k=%d: %d-worker execution diverged from sequential", trial, name, k, workers)
				}
			}
			// Each collected output must also match the schedule's own label.
			for i, keys := range sequential {
				if !keyset.FromSorted(keys).Equal(sc.Steps[i].Output.Set) {
					t.Fatalf("trial %d %s k=%d: step %d output disagrees with schedule label", trial, name, k, i)
				}
			}
		}
	}
}

func TestPropReportedCostsMatchSchedule(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		inst := randomInstance(r, 2+r.Intn(14), 100, 20)
		k := 2 + r.Intn(4)
		for _, name := range StrategyNames() {
			ch, err := NewChooserByName(name, int64(trial))
			if err != nil {
				t.Fatal(err)
			}
			sc, err := Run(inst, k, ch)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, name, err)
			}
			if err := sc.Validate(); err != nil {
				t.Fatalf("trial %d %s k=%d: %v", trial, name, k, err)
			}
			// costactual (Section 2): every merge reads its inputs and
			// writes its output.
			actual := 0
			for _, st := range sc.Steps {
				for _, in := range st.Inputs {
					actual += in.Set.Len()
				}
				actual += st.Output.Set.Len()
			}
			if got := sc.CostActual(); got != actual {
				t.Fatalf("trial %d %s k=%d: CostActual() = %d, recomputed %d", trial, name, k, got, actual)
			}
			// Simplified cost (equation 2.1): Σ |A_ν| over all tree nodes.
			simple := 0
			for _, leaf := range sc.Leaves {
				simple += leaf.Set.Len()
			}
			for _, st := range sc.Steps {
				simple += st.Output.Set.Len()
			}
			if got := sc.CostSimple(); got != simple {
				t.Fatalf("trial %d %s k=%d: CostSimple() = %d, recomputed %d", trial, name, k, got, simple)
			}
		}
	}
}

// TestPropExecutorErrorStopsDispatch checks the executor's failure
// contract: after a step fails, no step that depends on it runs, and the
// first error is returned.
func TestPropExecutorErrorStopsDispatch(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		inst := randomInstance(r, 4+r.Intn(10), 80, 15)
		ch, err := NewChooserByName("BT(I)", 0)
		if err != nil {
			t.Fatal(err)
		}
		sc, err := Run(inst, 2, ch)
		if err != nil {
			t.Fatal(err)
		}
		failAt := r.Intn(len(sc.Steps))
		var mu sync.Mutex
		ran := make(map[int]bool)
		wantErr := fmt.Errorf("injected failure at step %d", failAt)
		err = ExecuteParallelFunc(sc, 4, func(i int) error {
			mu.Lock()
			ran[i] = true
			mu.Unlock()
			if i == failAt {
				return wantErr
			}
			return nil
		})
		if err != wantErr {
			t.Fatalf("trial %d: error = %v, want %v", trial, err, wantErr)
		}
		// Anything downstream of the failed step must not have run.
		downstream := map[int]bool{}
		producers := map[*Node]int{}
		for i, st := range sc.Steps {
			producers[st.Output] = i
		}
		var mark func(i int)
		mark = func(i int) {
			for j, st := range sc.Steps {
				for _, in := range st.Inputs {
					if p, ok := producers[in]; ok && p == i && !downstream[j] {
						downstream[j] = true
						mark(j)
					}
				}
			}
		}
		mark(failAt)
		for j := range downstream {
			if ran[j] {
				t.Fatalf("trial %d: step %d ran although its ancestor %d failed", trial, j, failAt)
			}
		}
	}
}
