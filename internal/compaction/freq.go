package compaction

import (
	"fmt"

	"repro/internal/keyset"
)

// FreqMerge implements Algorithm 2, the f-approximation for BINARYMERGING
// (Section 4.4), generalized to k-way merging. It disjointifies the
// instance — conceptually replacing each element x of A_i by the tuple
// (x, i) — runs the SMALLESTINPUT greedy on the disjoint copies (where SI
// is Huffman-optimal, Lemma 4.3), and then merges the real sets along the
// resulting tree and leaf assignment. The result is within a factor
// f = MaxFrequency of optimal.
//
// Because the disjoint copies only matter through their cardinalities, the
// implementation materializes each A'_i as a fresh block of |A_i| unique
// keys rather than real tuples.
func FreqMerge(inst *Instance, k int) (*Schedule, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	// Build the disjoint shadow instance A'_1, ..., A'_n.
	shadow := make([]keyset.Set, inst.N())
	var offset uint64
	for i, t := range inst.Tables() {
		n := uint64(t.Set.Len())
		shadow[i] = keyset.Range(offset, offset+n)
		offset += n
	}
	guide, err := Run(NewInstance(shadow...), k, NewSmallestInput())
	if err != nil {
		return nil, fmt.Errorf("compaction: freq guide: %w", err)
	}
	sc, err := replaySchedule(guide, inst)
	if err != nil {
		return nil, err
	}
	sc.Strategy = "FREQ"
	return sc, nil
}

// replaySchedule re-executes the merge tree of guide on the tables of
// inst: leaf i of the guide is assigned table i, and every step unions the
// corresponding real sets. The step order and tree shape are preserved.
func replaySchedule(guide *Schedule, inst *Instance) (*Schedule, error) {
	if len(guide.Leaves) != inst.N() {
		return nil, fmt.Errorf("compaction: replay: %d leaves vs %d tables", len(guide.Leaves), inst.N())
	}
	mapped := make(map[int]*Node, len(guide.Leaves)+len(guide.Steps))
	sc := &Schedule{Strategy: guide.Strategy, K: guide.K, Leaves: make([]*Node, inst.N())}
	for _, gl := range guide.Leaves {
		leaf := &Node{ID: gl.TableID, Set: inst.Table(gl.TableID).Set, TableID: gl.TableID, Level: 1}
		sc.Leaves[gl.TableID] = leaf
		mapped[gl.ID] = leaf
	}
	for _, gs := range guide.Steps {
		inputs := make([]*Node, len(gs.Inputs))
		sets := make([]keyset.Set, len(gs.Inputs))
		maxLevel := 0
		for i, gin := range gs.Inputs {
			nd, ok := mapped[gin.ID]
			if !ok {
				return nil, fmt.Errorf("compaction: replay: unknown input node %d", gin.ID)
			}
			inputs[i] = nd
			sets[i] = nd.Set
			if nd.Level > maxLevel {
				maxLevel = nd.Level
			}
		}
		out := &Node{
			ID:       gs.Output.ID,
			Set:      keyset.UnionAll(sets...),
			Children: inputs,
			TableID:  -1,
			Level:    maxLevel + 1,
		}
		mapped[gs.Output.ID] = out
		sc.Steps = append(sc.Steps, Step{Inputs: inputs, Output: out})
	}
	if len(sc.Steps) > 0 {
		sc.Root = sc.Steps[len(sc.Steps)-1].Output
	} else {
		sc.Root = sc.Leaves[0]
	}
	return sc, nil
}
