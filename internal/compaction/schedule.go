package compaction

import (
	"fmt"

	"repro/internal/keyset"
)

// Node is one vertex of a merge tree. Leaves correspond to input tables;
// internal nodes are merge outputs. The root holds the ground set.
type Node struct {
	// ID is unique within a Schedule: leaves take 0..n-1 (matching table
	// IDs), merge outputs continue from n in merge order.
	ID int
	// Set is the node's label A_ν: the keys of the (merged) sstable.
	Set keyset.Set
	// Children are the merge inputs; nil for leaves. Length is between 2
	// and the schedule's K for internal nodes.
	Children []*Node
	// TableID is the input table index for leaves, -1 for internal nodes.
	TableID int
	// Level is the BALANCETREE level annotation (leaves start at 1). Other
	// strategies leave it at the default computed height.
	Level int
}

// IsLeaf reports whether the node is an input table.
func (nd *Node) IsLeaf() bool { return len(nd.Children) == 0 }

// Step records one merge operation: the inputs consumed and the node
// produced.
type Step struct {
	Inputs []*Node
	Output *Node
}

// InputSize returns the total cardinality of the step's inputs — the data
// read from disk by this merge.
func (s Step) InputSize() int {
	total := 0
	for _, in := range s.Inputs {
		total += in.Set.Len()
	}
	return total
}

// Schedule is a complete merge schedule: an ordered sequence of merges that
// reduces the instance to a single set, together with the induced merge
// tree.
type Schedule struct {
	// Strategy names the chooser that produced the schedule.
	Strategy string
	// K is the maximum merge fan-in the schedule was produced under.
	K int
	// Root is the final node, whose set is the ground set U.
	Root *Node
	// Steps lists merges in execution order; len(Steps) ≥ 1 except for the
	// degenerate single-table instance, which needs no merges.
	Steps []Step
	// Leaves are the input nodes, indexed by table ID.
	Leaves []*Node
}

// Nodes returns all nodes of the merge tree: leaves then merge outputs in
// merge order.
func (sc *Schedule) Nodes() []*Node {
	out := make([]*Node, 0, len(sc.Leaves)+len(sc.Steps))
	out = append(out, sc.Leaves...)
	for _, st := range sc.Steps {
		out = append(out, st.Output)
	}
	return out
}

// CostSimple is the simplified cost of equation 2.1: Σ_{ν∈T} |A_ν| over
// every node of the merge tree, leaves and root included. All the paper's
// approximation guarantees are stated against this cost.
func (sc *Schedule) CostSimple() int {
	total := 0
	for _, nd := range sc.Nodes() {
		total += nd.Set.Len()
	}
	return total
}

// CostActual is the disk I/O cost of Section 2: each merge reads its
// inputs and writes its output, so internal nodes are counted twice (once
// as output, once as later input), while leaves and the root are counted
// once. Equivalently: Σ over steps of (inputs + output).
func (sc *Schedule) CostActual() int {
	total := 0
	for _, st := range sc.Steps {
		total += st.InputSize() + st.Output.Set.Len()
	}
	return total
}

// CostSubmodular is the SUBMODULARMERGING cost: Σ over merge steps of
// f(output set). With f = cardinality this equals CostSimple minus the
// (constant) total leaf size.
func (sc *Schedule) CostSubmodular(f keyset.CostFn) float64 {
	total := 0.0
	for _, st := range sc.Steps {
		total += f(st.Output.Set)
	}
	return total
}

// Height returns the height of the merge tree (edges on the longest
// root-leaf path).
func (sc *Schedule) Height() int {
	var walk func(nd *Node) int
	walk = func(nd *Node) int {
		if nd.IsLeaf() {
			return 0
		}
		max := 0
		for _, c := range nd.Children {
			if h := walk(c); h > max {
				max = h
			}
		}
		return max + 1
	}
	return walk(sc.Root)
}

// Validate checks structural invariants: every leaf is consumed exactly
// once, every step's output is the union of its inputs, fan-in respects K,
// and the root's set equals the union of all leaves. Used heavily in tests
// and as a guard in the experiment harness.
func (sc *Schedule) Validate() error {
	if sc.Root == nil {
		return fmt.Errorf("compaction: schedule has no root")
	}
	if sc.K < 2 {
		return fmt.Errorf("compaction: schedule K = %d", sc.K)
	}
	consumed := make(map[int]int) // node ID -> times used as input
	produced := map[int]bool{}
	for i, st := range sc.Steps {
		if len(st.Inputs) < 2 || len(st.Inputs) > sc.K {
			return fmt.Errorf("compaction: step %d merges %d sets (k=%d)", i, len(st.Inputs), sc.K)
		}
		union := keyset.Set{}
		for _, in := range st.Inputs {
			if !in.IsLeaf() && !produced[in.ID] {
				return fmt.Errorf("compaction: step %d consumes node %d before it is produced", i, in.ID)
			}
			consumed[in.ID]++
			union = union.Union(in.Set)
		}
		if !union.Equal(st.Output.Set) {
			return fmt.Errorf("compaction: step %d output is not the union of its inputs", i)
		}
		produced[st.Output.ID] = true
	}
	for _, leaf := range sc.Leaves {
		if len(sc.Leaves) > 1 && consumed[leaf.ID] != 1 {
			return fmt.Errorf("compaction: leaf %d consumed %d times", leaf.TableID, consumed[leaf.ID])
		}
	}
	for _, st := range sc.Steps[:max(0, len(sc.Steps)-1)] {
		if consumed[st.Output.ID] != 1 {
			return fmt.Errorf("compaction: intermediate node %d consumed %d times", st.Output.ID, consumed[st.Output.ID])
		}
	}
	sets := make([]keyset.Set, len(sc.Leaves))
	for i, leaf := range sc.Leaves {
		sets[i] = leaf.Set
	}
	if !sc.Root.Set.Equal(keyset.UnionAll(sets...)) {
		return fmt.Errorf("compaction: root set is not the universe")
	}
	return nil
}
