package compaction

import "sort"

// Chain merges tables strictly left to right in input order, producing the
// caterpillar-shaped tree of Section 3 (Figure 3). It is the optimal
// schedule on several of the paper's analytic families — the Lemma 4.2
// instance (cost 4n−3) and the nested LARGESTMATCH family (cost 2^(n+1)−3)
// — and serves as the "no reordering" baseline: what an engine gets by
// always folding the next sstable into the running result.
type Chain struct {
	k       int
	pending []*Node // input order, head is the running accumulator
}

// NewChain returns a fresh left-to-right chooser.
func NewChain() *Chain { return &Chain{} }

// Name implements Chooser.
func (c *Chain) Name() string { return "CHAIN" }

// Init implements Chooser.
func (c *Chain) Init(leaves []*Node, k int) error {
	c.k = k
	c.pending = append([]*Node(nil), leaves...)
	sort.Slice(c.pending, func(i, j int) bool { return c.pending[i].TableID < c.pending[j].TableID })
	return nil
}

// Choose implements Chooser: the running accumulator (or the first two
// tables) plus the next k−1 inputs.
func (c *Chain) Choose() ([]*Node, error) {
	g := groupSize(c.k, len(c.pending))
	group := append([]*Node(nil), c.pending[:g]...)
	c.pending = c.pending[g:]
	return group, nil
}

// Observe implements Chooser: the merged result becomes the accumulator at
// the head of the remaining inputs.
func (c *Chain) Observe(merged *Node) {
	c.pending = append([]*Node{merged}, c.pending...)
}
