package compaction

import (
	"container/heap"
	"fmt"

	"repro/internal/hll"
)

// UnionEstimator abstracts how SMALLESTOUTPUT ranks candidate merges: by
// exact union cardinality, or by a HyperLogLog estimate (the practical
// implementation of Section 5.1, since computing the exact output size
// without merging is as expensive as merging).
type UnionEstimator interface {
	// EstimatorName tags the estimator for strategy names ("exact"/"hll").
	EstimatorName() string
	// Prepare is called once per node (leaves and merge outputs) before
	// that node participates in estimates.
	Prepare(nd *Node) error
	// PairEstimate estimates |a.Set ∪ b.Set|.
	PairEstimate(a, b *Node) (float64, error)
	// GroupEstimate estimates the union cardinality of group ∪ {extra}.
	GroupEstimate(group []*Node, extra *Node) (float64, error)
}

// ExactEstimator ranks merges by true union cardinality, computed with a
// linear scan of both sorted key slices. This is the "exact cardinality
// sstable merging scheme" the paper compares its HLL variant against.
type ExactEstimator struct{}

// EstimatorName implements UnionEstimator.
func (ExactEstimator) EstimatorName() string { return "exact" }

// Prepare implements UnionEstimator.
func (ExactEstimator) Prepare(*Node) error { return nil }

// PairEstimate implements UnionEstimator.
func (ExactEstimator) PairEstimate(a, b *Node) (float64, error) {
	return float64(a.Set.UnionLen(b.Set)), nil
}

// GroupEstimate implements UnionEstimator.
func (ExactEstimator) GroupEstimate(group []*Node, extra *Node) (float64, error) {
	u := extra.Set
	for _, nd := range group {
		u = u.Union(nd.Set)
	}
	return float64(u.Len()), nil
}

// HLLEstimator ranks merges by HyperLogLog estimates. Each node carries a
// sketch: leaves are sketched from their keys, merge outputs by merging the
// children's sketches (sketch union is exact), so no key data is touched
// when estimating — the point of the paper's practical SO implementation.
type HLLEstimator struct {
	precision uint8
	sketches  map[*Node]*hll.Sketch
}

// NewHLLEstimator creates an estimator with 2^precision registers per
// sketch. Precision 12 gives ≈1.6% standard error.
func NewHLLEstimator(precision uint8) *HLLEstimator {
	return &HLLEstimator{precision: precision, sketches: make(map[*Node]*hll.Sketch)}
}

// EstimatorName implements UnionEstimator.
func (e *HLLEstimator) EstimatorName() string { return "hll" }

// Prepare implements UnionEstimator.
func (e *HLLEstimator) Prepare(nd *Node) error {
	if _, ok := e.sketches[nd]; ok {
		return nil
	}
	if !nd.IsLeaf() {
		// Merge the children's sketches: O(registers), independent of set
		// size.
		merged, err := hll.New(e.precision)
		if err != nil {
			return err
		}
		for _, c := range nd.Children {
			cs, ok := e.sketches[c]
			if !ok {
				return fmt.Errorf("compaction: child %d has no sketch", c.ID)
			}
			if err := merged.Merge(cs); err != nil {
				return err
			}
		}
		e.sketches[nd] = merged
		return nil
	}
	s, err := hll.SketchOfUint64s(e.precision, nd.Set.Keys())
	if err != nil {
		return err
	}
	e.sketches[nd] = s
	return nil
}

// PairEstimate implements UnionEstimator.
func (e *HLLEstimator) PairEstimate(a, b *Node) (float64, error) {
	sa, sb := e.sketches[a], e.sketches[b]
	if sa == nil || sb == nil {
		return 0, fmt.Errorf("compaction: missing sketch")
	}
	return hll.UnionEstimate(sa, sb)
}

// GroupEstimate implements UnionEstimator.
func (e *HLLEstimator) GroupEstimate(group []*Node, extra *Node) (float64, error) {
	acc := e.sketches[extra]
	if acc == nil {
		return 0, fmt.Errorf("compaction: missing sketch")
	}
	acc = acc.Clone()
	for _, nd := range group {
		s := e.sketches[nd]
		if s == nil {
			return 0, fmt.Errorf("compaction: missing sketch")
		}
		if err := acc.Merge(s); err != nil {
			return 0, err
		}
	}
	return acc.Estimate(), nil
}

// SmallestOutput implements the SMALLESTOUTPUT (SO) heuristic of Section
// 4.3.3: each iteration merges the group of k sets whose union is smallest.
// Like SI it is a (2Hₙ+1)-approximation (Lemma 4.4).
//
// Pair scores are kept in a lazily-invalidated min-heap, realizing the
// paper's observation that after the first iteration only combinations
// involving the newly created sstable need fresh estimates; all others are
// reused (Section 5.1).
type SmallestOutput struct {
	est   UnionEstimator
	k     int
	alive map[*Node]bool
	pairs pairHeap
}

// NewSmallestOutput returns an SO chooser ranking merges with est.
func NewSmallestOutput(est UnionEstimator) *SmallestOutput {
	return &SmallestOutput{est: est}
}

// Name implements Chooser.
func (s *SmallestOutput) Name() string {
	if s.est.EstimatorName() == "exact" {
		return "SO(exact)"
	}
	return "SO"
}

// Init implements Chooser: score every pair of leaves.
func (s *SmallestOutput) Init(leaves []*Node, k int) error {
	s.k = k
	s.alive = make(map[*Node]bool, len(leaves))
	for _, nd := range leaves {
		if err := s.est.Prepare(nd); err != nil {
			return err
		}
		s.alive[nd] = true
	}
	s.pairs = make(pairHeap, 0, len(leaves)*(len(leaves)-1)/2)
	for i, a := range leaves {
		for _, b := range leaves[i+1:] {
			score, err := s.est.PairEstimate(a, b)
			if err != nil {
				return err
			}
			s.pairs = append(s.pairs, pairEntry{a: a, b: b, score: score})
		}
	}
	heap.Init(&s.pairs)
	return nil
}

// Choose implements Chooser: pop the best live pair, then for k > 2 grow
// the group greedily by the set minimizing the estimated union.
func (s *SmallestOutput) Choose() ([]*Node, error) {
	g := groupSize(s.k, len(s.alive))
	var best pairEntry
	for {
		if s.pairs.Len() == 0 {
			return nil, fmt.Errorf("pair heap exhausted")
		}
		best = heap.Pop(&s.pairs).(pairEntry)
		if s.alive[best.a] && s.alive[best.b] {
			break
		}
	}
	group := []*Node{best.a, best.b}
	for len(group) < g {
		var bestExtra *Node
		bestScore := 0.0
		for nd := range s.alive {
			if nd == group[0] || containsNode(group, nd) {
				continue
			}
			score, err := s.est.GroupEstimate(group, nd)
			if err != nil {
				return nil, err
			}
			if bestExtra == nil || score < bestScore || (score == bestScore && nd.ID < bestExtra.ID) {
				bestExtra, bestScore = nd, score
			}
		}
		if bestExtra == nil {
			break
		}
		group = append(group, bestExtra)
	}
	for _, nd := range group {
		delete(s.alive, nd)
	}
	return group, nil
}

// Observe implements Chooser: sketch the new node and score it against all
// live nodes — the (n−k choose k−1) fresh combinations of Section 5.1.
func (s *SmallestOutput) Observe(merged *Node) {
	if err := s.est.Prepare(merged); err != nil {
		// Prepare only fails on programmer error (missing child sketches);
		// surfacing it on the next Choose keeps the interface simple.
		return
	}
	for nd := range s.alive {
		score, err := s.est.PairEstimate(merged, nd)
		if err != nil {
			continue
		}
		// Normalize by ID so tie-breaking is canonical regardless of
		// insertion direction.
		a, b := merged, nd
		if a.ID > b.ID {
			a, b = b, a
		}
		heap.Push(&s.pairs, pairEntry{a: a, b: b, score: score})
	}
	s.alive[merged] = true
}

func containsNode(nodes []*Node, target *Node) bool {
	for _, nd := range nodes {
		if nd == target {
			return true
		}
	}
	return false
}

// pairEntry scores one candidate merge pair.
type pairEntry struct {
	a, b  *Node
	score float64
}

// pairHeap is a min-heap of pair scores with deterministic tie-breaking.
type pairHeap []pairEntry

func (h pairHeap) Len() int { return len(h) }
func (h pairHeap) Less(i, j int) bool {
	if h[i].score != h[j].score {
		return h[i].score < h[j].score
	}
	if h[i].a.ID != h[j].a.ID {
		return h[i].a.ID < h[j].a.ID
	}
	return h[i].b.ID < h[j].b.ID
}
func (h pairHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *pairHeap) Push(x any) { *h = append(*h, x.(pairEntry)) }

func (h *pairHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
