package compaction

import (
	"fmt"
	"math/bits"
)

// MaxOptimalN bounds the instance size accepted by the exact solvers: the
// subset dynamic program enumerates all 3^n (subset, split) pairs, which is
// practical up to n = 16 for binary merging.
const MaxOptimalN = 16

// maxOptimalKWayN bounds the k-way solver, whose extra partition dimension
// multiplies the work by k.
const maxOptimalKWayN = 14

// OptimalBinary computes an exact optimal BINARYMERGING schedule (k = 2)
// by dynamic programming over subsets of tables:
//
//	opt({i}) = |A_i|
//	opt(S)   = |∪S| + min over proper splits S = T ⊎ (S∖T) of opt(T)+opt(S∖T)
//
// Union cardinalities for all 2^n subsets are computed with a sum-over-
// subsets transform on element membership masks, so the DP never
// materializes intermediate sets. The problem is NP-hard (Section 3), so
// exponential time here is expected; the solver exists to measure how close
// the greedy heuristics come to true optimality on small instances — a
// comparison the paper itself had to approximate with the Σ|A_i| lower
// bound (Section 5.3).
func OptimalBinary(inst *Instance) (*Schedule, error) {
	return OptimalKWay(inst, 2)
}

// OptimalKWay computes an exact optimal K-WAYMERGING schedule: every merge
// combines between 2 and k sets, and the cost charged per merge is the
// cardinality of its output (plus the constant leaf sizes, matching
// CostSimple). Instances are limited to MaxOptimalN tables (14 for k > 2).
func OptimalKWay(inst *Instance, k int) (*Schedule, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	if k < 2 {
		return nil, fmt.Errorf("compaction: k = %d, need k >= 2", k)
	}
	n := inst.N()
	limit := MaxOptimalN
	if k > 2 {
		limit = maxOptimalKWayN
	}
	if n > limit {
		return nil, fmt.Errorf("compaction: exact solver limited to %d tables, got %d", limit, n)
	}
	if n == 1 {
		leaf := &Node{ID: 0, Set: inst.Table(0).Set, TableID: 0, Level: 1}
		return &Schedule{Strategy: "OPT", K: k, Root: leaf, Leaves: []*Node{leaf}}, nil
	}

	unionLen := subsetUnionSizes(inst)
	full := (1 << n) - 1

	// opt[S]: minimal CostSimple of merging the tables in S into one set.
	// For singletons this is the leaf size; for larger S it adds |∪S| plus
	// the cheapest partition of S into 2..k blocks.
	const unset = -1
	// part[j][S]: minimal Σ opt(block) over partitions of S into exactly
	// j+1 blocks (part[0][S] doubles as the opt(S) memo).
	part := make([][]int64, k)
	choice := make([][]int, k) // chosen first block (containing lowbit)
	for j := range part {
		part[j] = make([]int64, full+1)
		choice[j] = make([]int, full+1)
		for s := range part[j] {
			part[j][s] = unset
		}
	}
	blocks := make([]int, full+1) // number of blocks opt(S) splits into

	var solveOpt func(s int) int64
	var solvePart func(j, s int) int64

	solveOpt = func(s int) int64 {
		if part[0][s] != unset {
			return part[0][s]
		}
		if bits.OnesCount(uint(s)) == 1 {
			i := bits.TrailingZeros(uint(s))
			part[0][s] = int64(inst.Table(i).Set.Len())
			return part[0][s]
		}
		best := int64(-1)
		bestJ := 0
		maxBlocks := k
		if c := bits.OnesCount(uint(s)); c < maxBlocks {
			maxBlocks = c
		}
		for j := 2; j <= maxBlocks; j++ {
			if v := solvePart(j-1, s); best < 0 || v < best {
				best, bestJ = v, j
			}
		}
		part[0][s] = int64(unionLen[s]) + best
		blocks[s] = bestJ
		return part[0][s]
	}

	// solvePart(j, s) = min over partitions of s into exactly j+1 blocks of
	// Σ opt(block); j >= 1. The first block always contains the lowest set
	// bit of s to avoid counting permutations of the same partition.
	solvePart = func(j, s int) int64 {
		if j == 0 {
			return solveOpt(s)
		}
		if part[j][s] != unset {
			return part[j][s]
		}
		low := s & (-s)
		best := int64(-1)
		bestT := 0
		// Enumerate submasks T of s that contain low and leave at least j
		// elements for the remaining blocks.
		rest := s ^ low
		for sub := rest; ; sub = (sub - 1) & rest {
			t := sub | low
			remainder := s ^ t
			if bits.OnesCount(uint(remainder)) >= j {
				v := solveOpt(t) + solvePart(j-1, remainder)
				if best < 0 || v < best {
					best, bestT = v, t
				}
			}
			if sub == 0 {
				break
			}
		}
		part[j][s] = best
		choice[j][s] = bestT
		return best
	}

	solveOpt(full)

	// Reconstruct the merge tree, emitting steps in post-order so children
	// are produced before parents.
	sc := &Schedule{Strategy: "OPT", K: k}
	sc.Leaves = make([]*Node, n)
	for i, t := range inst.Tables() {
		sc.Leaves[i] = &Node{ID: i, Set: t.Set, TableID: i, Level: 1}
	}
	nextID := n
	var build func(s int) *Node
	build = func(s int) *Node {
		if bits.OnesCount(uint(s)) == 1 {
			return sc.Leaves[bits.TrailingZeros(uint(s))]
		}
		nblocks := blocks[s]
		var children []*Node
		remaining := s
		for j := nblocks - 1; j >= 1; j-- {
			t := choice[j][remaining]
			children = append(children, build(t))
			remaining ^= t
		}
		children = append(children, build(remaining))
		maxLevel := 0
		union := children[0].Set
		for _, c := range children[1:] {
			union = union.Union(c.Set)
		}
		for _, c := range children {
			if c.Level > maxLevel {
				maxLevel = c.Level
			}
		}
		out := &Node{ID: nextID, Set: union, Children: children, TableID: -1, Level: maxLevel + 1}
		nextID++
		sc.Steps = append(sc.Steps, Step{Inputs: children, Output: out})
		return out
	}
	sc.Root = build(full)
	return sc, nil
}

// subsetUnionSizes returns, for every subset S of tables (as a bitmask),
// the cardinality of the union of the sets in S. It folds identical
// element membership masks together and applies a sum-over-subsets
// transform: |∪S| = m − #{x : mask(x) ∩ S = ∅} = m − Σ_{mask ⊆ ~S} count.
func subsetUnionSizes(inst *Instance) []int {
	n := inst.N()
	full := (1 << n) - 1
	maskCount := make(map[uint64]int)
	masks := make(map[uint64]uint64) // element -> membership mask
	for i, t := range inst.Tables() {
		for _, x := range t.Set.Keys() {
			masks[x] |= 1 << uint(i)
		}
	}
	m := len(masks)
	for _, mask := range masks {
		maskCount[mask]++
	}
	// g[T] = number of elements whose mask is a subset of T.
	g := make([]int, full+1)
	for mask, c := range maskCount {
		g[mask] += c
	}
	for bit := 0; bit < n; bit++ {
		for s := 0; s <= full; s++ {
			if s&(1<<bit) != 0 {
				g[s] += g[s^(1<<bit)]
			}
		}
	}
	out := make([]int, full+1)
	for s := 0; s <= full; s++ {
		out[s] = m - g[full^s]
	}
	return out
}
