package compaction

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/keyset"
)

// ExecuteParallel re-executes a schedule's merges on a bounded worker pool,
// running every merge whose inputs are ready concurrently. This realizes
// the paper's threaded BALANCETREE implementation (Section 5.1): "Since all
// sstables at a single level can be simultaneously merged, we use threads
// to parallelly initiate multiple merge operations." For chain-shaped trees
// (the typical SI/SO output) there is no available parallelism and the
// execution degrades gracefully to sequential.
//
// The unions are recomputed from the leaf sets (results are checked against
// the schedule), so wall-clock time of ExecuteParallel measures pure merge
// work without planning overhead. workers <= 0 selects GOMAXPROCS.
func ExecuteParallel(sc *Schedule, workers int) error {
	return ExecuteParallelFunc(sc, workers, func(i int) error {
		st := sc.Steps[i]
		sets := make([]keyset.Set, len(st.Inputs))
		for j, in := range st.Inputs {
			sets[j] = in.Set
		}
		got := keyset.UnionAll(sets...)
		if !got.Equal(st.Output.Set) {
			return fmt.Errorf("compaction: execute: step %d produced a different union", i)
		}
		return nil
	})
}

// ExecuteParallelFunc drives sc's merge DAG on a bounded worker pool,
// invoking run(i) for step i once every input of that step has been
// produced. It is the executor behind both ExecuteParallel (which re-merges
// the abstract key sets) and the LSM engine's background major compaction
// (which merges the real sstable files). Steps whose inputs are all leaves
// start immediately; a step becomes ready the moment its last dependency's
// run call returns, so available parallelism is exploited without barriers
// between tree levels.
//
// The completion of run(i) happens-before the start of run(j) for every
// step j that consumes step i's output, so runners may hand results from
// producers to consumers through plain shared memory indexed by node ID.
// The first error stops the dispatch of new steps; in-flight steps finish
// before ExecuteParallelFunc returns that error. workers <= 0 selects
// GOMAXPROCS.
func ExecuteParallelFunc(sc *Schedule, workers int, run func(step int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if len(sc.Steps) == 0 {
		return nil
	}

	// Dependency counting: a step is ready when all its non-leaf inputs
	// have been produced.
	producers := make(map[*Node]int, len(sc.Steps)) // output node -> step index
	for i, st := range sc.Steps {
		producers[st.Output] = i
	}
	waiting := make([]int, len(sc.Steps))
	dependents := make([][]int, len(sc.Steps))
	ready := make([]int, 0, len(sc.Steps))
	for i, st := range sc.Steps {
		for _, in := range st.Inputs {
			if in.IsLeaf() {
				continue
			}
			p, ok := producers[in]
			if !ok {
				return fmt.Errorf("compaction: execute: step %d input %d has no producer", i, in.ID)
			}
			waiting[i]++
			dependents[p] = append(dependents[p], i)
		}
		if waiting[i] == 0 {
			ready = append(ready, i)
		}
	}

	var (
		mu        sync.Mutex
		cond      = sync.Cond{L: &mu}
		remaining = len(sc.Steps)
		firstErr  error
	)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				for len(ready) == 0 && remaining > 0 && firstErr == nil {
					cond.Wait()
				}
				if remaining == 0 || firstErr != nil {
					mu.Unlock()
					return
				}
				i := ready[len(ready)-1]
				ready = ready[:len(ready)-1]
				mu.Unlock()

				err := run(i)

				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = err
				}
				remaining--
				for _, d := range dependents[i] {
					waiting[d]--
					if waiting[d] == 0 {
						ready = append(ready, d)
					}
				}
				cond.Broadcast()
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// MaxParallelism returns the largest number of merges in the schedule that
// could run concurrently — the width of the dependency DAG by level. BT
// schedules have width ≈ n/k at the first level; SI/SO chains have width
// close to 1 after the first step.
func MaxParallelism(sc *Schedule) int {
	depth := make(map[*Node]int)
	widths := make(map[int]int)
	for _, st := range sc.Steps {
		d := 0
		for _, in := range st.Inputs {
			if !in.IsLeaf() && depth[in]+1 > d {
				d = depth[in] + 1
			}
		}
		depth[st.Output] = d
		widths[d]++
	}
	maxW := 0
	for _, w := range widths {
		if w > maxW {
			maxW = w
		}
	}
	return maxW
}
