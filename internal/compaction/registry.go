package compaction

import (
	"fmt"
	"sort"
)

// DefaultHLLPrecision is the sketch precision used by the SO and BT(O)
// strategies when constructed by name (2^12 registers, ≈1.6% error).
const DefaultHLLPrecision = 12

// NewChooserByName constructs a fresh chooser for one run. Recognized
// names: "SI", "SO" (HyperLogLog-estimated), "SO(exact)", "BT" (arbitrary
// within-level order), "BT(I)", "BT(O)", "LM", "CHAIN" (left-to-right
// baseline), "RANDOM". seed is used by RANDOM only.
func NewChooserByName(name string, seed int64) (Chooser, error) {
	switch name {
	case "SI":
		return NewSmallestInput(), nil
	case "SO":
		return NewSmallestOutput(NewHLLEstimator(DefaultHLLPrecision)), nil
	case "SO(exact)":
		return NewSmallestOutput(ExactEstimator{}), nil
	case "BT":
		return NewBalanceTree(OrderArbitrary, nil), nil
	case "BT(I)":
		return NewBalanceTree(OrderSmallestInput, nil), nil
	case "BT(O)":
		return NewBalanceTree(OrderSmallestOutput, NewHLLEstimator(DefaultHLLPrecision)), nil
	case "LM":
		return NewLargestMatch(), nil
	case "CHAIN":
		return NewChain(), nil
	case "RANDOM":
		return NewRandom(seed), nil
	default:
		return nil, fmt.Errorf("compaction: unknown strategy %q", name)
	}
}

// StrategyNames returns the names accepted by NewChooserByName, sorted.
func StrategyNames() []string {
	names := []string{"SI", "SO", "SO(exact)", "BT", "BT(I)", "BT(O)", "LM", "CHAIN", "RANDOM"}
	sort.Strings(names)
	return names
}

// EvaluatedStrategies returns the five strategies compared in the paper's
// Figure 7, in the paper's presentation order.
func EvaluatedStrategies() []string {
	return []string{"SI", "SO", "BT(I)", "BT(O)", "RANDOM"}
}
