package compaction

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/keyset"
)

// This file implements the analytical machinery of Section 2 and Appendix
// A: the per-element cost reformulation (equation 2.2), fixed-tree merge
// schedules (the OPT-TREE-ASSIGN problem), caterpillar and complete tree
// shapes, and the η(T) path-length functional used to force complete trees
// in the NP-hardness reduction. These are not needed to *run* compaction —
// they exist to verify the paper's identities and constructions
// empirically, and to support the hardness-themed tests and examples.

// CostByElement computes the schedule cost via the reformulation of
// equation 2.2: cost(T, π) = Σ_{x∈U} (|T(x)| + 1), where T(x) is the
// minimal subtree spanning the nodes whose label sets contain x and
// |T(x)| counts its edges. It must always equal CostSimple; tests assert
// the identity on every strategy's output.
func (sc *Schedule) CostByElement() int {
	// |T(x)|+1 equals the number of nodes of T whose label contains x:
	// the nodes containing x always form a connected subtree (labels are
	// unions of descendant leaves), so edges = nodes − 1.
	total := 0
	for _, nd := range sc.Nodes() {
		total += nd.Set.Len()
	}
	return total
}

// ElementSpan returns |T(x)| + 1 for one element: the number of schedule
// nodes whose set contains x. It is the element's individual contribution
// to the cost under equation 2.2.
func (sc *Schedule) ElementSpan(x uint64) int {
	n := 0
	for _, nd := range sc.Nodes() {
		if nd.Set.Contains(x) {
			n++
		}
	}
	return n
}

// TreeShape describes an unlabeled full binary tree for the OPT-TREE-
// ASSIGN problem (Appendix A.2): nil children mean a leaf.
type TreeShape struct {
	Left, Right *TreeShape
}

// LeafCount returns the number of leaves of the shape.
func (t *TreeShape) LeafCount() int {
	if t == nil {
		return 0
	}
	if t.Left == nil && t.Right == nil {
		return 1
	}
	return t.Left.LeafCount() + t.Right.LeafCount()
}

// Eta computes η(T): the sum over all leaves of the number of nodes on the
// root-to-leaf path (Appendix A.3). Lemma A.2 proves η(T) ≥ n·log(2n) with
// equality only for the perfect binary tree.
func (t *TreeShape) Eta() int {
	var walk func(nd *TreeShape, depth int) int
	walk = func(nd *TreeShape, depth int) int {
		if nd.Left == nil && nd.Right == nil {
			return depth + 1
		}
		return walk(nd.Left, depth+1) + walk(nd.Right, depth+1)
	}
	return walk(t, 0)
}

// CompleteTree builds the perfectly balanced shape with n = 2^h leaves.
// It panics if n is not a positive power of two; callers construct these
// from constants.
func CompleteTree(n int) *TreeShape {
	if n < 1 || n&(n-1) != 0 {
		panic(fmt.Sprintf("compaction: CompleteTree needs a power of two, got %d", n))
	}
	if n == 1 {
		return &TreeShape{}
	}
	return &TreeShape{Left: CompleteTree(n / 2), Right: CompleteTree(n / 2)}
}

// CaterpillarTree builds the caterpillar shape Tn of Section 3 (Figure 3):
// a left spine of internal nodes with leaves hanging right, height n−1.
func CaterpillarTree(n int) *TreeShape {
	if n < 1 {
		panic("compaction: CaterpillarTree needs n >= 1")
	}
	if n == 1 {
		return &TreeShape{}
	}
	t := &TreeShape{Left: &TreeShape{}, Right: &TreeShape{}}
	for i := 2; i < n; i++ {
		t = &TreeShape{Left: t, Right: &TreeShape{}}
	}
	return t
}

// AssignTree builds the merge schedule that results from merging the
// instance's tables along the fixed shape, with perm assigning table
// perm[i] to the i-th leaf in left-to-right order. This is one candidate
// solution of OPT-TREE-ASSIGN(shape, A_1..A_n). Merges are emitted in
// post-order.
func AssignTree(inst *Instance, shape *TreeShape, perm []int) (*Schedule, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	n := inst.N()
	if shape.LeafCount() != n {
		return nil, fmt.Errorf("compaction: shape has %d leaves for %d tables", shape.LeafCount(), n)
	}
	if len(perm) != n {
		return nil, fmt.Errorf("compaction: permutation length %d for %d tables", len(perm), n)
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if p < 0 || p >= n || seen[p] {
			return nil, fmt.Errorf("compaction: invalid permutation %v", perm)
		}
		seen[p] = true
	}

	sc := &Schedule{Strategy: "FIXED-TREE", K: 2, Leaves: make([]*Node, n)}
	for i, t := range inst.Tables() {
		sc.Leaves[i] = &Node{ID: i, Set: t.Set, TableID: i, Level: 1}
	}
	nextLeaf := 0
	nextID := n
	var build func(s *TreeShape) *Node
	build = func(s *TreeShape) *Node {
		if s.Left == nil && s.Right == nil {
			leaf := sc.Leaves[perm[nextLeaf]]
			nextLeaf++
			return leaf
		}
		l := build(s.Left)
		r := build(s.Right)
		level := l.Level
		if r.Level > level {
			level = r.Level
		}
		out := &Node{
			ID:       nextID,
			Set:      l.Set.Union(r.Set),
			Children: []*Node{l, r},
			TableID:  -1,
			Level:    level + 1,
		}
		nextID++
		sc.Steps = append(sc.Steps, Step{Inputs: []*Node{l, r}, Output: out})
		return out
	}
	sc.Root = build(shape)
	return sc, nil
}

// OptTreeAssign solves the OPT-TREE-ASSIGN problem exactly by enumerating
// all n! leaf assignments — the problem is NP-hard (Lemma A.1), so brute
// force is the honest exact method. n is capped at 9 (362,880
// permutations).
func OptTreeAssign(inst *Instance, shape *TreeShape) (*Schedule, error) {
	const maxN = 9
	n := inst.N()
	if n > maxN {
		return nil, fmt.Errorf("compaction: OptTreeAssign limited to %d tables, got %d", maxN, n)
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	var best *Schedule
	bestCost := -1
	for {
		sc, err := AssignTree(inst, shape, perm)
		if err != nil {
			return nil, err
		}
		if cost := sc.CostSimple(); bestCost < 0 || cost < bestCost {
			best, bestCost = sc, cost
		}
		if !nextPermutation(perm) {
			break
		}
	}
	return best, nil
}

// nextPermutation advances perm to the next lexicographic permutation,
// returning false after the last one.
func nextPermutation(perm []int) bool {
	i := len(perm) - 2
	for i >= 0 && perm[i] >= perm[i+1] {
		i--
	}
	if i < 0 {
		return false
	}
	j := len(perm) - 1
	for perm[j] <= perm[i] {
		j--
	}
	perm[i], perm[j] = perm[j], perm[i]
	// Reverse the suffix.
	for l, r := i+1, len(perm)-1; l < r; l, r = l+1, r-1 {
		perm[l], perm[r] = perm[r], perm[l]
	}
	return true
}

// PadWithDisjoint returns the Lemma A.5 forcing construction: each A_i is
// extended with a fresh disjoint block B_i of `size` keys. With
// size > 2mn (m = |∪A_i|), the optimal merge tree of the padded instance
// is forced to be the complete binary tree, and
// opta(T̄, A) = opts(A∪B) − S·n·log(2n).
func PadWithDisjoint(inst *Instance, size int) *Instance {
	// Fresh keys start far above any existing key to guarantee
	// disjointness without scanning.
	var maxKey uint64
	for _, t := range inst.Tables() {
		keys := t.Set.Keys()
		if len(keys) > 0 && keys[len(keys)-1] > maxKey {
			maxKey = keys[len(keys)-1]
		}
	}
	next := maxKey + 1
	padded := make([]Table, inst.N())
	for i, t := range inst.Tables() {
		block := keyset.Range(next, next+uint64(size))
		next += uint64(size)
		padded[i] = Table{ID: i, Set: t.Set.Union(block)}
	}
	return &Instance{tables: padded}
}

// MinPadSize returns the Lemma A.5 threshold 2mn+1 for the instance.
func MinPadSize(inst *Instance) int {
	return 2*inst.Universe().Len()*inst.N() + 1
}

// WriteDOT renders the merge tree in Graphviz DOT format for inspection:
// leaves are labeled with their table ID and size, internal nodes with the
// merge order and output size.
func (sc *Schedule) WriteDOT(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "digraph merge {\n  rankdir=BT;\n  node [shape=box];\n"); err != nil {
		return err
	}
	nodes := sc.Nodes()
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	for _, nd := range nodes {
		label := fmt.Sprintf("n%d |%d|", nd.ID, nd.Set.Len())
		if nd.IsLeaf() {
			label = fmt.Sprintf("A%d |%d|", nd.TableID+1, nd.Set.Len())
		}
		if _, err := fmt.Fprintf(w, "  n%d [label=%q];\n", nd.ID, label); err != nil {
			return err
		}
		for _, c := range nd.Children {
			if _, err := fmt.Fprintf(w, "  n%d -> n%d;\n", c.ID, nd.ID); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
