package compaction

import (
	"fmt"
	"sort"
)

// Order selects how BALANCETREE picks the sets to merge within a level,
// since the heuristic itself "does not specify an order for choosing
// sstables to merge in a single level" (Section 5.1).
type Order int

// Inner orders for BALANCETREE.
const (
	// OrderSmallestInput pairs sets in increasing order of cardinality:
	// the BT(I) strategy of the evaluation.
	OrderSmallestInput Order = iota
	// OrderSmallestOutput picks the group with the smallest estimated
	// union at the current level: the BT(O) strategy. Estimates come from
	// the chooser's UnionEstimator, whose per-iteration overhead is
	// amortized across the many merges of a level.
	OrderSmallestOutput
	// OrderArbitrary pairs sets in input (node ID) order — the plain
	// BALANCETREE of Section 4.3.1, which leaves the within-level order
	// unspecified; Figure 4's working example pairs (A1,A2), (A3,A4).
	OrderArbitrary
)

// BalanceTree implements the BALANCETREE (BT) heuristic of Section 4.3.1:
// merge so that the underlying merge tree is a complete k-ary tree. Each
// set is annotated with a level number (leaves start at 1); every iteration
// merges k sets at the minimum live level minL into a set at level minL+1,
// and a stranded single set at minL is promoted and the process retried.
// BT is a (⌈log n⌉+1)-approximation (Lemma 4.1) and the bound is tight
// (Lemma 4.2). Because all merges within a level are independent, BT is the
// strategy that parallelizes naturally (see ExecuteParallel).
type BalanceTree struct {
	order Order
	est   UnionEstimator
	k     int
	alive map[*Node]bool
	// pairMemo caches union estimates across the repeated within-level
	// scans of BT(O); "the overhead for this strategy is amortized over
	// multiple iterations that happen in a single level" (Section 5.1).
	pairMemo map[[2]int]float64
}

// NewBalanceTree returns a BT chooser. est is only consulted for
// OrderSmallestOutput; pass nil for OrderSmallestInput.
func NewBalanceTree(order Order, est UnionEstimator) *BalanceTree {
	return &BalanceTree{order: order, est: est, pairMemo: make(map[[2]int]float64)}
}

// Name implements Chooser.
func (b *BalanceTree) Name() string {
	switch b.order {
	case OrderSmallestOutput:
		return "BT(O)"
	case OrderArbitrary:
		return "BT"
	default:
		return "BT(I)"
	}
}

// Init implements Chooser.
func (b *BalanceTree) Init(leaves []*Node, k int) error {
	if b.order == OrderSmallestOutput && b.est == nil {
		return fmt.Errorf("BT(O) requires a union estimator")
	}
	b.k = k
	b.alive = make(map[*Node]bool, len(leaves))
	for _, nd := range leaves {
		nd.Level = 1
		b.alive[nd] = true
		if b.est != nil {
			if err := b.est.Prepare(nd); err != nil {
				return err
			}
		}
	}
	return nil
}

// minLevelNodes returns the live nodes at the minimum level, promoting a
// stranded singleton level until at least two nodes share minL (the
// "increment its l by 1 and retry" rule).
func (b *BalanceTree) minLevelNodes() []*Node {
	for {
		minL := 0
		for nd := range b.alive {
			if minL == 0 || nd.Level < minL {
				minL = nd.Level
			}
		}
		var at []*Node
		for nd := range b.alive {
			if nd.Level == minL {
				at = append(at, nd)
			}
		}
		if len(at) >= 2 {
			sort.Slice(at, func(i, j int) bool { return at[i].ID < at[j].ID })
			return at
		}
		at[0].Level++
	}
}

// Choose implements Chooser.
func (b *BalanceTree) Choose() ([]*Node, error) {
	at := b.minLevelNodes()
	g := groupSize(b.k, len(at))
	switch b.order {
	case OrderSmallestOutput:
		return b.chooseSmallestOutput(at, g)
	case OrderArbitrary:
		group := at[:g] // minLevelNodes already sorted by ID
		for _, nd := range group {
			delete(b.alive, nd)
		}
		return group, nil
	default:
		sort.Slice(at, func(i, j int) bool {
			if li, lj := at[i].Set.Len(), at[j].Set.Len(); li != lj {
				return li < lj
			}
			return at[i].ID < at[j].ID
		})
		group := at[:g]
		for _, nd := range group {
			delete(b.alive, nd)
		}
		return group, nil
	}
}

// chooseSmallestOutput finds, among nodes at the current level, the best
// pair by estimated union and grows it to g sets.
func (b *BalanceTree) chooseSmallestOutput(at []*Node, g int) ([]*Node, error) {
	var bestA, bestB *Node
	bestScore := 0.0
	for i, a := range at {
		for _, nd := range at[i+1:] {
			score, err := b.pairEstimate(a, nd)
			if err != nil {
				return nil, err
			}
			if bestA == nil || score < bestScore {
				bestA, bestB, bestScore = a, nd, score
			}
		}
	}
	group := []*Node{bestA, bestB}
	for len(group) < g {
		var bestExtra *Node
		extraScore := 0.0
		for _, nd := range at {
			if containsNode(group, nd) {
				continue
			}
			score, err := b.est.GroupEstimate(group, nd)
			if err != nil {
				return nil, err
			}
			if bestExtra == nil || score < extraScore {
				bestExtra, extraScore = nd, score
			}
		}
		if bestExtra == nil {
			break
		}
		group = append(group, bestExtra)
	}
	for _, nd := range group {
		delete(b.alive, nd)
	}
	return group, nil
}

// pairEstimate is a memoized UnionEstimator.PairEstimate: nodes are
// immutable, so a pair's estimate never changes across the within-level
// rescans.
func (b *BalanceTree) pairEstimate(x, y *Node) (float64, error) {
	key := [2]int{x.ID, y.ID}
	if x.ID > y.ID {
		key = [2]int{y.ID, x.ID}
	}
	if score, ok := b.pairMemo[key]; ok {
		return score, nil
	}
	score, err := b.est.PairEstimate(x, y)
	if err != nil {
		return 0, err
	}
	b.pairMemo[key] = score
	return score, nil
}

// Observe implements Chooser. Run assigns the merged node level
// max(child levels)+1, which for BT's discipline is minL+1.
func (b *BalanceTree) Observe(merged *Node) {
	if b.est != nil {
		// Best-effort: Prepare only fails on missing child sketches,
		// impossible within a single run.
		_ = b.est.Prepare(merged)
	}
	b.alive[merged] = true
}
