package compaction

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/keyset"
)

// TestCostByElementIdentity asserts the equation 2.2 reformulation:
// Σ_x (|T(x)|+1) = Σ_ν |A_ν| on every strategy's schedules.
func TestCostByElementIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	for trial := 0; trial < 15; trial++ {
		inst := randomInstance(r, 2+r.Intn(10), 60, 15)
		for _, name := range []string{"SI", "SO(exact)", "BT(I)", "LM"} {
			sc := runStrategy(t, inst, 2, name)
			if got, want := sc.CostByElement(), sc.CostSimple(); got != want {
				t.Fatalf("%s: CostByElement %d != CostSimple %d", name, got, want)
			}
			// Per-element spans must sum to the total.
			sum := 0
			for _, x := range inst.Universe().Keys() {
				sum += sc.ElementSpan(x)
			}
			if sum != sc.CostSimple() {
				t.Fatalf("%s: Σ ElementSpan = %d != %d", name, sum, sc.CostSimple())
			}
		}
	}
}

func TestTreeShapes(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16} {
		ct := CompleteTree(n)
		if got := ct.LeafCount(); got != n {
			t.Errorf("CompleteTree(%d) leaves = %d", n, got)
		}
	}
	for _, n := range []int{1, 2, 3, 5, 9} {
		cat := CaterpillarTree(n)
		if got := cat.LeafCount(); got != n {
			t.Errorf("CaterpillarTree(%d) leaves = %d", n, got)
		}
	}
	defer func() {
		if recover() == nil {
			t.Errorf("CompleteTree(3) should panic")
		}
	}()
	CompleteTree(3)
}

// TestEtaLowerBound verifies Lemma A.2: η(T) ≥ n·log(2n) for every full
// binary tree with n = 2^h leaves, with equality exactly for the perfect
// tree.
func TestEtaLowerBound(t *testing.T) {
	for _, h := range []int{1, 2, 3, 4} {
		n := 1 << h
		perfect := CompleteTree(n)
		want := n * int(math.Log2(float64(2*n)))
		if got := perfect.Eta(); got != want {
			t.Errorf("η(perfect %d) = %d, want n·log 2n = %d", n, got, want)
		}
		if n > 2 { // for n=2 the caterpillar is the perfect tree
			cat := CaterpillarTree(n)
			if got := cat.Eta(); got <= want {
				t.Errorf("η(caterpillar %d) = %d, should exceed perfect's %d", n, got, want)
			}
		}
	}
	// Random full binary trees also respect the bound.
	r := rand.New(rand.NewSource(67))
	var build func(leaves int) *TreeShape
	build = func(leaves int) *TreeShape {
		if leaves == 1 {
			return &TreeShape{}
		}
		l := 1 + r.Intn(leaves-1)
		return &TreeShape{Left: build(l), Right: build(leaves - l)}
	}
	for trial := 0; trial < 30; trial++ {
		n := 8
		shape := build(n)
		bound := int(math.Ceil(float64(n) * math.Log2(float64(2*n))))
		if got := shape.Eta(); got < bound {
			t.Errorf("η = %d below n·log 2n = %d", got, bound)
		}
	}
}

func TestAssignTreeCaterpillarChain(t *testing.T) {
	// On the LM adversarial family, the identity assignment on the
	// caterpillar realizes exactly the optimal left-to-right chain.
	const n = 8
	inst := AdversarialLargestMatch(n)
	// CaterpillarTree leaves left-to-right: the deepest two leaves first.
	perm := []int{0, 1, 2, 3, 4, 5, 6, 7}
	sc, err := AssignTree(inst, CaterpillarTree(n), perm)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, want := sc.CostSimple(), 1<<(n+1)-3; got != want {
		t.Errorf("caterpillar chain cost = %d, want 2^(n+1)-3 = %d", got, want)
	}
	if got := sc.Height(); got != n-1 {
		t.Errorf("caterpillar height = %d, want n-1", got)
	}
}

func TestAssignTreeValidation(t *testing.T) {
	inst := WorkingExample()
	if _, err := AssignTree(inst, CompleteTree(4), []int{0, 1, 2, 3}); err == nil {
		t.Errorf("leaf-count mismatch accepted")
	}
	shape := CaterpillarTree(5)
	if _, err := AssignTree(inst, shape, []int{0, 1, 2, 3}); err == nil {
		t.Errorf("short permutation accepted")
	}
	if _, err := AssignTree(inst, shape, []int{0, 0, 1, 2, 3}); err == nil {
		t.Errorf("non-permutation accepted")
	}
	sc, err := AssignTree(inst, shape, []int{4, 3, 2, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Validate(); err != nil {
		t.Errorf("valid assignment rejected: %v", err)
	}
}

// TestOptTreeAssignBeatsArbitrary checks the brute-force fixed-tree
// optimizer: it must never lose to any single assignment, and on the
// complete tree its value lower-bounds every BT run (BT produces complete
// trees, but with a fixed greedy assignment).
func TestOptTreeAssignBeatsArbitrary(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	for trial := 0; trial < 5; trial++ {
		inst := randomInstance(r, 8, 40, 10)
		shape := CompleteTree(8)
		best, err := OptTreeAssign(inst, shape)
		if err != nil {
			t.Fatal(err)
		}
		if err := best.Validate(); err != nil {
			t.Fatal(err)
		}
		perm := []int{0, 1, 2, 3, 4, 5, 6, 7}
		arbitrary, err := AssignTree(inst, shape, perm)
		if err != nil {
			t.Fatal(err)
		}
		if best.CostSimple() > arbitrary.CostSimple() {
			t.Errorf("OptTreeAssign %d worse than arbitrary %d", best.CostSimple(), arbitrary.CostSimple())
		}
		bt := runStrategy(t, inst, 2, "BT(I)")
		if bt.Height() == 3 && best.CostSimple() > bt.CostSimple() {
			t.Errorf("OptTreeAssign %d worse than BT(I) %d on the same shape", best.CostSimple(), bt.CostSimple())
		}
	}
}

func TestOptTreeAssignLimit(t *testing.T) {
	if _, err := OptTreeAssign(DisjointSingletons(10), CaterpillarTree(10)); err == nil {
		t.Errorf("n=10 accepted (limit is 9)")
	}
}

// TestLemmaA5Forcing verifies the NP-hardness forcing construction: after
// padding each set with a disjoint block of size > 2mn, (1) the optimal
// tree of the padded instance is the complete tree, and (2) the identity
// opta(T̄, A) = opts(A ∪ B) − S·n·log(2n) holds (Lemma A.5).
func TestLemmaA5Forcing(t *testing.T) {
	r := rand.New(rand.NewSource(73))
	for trial := 0; trial < 3; trial++ {
		inst := randomInstance(r, 4, 10, 4) // n=4, power of two, tiny m
		n := inst.N()
		s := MinPadSize(inst)
		padded := PadWithDisjoint(inst, s)

		opt, err := OptimalBinary(padded)
		if err != nil {
			t.Fatal(err)
		}
		// (1) The optimal tree must be the complete (height log n) tree.
		if got, want := opt.Height(), int(math.Log2(float64(n))); got != want {
			t.Fatalf("padded optimal height = %d, want %d", got, want)
		}
		// (2) The cost identity.
		shape := CompleteTree(n)
		bestFixed, err := OptTreeAssign(inst, shape)
		if err != nil {
			t.Fatal(err)
		}
		logTerm := s * n * int(math.Log2(float64(2*n)))
		if got, want := bestFixed.CostSimple(), opt.CostSimple()-logTerm; got != want {
			t.Errorf("opta = %d, opts − S·n·log2n = %d − %d = %d", got, opt.CostSimple(), logTerm, want)
		}
	}
}

func TestPadWithDisjoint(t *testing.T) {
	inst := WorkingExample()
	padded := PadWithDisjoint(inst, 10)
	if padded.N() != inst.N() {
		t.Fatalf("padded N = %d", padded.N())
	}
	for i := 0; i < padded.N(); i++ {
		if got, want := padded.Table(i).Set.Len(), inst.Table(i).Set.Len()+10; got != want {
			t.Errorf("table %d size = %d, want %d", i, got, want)
		}
		// Original keys preserved.
		if !inst.Table(i).Set.Subset(padded.Table(i).Set) {
			t.Errorf("table %d lost original keys", i)
		}
		// Pads disjoint from each other.
		for j := i + 1; j < padded.N(); j++ {
			inter := padded.Table(i).Set.Intersect(padded.Table(j).Set)
			if !inter.Equal(inst.Table(i).Set.Intersect(inst.Table(j).Set)) {
				t.Errorf("pads of tables %d,%d overlap", i, j)
			}
		}
	}
	if MinPadSize(inst) != 2*9*5+1 {
		t.Errorf("MinPadSize = %d", MinPadSize(inst))
	}
}

func TestNextPermutation(t *testing.T) {
	perm := []int{0, 1, 2}
	count := 1
	for nextPermutation(perm) {
		count++
	}
	if count != 6 {
		t.Errorf("enumerated %d permutations of 3, want 6", count)
	}
}

func TestWriteDOT(t *testing.T) {
	sc := runStrategy(t, WorkingExample(), 2, "SI")
	var b strings.Builder
	if err := sc.WriteDOT(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"digraph merge", "A1 |4|", "->", "}"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestQuickScheduleInvariants(t *testing.T) {
	// Property test across strategies, k values and random instances:
	// every run validates, root = universe, and the two cost identities
	// hold.
	f := func(seed int64, stratIdx, kIdx uint8) bool {
		r := rand.New(rand.NewSource(seed))
		names := StrategyNames()
		name := names[int(stratIdx)%len(names)]
		k := 2 + int(kIdx)%3
		inst := randomInstance(r, 2+r.Intn(9), 50, 12)
		ch, err := NewChooserByName(name, seed)
		if err != nil {
			return false
		}
		sc, err := Run(inst, k, ch)
		if err != nil {
			return false
		}
		if sc.Validate() != nil {
			return false
		}
		if !sc.Root.Set.Equal(inst.Universe()) {
			return false
		}
		if sc.CostByElement() != sc.CostSimple() {
			return false
		}
		return sc.CostSimple() >= inst.LowerBound()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestElementSpanSingleKey(t *testing.T) {
	inst := NewInstance(keyset.New(1), keyset.New(1), keyset.New(2))
	sc := runStrategy(t, inst, 2, "SI")
	// Key 1 is in two leaves and at least one internal node plus the root.
	if got := sc.ElementSpan(1); got < 4 {
		t.Errorf("ElementSpan(1) = %d, want ≥ 4", got)
	}
	if got := sc.ElementSpan(99); got != 0 {
		t.Errorf("ElementSpan(absent) = %d", got)
	}
}
