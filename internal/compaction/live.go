package compaction

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/hll"
)

// LiveTable describes one live sstable the way the engine's compaction
// picker sees it: no key data, only the statistics the write path persists
// — exact entry count (sstable keys are unique, so the count is the
// cardinality), byte size, key bounds from the bounds block, and the
// per-table HyperLogLog key sketch for overlap estimation. Sketch may be
// nil on tables written before sketches were persisted; strategies that
// rank by union size then degrade to a disjointness assumption for the
// affected pairs.
type LiveTable struct {
	// SizeBytes is the table's file size.
	SizeBytes uint64
	// Entries is the table's exact key count.
	Entries int
	// Smallest and Largest bound the table's key range (both inclusive).
	Smallest, Largest []byte
	// Sketch estimates the table's key set; nil when not persisted.
	Sketch *hll.Sketch
}

// ErrNeedsKeys reports a strategy that cannot pick from live statistics
// because it ranks by exact set operations (SO(exact), LM).
type ErrNeedsKeys struct{ Strategy string }

func (e ErrNeedsKeys) Error() string {
	return fmt.Sprintf("compaction: strategy %q needs exact key sets and cannot pick from live table stats", e.Strategy)
}

// LiveStrategies returns the strategy names PickLive accepts, sorted: the
// registry minus the two exact-set strategies.
func LiveStrategies() []string {
	var names []string
	for _, name := range StrategyNames() {
		if IsLiveStrategy(name) {
			names = append(names, name)
		}
	}
	return names
}

// IsLiveStrategy reports whether name is a registry strategy PickLive can
// drive from live table statistics.
func IsLiveStrategy(name string) bool {
	switch name {
	case "SI", "SO", "BT", "BT(I)", "BT(O)", "CHAIN", "RANDOM":
		return true
	default:
		return false
	}
}

// PickLive selects the next group of tables to merge using a registry
// strategy, driven by live per-table statistics instead of key sets. It
// mirrors exactly the first CHOOSETWOSETS pick the same strategy makes on
// the equivalent Instance — leaf IDs are the slice indices, entry counts
// stand in for set cardinalities, and persisted sketches stand in for
// model-built ones (the sstable writer and the model hash keys
// identically, so the sketches are register-identical) — which is what
// the picker≡model property test pins. It returns the selected indices,
// nil when fewer than two tables exist, and ErrNeedsKeys for the
// exact-set strategies.
func PickLive(tables []LiveTable, strategy string, k int, seed int64) ([]int, error) {
	if k < 2 {
		return nil, fmt.Errorf("compaction: k = %d, need k >= 2", k)
	}
	n := len(tables)
	if n < 2 {
		return nil, nil
	}
	g := groupSize(k, n)
	switch strategy {
	case "SI", "BT(I)":
		// SI pops the g smallest sets; BT(I)'s first pick sees every leaf
		// at level 1 and sorts the same way. Both order by (cardinality,
		// ID).
		idx := ascending(n)
		sort.Slice(idx, func(a, b int) bool {
			if ea, eb := tables[idx[a]].Entries, tables[idx[b]].Entries; ea != eb {
				return ea < eb
			}
			return idx[a] < idx[b]
		})
		return idx[:g], nil
	case "BT", "CHAIN":
		// BT's arbitrary order takes the first g leaves by ID; CHAIN takes
		// them in table order. Identical on the first pick.
		return ascending(g), nil
	case "RANDOM":
		// Same seeded generator, same shuffle over the ID-sorted leaves as
		// Random.Choose's first call.
		rng := rand.New(rand.NewSource(seed))
		idx := ascending(n)
		rng.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		return idx[:g], nil
	case "SO", "BT(O)":
		// Both pick the pair with the smallest estimated union and grow it
		// greedily; on the first pick (all leaves live, all at one level)
		// their candidate sets and tie-breaks coincide: minimum score,
		// earliest indices.
		return pickSmallestUnion(tables, g), nil
	case "SO(exact)", "LM":
		return nil, ErrNeedsKeys{Strategy: strategy}
	default:
		return nil, fmt.Errorf("compaction: unknown strategy %q", strategy)
	}
}

// ascending returns [0, 1, ..., n-1].
func ascending(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// pickSmallestUnion is the shared SO / BT(O) first pick: the pair
// minimizing the estimated union cardinality (ties to the earliest index
// pair), grown one table at a time by the candidate minimizing the group
// union (ties to the earliest index).
func pickSmallestUnion(tables []LiveTable, g int) []int {
	n := len(tables)
	bestI, bestJ := -1, -1
	bestScore := 0.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			score := livePairEstimate(tables, i, j)
			if bestI < 0 || score < bestScore {
				bestI, bestJ, bestScore = i, j, score
			}
		}
	}
	group := []int{bestI, bestJ}
	for len(group) < g {
		best := -1
		bestScore = 0.0
		for c := 0; c < n; c++ {
			if containsInt(group, c) {
				continue
			}
			score := liveGroupEstimate(tables, group, c)
			if best < 0 || score < bestScore {
				best, bestScore = c, score
			}
		}
		if best < 0 {
			break
		}
		group = append(group, best)
	}
	return group
}

// livePairEstimate estimates |A_i ∪ A_j| from persisted sketches, falling
// back to the disjoint sum when either sketch is absent.
func livePairEstimate(tables []LiveTable, i, j int) float64 {
	if si, sj := tables[i].Sketch, tables[j].Sketch; si != nil && sj != nil {
		if u, err := hll.UnionEstimate(si, sj); err == nil {
			return u
		}
	}
	return float64(tables[i].Entries + tables[j].Entries)
}

// liveGroupEstimate estimates the union cardinality of group ∪ {extra},
// falling back to the disjoint sum when any sketch is absent.
func liveGroupEstimate(tables []LiveTable, group []int, extra int) float64 {
	acc := tables[extra].Sketch
	if acc != nil {
		acc = acc.Clone()
		for _, gi := range group {
			s := tables[gi].Sketch
			if s == nil || acc.Merge(s) != nil {
				acc = nil
				break
			}
		}
		if acc != nil {
			return acc.Estimate()
		}
	}
	sum := tables[extra].Entries
	for _, gi := range group {
		sum += tables[gi].Entries
	}
	return float64(sum)
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
