package compaction

import "container/heap"

// SmallestInput implements the SMALLESTINPUT (SI) heuristic of Section
// 4.3.2: each iteration merges the k sets of smallest cardinality, deferring
// large sets so their contents are re-copied as few times as possible. SI is
// a (2Hₙ+1)-approximation (Lemma 4.4) and is optimal when the input sets are
// disjoint, where the problem reduces to Huffman coding (Lemma 4.3).
//
// Following the paper's implementation note (Section 5.1), the collection is
// kept in a priority queue, giving O(log n) per iteration.
type SmallestInput struct {
	k  int
	pq nodeHeap
}

// NewSmallestInput returns a fresh SI chooser.
func NewSmallestInput() *SmallestInput { return &SmallestInput{} }

// Name implements Chooser.
func (s *SmallestInput) Name() string { return "SI" }

// Init implements Chooser.
func (s *SmallestInput) Init(leaves []*Node, k int) error {
	s.k = k
	s.pq = make(nodeHeap, len(leaves))
	copy(s.pq, leaves)
	heap.Init(&s.pq)
	return nil
}

// Choose implements Chooser: pop the min(k, live) smallest sets.
func (s *SmallestInput) Choose() ([]*Node, error) {
	g := groupSize(s.k, s.pq.Len())
	group := make([]*Node, 0, g)
	for i := 0; i < g; i++ {
		group = append(group, heap.Pop(&s.pq).(*Node))
	}
	return group, nil
}

// Observe implements Chooser.
func (s *SmallestInput) Observe(merged *Node) {
	heap.Push(&s.pq, merged)
}

// nodeHeap is a min-heap of nodes ordered by set cardinality, tie-broken by
// node ID for determinism.
type nodeHeap []*Node

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if li, lj := h[i].Set.Len(), h[j].Set.Len(); li != lj {
		return li < lj
	}
	return h[i].ID < h[j].ID
}
func (h nodeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *nodeHeap) Push(x any) { *h = append(*h, x.(*Node)) }

func (h *nodeHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}
