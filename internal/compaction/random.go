package compaction

import (
	"math/rand"
	"sort"
)

// Random implements the RANDOM strawman of Section 5.1: each iteration
// merges k sets chosen uniformly at random. "This represents the case when
// there is no compaction strategy" and anchors the comparison in Figure 7.
type Random struct {
	k     int
	rng   *rand.Rand
	alive []*Node
}

// NewRandom returns a random chooser seeded for reproducibility.
func NewRandom(seed int64) *Random {
	return &Random{rng: rand.New(rand.NewSource(seed))}
}

// Name implements Chooser.
func (r *Random) Name() string { return "RANDOM" }

// Init implements Chooser.
func (r *Random) Init(leaves []*Node, k int) error {
	r.k = k
	r.alive = append([]*Node(nil), leaves...)
	sort.Slice(r.alive, func(i, j int) bool { return r.alive[i].ID < r.alive[j].ID })
	return nil
}

// Choose implements Chooser.
func (r *Random) Choose() ([]*Node, error) {
	g := groupSize(r.k, len(r.alive))
	r.rng.Shuffle(len(r.alive), func(i, j int) {
		r.alive[i], r.alive[j] = r.alive[j], r.alive[i]
	})
	group := append([]*Node(nil), r.alive[:g]...)
	r.alive = r.alive[g:]
	return group, nil
}

// Observe implements Chooser.
func (r *Random) Observe(merged *Node) {
	r.alive = append(r.alive, merged)
}
