package compaction

import (
	"fmt"

	"repro/internal/keyset"
)

// Chooser implements the CHOOSETWOSETS subroutine of the paper's generic
// greedy algorithm (Algorithm 1), generalized to choose up to k sets.
// A Chooser is stateful and single-use: construct a fresh one per Run.
type Chooser interface {
	// Name identifies the strategy, e.g. "SI" or "BT(I)".
	Name() string
	// Init is called once with the leaf nodes before the first Choose.
	Init(leaves []*Node, k int) error
	// Choose returns the nodes to merge next, between 2 and min(k, live)
	// of the nodes currently alive. It is never called with fewer than 2
	// live nodes.
	Choose() ([]*Node, error)
	// Observe delivers the node produced by the merge of the last Choose
	// result, so the chooser can update its internal collection.
	Observe(merged *Node)
}

// Run executes the generic greedy loop: starting from the instance's
// tables, it repeatedly asks chooser for a group of at most k live sets,
// merges them, and feeds the result back, until a single set remains
// (Algorithm 1). It returns the complete merge schedule.
func Run(inst *Instance, k int, chooser Chooser) (*Schedule, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	if k < 2 {
		return nil, fmt.Errorf("compaction: k = %d, need k >= 2", k)
	}

	leaves := make([]*Node, inst.N())
	for i, t := range inst.Tables() {
		leaves[i] = &Node{ID: i, Set: t.Set, TableID: i, Level: 1}
	}
	sc := &Schedule{Strategy: chooser.Name(), K: k, Leaves: leaves}
	if inst.N() == 1 {
		sc.Root = leaves[0]
		return sc, nil
	}

	if err := chooser.Init(leaves, k); err != nil {
		return nil, err
	}
	live := inst.N()
	nextID := inst.N()
	alive := make(map[*Node]bool, live)
	for _, leaf := range leaves {
		alive[leaf] = true
	}

	for live > 1 {
		group, err := chooser.Choose()
		if err != nil {
			return nil, fmt.Errorf("compaction: %s: %w", chooser.Name(), err)
		}
		if len(group) < 2 || len(group) > k || len(group) > live {
			return nil, fmt.Errorf("compaction: %s chose %d sets (k=%d, live=%d)", chooser.Name(), len(group), k, live)
		}
		seen := make(map[*Node]bool, len(group))
		sets := make([]keyset.Set, len(group))
		maxLevel := 0
		for i, nd := range group {
			if !alive[nd] || seen[nd] {
				return nil, fmt.Errorf("compaction: %s chose a dead or duplicate node", chooser.Name())
			}
			seen[nd] = true
			sets[i] = nd.Set
			if nd.Level > maxLevel {
				maxLevel = nd.Level
			}
		}
		merged := &Node{
			ID:       nextID,
			Set:      keyset.UnionAll(sets...),
			Children: group,
			TableID:  -1,
			Level:    maxLevel + 1,
		}
		nextID++
		for _, nd := range group {
			delete(alive, nd)
		}
		alive[merged] = true
		live -= len(group) - 1
		sc.Steps = append(sc.Steps, Step{Inputs: group, Output: merged})
		chooser.Observe(merged)
	}
	for nd := range alive {
		sc.Root = nd
	}
	return sc, nil
}

// groupSize returns how many sets a chooser should merge this iteration:
// the paper's strategies always take k at a time, bounded by how many sets
// remain.
func groupSize(k, live int) int {
	if live < k {
		return live
	}
	return k
}
