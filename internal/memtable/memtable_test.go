package memtable

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/iterator"
)

func TestPutGet(t *testing.T) {
	m := New(1)
	m.Put([]byte("a"), []byte("1"), 10)
	got, ok := m.Get([]byte("a"))
	if !ok || string(got.Value) != "1" || got.Seq != 10 || got.Tombstone {
		t.Errorf("Get = %+v, %v", got, ok)
	}
	if _, ok := m.Get([]byte("missing")); ok {
		t.Errorf("missing key found")
	}
}

func TestDeleteShadows(t *testing.T) {
	m := New(1)
	m.Put([]byte("k"), []byte("v"), 1)
	m.Delete([]byte("k"), 2)
	got, ok := m.Get([]byte("k"))
	if !ok || !got.Tombstone || got.Seq != 2 {
		t.Errorf("after delete: %+v, %v", got, ok)
	}
	if m.Len() != 1 {
		t.Errorf("Len = %d, want 1 (tombstone replaces value in place)", m.Len())
	}
}

func TestOverwriteInPlace(t *testing.T) {
	m := New(1)
	m.Put([]byte("k"), []byte("old"), 1)
	m.Put([]byte("k"), []byte("new"), 2)
	got, _ := m.Get([]byte("k"))
	if string(got.Value) != "new" || got.Seq != 2 {
		t.Errorf("overwrite = %+v", got)
	}
	if m.Len() != 1 {
		t.Errorf("Len = %d after overwrite", m.Len())
	}
}

func TestIterSortedWithTombstones(t *testing.T) {
	m := New(3)
	m.Put([]byte("c"), []byte("3"), 1)
	m.Delete([]byte("a"), 2)
	m.Put([]byte("b"), []byte("2"), 3)
	got := iterator.Drain(m.Iter())
	if len(got) != 3 {
		t.Fatalf("drained %d entries", len(got))
	}
	wantKeys := []string{"a", "b", "c"}
	for i, e := range got {
		if string(e.Key) != wantKeys[i] {
			t.Errorf("entry %d key = %q, want %q", i, e.Key, wantKeys[i])
		}
	}
	if !got[0].Tombstone {
		t.Errorf("entry a should be a tombstone")
	}
}

func TestCallerOwnsKeyBuffer(t *testing.T) {
	m := New(1)
	k := []byte("mutable")
	m.Put(k, []byte("v"), 1)
	k[0] = 'X' // caller reuses its buffer; memtable must have copied
	if _, ok := m.Get([]byte("mutable")); !ok {
		t.Errorf("memtable aliased the caller's key buffer")
	}
}

func TestQuickMatchesMap(t *testing.T) {
	f := func(ops []struct {
		Key byte
		Del bool
	}) bool {
		m := New(5)
		ref := map[string]iterator.Entry{}
		for i, op := range ops {
			k := []byte{op.Key}
			seq := uint64(i + 1)
			if op.Del {
				m.Delete(k, seq)
				ref[string(k)] = iterator.Entry{Key: k, Seq: seq, Tombstone: true}
			} else {
				v := []byte(fmt.Sprint(i))
				m.Put(k, v, seq)
				ref[string(k)] = iterator.Entry{Key: k, Value: v, Seq: seq}
			}
		}
		if m.Len() != len(ref) {
			return false
		}
		for k, want := range ref {
			got, ok := m.Get([]byte(k))
			if !ok || got.Seq != want.Seq || got.Tombstone != want.Tombstone || !bytes.Equal(got.Value, want.Value) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestKeyTableDedupes(t *testing.T) {
	kt := NewKeyTable(3)
	if kt.Add(1) || kt.Add(1) || kt.Add(1) {
		t.Errorf("re-adding the same key should not fill the memtable")
	}
	if kt.Len() != 1 {
		t.Errorf("Len = %d, want 1", kt.Len())
	}
	kt.Add(2)
	if !kt.Add(3) {
		t.Errorf("third distinct key should report full")
	}
}

func TestKeyTableFlushResets(t *testing.T) {
	kt := NewKeyTable(10)
	for k := uint64(0); k < 5; k++ {
		kt.Add(k * 10)
	}
	s := kt.Flush()
	if s.Len() != 5 {
		t.Errorf("flushed set size = %d", s.Len())
	}
	for k := uint64(0); k < 5; k++ {
		if !s.Contains(k * 10) {
			t.Errorf("flushed set missing %d", k*10)
		}
	}
	if !kt.Empty() {
		t.Errorf("memtable not empty after flush")
	}
	if !kt.Flush().Empty() {
		t.Errorf("flush of empty memtable should be empty set")
	}
}

func TestKeyTableDegenerateCapacity(t *testing.T) {
	kt := NewKeyTable(0)
	if !kt.Add(1) {
		t.Errorf("capacity-clamped memtable should fill at one key")
	}
}

func TestKeyTableSimulationShape(t *testing.T) {
	// Update-heavy streams (few distinct keys) must produce smaller
	// sstables than insert-heavy streams, the effect driving Figure 7.
	r := rand.New(rand.NewSource(1))
	flushSizes := func(distinct int) []int {
		kt := NewKeyTable(100)
		var sizes []int
		for i := 0; i < 2000; i++ {
			if kt.Add(uint64(r.Intn(distinct))) {
				sizes = append(sizes, kt.Flush().Len())
			}
		}
		return sizes
	}
	insertHeavy := flushSizes(1 << 30)
	updateHeavy := flushSizes(120)
	if len(insertHeavy) == 0 || len(updateHeavy) == 0 {
		t.Fatalf("no flushes: %d, %d", len(insertHeavy), len(updateHeavy))
	}
	if len(updateHeavy) >= len(insertHeavy) {
		t.Errorf("update-heavy flushed %d times, insert-heavy %d times; expected fewer for updates",
			len(updateHeavy), len(insertHeavy))
	}
}
