// Package memtable implements the in-memory write buffer of an LSM store:
// "writes are quickly logged (via appends) to an in-memory data structure
// called a memtable. When the memtable becomes old or large, its contents
// are sorted by key and flushed to disk" (Section 1 of the paper).
//
// Two variants are provided. Table is the engine memtable: a skiplist of
// byte keys carrying sequence numbers and tombstones, flushed to a real
// sstable. KeyTable is the simulation memtable used by the paper's
// evaluation: a fixed capacity in number of distinct keys, holding bare
// uint64 keys, flushed to a keyset (Section 5.1, "operations ... are first
// inserted into a fixed size (number of keys) memtable").
package memtable

import (
	"encoding/binary"

	"repro/internal/iterator"
	"repro/internal/keyset"
	"repro/internal/skiplist"
)

// Table is the LSM engine's memtable. Point reads (Get) and iterator
// traversal are safe concurrently with a single writer — the backing
// skiplist publishes nodes through atomic pointers — which is what lets
// the engine's read path run without the store lock. Writers (Put,
// Delete) must still be serialized externally; the engine runs them under
// its commit pipeline's store lock.
type Table struct {
	list *skiplist.List
}

// New creates an empty memtable. seed controls skiplist tower heights for
// reproducibility.
func New(seed int64) *Table {
	return &Table{list: skiplist.New(seed)}
}

// metadata layout inside the skiplist value: 8 bytes of seq, 1 flag byte,
// then the user value.
const metaLen = 9

func encodeValue(e iterator.Entry) []byte {
	buf := make([]byte, metaLen+len(e.Value))
	binary.LittleEndian.PutUint64(buf, e.Seq)
	if e.Tombstone {
		buf[8] = 1
	}
	copy(buf[metaLen:], e.Value)
	return buf
}

func decodeValue(key, buf []byte) iterator.Entry {
	return iterator.Entry{
		Key:       key,
		Value:     buf[metaLen:],
		Seq:       binary.LittleEndian.Uint64(buf),
		Tombstone: buf[8] == 1,
	}
}

// Put records a write of key → value at sequence seq, replacing any earlier
// write of the same key in this memtable.
func (t *Table) Put(key, value []byte, seq uint64) {
	t.list.Set(append([]byte(nil), key...), encodeValue(iterator.Entry{Value: value, Seq: seq}))
}

// Delete records a tombstone for key at sequence seq.
func (t *Table) Delete(key []byte, seq uint64) {
	t.list.Set(append([]byte(nil), key...), encodeValue(iterator.Entry{Seq: seq, Tombstone: true}))
}

// Get returns the newest entry recorded for key in this memtable. The
// second result reports whether the key is present (a tombstone counts as
// present: it means "deleted", which shadows older tables).
func (t *Table) Get(key []byte) (iterator.Entry, bool) {
	v, ok := t.list.Get(key)
	if !ok {
		return iterator.Entry{}, false
	}
	return decodeValue(key, v), true
}

// Len returns the number of distinct keys buffered.
func (t *Table) Len() int { return t.list.Len() }

// SizeBytes approximates the memory footprint: total key and value bytes.
func (t *Table) SizeBytes() int { return t.list.SizeBytes() }

// Iter yields the buffered entries in ascending key order.
func (t *Table) Iter() iterator.Iterator {
	return &tableIter{it: t.list.Iter()}
}

// IterFrom yields entries with key >= start in ascending key order.
func (t *Table) IterFrom(start []byte) iterator.Iterator {
	return &tableIter{it: t.list.Seek(start)}
}

type tableIter struct {
	it *skiplist.Iterator
}

func (ti *tableIter) Valid() bool { return ti.it.Valid() }
func (ti *tableIter) Entry() iterator.Entry {
	return decodeValue(ti.it.Key(), ti.it.Value())
}
func (ti *tableIter) Next() { ti.it.Next() }

// KeyTable is the paper's simulation memtable: it holds at most capacity
// distinct uint64 keys. Re-inserting a key already buffered is absorbed
// ("As a memtable may contain duplicate keys, sstables may be smaller and
// vary in size", Section 5.1) — which is why update-heavy workloads produce
// smaller, overlapping sstables.
type KeyTable struct {
	capacity int
	keys     map[uint64]struct{}
}

// NewKeyTable creates a simulation memtable holding up to capacity distinct
// keys. capacity must be positive.
func NewKeyTable(capacity int) *KeyTable {
	if capacity <= 0 {
		capacity = 1
	}
	return &KeyTable{capacity: capacity, keys: make(map[uint64]struct{}, capacity)}
}

// Add buffers a write of key and reports whether the memtable is full and
// must be flushed.
func (kt *KeyTable) Add(key uint64) (full bool) {
	kt.keys[key] = struct{}{}
	return len(kt.keys) >= kt.capacity
}

// Len returns the number of distinct keys buffered.
func (kt *KeyTable) Len() int { return len(kt.keys) }

// Empty reports whether no keys are buffered.
func (kt *KeyTable) Empty() bool { return len(kt.keys) == 0 }

// Flush returns the buffered keys as a sorted set — the flushed sstable of
// the paper's model — and resets the memtable for reuse.
func (kt *KeyTable) Flush() keyset.Set {
	keys := make([]uint64, 0, len(kt.keys))
	for k := range kt.keys {
		keys = append(keys, k)
	}
	kt.keys = make(map[uint64]struct{}, kt.capacity)
	return keyset.New(keys...)
}
