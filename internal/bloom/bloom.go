// Package bloom implements a classic Bloom filter with double hashing,
// used by the LSM engine's sstable read path to skip tables that cannot
// contain a key. A Bloom filter answers "definitely absent" or "possibly
// present"; it never produces false negatives.
package bloom

import (
	"encoding/binary"
	"errors"
	"math"
)

// Filter is a Bloom filter over arbitrary byte keys. The zero value is not
// usable; construct with New or NewWithEstimates.
type Filter struct {
	bits   []uint64
	nbits  uint64
	hashes uint32
	count  uint64 // number of Add calls, informational
}

// New creates a filter with nbits bits (rounded up to a multiple of 64) and
// the given number of hash functions. nbits and hashes must be positive.
func New(nbits uint64, hashes uint32) *Filter {
	if nbits == 0 {
		nbits = 64
	}
	if hashes == 0 {
		hashes = 1
	}
	words := (nbits + 63) / 64
	return &Filter{
		bits:   make([]uint64, words),
		nbits:  words * 64,
		hashes: hashes,
	}
}

// NewWithEstimates sizes a filter for n expected keys and a target false
// positive rate p, using the standard formulas m = -n·ln p / (ln 2)² and
// k = (m/n)·ln 2.
func NewWithEstimates(n uint64, p float64) *Filter {
	if n == 0 {
		n = 1
	}
	if p <= 0 || p >= 1 {
		p = 0.01
	}
	m := uint64(math.Ceil(-float64(n) * math.Log(p) / (math.Ln2 * math.Ln2)))
	k := uint32(math.Round(float64(m) / float64(n) * math.Ln2))
	if k == 0 {
		k = 1
	}
	return New(m, k)
}

// fnv1a64 is the 64-bit FNV-1a hash; implemented inline to avoid an
// allocation per probe from hash.Hash64.
func fnv1a64(data []byte, seed uint64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset) ^ seed
	for _, b := range data {
		h ^= uint64(b)
		h *= prime
	}
	return h
}

// indices derives hash probe positions with Kirsch–Mitzenmacher double
// hashing: g_i(x) = h1(x) + i·h2(x).
func (f *Filter) probe(key []byte, i uint32) uint64 {
	h1 := fnv1a64(key, 0)
	h2 := fnv1a64(key, 0x9e3779b97f4a7c15)
	return (h1 + uint64(i)*h2) % f.nbits
}

// Add inserts key into the filter.
func (f *Filter) Add(key []byte) {
	for i := uint32(0); i < f.hashes; i++ {
		pos := f.probe(key, i)
		f.bits[pos/64] |= 1 << (pos % 64)
	}
	f.count++
}

// AddUint64 inserts a fixed-width integer key.
func (f *Filter) AddUint64(key uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], key)
	f.Add(buf[:])
}

// MayContain reports whether key is possibly in the filter. A false return
// is definitive: the key was never added.
func (f *Filter) MayContain(key []byte) bool {
	for i := uint32(0); i < f.hashes; i++ {
		pos := f.probe(key, i)
		if f.bits[pos/64]&(1<<(pos%64)) == 0 {
			return false
		}
	}
	return true
}

// MayContainUint64 is MayContain for fixed-width integer keys.
func (f *Filter) MayContainUint64(key uint64) bool {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], key)
	return f.MayContain(buf[:])
}

// Count returns the number of keys added.
func (f *Filter) Count() uint64 { return f.count }

// NumBits returns the filter's bit capacity.
func (f *Filter) NumBits() uint64 { return f.nbits }

// NumHashes returns the number of hash probes per key.
func (f *Filter) NumHashes() uint32 { return f.hashes }

// EstimatedFalsePositiveRate returns the expected false positive rate given
// the number of added keys: (1 - e^{-kn/m})^k.
func (f *Filter) EstimatedFalsePositiveRate() float64 {
	k, n, m := float64(f.hashes), float64(f.count), float64(f.nbits)
	return math.Pow(1-math.Exp(-k*n/m), k)
}

// Marshal serializes the filter to a compact binary form:
//
//	hashes   uint32
//	count    uint64
//	nwords   uint32
//	words    nwords × uint64
func (f *Filter) Marshal() []byte {
	out := make([]byte, 4+8+4+8*len(f.bits))
	binary.LittleEndian.PutUint32(out[0:4], f.hashes)
	binary.LittleEndian.PutUint64(out[4:12], f.count)
	binary.LittleEndian.PutUint32(out[12:16], uint32(len(f.bits)))
	for i, w := range f.bits {
		binary.LittleEndian.PutUint64(out[16+8*i:], w)
	}
	return out
}

// ErrCorrupt reports a malformed serialized filter.
var ErrCorrupt = errors.New("bloom: corrupt filter encoding")

// Unmarshal reconstructs a filter serialized by Marshal.
func Unmarshal(data []byte) (*Filter, error) {
	if len(data) < 16 {
		return nil, ErrCorrupt
	}
	hashes := binary.LittleEndian.Uint32(data[0:4])
	count := binary.LittleEndian.Uint64(data[4:12])
	nwords := binary.LittleEndian.Uint32(data[12:16])
	if hashes == 0 || nwords == 0 {
		return nil, ErrCorrupt
	}
	if uint64(len(data)) != 16+8*uint64(nwords) {
		return nil, ErrCorrupt
	}
	bits := make([]uint64, nwords)
	for i := range bits {
		bits[i] = binary.LittleEndian.Uint64(data[16+8*i:])
	}
	return &Filter{bits: bits, nbits: uint64(nwords) * 64, hashes: hashes, count: count}, nil
}
