package bloom

import (
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNoFalseNegatives(t *testing.T) {
	f := NewWithEstimates(1000, 0.01)
	for i := uint64(0); i < 1000; i++ {
		f.AddUint64(i)
	}
	for i := uint64(0); i < 1000; i++ {
		if !f.MayContainUint64(i) {
			t.Fatalf("false negative for key %d", i)
		}
	}
	if f.Count() != 1000 {
		t.Errorf("Count = %d, want 1000", f.Count())
	}
}

func TestFalsePositiveRateNearTarget(t *testing.T) {
	const n = 10000
	const target = 0.01
	f := NewWithEstimates(n, target)
	for i := uint64(0); i < n; i++ {
		f.AddUint64(i)
	}
	fp := 0
	const probes = 20000
	for i := uint64(n); i < n+probes; i++ {
		if f.MayContainUint64(i) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 5*target {
		t.Errorf("false positive rate %.4f far above target %.4f", rate, target)
	}
	if est := f.EstimatedFalsePositiveRate(); est > 5*target {
		t.Errorf("estimated fp rate %.4f far above target", est)
	}
}

func TestDegenerateConstruction(t *testing.T) {
	f := New(0, 0)
	f.AddUint64(42)
	if !f.MayContainUint64(42) {
		t.Errorf("degenerate filter lost a key")
	}
	if f.NumBits() == 0 || f.NumHashes() == 0 {
		t.Errorf("degenerate construction produced zero capacity")
	}
	g := NewWithEstimates(0, -1)
	g.Add([]byte("x"))
	if !g.MayContain([]byte("x")) {
		t.Errorf("defaulted estimates filter lost a key")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	f := NewWithEstimates(500, 0.02)
	r := rand.New(rand.NewSource(7))
	keys := make([]uint64, 500)
	for i := range keys {
		keys[i] = r.Uint64()
		f.AddUint64(keys[i])
	}
	g, err := Unmarshal(f.Marshal())
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if g.NumBits() != f.NumBits() || g.NumHashes() != f.NumHashes() || g.Count() != f.Count() {
		t.Errorf("metadata mismatch after round trip")
	}
	for _, k := range keys {
		if !g.MayContainUint64(k) {
			t.Fatalf("round-tripped filter lost key %d", k)
		}
	}
}

func TestUnmarshalCorrupt(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 2, 3},
		make([]byte, 16), // zero hashes/words
		make([]byte, 15), // short header
	}
	for i, c := range cases {
		if _, err := Unmarshal(c); err == nil {
			t.Errorf("case %d: Unmarshal accepted corrupt input", i)
		}
	}
	// Truncated body: valid header claiming more words than present.
	f := New(256, 3)
	f.AddUint64(1)
	enc := f.Marshal()
	if _, err := Unmarshal(enc[:len(enc)-8]); err == nil {
		t.Errorf("Unmarshal accepted truncated body")
	}
}

func TestQuickNoFalseNegatives(t *testing.T) {
	f := func(keys []uint64) bool {
		fl := NewWithEstimates(uint64(len(keys)+1), 0.01)
		for _, k := range keys {
			fl.AddUint64(k)
		}
		for _, k := range keys {
			if !fl.MayContainUint64(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestByteAndUint64KeysAgree(t *testing.T) {
	f := New(1024, 4)
	f.AddUint64(99)
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], 99)
	if !f.MayContain(buf[:]) {
		t.Errorf("byte-encoded probe should hit for key added via AddUint64")
	}
}

func BenchmarkAdd(b *testing.B) {
	f := NewWithEstimates(uint64(b.N)+1, 0.01)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.AddUint64(uint64(i))
	}
}

func BenchmarkMayContain(b *testing.B) {
	f := NewWithEstimates(100000, 0.01)
	for i := uint64(0); i < 100000; i++ {
		f.AddUint64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.MayContainUint64(uint64(i))
	}
}
