package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/ycsb"
)

// smallParams keeps test runtime reasonable while preserving the shapes.
func smallParams() Params {
	return Params{
		OperationCount: 20000,
		RecordCount:    1000,
		MemtableKeys:   1000,
		Runs:           2,
		K:              2,
		Workers:        4,
		Distribution:   ycsb.Latest,
		Seed:           42,
	}
}

func TestNewStat(t *testing.T) {
	if s := NewStat(nil); s.Mean != 0 || s.Std != 0 {
		t.Errorf("empty stat = %+v", s)
	}
	if s := NewStat([]float64{5}); s.Mean != 5 || s.Std != 0 {
		t.Errorf("singleton stat = %+v", s)
	}
	s := NewStat([]float64{2, 4, 6})
	if s.Mean != 4 {
		t.Errorf("mean = %v", s.Mean)
	}
	if math.Abs(s.Std-2) > 1e-9 {
		t.Errorf("std = %v, want 2", s.Std)
	}
	if got := s.String(); !strings.Contains(got, "±") {
		t.Errorf("String = %q", got)
	}
}

func TestDefaultParams(t *testing.T) {
	p := DefaultParams()
	if p.OperationCount != 100000 || p.RecordCount != 1000 || p.MemtableKeys != 1000 || p.Runs != 3 || p.K != 2 {
		t.Errorf("DefaultParams = %+v, want the paper's Section 5.2 settings", p)
	}
	var zero Params
	d := zero.withDefaults()
	if d.OperationCount != 100000 || d.Workers <= 0 || d.Seed == 0 {
		t.Errorf("withDefaults = %+v", d)
	}
}

func TestFig7ShapesHold(t *testing.T) {
	rows, err := Fig7(smallParams())
	if err != nil {
		t.Fatalf("Fig7: %v", err)
	}
	if len(rows) != len(UpdatePercentages) {
		t.Fatalf("rows = %d", len(rows))
	}
	first, last := rows[0], rows[len(rows)-1]
	// Shape 1: for every strategy, cost decreases from 0% to 100% updates.
	for _, s := range first.Strategies {
		if last.Cells[s].Cost.Mean >= first.Cells[s].Cost.Mean {
			t.Errorf("%s: cost did not decrease with updates (%v → %v)",
				s, first.Cells[s].Cost.Mean, last.Cells[s].Cost.Mean)
		}
	}
	// Shape 2: RANDOM is the worst strategy at 0% updates.
	rnd := first.Cells["RANDOM"].Cost.Mean
	for _, s := range []string{"SI", "SO", "BT(I)", "BT(O)"} {
		if rnd <= first.Cells[s].Cost.Mean {
			t.Errorf("RANDOM (%v) not worse than %s (%v) at 0%% updates", rnd, s, first.Cells[s].Cost.Mean)
		}
	}
	// Shape 3: at 100% updates the strategies converge (within ~15%).
	var lo, hi float64
	for _, s := range last.Strategies {
		c := last.Cells[s].Cost.Mean
		if lo == 0 || c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	if hi > 1.3*lo {
		t.Errorf("strategies did not converge at 100%% updates: spread [%v, %v]", lo, hi)
	}
	// Shape 4: SI cost ≤ SO cost at 0% updates (SO pays estimation error;
	// paper: SI and BT(I) marginally lower than BT(O) and SO). Allow a
	// small tolerance since both are near-optimal here.
	if first.Cells["SI"].Cost.Mean > 1.05*first.Cells["SO"].Cost.Mean {
		t.Errorf("SI (%v) unexpectedly above SO (%v)", first.Cells["SI"].Cost.Mean, first.Cells["SO"].Cost.Mean)
	}
}

// TestFig7ShapeHoldsForAllDistributions checks the paper's §5.2 remark
// that the latest-distribution observations "are similar for zipfian and
// uniform": the two headline shapes (cost falls with updates; RANDOM is
// worst at 0% updates) must hold under every distribution.
func TestFig7ShapeHoldsForAllDistributions(t *testing.T) {
	for _, dist := range []ycsb.Distribution{ycsb.Uniform, ycsb.Zipfian} {
		p := smallParams()
		p.Runs = 1
		p.OperationCount = 15000
		p.Distribution = dist
		rows, err := Fig7(p)
		if err != nil {
			t.Fatalf("%v: %v", dist, err)
		}
		first, last := rows[0], rows[len(rows)-1]
		for _, s := range first.Strategies {
			if last.Cells[s].Cost.Mean >= first.Cells[s].Cost.Mean {
				t.Errorf("%v/%s: cost did not fall with updates", dist, s)
			}
		}
		rnd := first.Cells["RANDOM"].Cost.Mean
		for _, s := range []string{"SI", "BT(I)"} {
			if rnd <= first.Cells[s].Cost.Mean {
				t.Errorf("%v: RANDOM (%v) not worse than %s (%v) at 0%% updates",
					dist, rnd, s, first.Cells[s].Cost.Mean)
			}
		}
	}
}

func TestFig8ConstantFactor(t *testing.T) {
	p := smallParams()
	p.Runs = 1
	rows, err := Fig8(p)
	if err != nil {
		t.Fatalf("Fig8: %v", err)
	}
	if len(rows) != 3*len(Fig8MemtableSizes) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// BT(I) is a (⌈log n⌉+1)-approximation (Lemma 4.1); the observed
		// ratio must respect that bound for the actual table count. The
		// count itself is approximate: memtable dedup absorbs updates, so
		// update-heavy runs flush fewer than the nominal 100 tables
		// ("sstables may be smaller and vary in size", Section 5.1).
		bound := math.Ceil(math.Log2(r.Tables.Mean)) + 1
		if r.Ratio < 1 || r.Ratio > bound {
			t.Errorf("%s ms=%d: ratio %.2f out of [1,%.0f]", r.Distribution, r.MemtableKeys, r.Ratio, bound)
		}
		if r.Tables.Mean < Fig8TargetTables/2 || r.Tables.Mean > 2.2*Fig8TargetTables {
			t.Errorf("%s ms=%d: generated %.0f tables, want within 2x of 100", r.Distribution, r.MemtableKeys, r.Tables.Mean)
		}
	}
	// Constant factor: ratios within each distribution vary by < 2.5x.
	byDist := map[string][]float64{}
	for _, r := range rows {
		byDist[r.Distribution] = append(byDist[r.Distribution], r.Ratio)
	}
	for dist, ratios := range byDist {
		lo, hi := ratios[0], ratios[0]
		for _, x := range ratios {
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		if hi/lo > 2.5 {
			t.Errorf("%s: ratio drift %0.2f–%0.2f is not a constant factor", dist, lo, hi)
		}
	}
}

func TestFig9TimeGrowsWithCost(t *testing.T) {
	p := smallParams()
	p.Runs = 1
	rows, err := Fig9b(p)
	if err != nil {
		t.Fatalf("Fig9b: %v", err)
	}
	if len(rows) != 3*len(Fig9bOperationCounts) {
		t.Fatalf("rows = %d", len(rows))
	}
	// Per distribution, both cost and time must increase from the smallest
	// to the largest operation count (the near-linear relation of §5.4).
	byDist := map[string][]Fig9Row{}
	for _, r := range rows {
		byDist[r.Distribution] = append(byDist[r.Distribution], r)
	}
	for dist, rs := range byDist {
		first, last := rs[0], rs[len(rs)-1]
		if last.Cost.Mean <= first.Cost.Mean {
			t.Errorf("%s: cost did not grow with opcount", dist)
		}
		if last.TimeMs.Mean <= first.TimeMs.Mean {
			t.Errorf("%s: time did not grow with opcount (%.3f → %.3f ms)", dist, first.TimeMs.Mean, last.TimeMs.Mean)
		}
	}
}

func TestFig9aRuns(t *testing.T) {
	p := smallParams()
	p.Runs = 1
	p.OperationCount = 10000
	rows, err := Fig9a(p)
	if err != nil {
		t.Fatalf("Fig9a: %v", err)
	}
	if len(rows) != 3*len(UpdatePercentages) {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestOptGap(t *testing.T) {
	p := smallParams()
	p.MemtableKeys = 500
	rows, err := OptGap(p, 8, 3)
	if err != nil {
		t.Fatalf("OptGap: %v", err)
	}
	if len(rows) != 7 { // 5 evaluated + LM + FREQ
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.MeanRatio < 1-1e-9 {
			t.Errorf("%s: mean ratio %.3f below 1 (beat the optimum?)", r.Strategy, r.MeanRatio)
		}
		if r.WorstRatio < r.MeanRatio-1e-9 {
			t.Errorf("%s: worst %.3f below mean %.3f", r.Strategy, r.WorstRatio, r.MeanRatio)
		}
		if r.MeanLOPTRatio < r.MeanRatio-1e-9 {
			// LOPT ≤ OPT, so cost/LOPT ≥ cost/OPT.
			t.Errorf("%s: LOPT ratio %.3f below OPT ratio %.3f", r.Strategy, r.MeanLOPTRatio, r.MeanRatio)
		}
	}
}

func TestOptGapValidation(t *testing.T) {
	if _, err := OptGap(smallParams(), 1, 3); err == nil {
		t.Errorf("tables=1 accepted")
	}
	if _, err := OptGap(smallParams(), 99, 3); err == nil {
		t.Errorf("tables beyond DP limit accepted")
	}
}

func TestFormatters(t *testing.T) {
	p := smallParams()
	p.Runs = 1
	p.OperationCount = 5000
	f7, err := Fig7(p)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatFig7(f7)
	for _, want := range []string{"Figure 7a", "Figure 7b", "RANDOM", "update%"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatFig7 missing %q", want)
		}
	}
	if FormatFig7(nil) != "" {
		t.Errorf("FormatFig7(nil) not empty")
	}

	var csv strings.Builder
	if err := WriteFig7CSV(&csv, f7); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(csv.String(), "\n"); lines != 1+len(f7)*5 {
		t.Errorf("fig7 csv lines = %d", lines)
	}

	f8 := []Fig8Row{{MemtableKeys: 10, Distribution: "latest", Ratio: 1.5}}
	if !strings.Contains(FormatFig8(f8), "Figure 8") {
		t.Errorf("FormatFig8 output wrong")
	}
	var csv8 strings.Builder
	if err := WriteFig8CSV(&csv8, f8); err != nil {
		t.Fatal(err)
	}
	f9 := []Fig9Row{{X: 20, Distribution: "uniform"}}
	if !strings.Contains(FormatFig9("Figure 9a", "update%", f9), "Figure 9a") {
		t.Errorf("FormatFig9 output wrong")
	}
	var csv9 strings.Builder
	if err := WriteFig9CSV(&csv9, "update_pct", f9); err != nil {
		t.Fatal(err)
	}
	og := []OptGapRow{{Strategy: "SI", MeanRatio: 1.01, WorstRatio: 1.05, MeanLOPTRatio: 1.3, Trials: 5}}
	if !strings.Contains(FormatOptGap(og), "SI") {
		t.Errorf("FormatOptGap output wrong")
	}
}
