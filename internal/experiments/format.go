package experiments

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// FormatFig7 renders Figure 7's data as two aligned text tables (cost, then
// time), one row per update percentage and one column per strategy.
func FormatFig7(rows []Fig7Row) string {
	if len(rows) == 0 {
		return ""
	}
	var b strings.Builder
	strategies := rows[0].Strategies

	writeTable := func(title, unit string, cell func(Fig7Cell) Stat) {
		fmt.Fprintf(&b, "%s (%s)\n", title, unit)
		tw := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
		fmt.Fprint(tw, "update%")
		for _, s := range strategies {
			fmt.Fprintf(tw, "\t%s", s)
		}
		fmt.Fprintln(tw, "\tsstables")
		for _, row := range rows {
			fmt.Fprintf(tw, "%d", row.UpdatePct)
			for _, s := range strategies {
				fmt.Fprintf(tw, "\t%s", cell(row.Cells[s]))
			}
			fmt.Fprintf(tw, "\t%.0f\n", row.Tables.Mean)
		}
		tw.Flush()
		b.WriteByte('\n')
	}
	writeTable("Figure 7a: compaction cost vs update percentage", "keys, costactual", func(c Fig7Cell) Stat { return c.Cost })
	writeTable("Figure 7b: compaction time vs update percentage", "ms", func(c Fig7Cell) Stat { return c.TimeMs })
	return b.String()
}

// FormatFig8 renders Figure 8's data: BT(I) cost versus the optimal lower
// bound per memtable size and distribution.
func FormatFig8(rows []Fig8Row) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Figure 8: BT(I) cost vs lower bound on optimal (keys, log-log in the paper)")
	tw := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "dist\tmemtable\tsstables\tBT(I) cost\tLOPT\tcost/LOPT")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%.0f\t%s\t%s\t%.2f\n",
			r.Distribution, r.MemtableKeys, r.Tables.Mean, r.Cost, r.LowerBound, r.Ratio)
	}
	tw.Flush()
	return b.String()
}

// FormatFig9 renders Figure 9's scatter data with the given axis label.
func FormatFig9(title, xlabel string, rows []Fig9Row) string {
	var b strings.Builder
	fmt.Fprintln(&b, title)
	tw := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintf(tw, "dist\t%s\tcost (keys)\ttime (ms)\n", xlabel)
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%s\t%.2f ± %.2f\n", r.Distribution, r.X, r.Cost, r.TimeMs.Mean, r.TimeMs.Std)
	}
	tw.Flush()
	return b.String()
}

// FormatOptGap renders the optimality-gap extension experiment.
func FormatOptGap(rows []OptGapRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Optimality gap vs exact DP optimum (extension; ratio 1.00 = optimal)")
	tw := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "strategy\tmean cost/OPT\tworst cost/OPT\tmean cost/LOPT\ttrials")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%.3f\t%d\n", r.Strategy, r.MeanRatio, r.WorstRatio, r.MeanLOPTRatio, r.Trials)
	}
	tw.Flush()
	return b.String()
}

// WriteFig7CSV emits Figure 7's data as CSV with one row per
// (update%, strategy).
func WriteFig7CSV(w io.Writer, rows []Fig7Row) error {
	if _, err := fmt.Fprintln(w, "update_pct,strategy,cost_mean,cost_std,time_ms_mean,time_ms_std"); err != nil {
		return err
	}
	for _, row := range rows {
		for _, s := range row.Strategies {
			c := row.Cells[s]
			if _, err := fmt.Fprintf(w, "%d,%s,%.1f,%.1f,%.3f,%.3f\n",
				row.UpdatePct, s, c.Cost.Mean, c.Cost.Std, c.TimeMs.Mean, c.TimeMs.Std); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteFig8CSV emits Figure 8's data as CSV.
func WriteFig8CSV(w io.Writer, rows []Fig8Row) error {
	if _, err := fmt.Fprintln(w, "distribution,memtable_keys,tables,cost_mean,cost_std,lopt_mean,lopt_std,ratio"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%s,%d,%.0f,%.1f,%.1f,%.1f,%.1f,%.3f\n",
			r.Distribution, r.MemtableKeys, r.Tables.Mean, r.Cost.Mean, r.Cost.Std,
			r.LowerBound.Mean, r.LowerBound.Std, r.Ratio); err != nil {
			return err
		}
	}
	return nil
}

// WriteFig9CSV emits Figure 9's data as CSV with the given x-column name.
func WriteFig9CSV(w io.Writer, xlabel string, rows []Fig9Row) error {
	if _, err := fmt.Fprintf(w, "distribution,%s,cost_mean,cost_std,time_ms_mean,time_ms_std\n", xlabel); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%s,%d,%.1f,%.1f,%.3f,%.3f\n",
			r.Distribution, r.X, r.Cost.Mean, r.Cost.Std, r.TimeMs.Mean, r.TimeMs.Std); err != nil {
			return err
		}
	}
	return nil
}
