package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/compaction"
	"repro/internal/simulator"
)

// Ablation experiments for the design choices DESIGN.md calls out: the
// merge fan-in k (K-WAYMERGING) and the HyperLogLog precision behind the
// practical SMALLESTOUTPUT strategy. Neither is swept in the paper — k is
// fixed to 2 and HLL precision is unstated — so these quantify the choices
// this reproduction made.

// KSweepRow reports one (strategy, k) cell: cost, number of merge steps
// and time over the standard Figure 7 workload.
type KSweepRow struct {
	Strategy   string
	K          int
	Cost       Stat
	Steps      Stat
	TimeMs     Stat
	CostVsLOPT float64
}

// KSweep measures how the merge fan-in changes cost and step count. Larger
// k means fewer, fatter merges: cost (each key is rewritten fewer times)
// and running time fall, which is why the paper's model allows k-way
// merging in the first place.
func KSweep(p Params, updatePct int, ks []int) ([]KSweepRow, error) {
	p = p.withDefaults()
	if len(ks) == 0 {
		ks = []int{2, 3, 4, 8}
	}
	var rows []KSweepRow
	for _, strat := range []string{"SI", "BT(I)"} {
		for _, k := range ks {
			if k < 2 {
				return nil, fmt.Errorf("ksweep: k = %d", k)
			}
			var costs, steps, times, lopts []float64
			for run := 0; run < p.Runs; run++ {
				seed := p.Seed + int64(run)*1000
				inst, err := simulator.GenerateTables(simulator.Config{
					Workload:     workloadConfig(p, updatePct, seed),
					MemtableKeys: p.MemtableKeys,
				})
				if err != nil {
					return nil, err
				}
				res, err := simulator.RunStrategy(inst, strat, k, seed+7, p.Workers)
				if err != nil {
					return nil, err
				}
				costs = append(costs, float64(res.CostActual))
				times = append(times, float64(res.Reported.Microseconds())/1000)
				lopts = append(lopts, float64(res.LowerBound))
				steps = append(steps, float64(numSteps(inst.N(), k)))
			}
			row := KSweepRow{
				Strategy: strat,
				K:        k,
				Cost:     NewStat(costs),
				Steps:    NewStat(steps),
				TimeMs:   NewStat(times),
			}
			if l := NewStat(lopts).Mean; l > 0 {
				row.CostVsLOPT = row.Cost.Mean / l
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// numSteps returns the number of merges needed to reduce n tables with
// fan-in k: each step retires k−1 tables (the last may retire fewer).
func numSteps(n, k int) int {
	steps := 0
	for n > 1 {
		take := k
		if n < k {
			take = n
		}
		n -= take - 1
		steps++
	}
	return steps
}

// HLLSweepRow reports one precision point of the SO strategy against the
// exact-cardinality reference.
type HLLSweepRow struct {
	// Precision is the sketch precision p (2^p registers); 0 denotes the
	// exact-cardinality reference row.
	Precision uint8
	Cost      Stat
	TimeMs    Stat
	// CostVsExact is mean cost relative to the exact SO run (1.0 = no
	// estimation-induced regression).
	CostVsExact float64
}

// HLLSweep quantifies Section 5.2's observation that "the cost of SO and
// BT(O) is sensitive to the error in cardinality estimation": lower sketch
// precision is faster per estimate but produces worse merge choices.
func HLLSweep(p Params, updatePct int, precisions []uint8) ([]HLLSweepRow, error) {
	p = p.withDefaults()
	if len(precisions) == 0 {
		precisions = []uint8{6, 8, 10, 12, 14}
	}
	type point struct {
		cost, ms []float64
	}
	exact := &point{}
	byPrec := map[uint8]*point{}
	for _, prec := range precisions {
		byPrec[prec] = &point{}
	}

	for run := 0; run < p.Runs; run++ {
		seed := p.Seed + int64(run)*1000
		inst, err := simulator.GenerateTables(simulator.Config{
			Workload:     workloadConfig(p, updatePct, seed),
			MemtableKeys: p.MemtableKeys,
		})
		if err != nil {
			return nil, err
		}
		run := func(ch compaction.Chooser) (int, time.Duration, error) {
			start := time.Now()
			sc, err := compaction.Run(inst, p.K, ch)
			if err != nil {
				return 0, 0, err
			}
			return sc.CostActual(), time.Since(start), nil
		}
		cost, dur, err := run(compaction.NewSmallestOutput(compaction.ExactEstimator{}))
		if err != nil {
			return nil, err
		}
		exact.cost = append(exact.cost, float64(cost))
		exact.ms = append(exact.ms, float64(dur.Microseconds())/1000)
		for _, prec := range precisions {
			cost, dur, err := run(compaction.NewSmallestOutput(compaction.NewHLLEstimator(prec)))
			if err != nil {
				return nil, err
			}
			byPrec[prec].cost = append(byPrec[prec].cost, float64(cost))
			byPrec[prec].ms = append(byPrec[prec].ms, float64(dur.Microseconds())/1000)
		}
	}

	exactRow := HLLSweepRow{Precision: 0, Cost: NewStat(exact.cost), TimeMs: NewStat(exact.ms), CostVsExact: 1}
	rows := []HLLSweepRow{exactRow}
	for _, prec := range precisions {
		pt := byPrec[prec]
		row := HLLSweepRow{Precision: prec, Cost: NewStat(pt.cost), TimeMs: NewStat(pt.ms)}
		if exactRow.Cost.Mean > 0 {
			row.CostVsExact = row.Cost.Mean / exactRow.Cost.Mean
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatKSweep renders the k ablation.
func FormatKSweep(rows []KSweepRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Ablation: merge fan-in k (K-WAYMERGING)")
	tw := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "strategy\tk\tcost (keys)\tmerge steps\ttime (ms)\tcost/LOPT")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%s\t%.0f\t%.2f\t%.2f\n", r.Strategy, r.K, r.Cost, r.Steps.Mean, r.TimeMs.Mean, r.CostVsLOPT)
	}
	tw.Flush()
	return b.String()
}

// FormatHLLSweep renders the HLL precision ablation.
func FormatHLLSweep(rows []HLLSweepRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Ablation: SMALLESTOUTPUT cardinality estimation precision")
	tw := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "estimator\tcost (keys)\ttime (ms)\tcost vs exact")
	for _, r := range rows {
		name := fmt.Sprintf("HLL p=%d", r.Precision)
		if r.Precision == 0 {
			name = "exact"
		}
		fmt.Fprintf(tw, "%s\t%s\t%.2f\t%.4f\n", name, r.Cost, r.TimeMs.Mean, r.CostVsExact)
	}
	tw.Flush()
	return b.String()
}
