package experiments

import (
	"strings"
	"testing"
)

func TestNumSteps(t *testing.T) {
	cases := []struct{ n, k, want int }{
		{1, 2, 0},
		{2, 2, 1},
		{16, 2, 15},
		{16, 4, 5},
		{9, 4, 3},
		{5, 8, 1},
	}
	for _, c := range cases {
		if got := numSteps(c.n, c.k); got != c.want {
			t.Errorf("numSteps(%d,%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
}

func TestKSweepLargerKCheaper(t *testing.T) {
	p := smallParams()
	p.Runs = 1
	rows, err := KSweep(p, 20, []int{2, 4, 8})
	if err != nil {
		t.Fatalf("KSweep: %v", err)
	}
	if len(rows) != 6 { // 2 strategies × 3 k values
		t.Fatalf("rows = %d", len(rows))
	}
	byStrat := map[string][]KSweepRow{}
	for _, r := range rows {
		byStrat[r.Strategy] = append(byStrat[r.Strategy], r)
	}
	for strat, rs := range byStrat {
		// Cost and step count must fall monotonically with k.
		for i := 1; i < len(rs); i++ {
			if rs[i].Cost.Mean > rs[i-1].Cost.Mean {
				t.Errorf("%s: cost rose from k=%d (%.0f) to k=%d (%.0f)",
					strat, rs[i-1].K, rs[i-1].Cost.Mean, rs[i].K, rs[i].Cost.Mean)
			}
			if rs[i].Steps.Mean >= rs[i-1].Steps.Mean {
				t.Errorf("%s: steps did not fall with k", strat)
			}
		}
		if rs[0].CostVsLOPT < 1 {
			t.Errorf("%s: cost below LOPT", strat)
		}
	}
	if _, err := KSweep(p, 20, []int{1}); err == nil {
		t.Errorf("k=1 accepted")
	}
}

func TestHLLSweepPrecisionImprovesCost(t *testing.T) {
	p := smallParams()
	p.Runs = 1
	p.OperationCount = 15000
	rows, err := HLLSweep(p, 40, []uint8{6, 14})
	if err != nil {
		t.Fatalf("HLLSweep: %v", err)
	}
	if len(rows) != 3 { // exact + 2 precisions
		t.Fatalf("rows = %d", len(rows))
	}
	exact, low, high := rows[0], rows[1], rows[2]
	if exact.Precision != 0 || exact.CostVsExact != 1 {
		t.Errorf("exact row = %+v", exact)
	}
	// Higher precision must not be materially worse than lower precision,
	// and no estimator should beat exact by more than noise.
	if high.CostVsExact > low.CostVsExact*1.02 {
		t.Errorf("p=14 (%.4f) worse than p=6 (%.4f)", high.CostVsExact, low.CostVsExact)
	}
	for _, r := range rows[1:] {
		if r.CostVsExact < 0.98 {
			t.Errorf("p=%d beat exact by %.4f — estimator bug?", r.Precision, r.CostVsExact)
		}
	}
}

func TestFormatAblations(t *testing.T) {
	ks := []KSweepRow{{Strategy: "SI", K: 2, CostVsLOPT: 2}}
	if out := FormatKSweep(ks); !strings.Contains(out, "fan-in") || !strings.Contains(out, "SI") {
		t.Errorf("FormatKSweep = %q", out)
	}
	hs := []HLLSweepRow{{Precision: 0, CostVsExact: 1}, {Precision: 12, CostVsExact: 1.01}}
	out := FormatHLLSweep(hs)
	if !strings.Contains(out, "exact") || !strings.Contains(out, "HLL p=12") {
		t.Errorf("FormatHLLSweep = %q", out)
	}
}
