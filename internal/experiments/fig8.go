package experiments

import (
	"fmt"

	"repro/internal/simulator"
	"repro/internal/ycsb"
)

// Fig8MemtableSizes is the paper's memtable-size sweep (10 to 10K keys,
// log scale) with a fixed target of 100 sstables.
var Fig8MemtableSizes = []int{10, 100, 1000, 10000}

// Fig8TargetTables is the fixed sstable count of the Figure 8 setup.
const Fig8TargetTables = 100

// Fig8Row is one (memtable size, distribution) point: the BT(I) compaction
// cost against the lower bound on the optimal cost (Σ sstable sizes), both
// in keys. The paper plots these on log-log axes and observes parallel
// lines — a constant-factor gap.
type Fig8Row struct {
	MemtableKeys int
	Distribution string
	Cost         Stat
	LowerBound   Stat
	// Ratio is mean Cost / mean LowerBound, the constant factor.
	Ratio float64
	// Tables is the mean generated sstable count (≈ Fig8TargetTables).
	Tables Stat
}

// Fig8 regenerates Figure 8: BT(I)'s cost tracks the optimal lower bound
// within a constant factor across four decades of memtable size. The
// operation count follows the paper's formula
// memtable_size × 100 − recordcount, with a 60:40 update:insert mix, for
// all three distributions.
func Fig8(p Params) ([]Fig8Row, error) {
	p = p.withDefaults()
	var rows []Fig8Row
	for _, dist := range []ycsb.Distribution{ycsb.Uniform, ycsb.Zipfian, ycsb.Latest} {
		for _, ms := range Fig8MemtableSizes {
			// Paper formula: operationcount = memtable_size × 100 −
			// recordcount, so load + run total ms×100 key writes. At
			// ms=10 the load phase alone provides them all.
			opCount := ms*Fig8TargetTables - p.RecordCount
			if opCount < 0 {
				opCount = 0
			}
			var costs, lopts, tables []float64
			for run := 0; run < p.Runs; run++ {
				seed := p.Seed + int64(run)*1000 + int64(ms)
				inst, err := simulator.GenerateTables(simulator.Config{
					Workload: ycsb.Config{
						RecordCount:      p.RecordCount,
						OperationCount:   opCount,
						UpdateProportion: 0.6,
						InsertProportion: 0.4,
						Distribution:     dist,
						Seed:             seed,
					},
					MemtableKeys: ms,
				})
				if err != nil {
					return nil, fmt.Errorf("fig8 ms=%d: %w", ms, err)
				}
				res, err := simulator.RunStrategy(inst, "BT(I)", p.K, seed+7, p.Workers)
				if err != nil {
					return nil, fmt.Errorf("fig8 ms=%d: %w", ms, err)
				}
				costs = append(costs, float64(res.CostSimple))
				lopts = append(lopts, float64(res.LowerBound))
				tables = append(tables, float64(inst.N()))
			}
			row := Fig8Row{
				MemtableKeys: ms,
				Distribution: dist.String(),
				Cost:         NewStat(costs),
				LowerBound:   NewStat(lopts),
				Tables:       NewStat(tables),
			}
			if row.LowerBound.Mean > 0 {
				row.Ratio = row.Cost.Mean / row.LowerBound.Mean
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}
