// Package experiments regenerates every figure of the paper's evaluation
// (Section 5) from the simulator: Figure 7 (cost and time versus update
// percentage for the five strategies), Figure 8 (BT(I) cost versus the
// Σ|A_i| lower bound while the memtable size sweeps four decades), and
// Figure 9 (cost versus completion time for SI as update percentage and
// operation count vary). An additional optimality-gap experiment compares
// every heuristic against the exact DP optimum on small instances, a
// comparison the paper approximated with the lower bound.
//
// Each experiment averages over independent runs (the paper uses 3) and
// reports mean ± standard deviation.
package experiments

import (
	"fmt"
	"math"
	"runtime"

	"repro/internal/ycsb"
)

// Stat is a mean and sample standard deviation over experiment runs.
type Stat struct {
	Mean, Std float64
}

// NewStat summarizes xs; the Std of fewer than two samples is zero.
func NewStat(xs []float64) Stat {
	if len(xs) == 0 {
		return Stat{}
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	if len(xs) < 2 {
		return Stat{Mean: mean}
	}
	ss := 0.0
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	return Stat{Mean: mean, Std: math.Sqrt(ss / float64(len(xs)-1))}
}

// String formats the stat as "mean ± std".
func (s Stat) String() string { return fmt.Sprintf("%.0f ± %.0f", s.Mean, s.Std) }

// Params holds the knobs shared by the experiments, defaulting to the
// paper's Section 5.2 settings.
type Params struct {
	// OperationCount is YCSB's operationcount (paper: 100K).
	OperationCount int
	// RecordCount is YCSB's recordcount for the load phase (paper: 1000).
	RecordCount int
	// MemtableKeys is the memtable flush threshold in distinct keys
	// (paper: 1000).
	MemtableKeys int
	// Runs is the number of independent runs averaged (paper: 3).
	Runs int
	// K is the merge fan-in (paper default: 2).
	K int
	// Workers bounds BT's merge parallelism (paper: 2×quad-core machine).
	Workers int
	// Distribution is the key access distribution (the paper presents
	// latest; uniform and zipfian "are similar").
	Distribution ycsb.Distribution
	// Seed bases the per-run seeds, keeping every experiment reproducible.
	Seed int64
	// Strategies restricts strategy-comparison figures (Figure 7) to a
	// subset of the registry. Empty selects the paper's evaluated five.
	// Names must come from compaction.StrategyNames().
	Strategies []string
}

// DefaultParams returns the paper's settings.
func DefaultParams() Params {
	return Params{
		OperationCount: 100000,
		RecordCount:    1000,
		MemtableKeys:   1000,
		Runs:           3,
		K:              2,
		Workers:        runtime.GOMAXPROCS(0),
		Distribution:   ycsb.Latest,
		Seed:           1,
	}
}

func (p Params) withDefaults() Params {
	d := DefaultParams()
	if p.OperationCount <= 0 {
		p.OperationCount = d.OperationCount
	}
	if p.RecordCount <= 0 {
		p.RecordCount = d.RecordCount
	}
	if p.MemtableKeys <= 0 {
		p.MemtableKeys = d.MemtableKeys
	}
	if p.Runs <= 0 {
		p.Runs = d.Runs
	}
	if p.K < 2 {
		p.K = d.K
	}
	if p.Workers <= 0 {
		p.Workers = d.Workers
	}
	if p.Seed == 0 {
		p.Seed = d.Seed
	}
	return p
}

// UpdatePercentages is the Figure 7 sweep from insert-heavy to
// update-heavy.
var UpdatePercentages = []int{0, 20, 40, 60, 80, 100}

// workloadConfig builds the YCSB config for a given update percentage: the
// paper sweeps "from insert heavy (insert proportion 100% and update
// proportion 0%) to update heavy (update proportion 100%)".
func workloadConfig(p Params, updatePct int, seed int64) ycsb.Config {
	return ycsb.Config{
		RecordCount:      p.RecordCount,
		OperationCount:   p.OperationCount,
		UpdateProportion: float64(updatePct) / 100,
		InsertProportion: 1 - float64(updatePct)/100,
		Distribution:     p.Distribution,
		Seed:             seed,
	}
}
