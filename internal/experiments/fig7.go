package experiments

import (
	"fmt"

	"repro/internal/compaction"
	"repro/internal/simulator"
)

// Fig7Cell is one (update %, strategy) measurement: compaction cost
// (costactual, in keys) and completion time (milliseconds), each mean ±
// std over the runs.
type Fig7Cell struct {
	Cost   Stat
	TimeMs Stat
}

// Fig7Row is one x-axis point of Figure 7.
type Fig7Row struct {
	UpdatePct  int
	Strategies []string
	Cells      map[string]Fig7Cell
	// Tables is the mean number of sstables generated at this point.
	Tables Stat
}

// Fig7 regenerates Figures 7a (cost) and 7b (time): for each update
// percentage, phase one generates sstables and every evaluated strategy
// compacts them; costs and times are averaged over p.Runs independent
// workloads.
func Fig7(p Params) ([]Fig7Row, error) {
	p = p.withDefaults()
	strategies := p.Strategies
	if len(strategies) == 0 {
		strategies = compaction.EvaluatedStrategies()
	}
	rows := make([]Fig7Row, 0, len(UpdatePercentages))
	for _, pct := range UpdatePercentages {
		row := Fig7Row{UpdatePct: pct, Strategies: strategies, Cells: map[string]Fig7Cell{}}
		costs := map[string][]float64{}
		times := map[string][]float64{}
		var tables []float64
		for run := 0; run < p.Runs; run++ {
			seed := p.Seed + int64(run)*1000 + int64(pct)
			inst, err := simulator.GenerateTables(simulator.Config{
				Workload:     workloadConfig(p, pct, seed),
				MemtableKeys: p.MemtableKeys,
			})
			if err != nil {
				return nil, fmt.Errorf("fig7 pct=%d: %w", pct, err)
			}
			tables = append(tables, float64(inst.N()))
			for _, strat := range strategies {
				res, err := simulator.RunStrategy(inst, strat, p.K, seed+7, p.Workers)
				if err != nil {
					return nil, fmt.Errorf("fig7 pct=%d %s: %w", pct, strat, err)
				}
				costs[strat] = append(costs[strat], float64(res.CostActual))
				times[strat] = append(times[strat], float64(res.Reported.Microseconds())/1000)
			}
		}
		for _, strat := range strategies {
			row.Cells[strat] = Fig7Cell{Cost: NewStat(costs[strat]), TimeMs: NewStat(times[strat])}
		}
		row.Tables = NewStat(tables)
		rows = append(rows, row)
	}
	return rows, nil
}
