package experiments

import (
	"fmt"

	"repro/internal/compaction"
	"repro/internal/simulator"
	"repro/internal/ycsb"
)

// OptGapRow reports how far one strategy lands from the exact optimum over
// the trials: mean and worst cost ratio (1.0 = optimal) and, for
// comparison, the mean ratio against the paper's LOPT lower bound.
type OptGapRow struct {
	Strategy      string
	MeanRatio     float64
	WorstRatio    float64
	MeanLOPTRatio float64
	Trials        int
}

// OptGap is an extension experiment the paper could not run: it compares
// every heuristic (plus the FREQ f-approximation) against the true optimum
// computed by the subset DP on small YCSB-generated instances. The paper's
// Section 5.3 had to use LOPT = Σ|A_i| instead; the gap between
// MeanLOPTRatio and MeanRatio shows how loose that bound is.
func OptGap(p Params, tables int, trials int) ([]OptGapRow, error) {
	p = p.withDefaults()
	if tables < 2 || tables > compaction.MaxOptimalN {
		return nil, fmt.Errorf("optgap: tables must be in [2,%d], got %d", compaction.MaxOptimalN, tables)
	}
	if trials <= 0 {
		trials = 5
	}
	strategies := append(compaction.EvaluatedStrategies(), "LM", "FREQ")
	ratios := map[string][]float64{}
	loptRatios := map[string][]float64{}

	for trial := 0; trial < trials; trial++ {
		seed := p.Seed + int64(trial)*101
		// Target `tables` sstables: ops ≈ memtable × tables at 50:50 mix.
		inst, err := simulator.GenerateTables(simulator.Config{
			Workload: ycsb.Config{
				RecordCount:      p.MemtableKeys,
				OperationCount:   p.MemtableKeys*tables - p.MemtableKeys,
				UpdateProportion: 0.5,
				InsertProportion: 0.5,
				Distribution:     p.Distribution,
				Seed:             seed,
			},
			MemtableKeys: p.MemtableKeys,
		})
		if err != nil {
			return nil, fmt.Errorf("optgap trial %d: %w", trial, err)
		}
		if inst.N() > compaction.MaxOptimalN {
			return nil, fmt.Errorf("optgap trial %d: generated %d tables", trial, inst.N())
		}
		opt, err := compaction.OptimalBinary(inst)
		if err != nil {
			return nil, err
		}
		optCost := float64(opt.CostSimple())
		lopt := float64(inst.LowerBound())
		for _, strat := range strategies {
			var cost float64
			if strat == "FREQ" {
				sc, err := compaction.FreqMerge(inst, p.K)
				if err != nil {
					return nil, err
				}
				cost = float64(sc.CostSimple())
			} else {
				res, err := simulator.RunStrategy(inst, strat, p.K, seed+7, 1)
				if err != nil {
					return nil, err
				}
				cost = float64(res.CostSimple)
			}
			ratios[strat] = append(ratios[strat], cost/optCost)
			loptRatios[strat] = append(loptRatios[strat], cost/lopt)
		}
	}

	rows := make([]OptGapRow, 0, len(strategies))
	for _, strat := range strategies {
		rs := ratios[strat]
		worst := 0.0
		for _, r := range rs {
			if r > worst {
				worst = r
			}
		}
		rows = append(rows, OptGapRow{
			Strategy:      strat,
			MeanRatio:     NewStat(rs).Mean,
			WorstRatio:    worst,
			MeanLOPTRatio: NewStat(loptRatios[strat]).Mean,
			Trials:        len(rs),
		})
	}
	return rows, nil
}
