package experiments

import (
	"fmt"

	"repro/internal/simulator"
	"repro/internal/ycsb"
)

// Fig9Row is one scatter point of Figure 9: the SMALLESTINPUT strategy's
// cost (x axis, keys) against its completion time (y axis, ms), for one
// value of the swept variable and one distribution.
type Fig9Row struct {
	// X is the swept value: update percentage (9a) or operation count (9b).
	X            int
	Distribution string
	Cost         Stat
	TimeMs       Stat
}

// Fig9a regenerates Figure 9a: SI cost versus time as the update
// percentage sweeps 0→100, for all three distributions. The paper uses it
// to validate the cost model: time grows almost linearly with cost.
func Fig9a(p Params) ([]Fig9Row, error) {
	p = p.withDefaults()
	var rows []Fig9Row
	for _, dist := range []ycsb.Distribution{ycsb.Uniform, ycsb.Zipfian, ycsb.Latest} {
		pd := p
		pd.Distribution = dist
		for _, pct := range UpdatePercentages {
			row, err := fig9Point(pd, pct, pd.OperationCount, pct)
			if err != nil {
				return nil, fmt.Errorf("fig9a pct=%d: %w", pct, err)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// Fig9bOperationCounts is the data-size sweep of Figure 9b.
var Fig9bOperationCounts = []int{20000, 40000, 60000, 80000, 100000}

// Fig9b regenerates Figure 9b: SI cost versus time as the operation count
// (data size) grows, at the Section 5.3 update:insert ratio of 60:40.
func Fig9b(p Params) ([]Fig9Row, error) {
	p = p.withDefaults()
	var rows []Fig9Row
	for _, dist := range []ycsb.Distribution{ycsb.Uniform, ycsb.Zipfian, ycsb.Latest} {
		pd := p
		pd.Distribution = dist
		for _, ops := range Fig9bOperationCounts {
			row, err := fig9Point(pd, 60, ops, ops)
			if err != nil {
				return nil, fmt.Errorf("fig9b ops=%d: %w", ops, err)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// fig9Point measures SI on one workload configuration over p.Runs runs.
func fig9Point(p Params, updatePct, opCount, x int) (Fig9Row, error) {
	var costs, times []float64
	for run := 0; run < p.Runs; run++ {
		seed := p.Seed + int64(run)*1000 + int64(x)
		cfg := workloadConfig(p, updatePct, seed)
		cfg.OperationCount = opCount
		inst, err := simulator.GenerateTables(simulator.Config{Workload: cfg, MemtableKeys: p.MemtableKeys})
		if err != nil {
			return Fig9Row{}, err
		}
		res, err := simulator.RunStrategy(inst, "SI", p.K, seed+7, 1)
		if err != nil {
			return Fig9Row{}, err
		}
		costs = append(costs, float64(res.CostActual))
		times = append(times, float64(res.Reported.Microseconds())/1000)
	}
	return Fig9Row{
		X:            x,
		Distribution: p.Distribution.String(),
		Cost:         NewStat(costs),
		TimeMs:       NewStat(times),
	}, nil
}
