package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetPut(t *testing.T) {
	c := New(100)
	k := Key{Table: 1, Offset: 0}
	if _, ok := c.Get(k); ok {
		t.Errorf("empty cache hit")
	}
	c.Put(k, []byte("hello"))
	v, ok := c.Get(k)
	if !ok || string(v) != "hello" {
		t.Errorf("Get = %q, %v", v, ok)
	}
	hits, misses, used := c.Stats()
	if hits != 1 || misses != 1 || used != 5 {
		t.Errorf("stats = %d/%d/%d", hits, misses, used)
	}
}

func TestEvictionByBytes(t *testing.T) {
	c := New(30)
	for i := 0; i < 5; i++ {
		c.Put(Key{Table: 1, Offset: uint64(i)}, make([]byte, 10))
	}
	if c.Len() != 3 {
		t.Errorf("Len = %d, want 3 (30 bytes / 10)", c.Len())
	}
	// Oldest entries evicted.
	if _, ok := c.Get(Key{Table: 1, Offset: 0}); ok {
		t.Errorf("oldest entry survived")
	}
	if _, ok := c.Get(Key{Table: 1, Offset: 4}); !ok {
		t.Errorf("newest entry evicted")
	}
}

func TestLRUOrderOnAccess(t *testing.T) {
	c := New(20)
	a, b, d := Key{1, 0}, Key{1, 1}, Key{1, 2}
	c.Put(a, make([]byte, 10))
	c.Put(b, make([]byte, 10))
	c.Get(a) // refresh a; b is now oldest
	c.Put(d, make([]byte, 10))
	if _, ok := c.Get(b); ok {
		t.Errorf("b should have been evicted")
	}
	if _, ok := c.Get(a); !ok {
		t.Errorf("refreshed a was evicted")
	}
}

func TestOversizedValueIgnored(t *testing.T) {
	c := New(10)
	c.Put(Key{1, 0}, make([]byte, 11))
	if c.Len() != 0 {
		t.Errorf("oversized value cached")
	}
}

func TestPutReplaceAdjustsBytes(t *testing.T) {
	c := New(100)
	k := Key{1, 0}
	c.Put(k, make([]byte, 50))
	c.Put(k, make([]byte, 20))
	if _, _, used := c.Stats(); used != 20 {
		t.Errorf("used = %d, want 20", used)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestDropTable(t *testing.T) {
	c := New(1000)
	for i := 0; i < 5; i++ {
		c.Put(Key{Table: 1, Offset: uint64(i)}, make([]byte, 10))
		c.Put(Key{Table: 2, Offset: uint64(i)}, make([]byte, 10))
	}
	c.DropTable(1)
	if c.Len() != 5 {
		t.Errorf("Len after drop = %d, want 5", c.Len())
	}
	if _, ok := c.Get(Key{Table: 1, Offset: 0}); ok {
		t.Errorf("dropped table's block still cached")
	}
	if _, ok := c.Get(Key{Table: 2, Offset: 0}); !ok {
		t.Errorf("other table's block lost")
	}
	if _, _, used := c.Stats(); used != 50 {
		t.Errorf("used = %d, want 50", used)
	}
}

func TestZeroCapacityClamped(t *testing.T) {
	c := New(0)
	c.Put(Key{1, 0}, []byte{1})
	if c.Len() != 1 {
		t.Errorf("capacity clamp failed")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(1 << 16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				k := Key{Table: uint64(w % 4), Offset: uint64(i % 64)}
				if i%3 == 0 {
					c.Put(k, []byte(fmt.Sprint(i)))
				} else {
					c.Get(k)
				}
			}
		}(w)
	}
	wg.Wait()
}

func BenchmarkGetHit(b *testing.B) {
	c := New(1 << 20)
	k := Key{1, 42}
	c.Put(k, make([]byte, 4096))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Get(k); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkPutEvict(b *testing.B) {
	c := New(1 << 16)
	block := make([]byte, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Put(Key{Table: 1, Offset: uint64(i)}, block)
	}
}
