package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetPut(t *testing.T) {
	c := New(100)
	k := Key{Table: 1, Offset: 0}
	if _, ok := c.Get(k); ok {
		t.Errorf("empty cache hit")
	}
	c.Put(k, []byte("hello"))
	v, ok := c.Get(k)
	if !ok || string(v) != "hello" {
		t.Errorf("Get = %q, %v", v, ok)
	}
	hits, misses, used := c.Stats()
	if hits != 1 || misses != 1 || used != 5 {
		t.Errorf("stats = %d/%d/%d", hits, misses, used)
	}
}

func TestEvictionByBytes(t *testing.T) {
	c := New(30)
	for i := 0; i < 5; i++ {
		c.Put(Key{Table: 1, Offset: uint64(i)}, make([]byte, 10))
	}
	if c.Len() != 3 {
		t.Errorf("Len = %d, want 3 (30 bytes / 10)", c.Len())
	}
	// Oldest entries evicted.
	if _, ok := c.Get(Key{Table: 1, Offset: 0}); ok {
		t.Errorf("oldest entry survived")
	}
	if _, ok := c.Get(Key{Table: 1, Offset: 4}); !ok {
		t.Errorf("newest entry evicted")
	}
}

func TestLRUOrderOnAccess(t *testing.T) {
	c := New(20)
	a, b, d := Key{1, 0}, Key{1, 1}, Key{1, 2}
	c.Put(a, make([]byte, 10))
	c.Put(b, make([]byte, 10))
	c.Get(a) // refresh a; b is now oldest
	c.Put(d, make([]byte, 10))
	if _, ok := c.Get(b); ok {
		t.Errorf("b should have been evicted")
	}
	if _, ok := c.Get(a); !ok {
		t.Errorf("refreshed a was evicted")
	}
}

func TestOversizedValueIgnored(t *testing.T) {
	c := New(10)
	c.Put(Key{1, 0}, make([]byte, 11))
	if c.Len() != 0 {
		t.Errorf("oversized value cached")
	}
}

func TestPutReplaceAdjustsBytes(t *testing.T) {
	c := New(100)
	k := Key{1, 0}
	c.Put(k, make([]byte, 50))
	c.Put(k, make([]byte, 20))
	if _, _, used := c.Stats(); used != 20 {
		t.Errorf("used = %d, want 20", used)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestDropTable(t *testing.T) {
	c := New(1000)
	for i := 0; i < 5; i++ {
		c.Put(Key{Table: 1, Offset: uint64(i)}, make([]byte, 10))
		c.Put(Key{Table: 2, Offset: uint64(i)}, make([]byte, 10))
	}
	c.DropTable(1)
	if c.Len() != 5 {
		t.Errorf("Len after drop = %d, want 5", c.Len())
	}
	if _, ok := c.Get(Key{Table: 1, Offset: 0}); ok {
		t.Errorf("dropped table's block still cached")
	}
	if _, ok := c.Get(Key{Table: 2, Offset: 0}); !ok {
		t.Errorf("other table's block lost")
	}
	if _, _, used := c.Stats(); used != 50 {
		t.Errorf("used = %d, want 50", used)
	}
}

func TestZeroCapacityClamped(t *testing.T) {
	c := New(0)
	c.Put(Key{1, 0}, []byte{1})
	if c.Len() != 1 {
		t.Errorf("capacity clamp failed")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(1 << 16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				k := Key{Table: uint64(w % 4), Offset: uint64(i % 64)}
				if i%3 == 0 {
					c.Put(k, []byte(fmt.Sprint(i)))
				} else {
					c.Get(k)
				}
			}
		}(w)
	}
	wg.Wait()
}

func BenchmarkGetHit(b *testing.B) {
	c := New(1 << 20)
	k := Key{1, 42}
	c.Put(k, make([]byte, 4096))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Get(k); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkPutEvict(b *testing.B) {
	c := New(1 << 16)
	block := make([]byte, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Put(Key{Table: 1, Offset: uint64(i)}, block)
	}
}

func TestShardedGetPut(t *testing.T) {
	c := NewSharded(1<<20, 8)
	if len(c.shards) != 8 {
		t.Fatalf("shard count = %d, want 8", len(c.shards))
	}
	for i := 0; i < 200; i++ {
		c.Put(Key{Table: uint64(i % 5), Offset: uint64(i * 4096)}, []byte(fmt.Sprintf("block-%d", i)))
	}
	for i := 0; i < 200; i++ {
		v, ok := c.Get(Key{Table: uint64(i % 5), Offset: uint64(i * 4096)})
		if !ok || string(v) != fmt.Sprintf("block-%d", i) {
			t.Fatalf("Get(%d) = %q, %v", i, v, ok)
		}
	}
	hits, misses, used := c.Stats()
	if hits != 200 || misses != 0 {
		t.Errorf("stats = %d hits / %d misses, want 200/0", hits, misses)
	}
	if used == 0 || c.Len() != 200 {
		t.Errorf("used=%d len=%d", used, c.Len())
	}
}

func TestShardedRoundsUpToPowerOfTwo(t *testing.T) {
	if n := len(NewSharded(1<<20, 5).shards); n != 8 {
		t.Errorf("NewSharded(1MiB, 5) has %d shards, want 8", n)
	}
	if n := len(NewSharded(8<<20, 0).shards); n != DefaultShards {
		t.Errorf("NewSharded(8MiB, 0) has %d shards, want %d", n, DefaultShards)
	}
}

// TestShardedClampsTinyCapacity: striping must not make blocks that a
// single LRU of the same budget would cache uncacheable — stripe count
// shrinks so each stripe keeps at least minStripeBytes of admission room.
func TestShardedClampsTinyCapacity(t *testing.T) {
	c := NewSharded(256<<10, 0) // a 16-shard store's slice of a small budget
	if per := 256 << 10 / len(c.shards); per < minStripeBytes {
		t.Fatalf("stripe capacity %d below the %d admission floor (%d stripes)",
			per, minStripeBytes, len(c.shards))
	}
	// A 64 KiB block (a large-value data block) must be admitted.
	big := make([]byte, 64<<10)
	c.Put(Key{Table: 1, Offset: 0}, big)
	if _, ok := c.Get(Key{Table: 1, Offset: 0}); !ok {
		t.Error("64 KiB block refused by a 256 KiB cache: striping broke admission")
	}
}

func TestShardedCapacityBound(t *testing.T) {
	const capacity = 16 << 10
	c := NewSharded(capacity, 4)
	for i := 0; i < 1000; i++ {
		c.Put(Key{Table: 1, Offset: uint64(i)}, make([]byte, 512))
	}
	if _, _, used := c.Stats(); used > capacity {
		t.Errorf("used %d exceeds total capacity %d", used, capacity)
	}
}

func TestShardedDropTable(t *testing.T) {
	c := NewSharded(1<<20, 4)
	for i := 0; i < 100; i++ {
		c.Put(Key{Table: 1, Offset: uint64(i)}, []byte("a"))
		c.Put(Key{Table: 2, Offset: uint64(i)}, []byte("b"))
	}
	c.DropTable(1)
	for i := 0; i < 100; i++ {
		if _, ok := c.Get(Key{Table: 1, Offset: uint64(i)}); ok {
			t.Fatalf("dropped table still cached at offset %d", i)
		}
		if _, ok := c.Get(Key{Table: 2, Offset: uint64(i)}); !ok {
			t.Fatalf("unrelated table evicted at offset %d", i)
		}
	}
}

// TestShardedSpreadAndBalance: block-aligned offsets of a handful of
// tables — the worst case for naive modulo striping — must spread across
// shards, and Balance must report the skew honestly.
func TestShardedSpreadAndBalance(t *testing.T) {
	c := NewSharded(1<<20, 8)
	if b := c.Balance(); b != 0 {
		t.Errorf("empty cache Balance = %v, want 0", b)
	}
	for i := 0; i < 512; i++ {
		c.Put(Key{Table: uint64(i % 4), Offset: uint64(i) * 4096}, make([]byte, 64))
	}
	touched := 0
	for _, sh := range c.shards {
		if sh.Len() > 0 {
			touched++
		}
	}
	if touched < len(c.shards)/2 {
		t.Errorf("only %d/%d shards used: block-key hash is not spreading", touched, len(c.shards))
	}
	per := c.ShardStats()
	if len(per) != 8 {
		t.Fatalf("ShardStats returned %d entries", len(per))
	}
	sumMiss := uint64(0)
	for _, ss := range per {
		sumMiss += ss.Misses
	}
	if _, misses, _ := c.Stats(); misses != sumMiss {
		t.Errorf("per-shard miss sum %d != total %d", sumMiss, misses)
	}
	if b := c.Balance(); b < 1 || b > 8 {
		t.Errorf("Balance = %v, want within [1, shard count]", b)
	}
}

func TestShardedConcurrent(t *testing.T) {
	c := NewSharded(64<<10, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := Key{Table: uint64(g), Offset: uint64(i % 64 * 4096)}
				if i%3 == 0 {
					c.Put(k, make([]byte, 128))
				} else {
					c.Get(k)
				}
			}
		}(g)
	}
	wg.Wait()
}
