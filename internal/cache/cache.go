// Package cache implements a byte-bounded LRU block cache shared by all
// sstable readers of a store. Compaction rewrites cold data constantly; a
// block cache keeps the hot read path from paying disk reads for
// frequently accessed blocks, which is how production LSM engines
// (RocksDB, Cassandra) keep read latency flat while compaction churns in
// the background.
package cache

import (
	"container/list"
	"sync"
)

// Key identifies one cached block: a reader-unique table ID plus the
// block's file offset.
type Key struct {
	Table  uint64
	Offset uint64
}

type entry struct {
	key   Key
	value []byte
}

// LRU is a thread-safe least-recently-used cache bounded by total cached
// bytes. The zero value is unusable; construct with New.
type LRU struct {
	mu       sync.Mutex
	capacity int
	used     int
	ll       *list.List // front = most recent
	index    map[Key]*list.Element

	hits, misses uint64
}

// New creates a cache bounded to capacity bytes (of cached values; keys
// and bookkeeping are not counted). capacity must be positive.
func New(capacity int) *LRU {
	if capacity <= 0 {
		capacity = 1
	}
	return &LRU{
		capacity: capacity,
		ll:       list.New(),
		index:    make(map[Key]*list.Element),
	}
}

// Get returns the cached block and whether it was present. The returned
// slice is shared: callers must not modify it.
func (c *LRU) Get(k Key) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.index[k]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*entry).value, true
}

// Put inserts or refreshes a block. Values larger than the whole cache are
// ignored. The cache takes ownership of value; callers must not modify it
// afterwards.
func (c *LRU) Put(k Key, value []byte) {
	if len(value) > c.capacity {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[k]; ok {
		c.used += len(value) - len(el.Value.(*entry).value)
		el.Value.(*entry).value = value
		c.ll.MoveToFront(el)
	} else {
		c.index[k] = c.ll.PushFront(&entry{key: k, value: value})
		c.used += len(value)
	}
	for c.used > c.capacity {
		oldest := c.ll.Back()
		if oldest == nil {
			break
		}
		e := oldest.Value.(*entry)
		c.used -= len(e.value)
		delete(c.index, e.key)
		c.ll.Remove(oldest)
	}
}

// DropTable evicts every block belonging to table; called when an sstable
// is deleted after compaction so its blocks stop occupying cache space.
func (c *LRU) DropTable(table uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*entry)
		if e.key.Table == table {
			c.used -= len(e.value)
			delete(c.index, e.key)
			c.ll.Remove(el)
		}
		el = next
	}
}

// Stats reports cumulative hit/miss counts and current occupancy.
func (c *LRU) Stats() (hits, misses uint64, usedBytes int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.used
}

// Len returns the number of cached blocks.
func (c *LRU) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Sharded is a block cache striped over N independent LRU shards, each
// with its own mutex. A single LRU serializes every Get and Put of every
// reader behind one lock; once the engine's read path stops taking the
// store lock, that cache mutex becomes the next serialization point, so
// the cache is partitioned by a hash of the block key. Capacity is split
// evenly across shards, which bounds total memory at the configured
// budget while letting hot shards evict independently.
type Sharded struct {
	shards []*LRU
	mask   uint64
}

// DefaultShards is the shard count NewSharded selects for n <= 0: enough
// stripes that a handful of cores rarely collide, cheap enough that tiny
// caches are not fragmented into uselessness.
const DefaultShards = 16

// minStripeBytes floors a stripe's capacity. Each LRU refuses values
// larger than its own capacity, so over-striping a small budget would
// silently make moderately large blocks uncacheable (a data block exceeds
// the 4 KiB target by up to one entry, and values can be large); the
// stripe count shrinks before a stripe drops below this admission limit.
const minStripeBytes = 128 << 10

// NewSharded creates a cache bounded to capacity bytes in total, striped
// over n shards (rounded up to a power of two; n <= 0 selects
// DefaultShards). The stripe count is clamped so each stripe keeps at
// least minStripeBytes of budget — a small cache degrades toward a single
// LRU rather than refusing large blocks. Values larger than a stripe's
// capacity remain uncacheable, as with a single LRU of that size.
func NewSharded(capacity, n int) *Sharded {
	if n <= 0 {
		n = DefaultShards
	}
	shards := 1
	for shards < n {
		shards <<= 1
	}
	for shards > 1 && capacity/shards < minStripeBytes {
		shards >>= 1
	}
	if capacity < shards {
		capacity = shards
	}
	s := &Sharded{shards: make([]*LRU, shards), mask: uint64(shards - 1)}
	for i := range s.shards {
		s.shards[i] = New(capacity / shards)
	}
	return s
}

// shardFor picks the stripe for a block key. Table IDs are small sequential
// integers and offsets are block-aligned, so the raw bits are a terrible
// hash; a splitmix64-style finalizer spreads them.
func (s *Sharded) shardFor(k Key) *LRU {
	h := k.Table*0x9e3779b97f4a7c15 ^ k.Offset
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return s.shards[h&s.mask]
}

// Get returns the cached block and whether it was present. The returned
// slice is shared: callers must not modify it.
func (s *Sharded) Get(k Key) ([]byte, bool) { return s.shardFor(k).Get(k) }

// Put inserts or refreshes a block; the cache takes ownership of value.
func (s *Sharded) Put(k Key, value []byte) { s.shardFor(k).Put(k, value) }

// DropTable evicts every block belonging to table from every shard.
func (s *Sharded) DropTable(table uint64) {
	for _, sh := range s.shards {
		sh.DropTable(table)
	}
}

// Stats reports cumulative hit/miss counts and occupancy summed across
// shards.
func (s *Sharded) Stats() (hits, misses uint64, usedBytes int) {
	for _, sh := range s.shards {
		h, m, u := sh.Stats()
		hits += h
		misses += m
		usedBytes += u
	}
	return hits, misses, usedBytes
}

// ShardStat is one stripe's counters, exposed so striping skew (a hot
// table hashing its blocks unevenly) is observable from engine stats.
type ShardStat struct {
	Hits, Misses uint64
	UsedBytes    int
}

// ShardStats reports per-stripe hit/miss/occupancy counters.
func (s *Sharded) ShardStats() []ShardStat {
	out := make([]ShardStat, len(s.shards))
	for i, sh := range s.shards {
		h, m, u := sh.Stats()
		out[i] = ShardStat{Hits: h, Misses: m, UsedBytes: u}
	}
	return out
}

// Balance summarizes striping skew as the ratio of the fullest shard's
// occupancy to the mean occupancy. 1.0 is perfectly even, the shard
// count is the worst case (all blocks hashed onto one stripe), and a
// cache with no blocks at all reports 0. Max/mean rather than max/min:
// a lightly loaded cache legitimately leaves stripes empty, which would
// blow a max/min ratio up without any real skew.
func (s *Sharded) Balance() float64 {
	total, maxUsed := 0, 0
	for _, sh := range s.shards {
		_, _, u := sh.Stats()
		total += u
		if u > maxUsed {
			maxUsed = u
		}
	}
	if total == 0 {
		return 0
	}
	return float64(maxUsed) * float64(len(s.shards)) / float64(total)
}

// Len returns the number of cached blocks across all shards.
func (s *Sharded) Len() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Len()
	}
	return n
}
