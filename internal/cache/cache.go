// Package cache implements a byte-bounded LRU block cache shared by all
// sstable readers of a store. Compaction rewrites cold data constantly; a
// block cache keeps the hot read path from paying disk reads for
// frequently accessed blocks, which is how production LSM engines
// (RocksDB, Cassandra) keep read latency flat while compaction churns in
// the background.
package cache

import (
	"container/list"
	"sync"
)

// Key identifies one cached block: a reader-unique table ID plus the
// block's file offset.
type Key struct {
	Table  uint64
	Offset uint64
}

type entry struct {
	key   Key
	value []byte
}

// LRU is a thread-safe least-recently-used cache bounded by total cached
// bytes. The zero value is unusable; construct with New.
type LRU struct {
	mu       sync.Mutex
	capacity int
	used     int
	ll       *list.List // front = most recent
	index    map[Key]*list.Element

	hits, misses uint64
}

// New creates a cache bounded to capacity bytes (of cached values; keys
// and bookkeeping are not counted). capacity must be positive.
func New(capacity int) *LRU {
	if capacity <= 0 {
		capacity = 1
	}
	return &LRU{
		capacity: capacity,
		ll:       list.New(),
		index:    make(map[Key]*list.Element),
	}
}

// Get returns the cached block and whether it was present. The returned
// slice is shared: callers must not modify it.
func (c *LRU) Get(k Key) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.index[k]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*entry).value, true
}

// Put inserts or refreshes a block. Values larger than the whole cache are
// ignored. The cache takes ownership of value; callers must not modify it
// afterwards.
func (c *LRU) Put(k Key, value []byte) {
	if len(value) > c.capacity {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[k]; ok {
		c.used += len(value) - len(el.Value.(*entry).value)
		el.Value.(*entry).value = value
		c.ll.MoveToFront(el)
	} else {
		c.index[k] = c.ll.PushFront(&entry{key: k, value: value})
		c.used += len(value)
	}
	for c.used > c.capacity {
		oldest := c.ll.Back()
		if oldest == nil {
			break
		}
		e := oldest.Value.(*entry)
		c.used -= len(e.value)
		delete(c.index, e.key)
		c.ll.Remove(oldest)
	}
}

// DropTable evicts every block belonging to table; called when an sstable
// is deleted after compaction so its blocks stop occupying cache space.
func (c *LRU) DropTable(table uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*entry)
		if e.key.Table == table {
			c.used -= len(e.value)
			delete(c.index, e.key)
			c.ll.Remove(el)
		}
		el = next
	}
}

// Stats reports cumulative hit/miss counts and current occupancy.
func (c *LRU) Stats() (hits, misses uint64, usedBytes int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.used
}

// Len returns the number of cached blocks.
func (c *LRU) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
