// Package store partitions the LSM engine into independent shards — the
// in-process analogue of the paper's deployment model, where every server
// compacts its own local sstables. A Store routes each key to one of N
// lsm.DB shards with the same hash the network ring uses
// (cluster.KeyHash), so a key's placement is computed identically whether
// the partitions live in one process or across a cluster.
//
// Each shard is a complete engine: its own directory, WAL, group-commit
// queue and background-compaction maintenance goroutine. Writers on
// different shards never contend — N group-commit leaders append to N WALs
// concurrently — which is what turns the single-leader commit pipeline
// into a parallel one.
//
// Cross-shard semantics are deliberately relaxed where a single DB is
// strict:
//
//   - Write splits a batch by shard and commits the sub-batches through
//     each shard's pipeline concurrently. Each sub-batch is atomic and
//     crash-durable on its shard, but there is no cross-shard commit
//     point: a crash (or a reader racing the commit) can observe some
//     shards' sub-batches without the others.
//   - Scan and Range k-way-merge per-shard iterators into one globally
//     ordered stream. Each shard's view is a point-in-time snapshot, but
//     the snapshots are not taken at the same instant across shards.
//
// A Store with a single shard behaves exactly like the DB it wraps.
package store

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/iterator"
	"repro/internal/lsm"
	"repro/internal/vfs"
)

// markerName is the file in the store root recording the shard count. The
// count is fixed at creation: reopening with a different count would split
// the key space differently and orphan existing data, so Open refuses it.
const markerName = "SHARDS"

// Options tunes a Store. The embedded lsm.Options apply to every shard,
// with two adjustments: the block-cache budget is split evenly across
// shards (so BlockCacheBytes stays the total), and each shard's skiplist
// seed is offset by its index. MemtableBytes remains per shard — total
// buffered memory is Shards × MemtableBytes.
type Options struct {
	// Shards is the number of partitions. Zero adopts the count persisted
	// in the store directory, or 1 for a new store. Opening an existing
	// store with a different non-zero count is an error. A directory
	// holding a pre-store unsharded lsm.DB opens as a single legacy shard
	// rooted at the directory itself (Shards above 1 is refused there).
	Shards int
	lsm.Options
}

// Store is a sharded LSM store exposing the lsm.DB API. All methods are
// safe for concurrent use.
type Store struct {
	dir    string
	shards []*lsm.DB
	// subs pools per-Write scratch sub-batches, one slot per shard.
	subs sync.Pool
}

// readMarker parses the persisted shard count, returning 0 when absent.
func readMarker(fsys vfs.FS, dir string) (int, error) {
	data, err := fsys.ReadFile(filepath.Join(dir, markerName))
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("store: read shard marker: %w", err)
	}
	n, err := strconv.Atoi(strings.TrimSpace(string(data)))
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("store: corrupt shard marker %q", strings.TrimSpace(string(data)))
	}
	return n, nil
}

// writeMarker durably persists the shard count: write-temp, fsync, rename,
// fsync-dir — the same sequence the engine's manifest uses, so a crash
// leaves either no marker or a complete one, never a torn file that would
// refuse every subsequent Open.
func writeMarker(fsys vfs.FS, dir string, n int) error {
	tmp := filepath.Join(dir, markerName+".tmp")
	f, err := fsys.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: write shard marker: %w", err)
	}
	if _, err := fmt.Fprintf(f, "%d\n", n); err != nil {
		f.Close()
		return fmt.Errorf("store: write shard marker: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: sync shard marker: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: close shard marker: %w", err)
	}
	if err := fsys.Rename(tmp, filepath.Join(dir, markerName)); err != nil {
		return fmt.Errorf("store: rename shard marker: %w", err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("store: sync store dir: %w", err)
	}
	return nil
}

// IsSharded reports whether dir holds a sharded store layout (a SHARDS
// marker). Callers deciding between a plain lsm.DB and a Store — the kv
// façade's Open — use it to adopt whatever the directory already is.
func IsSharded(dir string) (bool, error) {
	return IsShardedFS(vfs.Default, dir)
}

// IsShardedFS is IsSharded reading through fsys.
func IsShardedFS(fsys vfs.FS, dir string) (bool, error) {
	n, err := readMarker(fsys, dir)
	return n > 0, err
}

// legacyLayout reports whether dir holds a pre-store unsharded lsm.DB. A
// manifest is only cut at the first flush, so a store whose acknowledged
// data still lives entirely in its WAL must be recognized too — missing it
// would re-initialize the directory and silently lose those writes.
func legacyLayout(fsys vfs.FS, dir string) (bool, error) {
	for _, name := range []string{"MANIFEST", "wal.log"} {
		if _, err := fsys.Stat(filepath.Join(dir, name)); err == nil {
			return true, nil
		} else if !errors.Is(err, os.ErrNotExist) {
			return false, fmt.Errorf("store: probe %s: %w", name, err)
		}
	}
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		return false, fmt.Errorf("store: probe sstables: %w", err)
	}
	for _, ent := range ents {
		if !ent.IsDir() && strings.HasSuffix(ent.Name(), ".sst") {
			return true, nil
		}
	}
	return false, nil
}

// Open opens (creating if necessary) a sharded store rooted at dir, with
// shard i living in dir/shard-NNN. All shard WALs replay in parallel, so
// crash recovery costs one shard's replay time, not the sum.
func Open(dir string, opts Options) (*Store, error) {
	if opts.Shards < 0 {
		return nil, fmt.Errorf("store: negative shard count %d", opts.Shards)
	}
	fsys := opts.FS
	if fsys == nil {
		fsys = vfs.Default
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: mkdir: %w", err)
	}
	persisted, err := readMarker(fsys, dir)
	if err != nil {
		return nil, err
	}
	n := opts.Shards
	legacy := false
	writeMarkerAfterOpen := false
	switch {
	case persisted == 0:
		// A directory already holding an unsharded lsm.DB (a pre-store
		// layout: manifest, WAL or sstables in the root) is adopted in
		// place as a single legacy shard rooted at dir itself — no marker
		// is written, so the directory keeps working with plain lsm.Open
		// too. Re-sharding it would strand its data, so a shard count
		// above 1 is refused.
		isLegacy, err := legacyLayout(fsys, dir)
		if err != nil {
			return nil, err
		}
		if isLegacy {
			if n > 1 {
				return nil, fmt.Errorf("store: %s holds an unsharded lsm store; cannot shard over it (open with Shards <= 1)", dir)
			}
			n, legacy = 1, true
			break
		}
		if n == 0 {
			n = 1
		}
		// The marker is committed only after every shard opens, so a
		// failed first open does not pin a shard count the caller may
		// want to retry differently.
		writeMarkerAfterOpen = true
	case n == 0:
		n = persisted
	case n != persisted:
		return nil, fmt.Errorf("store: %s was created with %d shards, cannot open with %d", dir, persisted, n)
	}

	// Split the block-cache budget so BlockCacheBytes bounds the store, not
	// each shard. Zero means "default total" (the lsm default, 8 MiB);
	// negative disables caching and passes through unchanged. The floor of
	// one byte only keeps the per-shard value from hitting lsm's 0-means-
	// default rule — the configured total stays the bound.
	shardOpts := opts.Options
	if shardOpts.BlockCacheBytes == 0 {
		shardOpts.BlockCacheBytes = lsm.DefaultBlockCacheBytes
	}
	if shardOpts.BlockCacheBytes > 0 {
		per := shardOpts.BlockCacheBytes / n
		if per < 1 {
			per = 1
		}
		shardOpts.BlockCacheBytes = per
	}

	// All shards share one writers-in-flight gauge so each shard's
	// group-commit leader can tell that sibling shards' writers are
	// streaming in and yield for group formation (see lsm.Options.WriteLoad).
	if shardOpts.WriteLoad == nil {
		shardOpts.WriteLoad = new(atomic.Int32)
	}

	s := &Store{dir: dir, shards: make([]*lsm.DB, n)}
	s.subs.New = func() any { return make([]lsm.WriteBatch, n) }
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := range s.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			so := shardOpts
			so.Seed += int64(i)
			sdir := s.shardDir(i)
			if legacy {
				sdir = dir // adopted unsharded layout: the single shard is the root
			}
			s.shards[i], errs[i] = lsm.Open(sdir, so)
		}(i)
	}
	wg.Wait()
	closeAll := func() {
		for _, db := range s.shards {
			if db != nil {
				db.Close()
			}
		}
	}
	for _, err := range errs {
		if err != nil {
			closeAll()
			return nil, err
		}
	}
	if writeMarkerAfterOpen {
		if err := writeMarker(fsys, dir, n); err != nil {
			closeAll()
			return nil, err
		}
	}
	return s, nil
}

func (s *Store) shardDir(i int) string {
	return filepath.Join(s.dir, fmt.Sprintf("shard-%03d", i))
}

// ShardCount returns the number of shards.
func (s *Store) ShardCount() int { return len(s.shards) }

// ShardFor returns the index of the shard owning key.
func (s *Store) ShardFor(key []byte) int {
	return int(cluster.KeyHash(key) % uint64(len(s.shards)))
}

// Shard returns shard i's engine, for per-shard inspection (stats, tests).
func (s *Store) Shard(i int) *lsm.DB { return s.shards[i] }

// Close closes every shard; shard errors are combined.
func (s *Store) Close() error {
	return s.forAll(func(db *lsm.DB) error { return db.Close() })
}

// forAll runs fn on every shard concurrently, combining shard errors.
func (s *Store) forAll(fn func(db *lsm.DB) error) error {
	return s.forAllIndexed(func(_ int, db *lsm.DB) error { return fn(db) })
}

// Put stores key → value on the owning shard.
func (s *Store) Put(key, value []byte) error {
	return s.shards[s.ShardFor(key)].Put(key, value)
}

// PutContext is Put honoring ctx on the owning shard's commit pipeline.
func (s *Store) PutContext(ctx context.Context, key, value []byte) error {
	return s.shards[s.ShardFor(key)].PutContext(ctx, key, value)
}

// Get returns the value stored for key, or lsm.ErrNotFound.
func (s *Store) Get(key []byte) ([]byte, error) {
	return s.shards[s.ShardFor(key)].Get(key)
}

// GetContext is Get honoring ctx.
func (s *Store) GetContext(ctx context.Context, key []byte) ([]byte, error) {
	return s.shards[s.ShardFor(key)].GetContext(ctx, key)
}

// Delete removes key on the owning shard.
func (s *Store) Delete(key []byte) error {
	return s.shards[s.ShardFor(key)].Delete(key)
}

// DeleteContext is Delete honoring ctx on the owning shard's pipeline.
func (s *Store) DeleteContext(ctx context.Context, key []byte) error {
	return s.shards[s.ShardFor(key)].DeleteContext(ctx, key)
}

// Write commits the batch, splitting it by owning shard and committing the
// sub-batches through each shard's group-commit pipeline concurrently.
// Within one shard the sub-batch is atomic — all of its operations are
// recovered or none — and operations on the same key keep their batch
// order. Across shards atomicity is relaxed: there is no global commit
// point, so a crash between shard commits can persist some sub-batches
// without the others, and a concurrent reader can observe the same. An
// error means at least one sub-batch failed; others may have committed.
func (s *Store) Write(b *lsm.WriteBatch) error {
	return s.WriteContext(context.Background(), b)
}

// WriteContext is Write honoring ctx: every shard's sub-commit inherits
// the context, so a cancellation that lands while sub-batches are parked
// in their shards' commit queues releases those pipeline slots. As with
// errors, cancellation is not atomic across shards — some sub-batches may
// have committed before the context expired.
func (s *Store) WriteContext(ctx context.Context, b *lsm.WriteBatch) error {
	if b == nil || b.Len() == 0 {
		return nil
	}
	// Validate before splitting: a malformed or oversized batch must
	// reject whole, not after some shards already committed their
	// sub-batches.
	for i := 0; i < b.Len(); i++ {
		if key, _, _ := b.Op(i); len(key) == 0 {
			return fmt.Errorf("store: empty key")
		}
	}
	if b.SizeBytes() > lsm.MaxBatchBytes {
		return fmt.Errorf("%w: %d bytes > %d", lsm.ErrBatchTooLarge, b.SizeBytes(), lsm.MaxBatchBytes)
	}
	if len(s.shards) == 1 {
		return s.shards[0].WriteContext(ctx, b)
	}
	subs := s.subs.Get().([]lsm.WriteBatch)
	defer func() {
		for i := range subs {
			subs[i].Reset()
		}
		s.subs.Put(subs)
	}()
	for i := 0; i < b.Len(); i++ {
		key, value, del := b.Op(i)
		sub := &subs[s.ShardFor(key)]
		if del {
			sub.Delete(key)
		} else {
			sub.Put(key, value)
		}
	}
	// The last non-empty sub-batch commits on the caller's goroutine, so a
	// batch that lands on one shard spawns no goroutines at all.
	last := -1
	for i := range subs {
		if !subs[i].Empty() {
			last = i
		}
	}
	errs := make([]error, len(subs))
	var wg sync.WaitGroup
	for i := range subs {
		if subs[i].Empty() || i == last {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = s.shards[i].WriteContext(ctx, &subs[i])
		}(i)
	}
	errs[last] = s.shards[last].WriteContext(ctx, &subs[last])
	wg.Wait()
	return errors.Join(errs...)
}

// Flush forces every shard's memtable to an sstable.
func (s *Store) Flush() error {
	return s.forAll(func(db *lsm.DB) error { return db.Flush() })
}

// Scan invokes fn for every live key-value pair across all shards in
// ascending key order. See Range for snapshot semantics.
func (s *Store) Scan(fn func(key, value []byte) error) error {
	return s.Range(nil, nil, fn)
}

// Range invokes fn for every live key-value pair with start <= key < end
// in ascending global key order, k-way-merging one snapshot iterator per
// shard. Hash partitioning makes shard key sets disjoint, so the merge
// needs no cross-shard dedup. Each shard's iterator is a consistent
// point-in-time snapshot of that shard, but the per-shard snapshots are
// acquired sequentially, not atomically across shards.
func (s *Store) Range(start, end []byte, fn func(key, value []byte) error) error {
	return s.RangeContext(context.Background(), start, end, fn)
}

// RangeContext is Range honoring ctx: the k-way merge loop checks for
// expiry periodically, so a cancelled scan releases every shard's
// snapshot promptly instead of draining the whole key space.
func (s *Store) RangeContext(ctx context.Context, start, end []byte, fn func(key, value []byte) error) error {
	it, release, err := s.NewIterator(start, end)
	if err != nil {
		return err
	}
	defer release()
	return lsm.RangeLoop(ctx, it, fn)
}

// NewIterator returns an iterator over the live entries of every shard
// with start <= key < end (nil bounds are open), k-way-merged into one
// globally ordered stream, plus a release function the caller must invoke
// when done. Per-shard snapshots are acquired sequentially, so the merged
// view is consistent per shard but not across shards.
func (s *Store) NewIterator(start, end []byte) (iterator.Iterator, func(), error) {
	children := make([]iterator.Iterator, 0, len(s.shards))
	releases := make([]func(), 0, len(s.shards))
	releaseAll := func() {
		for _, rel := range releases {
			rel()
		}
	}
	for _, db := range s.shards {
		it, release, err := db.NewIterator(start, end)
		if err != nil {
			releaseAll()
			return nil, nil, err
		}
		releases = append(releases, release)
		children = append(children, it)
	}
	return iterator.NewMerging(children...), releaseAll, nil
}

// Snapshot captures a point-in-time view of every shard. As with Write
// and Range, the per-shard snapshots are acquired sequentially: each
// shard's view is internally consistent, but a concurrent cross-shard
// batch may be split across the acquisition instants.
func (s *Store) Snapshot() (*Snapshot, error) {
	snap := &Snapshot{store: s, shards: make([]*lsm.Snapshot, len(s.shards))}
	for i, db := range s.shards {
		sn, err := db.Snapshot()
		if err != nil {
			snap.Release()
			return nil, err
		}
		snap.shards[i] = sn
	}
	return snap, nil
}

// Snapshot is a point-in-time read view of the whole store: one lsm
// snapshot per shard, routed and merged with the same hash partitioning
// the live store uses. Safe for concurrent use; Release is idempotent.
type Snapshot struct {
	store  *Store
	shards []*lsm.Snapshot
}

// Get returns the value stored for key as of the snapshot, or
// lsm.ErrNotFound.
func (sn *Snapshot) Get(key []byte) ([]byte, error) {
	return sn.shards[sn.store.ShardFor(key)].Get(key)
}

// NewIterator returns a merged iterator over every shard's snapshot with
// start <= key < end (nil bounds are open), plus a release function.
func (sn *Snapshot) NewIterator(start, end []byte) (iterator.Iterator, func(), error) {
	children := make([]iterator.Iterator, 0, len(sn.shards))
	releases := make([]func(), 0, len(sn.shards))
	releaseAll := func() {
		for _, rel := range releases {
			rel()
		}
	}
	for _, shard := range sn.shards {
		it, release, err := shard.NewIterator(start, end)
		if err != nil {
			releaseAll()
			return nil, nil, err
		}
		releases = append(releases, release)
		children = append(children, it)
	}
	return iterator.NewMerging(children...), releaseAll, nil
}

// Release drops every shard snapshot's table references.
func (sn *Snapshot) Release() {
	for _, shard := range sn.shards {
		if shard != nil {
			shard.Release()
		}
	}
}

// MajorCompact runs a major compaction on every shard concurrently — the
// paper's picture of many servers compacting locally, in miniature — and
// returns the aggregated result: summed table counts, costs and I/O, the
// concatenated per-merge stats, and the wall-clock duration of the slowest
// shard. Per-shard results are available through Shard(i).
func (s *Store) MajorCompact(strategy string, k int, seed int64) (*lsm.CompactionResult, error) {
	start := time.Now()
	results := make([]*lsm.CompactionResult, len(s.shards))
	err := s.forAllIndexed(func(i int, db *lsm.DB) error {
		res, err := db.MajorCompact(strategy, k, seed+int64(i))
		results[i] = res
		return err
	})
	if err != nil {
		return nil, err
	}
	agg := &lsm.CompactionResult{Strategy: strategy, Mode: results[0].Mode}
	for _, res := range results {
		agg.TablesBefore += res.TablesBefore
		agg.TablesAfter += res.TablesAfter
		agg.StepStats = append(agg.StepStats, res.StepStats...)
		agg.BytesRead += res.BytesRead
		agg.BytesWritten += res.BytesWritten
		agg.CostSimple += res.CostSimple
		agg.CostActual += res.CostActual
	}
	agg.Duration = time.Since(start)
	return agg, nil
}

// forAllIndexed is forAll with the shard index.
func (s *Store) forAllIndexed(fn func(i int, db *lsm.DB) error) error {
	if len(s.shards) == 1 {
		return fn(0, s.shards[0])
	}
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for i, db := range s.shards {
		wg.Add(1)
		go func(i int, db *lsm.DB) {
			defer wg.Done()
			errs[i] = fn(i, db)
		}(i, db)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// BackgroundErr returns the first error any shard's background compactor
// hit, if any.
func (s *Store) BackgroundErr() error {
	for _, db := range s.shards {
		if err := db.BackgroundErr(); err != nil {
			return err
		}
	}
	return nil
}

// statePhaseRank orders compaction phases by how deep into a compaction a
// shard is, so the aggregate reports the busiest shard's phase.
var statePhaseRank = map[string]int{
	lsm.CompactionIdle.String():     0,
	lsm.CompactionPlanning.String(): 1,
	lsm.CompactionMerging.String():  2,
	lsm.CompactionSwapping.String(): 3,
}

// Stats returns store statistics aggregated across shards; see Aggregate.
// Use ShardStats for the per-shard breakdown, or call Aggregate on a
// ShardStats slice to get both from one pass over the shards.
func (s *Store) Stats() lsm.Stats {
	return Aggregate(s.ShardStats())
}

// Aggregate combines per-shard statistics into one store-wide view:
// counters are summed, WALRecoveryTruncated is true if any shard recovered
// a truncated log, and CompactionState reports the busiest phase any shard
// is in (idle < planning < merging < swapping).
func Aggregate(shardStats []lsm.Stats) lsm.Stats {
	var agg lsm.Stats
	agg.CompactionState = lsm.CompactionIdle.String()
	for _, st := range shardStats {
		agg.Tables += st.Tables
		agg.TableBytes += st.TableBytes
		agg.MemtableKeys += st.MemtableKeys
		agg.Flushes += st.Flushes
		agg.MinorCompactions += st.MinorCompactions
		agg.MajorCompactions += st.MajorCompactions
		agg.WriteStalls += st.WriteStalls
		agg.WriteStallTime += st.WriteStallTime
		agg.BytesFlushed += st.BytesFlushed
		agg.BytesCompacted += st.BytesCompacted
		for name, n := range st.CompactionPicks {
			if agg.CompactionPicks == nil {
				agg.CompactionPicks = make(map[string]uint64)
			}
			agg.CompactionPicks[name] += n
		}
		agg.Generation += st.Generation
		if statePhaseRank[st.CompactionState] > statePhaseRank[agg.CompactionState] {
			agg.CompactionState = st.CompactionState
		}
		agg.BlockCacheHits += st.BlockCacheHits
		agg.BlockCacheMisses += st.BlockCacheMisses
		// Striping skew is a per-cache ratio, not summable: report the
		// worst shard's imbalance.
		if st.BlockCacheShardBalance > agg.BlockCacheShardBalance {
			agg.BlockCacheShardBalance = st.BlockCacheShardBalance
		}
		agg.FilterNegatives += st.FilterNegatives
		agg.FilterFalsePositives += st.FilterFalsePositives
		agg.GroupCommits += st.GroupCommits
		agg.GroupedWrites += st.GroupedWrites
		agg.WALSyncs += st.WALSyncs
		agg.WALRecoveredRecords += st.WALRecoveredRecords
		agg.WALRecoveredBatches += st.WALRecoveredBatches
		agg.WALRecoveredBytes += st.WALRecoveredBytes
		agg.WALRecoveryTruncated = agg.WALRecoveryTruncated || st.WALRecoveryTruncated
		// Fault-resilience counters: a store is read-only for writes once
		// any shard is (a cross-shard batch touching that shard fails), so
		// the aggregate ORs the flag; the rest are summable.
		agg.ReadOnly = agg.ReadOnly || st.ReadOnly
		agg.QuarantinedTables += st.QuarantinedTables
		agg.CleanupFailures += st.CleanupFailures
		agg.BackgroundRetries += st.BackgroundRetries
		agg.BackgroundFailures += st.BackgroundFailures
	}
	return agg
}

// ShardStats returns each shard's statistics, indexed by shard.
func (s *Store) ShardStats() []lsm.Stats {
	out := make([]lsm.Stats, len(s.shards))
	for i, db := range s.shards {
		out[i] = db.Stats()
	}
	return out
}
