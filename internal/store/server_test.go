package store

import (
	"context"
	"errors"
	"fmt"
	"net"
	"testing"

	"repro/internal/kvnet"
	"repro/internal/lsm"
)

// TestStoreOverKvnet serves a 4-shard store through the unchanged kvnet
// protocol — the lsmserver -shards deployment — and exercises every op
// end to end: routed puts/gets/deletes, an atomic cross-shard batch, a
// globally ordered scan, fan-in flush, per-shard major compaction and
// aggregated stats.
func TestStoreOverKvnet(t *testing.T) {
	s := openStore(t, 4, lsm.Options{MemtableBytes: 32 << 10})
	srv := kvnet.NewServer(s)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })

	c, err := kvnet.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 600
	for i := 0; i < n; i++ {
		if err := c.Put(context.Background(), []byte(fmt.Sprintf("key-%05d", i)), []byte(fmt.Sprint(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Write(context.Background(), []kvnet.BatchOp{
		{Key: []byte("batch-a"), Value: []byte("1")},
		{Key: []byte("batch-b"), Value: []byte("2")},
		{Delete: true, Key: []byte("key-00000")},
	}); err != nil {
		t.Fatal(err)
	}
	if v, err := c.Get(context.Background(), []byte("key-00123")); err != nil || string(v) != "123" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if _, err := c.Get(context.Background(), []byte("key-00000")); !errors.Is(err, kvnet.ErrNotFound) {
		t.Fatalf("deleted key Get = %v", err)
	}
	if err := c.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	entries, err := c.Scan(context.Background(), []byte("key-"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != n-1 {
		t.Fatalf("scan returned %d entries, want %d", len(entries), n-1)
	}
	for i := 1; i < len(entries); i++ {
		if string(entries[i-1].Key) >= string(entries[i].Key) {
			t.Fatal("cross-shard scan out of global order")
		}
	}
	// Build a second generation of tables so the fan-out compaction has
	// real merging to do on every shard.
	for i := 0; i < n; i++ {
		if err := c.Put(context.Background(), []byte(fmt.Sprintf("key-%05d", i)), []byte("v2")); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	info, err := c.Compact(context.Background(), "BT(I)", 2)
	if err != nil {
		t.Fatal(err)
	}
	if info.TablesBefore < 4 || info.Merges == 0 {
		t.Fatalf("compaction over %d tables in %d merges; want per-shard merges", info.TablesBefore, info.Merges)
	}
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Tables != 4 {
		t.Errorf("after per-shard major compaction Tables = %d, want 4 (one per shard)", st.Tables)
	}
	if st.GroupedWrites == 0 {
		t.Error("aggregated GroupedWrites is zero")
	}
	if v, err := c.Get(context.Background(), []byte("key-00123")); err != nil || string(v) != "v2" {
		t.Fatalf("Get after compaction = %q, %v", v, err)
	}
}
