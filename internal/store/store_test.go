package store

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/lsm"
	"repro/internal/vfs"
	"repro/internal/wal"
)

func openStore(t *testing.T, shards int, opts lsm.Options) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), Options{Shards: shards, Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

type kv struct{ k, v string }

func collect(t *testing.T, scan func(func(key, value []byte) error) error) []kv {
	t.Helper()
	var out []kv
	if err := scan(func(k, v []byte) error {
		out = append(out, kv{string(k), string(v)})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestStoreEquivalence is the observational-equivalence property test: a
// sharded store with N ∈ {1, 2, 8} shards must behave exactly like a
// single lsm.DB under random Put/Delete/Write/Scan sequences interleaved
// with flushes and major compactions.
func TestStoreEquivalence(t *testing.T) {
	for _, shards := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			s := openStore(t, shards, lsm.Options{MemtableBytes: 16 << 10, Seed: 3})
			ref, err := lsm.Open(t.TempDir(), lsm.Options{MemtableBytes: 16 << 10, Seed: 4})
			if err != nil {
				t.Fatal(err)
			}
			defer ref.Close()

			rng := rand.New(rand.NewSource(int64(shards) * 71))
			key := func() []byte { return []byte(fmt.Sprintf("key-%04d", rng.Intn(800))) }
			const ops = 3000
			for i := 0; i < ops; i++ {
				switch rng.Intn(10) {
				case 0: // delete
					k := key()
					if err := s.Delete(k); err != nil {
						t.Fatal(err)
					}
					if err := ref.Delete(k); err != nil {
						t.Fatal(err)
					}
				case 1, 2: // multi-op batch, scattering across shards
					var sb, rb lsm.WriteBatch
					for j := 0; j < 1+rng.Intn(6); j++ {
						k := key()
						if rng.Intn(4) == 0 {
							sb.Delete(k)
							rb.Delete(k)
						} else {
							v := []byte(fmt.Sprintf("batch-%d-%d", i, j))
							sb.Put(k, v)
							rb.Put(k, v)
						}
					}
					if err := s.Write(&sb); err != nil {
						t.Fatal(err)
					}
					if err := ref.Write(&rb); err != nil {
						t.Fatal(err)
					}
				case 3:
					if i%500 == 3 { // occasional maintenance
						if err := s.Flush(); err != nil {
							t.Fatal(err)
						}
						if err := ref.Flush(); err != nil {
							t.Fatal(err)
						}
						if _, err := s.MajorCompact("BT(I)", 2, int64(i)); err != nil {
							t.Fatal(err)
						}
						if _, err := ref.MajorCompact("BT(I)", 2, int64(i)); err != nil {
							t.Fatal(err)
						}
					}
				default:
					k, v := key(), []byte(fmt.Sprintf("val-%d", i))
					if err := s.Put(k, v); err != nil {
						t.Fatal(err)
					}
					if err := ref.Put(k, v); err != nil {
						t.Fatal(err)
					}
				}
				if i%1000 == 999 {
					got, want := collect(t, s.Scan), collect(t, ref.Scan)
					if len(got) != len(want) {
						t.Fatalf("op %d: scan lengths diverge: store %d, ref %d", i, len(got), len(want))
					}
					for j := range got {
						if got[j] != want[j] {
							t.Fatalf("op %d: scan diverges at %d: store %+v, ref %+v", i, j, got[j], want[j])
						}
					}
				}
			}

			// Point reads agree over the whole key space.
			for i := 0; i < 800; i++ {
				k := []byte(fmt.Sprintf("key-%04d", i))
				gv, gerr := s.Get(k)
				wv, werr := ref.Get(k)
				if !errors.Is(gerr, werr) && (gerr != nil || werr != nil) {
					t.Fatalf("Get(%s): store err %v, ref err %v", k, gerr, werr)
				}
				if !bytes.Equal(gv, wv) {
					t.Fatalf("Get(%s): store %q, ref %q", k, gv, wv)
				}
			}

			// Bounded ranges agree, including bounds that split shards.
			got := collect(t, func(fn func(k, v []byte) error) error {
				return s.Range([]byte("key-0100"), []byte("key-0500"), fn)
			})
			want := collect(t, func(fn func(k, v []byte) error) error {
				return ref.Range([]byte("key-0100"), []byte("key-0500"), fn)
			})
			if len(got) != len(want) {
				t.Fatalf("range lengths diverge: store %d, ref %d", len(got), len(want))
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("range diverges at %d: store %+v, ref %+v", j, got[j], want[j])
				}
			}

			// Scan output globally sorted (the k-way merge's contract).
			for j := 1; j < len(got); j++ {
				if got[j-1].k >= got[j].k {
					t.Fatalf("merged scan out of order: %q before %q", got[j-1].k, got[j].k)
				}
			}

			// And survives a reopen (all shard WALs replay in parallel).
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			s2, err := Open(s.dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Close()
			if s2.ShardCount() != shards {
				t.Fatalf("reopen adopted %d shards, want %d", s2.ShardCount(), shards)
			}
			got2, want2 := collect(t, s2.Scan), collect(t, ref.Scan)
			if len(got2) != len(want2) {
				t.Fatalf("post-reopen scan lengths diverge: %d vs %d", len(got2), len(want2))
			}
			for j := range got2 {
				if got2[j] != want2[j] {
					t.Fatalf("post-reopen scan diverges at %d", j)
				}
			}
		})
	}
}

// batchTag extracts the "gNNbNNN" batch tag from a crash-test key.
func batchTag(key []byte) string {
	s := string(key)
	if i := strings.IndexByte(s, '-'); i >= 0 {
		return s[:i]
	}
	return s
}

// TestStoreCrashRecoveryPerShard kills a sharded store mid-write —
// concurrent writers commit tagged cross-shard batches, then every shard's
// WAL is truncated at an independent arbitrary offset, simulating a crash
// with different amounts of each WAL durable. Every shard must recover a
// prefix-closed, sub-batch-atomic state: for each shard, the recovered
// sub-batches are a prefix of that shard's commit order, and each
// sub-batch's keys on that shard are all present or all absent. (There is
// deliberately no cross-shard prefix property — the documented relaxed
// atomicity of cross-shard writes.)
func TestStoreCrashRecoveryPerShard(t *testing.T) {
	const shards = 4
	dir := t.TempDir()
	s, err := Open(dir, Options{
		Shards:  shards,
		Options: lsm.Options{SyncWAL: true, MemtableBytes: 256 << 20, Seed: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	const (
		writers = 8
		batches = 20
		keysPer = 6 // enough keys that most batches span several shards
	)
	var wg sync.WaitGroup
	var writeErr atomic.Value
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var b lsm.WriteBatch
			for bi := 0; bi < batches; bi++ {
				b.Reset()
				tag := fmt.Sprintf("g%02db%03d", g, bi)
				for j := 0; j < keysPer; j++ {
					b.Put([]byte(fmt.Sprintf("%s-k%d", tag, j)), []byte(tag))
				}
				if err := s.Write(&b); err != nil {
					writeErr.CompareAndSwap(nil, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err, _ := writeErr.Load().(error); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Per shard: the full WAL bytes, the sub-batch commit order, and each
	// sub-batch's key count on that shard.
	walData := make([][]byte, shards)
	orders := make([][]string, shards)
	expect := make([]map[string]int, shards)
	for sh := 0; sh < shards; sh++ {
		path := filepath.Join(dir, fmt.Sprintf("shard-%03d", sh), "wal.log")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		walData[sh] = data
		expect[sh] = make(map[string]int)
		if _, err := wal.Replay(vfs.Default, path, func(r wal.Record) error {
			tag := batchTag(r.Key)
			if expect[sh][tag] == 0 {
				orders[sh] = append(orders[sh], tag)
			}
			expect[sh][tag]++
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}

	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 12; trial++ {
		cdir := t.TempDir()
		if err := os.WriteFile(filepath.Join(cdir, markerName), []byte("4\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		cuts := make([]int, shards)
		for sh := 0; sh < shards; sh++ {
			switch trial {
			case 0:
				cuts[sh] = len(walData[sh]) // clean crash: everything durable
			case 1:
				cuts[sh] = 0 // crash before any WAL write
			default:
				cuts[sh] = rng.Intn(len(walData[sh]) + 1)
			}
			sdir := filepath.Join(cdir, fmt.Sprintf("shard-%03d", sh))
			if err := os.MkdirAll(sdir, 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(sdir, "wal.log"), walData[sh][:cuts[sh]], 0o644); err != nil {
				t.Fatal(err)
			}
		}
		s2, err := Open(cdir, Options{})
		if err != nil {
			t.Fatalf("trial %d: reopen: %v", trial, err)
		}
		if s2.ShardCount() != shards {
			t.Fatalf("trial %d: adopted %d shards", trial, s2.ShardCount())
		}
		// Group the recovered keys per shard per tag.
		recovered := make([]map[string]int, shards)
		for sh := range recovered {
			recovered[sh] = make(map[string]int)
		}
		err = s2.Scan(func(k, v []byte) error {
			tag := batchTag(k)
			if string(v) != tag {
				return fmt.Errorf("key %s has value %q, want %q", k, v, tag)
			}
			recovered[s2.ShardFor(k)][tag]++
			return nil
		})
		if err != nil {
			t.Fatalf("trial %d: scan: %v", trial, err)
		}
		for sh := 0; sh < shards; sh++ {
			// (a) Sub-batch atomicity: a shard holds all of its slice of a
			// batch or none of it.
			for tag, n := range recovered[sh] {
				if n != expect[sh][tag] {
					t.Fatalf("trial %d shard %d cut %d: batch %s partially applied: %d/%d keys",
						trial, sh, cuts[sh], tag, n, expect[sh][tag])
				}
			}
			// (b) Prefix-closedness in the shard's commit order.
			for i, tag := range orders[sh] {
				if _, ok := recovered[sh][tag]; ok != (i < len(recovered[sh])) {
					t.Fatalf("trial %d shard %d cut %d: recovered %d sub-batches but #%d (%s) present=%v: not a prefix",
						trial, sh, cuts[sh], len(recovered[sh]), i, tag, ok)
				}
			}
			// (c) Acknowledged durability on a clean crash.
			if cuts[sh] == len(walData[sh]) && len(recovered[sh]) != len(orders[sh]) {
				t.Fatalf("trial %d shard %d: full WAL recovered %d/%d sub-batches",
					trial, sh, len(recovered[sh]), len(orders[sh]))
			}
		}
		s2.Close()
	}
}

// TestStoreRaceShards4 is the -race suite for the sharded store: mixed
// Put/Delete/cross-shard Write against Get/Scan on 4 shards while tiny
// memtables force constant flushes and per-shard background compactions
// churn every shard's table set.
func TestStoreRaceShards4(t *testing.T) {
	// The 4 KiB per-shard memtable against 4 writers × 60 keys × ~300-byte
	// values keeps every shard flushing (the key set splits 4 ways, and
	// overwrites of live keys do not grow a memtable).
	s := openStore(t, 4, lsm.Options{
		MemtableBytes: 4 << 10,
		Background:    &lsm.BackgroundConfig{Trigger: 4, Stall: 10, Strategy: "BT(I)", K: 3},
		Seed:          11,
	})

	const (
		writers      = 4
		opsPerWriter = 180
		keysPer      = 60
	)
	var (
		wg      sync.WaitGroup
		auxWG   sync.WaitGroup
		stop    atomic.Bool
		testErr atomic.Value
	)
	fail := func(err error) { testErr.CompareAndSwap(nil, err) }
	pad := strings.Repeat("x", 256)

	finals := make([]map[string]string, writers)
	for w := 0; w < writers; w++ {
		finals[w] = make(map[string]string)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			final := finals[w]
			var b lsm.WriteBatch
			for i := 0; i < opsPerWriter; i++ {
				key := fmt.Sprintf("w%d-key-%03d", w, i%keysPer)
				switch i % 7 {
				case 3:
					if err := s.Delete([]byte(key)); err != nil {
						fail(fmt.Errorf("writer %d delete: %w", w, err))
						return
					}
					delete(final, key)
				case 5: // cross-shard batch: two puts and a delete
					b.Reset()
					k2 := fmt.Sprintf("w%d-key-%03d", w, (i+1)%keysPer)
					k3 := fmt.Sprintf("w%d-key-%03d", w, (i+2)%keysPer)
					v := fmt.Sprintf("w%d-batch-%d-%s", w, i, pad)
					b.Put([]byte(key), []byte(v))
					b.Put([]byte(k2), []byte(v))
					b.Delete([]byte(k3))
					if err := s.Write(&b); err != nil {
						fail(fmt.Errorf("writer %d batch: %w", w, err))
						return
					}
					final[key], final[k2] = v, v
					delete(final, k3)
				default:
					v := fmt.Sprintf("w%d-val-%d-%s", w, i, pad)
					if err := s.Put([]byte(key), []byte(v)); err != nil {
						fail(fmt.Errorf("writer %d put: %w", w, err))
						return
					}
					final[key] = v
				}
			}
		}(w)
	}

	for r := 0; r < 2; r++ {
		auxWG.Add(1)
		go func(r int) {
			defer auxWG.Done()
			for i := 0; !stop.Load(); i++ {
				key := fmt.Sprintf("w%d-key-%03d", i%writers, i%keysPer)
				if _, err := s.Get([]byte(key)); err != nil && !errors.Is(err, lsm.ErrNotFound) {
					fail(fmt.Errorf("reader %d: %w", r, err))
					return
				}
			}
		}(r)
	}
	auxWG.Add(1)
	go func() {
		defer auxWG.Done()
		for !stop.Load() {
			prev := ""
			err := s.Scan(func(k, v []byte) error {
				if string(k) <= prev {
					return fmt.Errorf("scan out of order: %q after %q", k, prev)
				}
				prev = string(k)
				return nil
			})
			if err != nil {
				fail(fmt.Errorf("scanner: %w", err))
				return
			}
		}
	}()

	wg.Wait()
	stop.Store(true)
	auxWG.Wait()
	if err, _ := testErr.Load().(error); err != nil {
		t.Fatal(err)
	}
	if err := s.BackgroundErr(); err != nil {
		t.Fatal(err)
	}

	st := s.Stats()
	if st.Flushes == 0 {
		t.Error("stress never flushed: memtable threshold not exercised")
	}
	for w, final := range finals {
		for i := 0; i < keysPer; i++ {
			key := fmt.Sprintf("w%d-key-%03d", w, i)
			want, live := final[key]
			got, err := s.Get([]byte(key))
			switch {
			case live && err != nil:
				t.Fatalf("lost write: Get(%s) = %v, want %q", key, err, want)
			case live && string(got) != want:
				t.Fatalf("wrong value: Get(%s) = %q, want %q", key, got, want)
			case !live && !errors.Is(err, lsm.ErrNotFound):
				t.Fatalf("deleted key resurfaced: Get(%s) = %q, %v", key, got, err)
			}
		}
	}
}

// TestStoreShardMarker covers the persisted-shard-count contract: the
// count is fixed at creation, adopted on reopen with Shards=0, enforced on
// mismatch, and an unsharded lsm.DB directory is refused.
func TestStoreShardMarker(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := Open(dir, Options{Shards: 5}); err == nil {
		t.Fatal("shard-count mismatch accepted")
	}
	s2, err := Open(dir, Options{}) // adopt
	if err != nil {
		t.Fatal(err)
	}
	if s2.ShardCount() != 3 {
		t.Fatalf("adopted %d shards, want 3", s2.ShardCount())
	}
	if v, err := s2.Get([]byte("k")); err != nil || string(v) != "v" {
		t.Fatalf("Get after adopt = %q, %v", v, err)
	}
	s2.Close()

	// A directory holding an unsharded lsm.DB is adopted in place as one
	// legacy shard (so upgraded binaries keep serving old databases), but
	// re-sharding it is refused.
	plain := t.TempDir()
	db, err := lsm.Open(plain, lsm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	db.Close()
	if _, err := Open(plain, Options{Shards: 2}); err == nil {
		t.Fatal("sharding over an unsharded store accepted")
	}
	legacy, err := Open(plain, Options{})
	if err != nil {
		t.Fatalf("adopting an unsharded store: %v", err)
	}
	if legacy.ShardCount() != 1 {
		t.Fatalf("legacy store adopted as %d shards", legacy.ShardCount())
	}
	if v, err := legacy.Get([]byte("k")); err != nil || string(v) != "v" {
		t.Fatalf("Get through legacy adoption = %q, %v", v, err)
	}
	if err := legacy.Put([]byte("k2"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if err := legacy.Close(); err != nil {
		t.Fatal(err)
	}
	// No marker was written: the directory still opens with plain lsm.Open.
	db, err = lsm.Open(plain, lsm.Options{})
	if err != nil {
		t.Fatalf("plain reopen after legacy adoption: %v", err)
	}
	if v, err := db.Get([]byte("k2")); err != nil || string(v) != "v2" {
		t.Fatalf("plain Get after legacy adoption = %q, %v", v, err)
	}
	db.Close()

	if _, err := Open(t.TempDir(), Options{Shards: -1}); err == nil {
		t.Fatal("negative shard count accepted")
	}
}

// TestStoreAdoptsWALOnlyLegacyDB covers the nastiest legacy shape: an
// unsharded lsm.DB that never flushed, so its acknowledged data lives only
// in wal.log and no MANIFEST exists. Open must recognize it as a legacy
// layout and replay the WAL — re-initializing the directory as a fresh
// sharded store would silently lose the writes.
func TestStoreAdoptsWALOnlyLegacyDB(t *testing.T) {
	dir := t.TempDir()
	db, err := lsm.Open(dir, lsm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("unflushed"), []byte("survives")); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil { // no Flush: WAL only, no MANIFEST
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "MANIFEST")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("precondition: MANIFEST unexpectedly present (%v)", err)
	}

	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.ShardCount() != 1 {
		t.Fatalf("WAL-only legacy store adopted as %d shards", s.ShardCount())
	}
	if v, err := s.Get([]byte("unflushed")); err != nil || string(v) != "survives" {
		t.Fatalf("Get(unflushed) = %q, %v; WAL-only legacy data lost", v, err)
	}
}

// TestStoreStatsAggregation checks that Stats sums per-shard counters and
// ShardStats exposes the breakdown, and that a cross-shard batch really
// commits through multiple shard pipelines.
func TestStoreStatsAggregation(t *testing.T) {
	s := openStore(t, 4, lsm.Options{})
	var b lsm.WriteBatch
	const n = 64
	for i := 0; i < n; i++ {
		b.Put([]byte(fmt.Sprintf("key-%04d", i)), []byte("v"))
	}
	if err := s.Write(&b); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.GroupedWrites != n {
		t.Errorf("aggregate GroupedWrites = %d, want %d", st.GroupedWrites, n)
	}
	per := s.ShardStats()
	if len(per) != 4 {
		t.Fatalf("ShardStats returned %d entries", len(per))
	}
	shardsWithWrites, sum := 0, uint64(0)
	for _, ss := range per {
		sum += ss.GroupedWrites
		if ss.GroupedWrites > 0 {
			shardsWithWrites++
		}
	}
	if sum != st.GroupedWrites {
		t.Errorf("per-shard GroupedWrites sum %d != aggregate %d", sum, st.GroupedWrites)
	}
	if shardsWithWrites < 2 {
		t.Errorf("cross-shard batch landed on %d shards; want the split to fan out", shardsWithWrites)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Tables != shardsWithWrites {
		t.Errorf("aggregate Tables = %d, want %d (one sstable per written shard)", st.Tables, shardsWithWrites)
	}

	// Filter counters aggregate too: probing absent keys after the flush
	// drives Bloom negatives on some shard. The probes must fall inside
	// the tables' key range — key-range pruning rejects out-of-bounds keys
	// before the Bloom filter is ever consulted.
	for i := 0; i < 200; i++ {
		if _, err := s.Get([]byte(fmt.Sprintf("key-%04d-absent", i))); !errors.Is(err, lsm.ErrNotFound) {
			t.Fatal(err)
		}
	}
	st = s.Stats()
	if st.FilterNegatives == 0 {
		t.Error("no Bloom-filter negatives recorded for absent-key probes")
	}
}

// TestStoreRouterBalance checks the KeyHash router spreads realistic keys
// roughly evenly over shards — the property that makes per-shard pipelines
// scale.
func TestStoreRouterBalance(t *testing.T) {
	s := openStore(t, 8, lsm.Options{})
	counts := make([]int, 8)
	const keys = 20000
	for i := 0; i < keys; i++ {
		counts[s.ShardFor([]byte(fmt.Sprintf("user%08d", i)))]++
	}
	for sh, c := range counts {
		share := float64(c) / keys
		if share < 0.06 || share > 0.20 {
			t.Errorf("shard %d owns %.1f%% of keys; want roughly 12.5%%", sh, share*100)
		}
	}
}
