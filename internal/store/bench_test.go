package store

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/lsm"
)

// benchShardCounts is the shard-scaling axis: 1 is the single-pipeline
// baseline (exactly the wrapped lsm.DB), 4 and 16 show per-shard
// group-commit leaders running concurrently.
var benchShardCounts = []int{1, 4, 16}

func benchStore(b *testing.B, shards int, opts lsm.Options) *Store {
	b.Helper()
	s, err := Open(b.TempDir(), Options{Shards: shards, Options: opts})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	return s
}

func reportGroupStats(b *testing.B, s *Store) {
	b.Helper()
	st := s.Stats()
	if st.GroupCommits > 0 {
		b.ReportMetric(float64(st.GroupedWrites)/float64(st.GroupCommits), "group-size")
	}
	if st.GroupedWrites > 0 {
		b.ReportMetric(float64(st.WALSyncs)/float64(st.GroupedWrites), "syncs/write")
	}
}

// putParallel drives 8 concurrent writers per proc against a store.
func putParallel(b *testing.B, shards int, valueBytes int, opts lsm.Options) {
	s := benchStore(b, shards, opts)
	val := bytes.Repeat([]byte("v"), valueBytes)
	var ctr atomic.Int64
	b.SetParallelism(8) // ≥ 8 concurrent writers per proc
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		var key [16]byte
		for pb.Next() {
			i := ctr.Add(1)
			n := copy(key[:], "key-")
			for d := 11; d >= 0; d-- {
				key[n+d] = byte('0' + i%10)
				i /= 10
			}
			if err := s.Put(key[:], val); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "writes/sec")
	st := s.Stats()
	b.ReportMetric(float64(st.Flushes), "flushes")
	b.ReportMetric(float64(st.MinorCompactions), "minor-compactions")
	reportGroupStats(b, s)
}

// BenchmarkPutParallel is the headline sharding benchmark: 8 concurrent
// writers per proc against {1, 4, 16} shards in the store's deployed
// configuration — maintenance in the write path (memtable flushes and
// size-tiered auto minor compactions, lsmserver's default policy). With
// one shard, every flush or compaction holds the only commit pipeline and
// stalls every writer behind it; with N shards the maintenance of one
// shard overlaps the other N-1 pipelines' commits, which is what turns
// the single-leader write path into concurrent ones.
//
// Run with:
//
//	go test -bench BenchmarkPutParallel -benchtime 2s -run XXX ./internal/store
func BenchmarkPutParallel(b *testing.B) {
	for _, sync := range []bool{false, true} {
		for _, shards := range benchShardCounts {
			b.Run(fmt.Sprintf("sync=%v/shards=%d", sync, shards), func(b *testing.B) {
				// The 256 KiB memtable and 4 KiB values make flush and
				// compaction I/O a steady fraction of the write path (a flush
				// every ~60 writes per shard) regardless of benchmark
				// duration — the regime where one shard's maintenance
				// overlapping the other pipelines' commits dominates.
				putParallel(b, shards, 4096, lsm.Options{
					SyncWAL:       sync,
					MemtableBytes: 256 << 10,
					AutoCompact:   lsm.SizeTieredPolicy{},
				})
			})
		}
	}
}

// BenchmarkPutParallelPipeline isolates the commit pipeline itself: a
// memtable large enough that maintenance never runs, so the measurement is
// pure group-commit coordination. This is where partitioning has a real
// cost — N shards fragment one large commit group into N small ones, so
// the per-group WAL append and fsync amortize over fewer writes (the
// shared write-load gauge claws part of this back; see
// lsm.Options.WriteLoad). Read together with BenchmarkPutParallel: the
// maintenance overlap pays for the group fragmentation, not the reverse.
func BenchmarkPutParallelPipeline(b *testing.B) {
	for _, sync := range []bool{false, true} {
		for _, shards := range benchShardCounts {
			b.Run(fmt.Sprintf("sync=%v/shards=%d", sync, shards), func(b *testing.B) {
				putParallel(b, shards, 100, lsm.Options{SyncWAL: sync, MemtableBytes: 256 << 20})
			})
		}
	}
}

// BenchmarkWriteBatch commits 128-record batches that split across shards
// and ride N commit pipelines concurrently.
func BenchmarkWriteBatch(b *testing.B) {
	const size = 128
	for _, shards := range benchShardCounts {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s := benchStore(b, shards, lsm.Options{MemtableBytes: 256 << 20})
			val := bytes.Repeat([]byte("v"), 100)
			var batch lsm.WriteBatch
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				batch.Reset()
				for j := 0; j < size; j++ {
					batch.Put([]byte(fmt.Sprintf("key-%07d-%03d", i, j)), val)
				}
				if err := s.Write(&batch); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N*size)/b.Elapsed().Seconds(), "writes/sec")
			reportGroupStats(b, s)
		})
	}
}

// BenchmarkMixedReadWrite is the serving scenario the paper assumes — a
// NoSQL node answering point reads while writes and their maintenance
// (flushes, minor compactions) churn underneath. With one shard a flush or
// compaction holds the store lock and the sole commit pipeline, so readers
// and writers alike stall behind it; with N shards only the maintaining
// shard's traffic stalls. Reported as writes/sec plus reads/sec sustained
// by two background reader goroutines over the same keyspace.
func BenchmarkMixedReadWrite(b *testing.B) {
	const keyspace = 5000
	for _, shards := range benchShardCounts {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s := benchStore(b, shards, lsm.Options{
				MemtableBytes: 256 << 10,
				AutoCompact:   lsm.SizeTieredPolicy{},
			})
			val := bytes.Repeat([]byte("v"), 512)
			key := func(i int) []byte { return []byte(fmt.Sprintf("key-%012d", i%keyspace)) }
			for i := 0; i < keyspace; i++ {
				if err := s.Put(key(i), val); err != nil {
					b.Fatal(err)
				}
			}
			var (
				stop  atomic.Bool
				reads atomic.Int64
				wg    sync.WaitGroup
			)
			for r := 0; r < 2; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					for i := r; !stop.Load(); i += 7 {
						if _, err := s.Get(key(i)); err != nil {
							b.Error(err)
							return
						}
						reads.Add(1)
					}
				}(r)
			}
			var ctr atomic.Int64
			b.SetParallelism(4)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if err := s.Put(key(int(ctr.Add(1))), val); err != nil {
						b.Fatal(err)
					}
				}
			})
			elapsed := b.Elapsed()
			stop.Store(true)
			wg.Wait()
			b.ReportMetric(float64(b.N)/elapsed.Seconds(), "writes/sec")
			b.ReportMetric(float64(reads.Load())/elapsed.Seconds(), "reads/sec")
		})
	}
}

// BenchmarkGet measures parallel point reads against a flushed data set:
// routing adds one hash per lookup, while per-shard memtables, Bloom
// filters and block caches shrink each probe's search space.
func BenchmarkGet(b *testing.B) {
	for _, shards := range benchShardCounts {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s := benchStore(b, shards, lsm.Options{MemtableBytes: 1 << 20})
			const n = 20000
			val := bytes.Repeat([]byte("v"), 100)
			for i := 0; i < n; i++ {
				if err := s.Put([]byte(fmt.Sprintf("key-%012d", i)), val); err != nil {
					b.Fatal(err)
				}
			}
			if err := s.Flush(); err != nil {
				b.Fatal(err)
			}
			var ctr atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := ctr.Add(1)
					if _, err := s.Get([]byte(fmt.Sprintf("key-%012d", i%n))); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "reads/sec")
		})
	}
}
