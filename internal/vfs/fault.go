package vfs

import (
	"fmt"
	"io/fs"
	"math/rand"
	"sync"
	"syscall"
)

// Op classifies filesystem operations for fault injection.
type Op int

const (
	OpCreate Op = iota
	OpOpen
	OpRead
	OpWrite
	OpSync
	OpRename
	OpRemove
	OpSyncDir
	numOps
)

func (o Op) String() string {
	switch o {
	case OpCreate:
		return "create"
	case OpOpen:
		return "open"
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpRename:
		return "rename"
	case OpRemove:
		return "remove"
	case OpSyncDir:
		return "syncdir"
	}
	return "unknown"
}

// ErrInjected marks every error produced by a Fault filesystem. Tests
// assert errors.Is(err, ErrInjected) to distinguish injected faults from
// real failures; injected errors also satisfy errors.Is against the
// underlying errno (syscall.EIO, syscall.ENOSPC) so production code that
// switches on errno behaves identically under injection.
var ErrInjected = fmt.Errorf("vfs: injected fault")

type injectedError struct {
	op    Op
	path  string
	errno error
}

func (e *injectedError) Error() string {
	return fmt.Sprintf("vfs: injected %s fault on %s: %v", e.op, e.path, e.errno)
}

func (e *injectedError) Unwrap() []error { return []error{ErrInjected, e.errno} }

// Fault wraps an FS and injects deterministic failures. Faults are driven
// by a seeded PRNG (per-op probabilities) and by scripted triggers
// (fail-the-Nth-sync, disk-full after N bytes, fail-next-truncate). All
// configuration methods are safe for concurrent use with operations.
//
// A torn write injects realistically: a random prefix of the buffer
// reaches the underlying file before the error returns, modeling a crash
// mid-write. Disk-full likewise writes the bytes that "fit" before
// returning ENOSPC.
type Fault struct {
	inner FS

	mu       sync.Mutex
	rng      *rand.Rand
	enabled  bool
	prob     [numOps]float64
	match    func(path string) bool // nil means all paths
	counts   [numOps]uint64
	syncSeen int
	failSyncAt   int   // fail the Nth matching sync (1-based); 0 = off
	diskFree     int64 // bytes until ENOSPC; -1 = unlimited
	failTruncate bool  // fail the next Truncate (one-shot)
}

// NewFault wraps inner with a fault injector seeded for deterministic
// replay. Injection starts enabled but with all probabilities zero and no
// scripted triggers, so it is inert until configured.
func NewFault(inner FS, seed int64) *Fault {
	return &Fault{
		inner:    inner,
		rng:      rand.New(rand.NewSource(seed)),
		enabled:  true,
		diskFree: -1,
	}
}

// SetProb sets the probability (0..1) that an operation of class op fails
// with an injected I/O error.
func (f *Fault) SetProb(op Op, p float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.prob[op] = p
}

// SetPathFilter restricts injection to paths for which match returns
// true. A nil filter (the default) matches every path.
func (f *Fault) SetPathFilter(match func(path string) bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.match = match
}

// FailNthSync arranges for the n-th subsequent matching Sync call
// (1-based) to fail with an injected EIO. The trigger is one-shot; the
// internal sync counter restarts from zero.
func (f *Fault) FailNthSync(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.syncSeen = 0
	f.failSyncAt = n
}

// SetDiskFullAfter simulates a device with n writable bytes remaining:
// once they are consumed, writes and creates fail with ENOSPC (writing
// the prefix that fits, as a real filesystem would). n < 0 disables the
// limit.
func (f *Fault) SetDiskFullAfter(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.diskFree = n
}

// FailNextTruncate makes the next Truncate call fail with an injected
// EIO (one-shot). The WAL truncates to roll back a torn append; failing
// it exercises the log-poisoning path.
func (f *Fault) FailNextTruncate() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failTruncate = true
}

// Disable stops all injection (probabilities and scripted triggers are
// retained). Chaos tests disable faults before the verification phase so
// assertion reads hit the real filesystem.
func (f *Fault) Disable() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.enabled = false
}

// Enable resumes injection after Disable.
func (f *Fault) Enable() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.enabled = true
}

// Injected reports how many faults of class op have been injected.
func (f *Fault) Injected(op Op) uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.counts[op]
}

// InjectedTotal reports the total number of injected faults.
func (f *Fault) InjectedTotal() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	var n uint64
	for _, c := range f.counts {
		n += c
	}
	return n
}

// active reports (under f.mu) whether injection applies to path.
func (f *Fault) active(path string) bool {
	return f.enabled && (f.match == nil || f.match(path))
}

// roll decides (probability only) whether op on path fails; it returns a
// typed injected error or nil.
func (f *Fault) roll(op Op, path string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.active(path) || f.prob[op] <= 0 {
		return nil
	}
	if f.rng.Float64() >= f.prob[op] {
		return nil
	}
	f.counts[op]++
	return &injectedError{op: op, path: path, errno: syscall.EIO}
}

// rollWrite decides the fate of an n-byte write: how many bytes to let
// through and what error (if any) to return.
func (f *Fault) rollWrite(path string, n int) (allow int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.active(path) {
		return n, nil
	}
	if f.diskFree >= 0 {
		if int64(n) > f.diskFree {
			allow = int(f.diskFree)
			f.diskFree = 0
			f.counts[OpWrite]++
			return allow, &injectedError{op: OpWrite, path: path, errno: syscall.ENOSPC}
		}
		f.diskFree -= int64(n)
	}
	if f.prob[OpWrite] > 0 && f.rng.Float64() < f.prob[OpWrite] {
		// Torn write: a random prefix reaches the file, then the error.
		f.counts[OpWrite]++
		return f.rng.Intn(n + 1), &injectedError{op: OpWrite, path: path, errno: syscall.EIO}
	}
	return n, nil
}

func (f *Fault) rollSync(path string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.active(path) {
		return nil
	}
	if f.failSyncAt > 0 {
		f.syncSeen++
		if f.syncSeen == f.failSyncAt {
			f.failSyncAt = 0
			f.counts[OpSync]++
			return &injectedError{op: OpSync, path: path, errno: syscall.EIO}
		}
	}
	if f.prob[OpSync] > 0 && f.rng.Float64() < f.prob[OpSync] {
		f.counts[OpSync]++
		return &injectedError{op: OpSync, path: path, errno: syscall.EIO}
	}
	return nil
}

func (f *Fault) rollCreate(path string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.active(path) {
		return nil
	}
	if f.diskFree == 0 {
		f.counts[OpCreate]++
		return &injectedError{op: OpCreate, path: path, errno: syscall.ENOSPC}
	}
	if f.prob[OpCreate] > 0 && f.rng.Float64() < f.prob[OpCreate] {
		f.counts[OpCreate]++
		return &injectedError{op: OpCreate, path: path, errno: syscall.EIO}
	}
	return nil
}

func (f *Fault) rollTruncate(path string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.active(path) {
		return nil
	}
	if f.failTruncate {
		f.failTruncate = false
		f.counts[OpWrite]++
		return &injectedError{op: OpWrite, path: path, errno: syscall.EIO}
	}
	return nil
}

// FS interface.

func (f *Fault) Create(path string) (File, error) {
	if err := f.rollCreate(path); err != nil {
		return nil, err
	}
	file, err := f.inner.Create(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fault: f, path: path}, nil
}

func (f *Fault) Open(path string) (File, error) {
	if err := f.roll(OpOpen, path); err != nil {
		return nil, err
	}
	file, err := f.inner.Open(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fault: f, path: path}, nil
}

func (f *Fault) Rename(oldpath, newpath string) error {
	if err := f.roll(OpRename, oldpath); err != nil {
		return err
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *Fault) Remove(path string) error {
	if err := f.roll(OpRemove, path); err != nil {
		return err
	}
	return f.inner.Remove(path)
}

func (f *Fault) MkdirAll(path string, perm fs.FileMode) error {
	return f.inner.MkdirAll(path, perm)
}

func (f *Fault) ReadDir(path string) ([]fs.DirEntry, error) {
	return f.inner.ReadDir(path)
}

func (f *Fault) Stat(path string) (fs.FileInfo, error) {
	return f.inner.Stat(path)
}

func (f *Fault) ReadFile(path string) ([]byte, error) {
	if err := f.roll(OpRead, path); err != nil {
		return nil, err
	}
	return f.inner.ReadFile(path)
}

func (f *Fault) SyncDir(path string) error {
	if err := f.roll(OpSyncDir, path); err != nil {
		return err
	}
	return f.inner.SyncDir(path)
}

// faultFile threads per-call injection through an open handle.
type faultFile struct {
	File
	fault *Fault
	path  string
}

func (ff *faultFile) Write(p []byte) (int, error) {
	allow, ierr := ff.fault.rollWrite(ff.path, len(p))
	if ierr == nil {
		return ff.File.Write(p)
	}
	n := 0
	if allow > 0 {
		n, _ = ff.File.Write(p[:allow])
	}
	return n, ierr
}

func (ff *faultFile) ReadAt(p []byte, off int64) (int, error) {
	if err := ff.fault.roll(OpRead, ff.path); err != nil {
		return 0, err
	}
	return ff.File.ReadAt(p, off)
}

func (ff *faultFile) Sync() error {
	if err := ff.fault.rollSync(ff.path); err != nil {
		return err
	}
	return ff.File.Sync()
}

func (ff *faultFile) Truncate(size int64) error {
	if err := ff.fault.rollTruncate(ff.path); err != nil {
		return err
	}
	return ff.File.Truncate(size)
}

func (ff *faultFile) Name() string { return ff.path }
