package vfs

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
)

func TestDefaultRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.txt")

	f, err := Default.Create(path)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := f.Write([]byte("hello world")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	r, err := Default.Open(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	buf := make([]byte, 5)
	if _, err := r.ReadAt(buf, 6); err != nil {
		t.Fatalf("readat: %v", err)
	}
	if string(buf) != "world" {
		t.Fatalf("readat = %q, want %q", buf, "world")
	}
	if err := r.Close(); err != nil {
		t.Fatalf("close reader: %v", err)
	}

	if err := Default.Rename(path, path+".2"); err != nil {
		t.Fatalf("rename: %v", err)
	}
	if err := Default.SyncDir(dir); err != nil {
		t.Fatalf("syncdir: %v", err)
	}
	data, err := Default.ReadFile(path + ".2")
	if err != nil || string(data) != "hello world" {
		t.Fatalf("readfile = %q, %v", data, err)
	}
	ents, err := Default.ReadDir(dir)
	if err != nil || len(ents) != 1 {
		t.Fatalf("readdir = %v, %v", ents, err)
	}
	if err := Default.Remove(path + ".2"); err != nil {
		t.Fatalf("remove: %v", err)
	}
	if _, err := Default.Stat(path + ".2"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("stat after remove = %v, want not-exist", err)
	}
}

func TestFaultInjectedErrorsAreTyped(t *testing.T) {
	fsys := NewFault(Default, 1)
	fsys.SetProb(OpCreate, 1.0)
	_, err := fsys.Create(filepath.Join(t.TempDir(), "x"))
	if err == nil {
		t.Fatal("expected injected create failure")
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("error %v is not ErrInjected", err)
	}
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("error %v is not EIO", err)
	}
	if fsys.Injected(OpCreate) != 1 {
		t.Fatalf("Injected(OpCreate) = %d, want 1", fsys.Injected(OpCreate))
	}
}

func TestFaultTornWriteLeavesPrefix(t *testing.T) {
	dir := t.TempDir()
	fsys := NewFault(Default, 42)
	path := filepath.Join(dir, "torn")
	f, err := fsys.Create(path)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	payload := []byte(strings.Repeat("abcdefgh", 128))
	fsys.SetProb(OpWrite, 1.0)
	n, err := f.Write(payload)
	if err == nil {
		t.Fatal("expected torn write to fail")
	}
	if !errors.Is(err, ErrInjected) || !errors.Is(err, syscall.EIO) {
		t.Fatalf("torn write error not typed: %v", err)
	}
	if n < 0 || n >= len(payload) {
		t.Fatalf("torn write reported n=%d of %d", n, len(payload))
	}
	fsys.SetProb(OpWrite, 0)
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("readfile: %v", err)
	}
	if len(data) != n {
		t.Fatalf("on-disk prefix = %d bytes, reported n = %d", len(data), n)
	}
}

func TestFaultDiskFull(t *testing.T) {
	dir := t.TempDir()
	fsys := NewFault(Default, 7)
	path := filepath.Join(dir, "full")
	f, err := fsys.Create(path)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	fsys.SetDiskFullAfter(10)
	if _, err := f.Write([]byte("12345678")); err != nil {
		t.Fatalf("write within budget: %v", err)
	}
	n, err := f.Write([]byte("overflow!"))
	if !errors.Is(err, syscall.ENOSPC) || !errors.Is(err, ErrInjected) {
		t.Fatalf("overflow write err = %v, want ENOSPC", err)
	}
	if n != 2 {
		t.Fatalf("overflow wrote %d bytes, want the 2 that fit", n)
	}
	if _, err := f.Write([]byte("x")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("post-full write err = %v, want ENOSPC", err)
	}
	if _, err := fsys.Create(filepath.Join(dir, "another")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("post-full create err = %v, want ENOSPC", err)
	}
	fsys.SetDiskFullAfter(-1)
	if _, err := f.Write([]byte("recovered")); err != nil {
		t.Fatalf("write after freeing space: %v", err)
	}
	f.Close()
}

func TestFaultFailNthSync(t *testing.T) {
	dir := t.TempDir()
	fsys := NewFault(Default, 3)
	f, err := fsys.Create(filepath.Join(dir, "s"))
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	defer f.Close()
	fsys.FailNthSync(3)
	for i := 1; i <= 5; i++ {
		err := f.Sync()
		if i == 3 {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("sync %d: err = %v, want injected", i, err)
			}
		} else if err != nil {
			t.Fatalf("sync %d: unexpected err %v", i, err)
		}
	}
}

func TestFaultPathFilterAndDisable(t *testing.T) {
	dir := t.TempDir()
	fsys := NewFault(Default, 9)
	fsys.SetProb(OpCreate, 1.0)
	fsys.SetPathFilter(func(p string) bool { return strings.HasSuffix(p, ".wal") })

	if _, err := fsys.Create(filepath.Join(dir, "data.sst")); err != nil {
		t.Fatalf("filtered-out path should not fault: %v", err)
	}
	if _, err := fsys.Create(filepath.Join(dir, "log.wal")); !errors.Is(err, ErrInjected) {
		t.Fatalf("matching path err = %v, want injected", err)
	}
	fsys.Disable()
	if _, err := fsys.Create(filepath.Join(dir, "log2.wal")); err != nil {
		t.Fatalf("disabled injector should pass through: %v", err)
	}
	fsys.Enable()
	if _, err := fsys.Create(filepath.Join(dir, "log3.wal")); !errors.Is(err, ErrInjected) {
		t.Fatalf("re-enabled injector err = %v, want injected", err)
	}
}

func TestFaultDeterminism(t *testing.T) {
	run := func() []uint64 {
		dir := t.TempDir()
		fsys := NewFault(Default, 12345)
		fsys.SetProb(OpWrite, 0.3)
		fsys.SetProb(OpSync, 0.2)
		f, err := fsys.Create(filepath.Join(dir, "d"))
		if err != nil {
			t.Fatalf("create: %v", err)
		}
		var outcomes []uint64
		for i := 0; i < 200; i++ {
			_, werr := f.Write([]byte("0123456789abcdef"))
			serr := f.Sync()
			var o uint64
			if werr != nil {
				o |= 1
			}
			if serr != nil {
				o |= 2
			}
			outcomes = append(outcomes, o)
		}
		f.Close()
		return outcomes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded runs diverged at op %d: %d vs %d", i, a[i], b[i])
		}
	}
}
