// Package vfs abstracts the filesystem operations the storage engine
// depends on for durability: file creation, reads, writes, fsync, rename,
// remove, and directory sync. Production code uses Default, a thin
// passthrough to the os package; tests substitute a Fault wrapper that
// injects deterministic disk failures (failed fsyncs, torn writes, ENOSPC,
// read corruption) to prove the engine never acknowledges a write it could
// lose.
//
// The interface is intentionally small: it covers exactly the syscalls the
// WAL, manifest, sstable, and cleanup paths perform, nothing more.
package vfs

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"syscall"
)

// File is the handle type returned by FS. It supports the union of what
// the engine's writers (WAL, sstable flush) and readers (sstable,
// manifest) need from an open file.
type File interface {
	io.ReaderAt
	io.Writer
	io.Closer

	// Sync flushes the file's data to stable storage (fsync).
	Sync() error
	// Seek repositions the write offset; the WAL uses it to roll back
	// partially appended records.
	Seek(offset int64, whence int) (int64, error)
	// Truncate changes the file size; the WAL uses it with Seek to
	// discard a torn append.
	Truncate(size int64) error
	// Stat reports file metadata (primarily size).
	Stat() (fs.FileInfo, error)
	// Name returns the path the file was opened with.
	Name() string
}

// FS is the filesystem surface the engine performs durability-critical
// operations through. All paths are OS paths (absolute or relative), not
// io/fs slash paths.
type FS interface {
	// Create opens path for reading and writing, creating it if absent
	// and truncating it otherwise.
	Create(path string) (File, error)
	// Open opens path read-only.
	Open(path string) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes the named file.
	Remove(path string) error
	// MkdirAll creates the directory and any missing parents.
	MkdirAll(path string, perm fs.FileMode) error
	// ReadDir lists the directory's entries.
	ReadDir(path string) ([]fs.DirEntry, error)
	// Stat reports metadata for the named file.
	Stat(path string) (fs.FileInfo, error)
	// ReadFile returns the full contents of the named file.
	ReadFile(path string) ([]byte, error)
	// SyncDir fsyncs the directory so a preceding rename or create in it
	// is durable. Filesystems that do not support fsync on directories
	// (EINVAL/ENOTSUP) are treated as success.
	SyncDir(path string) error
}

// Default is the production filesystem: a passthrough to the os package.
var Default FS = osFS{}

type osFS struct{}

func (osFS) Create(path string) (File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Open(path string) (File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(path string) error             { return os.Remove(path) }
func (osFS) MkdirAll(path string, perm fs.FileMode) error {
	return os.MkdirAll(path, perm)
}
func (osFS) ReadDir(path string) ([]fs.DirEntry, error) { return os.ReadDir(path) }
func (osFS) Stat(path string) (fs.FileInfo, error)      { return os.Stat(path) }
func (osFS) ReadFile(path string) ([]byte, error)       { return os.ReadFile(path) }

func (osFS) SyncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil && (errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP)) {
		// Some filesystems do not support fsync on directories; the
		// rename itself is the best durability available there.
		return nil
	}
	return err
}
