package simulator

import (
	"testing"

	"repro/internal/ycsb"
)

func baseConfig(updatePct int, dist ycsb.Distribution, seed int64) Config {
	return Config{
		Workload: ycsb.Config{
			RecordCount:      1000,
			OperationCount:   20000,
			UpdateProportion: float64(updatePct) / 100,
			InsertProportion: 1 - float64(updatePct)/100,
			Distribution:     dist,
			Seed:             seed,
		},
		MemtableKeys: 1000,
	}
}

func TestGenerateTablesBasic(t *testing.T) {
	inst, err := GenerateTables(baseConfig(0, ycsb.Latest, 1))
	if err != nil {
		t.Fatalf("GenerateTables: %v", err)
	}
	// 21000 distinct inserted keys at 1000 keys/table → 21 tables.
	if inst.N() != 21 {
		t.Errorf("tables = %d, want 21", inst.N())
	}
	if err := inst.Validate(); err != nil {
		t.Errorf("instance invalid: %v", err)
	}
}

func TestUpdateHeavyProducesFewerOverlappingTables(t *testing.T) {
	insertHeavy, err := GenerateTables(baseConfig(0, ycsb.Latest, 1))
	if err != nil {
		t.Fatal(err)
	}
	updateHeavy, err := GenerateTables(baseConfig(100, ycsb.Latest, 1))
	if err != nil {
		t.Fatal(err)
	}
	if updateHeavy.N() >= insertHeavy.N() {
		t.Errorf("update-heavy generated %d tables, insert-heavy %d; want fewer",
			updateHeavy.N(), insertHeavy.N())
	}
	// With updates the universe stays near recordcount; with inserts it
	// grows with the op count.
	if u := updateHeavy.Universe().Len(); u > 5000 {
		t.Errorf("update-heavy universe = %d, want ≈ recordcount", u)
	}
	if u := insertHeavy.Universe().Len(); u != 21000 {
		t.Errorf("insert-heavy universe = %d, want 21000", u)
	}
}

func TestGenerateTablesErrors(t *testing.T) {
	cfg := baseConfig(0, ycsb.Uniform, 1)
	cfg.MemtableKeys = 0
	if _, err := GenerateTables(cfg); err == nil {
		t.Errorf("zero memtable capacity accepted")
	}
	cfg = baseConfig(0, ycsb.Uniform, 1)
	cfg.Workload.RecordCount = 0
	cfg.Workload.OperationCount = 0
	if _, err := GenerateTables(cfg); err == nil {
		t.Errorf("empty workload accepted")
	}
	cfg = baseConfig(0, ycsb.Uniform, 1)
	cfg.Workload.UpdateProportion = -1
	if _, err := GenerateTables(cfg); err == nil {
		t.Errorf("invalid workload accepted")
	}
}

func TestRunStrategyAllEvaluated(t *testing.T) {
	inst, err := GenerateTables(baseConfig(40, ycsb.Latest, 2))
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []string{"SI", "SO", "BT(I)", "BT(O)", "RANDOM"} {
		res, err := RunStrategy(inst, strat, 2, 1, 4)
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if res.CostSimple < res.LowerBound {
			t.Errorf("%s: cost %d below LOPT %d", strat, res.CostSimple, res.LowerBound)
		}
		if res.CostActual <= res.CostSimple {
			// costactual counts internals twice, so it exceeds simple cost
			// whenever at least one merge happens.
			t.Errorf("%s: costactual %d ≤ simple %d", strat, res.CostActual, res.CostSimple)
		}
		if res.Reported <= 0 || res.PlanAndMerge <= 0 {
			t.Errorf("%s: non-positive times %+v", strat, res)
		}
		if res.Tables != inst.N() {
			t.Errorf("%s: tables = %d", strat, res.Tables)
		}
	}
}

func TestRunStrategyUnknown(t *testing.T) {
	inst, err := GenerateTables(baseConfig(0, ycsb.Uniform, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunStrategy(inst, "nope", 2, 0, 1); err == nil {
		t.Errorf("unknown strategy accepted")
	}
}

func TestCostDecreasesWithUpdates(t *testing.T) {
	// The headline shape of Figure 7a: as the update percentage grows the
	// compaction cost falls, for every strategy.
	for _, strat := range []string{"SI", "BT(I)", "RANDOM"} {
		cost0, cost100 := 0, 0
		for _, pct := range []int{0, 100} {
			inst, err := GenerateTables(baseConfig(pct, ycsb.Latest, 3))
			if err != nil {
				t.Fatal(err)
			}
			res, err := RunStrategy(inst, strat, 2, 1, 1)
			if err != nil {
				t.Fatal(err)
			}
			if pct == 0 {
				cost0 = res.CostActual
			} else {
				cost100 = res.CostActual
			}
		}
		if cost100 >= cost0 {
			t.Errorf("%s: cost at 100%% updates (%d) not below 0%% updates (%d)", strat, cost100, cost0)
		}
	}
}

func TestRandomWorstAtLowUpdates(t *testing.T) {
	// Figure 7a: RANDOM is clearly worse than the informed strategies at
	// low update percentages.
	inst, err := GenerateTables(baseConfig(0, ycsb.Latest, 4))
	if err != nil {
		t.Fatal(err)
	}
	si, err := RunStrategy(inst, "SI", 2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := RunStrategy(inst, "RANDOM", 2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if float64(rnd.CostActual) < 1.05*float64(si.CostActual) {
		t.Errorf("RANDOM (%d) not clearly worse than SI (%d) at 0%% updates", rnd.CostActual, si.CostActual)
	}
}

func TestBTParallelismExceedsSI(t *testing.T) {
	inst, err := GenerateTables(baseConfig(20, ycsb.Latest, 5))
	if err != nil {
		t.Fatal(err)
	}
	bt, err := RunStrategy(inst, "BT(I)", 2, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if bt.Parallelism < 4 {
		t.Errorf("BT parallelism = %d, want ≥ 4", bt.Parallelism)
	}
	if bt.MergeParallel > bt.MergeSequential*2 {
		t.Errorf("parallel merge (%v) much slower than sequential (%v)", bt.MergeParallel, bt.MergeSequential)
	}
}

func TestOverheadNeverNegative(t *testing.T) {
	inst, err := GenerateTables(baseConfig(50, ycsb.Zipfian, 6))
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []string{"SI", "SO"} {
		res, err := RunStrategy(inst, strat, 2, 1, 2)
		if err != nil {
			t.Fatal(err)
		}
		if res.Overhead() < 0 {
			t.Errorf("%s overhead negative", strat)
		}
	}
}
