// Package simulator reimplements the paper's two-phase evaluation pipeline
// (Section 5.1). Phase one feeds a YCSB operation stream through a
// fixed-capacity memtable, flushing a new sstable (modeled as a key set)
// whenever the memtable fills — so update-heavy workloads, which rewrite
// the same keys, produce fewer and more overlapping sstables. Phase two
// merges the generated sstables to a single table with a chosen compaction
// strategy, measuring the abstract costs and the wall-clock running time.
package simulator

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/compaction"
	"repro/internal/keyset"
	"repro/internal/memtable"
	"repro/internal/ycsb"
)

// Config parameterizes sstable generation (phase one).
type Config struct {
	// Workload is the YCSB workload driving the memtable.
	Workload ycsb.Config
	// MemtableKeys is the memtable capacity in distinct keys; a flush
	// produces one sstable.
	MemtableKeys int
}

// GenerateTables runs phase one and returns the flushed sstables as a
// compaction instance. Only mutating operations (inserts, updates and
// deletes-as-updates) reach the memtable; reads and scans are ignored
// because they do not modify sstables. A final partial memtable is flushed
// so no writes are lost.
func GenerateTables(cfg Config) (*compaction.Instance, error) {
	if cfg.MemtableKeys <= 0 {
		return nil, fmt.Errorf("simulator: memtable capacity %d", cfg.MemtableKeys)
	}
	gen, err := ycsb.NewGenerator(cfg.Workload)
	if err != nil {
		return nil, err
	}
	mt := memtable.NewKeyTable(cfg.MemtableKeys)
	var sets []keyset.Set
	consume := func(op ycsb.Op) {
		if !op.Mutates() {
			return
		}
		if mt.Add(op.Key) {
			sets = append(sets, mt.Flush())
		}
	}
	for {
		op, ok := gen.NextLoad()
		if !ok {
			break
		}
		consume(op)
	}
	for {
		op, ok := gen.NextRun()
		if !ok {
			break
		}
		consume(op)
	}
	if !mt.Empty() {
		sets = append(sets, mt.Flush())
	}
	if len(sets) == 0 {
		return nil, fmt.Errorf("simulator: workload produced no sstables")
	}
	return compaction.NewInstance(sets...), nil
}

// Result reports one strategy run over one instance.
type Result struct {
	// Strategy and K identify the run.
	Strategy string
	K        int
	// Tables is the number of input sstables.
	Tables int
	// CostSimple is the equation 2.1 cost of the schedule (keys).
	CostSimple int
	// CostActual is the Section 2 disk I/O cost (keys read+written).
	CostActual int
	// LowerBound is LOPT = Σ|A_i| for the instance.
	LowerBound int
	// PlanAndMerge is the wall time of the greedy loop, which both decides
	// merges (strategy overhead: heap pops, HLL estimates, ...) and
	// performs them sequentially.
	PlanAndMerge time.Duration
	// MergeSequential is the wall time to re-execute just the merges on
	// one worker; PlanAndMerge − MergeSequential estimates pure strategy
	// overhead.
	MergeSequential time.Duration
	// MergeParallel is the wall time to execute the merges on Workers
	// workers (only meaningfully smaller for BT-shaped trees).
	MergeParallel time.Duration
	// Reported is the headline time, mirroring the paper's measurement:
	// strategy overhead plus merge time, with the merge executed in
	// parallel for the BALANCETREE strategies and sequentially otherwise.
	Reported time.Duration
	// Parallelism is the schedule's maximum available merge concurrency.
	Parallelism int
}

// Overhead returns the estimated pure strategy overhead (never negative).
func (r Result) Overhead() time.Duration {
	if r.PlanAndMerge > r.MergeSequential {
		return r.PlanAndMerge - r.MergeSequential
	}
	return 0
}

// RunStrategy runs phase two: it schedules and merges inst with the named
// strategy (see compaction.NewChooserByName) and measures cost and time.
// workers bounds merge parallelism for the BALANCETREE strategies, whose
// within-level merges are independent ("we use threads to parallelly
// initiate multiple merge operations", Section 5.1); other strategies
// execute sequentially exactly as the paper's implementation does.
func RunStrategy(inst *compaction.Instance, strategy string, k int, seed int64, workers int) (Result, error) {
	res := Result{Strategy: strategy, K: k, Tables: inst.N(), LowerBound: inst.LowerBound()}

	chooser, err := compaction.NewChooserByName(strategy, seed)
	if err != nil {
		return res, err
	}
	start := time.Now()
	sched, err := compaction.Run(inst, k, chooser)
	if err != nil {
		return res, err
	}
	res.PlanAndMerge = time.Since(start)
	res.CostSimple = sched.CostSimple()
	res.CostActual = sched.CostActual()
	res.Parallelism = compaction.MaxParallelism(sched)

	start = time.Now()
	if err := compaction.ExecuteParallel(sched, 1); err != nil {
		return res, err
	}
	res.MergeSequential = time.Since(start)

	if workers > 1 {
		start = time.Now()
		if err := compaction.ExecuteParallel(sched, workers); err != nil {
			return res, err
		}
		res.MergeParallel = time.Since(start)
	} else {
		res.MergeParallel = res.MergeSequential
	}

	if isParallelStrategy(strategy) && workers > 1 {
		res.Reported = res.Overhead() + res.MergeParallel
	} else {
		res.Reported = res.PlanAndMerge
	}
	return res, nil
}

// isParallelStrategy reports whether the paper's implementation of the
// strategy merges concurrently (the BALANCETREE family).
func isParallelStrategy(name string) bool {
	return strings.HasPrefix(name, "BT")
}
