package wal

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/vfs"
)

// frameFor builds a valid frame around recs, for seeding the fuzzer.
func frameFor(recs ...Record) []byte {
	var payload []byte
	for _, r := range recs {
		payload = appendRecord(payload, r)
	}
	out := make([]byte, frameHeader, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:8], crc32.Checksum(payload, crcTable))
	return append(out, payload...)
}

// FuzzReplay feeds arbitrary file contents to the replayer: it must never
// panic, and must treat any structural damage as a torn tail (clean stop)
// rather than an error or bogus records.
func FuzzReplay(f *testing.F) {
	rec := frameFor(Record{Op: OpPut, Seq: 1, Key: []byte("k"), Value: []byte("v")})
	batch := frameFor(
		Record{Op: OpPut, Seq: 2, Key: []byte("a"), Value: []byte("1")},
		Record{Op: OpDelete, Seq: 3, Key: []byte("b")},
	)
	f.Add(rec)
	f.Add(append(rec, batch...))
	f.Add(rec[:len(rec)-1])
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "log")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		n := 0
		st, err := Replay(vfs.Default, path, func(r Record) error {
			if r.Op != OpPut && r.Op != OpDelete {
				t.Fatalf("replay surfaced invalid op %d", r.Op)
			}
			n++
			return nil
		})
		if err != nil {
			t.Fatalf("replay errored on fuzz input: %v", err)
		}
		if st.Records != n {
			t.Fatalf("stats.Records = %d, delivered %d", st.Records, n)
		}
		if st.GoodBytes > int64(len(data)) {
			t.Fatalf("GoodBytes %d exceeds input size %d", st.GoodBytes, len(data))
		}
	})
}

// FuzzRecordRoundTrip checks encode/decode stability for arbitrary keys
// and values.
func FuzzRecordRoundTrip(f *testing.F) {
	f.Add([]byte("key"), []byte("value"), false)
	f.Add([]byte{0}, []byte{}, true)
	f.Fuzz(func(t *testing.T, key, value []byte, del bool) {
		rec := Record{Op: OpPut, Seq: 42, Key: key, Value: value}
		if del {
			rec = Record{Op: OpDelete, Seq: 42, Key: key}
		}
		enc := appendRecord(nil, rec)
		got, rest, err := decodeRecord(enc)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if len(rest) != 0 {
			t.Fatalf("decode left %d bytes", len(rest))
		}
		if got.Op != rec.Op || got.Seq != rec.Seq || string(got.Key) != string(rec.Key) {
			t.Fatalf("round trip changed record")
		}
		if rec.Op == OpPut && string(got.Value) != string(rec.Value) {
			t.Fatalf("value changed")
		}
	})
}
