package wal

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzReplay feeds arbitrary file contents to the replayer: it must never
// panic, and must treat any structural damage as a torn tail (clean stop)
// rather than an error or bogus records.
func FuzzReplay(f *testing.F) {
	rec := encodeRecord(Record{Op: OpPut, Seq: 1, Key: []byte("k"), Value: []byte("v")})
	f.Add(rec)
	f.Add(append(rec, rec...))
	f.Add(rec[:len(rec)-1])
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "log")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		err := Replay(path, func(r Record) error {
			if r.Op != OpPut && r.Op != OpDelete {
				t.Fatalf("replay surfaced invalid op %d", r.Op)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("replay errored on fuzz input: %v", err)
		}
	})
}

// FuzzRecordRoundTrip checks encode/decode stability for arbitrary keys
// and values.
func FuzzRecordRoundTrip(f *testing.F) {
	f.Add([]byte("key"), []byte("value"), false)
	f.Add([]byte{0}, []byte{}, true)
	f.Fuzz(func(t *testing.T, key, value []byte, del bool) {
		rec := Record{Op: OpPut, Seq: 42, Key: key, Value: value}
		if del {
			rec = Record{Op: OpDelete, Seq: 42, Key: key}
		}
		enc := encodeRecord(rec)
		got, err := decodePayload(enc[frameHeader:])
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got.Op != rec.Op || got.Seq != rec.Seq || string(got.Key) != string(rec.Key) {
			t.Fatalf("round trip changed record")
		}
		if rec.Op == OpPut && string(got.Value) != string(rec.Value) {
			t.Fatalf("value changed")
		}
	})
}
