// Package wal implements the write-ahead log that makes memtable contents
// durable before they are flushed to an sstable. Records are framed in
// batches: each frame carries a length, a CRC32-C checksum and one or more
// record encodings, so a whole batch commits or vanishes atomically.
// Replay stops cleanly at the first torn or corrupt frame, recovering
// everything written before the crash point and reporting how much survived.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/vfs"
)

// Op is the kind of logged operation.
type Op byte

// Operations recorded in the log.
const (
	OpPut Op = iota + 1
	OpDelete
)

// Record is one logged write.
type Record struct {
	Op    Op
	Seq   uint64
	Key   []byte
	Value []byte // empty for OpDelete
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a record that failed checksum or structural checks.
var ErrCorrupt = errors.New("wal: corrupt record")

// ErrBatchTooLarge reports a batch whose encoding exceeds MaxFrameBytes; it
// cannot be appended as one atomic frame.
var ErrBatchTooLarge = errors.New("wal: batch exceeds max frame size")

// frame layout: u32 payloadLen, u32 crc32(payload), payload. The payload is
// the concatenation of one or more record encodings; the checksum covers
// them all, so a batch is recovered entirely or not at all.
const frameHeader = 8

// MaxFrameBytes bounds a single frame payload. Replay treats a larger
// claimed length as corruption, and AppendBatch refuses to write one.
const MaxFrameBytes = 64 << 20

// appendRecord appends the encoding of r (without framing) to dst.
func appendRecord(dst []byte, r Record) []byte {
	dst = append(dst, byte(r.Op))
	dst = binary.AppendUvarint(dst, r.Seq)
	dst = binary.AppendUvarint(dst, uint64(len(r.Key)))
	dst = append(dst, r.Key...)
	dst = binary.AppendUvarint(dst, uint64(len(r.Value)))
	dst = append(dst, r.Value...)
	return dst
}

// decodeRecord decodes one record from the front of payload, returning the
// remainder. Key and Value are copied out, so the caller may reuse payload.
func decodeRecord(payload []byte) (Record, []byte, error) {
	var r Record
	if len(payload) < 1 {
		return r, nil, ErrCorrupt
	}
	r.Op = Op(payload[0])
	if r.Op != OpPut && r.Op != OpDelete {
		return r, nil, ErrCorrupt
	}
	payload = payload[1:]
	seq, n := binary.Uvarint(payload)
	if n <= 0 {
		return r, nil, ErrCorrupt
	}
	payload = payload[n:]
	r.Seq = seq
	klen, n := binary.Uvarint(payload)
	if n <= 0 || uint64(len(payload[n:])) < klen {
		return r, nil, ErrCorrupt
	}
	payload = payload[n:]
	r.Key = append([]byte(nil), payload[:klen]...)
	payload = payload[klen:]
	vlen, n := binary.Uvarint(payload)
	if n <= 0 || uint64(len(payload[n:])) < vlen {
		return r, nil, ErrCorrupt
	}
	payload = payload[n:]
	r.Value = append([]byte(nil), payload[:vlen]...)
	return r, payload[vlen:], nil
}

// Writer appends records to a log file. It is not safe for concurrent use;
// callers serialize appends (the LSM engine's commit pipeline has a single
// leader writing at a time).
//
// A failed append rolls the file back to the end of the last good frame,
// so later appends stay recoverable; if the rollback itself fails — or an
// fsync fails, after which the page cache can no longer be trusted — the
// writer is poisoned: every subsequent Append, AppendBatch and Sync
// returns the sticky error. Without this, a torn frame in the middle of
// the log would silently cut off every later (even fsynced and
// acknowledged) record at replay, which stops at the first damaged frame.
type Writer struct {
	f    vfs.File
	size int64
	buf  []byte    // reusable frame encode buffer
	one  [1]Record // scratch so Append doesn't allocate a slice
	err  error     // sticky: the log tail is no longer trustworthy
}

// Create opens (truncating) a new log file at path through fsys.
func Create(fsys vfs.FS, path string) (*Writer, error) {
	f, err := fsys.Create(path)
	if err != nil {
		return nil, fmt.Errorf("wal: create: %w", err)
	}
	return &Writer{f: f}, nil
}

// Append writes one record as a batch of one. The record is buffered by the
// OS; call Sync for durability.
func (w *Writer) Append(r Record) error {
	w.one[0] = r
	return w.AppendBatch(w.one[:])
}

// AppendBatch writes all of recs as a single frame — one buffer encode, one
// checksum, one write syscall — so the batch is atomic on replay: a crash
// either preserves every record or none. The encode buffer is reused across
// calls; appending a batch allocates only when the batch outgrows every
// previous one. Call Sync for durability.
func (w *Writer) AppendBatch(recs []Record) error {
	if w.err != nil {
		return w.err
	}
	if len(recs) == 0 {
		return nil
	}
	var hdr [frameHeader]byte
	w.buf = append(w.buf[:0], hdr[:]...)
	for _, r := range recs {
		w.buf = appendRecord(w.buf, r)
	}
	payload := w.buf[frameHeader:]
	if len(payload) > MaxFrameBytes {
		return fmt.Errorf("%w: %d bytes", ErrBatchTooLarge, len(payload))
	}
	binary.LittleEndian.PutUint32(w.buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(w.buf[4:8], crc32.Checksum(payload, crcTable))
	if n, err := w.f.Write(w.buf); err != nil {
		if n > 0 {
			// A partial frame reached the file. Roll the log back to the
			// last good frame so later appends stay replayable; if that
			// fails, poison the writer — replay would stop at this torn
			// frame and silently discard everything appended after it.
			if _, serr := w.f.Seek(w.size, io.SeekStart); serr != nil {
				w.err = fmt.Errorf("wal: log poisoned: partial append not rolled back: %w", serr)
			} else if terr := w.f.Truncate(w.size); terr != nil {
				w.err = fmt.Errorf("wal: log poisoned: partial append not rolled back: %w", terr)
			}
		}
		return fmt.Errorf("wal: append: %w", err)
	}
	w.size += int64(len(w.buf))
	return nil
}

// Sync flushes the log to stable storage. A sync failure poisons the
// writer: after a failed fsync the kernel may have dropped the dirty
// pages, so nothing appended afterwards could be trusted as durable.
func (w *Writer) Sync() error {
	if w.err != nil {
		return w.err
	}
	if err := w.f.Sync(); err != nil {
		w.err = fmt.Errorf("wal: log poisoned by failed sync: %w", err)
		return err
	}
	return nil
}

// Err returns the sticky error, if the writer has been poisoned.
func (w *Writer) Err() error { return w.err }

// Size returns the bytes appended so far.
func (w *Writer) Size() int64 { return w.size }

// Close closes the underlying file.
func (w *Writer) Close() error { return w.f.Close() }

// ReplayStats reports what Replay recovered and where it stopped.
type ReplayStats struct {
	// Records is the number of records delivered to the callback.
	Records int
	// Batches is the number of intact frames replayed; each frame is one
	// atomically-committed batch.
	Batches int
	// GoodBytes is the byte offset of the end of the surviving prefix: the
	// log up to this offset replayed cleanly.
	GoodBytes int64
	// Truncated reports that replay stopped at damage — a torn tail, a
	// checksum failure, or an implausible frame length — rather than a
	// clean end-of-file. The surviving prefix was still recovered.
	Truncated bool
}

// Replay reads records from path in order, invoking fn for each. A clean
// EOF or a torn/corrupt tail ends replay without error — the standard
// recovery contract: everything durably appended before the damage is
// recovered, the damaged suffix is discarded. A frame's records are
// delivered all-or-nothing: structural damage anywhere in a frame discards
// the whole frame (and everything after it) so no batch is half-applied.
// The returned stats report the recovered count, the byte offset of the
// surviving prefix, and whether replay stopped at damage, letting callers
// surface truncated recoveries instead of mistaking them for clean ones.
func Replay(fsys vfs.FS, path string, fn func(Record) error) (ReplayStats, error) {
	var st ReplayStats
	rf, err := fsys.Open(path)
	if err != nil {
		return st, fmt.Errorf("wal: open for replay: %w", err)
	}
	defer rf.Close()
	f := io.NewSectionReader(rf, 0, math.MaxInt64)

	var (
		header  [frameHeader]byte
		payload []byte   // reused across frames
		recs    []Record // reused across frames
	)
	for {
		if _, err := io.ReadFull(f, header[:]); err != nil {
			if err == io.EOF {
				return st, nil // clean end
			}
			if err == io.ErrUnexpectedEOF {
				st.Truncated = true // torn header
				return st, nil
			}
			return st, fmt.Errorf("wal: replay read: %w", err)
		}
		plen := binary.LittleEndian.Uint32(header[0:4])
		want := binary.LittleEndian.Uint32(header[4:8])
		if plen > MaxFrameBytes {
			st.Truncated = true // implausible length
			return st, nil
		}
		if cap(payload) < int(plen) {
			payload = make([]byte, plen)
		}
		payload = payload[:plen]
		if _, err := io.ReadFull(f, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				st.Truncated = true // torn payload
				return st, nil
			}
			return st, fmt.Errorf("wal: replay read: %w", err)
		}
		if crc32.Checksum(payload, crcTable) != want {
			st.Truncated = true // corrupt frame: stop at last good prefix
			return st, nil
		}
		// Decode the whole frame before delivering anything, so a frame
		// (= batch) is never half-applied.
		recs = recs[:0]
		rest := payload
		for len(rest) > 0 {
			var rec Record
			rec, rest, err = decodeRecord(rest)
			if err != nil {
				st.Truncated = true
				return st, nil
			}
			recs = append(recs, rec)
		}
		for _, rec := range recs {
			if err := fn(rec); err != nil {
				return st, err
			}
			st.Records++
		}
		st.Batches++
		st.GoodBytes += int64(frameHeader) + int64(plen)
	}
}
