// Package wal implements the write-ahead log that makes memtable contents
// durable before they are flushed to an sstable. Records are framed with a
// length and a CRC32-C checksum; replay stops cleanly at the first torn or
// corrupt record, recovering everything written before the crash point.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Op is the kind of logged operation.
type Op byte

// Operations recorded in the log.
const (
	OpPut Op = iota + 1
	OpDelete
)

// Record is one logged write.
type Record struct {
	Op    Op
	Seq   uint64
	Key   []byte
	Value []byte // empty for OpDelete
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a record that failed checksum or structural checks.
var ErrCorrupt = errors.New("wal: corrupt record")

// frame layout: u32 payloadLen, u32 crc32(payload), payload.
const frameHeader = 8

func encodeRecord(r Record) []byte {
	payload := make([]byte, 0, 1+binary.MaxVarintLen64*3+len(r.Key)+len(r.Value))
	payload = append(payload, byte(r.Op))
	payload = binary.AppendUvarint(payload, r.Seq)
	payload = binary.AppendUvarint(payload, uint64(len(r.Key)))
	payload = append(payload, r.Key...)
	payload = binary.AppendUvarint(payload, uint64(len(r.Value)))
	payload = append(payload, r.Value...)

	out := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:8], crc32.Checksum(payload, crcTable))
	copy(out[frameHeader:], payload)
	return out
}

func decodePayload(payload []byte) (Record, error) {
	var r Record
	if len(payload) < 1 {
		return r, ErrCorrupt
	}
	r.Op = Op(payload[0])
	if r.Op != OpPut && r.Op != OpDelete {
		return r, ErrCorrupt
	}
	payload = payload[1:]
	seq, n := binary.Uvarint(payload)
	if n <= 0 {
		return r, ErrCorrupt
	}
	payload = payload[n:]
	r.Seq = seq
	klen, n := binary.Uvarint(payload)
	if n <= 0 || uint64(len(payload[n:])) < klen {
		return r, ErrCorrupt
	}
	payload = payload[n:]
	r.Key = append([]byte(nil), payload[:klen]...)
	payload = payload[klen:]
	vlen, n := binary.Uvarint(payload)
	if n <= 0 || uint64(len(payload[n:])) != vlen {
		return r, ErrCorrupt
	}
	r.Value = append([]byte(nil), payload[n:]...)
	return r, nil
}

// Writer appends records to a log file.
type Writer struct {
	f    *os.File
	size int64
}

// Create opens (truncating) a new log file at path.
func Create(path string) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: create: %w", err)
	}
	return &Writer{f: f}, nil
}

// Append writes one record. The record is buffered by the OS; call Sync for
// durability.
func (w *Writer) Append(r Record) error {
	buf := encodeRecord(r)
	if _, err := w.f.Write(buf); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	w.size += int64(len(buf))
	return nil
}

// Sync flushes the log to stable storage.
func (w *Writer) Sync() error { return w.f.Sync() }

// Size returns the bytes appended so far.
func (w *Writer) Size() int64 { return w.size }

// Close closes the underlying file.
func (w *Writer) Close() error { return w.f.Close() }

// Replay reads records from path in order, invoking fn for each. A clean
// EOF or a torn/corrupt tail ends replay without error — the standard
// recovery contract: everything durably appended before the damage is
// recovered, the damaged suffix is discarded. Structural corruption in the
// middle of the file is indistinguishable from a torn tail and is treated
// the same way.
func Replay(path string, fn func(Record) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("wal: open for replay: %w", err)
	}
	defer f.Close()

	var header [frameHeader]byte
	for {
		if _, err := io.ReadFull(f, header[:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return nil // clean end or torn header
			}
			return fmt.Errorf("wal: replay read: %w", err)
		}
		plen := binary.LittleEndian.Uint32(header[0:4])
		want := binary.LittleEndian.Uint32(header[4:8])
		const maxRecord = 64 << 20
		if plen > maxRecord {
			return nil // implausible length: treat as torn tail
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(f, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return nil // torn payload
			}
			return fmt.Errorf("wal: replay read: %w", err)
		}
		if crc32.Checksum(payload, crcTable) != want {
			return nil // corrupt record: stop at last good prefix
		}
		rec, err := decodePayload(payload)
		if err != nil {
			return nil
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
}
