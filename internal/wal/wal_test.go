package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func writeLog(t *testing.T, path string, recs []Record) {
	t.Helper()
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func replayAll(t *testing.T, path string) []Record {
	t.Helper()
	var got []Record
	if err := Replay(path, func(r Record) error {
		got = append(got, r)
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return got
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	recs := []Record{
		{Op: OpPut, Seq: 1, Key: []byte("a"), Value: []byte("1")},
		{Op: OpDelete, Seq: 2, Key: []byte("a")},
		{Op: OpPut, Seq: 3, Key: []byte("b"), Value: bytes.Repeat([]byte("x"), 10000)},
	}
	writeLog(t, path, recs)
	got := replayAll(t, path)
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(recs))
	}
	for i, want := range recs {
		g := got[i]
		if g.Op != want.Op || g.Seq != want.Seq || !bytes.Equal(g.Key, want.Key) {
			t.Errorf("record %d = %+v, want %+v", i, g, want)
		}
		if want.Op == OpPut && !bytes.Equal(g.Value, want.Value) {
			t.Errorf("record %d value mismatch", i)
		}
	}
}

func TestEmptyLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	writeLog(t, path, nil)
	if got := replayAll(t, path); len(got) != 0 {
		t.Errorf("replayed %d records from empty log", len(got))
	}
}

func TestReplayMissingFile(t *testing.T) {
	err := Replay(filepath.Join(t.TempDir(), "nope"), func(Record) error { return nil })
	if err == nil {
		t.Errorf("replay of missing file succeeded")
	}
}

func TestTornTailRecoversPrefix(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "log")
	recs := []Record{
		{Op: OpPut, Seq: 1, Key: []byte("a"), Value: []byte("1")},
		{Op: OpPut, Seq: 2, Key: []byte("b"), Value: []byte("2")},
	}
	writeLog(t, path, recs)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < 12; cut++ { // chop bytes off the tail
		torn := filepath.Join(dir, fmt.Sprintf("torn-%d", cut))
		if err := os.WriteFile(torn, data[:len(data)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got := replayAll(t, torn)
		if len(got) != 1 || got[0].Seq != 1 {
			t.Errorf("cut %d: replayed %d records, want just the first", cut, len(got))
		}
	}
}

func TestCorruptMiddleStopsCleanly(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "log")
	writeLog(t, path, []Record{
		{Op: OpPut, Seq: 1, Key: []byte("a"), Value: []byte("1")},
		{Op: OpPut, Seq: 2, Key: []byte("b"), Value: []byte("2")},
	})
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the second record's payload.
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, path)
	if len(got) != 1 || got[0].Seq != 1 {
		t.Errorf("replayed %d records after corruption, want 1", len(got))
	}
}

func TestImplausibleLengthTreatedAsTorn(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	// Header claiming a 1 GiB record.
	buf := make([]byte, 8)
	buf[3] = 0x40
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if got := replayAll(t, path); len(got) != 0 {
		t.Errorf("replayed %d records", len(got))
	}
}

func TestReplayCallbackError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	writeLog(t, path, []Record{{Op: OpPut, Seq: 1, Key: []byte("k"), Value: []byte("v")}})
	sentinel := errors.New("stop")
	err := Replay(path, func(Record) error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Errorf("Replay err = %v, want sentinel", err)
	}
}

func TestWriterSize(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if w.Size() != 0 {
		t.Errorf("initial Size = %d", w.Size())
	}
	if err := w.Append(Record{Op: OpPut, Seq: 1, Key: []byte("k"), Value: []byte("v")}); err != nil {
		t.Fatal(err)
	}
	if w.Size() == 0 {
		t.Errorf("Size = 0 after append")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	dir := t.TempDir()
	i := 0
	f := func(keys [][]byte, dels []bool) bool {
		i++
		path := filepath.Join(dir, fmt.Sprintf("log-%d", i))
		w, err := Create(path)
		if err != nil {
			return false
		}
		var want []Record
		for j, k := range keys {
			r := Record{Op: OpPut, Seq: uint64(j), Key: k, Value: []byte{byte(j)}}
			if j < len(dels) && dels[j] {
				r = Record{Op: OpDelete, Seq: uint64(j), Key: k}
			}
			if err := w.Append(r); err != nil {
				return false
			}
			want = append(want, r)
		}
		if err := w.Close(); err != nil {
			return false
		}
		var got []Record
		if err := Replay(path, func(r Record) error { got = append(got, r); return nil }); err != nil {
			return false
		}
		if len(got) != len(want) {
			return false
		}
		for j := range want {
			if got[j].Op != want[j].Op || got[j].Seq != want[j].Seq || !bytes.Equal(got[j].Key, want[j].Key) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAppend(b *testing.B) {
	path := filepath.Join(b.TempDir(), "log")
	w, err := Create(path)
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	rec := Record{Op: OpPut, Seq: 1, Key: []byte("key-00000001"), Value: bytes.Repeat([]byte("v"), 100)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Seq = uint64(i)
		if err := w.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
}
