package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"repro/internal/vfs"
)

func writeLog(t *testing.T, path string, recs []Record) {
	t.Helper()
	w, err := Create(vfs.Default, path)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func replayAll(t *testing.T, path string) ([]Record, ReplayStats) {
	t.Helper()
	var got []Record
	st, err := Replay(vfs.Default, path, func(r Record) error {
		got = append(got, r)
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if st.Records != len(got) {
		t.Fatalf("stats.Records = %d, delivered %d", st.Records, len(got))
	}
	return got, st
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	recs := []Record{
		{Op: OpPut, Seq: 1, Key: []byte("a"), Value: []byte("1")},
		{Op: OpDelete, Seq: 2, Key: []byte("a")},
		{Op: OpPut, Seq: 3, Key: []byte("b"), Value: bytes.Repeat([]byte("x"), 10000)},
	}
	writeLog(t, path, recs)
	got, st := replayAll(t, path)
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(recs))
	}
	if st.Truncated {
		t.Errorf("clean log reported truncated")
	}
	if st.Batches != len(recs) {
		t.Errorf("Batches = %d, want %d (one frame per Append)", st.Batches, len(recs))
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.GoodBytes != fi.Size() {
		t.Errorf("GoodBytes = %d, want file size %d", st.GoodBytes, fi.Size())
	}
	for i, want := range recs {
		g := got[i]
		if g.Op != want.Op || g.Seq != want.Seq || !bytes.Equal(g.Key, want.Key) {
			t.Errorf("record %d = %+v, want %+v", i, g, want)
		}
		if want.Op == OpPut && !bytes.Equal(g.Value, want.Value) {
			t.Errorf("record %d value mismatch", i)
		}
	}
}

func TestAppendBatchRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	w, err := Create(vfs.Default, path)
	if err != nil {
		t.Fatal(err)
	}
	batch1 := []Record{
		{Op: OpPut, Seq: 1, Key: []byte("a"), Value: []byte("1")},
		{Op: OpDelete, Seq: 2, Key: []byte("b")},
		{Op: OpPut, Seq: 3, Key: []byte("c"), Value: []byte("3")},
	}
	batch2 := []Record{
		{Op: OpPut, Seq: 4, Key: []byte("d"), Value: bytes.Repeat([]byte("y"), 5000)},
	}
	if err := w.AppendBatch(batch1); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendBatch(nil); err != nil { // empty batch is a no-op
		t.Fatal(err)
	}
	if err := w.AppendBatch(batch2); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, st := replayAll(t, path)
	want := append(append([]Record(nil), batch1...), batch2...)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	if st.Batches != 2 {
		t.Errorf("Batches = %d, want 2", st.Batches)
	}
	for i := range want {
		if got[i].Op != want[i].Op || got[i].Seq != want[i].Seq ||
			!bytes.Equal(got[i].Key, want[i].Key) || !bytes.Equal(got[i].Value, want[i].Value) {
			t.Errorf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestBatchAtomicOnTornTail cuts a two-batch log at every offset inside the
// second batch's frame and verifies the second batch vanishes entirely —
// never a partial batch — while the first batch survives intact.
func TestBatchAtomicOnTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "log")
	w, err := Create(vfs.Default, path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendBatch([]Record{
		{Op: OpPut, Seq: 1, Key: []byte("a"), Value: []byte("1")},
		{Op: OpPut, Seq: 2, Key: []byte("b"), Value: []byte("2")},
	}); err != nil {
		t.Fatal(err)
	}
	firstLen := w.Size()
	if err := w.AppendBatch([]Record{
		{Op: OpPut, Seq: 3, Key: []byte("c"), Value: []byte("3")},
		{Op: OpPut, Seq: 4, Key: []byte("d"), Value: []byte("4")},
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := firstLen; cut < int64(len(data)); cut++ {
		torn := filepath.Join(dir, fmt.Sprintf("torn-%d", cut))
		if err := os.WriteFile(torn, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got, st := replayAll(t, torn)
		if len(got) != 2 || got[0].Seq != 1 || got[1].Seq != 2 {
			t.Fatalf("cut %d: replayed %d records, want exactly the first batch", cut, len(got))
		}
		if st.Batches != 1 || st.GoodBytes != firstLen {
			t.Errorf("cut %d: stats = %+v, want 1 batch / %d good bytes", cut, st, firstLen)
		}
		if cut > firstLen && !st.Truncated {
			t.Errorf("cut %d: truncation not reported", cut)
		}
	}
}

func TestEmptyLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	writeLog(t, path, nil)
	got, st := replayAll(t, path)
	if len(got) != 0 {
		t.Errorf("replayed %d records from empty log", len(got))
	}
	if st.Truncated {
		t.Errorf("empty log reported truncated")
	}
}

func TestReplayMissingFile(t *testing.T) {
	_, err := Replay(vfs.Default, filepath.Join(t.TempDir(), "nope"), func(Record) error { return nil })
	if err == nil {
		t.Errorf("replay of missing file succeeded")
	}
}

func TestTornTailRecoversPrefix(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "log")
	recs := []Record{
		{Op: OpPut, Seq: 1, Key: []byte("a"), Value: []byte("1")},
		{Op: OpPut, Seq: 2, Key: []byte("b"), Value: []byte("2")},
	}
	writeLog(t, path, recs)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < 12; cut++ { // chop bytes off the tail
		torn := filepath.Join(dir, fmt.Sprintf("torn-%d", cut))
		if err := os.WriteFile(torn, data[:len(data)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got, st := replayAll(t, torn)
		if len(got) != 1 || got[0].Seq != 1 {
			t.Errorf("cut %d: replayed %d records, want just the first", cut, len(got))
		}
		if !st.Truncated {
			t.Errorf("cut %d: truncation not reported", cut)
		}
		if st.GoodBytes != int64(len(data))/2 {
			t.Errorf("cut %d: GoodBytes = %d, want %d", cut, st.GoodBytes, len(data)/2)
		}
	}
}

func TestCorruptMiddleStopsCleanly(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "log")
	writeLog(t, path, []Record{
		{Op: OpPut, Seq: 1, Key: []byte("a"), Value: []byte("1")},
		{Op: OpPut, Seq: 2, Key: []byte("b"), Value: []byte("2")},
	})
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the second record's payload.
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, st := replayAll(t, path)
	if len(got) != 1 || got[0].Seq != 1 {
		t.Errorf("replayed %d records after corruption, want 1", len(got))
	}
	if !st.Truncated {
		t.Errorf("corruption not reported as truncation")
	}
}

func TestImplausibleLengthTreatedAsTorn(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	// Header claiming a 1 GiB record.
	buf := make([]byte, 8)
	buf[3] = 0x40
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	got, st := replayAll(t, path)
	if len(got) != 0 {
		t.Errorf("replayed %d records", len(got))
	}
	if !st.Truncated {
		t.Errorf("implausible length not reported as truncation")
	}
}

func TestReplayCallbackError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	writeLog(t, path, []Record{{Op: OpPut, Seq: 1, Key: []byte("k"), Value: []byte("v")}})
	sentinel := errors.New("stop")
	_, err := Replay(vfs.Default, path, func(Record) error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Errorf("Replay err = %v, want sentinel", err)
	}
}

func TestWriterSize(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	w, err := Create(vfs.Default, path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if w.Size() != 0 {
		t.Errorf("initial Size = %d", w.Size())
	}
	if err := w.Append(Record{Op: OpPut, Seq: 1, Key: []byte("k"), Value: []byte("v")}); err != nil {
		t.Fatal(err)
	}
	if w.Size() == 0 {
		t.Errorf("Size = 0 after append")
	}
}

// TestSyncFailurePoisonsWriter forces a sync failure (fsync on a closed
// file) and verifies the writer refuses all further work with the sticky
// error: appends after an untrustworthy sync must not be acknowledged,
// or replay (which stops at the first damaged frame) could silently
// discard them.
func TestSyncFailurePoisonsWriter(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	w, err := Create(vfs.Default, path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Record{Op: OpPut, Seq: 1, Key: []byte("k"), Value: []byte("v")}); err != nil {
		t.Fatal(err)
	}
	if err := w.Err(); err != nil {
		t.Fatalf("healthy writer reports sticky error: %v", err)
	}
	w.Close()
	if err := w.Sync(); err == nil {
		t.Fatal("sync on closed file succeeded")
	}
	if w.Err() == nil {
		t.Fatal("failed sync did not poison the writer")
	}
	if err := w.Append(Record{Op: OpPut, Seq: 2, Key: []byte("k2"), Value: []byte("v")}); err == nil {
		t.Fatal("append accepted after poisoning")
	}
	if err := w.Sync(); err == nil {
		t.Fatal("sync accepted after poisoning")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	dir := t.TempDir()
	i := 0
	f := func(keys [][]byte, dels []bool) bool {
		i++
		path := filepath.Join(dir, fmt.Sprintf("log-%d", i))
		w, err := Create(vfs.Default, path)
		if err != nil {
			return false
		}
		var want []Record
		for j, k := range keys {
			r := Record{Op: OpPut, Seq: uint64(j), Key: k, Value: []byte{byte(j)}}
			if j < len(dels) && dels[j] {
				r = Record{Op: OpDelete, Seq: uint64(j), Key: k}
			}
			if err := w.Append(r); err != nil {
				return false
			}
			want = append(want, r)
		}
		if err := w.Close(); err != nil {
			return false
		}
		var got []Record
		if _, err := Replay(vfs.Default, path, func(r Record) error { got = append(got, r); return nil }); err != nil {
			return false
		}
		if len(got) != len(want) {
			return false
		}
		for j := range want {
			if got[j].Op != want[j].Op || got[j].Seq != want[j].Seq || !bytes.Equal(got[j].Key, want[j].Key) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestQuickBatchSplit appends the same records once as arbitrary batches
// and once as singles; replay must deliver identical sequences, proving
// batch framing changes durability granularity but never content.
func TestQuickBatchSplit(t *testing.T) {
	dir := t.TempDir()
	i := 0
	f := func(keys [][]byte, splits []uint8) bool {
		i++
		recs := make([]Record, len(keys))
		for j, k := range keys {
			recs[j] = Record{Op: OpPut, Seq: uint64(j), Key: k, Value: []byte{byte(j)}}
		}
		batched := filepath.Join(dir, fmt.Sprintf("b-%d", i))
		w, err := Create(vfs.Default, batched)
		if err != nil {
			return false
		}
		rest := recs
		for si := 0; len(rest) > 0; si++ {
			n := 1
			if si < len(splits) {
				n = 1 + int(splits[si])%4
			}
			if n > len(rest) {
				n = len(rest)
			}
			if err := w.AppendBatch(rest[:n]); err != nil {
				return false
			}
			rest = rest[n:]
		}
		if err := w.Close(); err != nil {
			return false
		}
		var got []Record
		if _, err := Replay(vfs.Default, batched, func(r Record) error { got = append(got, r); return nil }); err != nil {
			return false
		}
		if len(got) != len(recs) {
			return false
		}
		for j := range recs {
			if got[j].Seq != recs[j].Seq || !bytes.Equal(got[j].Key, recs[j].Key) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAppend(b *testing.B) {
	path := filepath.Join(b.TempDir(), "log")
	w, err := Create(vfs.Default, path)
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	rec := Record{Op: OpPut, Seq: 1, Key: []byte("key-00000001"), Value: bytes.Repeat([]byte("v"), 100)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Seq = uint64(i)
		if err := w.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppendBatch(b *testing.B) {
	for _, size := range []int{8, 64} {
		b.Run(fmt.Sprintf("batch=%d", size), func(b *testing.B) {
			path := filepath.Join(b.TempDir(), "log")
			w, err := Create(vfs.Default, path)
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			val := bytes.Repeat([]byte("v"), 100)
			recs := make([]Record, size)
			for i := range recs {
				recs[i] = Record{Op: OpPut, Seq: uint64(i), Key: []byte(fmt.Sprintf("key-%08d", i)), Value: val}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := w.AppendBatch(recs); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(size), "recs/op")
		})
	}
}

func BenchmarkReplay(b *testing.B) {
	path := filepath.Join(b.TempDir(), "log")
	w, err := Create(vfs.Default, path)
	if err != nil {
		b.Fatal(err)
	}
	val := bytes.Repeat([]byte("v"), 100)
	const n = 10000
	for i := 0; i < n; i++ {
		if err := w.Append(Record{Op: OpPut, Seq: uint64(i), Key: []byte(fmt.Sprintf("key-%08d", i)), Value: val}); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := Replay(vfs.Default, path, func(Record) error { return nil })
		if err != nil || st.Records != n {
			b.Fatalf("replay: %v, %d records", err, st.Records)
		}
	}
}
