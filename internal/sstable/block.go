package sstable

import (
	"bytes"
	"encoding/binary"

	"repro/internal/iterator"
)

// Version-3 data blocks: prefix-compressed entries terminated by a
// restart-point offset array. Every restartInterval-th entry is a restart:
// it stores its full key (sharedLen 0) and its byte offset is recorded in
// the trailer, so a point lookup binary-searches the restart array and
// then decodes at most one interval of entries instead of walking the
// whole block. Entries between restarts store only the suffix that
// differs from the previous key.

// restartInterval is the number of entries between restart points. 16 is
// the LevelDB/RocksDB default: small enough that the post-search linear
// walk is short, large enough that the u32-per-restart trailer and the
// full keys at restarts cost little.
const restartInterval = 16

// blockBuilder accumulates one version-3 data block.
type blockBuilder struct {
	buf      []byte
	restarts []uint32
	prevKey  []byte
	count    int
}

func (b *blockBuilder) empty() bool { return b.count == 0 }

// size returns the encoded size the block would have if finished now.
func (b *blockBuilder) size() int { return len(b.buf) + 4*len(b.restarts) + 4 }

func (b *blockBuilder) reset() {
	b.buf = b.buf[:0]
	b.restarts = b.restarts[:0]
	b.prevKey = b.prevKey[:0]
	b.count = 0
}

// add appends an entry; keys must arrive in strictly increasing order
// (the Writer enforces this).
func (b *blockBuilder) add(e iterator.Entry) {
	shared := 0
	if b.count%restartInterval == 0 {
		b.restarts = append(b.restarts, uint32(len(b.buf)))
	} else {
		n := len(b.prevKey)
		if len(e.Key) < n {
			n = len(e.Key)
		}
		for shared < n && b.prevKey[shared] == e.Key[shared] {
			shared++
		}
	}
	b.buf = binary.AppendUvarint(b.buf, uint64(shared))
	b.buf = binary.AppendUvarint(b.buf, uint64(len(e.Key)-shared))
	b.buf = binary.AppendUvarint(b.buf, e.Seq)
	var flags byte
	if e.Tombstone {
		flags |= 1
	}
	b.buf = append(b.buf, flags)
	b.buf = append(b.buf, e.Key[shared:]...)
	if !e.Tombstone {
		b.buf = binary.AppendUvarint(b.buf, uint64(len(e.Value)))
		b.buf = append(b.buf, e.Value...)
	}
	b.prevKey = append(b.prevKey[:0], e.Key...)
	b.count++
}

// finish appends the restart trailer and returns the complete block
// payload, which aliases the builder's buffer until the next reset.
func (b *blockBuilder) finish() []byte {
	for _, r := range b.restarts {
		b.buf = binary.LittleEndian.AppendUint32(b.buf, r)
	}
	b.buf = binary.LittleEndian.AppendUint32(b.buf, uint32(len(b.restarts)))
	return b.buf
}

// parsedBlock is a validated view over a version-3 block payload: the
// entry region and the restart offsets, both aliasing the payload.
type parsedBlock struct {
	data     []byte // entry region
	restarts []byte // restart array (4 bytes per restart)
	n        int    // number of restarts
}

// parseV3Block splits and validates a block payload. Restart offsets must
// be strictly ascending, start at 0 and point inside the entry region;
// garbage counts, truncated arrays and out-of-order offsets all fail with
// ErrCorrupt here, before any entry is decoded.
func parseV3Block(payload []byte) (parsedBlock, error) {
	var pb parsedBlock
	if len(payload) < 4 {
		return pb, ErrCorrupt
	}
	n := int(binary.LittleEndian.Uint32(payload[len(payload)-4:]))
	if n < 0 || n > (len(payload)-4)/4 {
		return pb, ErrCorrupt
	}
	dataLen := len(payload) - 4 - 4*n
	pb.data = payload[:dataLen]
	pb.restarts = payload[dataLen : len(payload)-4]
	pb.n = n
	if n == 0 {
		// Only the degenerate empty block has no restarts; any entry bytes
		// without a restart covering them are unreachable, i.e. corrupt.
		if dataLen != 0 {
			return pb, ErrCorrupt
		}
		return pb, nil
	}
	prev := -1
	for i := 0; i < n; i++ {
		off := int(binary.LittleEndian.Uint32(pb.restarts[4*i:]))
		if off <= prev || off >= dataLen {
			return pb, ErrCorrupt
		}
		prev = off
	}
	if int(binary.LittleEndian.Uint32(pb.restarts)) != 0 {
		return pb, ErrCorrupt
	}
	return pb, nil
}

func (pb *parsedBlock) restartOffset(i int) int {
	return int(binary.LittleEndian.Uint32(pb.restarts[4*i:]))
}

// v3EntryHeader is the decoded fixed part of one entry.
type v3EntryHeader struct {
	shared, unshared int
	seq              uint64
	tombstone        bool
	keySuffix        []byte // unshared key bytes, aliasing the block
	value            []byte // aliasing the block; nil for tombstones
	next             int    // offset of the following entry
}

// decodeV3Header parses the entry at data[off:] into h, which is an
// out-parameter purely to keep the per-entry decode free of struct copies
// on the hot read path. prevKeyLen bounds the shared-prefix length; a
// shared length exceeding the previous key is prefix-encoding corruption.
func decodeV3Header(h *v3EntryHeader, data []byte, off, prevKeyLen int) error {
	buf := data[off:]
	consumed := 0
	shared, w := binary.Uvarint(buf)
	if w <= 0 || shared > uint64(prevKeyLen) {
		return ErrCorrupt
	}
	buf = buf[w:]
	consumed += w
	unshared, w := binary.Uvarint(buf)
	if w <= 0 {
		return ErrCorrupt
	}
	buf = buf[w:]
	consumed += w
	seq, w := binary.Uvarint(buf)
	if w <= 0 {
		return ErrCorrupt
	}
	buf = buf[w:]
	consumed += w
	if len(buf) < 1 {
		return ErrCorrupt
	}
	flags := buf[0]
	buf = buf[1:]
	consumed++
	if uint64(len(buf)) < unshared {
		return ErrCorrupt
	}
	h.shared = int(shared)
	h.unshared = int(unshared)
	h.seq = seq
	h.tombstone = flags&1 != 0
	h.keySuffix = buf[:unshared:unshared]
	buf = buf[unshared:]
	consumed += int(unshared)
	h.value = nil
	if !h.tombstone {
		vlen, w := binary.Uvarint(buf)
		if w <= 0 || uint64(len(buf[w:])) < vlen {
			return ErrCorrupt
		}
		consumed += w
		h.value = buf[w : uint64(w)+vlen : uint64(w)+vlen]
		consumed += int(vlen)
	}
	h.next = off + consumed
	return nil
}

// restartKey returns the full key stored at restart i, aliasing the block
// (restart entries have sharedLen 0 by construction; anything else is
// corruption).
func (pb *parsedBlock) restartKey(i int) ([]byte, error) {
	var h v3EntryHeader
	if err := decodeV3Header(&h, pb.data, pb.restartOffset(i), 0); err != nil {
		return nil, err
	}
	return h.keySuffix, nil
}

// searchV3Block finds target in a parsed version-3 block: binary search to
// the greatest restart whose key is <= target, then a linear walk of at
// most one interval. On a hit h holds the matched entry (its keySuffix and
// value alias the payload); the full key is not materialized — it is by
// definition byte-identical to target. The walk compares incrementally:
// it tracks p, the length of the common prefix of the previous key and
// target, so each entry costs one comparison of its unshared suffix and
// no key reconstruction.
func searchV3Block(pb parsedBlock, target []byte, h *v3EntryHeader) error {
	if pb.n == 0 {
		return ErrNotFound
	}
	lo, hi := 0, pb.n-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		k, err := pb.restartKey(mid)
		if err != nil {
			return err
		}
		if bytes.Compare(k, target) <= 0 {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	off := pb.restartOffset(lo)
	end := len(pb.data)
	if lo+1 < pb.n {
		end = pb.restartOffset(lo + 1)
	}
	prevLen := 0 // length of the previous entry's key
	p := 0       // length of the common prefix of the previous key and target
	for off < end {
		if err := decodeV3Header(h, pb.data, off, prevLen); err != nil {
			return err
		}
		// Keys ascend, so every previous key was < target. If this entry
		// shares more than p bytes with the previous key, it inherits the
		// previous key's first divergence from target (at position p, below
		// target's byte there) and is still < target: skip without comparing.
		if h.shared <= p {
			// prev[:shared] == target[:shared], so the order of this key and
			// target is the order of the unshared suffix and target[shared:].
			rest := target[h.shared:]
			n := len(h.keySuffix)
			if n > len(rest) {
				n = len(rest)
			}
			d := 0
			for d < n && h.keySuffix[d] == rest[d] {
				d++
			}
			switch {
			case d < n && h.keySuffix[d] < rest[d]:
				p = h.shared + d // still below target; record the divergence
			case d < n:
				return ErrNotFound // first key above target: not present
			case len(h.keySuffix) == len(rest):
				return nil // exact match
			case len(h.keySuffix) < len(rest):
				p = h.shared + d // proper prefix of target: below it
			default:
				return ErrNotFound // target is a proper prefix: this key is above
			}
		}
		prevLen = h.shared + len(h.keySuffix)
		off = h.next
	}
	return ErrNotFound
}

// v3BlockIter walks a parsed block in order. Decoded keys are materialized
// into an append-only arena rather than a reused buffer: downstream
// combinators (iterator.Dedup, the k-way merge) legitimately retain an
// Entry across Next, so a key must stay valid for as long as the iterator
// — and anything holding its entries — is reachable. Restart keys alias
// the block payload directly (they are stored whole), which keeps roughly
// one key per interval out of the arena for free.
type v3BlockIter struct {
	pb     parsedBlock
	off    int
	curKey []byte // full key of the entry most recently decoded
	arena  []byte // chunked backing store for materialized keys
}

func newV3BlockIter(payload []byte) (*v3BlockIter, error) {
	pb, err := parseV3Block(payload)
	if err != nil {
		return nil, err
	}
	return &v3BlockIter{pb: pb}, nil
}

// next decodes the following entry into dst; ok is false at the end of the
// block. dst is an out-parameter so block iteration does not copy a
// two-slice Entry struct (and pay its write barriers) through every layer
// of the iterator stack per entry.
func (it *v3BlockIter) next(dst *iterator.Entry) (bool, error) {
	if it.off >= len(it.pb.data) {
		return false, nil
	}
	var h v3EntryHeader
	if err := decodeV3Header(&h, it.pb.data, it.off, len(it.curKey)); err != nil {
		return false, err
	}
	if h.shared == 0 {
		// Full key: alias the block payload, no arena copy needed.
		it.curKey = h.keySuffix
	} else {
		klen := h.shared + h.unshared
		if cap(it.arena)-len(it.arena) < klen {
			size := 4096
			if klen > size {
				size = klen
			}
			it.arena = make([]byte, 0, size)
		}
		nk := it.arena[len(it.arena) : len(it.arena)+klen]
		copy(nk, it.curKey[:h.shared])
		copy(nk[h.shared:], h.keySuffix)
		it.arena = it.arena[:len(it.arena)+klen]
		it.curKey = nk
	}
	it.off = h.next
	dst.Key = it.curKey
	dst.Value = h.value
	dst.Seq = h.seq
	dst.Tombstone = h.tombstone
	return true, nil
}
