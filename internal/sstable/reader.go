package sstable

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/bloom"
	"repro/internal/cache"
	"repro/internal/hll"
	"repro/internal/iterator"
	"repro/internal/vfs"
)

// readerIDs hands each Reader a unique ID for block-cache keying.
var readerIDs atomic.Uint64

// FilterMetrics accumulates Bloom-filter effectiveness counters across all
// the readers of a store (tables come and go under compaction, so the
// counters must outlive any single Reader). Negatives are lookups the
// filter rejected without touching a data block — the work the filter
// saved; FalsePositives are lookups the filter let through that found no
// key — the wasted block reads. All fields are safe for concurrent update.
type FilterMetrics struct {
	Negatives      atomic.Uint64
	FalsePositives atomic.Uint64
}

// Cache is the block-cache surface a Reader uses: satisfied by both the
// single cache.LRU and the mutex-striped cache.Sharded. Get returns a
// shared slice callers must not modify; Put transfers ownership of the
// value to the cache. Keys are (table ID, file offset) pairs; a version-3
// table's data blocks and index chunks occupy disjoint offsets in the same
// file, so the one key space covers both without collision.
type Cache interface {
	Get(k cache.Key) ([]byte, bool)
	Put(k cache.Key, value []byte)
	DropTable(table uint64)
}

// Reader serves point lookups and ordered scans from a finished sstable.
// It is safe for concurrent use: all methods read through an io.ReaderAt.
type Reader struct {
	id      uint64
	r       io.ReaderAt
	size    int64
	f       footer
	version int // footer version: 1 (no bounds block), 2, or 3
	bounds  Bounds
	// index is the flat block index of a version-1/2 table; nil for
	// version 3, whose index is partitioned.
	index []blockHandle
	// chunks is the version-3 top-level index; chunkData caches each
	// chunk's parsed handles, loaded lazily the first time a lookup or
	// scan lands in the chunk (open materializes only the top level).
	chunks    []chunkHandle
	chunkData []atomic.Pointer[[]blockHandle]
	filter    *bloom.Filter
	sketch    *hll.Sketch // key sketch from the bounds tail; nil when absent
	closer    io.Closer   // non-nil when the Reader owns the underlying file
	blocks    Cache
	fm        *FilterMetrics
}

// NewReader opens a table stored in r, whose total length is size bytes.
func NewReader(r io.ReaderAt, size int64) (*Reader, error) {
	return NewReaderWithBounds(r, size, nil)
}

// NewReaderWithBounds is NewReader with externally persisted bounds (the
// engine's manifest records each table's bounds): a version-1 table
// adopts a valid hint instead of paying the backfill block read at open.
// The hint is ignored for version-2+ tables — their footer is
// authoritative — and a nil or implausible hint falls back to backfill.
func NewReaderWithBounds(r io.ReaderAt, size int64, hint *Bounds) (*Reader, error) {
	if size < footerV1Size {
		return nil, ErrCorrupt
	}
	// The trailing magic picks the footer version; version 1 (64 bytes,
	// no bounds block) remains readable with bounds backfilled below.
	var magicBuf [8]byte
	if _, err := r.ReadAt(magicBuf[:], size-8); err != nil {
		return nil, fmt.Errorf("sstable: read footer magic: %w", err)
	}
	fsize := int64(footerSize)
	switch binary.LittleEndian.Uint64(magicBuf[:]) {
	case MagicV1:
		fsize = footerV1Size
	case MagicV2, MagicV3:
	default:
		return nil, ErrCorrupt
	}
	if size < fsize {
		return nil, ErrCorrupt
	}
	buf := make([]byte, fsize)
	if _, err := r.ReadAt(buf, size-fsize); err != nil {
		return nil, fmt.Errorf("sstable: read footer: %w", err)
	}
	f, version, err := unmarshalFooter(buf)
	if err != nil {
		return nil, err
	}
	// Validate every footer-referenced region against the file size before
	// any allocation: a corrupt length must fail with ErrCorrupt, not
	// attempt a multi-gigabyte buffer.
	inFile := func(off, length uint64) bool {
		return length <= uint64(size) && off <= uint64(size)-length
	}
	if !inFile(f.indexOff, f.indexLen) || !inFile(f.bloomOff, f.bloomLen) ||
		(version >= FormatV2 && !inFile(f.boundsOff, f.boundsLen)) {
		return nil, ErrCorrupt
	}
	rd := &Reader{id: readerIDs.Add(1), r: r, size: size, f: f, version: version}
	if err := rd.loadIndex(); err != nil {
		return nil, err
	}
	if err := rd.loadBloom(); err != nil {
		return nil, err
	}
	if err := rd.loadBounds(hint); err != nil {
		return nil, err
	}
	return rd, nil
}

// Open opens an sstable file by path; Close releases the file handle.
func Open(path string) (*Reader, error) {
	return OpenWithBounds(path, nil)
}

// OpenWithBounds is Open taking a persisted bounds hint; see
// NewReaderWithBounds.
func OpenWithBounds(path string, hint *Bounds) (*Reader, error) {
	return OpenFS(vfs.Default, path, hint)
}

// OpenFS is OpenWithBounds reading through fsys, so tests can serve table
// reads from a fault-injecting filesystem.
func OpenFS(fsys vfs.FS, path string, hint *Bounds) (*Reader, error) {
	file, err := fsys.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := file.Stat()
	if err != nil {
		file.Close()
		return nil, err
	}
	rd, err := NewReaderWithBounds(file, st.Size(), hint)
	if err != nil {
		file.Close()
		return nil, fmt.Errorf("sstable: open %s: %w", path, err)
	}
	rd.closer = file
	return rd, nil
}

// SetBlockCache attaches a shared cache used for data-block reads. Call
// before serving reads; passing nil disables caching.
func (rd *Reader) SetBlockCache(c Cache) { rd.blocks = c }

// SetFilterMetrics attaches a store-shared Bloom-filter counter set that
// Get updates; passing nil disables counting.
func (rd *Reader) SetFilterMetrics(m *FilterMetrics) { rd.fm = m }

// Close releases the underlying file when the Reader was created by Open
// (otherwise it only detaches cached blocks).
func (rd *Reader) Close() error {
	if rd.blocks != nil {
		rd.blocks.DropTable(rd.id)
	}
	if rd.closer != nil {
		return rd.closer.Close()
	}
	return nil
}

// blockBufPool recycles block-read buffers. A buffer re-enters the pool
// only when the payload provably does not escape the probe: a point
// lookup that misses inside the block (Bloom false positive, key absent
// from its candidate block) recycles, as does the frame buffer of a
// compressed block (its decoded payload is a fresh allocation). Payloads
// handed to the block cache or returned to callers keep their buffers —
// those fall to the garbage collector.
var blockBufPool = sync.Pool{New: func() any { return new([]byte) }}

// getBlockBuf returns a pooled buffer of length n.
func getBlockBuf(n int) *[]byte {
	bp := blockBufPool.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, n)
	}
	*bp = (*bp)[:n]
	return bp
}

// maxPooledBlockBuf caps what re-enters the pool: an occasional giant
// block (a multi-megabyte value) must not leave its backing array pinned
// in the pool forever, nor resurface under a small read that would retain
// far more memory than its length suggests.
const maxPooledBlockBuf = 128 << 10

func putBlockBuf(bp *[]byte) {
	if cap(*bp) <= maxPooledBlockBuf {
		blockBufPool.Put(bp)
	}
}

// readChecksummed reads and verifies a framed payload+crc32 region. The
// returned payload aliases a freshly allocated buffer the caller owns (the
// index and bloom loaders retain slices of it, so it cannot be pooled).
func (rd *Reader) readChecksummed(off, length uint64) ([]byte, error) {
	buf := make([]byte, length)
	if _, err := rd.r.ReadAt(buf, int64(off)); err != nil {
		return nil, fmt.Errorf("sstable: read at %d: %w", off, err)
	}
	return verifyChecksummed(buf)
}

// readBlock reads and decodes a data block through the block cache when
// one is attached. Cached payloads are stored decompressed and verified.
// The second result is an ownership token: non-nil means the payload's
// backing memory belongs exclusively to the caller — it may be returned
// to the user without a defensive copy, and if the payload provably does
// not escape the probe, passing the token to putBlockBuf recycles the
// buffer. A nil token means the payload is shared with the block cache
// and must be copied before it escapes to anyone who could modify it.
func (rd *Reader) readBlock(h blockHandle) ([]byte, *[]byte, error) {
	var key cache.Key
	if rd.blocks != nil {
		key = cache.Key{Table: rd.id, Offset: h.offset}
		if payload, ok := rd.blocks.Get(key); ok {
			return payload, nil, nil
		}
	}
	// A cache-fill read allocates exactly: its payload transfers to the
	// cache (so a pooled buffer would never return to the pool), and the
	// LRU accounts len(value) — a payload aliasing an oversized recycled
	// array would pin memory the cache budget never sees. The pool serves
	// the cacheless reads, whose buffers provably come back on misses.
	var bp *[]byte
	var buf []byte
	if rd.blocks == nil {
		bp = getBlockBuf(int(h.length) + 4)
		buf = *bp
	} else {
		buf = make([]byte, h.length+4)
	}
	recycle := func() {
		if bp != nil {
			putBlockBuf(bp)
		}
	}
	if _, err := rd.r.ReadAt(buf, int64(h.offset)); err != nil {
		recycle()
		return nil, nil, fmt.Errorf("sstable: read block at %d: %w", h.offset, err)
	}
	payload, err := decodeDataBlock(buf, rd.version)
	if err != nil {
		recycle()
		return nil, nil, err
	}
	if rd.blocks != nil {
		// Ownership transfers to the cache: shared from here on.
		rd.blocks.Put(key, payload)
		return payload, nil, nil
	}
	// A raw-codec payload aliases the pooled buffer; a compressed (or
	// empty) payload is a fresh allocation, so its frame buffer recycles
	// immediately and the payload itself becomes the pooled token.
	aliases := len(payload) > 0 && len(payload) <= len(buf)-4 &&
		&payload[0] == &buf[len(buf)-4-len(payload)]
	if !aliases {
		recycle()
		bp = &payload
	}
	return payload, bp, nil
}

// parseHandles decodes a run of block handles (a version-1/2 flat index
// or one version-3 index chunk), validating every referenced block
// against the file size.
func (rd *Reader) parseHandles(payload []byte) ([]blockHandle, error) {
	count, n := binary.Uvarint(payload)
	if n <= 0 {
		return nil, ErrCorrupt
	}
	payload = payload[n:]
	handles := make([]blockHandle, 0, count)
	for i := uint64(0); i < count; i++ {
		klen, n := binary.Uvarint(payload)
		if n <= 0 || uint64(len(payload[n:])) < klen {
			return nil, ErrCorrupt
		}
		payload = payload[n:]
		key := payload[:klen:klen]
		payload = payload[klen:]
		off, n := binary.Uvarint(payload)
		if n <= 0 {
			return nil, ErrCorrupt
		}
		payload = payload[n:]
		length, n := binary.Uvarint(payload)
		if n <= 0 {
			return nil, ErrCorrupt
		}
		payload = payload[n:]
		// Like the footer regions: a block must lie within the file (its
		// frame is length+4 bytes with the crc), or reads would allocate
		// and read garbage-sized buffers. Ordered to avoid overflow.
		if length > uint64(rd.size) || length+4 > uint64(rd.size) || off > uint64(rd.size)-(length+4) {
			return nil, ErrCorrupt
		}
		handles = append(handles, blockHandle{firstKey: key, offset: off, length: length})
	}
	return handles, nil
}

func (rd *Reader) loadIndex() error {
	payload, err := rd.readChecksummed(rd.f.indexOff, rd.f.indexLen)
	if err != nil {
		return err
	}
	if rd.version < FormatV3 {
		rd.index, err = rd.parseHandles(payload)
		return err
	}
	// Version 3: only the top-level chunk index materializes at open;
	// each chunk's handles parse lazily in chunkHandles.
	count, n := binary.Uvarint(payload)
	if n <= 0 {
		return ErrCorrupt
	}
	payload = payload[n:]
	rd.chunks = make([]chunkHandle, 0, count)
	for i := uint64(0); i < count; i++ {
		klen, n := binary.Uvarint(payload)
		if n <= 0 || uint64(len(payload[n:])) < klen {
			return ErrCorrupt
		}
		payload = payload[n:]
		key := payload[:klen:klen]
		payload = payload[klen:]
		off, n := binary.Uvarint(payload)
		if n <= 0 {
			return ErrCorrupt
		}
		payload = payload[n:]
		length, n := binary.Uvarint(payload)
		if n <= 0 {
			return ErrCorrupt
		}
		payload = payload[n:]
		// A chunk frame needs at least its count varint and crc, and must
		// lie within the file.
		if length < 5 || length > uint64(rd.size) || off > uint64(rd.size)-length {
			return ErrCorrupt
		}
		rd.chunks = append(rd.chunks, chunkHandle{firstKey: key, offset: off, length: length})
	}
	rd.chunkData = make([]atomic.Pointer[[]blockHandle], len(rd.chunks))
	return nil
}

// chunkHandles returns the block handles of chunk ci, parsing and caching
// them on first use. For version-1/2 tables the flat index is the single
// chunk. Concurrent first uses may both parse; the store is idempotent.
func (rd *Reader) chunkHandles(ci int) ([]blockHandle, error) {
	if rd.version < FormatV3 {
		return rd.index, nil
	}
	if p := rd.chunkData[ci].Load(); p != nil {
		return *p, nil
	}
	c := rd.chunks[ci]
	payload, err := rd.readChecksummed(c.offset, c.length)
	if err != nil {
		return nil, err
	}
	handles, err := rd.parseHandles(payload)
	if err != nil {
		return nil, err
	}
	rd.chunkData[ci].Store(&handles)
	return handles, nil
}

// numChunks reports how many index chunks the table has (1 for the flat
// legacy index).
func (rd *Reader) numChunks() int {
	if rd.version < FormatV3 {
		return 1
	}
	return len(rd.chunks)
}

func (rd *Reader) loadBloom() error {
	payload, err := rd.readChecksummed(rd.f.bloomOff, rd.f.bloomLen)
	if err != nil {
		return err
	}
	filter, err := bloom.Unmarshal(payload)
	if err != nil {
		return fmt.Errorf("sstable: %w", err)
	}
	rd.filter = filter
	return nil
}

// loadBounds populates the table's key/sequence bounds: from the bounds
// block on version-2+ tables; on version-1 tables from a valid persisted
// hint (the engine manifest's copy, sparing the backfill read) or else
// backfilled from the data (smallest key from the block index, largest
// key by scanning the final block; the sequence range is unknowable
// without a full scan and degrades to [0, MaxUint64], which disables
// seq-based early exit but never correctness).
func (rd *Reader) loadBounds(hint *Bounds) error {
	if rd.version >= FormatV2 {
		payload, err := rd.readChecksummed(rd.f.boundsOff, rd.f.boundsLen)
		if err != nil {
			return err
		}
		b, tail, err := unmarshalBoundsTail(payload)
		if err != nil {
			return err
		}
		if rd.f.entryCount > 0 {
			if b.Smallest == nil || b.Largest == nil ||
				bytes.Compare(b.Smallest, b.Largest) > 0 || b.MinSeq > b.MaxSeq {
				return ErrCorrupt
			}
		}
		rd.bounds = b
		if rd.sketch, err = decodeBoundsSketch(tail); err != nil {
			return err
		}
		return nil
	}
	if len(rd.index) == 0 || rd.f.entryCount == 0 {
		return nil
	}
	if hint != nil && hint.Smallest != nil && hint.Largest != nil &&
		bytes.Compare(hint.Smallest, hint.Largest) <= 0 && hint.MinSeq <= hint.MaxSeq {
		rd.bounds = Bounds{
			Smallest: append([]byte(nil), hint.Smallest...),
			Largest:  append([]byte(nil), hint.Largest...),
			MinSeq:   hint.MinSeq,
			MaxSeq:   hint.MaxSeq,
		}
		return nil
	}
	smallest := append([]byte(nil), rd.index[0].firstKey...)
	payload, tok, err := rd.readBlock(rd.index[len(rd.index)-1])
	if err != nil {
		return err
	}
	var largest []byte
	for len(payload) > 0 {
		e, rest, err := decodeEntry(payload)
		if err != nil {
			return err
		}
		largest = e.Key
		payload = rest
	}
	largest = append([]byte(nil), largest...)
	if tok != nil {
		putBlockBuf(tok)
	}
	if largest == nil || bytes.Compare(smallest, largest) > 0 {
		return ErrCorrupt
	}
	rd.bounds = Bounds{
		Smallest: smallest,
		Largest:  largest,
		MinSeq:   0,
		MaxSeq:   ^uint64(0),
	}
	return nil
}

// Bounds returns the table's key and sequence range. The second result is
// false for an empty table, whose bounds are meaningless.
func (rd *Reader) Bounds() (Bounds, bool) {
	return rd.bounds, rd.f.entryCount > 0
}

// Sketch returns the table's persisted HyperLogLog key sketch, or nil for
// tables written before the bounds-tail extension (and all version-1/2
// tables, which may instead carry a manifest-persisted sketch upstream).
// Callers must not mutate the returned sketch; Clone before merging into
// it.
func (rd *Reader) Sketch() *hll.Sketch { return rd.sketch }

// FooterVersion reports the on-disk footer version the table was opened
// with: 3 for current tables (restart-point blocks, partitioned index),
// 2 for legacy flat-index tables carrying a bounds block, 1 for legacy
// tables whose bounds were backfilled at open.
func (rd *Reader) FooterVersion() int { return rd.version }

// EntryCount returns the number of entries in the table.
func (rd *Reader) EntryCount() uint64 { return rd.f.entryCount }

// KeyBytes returns the total bytes of keys stored.
func (rd *Reader) KeyBytes() uint64 { return rd.f.keyBytes }

// ValBytes returns the total bytes of values stored.
func (rd *Reader) ValBytes() uint64 { return rd.f.valBytes }

// FileSize returns the total size of the encoded table in bytes: the
// quantity compaction counts as disk I/O when the table is read or written.
func (rd *Reader) FileSize() uint64 { return uint64(rd.size) }

// searchHandles returns the index of the last handle whose firstKey is
// <= key, or -1 when key precedes every handle.
func searchHandles(handles []blockHandle, key []byte) int {
	return sort.Search(len(handles), func(i int) bool {
		return bytes.Compare(handles[i].firstKey, key) > 0
	}) - 1
}

// findBlockForKey locates the data block that could contain key: one
// binary search over the flat index on legacy tables, or a top-level
// chunk search plus an in-chunk search on version-3 tables.
func (rd *Reader) findBlockForKey(key []byte) (blockHandle, bool, error) {
	var zero blockHandle
	if rd.version < FormatV3 {
		bi := searchHandles(rd.index, key)
		if bi < 0 {
			return zero, false, nil
		}
		return rd.index[bi], true, nil
	}
	ci := sort.Search(len(rd.chunks), func(i int) bool {
		return bytes.Compare(rd.chunks[i].firstKey, key) > 0
	}) - 1
	if ci < 0 {
		return zero, false, nil
	}
	handles, err := rd.chunkHandles(ci)
	if err != nil {
		return zero, false, err
	}
	bi := searchHandles(handles, key)
	if bi < 0 {
		return zero, false, nil
	}
	return handles[bi], true, nil
}

// Get returns the entry for key, or ErrNotFound. The Bloom filter rejects
// most absent keys without touching data blocks.
func (rd *Reader) Get(key []byte) (iterator.Entry, error) {
	e, _, err := rd.GetEntry(key)
	return e, err
}

// GetEntry is Get with an ownership report: owned is true when the
// returned entry's key and value alias memory owned exclusively by the
// caller (the block was read outside the cache), so the engine may hand
// the value to its user without a defensive copy. When owned is false the
// entry aliases a cache-shared block and must be copied before it escapes.
func (rd *Reader) GetEntry(key []byte) (iterator.Entry, bool, error) {
	var zero iterator.Entry
	if !rd.filter.MayContain(key) {
		if rd.fm != nil {
			rd.fm.Negatives.Add(1)
		}
		return zero, false, ErrNotFound
	}
	e, owned, err := rd.getPastFilter(key)
	if err == ErrNotFound && rd.fm != nil {
		rd.fm.FalsePositives.Add(1)
	}
	return e, owned, err
}

// copyEntryOut materializes an entry into one compact allocation so the
// (much larger) block buffer it aliases can be recycled immediately
// instead of escaping with the entry and starving the buffer pool.
func copyEntryOut(e iterator.Entry) iterator.Entry {
	kv := make([]byte, len(e.Key)+len(e.Value))
	copy(kv, e.Key)
	copy(kv[len(e.Key):], e.Value)
	out := e
	out.Key = kv[:len(e.Key):len(e.Key)]
	if e.Value != nil {
		out.Value = kv[len(e.Key):]
	}
	return out
}

// getPastFilter is the block-probing half of Get, after the Bloom filter
// has said "maybe". An exclusively owned block buffer is recycled on every
// outcome: a miss recycles it directly (nothing escapes), and a hit copies
// the entry — a few dozen bytes — out of the block first. Returning block
// buffers on hits is what keeps the pool fed on a read-heavy cacheless
// workload; before that, every successful Get leaked its buffer to the
// garbage collector and the pool stayed empty. On version-3 tables the
// in-block probe binary-searches the restart array instead of scanning
// the block linearly.
func (rd *Reader) getPastFilter(key []byte) (iterator.Entry, bool, error) {
	var zero iterator.Entry
	h, ok, err := rd.findBlockForKey(key)
	if err != nil {
		return zero, false, err
	}
	if !ok {
		return zero, false, ErrNotFound
	}
	payload, tok, err := rd.readBlock(h)
	if err != nil {
		return zero, false, err
	}
	miss := func() (iterator.Entry, bool, error) {
		if tok != nil {
			putBlockBuf(tok)
		}
		return zero, false, ErrNotFound
	}
	hit := func(e iterator.Entry) (iterator.Entry, bool, error) {
		if tok == nil {
			return e, false, nil
		}
		e = copyEntryOut(e)
		putBlockBuf(tok)
		return e, true, nil
	}
	if rd.version >= FormatV3 {
		pb, err := parseV3Block(payload)
		if err != nil {
			return zero, false, err
		}
		var hd v3EntryHeader
		err = searchV3Block(pb, key, &hd)
		if err == ErrNotFound {
			return miss()
		}
		if err != nil {
			return zero, false, err
		}
		// A hit's key is byte-identical to the probe key; materialize the
		// entry without ever reconstructing it from the prefix encoding.
		if tok != nil {
			kv := make([]byte, len(key)+len(hd.value))
			copy(kv, key)
			copy(kv[len(key):], hd.value)
			e := iterator.Entry{Key: kv[:len(key):len(key)], Seq: hd.seq, Tombstone: hd.tombstone}
			if hd.value != nil {
				e.Value = kv[len(key):]
			}
			putBlockBuf(tok)
			return e, true, nil
		}
		return iterator.Entry{
			Key:   append([]byte(nil), key...),
			Value: hd.value, Seq: hd.seq, Tombstone: hd.tombstone,
		}, false, nil
	}
	for len(payload) > 0 {
		e, rest, err := decodeEntry(payload)
		if err != nil {
			return zero, false, err
		}
		switch bytes.Compare(e.Key, key) {
		case 0:
			return hit(e)
		case 1:
			return miss()
		}
		payload = rest
	}
	return miss()
}

// Iter returns an iterator over the whole table in key order.
func (rd *Reader) Iter() *Iter {
	return &Iter{rd: rd}
}

// IterFrom returns an iterator positioned at the first entry with
// key >= start.
func (rd *Reader) IterFrom(start []byte) *Iter {
	it := &Iter{rd: rd}
	it.SeekGE(start)
	return it
}

// Iter iterates over a Reader's entries block by block, chunk by chunk.
type Iter struct {
	rd      *Reader
	handles []blockHandle // block handles of the chunk being iterated
	ci      int           // next chunk to load (handles == nil) or current+1
	bi      int           // next block to load within handles
	block   []byte        // remaining legacy-format block bytes
	v3      *v3BlockIter  // current version-3 block
	cur     iterator.Entry
	valid   bool
	err     error
}

// Err returns the first error encountered while iterating, if any; an
// iterator that hit an error reports Valid() == false.
func (it *Iter) Err() error { return it.err }

// Valid implements iterator.Iterator.
func (it *Iter) Valid() bool {
	if !it.valid && it.err == nil {
		it.advance()
	}
	return it.valid
}

// Entry implements iterator.Iterator.
func (it *Iter) Entry() iterator.Entry { return it.cur }

// Next implements iterator.Iterator.
func (it *Iter) Next() {
	it.valid = false
	it.advance()
}

// SeekGE repositions the iterator at the first entry with key >= target,
// using the chunk and block indexes to skip earlier blocks.
func (it *Iter) SeekGE(target []byte) {
	if it.err != nil {
		return
	}
	if it.rd.numChunks() == 0 {
		it.valid = false
		return
	}
	ci := 0
	if it.rd.version >= FormatV3 {
		ci = sort.Search(len(it.rd.chunks), func(i int) bool {
			return bytes.Compare(it.rd.chunks[i].firstKey, target) > 0
		}) - 1
		if ci < 0 {
			ci = 0
		}
	}
	handles, err := it.rd.chunkHandles(ci)
	if err != nil {
		it.err = err
		return
	}
	bi := searchHandles(handles, target)
	if bi < 0 {
		bi = 0
	}
	it.handles = handles
	it.ci = ci + 1
	it.bi = bi
	it.block = nil
	it.v3 = nil
	it.valid = false
	it.advance()
	for it.valid && bytes.Compare(it.cur.Key, target) < 0 {
		it.valid = false
		it.advance()
	}
}

// nextBlock loads the next data block, crossing into the next index chunk
// as needed; it reports false at the end of the table or on error.
func (it *Iter) nextBlock() bool {
	for it.handles == nil || it.bi >= len(it.handles) {
		if it.ci >= it.rd.numChunks() {
			return false
		}
		handles, err := it.rd.chunkHandles(it.ci)
		if err != nil {
			it.err = err
			return false
		}
		it.handles = handles
		it.ci++
		it.bi = 0
	}
	h := it.handles[it.bi]
	it.bi++
	// Iterators never recycle owned blocks: entries alias the block
	// until the caller moves past them, so ownership just falls to the
	// garbage collector.
	payload, _, err := it.rd.readBlock(h)
	if err != nil {
		it.err = err
		return false
	}
	if it.rd.version >= FormatV3 {
		v3, err := newV3BlockIter(payload)
		if err != nil {
			it.err = err
			return false
		}
		it.v3 = v3
	} else {
		it.block = payload
	}
	return true
}

func (it *Iter) advance() {
	if it.err != nil {
		return
	}
	for {
		if it.rd.version >= FormatV3 {
			if it.v3 != nil {
				ok, err := it.v3.next(&it.cur)
				if err != nil {
					it.err = err
					return
				}
				if ok {
					it.valid = true
					return
				}
				it.v3 = nil
			}
		} else if len(it.block) > 0 {
			e, rest, err := decodeEntry(it.block)
			if err != nil {
				it.err = err
				return
			}
			it.block = rest
			it.cur = e
			it.valid = true
			return
		}
		if !it.nextBlock() {
			return
		}
	}
}
