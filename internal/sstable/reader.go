package sstable

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sort"
	"sync/atomic"

	"repro/internal/bloom"
	"repro/internal/cache"
	"repro/internal/iterator"
)

// readerIDs hands each Reader a unique ID for block-cache keying.
var readerIDs atomic.Uint64

// FilterMetrics accumulates Bloom-filter effectiveness counters across all
// the readers of a store (tables come and go under compaction, so the
// counters must outlive any single Reader). Negatives are lookups the
// filter rejected without touching a data block — the work the filter
// saved; FalsePositives are lookups the filter let through that found no
// key — the wasted block reads. All fields are safe for concurrent update.
type FilterMetrics struct {
	Negatives      atomic.Uint64
	FalsePositives atomic.Uint64
}

// Reader serves point lookups and ordered scans from a finished sstable.
// It is safe for concurrent use: all methods read through an io.ReaderAt.
type Reader struct {
	id     uint64
	r      io.ReaderAt
	f      footer
	index  []blockHandle
	filter *bloom.Filter
	closer io.Closer // non-nil when the Reader owns the underlying file
	blocks *cache.LRU
	fm     *FilterMetrics
}

// NewReader opens a table stored in r, whose total length is size bytes.
func NewReader(r io.ReaderAt, size int64) (*Reader, error) {
	if size < footerSize {
		return nil, ErrCorrupt
	}
	buf := make([]byte, footerSize)
	if _, err := r.ReadAt(buf, size-footerSize); err != nil {
		return nil, fmt.Errorf("sstable: read footer: %w", err)
	}
	f, err := unmarshalFooter(buf)
	if err != nil {
		return nil, err
	}
	rd := &Reader{id: readerIDs.Add(1), r: r, f: f}
	if err := rd.loadIndex(); err != nil {
		return nil, err
	}
	if err := rd.loadBloom(); err != nil {
		return nil, err
	}
	return rd, nil
}

// Open opens an sstable file by path; Close releases the file handle.
func Open(path string) (*Reader, error) {
	file, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := file.Stat()
	if err != nil {
		file.Close()
		return nil, err
	}
	rd, err := NewReader(file, st.Size())
	if err != nil {
		file.Close()
		return nil, fmt.Errorf("sstable: open %s: %w", path, err)
	}
	rd.closer = file
	return rd, nil
}

// SetBlockCache attaches a shared LRU cache used for data-block reads.
// Call before serving reads; passing nil disables caching.
func (rd *Reader) SetBlockCache(c *cache.LRU) { rd.blocks = c }

// SetFilterMetrics attaches a store-shared Bloom-filter counter set that
// Get updates; passing nil disables counting.
func (rd *Reader) SetFilterMetrics(m *FilterMetrics) { rd.fm = m }

// Close releases the underlying file when the Reader was created by Open
// (otherwise it only detaches cached blocks).
func (rd *Reader) Close() error {
	if rd.blocks != nil {
		rd.blocks.DropTable(rd.id)
	}
	if rd.closer != nil {
		return rd.closer.Close()
	}
	return nil
}

func (rd *Reader) readChecksummed(off, length uint64) ([]byte, error) {
	buf := make([]byte, length)
	if _, err := rd.r.ReadAt(buf, int64(off)); err != nil {
		return nil, fmt.Errorf("sstable: read at %d: %w", off, err)
	}
	return verifyChecksummed(buf)
}

// readBlock reads and decodes a data block through the block cache when
// one is attached. Cached payloads are stored decompressed and verified.
func (rd *Reader) readBlock(h blockHandle) ([]byte, error) {
	var key cache.Key
	if rd.blocks != nil {
		key = cache.Key{Table: rd.id, Offset: h.offset}
		if payload, ok := rd.blocks.Get(key); ok {
			return payload, nil
		}
	}
	buf := make([]byte, h.length+4)
	if _, err := rd.r.ReadAt(buf, int64(h.offset)); err != nil {
		return nil, fmt.Errorf("sstable: read block at %d: %w", h.offset, err)
	}
	payload, err := decodeDataBlock(buf)
	if err != nil {
		return nil, err
	}
	if rd.blocks != nil {
		rd.blocks.Put(key, payload)
	}
	return payload, nil
}

func (rd *Reader) loadIndex() error {
	payload, err := rd.readChecksummed(rd.f.indexOff, rd.f.indexLen)
	if err != nil {
		return err
	}
	count, n := binary.Uvarint(payload)
	if n <= 0 {
		return ErrCorrupt
	}
	payload = payload[n:]
	rd.index = make([]blockHandle, 0, count)
	for i := uint64(0); i < count; i++ {
		klen, n := binary.Uvarint(payload)
		if n <= 0 || uint64(len(payload[n:])) < klen {
			return ErrCorrupt
		}
		payload = payload[n:]
		key := payload[:klen:klen]
		payload = payload[klen:]
		off, n := binary.Uvarint(payload)
		if n <= 0 {
			return ErrCorrupt
		}
		payload = payload[n:]
		length, n := binary.Uvarint(payload)
		if n <= 0 {
			return ErrCorrupt
		}
		payload = payload[n:]
		rd.index = append(rd.index, blockHandle{firstKey: key, offset: off, length: length})
	}
	return nil
}

func (rd *Reader) loadBloom() error {
	payload, err := rd.readChecksummed(rd.f.bloomOff, rd.f.bloomLen)
	if err != nil {
		return err
	}
	filter, err := bloom.Unmarshal(payload)
	if err != nil {
		return fmt.Errorf("sstable: %w", err)
	}
	rd.filter = filter
	return nil
}

// EntryCount returns the number of entries in the table.
func (rd *Reader) EntryCount() uint64 { return rd.f.entryCount }

// KeyBytes returns the total bytes of keys stored.
func (rd *Reader) KeyBytes() uint64 { return rd.f.keyBytes }

// ValBytes returns the total bytes of values stored.
func (rd *Reader) ValBytes() uint64 { return rd.f.valBytes }

// FileSize returns the total size of the encoded table in bytes: the
// quantity compaction counts as disk I/O when the table is read or written.
func (rd *Reader) FileSize() uint64 {
	return rd.f.bloomOff + rd.f.bloomLen + footerSize
}

// blockFor returns the index of the data block that could contain key.
func (rd *Reader) blockFor(key []byte) int {
	// First block whose firstKey > key, minus one.
	i := sort.Search(len(rd.index), func(i int) bool {
		return bytes.Compare(rd.index[i].firstKey, key) > 0
	})
	return i - 1
}

// Get returns the entry for key, or ErrNotFound. The Bloom filter rejects
// most absent keys without touching data blocks.
func (rd *Reader) Get(key []byte) (iterator.Entry, error) {
	var zero iterator.Entry
	if !rd.filter.MayContain(key) {
		if rd.fm != nil {
			rd.fm.Negatives.Add(1)
		}
		return zero, ErrNotFound
	}
	e, err := rd.getPastFilter(key)
	if err == ErrNotFound && rd.fm != nil {
		rd.fm.FalsePositives.Add(1)
	}
	return e, err
}

// getPastFilter is the block-probing half of Get, after the Bloom filter
// has said "maybe".
func (rd *Reader) getPastFilter(key []byte) (iterator.Entry, error) {
	var zero iterator.Entry
	bi := rd.blockFor(key)
	if bi < 0 {
		return zero, ErrNotFound
	}
	h := rd.index[bi]
	payload, err := rd.readBlock(h)
	if err != nil {
		return zero, err
	}
	for len(payload) > 0 {
		e, rest, err := decodeEntry(payload)
		if err != nil {
			return zero, err
		}
		switch bytes.Compare(e.Key, key) {
		case 0:
			return e, nil
		case 1:
			return zero, ErrNotFound
		}
		payload = rest
	}
	return zero, ErrNotFound
}

// Iter returns an iterator over the whole table in key order.
func (rd *Reader) Iter() *Iter {
	return &Iter{rd: rd}
}

// IterFrom returns an iterator positioned at the first entry with
// key >= start.
func (rd *Reader) IterFrom(start []byte) *Iter {
	it := &Iter{rd: rd}
	it.SeekGE(start)
	return it
}

// Iter iterates over a Reader's entries block by block.
type Iter struct {
	rd    *Reader
	block []byte
	bi    int // next block to load
	cur   iterator.Entry
	valid bool
	err   error
}

// Err returns the first error encountered while iterating, if any; an
// iterator that hit an error reports Valid() == false.
func (it *Iter) Err() error { return it.err }

// Valid implements iterator.Iterator.
func (it *Iter) Valid() bool {
	if !it.valid && it.err == nil {
		it.advance()
	}
	return it.valid
}

// Entry implements iterator.Iterator.
func (it *Iter) Entry() iterator.Entry { return it.cur }

// Next implements iterator.Iterator.
func (it *Iter) Next() {
	it.valid = false
	it.advance()
}

// SeekGE repositions the iterator at the first entry with key >= target,
// using the block index to skip earlier blocks.
func (it *Iter) SeekGE(target []byte) {
	if it.err != nil {
		return
	}
	bi := it.rd.blockFor(target)
	if bi < 0 {
		bi = 0
	}
	it.block = nil
	it.bi = bi
	it.valid = false
	it.advance()
	for it.valid && bytes.Compare(it.cur.Key, target) < 0 {
		it.valid = false
		it.advance()
	}
}

func (it *Iter) advance() {
	if it.err != nil {
		return
	}
	for len(it.block) == 0 {
		if it.bi >= len(it.rd.index) {
			return
		}
		h := it.rd.index[it.bi]
		payload, err := it.rd.readBlock(h)
		if err != nil {
			it.err = err
			return
		}
		it.block = payload
		it.bi++
	}
	e, rest, err := decodeEntry(it.block)
	if err != nil {
		it.err = err
		return
	}
	it.block = rest
	it.cur = e
	it.valid = true
}
