// Package sstable implements immutable sorted string tables: the on-disk
// unit that LSM compaction reads, merges and rewrites (Figure 1 and 2 of
// the paper). A table is written once by a Writer from a sorted entry
// stream, then served by a Reader that supports point lookups (via a block
// index and a Bloom filter) and ordered scans.
//
// # File format
//
// All integers are little-endian; varints use encoding/binary's uvarint.
//
//	file   := block* index bloom bounds footer
//	block  := codec byte, body, crc32 (crc over codec+body)
//	          codec 0: body is raw entries (up to BlockSize)
//	          codec 1: body is DEFLATE-compressed entries
//	entry  := seq uvarint
//	          flags byte              (bit 0: tombstone)
//	          keyLen uvarint  key
//	          valLen uvarint  val     (omitted entirely when tombstone)
//	index  := count uvarint
//	          (firstKeyLen uvarint, firstKey, offset uvarint, length uvarint)*
//	          crc32
//	bloom  := filter bytes, crc32
//	bounds := smallestLen uvarint, smallestKey,
//	          largestLen uvarint, largestKey,
//	          minSeq uvarint, maxSeq uvarint, crc32
//	footer := indexOff u64, indexLen u64, bloomOff u64, bloomLen u64,
//	          entryCount u64, keyBytes u64, valBytes u64,
//	          boundsOff u64, boundsLen u64,
//	          magic u64 (0x5354424c30303246 "STBL002F")
//
// # Footer versions
//
// Version 2 ("STBL002F", 80-byte footer) added the bounds block: the
// table's smallest and largest key plus its sequence-number range, which
// the engine's read path uses to prune point lookups to the tables whose
// key range covers the probe and to stop probing once no remaining table
// can hold a newer version. Version 1 ("STBL001F", 64-byte footer, no
// bounds block) tables remain readable: the reader detects the old magic
// and backfills the bounds at open time from the block index (smallest
// key) and the last data block (largest key); the sequence range is
// unknowable without a full scan, so it degrades to [0, MaxUint64], which
// disables early exit for that table but never affects correctness.
//
// Per-block CRCs catch torn writes and bit rot; a corrupt block fails reads
// with ErrCorrupt rather than returning wrong data.
package sstable

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// BlockSize is the target uncompressed payload size of a data block.
// Entries never span blocks; a block may exceed BlockSize by one entry.
const BlockSize = 4096

// Compression selects the data-block codec used by a Writer.
type Compression int

// Supported codecs.
const (
	// NoCompression stores entry bytes as-is.
	NoCompression Compression = iota
	// Flate compresses each data block with DEFLATE (BestSpeed). Blocks
	// that do not shrink are stored raw, so pathological inputs never pay
	// a size penalty.
	Flate
)

// codec byte values stored per block.
const (
	codecRaw   byte = 0
	codecFlate byte = 1
)

// maxBlockPayload caps a decompressed block; anything larger is treated as
// corruption rather than allocated (a block only exceeds BlockSize by the
// size of a single entry).
const maxBlockPayload = 64 << 20

// MagicV1 identifies a version-1 sstable file (no bounds block); it
// spells "STBL001F".
const MagicV1 uint64 = 0x5354424c30303146

// Magic identifies a current (version 2) sstable file; it spells
// "STBL002F". Version 2 appends a bounds block (key range and sequence
// range) and extends the footer to locate it; see the package comment.
const Magic uint64 = 0x5354424c30303246

// footerV1Size and footerSize are the fixed byte lengths of the version-1
// and version-2 footers.
const (
	footerV1Size = 8 * 8
	footerSize   = 10 * 8
)

// ErrCorrupt reports a structurally invalid or checksum-failing table.
var ErrCorrupt = errors.New("sstable: corrupt table")

// ErrNotFound reports a key absent from the table.
var ErrNotFound = errors.New("sstable: key not found")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

type footer struct {
	indexOff, indexLen   uint64
	bloomOff, bloomLen   uint64
	entryCount           uint64
	keyBytes, valBytes   uint64
	boundsOff, boundsLen uint64 // zero on version-1 tables
}

func (f *footer) marshal() []byte {
	buf := make([]byte, footerSize)
	binary.LittleEndian.PutUint64(buf[0:], f.indexOff)
	binary.LittleEndian.PutUint64(buf[8:], f.indexLen)
	binary.LittleEndian.PutUint64(buf[16:], f.bloomOff)
	binary.LittleEndian.PutUint64(buf[24:], f.bloomLen)
	binary.LittleEndian.PutUint64(buf[32:], f.entryCount)
	binary.LittleEndian.PutUint64(buf[40:], f.keyBytes)
	binary.LittleEndian.PutUint64(buf[48:], f.valBytes)
	binary.LittleEndian.PutUint64(buf[56:], f.boundsOff)
	binary.LittleEndian.PutUint64(buf[64:], f.boundsLen)
	binary.LittleEndian.PutUint64(buf[72:], Magic)
	return buf
}

// unmarshalFooter decodes a version-2 (80-byte) or version-1 (64-byte)
// footer, distinguished by the trailing magic, and reports which version
// it found.
func unmarshalFooter(buf []byte) (footer, int, error) {
	var f footer
	switch {
	case len(buf) == footerSize && binary.LittleEndian.Uint64(buf[72:]) == Magic:
		f.boundsOff = binary.LittleEndian.Uint64(buf[56:])
		f.boundsLen = binary.LittleEndian.Uint64(buf[64:])
	case len(buf) == footerV1Size && binary.LittleEndian.Uint64(buf[56:]) == MagicV1:
		// Version 1: no bounds block; the reader backfills bounds at open.
	default:
		return f, 0, ErrCorrupt
	}
	f.indexOff = binary.LittleEndian.Uint64(buf[0:])
	f.indexLen = binary.LittleEndian.Uint64(buf[8:])
	f.bloomOff = binary.LittleEndian.Uint64(buf[16:])
	f.bloomLen = binary.LittleEndian.Uint64(buf[24:])
	f.entryCount = binary.LittleEndian.Uint64(buf[32:])
	f.keyBytes = binary.LittleEndian.Uint64(buf[40:])
	f.valBytes = binary.LittleEndian.Uint64(buf[48:])
	if len(buf) == footerV1Size {
		return f, 1, nil
	}
	return f, 2, nil
}

// Bounds describes a table's key range and sequence-number range: the
// pruning metadata the version-2 bounds block persists. Smallest and
// Largest are both inclusive; an empty table (possible when a compaction
// drops every tombstone) has nil keys and a zero sequence range.
type Bounds struct {
	Smallest, Largest []byte
	MinSeq, MaxSeq    uint64
}

// marshalBounds encodes a bounds block (without the trailing crc32).
func marshalBounds(b Bounds) []byte {
	out := binary.AppendUvarint(nil, uint64(len(b.Smallest)))
	out = append(out, b.Smallest...)
	out = binary.AppendUvarint(out, uint64(len(b.Largest)))
	out = append(out, b.Largest...)
	out = binary.AppendUvarint(out, b.MinSeq)
	out = binary.AppendUvarint(out, b.MaxSeq)
	return out
}

// unmarshalBounds decodes a checksum-verified bounds-block payload. The
// returned keys are copies, safe to retain.
func unmarshalBounds(payload []byte) (Bounds, error) {
	var b Bounds
	readKey := func() ([]byte, error) {
		n, w := binary.Uvarint(payload)
		if w <= 0 || uint64(len(payload[w:])) < n {
			return nil, ErrCorrupt
		}
		payload = payload[w:]
		var key []byte
		if n > 0 {
			key = append([]byte(nil), payload[:n]...)
		}
		payload = payload[n:]
		return key, nil
	}
	var err error
	if b.Smallest, err = readKey(); err != nil {
		return b, err
	}
	if b.Largest, err = readKey(); err != nil {
		return b, err
	}
	var w int
	if b.MinSeq, w = binary.Uvarint(payload); w <= 0 {
		return b, ErrCorrupt
	}
	payload = payload[w:]
	if b.MaxSeq, w = binary.Uvarint(payload); w <= 0 {
		return b, ErrCorrupt
	}
	return b, nil
}

// blockHandle locates one data block within the file.
type blockHandle struct {
	firstKey []byte
	offset   uint64
	length   uint64 // payload length, excluding the trailing crc32
}

func appendChecksummed(dst, payload []byte) []byte {
	dst = append(dst, payload...)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(payload, crcTable))
	return append(dst, crc[:]...)
}

// verifyChecksummed splits payload+crc32 and validates the checksum.
func verifyChecksummed(buf []byte) ([]byte, error) {
	if len(buf) < 4 {
		return nil, ErrCorrupt
	}
	payload, crc := buf[:len(buf)-4], binary.LittleEndian.Uint32(buf[len(buf)-4:])
	if crc32.Checksum(payload, crcTable) != crc {
		return nil, ErrCorrupt
	}
	return payload, nil
}

// encodeDataBlock frames a data block: codec byte + (possibly compressed)
// body + crc32. Compression falls back to raw when it does not shrink the
// body.
func encodeDataBlock(entries []byte, compression Compression) ([]byte, error) {
	body := entries
	codec := codecRaw
	if compression == Flate {
		var buf bytes.Buffer
		fw, err := flate.NewWriter(&buf, flate.BestSpeed)
		if err != nil {
			return nil, fmt.Errorf("sstable: flate: %w", err)
		}
		if _, err := fw.Write(entries); err != nil {
			return nil, fmt.Errorf("sstable: compress: %w", err)
		}
		if err := fw.Close(); err != nil {
			return nil, fmt.Errorf("sstable: compress: %w", err)
		}
		if buf.Len() < len(entries) {
			body = buf.Bytes()
			codec = codecFlate
		}
	}
	framed := make([]byte, 0, 1+len(body)+4)
	framed = append(framed, codec)
	framed = append(framed, body...)
	return appendChecksummed(nil, framed), nil
}

// decodeDataBlock validates and unwraps a checksummed data-block frame,
// returning the raw entry bytes.
func decodeDataBlock(buf []byte) ([]byte, error) {
	payload, err := verifyChecksummed(buf)
	if err != nil {
		return nil, err
	}
	if len(payload) < 1 {
		return nil, ErrCorrupt
	}
	codec, body := payload[0], payload[1:]
	switch codec {
	case codecRaw:
		return body, nil
	case codecFlate:
		fr := flate.NewReader(bytes.NewReader(body))
		defer fr.Close()
		out, err := io.ReadAll(io.LimitReader(fr, maxBlockPayload+1))
		if err != nil {
			return nil, ErrCorrupt
		}
		if len(out) > maxBlockPayload {
			return nil, ErrCorrupt
		}
		return out, nil
	default:
		return nil, ErrCorrupt
	}
}
