// Package sstable implements immutable sorted string tables: the on-disk
// unit that LSM compaction reads, merges and rewrites (Figure 1 and 2 of
// the paper). A table is written once by a Writer from a sorted entry
// stream, then served by a Reader that supports point lookups (via a block
// index and a Bloom filter) and ordered scans.
//
// # File format (version 3, "STBL003F")
//
// All integers are little-endian; varints use encoding/binary's uvarint.
//
//	file    := block* chunk* top-index bloom bounds footer
//	block   := codec byte, rawLen uvarint, body, crc32
//	           (crc over codec+rawLen+body; rawLen is the uncompressed
//	           body length, bounding the decode allocation exactly)
//	           codec 0: body is raw prefix-compressed entries
//	           codec 1: body is DEFLATE-compressed entries
//	           codec 2: body is fast-LZ-compressed entries (snappy-style)
//	entries := entry* restartOff u32 × numRestarts, numRestarts u32
//	entry   := sharedLen uvarint    (0 at restart points)
//	           unsharedLen uvarint
//	           seq uvarint
//	           flags byte           (bit 0: tombstone)
//	           unshared key bytes
//	           valLen uvarint, val  (omitted entirely when tombstone)
//	chunk   := count uvarint
//	           (firstKeyLen uvarint, firstKey, offset uvarint, length uvarint)*
//	           crc32
//	top-index := chunkCount uvarint
//	           (firstKeyLen uvarint, firstKey, chunkOff uvarint, chunkLen uvarint)*
//	           crc32
//	bloom   := filter bytes, crc32
//	bounds  := smallestLen uvarint, smallestKey,
//	           largestLen uvarint, largestKey,
//	           minSeq uvarint, maxSeq uvarint,
//	           [sketchLen uvarint, sketch]   (version 3 only)
//	           crc32
//	footer  := indexOff u64, indexLen u64, bloomOff u64, bloomLen u64,
//	           entryCount u64, keyBytes u64, valBytes u64,
//	           boundsOff u64, boundsLen u64,
//	           magic u64 (0x5354424c30303346 "STBL003F")
//
// Version 3 data blocks store keys with shared-prefix compression and end
// in a restart-point offset array: every restartInterval-th entry is
// written with a full key (sharedLen 0) and its offset recorded, so a
// point lookup binary-searches the restart array to the right restart and
// then walks at most one interval of entries instead of scanning the whole
// block linearly. The block index is partitioned into fixed-size chunks
// located by a small top-level index; Open materializes only the top
// level, and each chunk is parsed lazily the first time a lookup or scan
// lands in it, so opening a very large table no longer decodes its entire
// index up front.
//
// # Footer versions
//
// Version 2 ("STBL002F", 80-byte footer) tables use the legacy block
// format: entries stored back to back with full keys (no restart array),
// block frames without the rawLen field, and a single flat index block:
//
//	blockV2 := codec byte, body, crc32
//	entryV2 := seq uvarint, flags byte, keyLen uvarint, key
//	           [valLen uvarint, val]
//	indexV2 := count uvarint
//	           (firstKeyLen uvarint, firstKey, offset uvarint, length uvarint)*
//	           crc32
//
// Version 2 added the bounds block: the table's smallest and largest key
// plus its sequence-number range, which the engine's read path uses to
// prune point lookups to the tables whose key range covers the probe and
// to stop probing once no remaining table can hold a newer version.
// Version-3 tables extend the bounds payload (inside the same CRC frame)
// with an optional trailing HyperLogLog sketch of the table's keys, which
// compaction strategies use to estimate inter-table overlap without
// reading any data blocks. Decoders that predate the extension parse the
// bounds fields and ignore the tail, so the extension needs no new footer
// version; tables written before it simply carry no sketch.
// Version 1 ("STBL001F", 64-byte footer, no bounds block) tables remain
// readable: the reader detects the old magic and backfills the bounds at
// open time from the block index (smallest key) and the last data block
// (largest key); the sequence range is unknowable without a full scan, so
// it degrades to [0, MaxUint64], which disables early exit for that table
// but never affects correctness. All three versions are distinguished by
// the trailing footer magic and stay readable side by side.
//
// Per-block CRCs catch torn writes and bit rot; a corrupt block fails reads
// with ErrCorrupt rather than returning wrong data.
package sstable

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/hll"
	"repro/internal/kverr"
)

// BlockSize is the default target uncompressed payload size of a data
// block. Entries never span blocks; a block may exceed the target by one
// entry.
const BlockSize = 4096

// Table format versions, selected by WriterOptions.FormatVersion and
// reported by Reader.FooterVersion.
const (
	// FormatV1 is the legacy 64-byte footer without a bounds block.
	// Readable only; the Writer no longer produces it.
	FormatV1 = 1
	// FormatV2 is the legacy flat-index format with a bounds block.
	FormatV2 = 2
	// FormatV3 adds restart-point binary search, shared-prefix key
	// encoding, per-block rawLen framing and the partitioned index.
	FormatV3 = 3
	// FormatLatest is the version new tables are written with by default.
	FormatLatest = FormatV3
)

// Compression selects the data-block codec used by a Writer.
type Compression int

// Supported codecs.
const (
	// NoCompression stores entry bytes as-is.
	NoCompression Compression = iota
	// Flate compresses each data block with DEFLATE (BestSpeed). Blocks
	// that do not shrink are stored raw, so pathological inputs never pay
	// a size penalty.
	Flate
	// Fast compresses each data block with the package's snappy-style
	// byte-oriented LZ codec (see compress.go): much faster than Flate at
	// a lower ratio. Version-3 tables only; a version-2 Writer silently
	// degrades Fast to NoCompression because legacy readers know no such
	// codec byte.
	Fast
)

// codec byte values stored per block.
const (
	codecRaw   byte = 0
	codecFlate byte = 1
	codecFast  byte = 2
)

// maxBlockPayload caps a decoded block for legacy (version 1 and 2)
// codec-1 frames, which do not carry their uncompressed length: the cap
// must stay generous because a block legitimately exceeds BlockSize by one
// entry, and a single entry may hold a multi-megabyte value. Version-3
// frames declare rawLen (covered by the block CRC), so their decode
// allocates exactly the declared size and this worst-case cap is only a
// backstop sanity bound on the declared value.
const maxBlockPayload = 64 << 20

// MagicV1 identifies a version-1 sstable file (no bounds block); it
// spells "STBL001F".
const MagicV1 uint64 = 0x5354424c30303146

// MagicV2 identifies a version-2 sstable file; it spells "STBL002F".
// Version 2 appends a bounds block (key range and sequence range) and
// extends the footer to locate it; see the package comment.
const MagicV2 uint64 = 0x5354424c30303246

// Magic is retained as an alias for the version-2 magic for older callers.
const Magic = MagicV2

// MagicV3 identifies a current (version 3) sstable file; it spells
// "STBL003F": restart-point blocks, prefix-compressed keys, partitioned
// index. The footer layout is identical to version 2.
const MagicV3 uint64 = 0x5354424c30303346

// footerV1Size and footerSize are the fixed byte lengths of the version-1
// and version-2/3 footers.
const (
	footerV1Size = 8 * 8
	footerSize   = 10 * 8
)

// ErrCorrupt reports a structurally invalid or checksum-failing table. It
// aliases the canonical kverr.ErrCorrupt so corruption detected down here
// satisfies errors.Is at every layer above, including across the wire.
var ErrCorrupt = kverr.ErrCorrupt

// ErrNotFound reports a key absent from the table.
var ErrNotFound = errors.New("sstable: key not found")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

type footer struct {
	indexOff, indexLen   uint64
	bloomOff, bloomLen   uint64
	entryCount           uint64
	keyBytes, valBytes   uint64
	boundsOff, boundsLen uint64 // zero on version-1 tables
}

// marshal encodes the footer with the magic of the given format version
// (2 or 3; both share the 80-byte layout).
func (f *footer) marshal(version int) []byte {
	magic := MagicV3
	if version == FormatV2 {
		magic = MagicV2
	}
	buf := make([]byte, footerSize)
	binary.LittleEndian.PutUint64(buf[0:], f.indexOff)
	binary.LittleEndian.PutUint64(buf[8:], f.indexLen)
	binary.LittleEndian.PutUint64(buf[16:], f.bloomOff)
	binary.LittleEndian.PutUint64(buf[24:], f.bloomLen)
	binary.LittleEndian.PutUint64(buf[32:], f.entryCount)
	binary.LittleEndian.PutUint64(buf[40:], f.keyBytes)
	binary.LittleEndian.PutUint64(buf[48:], f.valBytes)
	binary.LittleEndian.PutUint64(buf[56:], f.boundsOff)
	binary.LittleEndian.PutUint64(buf[64:], f.boundsLen)
	binary.LittleEndian.PutUint64(buf[72:], magic)
	return buf
}

// unmarshalFooter decodes a version-3/2 (80-byte) or version-1 (64-byte)
// footer, distinguished by the trailing magic, and reports which version
// it found.
func unmarshalFooter(buf []byte) (footer, int, error) {
	var f footer
	version := 0
	switch {
	case len(buf) == footerSize && binary.LittleEndian.Uint64(buf[72:]) == MagicV3:
		version = FormatV3
	case len(buf) == footerSize && binary.LittleEndian.Uint64(buf[72:]) == MagicV2:
		version = FormatV2
	case len(buf) == footerV1Size && binary.LittleEndian.Uint64(buf[56:]) == MagicV1:
		// Version 1: no bounds block; the reader backfills bounds at open.
		version = FormatV1
	default:
		return f, 0, ErrCorrupt
	}
	if version >= FormatV2 {
		f.boundsOff = binary.LittleEndian.Uint64(buf[56:])
		f.boundsLen = binary.LittleEndian.Uint64(buf[64:])
	}
	f.indexOff = binary.LittleEndian.Uint64(buf[0:])
	f.indexLen = binary.LittleEndian.Uint64(buf[8:])
	f.bloomOff = binary.LittleEndian.Uint64(buf[16:])
	f.bloomLen = binary.LittleEndian.Uint64(buf[24:])
	f.entryCount = binary.LittleEndian.Uint64(buf[32:])
	f.keyBytes = binary.LittleEndian.Uint64(buf[40:])
	f.valBytes = binary.LittleEndian.Uint64(buf[48:])
	return f, version, nil
}

// Bounds describes a table's key range and sequence-number range: the
// pruning metadata the version-2+ bounds block persists. Smallest and
// Largest are both inclusive; an empty table (possible when a compaction
// drops every tombstone) has nil keys and a zero sequence range.
type Bounds struct {
	Smallest, Largest []byte
	MinSeq, MaxSeq    uint64
}

// marshalBounds encodes a bounds block (without the trailing crc32).
func marshalBounds(b Bounds) []byte {
	out := binary.AppendUvarint(nil, uint64(len(b.Smallest)))
	out = append(out, b.Smallest...)
	out = binary.AppendUvarint(out, uint64(len(b.Largest)))
	out = append(out, b.Largest...)
	out = binary.AppendUvarint(out, b.MinSeq)
	out = binary.AppendUvarint(out, b.MaxSeq)
	return out
}

// unmarshalBounds decodes a checksum-verified bounds-block payload,
// ignoring any trailing extension bytes. The returned keys are copies,
// safe to retain.
func unmarshalBounds(payload []byte) (Bounds, error) {
	b, _, err := unmarshalBoundsTail(payload)
	return b, err
}

// unmarshalBoundsTail is unmarshalBounds returning the unparsed remainder
// of the payload — the extension area version-3 writers put the key sketch
// in.
func unmarshalBoundsTail(payload []byte) (Bounds, []byte, error) {
	var b Bounds
	readKey := func() ([]byte, error) {
		n, w := binary.Uvarint(payload)
		if w <= 0 || uint64(len(payload[w:])) < n {
			return nil, ErrCorrupt
		}
		payload = payload[w:]
		var key []byte
		if n > 0 {
			key = append([]byte(nil), payload[:n]...)
		}
		payload = payload[n:]
		return key, nil
	}
	var err error
	if b.Smallest, err = readKey(); err != nil {
		return b, nil, err
	}
	if b.Largest, err = readKey(); err != nil {
		return b, nil, err
	}
	var w int
	if b.MinSeq, w = binary.Uvarint(payload); w <= 0 {
		return b, nil, ErrCorrupt
	}
	payload = payload[w:]
	if b.MaxSeq, w = binary.Uvarint(payload); w <= 0 {
		return b, nil, ErrCorrupt
	}
	return b, payload[w:], nil
}

// SketchPrecision is the HyperLogLog precision of the per-table key sketch
// the Writer maintains (2^12 registers ≈ 4 KiB, ≈1.6% standard error) —
// the same precision the compaction package's estimators use, so sketches
// read off disk merge directly with model-built ones.
const SketchPrecision = 12

// appendBoundsSketch appends the sketch extension (sketchLen uvarint,
// sketch bytes) to a marshaled bounds payload.
func appendBoundsSketch(payload []byte, s *hll.Sketch) []byte {
	enc := s.Marshal()
	payload = binary.AppendUvarint(payload, uint64(len(enc)))
	return append(payload, enc...)
}

// decodeBoundsSketch parses the optional sketch extension from the bounds
// payload's tail. An empty tail (a pre-extension table) yields a nil
// sketch; bytes after the sketch are reserved for future extensions and
// ignored.
func decodeBoundsSketch(tail []byte) (*hll.Sketch, error) {
	if len(tail) == 0 {
		return nil, nil
	}
	n, w := binary.Uvarint(tail)
	if w <= 0 || uint64(len(tail[w:])) < n {
		return nil, ErrCorrupt
	}
	s, err := hll.Unmarshal(tail[w : w+int(n)])
	if err != nil {
		return nil, ErrCorrupt
	}
	return s, nil
}

// blockHandle locates one data block within the file.
type blockHandle struct {
	firstKey []byte
	offset   uint64
	length   uint64 // payload length, excluding the trailing crc32
}

// chunkHandle locates one index chunk within a version-3 file.
type chunkHandle struct {
	firstKey []byte // first key of the chunk's first block
	offset   uint64
	length   uint64 // framed length including the trailing crc32
}

func appendChecksummed(dst, payload []byte) []byte {
	dst = append(dst, payload...)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(payload, crcTable))
	return append(dst, crc[:]...)
}

// verifyChecksummed splits payload+crc32 and validates the checksum.
func verifyChecksummed(buf []byte) ([]byte, error) {
	if len(buf) < 4 {
		return nil, ErrCorrupt
	}
	payload, crc := buf[:len(buf)-4], binary.LittleEndian.Uint32(buf[len(buf)-4:])
	if crc32.Checksum(payload, crcTable) != crc {
		return nil, ErrCorrupt
	}
	return payload, nil
}

// blockEncoder frames data blocks, owning the scratch buffers so a Writer
// reuses one set of allocations across every block it emits (the seed
// format built each frame twice: once into a fresh `framed` slice and then
// again through appendChecksummed, costing two allocations and a full copy
// per block on every flush and compaction).
type blockEncoder struct {
	fbuf bytes.Buffer  // flate output, reused across blocks
	fw   *flate.Writer // reused flate encoder
	fast []byte        // fast-codec output, reused across blocks
}

// appendBlock appends one framed data block (codec byte, version-3 rawLen,
// body, crc32) to dst and returns the extended slice. Compression falls
// back to raw when it does not shrink the body; Fast degrades to raw on
// pre-v3 formats, whose readers know no such codec byte.
func (e *blockEncoder) appendBlock(dst, entries []byte, compression Compression, version int) ([]byte, error) {
	body := entries
	codec := codecRaw
	switch {
	case compression == Flate:
		e.fbuf.Reset()
		if e.fw == nil {
			fw, err := flate.NewWriter(&e.fbuf, flate.BestSpeed)
			if err != nil {
				return nil, fmt.Errorf("sstable: flate: %w", err)
			}
			e.fw = fw
		} else {
			e.fw.Reset(&e.fbuf)
		}
		if _, err := e.fw.Write(entries); err != nil {
			return nil, fmt.Errorf("sstable: compress: %w", err)
		}
		if err := e.fw.Close(); err != nil {
			return nil, fmt.Errorf("sstable: compress: %w", err)
		}
		if e.fbuf.Len() < len(entries) {
			body = e.fbuf.Bytes()
			codec = codecFlate
		}
	case compression == Fast && version >= FormatV3:
		e.fast = fastAppendCompress(e.fast[:0], entries)
		if len(e.fast) < len(entries) {
			body = e.fast
			codec = codecFast
		}
	}
	start := len(dst)
	dst = append(dst, codec)
	if version >= FormatV3 {
		dst = binary.AppendUvarint(dst, uint64(len(entries)))
	}
	dst = append(dst, body...)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(dst[start:], crcTable))
	return append(dst, crc[:]...), nil
}

// decodeDataBlock validates and unwraps a checksummed data-block frame of
// the given table format version, returning the raw entry bytes.
//
// The decode allocation cap is derived from the version: version-3 frames
// declare their uncompressed length (under the frame CRC), so the decoder
// allocates exactly that much and rejects any stream that produces more or
// less; only legacy codec-1 (DEFLATE) frames, which carry no length, fall
// back to the generous maxBlockPayload cap.
func decodeDataBlock(buf []byte, version int) ([]byte, error) {
	payload, err := verifyChecksummed(buf)
	if err != nil {
		return nil, err
	}
	if len(payload) < 1 {
		return nil, ErrCorrupt
	}
	codec, body := payload[0], payload[1:]
	if version < FormatV3 {
		switch codec {
		case codecRaw:
			return body, nil
		case codecFlate:
			fr := flate.NewReader(bytes.NewReader(body))
			defer fr.Close()
			out, err := io.ReadAll(io.LimitReader(fr, maxBlockPayload+1))
			if err != nil {
				return nil, ErrCorrupt
			}
			if len(out) > maxBlockPayload {
				return nil, ErrCorrupt
			}
			return out, nil
		default:
			return nil, ErrCorrupt
		}
	}
	rawLen64, n := binary.Uvarint(body)
	if n <= 0 || rawLen64 > maxBlockPayload {
		return nil, ErrCorrupt
	}
	rawLen := int(rawLen64)
	body = body[n:]
	switch codec {
	case codecRaw:
		if len(body) != rawLen {
			return nil, ErrCorrupt
		}
		return body, nil
	case codecFlate:
		// The writer stores blocks raw when compression does not shrink
		// them, so a compressed body must be strictly smaller than its
		// declared uncompressed size; anything else is corruption.
		if len(body) >= rawLen {
			return nil, ErrCorrupt
		}
		fr := flate.NewReader(bytes.NewReader(body))
		defer fr.Close()
		out := make([]byte, rawLen)
		if _, err := io.ReadFull(fr, out); err != nil {
			return nil, ErrCorrupt
		}
		// The stream must end exactly at rawLen.
		var one [1]byte
		if n, _ := fr.Read(one[:]); n != 0 {
			return nil, ErrCorrupt
		}
		return out, nil
	case codecFast:
		if len(body) >= rawLen {
			return nil, ErrCorrupt
		}
		return fastDecode(body, rawLen)
	default:
		return nil, ErrCorrupt
	}
}
