package sstable

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/bloom"
	"repro/internal/iterator"
)

// Writer builds an sstable from entries added in strictly increasing key
// order. Use one Writer per table; call Finish exactly once.
type Writer struct {
	w           io.Writer
	off         uint64
	compression Compression

	block    []byte // current block payload
	blockKey []byte // first key of the current block
	index    []blockHandle
	filter   *bloom.Filter

	lastKey    []byte
	firstKey   []byte
	minSeq     uint64
	maxSeq     uint64
	entryCount uint64
	keyBytes   uint64
	valBytes   uint64
	finished   bool
}

// NewWriter creates a Writer emitting to w with no block compression.
// expectedEntries sizes the Bloom filter; an estimate is fine, and zero
// selects a small default.
func NewWriter(w io.Writer, expectedEntries int) *Writer {
	return NewWriterCompressed(w, expectedEntries, NoCompression)
}

// NewWriterCompressed creates a Writer with the given data-block codec.
func NewWriterCompressed(w io.Writer, expectedEntries int, compression Compression) *Writer {
	if expectedEntries <= 0 {
		expectedEntries = 1024
	}
	return &Writer{
		w:           w,
		compression: compression,
		filter:      bloom.NewWithEstimates(uint64(expectedEntries), 0.01),
	}
}

// Add appends an entry. Keys must be strictly increasing; duplicate or
// out-of-order keys are rejected.
func (w *Writer) Add(e iterator.Entry) error {
	if w.finished {
		return fmt.Errorf("sstable: Add after Finish")
	}
	if len(e.Key) == 0 {
		return fmt.Errorf("sstable: empty key")
	}
	if w.lastKey != nil && bytes.Compare(e.Key, w.lastKey) <= 0 {
		return fmt.Errorf("sstable: keys out of order: %q after %q", e.Key, w.lastKey)
	}
	if w.blockKey == nil {
		w.blockKey = append([]byte(nil), e.Key...)
	}
	if w.firstKey == nil {
		w.firstKey = append([]byte(nil), e.Key...)
	}
	if w.entryCount == 0 || e.Seq < w.minSeq {
		w.minSeq = e.Seq
	}
	if e.Seq > w.maxSeq {
		w.maxSeq = e.Seq
	}
	w.block = appendEntry(w.block, e)
	w.lastKey = append(w.lastKey[:0], e.Key...)
	w.filter.Add(e.Key)
	w.entryCount++
	w.keyBytes += uint64(len(e.Key))
	w.valBytes += uint64(len(e.Value))
	if len(w.block) >= BlockSize {
		return w.flushBlock()
	}
	return nil
}

func appendEntry(dst []byte, e iterator.Entry) []byte {
	dst = binary.AppendUvarint(dst, e.Seq)
	var flags byte
	if e.Tombstone {
		flags |= 1
	}
	dst = append(dst, flags)
	dst = binary.AppendUvarint(dst, uint64(len(e.Key)))
	dst = append(dst, e.Key...)
	if !e.Tombstone {
		dst = binary.AppendUvarint(dst, uint64(len(e.Value)))
		dst = append(dst, e.Value...)
	}
	return dst
}

// decodeEntry parses one entry from buf, returning it and the remaining
// bytes. The returned entry aliases buf.
func decodeEntry(buf []byte) (iterator.Entry, []byte, error) {
	var e iterator.Entry
	seq, n := binary.Uvarint(buf)
	if n <= 0 {
		return e, nil, ErrCorrupt
	}
	buf = buf[n:]
	if len(buf) < 1 {
		return e, nil, ErrCorrupt
	}
	flags := buf[0]
	buf = buf[1:]
	e.Seq = seq
	e.Tombstone = flags&1 != 0
	klen, n := binary.Uvarint(buf)
	if n <= 0 || uint64(len(buf[n:])) < klen {
		return e, nil, ErrCorrupt
	}
	buf = buf[n:]
	e.Key = buf[:klen:klen]
	buf = buf[klen:]
	if !e.Tombstone {
		vlen, n := binary.Uvarint(buf)
		if n <= 0 || uint64(len(buf[n:])) < vlen {
			return e, nil, ErrCorrupt
		}
		buf = buf[n:]
		e.Value = buf[:vlen:vlen]
		buf = buf[vlen:]
	}
	return e, buf, nil
}

func (w *Writer) flushBlock() error {
	if len(w.block) == 0 {
		return nil
	}
	framed, err := encodeDataBlock(w.block, w.compression)
	if err != nil {
		return err
	}
	w.index = append(w.index, blockHandle{
		firstKey: w.blockKey,
		offset:   w.off,
		length:   uint64(len(framed) - 4), // stored payload, excluding crc
	})
	if _, err := w.w.Write(framed); err != nil {
		return fmt.Errorf("sstable: write block: %w", err)
	}
	w.off += uint64(len(framed))
	w.block = w.block[:0]
	w.blockKey = nil
	return nil
}

// Finish flushes the final block and writes the index, Bloom filter and
// footer. The Writer is unusable afterwards.
func (w *Writer) Finish() error {
	if w.finished {
		return fmt.Errorf("sstable: Finish called twice")
	}
	w.finished = true
	if err := w.flushBlock(); err != nil {
		return err
	}

	var f footer
	f.entryCount = w.entryCount
	f.keyBytes = w.keyBytes
	f.valBytes = w.valBytes

	// Index block.
	var idx []byte
	idx = binary.AppendUvarint(idx, uint64(len(w.index)))
	for _, h := range w.index {
		idx = binary.AppendUvarint(idx, uint64(len(h.firstKey)))
		idx = append(idx, h.firstKey...)
		idx = binary.AppendUvarint(idx, h.offset)
		idx = binary.AppendUvarint(idx, h.length)
	}
	framed := appendChecksummed(nil, idx)
	f.indexOff, f.indexLen = w.off, uint64(len(framed))
	if _, err := w.w.Write(framed); err != nil {
		return fmt.Errorf("sstable: write index: %w", err)
	}
	w.off += uint64(len(framed))

	// Bloom block.
	framed = appendChecksummed(nil, w.filter.Marshal())
	f.bloomOff, f.bloomLen = w.off, uint64(len(framed))
	if _, err := w.w.Write(framed); err != nil {
		return fmt.Errorf("sstable: write bloom: %w", err)
	}
	w.off += uint64(len(framed))

	// Bounds block: the key range and sequence range the engine's read
	// path prunes with. An empty table encodes nil keys and a zero range.
	var bounds Bounds
	if w.entryCount > 0 {
		bounds = Bounds{Smallest: w.firstKey, Largest: w.lastKey, MinSeq: w.minSeq, MaxSeq: w.maxSeq}
	}
	framed = appendChecksummed(nil, marshalBounds(bounds))
	f.boundsOff, f.boundsLen = w.off, uint64(len(framed))
	if _, err := w.w.Write(framed); err != nil {
		return fmt.Errorf("sstable: write bounds: %w", err)
	}
	w.off += uint64(len(framed))

	if _, err := w.w.Write(f.marshal()); err != nil {
		return fmt.Errorf("sstable: write footer: %w", err)
	}
	w.off += footerSize
	return nil
}

// Size returns the number of bytes emitted so far (the final file size
// after Finish).
func (w *Writer) Size() uint64 { return w.off }

// EntryCount returns the number of entries added so far.
func (w *Writer) EntryCount() uint64 { return w.entryCount }

// WriteAll drains it into w in order and finishes the table; a convenience
// wrapper used by flushes and compaction merges.
func WriteAll(w *Writer, it iterator.Iterator) error {
	for ; it.Valid(); it.Next() {
		if err := w.Add(it.Entry()); err != nil {
			return err
		}
	}
	return w.Finish()
}
