package sstable

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/bloom"
	"repro/internal/hll"
	"repro/internal/iterator"
)

// DefaultIndexChunkSize is the number of block handles per index chunk in
// a version-3 table. At the default block size a chunk covers ~1MiB of
// data, so even multi-gigabyte tables open by materializing only a few
// thousand top-level entries while each chunk parses lazily on first use.
const DefaultIndexChunkSize = 256

// WriterOptions configures table construction.
type WriterOptions struct {
	// Compression selects the data-block codec. The zero value stores
	// blocks raw.
	Compression Compression
	// FormatVersion selects the table format: FormatV3 (the default when
	// zero) or FormatV2 for compatibility tooling and tests. Version 1 is
	// read-only.
	FormatVersion int
	// BlockSize overrides the target uncompressed data-block payload
	// size; zero selects BlockSize.
	BlockSize int
	// IndexChunkSize overrides the number of block handles per index
	// chunk (version 3 only); zero selects DefaultIndexChunkSize.
	IndexChunkSize int
}

func (o WriterOptions) withDefaults() WriterOptions {
	if o.FormatVersion == 0 {
		o.FormatVersion = FormatLatest
	}
	if o.BlockSize <= 0 {
		o.BlockSize = BlockSize
	}
	if o.IndexChunkSize <= 0 {
		o.IndexChunkSize = DefaultIndexChunkSize
	}
	return o
}

// Writer builds an sstable from entries added in strictly increasing key
// order. Use one Writer per table; call Finish exactly once.
type Writer struct {
	w    io.Writer
	off  uint64
	opts WriterOptions

	block    []byte       // current block payload (version <= 2)
	bb       blockBuilder // current block (version 3)
	blockKey []byte       // first key of the current block
	frameBuf []byte       // reusable frame buffer, one allocation per table
	enc      blockEncoder
	index    []blockHandle
	filter   *bloom.Filter
	sketch   *hll.Sketch

	lastKey    []byte
	firstKey   []byte
	minSeq     uint64
	maxSeq     uint64
	entryCount uint64
	keyBytes   uint64
	valBytes   uint64
	finished   bool
}

// NewWriter creates a Writer emitting to w with no block compression.
// expectedEntries sizes the Bloom filter; an estimate is fine, and zero
// selects a small default.
func NewWriter(w io.Writer, expectedEntries int) *Writer {
	return NewWriterOpts(w, expectedEntries, WriterOptions{})
}

// NewWriterCompressed creates a Writer with the given data-block codec.
func NewWriterCompressed(w io.Writer, expectedEntries int, compression Compression) *Writer {
	return NewWriterOpts(w, expectedEntries, WriterOptions{Compression: compression})
}

// NewWriterOpts creates a Writer with full control over format version,
// codec, block size and index chunking.
func NewWriterOpts(w io.Writer, expectedEntries int, opts WriterOptions) *Writer {
	if expectedEntries <= 0 {
		expectedEntries = 1024
	}
	return &Writer{
		w:      w,
		opts:   opts.withDefaults(),
		filter: bloom.NewWithEstimates(uint64(expectedEntries), 0.01),
		sketch: hll.MustNew(SketchPrecision),
	}
}

// Add appends an entry. Keys must be strictly increasing; duplicate or
// out-of-order keys are rejected.
func (w *Writer) Add(e iterator.Entry) error {
	if w.finished {
		return fmt.Errorf("sstable: Add after Finish")
	}
	if len(e.Key) == 0 {
		return fmt.Errorf("sstable: empty key")
	}
	if w.lastKey != nil && bytes.Compare(e.Key, w.lastKey) <= 0 {
		return fmt.Errorf("sstable: keys out of order: %q after %q", e.Key, w.lastKey)
	}
	if w.blockKey == nil {
		w.blockKey = append([]byte(nil), e.Key...)
	}
	if w.firstKey == nil {
		w.firstKey = append([]byte(nil), e.Key...)
	}
	if w.entryCount == 0 || e.Seq < w.minSeq {
		w.minSeq = e.Seq
	}
	if e.Seq > w.maxSeq {
		w.maxSeq = e.Seq
	}
	var blockLen int
	if w.opts.FormatVersion >= FormatV3 {
		w.bb.add(e)
		blockLen = w.bb.size()
	} else {
		w.block = appendEntry(w.block, e)
		blockLen = len(w.block)
	}
	w.lastKey = append(w.lastKey[:0], e.Key...)
	w.filter.Add(e.Key)
	w.sketch.Add(e.Key)
	w.entryCount++
	w.keyBytes += uint64(len(e.Key))
	w.valBytes += uint64(len(e.Value))
	if blockLen >= w.opts.BlockSize {
		return w.flushBlock()
	}
	return nil
}

// appendEntry encodes one entry in the legacy (version <= 2) layout.
func appendEntry(dst []byte, e iterator.Entry) []byte {
	dst = binary.AppendUvarint(dst, e.Seq)
	var flags byte
	if e.Tombstone {
		flags |= 1
	}
	dst = append(dst, flags)
	dst = binary.AppendUvarint(dst, uint64(len(e.Key)))
	dst = append(dst, e.Key...)
	if !e.Tombstone {
		dst = binary.AppendUvarint(dst, uint64(len(e.Value)))
		dst = append(dst, e.Value...)
	}
	return dst
}

// decodeEntry parses one legacy-layout entry from buf, returning it and
// the remaining bytes. The returned entry aliases buf.
func decodeEntry(buf []byte) (iterator.Entry, []byte, error) {
	var e iterator.Entry
	seq, n := binary.Uvarint(buf)
	if n <= 0 {
		return e, nil, ErrCorrupt
	}
	buf = buf[n:]
	if len(buf) < 1 {
		return e, nil, ErrCorrupt
	}
	flags := buf[0]
	buf = buf[1:]
	e.Seq = seq
	e.Tombstone = flags&1 != 0
	klen, n := binary.Uvarint(buf)
	if n <= 0 || uint64(len(buf[n:])) < klen {
		return e, nil, ErrCorrupt
	}
	buf = buf[n:]
	e.Key = buf[:klen:klen]
	buf = buf[klen:]
	if !e.Tombstone {
		vlen, n := binary.Uvarint(buf)
		if n <= 0 || uint64(len(buf[n:])) < vlen {
			return e, nil, ErrCorrupt
		}
		buf = buf[n:]
		e.Value = buf[:vlen:vlen]
		buf = buf[vlen:]
	}
	return e, buf, nil
}

func (w *Writer) flushBlock() error {
	var body []byte
	if w.opts.FormatVersion >= FormatV3 {
		if w.bb.empty() {
			return nil
		}
		body = w.bb.finish()
	} else {
		if len(w.block) == 0 {
			return nil
		}
		body = w.block
	}
	// Frame codec+body+crc in one pass into the Writer's reusable buffer:
	// one allocation for the lifetime of the table instead of two
	// allocations plus a full copy per block.
	framed, err := w.enc.appendBlock(w.frameBuf[:0], body, w.opts.Compression, w.opts.FormatVersion)
	if err != nil {
		return err
	}
	w.frameBuf = framed
	w.index = append(w.index, blockHandle{
		firstKey: w.blockKey,
		offset:   w.off,
		length:   uint64(len(framed) - 4), // stored payload, excluding crc
	})
	if _, err := w.w.Write(framed); err != nil {
		return fmt.Errorf("sstable: write block: %w", err)
	}
	w.off += uint64(len(framed))
	w.bb.reset()
	w.block = w.block[:0]
	w.blockKey = nil
	return nil
}

// appendHandles encodes a run of block handles in the index layout shared
// by version-2 flat indexes and version-3 chunks.
func appendHandles(dst []byte, handles []blockHandle) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(handles)))
	for _, h := range handles {
		dst = binary.AppendUvarint(dst, uint64(len(h.firstKey)))
		dst = append(dst, h.firstKey...)
		dst = binary.AppendUvarint(dst, h.offset)
		dst = binary.AppendUvarint(dst, h.length)
	}
	return dst
}

// writeIndex emits the index and points f at it: a single flat block for
// version 2, or fixed-size chunks plus a top-level chunk index for
// version 3.
func (w *Writer) writeIndex(f *footer) error {
	if w.opts.FormatVersion < FormatV3 {
		framed := appendChecksummed(nil, appendHandles(nil, w.index))
		f.indexOff, f.indexLen = w.off, uint64(len(framed))
		if _, err := w.w.Write(framed); err != nil {
			return fmt.Errorf("sstable: write index: %w", err)
		}
		w.off += uint64(len(framed))
		return nil
	}
	chunkSize := w.opts.IndexChunkSize
	var chunks []chunkHandle
	for start := 0; start < len(w.index); start += chunkSize {
		end := start + chunkSize
		if end > len(w.index) {
			end = len(w.index)
		}
		framed := appendChecksummed(nil, appendHandles(nil, w.index[start:end]))
		chunks = append(chunks, chunkHandle{
			firstKey: w.index[start].firstKey,
			offset:   w.off,
			length:   uint64(len(framed)),
		})
		if _, err := w.w.Write(framed); err != nil {
			return fmt.Errorf("sstable: write index chunk: %w", err)
		}
		w.off += uint64(len(framed))
	}
	top := binary.AppendUvarint(nil, uint64(len(chunks)))
	for _, c := range chunks {
		top = binary.AppendUvarint(top, uint64(len(c.firstKey)))
		top = append(top, c.firstKey...)
		top = binary.AppendUvarint(top, c.offset)
		top = binary.AppendUvarint(top, c.length)
	}
	framed := appendChecksummed(nil, top)
	f.indexOff, f.indexLen = w.off, uint64(len(framed))
	if _, err := w.w.Write(framed); err != nil {
		return fmt.Errorf("sstable: write index: %w", err)
	}
	w.off += uint64(len(framed))
	return nil
}

// Finish flushes the final block and writes the index, Bloom filter and
// footer. The Writer is unusable afterwards.
func (w *Writer) Finish() error {
	if w.finished {
		return fmt.Errorf("sstable: Finish called twice")
	}
	w.finished = true
	if err := w.flushBlock(); err != nil {
		return err
	}

	var f footer
	f.entryCount = w.entryCount
	f.keyBytes = w.keyBytes
	f.valBytes = w.valBytes

	if err := w.writeIndex(&f); err != nil {
		return err
	}

	// Bloom block.
	framed := appendChecksummed(nil, w.filter.Marshal())
	f.bloomOff, f.bloomLen = w.off, uint64(len(framed))
	if _, err := w.w.Write(framed); err != nil {
		return fmt.Errorf("sstable: write bloom: %w", err)
	}
	w.off += uint64(len(framed))

	// Bounds block: the key range and sequence range the engine's read
	// path prunes with. An empty table encodes nil keys and a zero range.
	// Version-3 tables carry the key sketch in the payload's extension
	// tail; version-2 output stays byte-identical to the frozen format.
	var bounds Bounds
	if w.entryCount > 0 {
		bounds = Bounds{Smallest: w.firstKey, Largest: w.lastKey, MinSeq: w.minSeq, MaxSeq: w.maxSeq}
	}
	payload := marshalBounds(bounds)
	if w.opts.FormatVersion >= FormatV3 {
		payload = appendBoundsSketch(payload, w.sketch)
	}
	framed = appendChecksummed(nil, payload)
	f.boundsOff, f.boundsLen = w.off, uint64(len(framed))
	if _, err := w.w.Write(framed); err != nil {
		return fmt.Errorf("sstable: write bounds: %w", err)
	}
	w.off += uint64(len(framed))

	if _, err := w.w.Write(f.marshal(w.opts.FormatVersion)); err != nil {
		return fmt.Errorf("sstable: write footer: %w", err)
	}
	w.off += footerSize
	return nil
}

// Size returns the number of bytes emitted so far (the final file size
// after Finish).
func (w *Writer) Size() uint64 { return w.off }

// EntryCount returns the number of entries added so far.
func (w *Writer) EntryCount() uint64 { return w.entryCount }

// Sketch returns the HyperLogLog sketch of every key added so far. The
// Writer maintains it for all format versions; only version-3 output
// embeds it, so callers writing older formats can persist it elsewhere
// (the engine's manifest does).
func (w *Writer) Sketch() *hll.Sketch { return w.sketch }

// WriteAll drains it into w in order and finishes the table; a convenience
// wrapper used by flushes and compaction merges.
func WriteAll(w *Writer, it iterator.Iterator) error {
	for ; it.Valid(); it.Next() {
		if err := w.Add(it.Entry()); err != nil {
			return err
		}
	}
	return w.Finish()
}
