package sstable

import (
	"bytes"
	"testing"

	"repro/internal/iterator"
)

// FuzzDecodeEntry throws arbitrary bytes at the entry decoder: it must
// never panic or read out of bounds, and on valid encodings it must
// round-trip.
func FuzzDecodeEntry(f *testing.F) {
	seed := appendEntry(nil, iterator.Entry{Key: []byte("key"), Value: []byte("value"), Seq: 7})
	f.Add(seed)
	f.Add(appendEntry(nil, iterator.Entry{Key: []byte("k"), Seq: 1, Tombstone: true}))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		e, rest, err := decodeEntry(data)
		if err != nil {
			return
		}
		if len(rest) > len(data) {
			t.Fatalf("rest grew")
		}
		// Re-encode and decode again: must agree.
		enc := appendEntry(nil, e)
		e2, _, err := decodeEntry(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !bytes.Equal(e.Key, e2.Key) || e.Seq != e2.Seq || e.Tombstone != e2.Tombstone || !bytes.Equal(e.Value, e2.Value) {
			t.Fatalf("entry changed across re-encode: %+v vs %+v", e, e2)
		}
	})
}

// FuzzReaderOpen feeds arbitrary bytes to the table opener: corrupt tables
// must be rejected with an error, never a panic or a successful open that
// later misbehaves. Seeds include all three footer versions — the
// restart-block version 3 (raw, fast-compressed and multi-chunk), the
// bounds-carrying version 2 and the legacy 64-byte version 1 — so the
// version-detection path, the v1 bounds backfill, the partitioned-index
// parser and the prefix-decoding walk are all fuzzed.
func FuzzReaderOpen(f *testing.F) {
	var entries []iterator.Entry
	for _, k := range []string{"a", "b", "c"} {
		entries = append(entries, iterator.Entry{Key: []byte(k), Value: []byte("v"), Seq: 1})
	}
	build := func(opts WriterOptions) []byte {
		var buf bytes.Buffer
		w := NewWriterOpts(&buf, len(entries), opts)
		for _, e := range entries {
			if err := w.Add(e); err != nil {
				f.Fatal(err)
			}
		}
		if err := w.Finish(); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	v2 := build(WriterOptions{FormatVersion: FormatV2})
	f.Add(v2)
	f.Add(v2[:len(v2)-5])
	f.Add(buildLegacyV1(f, entries))
	v3 := build(WriterOptions{})
	f.Add(v3)
	f.Add(v3[:len(v3)-5])
	f.Add(v3[:len(v3)-footerSize-3]) // footer gone, index truncated
	f.Add(build(WriterOptions{Compression: Fast}))
	f.Add(build(WriterOptions{Compression: Flate}))
	f.Add(build(WriterOptions{BlockSize: 16, IndexChunkSize: 1})) // many chunks
	f.Add([]byte("not a table"))
	f.Fuzz(func(t *testing.T, data []byte) {
		rd, err := NewReader(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			return
		}
		// Openable tables must scan without panicking; errors are fine.
		it := rd.Iter()
		for it.Valid() {
			it.Next()
		}
		_, _ = rd.Get([]byte("a"))
		// Bounds of an openable table must be internally consistent.
		if b, ok := rd.Bounds(); ok {
			if bytes.Compare(b.Smallest, b.Largest) > 0 {
				t.Fatalf("bounds inverted: smallest %q > largest %q", b.Smallest, b.Largest)
			}
			if b.MinSeq > b.MaxSeq {
				t.Fatalf("seq bounds inverted: %d > %d", b.MinSeq, b.MaxSeq)
			}
		}
	})
}

// FuzzV3Block throws arbitrary payloads at the restart-block parser,
// search and iterator. Structural corruption — truncated or garbage
// restart counts, out-of-order or out-of-range offsets, shared-prefix
// lengths exceeding the previous key — must surface as ErrCorrupt, never a
// panic, an infinite loop or an out-of-bounds read.
func FuzzV3Block(f *testing.F) {
	var bb blockBuilder
	for _, k := range []string{"alpha", "alphabet", "beta", "betamax", "gamma"} {
		bb.add(iterator.Entry{Key: []byte(k), Value: []byte("v"), Seq: 9})
	}
	good := append([]byte(nil), bb.finish()...)
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	// Garbage restart count.
	bad := append([]byte(nil), good...)
	bad[len(bad)-1] = 0xff
	f.Add(bad)
	// Out-of-order restarts: swap the first two offsets (the builder emits
	// one restart per 16 entries, so force a tiny hand-made trailer).
	f.Add([]byte{
		'x', 'y', // "data" the offsets point into
		4, 0, 0, 0, // restart[0] = 4 (not 0: must be rejected)
		1, 0, 0, 0, // count = 1
	})
	// Shared-prefix corruption: entry 1 claims more shared bytes than the
	// restart key has.
	var small blockBuilder
	small.add(iterator.Entry{Key: []byte("ab"), Value: []byte("1"), Seq: 1})
	small.add(iterator.Entry{Key: []byte("ac"), Value: []byte("2"), Seq: 2})
	corrupt := append([]byte(nil), small.finish()...)
	corrupt[8] = 30
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, payload []byte) {
		pb, err := parseV3Block(payload)
		if err != nil {
			if err != ErrCorrupt {
				t.Fatalf("parse err = %v, want ErrCorrupt", err)
			}
			return
		}
		for _, probe := range [][]byte{nil, []byte("a"), []byte("alphabet"), []byte("zz")} {
			var hd v3EntryHeader
			if err := searchV3Block(pb, probe, &hd); err != nil && err != ErrNotFound && err != ErrCorrupt {
				t.Fatalf("search err = %v", err)
			}
		}
		// Structural parse success does not imply semantic validity (key
		// order is guarded by the frame CRC, not re-verified per entry), so
		// iteration may yield arbitrary keys — it just must terminate
		// without panicking, and every error must be ErrCorrupt.
		it := &v3BlockIter{pb: pb}
		var e iterator.Entry
		for steps := 0; ; steps++ {
			if steps > len(payload)+1 {
				t.Fatal("iterator did not terminate")
			}
			ok, err := it.next(&e)
			if err != nil {
				if err != ErrCorrupt {
					t.Fatalf("iter err = %v, want ErrCorrupt", err)
				}
				return
			}
			if !ok {
				return
			}
		}
	})
}

// FuzzFastDecode drives the snappy-style decoder with arbitrary bodies and
// claimed lengths: it must never panic, never return more than rawLen
// bytes, and must round-trip everything the compressor emits.
func FuzzFastDecode(f *testing.F) {
	f.Add([]byte{}, 0)
	f.Add(fastAppendCompress(nil, []byte("hello hello hello hello")), 23)
	f.Add(fastAppendCompress(nil, bytes.Repeat([]byte{7}, 300)), 300)
	f.Add([]byte{0xff, 0xff, 0xff}, 100)
	f.Fuzz(func(t *testing.T, body []byte, rawLen int) {
		if rawLen < 0 || rawLen > 1<<20 {
			return
		}
		out, err := fastDecode(body, rawLen)
		if err == nil && len(out) != rawLen {
			t.Fatalf("decode returned %d bytes, claimed %d", len(out), rawLen)
		}
		// And independently: whatever the compressor produces must decode
		// back to the input.
		comp := fastAppendCompress(nil, body)
		rt, err := fastDecode(comp, len(body))
		if err != nil || !bytes.Equal(rt, body) {
			t.Fatalf("compressor output failed round trip: %v", err)
		}
	})
}
