package sstable

import (
	"bytes"
	"testing"

	"repro/internal/iterator"
)

// FuzzDecodeEntry throws arbitrary bytes at the entry decoder: it must
// never panic or read out of bounds, and on valid encodings it must
// round-trip.
func FuzzDecodeEntry(f *testing.F) {
	seed := appendEntry(nil, iterator.Entry{Key: []byte("key"), Value: []byte("value"), Seq: 7})
	f.Add(seed)
	f.Add(appendEntry(nil, iterator.Entry{Key: []byte("k"), Seq: 1, Tombstone: true}))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		e, rest, err := decodeEntry(data)
		if err != nil {
			return
		}
		if len(rest) > len(data) {
			t.Fatalf("rest grew")
		}
		// Re-encode and decode again: must agree.
		enc := appendEntry(nil, e)
		e2, _, err := decodeEntry(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !bytes.Equal(e.Key, e2.Key) || e.Seq != e2.Seq || e.Tombstone != e2.Tombstone || !bytes.Equal(e.Value, e2.Value) {
			t.Fatalf("entry changed across re-encode: %+v vs %+v", e, e2)
		}
	})
}

// FuzzReaderOpen feeds arbitrary bytes to the table opener: corrupt tables
// must be rejected with an error, never a panic or a successful open that
// later misbehaves. Seeds include both footer versions — the current
// bounds-carrying version 2 and the legacy 64-byte version 1 — so the
// version-detection path and the v1 bounds backfill are both fuzzed.
func FuzzReaderOpen(f *testing.F) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 4)
	var entries []iterator.Entry
	for _, k := range []string{"a", "b", "c"} {
		e := iterator.Entry{Key: []byte(k), Value: []byte("v"), Seq: 1}
		entries = append(entries, e)
		if err := w.Add(e); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Finish(); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:buf.Len()-5])
	f.Add(buildLegacyV1(f, entries))
	f.Add([]byte("not a table"))
	f.Fuzz(func(t *testing.T, data []byte) {
		rd, err := NewReader(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			return
		}
		// Openable tables must scan without panicking; errors are fine.
		it := rd.Iter()
		for it.Valid() {
			it.Next()
		}
		_, _ = rd.Get([]byte("a"))
		// Bounds of an openable table must be internally consistent.
		if b, ok := rd.Bounds(); ok {
			if bytes.Compare(b.Smallest, b.Largest) > 0 {
				t.Fatalf("bounds inverted: smallest %q > largest %q", b.Smallest, b.Largest)
			}
			if b.MinSeq > b.MaxSeq {
				t.Fatalf("seq bounds inverted: %d > %d", b.MinSeq, b.MaxSeq)
			}
		}
	})
}
