package sstable

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"

	"repro/internal/cache"
	"repro/internal/iterator"
)

// buildLegacyV1 writes entries into a version-1 table: the pre-bounds
// format with the 64-byte footer and MagicV1, reproducing what tables on
// disk looked like before the footer version bump. Used to prove
// backward-compatible opens.
func buildLegacyV1(t testing.TB, entries []iterator.Entry) []byte {
	t.Helper()
	var buf bytes.Buffer
	// Version 1 shares the version-2 block and index layout, so build a
	// v2 table and strip its bounds block below.
	w := NewWriterOpts(&buf, len(entries), WriterOptions{FormatVersion: FormatV2})
	for _, e := range entries {
		if err := w.Add(e); err != nil {
			t.Fatalf("Add(%q): %v", e.Key, err)
		}
	}
	if err := w.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	// Strip the bounds block and rewrite the footer in version-1 shape.
	// The v2 layout is ... bloom bounds footerV2; everything before the
	// bounds block is byte-identical to what the v1 writer produced.
	data := buf.Bytes()
	f, version, err := unmarshalFooter(data[len(data)-footerSize:])
	if err != nil || version != 2 {
		t.Fatalf("unmarshalFooter: version=%d err=%v", version, err)
	}
	legacy := append([]byte(nil), data[:f.boundsOff]...)
	v1 := make([]byte, footerV1Size)
	binary.LittleEndian.PutUint64(v1[0:], f.indexOff)
	binary.LittleEndian.PutUint64(v1[8:], f.indexLen)
	binary.LittleEndian.PutUint64(v1[16:], f.bloomOff)
	binary.LittleEndian.PutUint64(v1[24:], f.bloomLen)
	binary.LittleEndian.PutUint64(v1[32:], f.entryCount)
	binary.LittleEndian.PutUint64(v1[40:], f.keyBytes)
	binary.LittleEndian.PutUint64(v1[48:], f.valBytes)
	binary.LittleEndian.PutUint64(v1[56:], MagicV1)
	return append(legacy, v1...)
}

func testEntries(n int) []iterator.Entry {
	var entries []iterator.Entry
	for i := 0; i < n; i++ {
		entries = append(entries, entry(fmt.Sprintf("key-%06d", i), fmt.Sprintf("val-%d", i), uint64(i+1)))
	}
	return entries
}

func TestBoundsRoundTrip(t *testing.T) {
	entries := testEntries(2000)
	rd := buildTable(t, entries)
	if rd.FooterVersion() != FormatLatest {
		t.Fatalf("FooterVersion = %d, want %d", rd.FooterVersion(), FormatLatest)
	}
	b, ok := rd.Bounds()
	if !ok {
		t.Fatal("Bounds reported not ok for a non-empty table")
	}
	if !bytes.Equal(b.Smallest, entries[0].Key) || !bytes.Equal(b.Largest, entries[len(entries)-1].Key) {
		t.Errorf("key bounds = [%q, %q], want [%q, %q]", b.Smallest, b.Largest, entries[0].Key, entries[len(entries)-1].Key)
	}
	if b.MinSeq != 1 || b.MaxSeq != uint64(len(entries)) {
		t.Errorf("seq bounds = [%d, %d], want [1, %d]", b.MinSeq, b.MaxSeq, len(entries))
	}
}

func TestBoundsEmptyTable(t *testing.T) {
	rd := buildTable(t, nil)
	if _, ok := rd.Bounds(); ok {
		t.Error("empty table reported bounds")
	}
}

func TestLegacyV1OpenBackfillsBounds(t *testing.T) {
	entries := testEntries(2000) // several blocks, so backfill reads a non-first block
	data := buildLegacyV1(t, entries)
	rd, err := NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatalf("open v1 table: %v", err)
	}
	if rd.FooterVersion() != 1 {
		t.Fatalf("FooterVersion = %d, want 1", rd.FooterVersion())
	}
	b, ok := rd.Bounds()
	if !ok {
		t.Fatal("no bounds backfilled for v1 table")
	}
	if !bytes.Equal(b.Smallest, entries[0].Key) || !bytes.Equal(b.Largest, entries[len(entries)-1].Key) {
		t.Errorf("backfilled key bounds = [%q, %q], want [%q, %q]",
			b.Smallest, b.Largest, entries[0].Key, entries[len(entries)-1].Key)
	}
	// The sequence range is unknowable without a full scan: it must
	// degrade to the maximally pessimistic range so early exit is never
	// wrong, only disabled.
	if b.MinSeq != 0 || b.MaxSeq != ^uint64(0) {
		t.Errorf("backfilled seq bounds = [%d, %d], want [0, MaxUint64]", b.MinSeq, b.MaxSeq)
	}
	// And the table still reads correctly.
	for _, want := range []int{0, 999, 1999} {
		got, err := rd.Get(entries[want].Key)
		if err != nil || !bytes.Equal(got.Value, entries[want].Value) {
			t.Fatalf("v1 Get(%q) = %+v, %v", entries[want].Key, got, err)
		}
	}
	if _, err := rd.Get([]byte("zzz-absent")); err != ErrNotFound {
		t.Fatalf("v1 Get(absent) err = %v, want ErrNotFound", err)
	}
	n := 0
	for it := rd.Iter(); it.Valid(); it.Next() {
		n++
	}
	if n != len(entries) {
		t.Fatalf("v1 scan yielded %d entries, want %d", n, len(entries))
	}
}

func TestBoundsCorruptRejected(t *testing.T) {
	entries := testEntries(10)
	var buf bytes.Buffer
	w := NewWriter(&buf, len(entries))
	for _, e := range entries {
		if err := w.Add(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	f, _, err := unmarshalFooter(data[len(data)-footerSize:])
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the bounds block: the open must fail with
	// ErrCorrupt, not silently lose pruning metadata.
	data[f.boundsOff+1] ^= 0xff
	if _, err := NewReader(bytes.NewReader(data), int64(len(data))); err != ErrCorrupt {
		t.Fatalf("open with corrupt bounds err = %v, want ErrCorrupt", err)
	}
}

func TestGetOwnedWithoutCache(t *testing.T) {
	entries := testEntries(100)
	rd := buildTable(t, entries)
	// No cache attached: the entry's memory is owned by the caller.
	e, owned, err := rd.GetEntry(entries[5].Key)
	if err != nil {
		t.Fatal(err)
	}
	if !owned {
		t.Error("cacheless GetEntry reported owned=false")
	}
	if !bytes.Equal(e.Value, entries[5].Value) {
		t.Errorf("value = %q, want %q", e.Value, entries[5].Value)
	}
}

func TestGetSharedWithCache(t *testing.T) {
	entries := testEntries(100)
	rd := buildTable(t, entries)
	rd.SetBlockCache(cache.NewSharded(1<<20, 4))
	// Both the filling read and the cache hit share memory with the cache:
	// neither may be handed out as owned.
	for pass := 0; pass < 2; pass++ {
		e, owned, err := rd.GetEntry(entries[5].Key)
		if err != nil {
			t.Fatal(err)
		}
		if owned {
			t.Errorf("pass %d: cached GetEntry reported owned=true", pass)
		}
		if !bytes.Equal(e.Value, entries[5].Value) {
			t.Errorf("pass %d: value = %q, want %q", pass, e.Value, entries[5].Value)
		}
	}
}

func TestLegacyV1OpenWithHintSkipsBackfill(t *testing.T) {
	entries := testEntries(2000)
	data := buildLegacyV1(t, entries)
	// A persisted hint (the engine manifest's copy) is adopted verbatim —
	// including a real sequence range the backfill could never recover.
	hint := &Bounds{
		Smallest: entries[0].Key,
		Largest:  entries[len(entries)-1].Key,
		MinSeq:   1,
		MaxSeq:   uint64(len(entries)),
	}
	rd, err := NewReaderWithBounds(bytes.NewReader(data), int64(len(data)), hint)
	if err != nil {
		t.Fatal(err)
	}
	b, ok := rd.Bounds()
	if !ok {
		t.Fatal("no bounds")
	}
	if b.MaxSeq != uint64(len(entries)) || b.MinSeq != 1 {
		t.Errorf("hinted seq bounds = [%d, %d], want [1, %d]", b.MinSeq, b.MaxSeq, len(entries))
	}
	if !bytes.Equal(b.Smallest, entries[0].Key) || !bytes.Equal(b.Largest, entries[len(entries)-1].Key) {
		t.Errorf("hinted key bounds = [%q, %q]", b.Smallest, b.Largest)
	}
	// An implausible hint (inverted keys) is ignored in favor of backfill.
	bad := &Bounds{Smallest: []byte("zzz"), Largest: []byte("aaa")}
	rd2, err := NewReaderWithBounds(bytes.NewReader(data), int64(len(data)), bad)
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := rd2.Bounds()
	if !bytes.Equal(b2.Smallest, entries[0].Key) || b2.MaxSeq != ^uint64(0) {
		t.Errorf("implausible hint not ignored: bounds = %+v", b2)
	}
}
