package sstable

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/iterator"
)

const benchTableEntries = 10000

func benchKeys(n int) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("bench/%03d/key-%08d", i/100, i))
	}
	return keys
}

func benchTableVersion(b *testing.B, version int) *Reader {
	b.Helper()
	keys := benchKeys(benchTableEntries)
	var buf bytes.Buffer
	w := NewWriterOpts(&buf, len(keys), WriterOptions{FormatVersion: version})
	for i, k := range keys {
		if err := w.Add(iterator.Entry{Key: k, Value: []byte("value-payload"), Seq: uint64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Finish(); err != nil {
		b.Fatal(err)
	}
	rd, err := NewReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		b.Fatal(err)
	}
	return rd
}

// BenchmarkColdGet measures point reads with no block cache attached:
// every Get pays the full block read, decode and in-block search. This is
// the format comparison the version-3 restart layout exists for — the v2
// path walks the block linearly from entry zero, the v3 path binary-
// searches the restart array and walks at most one interval.
func BenchmarkColdGet(b *testing.B) {
	keys := benchKeys(benchTableEntries)
	for _, version := range []int{FormatV2, FormatV3} {
		b.Run(fmt.Sprintf("v%d", version), func(b *testing.B) {
			rd := benchTableVersion(b, version)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := rd.Get(keys[(i*7919)%len(keys)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkColdScan measures a full cacheless table scan per iteration.
func BenchmarkColdScan(b *testing.B) {
	for _, version := range []int{FormatV2, FormatV3} {
		b.Run(fmt.Sprintf("v%d", version), func(b *testing.B) {
			rd := benchTableVersion(b, version)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n := 0
				for it := rd.Iter(); it.Valid(); it.Next() {
					n++
				}
				if n != benchTableEntries {
					b.Fatalf("scan yielded %d entries", n)
				}
			}
		})
	}
}

// BenchmarkEncodeBlock is the allocation guard for the single-buffer block
// framing: the hot loop must report 0 allocs/op for the raw codec.
func BenchmarkEncodeBlock(b *testing.B) {
	var bb blockBuilder
	for i := 0; i < 180; i++ { // ~a BlockSize worth of entries
		bb.add(iterator.Entry{
			Key:   []byte(fmt.Sprintf("bench/key-%08d", i)),
			Value: []byte("value-payload"),
			Seq:   uint64(i + 1),
		})
	}
	body := bb.finish()
	for _, c := range []struct {
		name  string
		codec Compression
	}{{"raw", NoCompression}, {"fast", Fast}} {
		b.Run(c.name, func(b *testing.B) {
			var enc blockEncoder
			frameBuf := make([]byte, 0, 2*len(body)+16)
			b.ReportAllocs()
			b.SetBytes(int64(len(body)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				framed, err := enc.appendBlock(frameBuf[:0], body, c.codec, FormatV3)
				if err != nil {
					b.Fatal(err)
				}
				frameBuf = framed[:0]
			}
		})
	}
}

// BenchmarkFastCodec measures the snappy-style codec in isolation on a
// block-sized compressible payload.
func BenchmarkFastCodec(b *testing.B) {
	src := bytes.Repeat([]byte("the quick brown fox jumps over the lazy dog. "), 100)
	comp := fastAppendCompress(nil, src)
	b.Run("compress", func(b *testing.B) {
		b.SetBytes(int64(len(src)))
		var dst []byte
		for i := 0; i < b.N; i++ {
			dst = fastAppendCompress(dst[:0], src)
		}
	})
	b.Run("decompress", func(b *testing.B) {
		b.SetBytes(int64(len(src)))
		for i := 0; i < b.N; i++ {
			if _, err := fastDecode(comp, len(src)); err != nil {
				b.Fatal(err)
			}
		}
	})
}
