package sstable

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/iterator"
)

func entry(key, val string, seq uint64) iterator.Entry {
	return iterator.Entry{Key: []byte(key), Value: []byte(val), Seq: seq}
}

// buildTable writes entries (must be sorted) into an in-memory table and
// returns a Reader over it.
func buildTable(t *testing.T, entries []iterator.Entry) *Reader {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf, len(entries))
	for _, e := range entries {
		if err := w.Add(e); err != nil {
			t.Fatalf("Add(%q): %v", e.Key, err)
		}
	}
	if err := w.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	rd, err := NewReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	return rd
}

func TestWriteReadRoundTrip(t *testing.T) {
	var entries []iterator.Entry
	for i := 0; i < 1000; i++ {
		entries = append(entries, entry(fmt.Sprintf("key-%06d", i), fmt.Sprintf("val-%d", i), uint64(i)))
	}
	rd := buildTable(t, entries)
	if rd.EntryCount() != 1000 {
		t.Errorf("EntryCount = %d", rd.EntryCount())
	}
	for _, want := range entries {
		got, err := rd.Get(want.Key)
		if err != nil {
			t.Fatalf("Get(%q): %v", want.Key, err)
		}
		if !bytes.Equal(got.Value, want.Value) || got.Seq != want.Seq {
			t.Fatalf("Get(%q) = %+v, want %+v", want.Key, got, want)
		}
	}
}

func TestGetAbsentKey(t *testing.T) {
	rd := buildTable(t, []iterator.Entry{entry("b", "1", 1), entry("d", "2", 2)})
	for _, k := range []string{"a", "c", "e"} {
		if _, err := rd.Get([]byte(k)); err != ErrNotFound {
			t.Errorf("Get(%q) err = %v, want ErrNotFound", k, err)
		}
	}
}

func TestTombstoneRoundTrip(t *testing.T) {
	rd := buildTable(t, []iterator.Entry{
		entry("a", "x", 1),
		{Key: []byte("b"), Seq: 2, Tombstone: true},
		entry("c", "y", 3),
	})
	got, err := rd.Get([]byte("b"))
	if err != nil {
		t.Fatalf("Get tombstone: %v", err)
	}
	if !got.Tombstone || len(got.Value) != 0 {
		t.Errorf("tombstone = %+v", got)
	}
}

func TestIterOrderAndCompleteness(t *testing.T) {
	var entries []iterator.Entry
	for i := 0; i < 5000; i++ { // several blocks
		entries = append(entries, entry(fmt.Sprintf("key-%08d", i), fmt.Sprintf("%d", i), uint64(i)))
	}
	rd := buildTable(t, entries)
	it := rd.Iter()
	n := 0
	var prev []byte
	for ; it.Valid(); it.Next() {
		k := it.Entry().Key
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatalf("iteration out of order at %q", k)
		}
		prev = append(prev[:0], k...)
		n++
	}
	if err := it.Err(); err != nil {
		t.Fatalf("iter err: %v", err)
	}
	if n != len(entries) {
		t.Errorf("iterated %d entries, want %d", n, len(entries))
	}
}

func TestIterSeekGE(t *testing.T) {
	var entries []iterator.Entry
	for i := 0; i < 3000; i += 3 { // keys 0,3,6,... across many blocks
		entries = append(entries, entry(fmt.Sprintf("key-%08d", i), "v", uint64(i)))
	}
	rd := buildTable(t, entries)
	cases := []struct {
		seek string
		want string
	}{
		{"key-00000000", "key-00000000"}, // first
		{"key-00000004", "key-00000006"}, // between keys
		{"key-00001500", "key-00001500"}, // exact mid-table
		{"key-00002996", "key-00002997"}, // near end
		{"", "key-00000000"},             // before everything
	}
	for _, c := range cases {
		it := rd.IterFrom([]byte(c.seek))
		if !it.Valid() || string(it.Entry().Key) != c.want {
			t.Errorf("SeekGE(%q) at %q, want %q", c.seek, it.Entry().Key, c.want)
		}
	}
	if it := rd.IterFrom([]byte("key-99999999")); it.Valid() {
		t.Errorf("SeekGE past end should be invalid")
	}
	// Iteration after a seek remains sorted and complete.
	it := rd.IterFrom([]byte("key-00001500"))
	n := 0
	for ; it.Valid(); it.Next() {
		n++
	}
	if want := 500; n != want { // keys 1500,1503,...,2997
		t.Errorf("iterated %d entries after seek, want %d", n, want)
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestWriterRejectsOutOfOrder(t *testing.T) {
	w := NewWriter(&bytes.Buffer{}, 2)
	if err := w.Add(entry("b", "1", 1)); err != nil {
		t.Fatal(err)
	}
	if err := w.Add(entry("a", "2", 2)); err == nil {
		t.Errorf("out-of-order key accepted")
	}
	if err := w.Add(entry("b", "2", 2)); err == nil {
		t.Errorf("duplicate key accepted")
	}
	if err := w.Add(iterator.Entry{}); err == nil {
		t.Errorf("empty key accepted")
	}
}

func TestWriterFinishTwice(t *testing.T) {
	w := NewWriter(&bytes.Buffer{}, 1)
	if err := w.Add(entry("a", "1", 1)); err != nil {
		t.Fatal(err)
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := w.Finish(); err == nil {
		t.Errorf("second Finish accepted")
	}
	if err := w.Add(entry("b", "1", 1)); err == nil {
		t.Errorf("Add after Finish accepted")
	}
}

func TestEmptyTable(t *testing.T) {
	rd := buildTable(t, nil)
	if rd.EntryCount() != 0 {
		t.Errorf("EntryCount = %d", rd.EntryCount())
	}
	if _, err := rd.Get([]byte("any")); err != ErrNotFound {
		t.Errorf("Get on empty = %v", err)
	}
	if rd.Iter().Valid() {
		t.Errorf("iterator over empty table valid")
	}
}

func TestCorruptionDetected(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 100)
	for i := 0; i < 100; i++ {
		if err := w.Add(entry(fmt.Sprintf("k%04d", i), "v", uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	t.Run("flipped data byte", func(t *testing.T) {
		bad := append([]byte(nil), data...)
		bad[10] ^= 0xff
		rd, err := NewReader(bytes.NewReader(bad), int64(len(bad)))
		if err != nil {
			return // corruption caught at open: acceptable
		}
		it := rd.Iter()
		for it.Valid() {
			it.Next()
		}
		if it.Err() == nil {
			t.Errorf("corrupt block not detected during scan")
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), data...)
		bad[len(bad)-1] ^= 0xff
		if _, err := NewReader(bytes.NewReader(bad), int64(len(bad))); err == nil {
			t.Errorf("bad magic accepted")
		}
	})
	t.Run("truncated", func(t *testing.T) {
		if _, err := NewReader(bytes.NewReader(data[:10]), 10); err == nil {
			t.Errorf("truncated file accepted")
		}
	})
}

func TestOpenCloseFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.sst")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(f, 10)
	for i := 0; i < 10; i++ {
		if err := w.Add(entry(fmt.Sprintf("k%d", i), "v", uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	rd, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer rd.Close()
	got, err := rd.Get([]byte("k3"))
	if err != nil || string(got.Value) != "v" {
		t.Errorf("Get(k3) = %+v, %v", got, err)
	}
	if rd.FileSize() == 0 {
		t.Errorf("FileSize = 0")
	}
	if _, err := Open(filepath.Join(dir, "missing.sst")); err == nil {
		t.Errorf("Open of missing file succeeded")
	}
}

func TestMergeDedupAndTombstones(t *testing.T) {
	newer := buildTable(t, []iterator.Entry{
		{Key: []byte("a"), Seq: 10, Tombstone: true},
		entry("b", "new", 11),
	})
	older := buildTable(t, []iterator.Entry{
		entry("a", "old", 1),
		entry("b", "old", 2),
		entry("c", "keep", 3),
	})

	var out bytes.Buffer
	stats, err := Merge(&out, true, newer, older)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	rd, err := NewReader(bytes.NewReader(out.Bytes()), int64(out.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if rd.EntryCount() != 2 {
		t.Errorf("merged EntryCount = %d, want 2 (a deleted)", rd.EntryCount())
	}
	b, err := rd.Get([]byte("b"))
	if err != nil || string(b.Value) != "new" {
		t.Errorf("merged b = %+v, %v; want new", b, err)
	}
	if _, err := rd.Get([]byte("a")); err != ErrNotFound {
		t.Errorf("deleted key a survived major compaction")
	}
	if stats.BytesRead == 0 || stats.BytesWritten == 0 || stats.EntriesIn != 5 || stats.EntriesOut != 2 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.TotalIO() != stats.BytesRead+stats.BytesWritten {
		t.Errorf("TotalIO inconsistent")
	}
}

func TestMergeKeepTombstones(t *testing.T) {
	newer := buildTable(t, []iterator.Entry{{Key: []byte("a"), Seq: 10, Tombstone: true}})
	older := buildTable(t, []iterator.Entry{entry("a", "old", 1)})
	var out bytes.Buffer
	if _, err := Merge(&out, false, newer, older); err != nil {
		t.Fatal(err)
	}
	rd, err := NewReader(bytes.NewReader(out.Bytes()), int64(out.Len()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := rd.Get([]byte("a"))
	if err != nil || !got.Tombstone {
		t.Errorf("minor compaction should keep tombstone, got %+v, %v", got, err)
	}
}

func TestCompressedRoundTrip(t *testing.T) {
	// Highly compressible values: the flate codec must shrink the file and
	// read back identically.
	var entries []iterator.Entry
	for i := 0; i < 3000; i++ {
		entries = append(entries, entry(fmt.Sprintf("key-%08d", i), strings.Repeat("abcdef", 20), uint64(i)))
	}
	var raw, compressed bytes.Buffer
	wr := NewWriter(&raw, len(entries))
	wc := NewWriterCompressed(&compressed, len(entries), Flate)
	for _, e := range entries {
		if err := wr.Add(e); err != nil {
			t.Fatal(err)
		}
		if err := wc.Add(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := wr.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := wc.Finish(); err != nil {
		t.Fatal(err)
	}
	if compressed.Len() >= raw.Len() {
		t.Errorf("compressed table (%d) not smaller than raw (%d)", compressed.Len(), raw.Len())
	}
	rd, err := NewReader(bytes.NewReader(compressed.Bytes()), int64(compressed.Len()))
	if err != nil {
		t.Fatal(err)
	}
	got := iterator.Drain(rd.Iter())
	if len(got) != len(entries) {
		t.Fatalf("drained %d entries, want %d", len(got), len(entries))
	}
	for i, e := range entries {
		if !bytes.Equal(got[i].Key, e.Key) || !bytes.Equal(got[i].Value, e.Value) {
			t.Fatalf("entry %d mismatch", i)
		}
	}
	// Point reads and seeks work on compressed tables too.
	g, err := rd.Get([]byte("key-00001234"))
	if err != nil || string(g.Value) != strings.Repeat("abcdef", 20) {
		t.Errorf("Get on compressed table: %v", err)
	}
	it := rd.IterFrom([]byte("key-00002990"))
	n := 0
	for ; it.Valid(); it.Next() {
		n++
	}
	if n != 10 {
		t.Errorf("seek on compressed table: %d entries", n)
	}
}

func TestIncompressibleFallsBackToRaw(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	var buf bytes.Buffer
	w := NewWriterCompressed(&buf, 100, Flate)
	for i := 0; i < 100; i++ {
		val := make([]byte, 100)
		r.Read(val)
		if err := w.Add(iterator.Entry{Key: []byte(fmt.Sprintf("k%04d", i)), Value: val, Seq: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	rd, err := NewReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if got := iterator.Drain(rd.Iter()); len(got) != 100 {
		t.Errorf("drained %d", len(got))
	}
}

func TestCorruptCompressedBlock(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriterCompressed(&buf, 1000, Flate)
	for i := 0; i < 1000; i++ {
		if err := w.Add(entry(fmt.Sprintf("k%06d", i), strings.Repeat("x", 50), uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[5] ^= 0xff // inside the first compressed block
	rd, err := NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		return // rejected at open: fine
	}
	it := rd.Iter()
	for it.Valid() {
		it.Next()
	}
	if it.Err() == nil {
		t.Errorf("corrupt compressed block not detected")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(200)
		entries := make([]iterator.Entry, 0, n)
		for i := 0; i < n; i++ {
			key := fmt.Sprintf("%08x", i*7+1)
			val := make([]byte, r.Intn(64))
			r.Read(val)
			entries = append(entries, iterator.Entry{
				Key: []byte(key), Value: val, Seq: uint64(i), Tombstone: r.Intn(10) == 0,
			})
		}
		var buf bytes.Buffer
		w := NewWriter(&buf, n)
		for _, e := range entries {
			if e.Tombstone {
				e.Value = nil
			}
			if err := w.Add(e); err != nil {
				return false
			}
		}
		if err := w.Finish(); err != nil {
			return false
		}
		rd, err := NewReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
		if err != nil {
			return false
		}
		got := iterator.Drain(rd.Iter())
		if len(got) != len(entries) {
			return false
		}
		for i, e := range entries {
			g := got[i]
			if !bytes.Equal(g.Key, e.Key) || g.Seq != e.Seq || g.Tombstone != e.Tombstone {
				return false
			}
			if !e.Tombstone && !bytes.Equal(g.Value, e.Value) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkWriter(b *testing.B) {
	val := bytes.Repeat([]byte("x"), 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		w := NewWriter(&buf, 1000)
		for j := 0; j < 1000; j++ {
			if err := w.Add(iterator.Entry{Key: []byte(fmt.Sprintf("key-%08d", j)), Value: val, Seq: uint64(j)}); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Finish(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReaderGet(b *testing.B) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 10000)
	for j := 0; j < 10000; j++ {
		if err := w.Add(iterator.Entry{Key: []byte(fmt.Sprintf("key-%08d", j)), Value: []byte("value"), Seq: uint64(j)}); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Finish(); err != nil {
		b.Fatal(err)
	}
	rd, err := NewReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rd.Get([]byte(fmt.Sprintf("key-%08d", i%10000))); err != nil {
			b.Fatal(err)
		}
	}
}
