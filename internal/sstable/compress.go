package sstable

import "encoding/binary"

// The Fast codec: a dependency-free, byte-oriented LZ77 in the snappy
// tradition, tuned for the ~4KiB data blocks this package produces. The
// encoder greedily matches 4-byte sequences through a small hash table and
// emits a stream of two element kinds, distinguished by the low tag bit:
//
//	tag&1 == 0  literal run:  n = tag>>1 + 1 bytes follow
//	            (tag>>1 == 127 escapes to n = 128 + uvarint)
//	tag&1 == 1  copy:         length = tag>>1 + 4 from uvarint offset back
//	            (tag>>1 == 127 escapes to length = 131 + uvarint)
//
// The decoder is driven entirely by the declared uncompressed length from
// the version-3 block frame: output is allocated once at exactly that size
// and any stream that would overrun or underrun it fails with ErrCorrupt,
// so corrupt or adversarial bodies can neither panic nor over-allocate.

// fastMinMatch is the shortest copy the encoder emits; shorter matches
// cost more to encode than the literals they replace.
const fastMinMatch = 4

// fastTagEscape marks a tag whose 7-bit payload overflowed into a uvarint.
const fastTagEscape = 127

// fastHashShift sizes the match table at 1<<12 entries: large enough for
// the repeated key prefixes and value bytes of a data block, small enough
// to live comfortably on the encoder's stack.
const fastHashShift = 12

func fastLoad32(b []byte) uint32 {
	return binary.LittleEndian.Uint32(b)
}

func fastHash(v uint32) uint32 {
	// Multiplicative hash (Knuth's 2654435761) of the 4-byte window.
	return (v * 2654435761) >> (32 - fastHashShift)
}

// fastAppendCompress appends the compressed form of src to dst. The output
// of an incompressible src may exceed len(src); the caller compares sizes
// and stores the block raw in that case, exactly as the Flate path does.
func fastAppendCompress(dst, src []byte) []byte {
	var table [1 << fastHashShift]int32 // candidate position + 1; 0 = empty
	litStart := 0
	i := 0
	for i+fastMinMatch <= len(src) {
		h := fastHash(fastLoad32(src[i:]))
		cand := int(table[h]) - 1
		table[h] = int32(i + 1)
		if cand < 0 || fastLoad32(src[cand:]) != fastLoad32(src[i:]) {
			i++
			continue
		}
		mlen := fastMinMatch
		for i+mlen < len(src) && src[cand+mlen] == src[i+mlen] {
			mlen++
		}
		dst = fastEmitLiteral(dst, src[litStart:i])
		dst = fastEmitCopy(dst, i-cand, mlen)
		i += mlen
		litStart = i
	}
	return fastEmitLiteral(dst, src[litStart:])
}

func fastEmitLiteral(dst, lit []byte) []byte {
	n := len(lit)
	if n == 0 {
		return dst
	}
	if n <= fastTagEscape {
		dst = append(dst, byte(n-1)<<1)
	} else {
		dst = append(dst, fastTagEscape<<1)
		dst = binary.AppendUvarint(dst, uint64(n-fastTagEscape-1))
	}
	return append(dst, lit...)
}

func fastEmitCopy(dst []byte, offset, length int) []byte {
	l := length - fastMinMatch
	if l < fastTagEscape {
		dst = append(dst, byte(l)<<1|1)
	} else {
		dst = append(dst, fastTagEscape<<1|1)
		dst = binary.AppendUvarint(dst, uint64(l-fastTagEscape))
	}
	return binary.AppendUvarint(dst, uint64(offset))
}

// fastDecode decompresses body into exactly rawLen bytes. Every bound is
// checked against the declared length before any copy, so a corrupt body
// fails with ErrCorrupt instead of panicking or allocating past rawLen.
func fastDecode(body []byte, rawLen int) ([]byte, error) {
	out := make([]byte, 0, rawLen)
	for len(body) > 0 {
		tag := body[0]
		body = body[1:]
		v := int(tag >> 1)
		extra := 0
		if v == fastTagEscape {
			e64, w := binary.Uvarint(body)
			if w <= 0 || e64 > maxBlockPayload {
				return nil, ErrCorrupt
			}
			body = body[w:]
			extra = int(e64)
		}
		if tag&1 == 0 {
			// Literal: tag carries n-1, the escape re-adds the bias.
			run := v + 1
			if v == fastTagEscape {
				run = fastTagEscape + 1 + extra
			}
			if run > len(body) || len(out)+run > rawLen {
				return nil, ErrCorrupt
			}
			out = append(out, body[:run]...)
			body = body[run:]
			continue
		}
		// Copy: tag carries length - fastMinMatch, unbiased.
		l := v
		if v == fastTagEscape {
			l = fastTagEscape + extra
		}
		length := l + fastMinMatch
		off, w := binary.Uvarint(body)
		if w <= 0 {
			return nil, ErrCorrupt
		}
		body = body[w:]
		if off == 0 || off > uint64(len(out)) || len(out)+length > rawLen {
			return nil, ErrCorrupt
		}
		// Byte-at-a-time so overlapping copies (offset < length, the RLE
		// case) replay already-written output correctly.
		pos := len(out) - int(off)
		for j := 0; j < length; j++ {
			out = append(out, out[pos+j])
		}
	}
	if len(out) != rawLen {
		return nil, ErrCorrupt
	}
	return out, nil
}
