package sstable

import (
	"fmt"
	"io"

	"repro/internal/iterator"
)

// MergeStats reports the disk I/O performed by a merge: the quantities the
// paper's cost function models. BytesRead is the total file size of the
// input tables; BytesWritten the size of the output table. Their sum is the
// per-merge contribution to costactual (Section 2).
type MergeStats struct {
	BytesRead    uint64
	BytesWritten uint64
	EntriesIn    uint64
	EntriesOut   uint64
}

// TotalIO returns BytesRead + BytesWritten.
func (s MergeStats) TotalIO() uint64 { return s.BytesRead + s.BytesWritten }

// Merge merge-sorts the given tables into a single new table written to w,
// keeping only the newest (highest-Seq) version of each key; input order
// does not matter. When dropTombstones is true (a major compaction
// producing the final table), deletion markers and the versions they
// shadow are discarded.
func Merge(w io.Writer, dropTombstones bool, inputs ...*Reader) (MergeStats, error) {
	return MergeCompressed(w, dropTombstones, NoCompression, inputs...)
}

// MergeCompressed is Merge with a data-block codec for the output table.
func MergeCompressed(w io.Writer, dropTombstones bool, compression Compression, inputs ...*Reader) (MergeStats, error) {
	return MergeOpts(w, dropTombstones, WriterOptions{Compression: compression}, inputs...)
}

// MergeOpts is Merge with full writer options for the output table; input
// tables of any format version merge into an output of the requested one.
func MergeOpts(w io.Writer, dropTombstones bool, opts WriterOptions, inputs ...*Reader) (MergeStats, error) {
	var stats MergeStats
	children := make([]iterator.Iterator, len(inputs))
	iters := make([]*Iter, len(inputs))
	expected := 0
	for i, rd := range inputs {
		it := rd.Iter()
		iters[i] = it
		children[i] = it
		stats.BytesRead += rd.FileSize()
		stats.EntriesIn += rd.EntryCount()
		expected += int(rd.EntryCount())
	}
	merged := iterator.NewDedup(iterator.NewMerging(children...), dropTombstones)
	tw := NewWriterOpts(w, expected, opts)
	if err := WriteAll(tw, merged); err != nil {
		return stats, fmt.Errorf("sstable: merge: %w", err)
	}
	for i, it := range iters {
		if err := it.Err(); err != nil {
			return stats, fmt.Errorf("sstable: merge input %d: %w", i, err)
		}
	}
	stats.BytesWritten = tw.Size()
	stats.EntriesOut = tw.EntryCount()
	return stats, nil
}
